package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gsv"
)

// runAll feeds a script to the command interpreter; it fails the test on
// the first command error unless wantErr marks the line.
func runAll(t *testing.T, db *gsv.DB, script string) {
	t.Helper()
	for _, line := range strings.Split(script, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		next, err := run(db, line)
		if err != nil {
			t.Fatalf("command %q: %v", line, err)
		}
		if next != nil {
			db = next
		}
	}
}

func TestShellPaperWalkthrough(t *testing.T) {
	db := gsv.Open()
	runAll(t, db, `
		load person
		define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45
		put atom A2 age 40
		insert P2 A2
		views
		SELECT ROOT.professor X WHERE X.age > 40
		show YP.P2
		modify A2 60
		delete ROOT P1
		swizzle YP
		unswizzle YP
		dump
	`)
	members, err := db.ViewMembers("YP")
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 0 {
		t.Fatalf("YP = %v, want empty after modify/delete", members)
	}
}

func TestShellLoadSamples(t *testing.T) {
	for _, sample := range []string{"person", "figure1", "relations 3"} {
		db := gsv.Open()
		if _, err := run(db, "load "+sample); err != nil {
			t.Fatalf("load %s: %v", sample, err)
		}
		if db.Store.Len() == 0 {
			t.Fatalf("load %s left an empty store", sample)
		}
	}
}

func TestShellPutSet(t *testing.T) {
	db := gsv.Open()
	runAll(t, db, `
		put atom A age 5
		put set S things A
		show S
	`)
	o, err := db.Get("S")
	if err != nil {
		t.Fatal(err)
	}
	if !o.Contains("A") {
		t.Fatalf("S = %v", o)
	}
}

func TestShellAggregate(t *testing.T) {
	db := gsv.Open()
	runAll(t, db, `
		load person
		aggregate TOTAL sum salary as: SELECT ROOT.professor X WHERE X.age <= 45
		agg TOTAL
		modify S1 120000
		agg TOTAL
	`)
	v, err := db.AggregateValue("TOTAL")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(gsv.Float(120000)) {
		t.Fatalf("TOTAL = %v", v)
	}
}

func TestShellSave(t *testing.T) {
	db := gsv.Open()
	path := filepath.Join(t.TempDir(), "snap.gsv")
	runAll(t, db, "load person\nsave "+path)
	restored, err := gsv.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Store.Len() != db.Store.Len() {
		t.Fatalf("restored %d, want %d", restored.Store.Len(), db.Store.Len())
	}
}

func TestShellSaveDBLoadDB(t *testing.T) {
	db := gsv.Open()
	path := filepath.Join(t.TempDir(), "db.gsv")
	runAll(t, db, `
		load person
		define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45
		savedb `+path)
	fresh := gsv.Open()
	next, err := run(fresh, "loaddb "+path)
	if err != nil {
		t.Fatal(err)
	}
	if next == nil {
		t.Fatal("loaddb did not switch databases")
	}
	members, err := next.ViewMembers("YP")
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 1 || members[0] != "P1" {
		t.Fatalf("restored YP = %v", members)
	}
}

func TestShellDot(t *testing.T) {
	db := gsv.Open()
	path := filepath.Join(t.TempDir(), "g.dot")
	runAll(t, db, "load person\ndot "+path+" P1")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph gsdb") {
		t.Fatalf("dot output wrong:\n%s", data)
	}
}

func TestShellLoadsnapSwitchesDB(t *testing.T) {
	db := gsv.Open()
	path := filepath.Join(t.TempDir(), "snap.gsv")
	runAll(t, db, "load person\nsave "+path)
	fresh := gsv.Open()
	next, err := run(fresh, "loadsnap "+path)
	if err != nil {
		t.Fatal(err)
	}
	if next == nil || next.Store.Len() != db.Store.Len() {
		t.Fatalf("loadsnap returned %v", next)
	}
}

func TestShellHelp(t *testing.T) {
	db := gsv.Open()
	if _, err := run(db, "help"); err != nil {
		t.Fatal(err)
	}
}

func TestShellErrors(t *testing.T) {
	db := gsv.Open()
	bad := []string{
		"bogus",
		"load nosuch",
		"load",
		"insert onlyone",
		"modify onlyone",
		"show",
		"show missing",
		"put set",
		"put atom X lbl",
		"put neither X Y Z",
		"define mview V as: garbage",
		"swizzle NOSUCH",
		"swizzle",
		"agg NOSUCH",
		"agg",
		"aggregate X sum",
		"aggregate X frobnicate salary as: SELECT ROOT.professor X",
		"aggregate X sum salary WRONG SELECT ROOT.professor X",
		"save",
		"loadsnap",
		"loadsnap /no/such/file",
		"SELECT garbage syntax here !",
	}
	for _, line := range bad {
		if _, err := run(db, line); err == nil {
			t.Errorf("command %q succeeded, want error", line)
		}
	}
}
