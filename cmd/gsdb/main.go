// Command gsdb is an interactive shell for a graph structured database
// with incrementally maintained views. It speaks the paper's query and
// view-definition language and exposes the three basic updates.
//
// Usage:
//
//	gsdb                 # interactive
//	echo 'commands' | gsdb
//
// Commands (also shown by `help`):
//
//	load person|figure1|relations [n]   load a sample database
//	put set OID LABEL [CHILD...]        create a set object
//	put atom OID LABEL VALUE            create an atomic object
//	insert N1 N2                        insert(N1,N2)
//	delete N1 N2                        delete(N1,N2)
//	modify N VALUE                      modify(N, value)
//	show OID                            print one object
//	dump                                print every object
//	define (view|mview) NAME as: QUERY  define a view
//	views                               list views and their members
//	swizzle NAME / unswizzle NAME       toggle edge swizzling
//	SELECT ...                          run a query
//	quit
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gsv"
	"gsv/internal/oem"
	"gsv/internal/workload"
)

func main() {
	db := gsv.Open()
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	interactive := isTerminal()
	if interactive {
		fmt.Println("gsdb — graph structured views shell (type 'help')")
	}
	for {
		if interactive {
			fmt.Print("gsdb> ")
		}
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.EqualFold(line, "quit") || strings.EqualFold(line, "exit") {
			return
		}
		next, err := run(db, line)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
		if next != nil {
			db = next
		}
	}
}

func isTerminal() bool {
	fi, err := os.Stdin.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

func run(db *gsv.DB, line string) (*gsv.DB, error) {
	fields := strings.Fields(line)
	cmd := strings.ToLower(fields[0])
	switch cmd {
	case "help":
		fmt.Print(helpText)
		return nil, nil
	case "load":
		return nil, load(db, fields[1:])
	case "put":
		return nil, put(db, fields[1:])
	case "insert", "delete":
		if len(fields) != 3 {
			return nil, fmt.Errorf("usage: %s N1 N2", cmd)
		}
		var err error
		if cmd == "insert" {
			err = db.Insert(gsv.OID(fields[1]), gsv.OID(fields[2]))
		} else {
			err = db.Delete(gsv.OID(fields[1]), gsv.OID(fields[2]))
		}
		if err != nil {
			return nil, err
		}
		fmt.Printf("%s(%s, %s) ok\n", cmd, fields[1], fields[2])
		return nil, nil
	case "modify":
		if len(fields) < 3 {
			return nil, fmt.Errorf("usage: modify N VALUE")
		}
		v := oem.ParseAtom(strings.Join(fields[2:], " "))
		if err := db.Modify(gsv.OID(fields[1]), v); err != nil {
			return nil, err
		}
		fmt.Printf("modify(%s, %s) ok\n", fields[1], v)
		return nil, nil
	case "show":
		if len(fields) != 2 {
			return nil, fmt.Errorf("usage: show OID")
		}
		o, err := db.Get(gsv.OID(fields[1]))
		if err != nil {
			return nil, err
		}
		fmt.Println(o)
		return nil, nil
	case "dump":
		db.Store.ForEach(func(o *gsv.Object) { fmt.Println(o) })
		return nil, nil
	case "define":
		v, err := db.Define(line)
		if err != nil {
			return nil, err
		}
		kind := "view"
		if v.Materialized != nil {
			kind = fmt.Sprintf("mview (%s maintenance)", v.Strategy)
		}
		fmt.Printf("defined %s %s\n", kind, v.Name)
		return nil, nil
	case "views":
		for _, name := range db.Views.Names() {
			members, err := db.ViewMembers(name)
			if err != nil {
				return nil, err
			}
			v, _ := db.Views.Get(name)
			kind := "view"
			if v.Materialized != nil {
				kind = "mview"
			}
			fmt.Printf("%s %s: %v\n", kind, name, members)
		}
		return nil, nil
	case "swizzle", "unswizzle":
		if len(fields) != 2 {
			return nil, fmt.Errorf("usage: %s NAME", cmd)
		}
		v, ok := db.Views.Get(fields[1])
		if !ok || v.Materialized == nil {
			return nil, fmt.Errorf("%w: no materialized view %s", gsv.ErrViewNotFound, fields[1])
		}
		if cmd == "swizzle" {
			if err := v.Materialized.Swizzle(); err != nil {
				return nil, err
			}
		} else if err := v.Materialized.Unswizzle(); err != nil {
			return nil, err
		}
		fmt.Printf("%sd %s\n", cmd, fields[1])
		return nil, nil
	case "select":
		got, err := db.Query(line)
		if err != nil {
			return nil, err
		}
		fmt.Printf("<ANS, answer, set, %v>\n", got)
		return nil, nil
	case "aggregate":
		// aggregate NAME OP VALUEPATH as: SELECT ...
		rest := strings.SplitN(line, " ", 5)
		usage := fmt.Errorf("usage: aggregate NAME count|sum|min|max|avg VALUEPATH as: SELECT ...")
		if len(rest) < 5 {
			return nil, usage
		}
		tail := strings.TrimSpace(rest[4])
		if !strings.HasPrefix(strings.ToLower(tail), "as:") {
			return nil, usage
		}
		op, err := parseAggOp(rest[2])
		if err != nil {
			return nil, err
		}
		baseQuery := strings.TrimSpace(tail[3:])
		valuePath := rest[3]
		if valuePath == "." {
			valuePath = ""
		}
		if err := db.DefineAggregate(rest[1], op, baseQuery, valuePath); err != nil {
			return nil, err
		}
		v, err := db.AggregateValue(rest[1])
		if err != nil {
			return nil, err
		}
		fmt.Printf("aggregate %s = %s\n", rest[1], v)
		return nil, nil
	case "agg":
		if len(fields) != 2 {
			return nil, fmt.Errorf("usage: agg NAME")
		}
		v, err := db.AggregateValue(fields[1])
		if err != nil {
			return nil, err
		}
		fmt.Printf("%s = %s\n", fields[1], v)
		return nil, nil
	case "dot":
		// dot [FILE] [ROOT...]: Graphviz rendering of the store (or the
		// subgraph under the given roots) to FILE or stdout.
		var roots []gsv.OID
		target := ""
		if len(fields) > 1 {
			target = fields[1]
			for _, r := range fields[2:] {
				roots = append(roots, gsv.OID(r))
			}
		}
		if target == "" || target == "-" {
			return nil, db.Store.WriteDOT(os.Stdout, roots...)
		}
		f, err := os.Create(target)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := db.Store.WriteDOT(f, roots...); err != nil {
			return nil, err
		}
		fmt.Printf("wrote DOT to %s\n", target)
		return nil, f.Close()
	case "save":
		if len(fields) != 2 {
			return nil, fmt.Errorf("usage: save FILE")
		}
		if err := db.SaveFile(fields[1]); err != nil {
			return nil, err
		}
		fmt.Printf("saved %d objects to %s\n", db.Store.Len(), fields[1])
		return nil, nil
	case "savedb":
		if len(fields) != 2 {
			return nil, fmt.Errorf("usage: savedb FILE")
		}
		if err := db.SaveDBFile(fields[1]); err != nil {
			return nil, err
		}
		fmt.Printf("saved database and %d view definitions to %s\n", len(db.Views.Names()), fields[1])
		return nil, nil
	case "loaddb":
		if len(fields) != 2 {
			return nil, fmt.Errorf("usage: loaddb FILE")
		}
		restored, err := gsv.LoadDBFile(fields[1])
		if err != nil {
			return nil, err
		}
		fmt.Printf("restored %d objects and %d views from %s\n",
			restored.Store.Len(), len(restored.Views.Names()), fields[1])
		return restored, nil
	case "loadsnap":
		if len(fields) != 2 {
			return nil, fmt.Errorf("usage: loadsnap FILE")
		}
		restored, err := gsv.LoadFile(fields[1])
		if err != nil {
			return nil, err
		}
		fmt.Printf("restored %d objects from %s (views must be redefined)\n", restored.Store.Len(), fields[1])
		return restored, nil
	default:
		return nil, fmt.Errorf("unknown command %q (try 'help')", cmd)
	}
}

func parseAggOp(s string) (gsv.AggOp, error) {
	switch strings.ToLower(s) {
	case "count":
		return gsv.AggCount, nil
	case "sum":
		return gsv.AggSum, nil
	case "min":
		return gsv.AggMin, nil
	case "max":
		return gsv.AggMax, nil
	case "avg":
		return gsv.AggAvg, nil
	default:
		return 0, fmt.Errorf("unknown aggregate op %q", s)
	}
}

func load(db *gsv.DB, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: load person|figure1|relations [n]")
	}
	switch args[0] {
	case "person":
		workload.PersonDB(db.Store)
		fmt.Println("loaded PERSON (Figure 2): 15 objects + database object")
	case "figure1":
		workload.FigureOneDB(db.Store)
		fmt.Println("loaded Figure 1 graph: objects A..G")
	case "relations":
		n := 5
		if len(args) > 1 {
			v, err := strconv.Atoi(args[1])
			if err != nil {
				return err
			}
			n = v
		}
		workload.RelationLike(db.Store, workload.RelationConfig{
			Relations: 2, TuplesPerRelation: n, FieldsPerTuple: 3, Seed: 1,
		})
		fmt.Printf("loaded relation-like database (Figure 5): 2 relations x %d tuples\n", n)
	default:
		return fmt.Errorf("unknown sample %q", args[0])
	}
	db.Sync()
	return nil
}

func put(db *gsv.DB, args []string) error {
	if len(args) < 3 {
		return fmt.Errorf("usage: put set OID LABEL [CHILD...] | put atom OID LABEL VALUE")
	}
	switch args[0] {
	case "set":
		var kids []gsv.OID
		for _, k := range args[3:] {
			kids = append(kids, gsv.OID(k))
		}
		if err := db.PutSet(gsv.OID(args[1]), args[2], kids...); err != nil {
			return err
		}
	case "atom":
		if len(args) < 4 {
			return fmt.Errorf("usage: put atom OID LABEL VALUE")
		}
		v := oem.ParseAtom(strings.Join(args[3:], " "))
		if err := db.PutAtom(gsv.OID(args[1]), args[2], v); err != nil {
			return err
		}
	default:
		return fmt.Errorf("usage: put set|atom ...")
	}
	fmt.Printf("created %s\n", args[1])
	return nil
}

const helpText = `commands:
  load person|figure1|relations [n]   load a sample database
  put set OID LABEL [CHILD...]        create a set object
  put atom OID LABEL VALUE            create an atomic object
  insert N1 N2                        insert(N1,N2)
  delete N1 N2                        delete(N1,N2)
  modify N VALUE                      modify(N, value)
  show OID / dump                     inspect objects
  define (view|mview) NAME as: QUERY  define a view
  views                               list views and their members
  swizzle NAME / unswizzle NAME       toggle edge swizzling
  aggregate NAME OP PATH as: QUERY    define an aggregate (OP: count|sum|min|max|avg)
  agg NAME                            show an aggregate's current value
  dot [FILE [ROOT...]]                Graphviz rendering (stdout or FILE)
  save FILE                           snapshot the database
  loadsnap FILE                       replace the session with a raw snapshot
  savedb FILE / loaddb FILE           snapshot including view definitions
  SELECT OBJ.path X [WHERE ...] [WITHIN DB] [ANS INT DB]
  quit
`
