// Command gsdbserve exposes a GSDB source over TCP using the warehouse
// wire protocol (see docs/WAREHOUSE.md), optionally driving a seeded
// update stream against it so connected warehouses have something to
// maintain.
//
// With one or more -feed NAME=QUERY flags it additionally hosts a
// warehouse co-located with the source, maintains the named views against
// every driven update, and exposes their delta changefeeds through the
// "subscribe" connection mode (see docs/CHANGEFEED.md); gsdbwatch -follow
// tails them.
//
// Usage:
//
//	gsdbserve -addr :7070 -sample relations -tuples 50 \
//	          -level 2 -updates 100 -interval 200ms
//	gsdbserve -addr :7070 -snapshot db.gsv -root ROOT
//	gsdbserve -addr :7070 -sample relations -updates 200 \
//	          -feed 'HOT=SELECT REL.r0.tuple X WHERE X.age > 30'
//	gsdbserve -addr :7070 -sample relations -updates 200 \
//	          -feed 'HOT=...' -debugaddr 127.0.0.1:8080
//	gsdbserve -addr :7070 -sample relations -updates 500 \
//	          -chaos -chaos-err 0.05 -chaos-drop 0.02 -chaos-seed 42
//
// With -debugaddr the server additionally serves /metrics (Prometheus
// text format), /healthz and /readyz (readiness gates on view
// staleness), /debug/vars (expvar) and /debug/pprof over HTTP, and the
// same registry is available to remote clients through the "stats" wire
// request (gsdbwatch -stats); recent propagation span chains answer the
// "trace" request (gsdbwatch -trace). See docs/OBSERVABILITY.md.
//
// With -data DIR the -feed warehouse is durable (docs/DURABILITY.md): a
// write-ahead log of update reports plus periodic checkpoints land in
// DIR, and a restarted server recovers its views from the newest
// checkpoint and the WAL tail instead of re-materializing them. Reports
// the source emitted while the server was down are detected as a
// sequence gap; the affected views come back quarantined (stale) and the
// background repair loop resyncs them. -fsync picks the WAL fsync
// policy, -checkpoint-every and -checkpoint-interval the checkpoint
// cadence; SIGINT/SIGTERM checkpoints before exiting so the next start
// recovers instantly:
//
//	gsdbserve -addr :7070 -sample relations -updates 500 \
//	          -feed 'HOT=...' -data /var/lib/gsdb -fsync always
//
// With -chaos every accepted connection is wrapped in the deterministic
// fault injector (internal/faults): reads and writes fail, stall or drop
// the connection with the configured probabilities, seeded by
// -chaos-seed so a run is reproducible. This exercises client-side
// retries, redial and staleness repair (docs/WAREHOUSE.md, "Failure
// model") without any external tooling. Injected faults are counted in
// the metrics registry (gsv_faults_injected_total).
//
// Every applied update is broadcast to connected report streams;
// progress is logged to stderr via log/slog (-log-level picks the
// verbosity; per-update lines log at debug with their trace IDs).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gsv/internal/faults"
	"gsv/internal/feed"
	"gsv/internal/obs"
	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/wal"
	"gsv/internal/warehouse"
	"gsv/internal/workload"
)

// feedSpecs collects repeated -feed NAME=QUERY flags.
type feedSpecs []string

func (f *feedSpecs) String() string { return strings.Join(*f, ", ") }

func (f *feedSpecs) Set(v string) error {
	*f = append(*f, v)
	return nil
}

// fatal logs at error level and exits — the slog analogue of log.Fatalf.
func fatal(msg string, args ...any) {
	slog.Error(msg, args...)
	os.Exit(1)
}

// setupLogging installs the process-wide slog handler.
func setupLogging(level string) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		fmt.Fprintf(os.Stderr, "-log-level %q: %v\n", level, err)
		os.Exit(2)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})))
}

func main() {
	var feeds feedSpecs
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "listen address")
		sources  = flag.Int("sources", 1, "serve the database partitioned across N federated sources, shard k on the -addr port plus k (requires -sample relations)")
		sample   = flag.String("sample", "relations", "sample database: person|figure1|relations")
		tuples   = flag.Int("tuples", 50, "tuples per relation for -sample relations")
		snapshot = flag.String("snapshot", "", "serve a snapshot file instead of a sample")
		root     = flag.String("root", "", "root OID (defaults per sample; required with -snapshot)")
		level    = flag.Int("level", 2, "update report level (1..3)")
		updates  = flag.Int("updates", 0, "updates to drive (0 = serve statically)")
		interval = flag.Duration("interval", 250*time.Millisecond, "delay between driven updates")
		seed     = flag.Int64("seed", 1, "workload seed")
		feedRing = flag.Int("feedring", 1024, "changefeed replay ring size per view")
		debug    = flag.String("debugaddr", "", "HTTP introspection address serving /metrics, /healthz, /readyz, /debug/vars and /debug/pprof (empty = off)")
		logLevel = flag.String("log-level", "info", "log verbosity: debug|info|warn|error")

		dataDir  = flag.String("data", "", "durability directory for the -feed warehouse: WAL + checkpoints, recovered on restart (empty = in-memory)")
		fsync    = flag.String("fsync", "interval", "WAL fsync policy with -data: always|interval|never")
		ckptN    = flag.Int("checkpoint-every", 1024, "checkpoint after this many logged reports with -data")
		ckptWait = flag.Duration("checkpoint-interval", 30*time.Second, "background checkpoint period with -data (0 = only count-triggered)")

		maxConns    = flag.Int("max-conns", 0, "overload protection: cap on concurrently open connections (0 = unlimited)")
		maxStreams  = flag.Int("max-streams", 0, "overload protection: cap on attached report/feed streams (0 = unlimited)")
		maxInflight = flag.Int("max-inflight", 0, "overload protection: cap on admitted weighted read concurrency (0 = unlimited; scans weigh 4, lookups 1)")
		maxQueue    = flag.Int("max-queue", 0, "overload protection: admission queue depth; arrivals beyond it shed (0 = no queue)")
		queueWait   = flag.Duration("queue-timeout", 100*time.Millisecond, "overload protection: longest a read may wait for admission before shedding")
		minSlack    = flag.Duration("min-slack", 0, "overload protection: shed deadline-carrying reads with less than this budget remaining (0 = serve until expiry)")
		idleTimeout = flag.Duration("idle-timeout", 0, "hang up query connections idle this long (0 = never; report/feed streams are exempt)")
		drainWait   = flag.Duration("drain-timeout", 10*time.Second, "SIGTERM: how long a graceful drain waits for in-flight requests")

		chaos      = flag.Bool("chaos", false, "inject deterministic faults into every connection (see internal/faults)")
		chaosSeed  = flag.Int64("chaos-seed", 1, "fault injector seed (same seed = same fault schedule)")
		chaosDrop  = flag.Float64("chaos-drop", 0.01, "probability a read/write drops the connection")
		chaosErr   = flag.Float64("chaos-err", 0.03, "probability a read/write fails with an injected error")
		chaosDelay = flag.Float64("chaos-delay", 0.05, "probability a read/write is delayed")
		chaosLag   = flag.Duration("chaos-lag", 2*time.Millisecond, "injected delay duration")
	)
	flag.Var(&feeds, "feed", "host a warehouse view NAME=QUERY and expose its changefeed (repeatable)")
	flag.Parse()
	setupLogging(*logLevel)

	if *sources > 1 {
		// Federated mode: N autonomous sources over a partitioned sample,
		// supervised by a co-located Federation (federated.go). Modes that
		// assume exactly one source stay single-source-only.
		if *sample != "relations" || *snapshot != "" {
			fatal("-sources requires -sample relations (partitioning needs the relational sample)")
		}
		if *dataDir != "" {
			fatal("-data is not supported with -sources (per-shard durability is not wired yet)")
		}
		runFederated(fedParams{
			addr: *addr, sources: *sources, tuples: *tuples, level: *level,
			updates: *updates, interval: *interval, seed: *seed,
			feeds: feeds, debug: *debug,
			admission: warehouse.AdmissionConfig{
				MaxConns: *maxConns, MaxStreams: *maxStreams,
				MaxInflight: int64(*maxInflight), MaxQueue: *maxQueue,
				QueueWait: *queueWait, MinSlack: *minSlack,
			},
			idleTimeout: *idleTimeout, drainWait: *drainWait,
			chaos: *chaos, chaosSeed: *chaosSeed, chaosDrop: *chaosDrop,
			chaosErr: *chaosErr, chaosDelay: *chaosDelay, chaosLag: *chaosLag,
		})
		return
	}

	s := store.NewDefault()
	var sets, atoms []oem.OID
	rootOID := oem.OID(*root)
	switch {
	case *snapshot != "":
		if _, err := openSnapshot(*snapshot, s); err != nil {
			fatal("opening snapshot failed", "path", *snapshot, "err", err)
		}
		if rootOID == "" {
			fatal("-root is required with -snapshot")
		}
	case *sample == "person":
		workload.PersonDB(s)
		if rootOID == "" {
			rootOID = "ROOT"
		}
	case *sample == "figure1":
		workload.FigureOneDB(s)
		if rootOID == "" {
			rootOID = "A"
		}
	case *sample == "relations":
		db := workload.RelationLike(s, workload.RelationConfig{
			Relations: 2, TuplesPerRelation: *tuples, FieldsPerTuple: 3, Seed: *seed,
		})
		if rootOID == "" {
			rootOID = "REL"
		}
		for _, r := range db.Relations {
			sets = append(sets, r.OID)
			sets = append(sets, r.Tuples...)
			for _, tu := range r.Tuples {
				kids, _ := s.Children(tu)
				atoms = append(atoms, kids...)
			}
		}
	default:
		fatal("unknown sample", "sample", *sample)
	}

	tr := warehouse.NewTransport(0)
	src := warehouse.NewSource("gsdbserve", s, rootOID, warehouse.ReportLevel(*level), tr)
	src.DrainReports()
	server := warehouse.NewServer(src)

	// The metrics registry is always live (atomic counters cost nothing to
	// keep); -debugaddr and the stats wire request expose it.
	reg := obs.NewRegistry()
	src.RegisterObs(reg)
	tr.RegisterObs(reg, "source")
	server.Obs = reg

	// Overload protection is always on (a zero config admits everything
	// but still counts), so gsv_overload_* is always scrapeable and the
	// SIGTERM drain below is uniform.
	admission := warehouse.NewAdmissionController(warehouse.AdmissionConfig{
		MaxConns: *maxConns, MaxStreams: *maxStreams,
		MaxInflight: int64(*maxInflight), MaxQueue: *maxQueue,
		QueueWait: *queueWait, MinSlack: *minSlack,
	})
	admission.RegisterObs(reg)
	server.Admission = admission
	server.IdleTimeout = *idleTimeout

	// -feed views live in a warehouse co-located with the source; their
	// maintenance publishes into the hub the server exposes in subscribe
	// mode. The hub must be sized before the first DefineView registers
	// with it, and observability enabled before views register their
	// instruments.
	var lw *warehouse.Warehouse
	if *dataDir != "" && len(feeds) == 0 {
		fatal("-data needs at least one -feed view to make durable")
	}
	if len(feeds) > 0 {
		lw = warehouse.New(src)
		lw.Feed = feed.NewHub(feed.Options{RingSize: *feedRing})
		lw.Feed.RegisterObs(reg)
		lw.EnableObs(reg)
		server.Traces = lw.Traces
		server.Chains = lw.Chains

		// With -data the warehouse recovers from its last checkpoint plus
		// the WAL tail before any view definition runs: recovered views
		// resume incrementally (no re-materialization), and DefineView
		// below only fills in views the directory did not know about.
		if *dataDir != "" {
			policy, err := warehouse.ParseSyncPolicy(*fsync)
			if err != nil {
				fatal("bad -fsync policy", "err", err)
			}
			wm := wal.NewMetrics()
			wm.Register(reg, "warehouse")
			recovered, err := lw.EnableDurability(*dataDir, warehouse.DurabilityOptions{
				Policy:          policy,
				Metrics:         wm,
				CheckpointEvery: *ckptN,
			})
			if err != nil {
				fatal("enabling durability failed", "dir", *dataDir, "err", err)
			}
			if recovered {
				slog.Info("recovered warehouse state", "dir", *dataDir, "views", strings.Join(lw.ViewNames(), ","))
			} else {
				slog.Info("durable warehouse in fresh directory", "dir", *dataDir, "fsync", *fsync)
			}
			if *ckptWait > 0 {
				lw.StartCheckpointLoop(*ckptWait)
			}
		}

		for _, spec := range feeds {
			name, qs, ok := strings.Cut(spec, "=")
			if !ok {
				fatal("-feed wants NAME=QUERY", "got", spec)
			}
			if _, ok := lw.View(name); ok {
				slog.Info("feed view recovered from checkpoint", "view", name, "dir", *dataDir)
				continue
			}
			q, err := query.Parse(qs)
			if err != nil {
				fatal("parsing -feed query failed", "view", name, "err", err)
			}
			if _, err := lw.DefineView(name, q, warehouse.ViewConfig{Screening: *level >= 2}); err != nil {
				fatal("defining feed view failed", "view", name, "err", err)
			}
			slog.Info("feed view defined", "view", name, "query", qs)
		}
		server.Feed = lw.Feed
		// Replicas (gsdbreplica) and other strict readers resolve view
		// membership through the "members" wire op.
		server.Members = lw.FreshMembers
		// Views quarantined by a failed maintenance step (or a report gap)
		// are resynced in the background instead of staying stale forever.
		lw.StartRepairLoop(5 * time.Second)
	}

	if *debug != "" {
		reg.PublishExpvar("gsv")
		mux := obs.DebugMux(reg)
		// Readiness gates on view staleness: a quarantined view flips
		// /readyz to 503 until the repair loop resyncs it. Without -feed
		// views there is nothing to go stale and the server is always
		// ready.
		viewReady := func() error { return nil }
		if lw != nil {
			viewReady = lw.Ready
		}
		// A draining server answers 503 immediately so load balancers
		// stop routing to it before the listener disappears.
		obs.HealthHandlers(mux, func() error {
			if server.Draining() {
				return errDraining
			}
			return viewReady()
		})
		go func() {
			slog.Info("debug http listening", "addr", *debug,
				"endpoints", "/metrics /healthz /readyz /debug/vars /debug/pprof")
			if err := http.ListenAndServe(*debug, mux); err != nil {
				slog.Error("debug http stopped", "err", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen failed", "addr", *addr, "err", err)
	}
	// SIGINT/SIGTERM shuts down gracefully: stop accepting, flip /readyz
	// to 503, let in-flight requests finish within -drain-timeout, then
	// (when durable) checkpoint and release the WAL so the next start
	// recovers instantly instead of replaying the tail.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		slog.Info("draining", "timeout", *drainWait, "inflight_conns", server.ConnCount())
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := server.Drain(ctx); err != nil {
			slog.Warn("drain did not complete; closing anyway", "err", err)
		} else {
			slog.Info("drain complete")
		}
		if lw != nil && lw.Durable() {
			if err := lw.Close(); err != nil {
				slog.Error("shutdown checkpoint failed", "err", err)
			}
		}
		os.Exit(0)
	}()
	if *chaos {
		inj := faults.New(faults.Config{
			Seed:      *chaosSeed,
			DropProb:  *chaosDrop,
			ErrProb:   *chaosErr,
			DelayProb: *chaosDelay,
			Delay:     *chaosLag,
		})
		inj.RegisterObs(reg, "listener")
		ln = inj.WrapListener(ln)
		slog.Info("chaos fault injection on", "seed", *chaosSeed, "drop", *chaosDrop,
			"err_prob", *chaosErr, "delay", *chaosDelay, "lag", *chaosLag)
	}
	slog.Info("serving", "objects", s.Len(), "addr", ln.Addr().String(),
		"root", string(rootOID), "level", *level)

	if *updates > 0 && len(sets) > 0 {
		go drive(src, server, lw, sets, atoms, *updates, *interval, *seed)
	}
	if err := server.Serve(ln); err != nil {
		slog.Info("server stopped", "err", err)
	}
	if server.Draining() {
		// Serve returned because Drain closed the listener; the signal
		// goroutine finishes the shutdown and exits the process.
		select {}
	}
}

// errDraining answers /readyz while a graceful drain is in progress.
var errDraining = errors.New("draining")

func drive(src *warehouse.Source, server *warehouse.Server, lw *warehouse.Warehouse,
	sets, atoms []oem.OID, n int, interval time.Duration, seed int64) {
	stream := workload.NewStream(src.Store, workload.StreamConfig{Seed: seed + 7, ValueRange: 60}, sets, atoms)
	for i := 0; i < n; i++ {
		time.Sleep(interval)
		if _, ok := stream.Next(); !ok {
			return
		}
		reports := src.DrainReports()
		if lw != nil {
			// Maintain the feed views first so subscribe-mode events are
			// published no later than the corresponding report broadcast. A
			// failure quarantines the affected view (the repair loop resyncs
			// it); the stream and the other views keep going.
			if err := lw.ProcessAll(reports); err != nil {
				slog.Warn("feed maintenance failed; view quarantined for repair", "err", err)
			}
		}
		if err := server.Broadcast(reports); err != nil {
			slog.Warn("broadcast failed", "err", err)
			continue
		}
		for _, r := range reports {
			slog.Debug("update applied", "update", r.Update.String(),
				"seq", r.Update.Seq, "trace_id", r.Update.TraceID)
		}
	}
	slog.Info("update stream finished", "updates", n)
}

func openSnapshot(path string, s *store.Store) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	return path, s.Load(f)
}
