// Federated serving mode (-sources N, N > 1): the sample database is
// hash-partitioned with subtree affinity across N autonomous sources
// (docs/WAREHOUSE.md, "Multi-source federation & failure model"). Each
// source gets its own wire listener — shard k serves on the -addr port
// plus k — answering the full query-mode protocol including the "shard"
// federation handshake, so a federated client can discover which
// partition it reached and how healthy that source is. A Federation
// co-located with the sources consumes every shard's report stream over
// the loopback wire, maintains the -feed views as spanning member
// views, and supervises each source with the circuit-breaker state
// machine; -debugaddr's /readyz gates on its quorum (losing a minority
// of partitions degrades reads, it does not unready the service) and
// /metrics carries the gsv_source_* and gsv_federation_* series
// (gsdbwatch -stats renders them as the per-source section).
package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"log/slog"
	"net/http"
	"strings"

	"gsv/internal/faults"
	"gsv/internal/obs"
	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/warehouse"
	"gsv/internal/workload"
)

// fedParams carries the subset of gsdbserve's flags the federated mode
// consumes.
type fedParams struct {
	addr     string
	sources  int
	tuples   int
	level    int
	updates  int
	interval time.Duration
	seed     int64
	feeds    []string
	debug    string

	admission   warehouse.AdmissionConfig
	idleTimeout time.Duration
	drainWait   time.Duration

	chaos      bool
	chaosSeed  int64
	chaosDrop  float64
	chaosErr   float64
	chaosDelay float64
	chaosLag   time.Duration
}

// runFederated hosts the N-source federation until interrupted, then
// drains every shard and returns (main exits).
func runFederated(p fedParams) {
	host, portStr, err := net.SplitHostPort(p.addr)
	if err != nil {
		fatal("-sources needs -addr as host:port (shard k listens on port+k)", "addr", p.addr, "err", err)
	}
	basePort, err := strconv.Atoi(portStr)
	if err != nil {
		fatal("-sources needs a numeric -addr port (shard k listens on port+k)", "addr", p.addr, "err", err)
	}

	base := store.NewDefault()
	db := workload.RelationLike(base, workload.RelationConfig{
		Relations: 2, TuplesPerRelation: p.tuples, FieldsPerTuple: 3, Seed: p.seed,
	})
	part := warehouse.NewPartitioner(p.sources)
	stores, err := warehouse.PartitionStore(base, part, warehouse.PartitionConfig{Affinity: true})
	if err != nil {
		fatal("partitioning the sample database failed", "err", err)
	}

	reg := obs.NewRegistry()
	n := p.sources
	srcs := make([]*warehouse.Source, n)
	servers := make([]*warehouse.Server, n)
	listeners := make([]net.Listener, n)
	remotes := make([]warehouse.SourceAPI, n)
	// The ShardInfo hooks and the Federation reference each other (the
	// hook reports the supervisor's health, the supervisor lives in the
	// federation, and the federation dials the servers the hooks serve
	// on); the atomic pointer breaks the cycle — hooks answer with an
	// empty health state until the federation is up.
	var fedRef atomic.Pointer[warehouse.Federation]
	shardInfo := func(k int) func() *warehouse.ShardPayload {
		return func() *warehouse.ShardPayload {
			info := &warehouse.ShardPayload{
				Source: srcs[k].ID(), Shard: k, Shards: n,
				Seq: srcs[k].Store.Seq(),
			}
			if fed := fedRef.Load(); fed != nil {
				if sup, ok := fed.Supervisor(srcs[k].ID()); ok {
					info.State = sup.State().String()
					info.Watermark = sup.Watermark()
				}
			}
			return info
		}
	}
	for k := 0; k < n; k++ {
		name := fmt.Sprintf("source%d", k)
		srcs[k] = warehouse.NewSource(name, stores[k], db.Root,
			warehouse.ReportLevel(p.level), warehouse.NewTransport(0))
		srcs[k].DrainReports()
		srcs[k].RegisterObs(reg)

		shardAddr := net.JoinHostPort(host, strconv.Itoa(basePort+k))
		ln, err := net.Listen("tcp", shardAddr)
		if err != nil {
			fatal("listen failed", "source", name, "addr", shardAddr, "err", err)
		}
		listeners[k] = ln
		if p.chaos {
			inj := faults.New(faults.Config{
				Seed:      p.chaosSeed + int64(k),
				DropProb:  p.chaosDrop,
				ErrProb:   p.chaosErr,
				DelayProb: p.chaosDelay,
				Delay:     p.chaosLag,
			})
			inj.RegisterObs(reg, name)
			listeners[k] = inj.WrapListener(ln)
		}
		servers[k] = warehouse.NewServer(srcs[k])
		servers[k].ShardInfo = shardInfo(k)
		servers[k].Obs = reg
		// Every shard gets its own admission controller: overload on one
		// partition sheds there without starving its siblings, and the
		// per-source label keeps the gsv_overload_* series separable.
		ac := warehouse.NewAdmissionController(p.admission)
		ac.RegisterObs(reg, obs.L("source", name))
		servers[k].Admission = ac
		servers[k].IdleTimeout = p.idleTimeout
		srv, lnk := servers[k], listeners[k]
		go func() {
			if err := srv.Serve(lnk); err != nil {
				slog.Info("shard server stopped", "source", name, "err", err)
			}
		}()
		slog.Info("shard serving", "source", name, "addr", ln.Addr().String(),
			"objects", stores[k].Len(), "level", p.level)

		remote, err := warehouse.Dial(name, ln.Addr().String(), warehouse.NewTransport(0))
		if err != nil {
			fatal("dialing own shard failed", "source", name, "err", err)
		}
		remotes[k] = remote
	}

	fed, err := warehouse.NewFederation(remotes, warehouse.FederationConfig{Partitioner: part})
	if err != nil {
		fatal("building federation failed", "err", err)
	}
	fed.EnableObs(reg)
	fedRef.Store(fed)

	for _, spec := range p.feeds {
		name, qs, ok := strings.Cut(spec, "=")
		if !ok {
			fatal("-feed wants NAME=QUERY", "got", spec)
		}
		q, err := query.Parse(qs)
		if err != nil {
			fatal("parsing -feed query failed", "view", name, "err", err)
		}
		if err := fed.DefineView(name, q, warehouse.ViewConfig{Screening: p.level >= 2}); err != nil {
			fatal("defining federated view failed", "view", name, "err", err)
		}
		slog.Info("federated view defined (spanning all sources)", "view", name, "query", qs)
	}

	if p.debug != "" {
		reg.PublishExpvar("gsv")
		mux := obs.DebugMux(reg)
		// Readiness gates on source quorum, not per-view freshness: a
		// minority of dead partitions quarantines only their member views
		// and reads degrade to typed partial results; below quorum the
		// service is not ready. A drain in progress on any shard unreadies
		// the whole process — the federation is going away as a unit.
		obs.HealthHandlers(mux, func() error {
			for _, srv := range servers {
				if srv.Draining() {
					return fmt.Errorf("draining")
				}
			}
			return fed.Ready()
		})
		go func() {
			slog.Info("debug http listening", "addr", p.debug,
				"endpoints", "/metrics /healthz /readyz /debug/vars /debug/pprof")
			if err := http.ListenAndServe(p.debug, mux); err != nil {
				slog.Error("debug http stopped", "err", err)
			}
		}()
	}

	slog.Info("federation serving", "sources", n,
		"ports", fmt.Sprintf("%d-%d", basePort, basePort+n-1),
		"root", string(db.Root), "affinity_pins", part.Pinned())

	// The pump loop is the federation's single maintenance driver: every
	// tick it drains all shards' report streams concurrently, maintains
	// the member views, probes Down sources and repairs quarantined
	// views. Pump errors are degradation signals (a source tripping its
	// breaker), not fatal.
	go func() {
		for range time.Tick(p.interval) {
			if _, err := fed.Pump(); err != nil {
				slog.Warn("federation pump degraded", "err", err)
			}
		}
	}()

	if p.updates > 0 {
		go driveFederated(fed, srcs, servers, stores, db, p)
	}

	// SIGINT/SIGTERM drains every shard concurrently under one shared
	// timeout, then exits: each shard stops accepting, finishes its
	// in-flight reads, and the process leaves cleanly.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	slog.Info("draining federation", "shards", n, "timeout", p.drainWait)
	ctx, cancel := context.WithTimeout(context.Background(), p.drainWait)
	defer cancel()
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			if err := servers[k].Drain(ctx); err != nil {
				slog.Warn("shard drain did not complete; closing anyway",
					"source", srcs[k].ID(), "err", err)
			}
		}(k)
	}
	wg.Wait()
	slog.Info("federation drained")
}

// driveFederated spreads the -updates mix round-robin across the
// shards' own update streams, broadcasting every shard's reports to its
// connected report streams (the federation consumes them through its
// loopback clients like any other subscriber).
func driveFederated(fed *warehouse.Federation, srcs []*warehouse.Source,
	servers []*warehouse.Server, stores []*store.Store, db *workload.RelationDB, p fedParams) {
	n := len(srcs)
	streams := make([]*workload.Stream, n)
	for k := 0; k < n; k++ {
		var sets, atoms []oem.OID
		for _, r := range db.Relations {
			sets = append(sets, r.OID)
			for _, tu := range r.Tuples {
				if !stores[k].Has(tu) {
					continue
				}
				sets = append(sets, tu)
				kids, _ := stores[k].Children(tu)
				atoms = append(atoms, kids...)
			}
		}
		streams[k] = workload.NewStream(stores[k], workload.StreamConfig{
			Seed: p.seed + 7 + int64(k), ValueRange: 60,
		}, sets, atoms)
	}
	for i := 0; i < p.updates; i++ {
		time.Sleep(p.interval)
		k := i % n
		if _, ok := streams[k].Next(); !ok {
			slog.Info("update stream exhausted", "source", srcs[k].ID())
			return
		}
		reports := srcs[k].DrainReports()
		if err := servers[k].Broadcast(reports); err != nil {
			slog.Warn("broadcast failed", "source", srcs[k].ID(), "err", err)
			continue
		}
		for _, r := range reports {
			slog.Debug("update applied", "source", srcs[k].ID(),
				"update", r.Update.String(), "seq", r.Update.Seq)
		}
	}
	slog.Info("update streams finished", "updates", p.updates)
	for _, v := range fed.ViewNames() {
		if members, err := fed.Members(v); err == nil {
			slog.Info("federated view converged", "view", v, "members", len(members))
		}
	}
}
