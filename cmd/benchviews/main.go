// Command benchviews runs the paper-reproduction experiments E1–E7 and
// prints their tables (see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for a recorded run).
//
// With -json the tables plus a set of E1 maintenance micro-benchmarks
// are written to a machine-readable report (BENCH_<timestamp>.json, or
// -out PATH); EXPERIMENTS.md documents the schema and `make bench-json`
// is the one-command entry point.
//
// Usage:
//
//	benchviews [-e E1,E4] [-scale N] [-updates N] [-seed N] [-markdown]
//	benchviews -e E1 -json [-out bench.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gsv/internal/experiments"
)

func main() {
	var (
		only     = flag.String("e", "", "comma-separated experiment ids to run (default: all)")
		scale    = flag.Int("scale", 1, "workload scale multiplier")
		updates  = flag.Int("updates", 400, "updates per measured stream")
		seed     = flag.Int64("seed", 42, "workload seed")
		markdown = flag.Bool("markdown", false, "emit GitHub-flavored markdown")
		jsonOut  = flag.Bool("json", false, "write tables + micro-benchmarks to a JSON report instead of stdout")
		outPath  = flag.String("out", "", "JSON report path (default BENCH_<timestamp>.json)")
	)
	flag.Parse()

	cfg := experiments.Config{Scale: *scale, Updates: *updates, Seed: *seed}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	runners := []struct {
		id  string
		run func(experiments.Config) *experiments.Table
	}{
		{"E1", experiments.E1IncrementalVsRecompute},
		{"E2", experiments.E2ParentIndexAblation},
		{"E3", experiments.E3RelationalBaseline},
		{"E4", experiments.E4ReportingLevels},
		{"E5", experiments.E5Caching},
		{"E6", experiments.E6Swizzling},
		{"E7", experiments.E7GeneralizedViews},
		{"E8", experiments.E8BulkUpdateIntent},
		{"E9", experiments.E9ClusterSharing},
		{"E10", experiments.E10DataGuide},
		{"E11", experiments.E11WireValidation},
		{"E12", experiments.E12ParallelBatchedMaintenance},
		{"E13", experiments.E13CrashRecovery},
		{"E14", experiments.E14ReplicaScaling},
		{"E15", experiments.E15ShardScaling},
		{"E16", experiments.E16SnapshotReadInterference},
		{"E17", experiments.E17OverloadShedding},
	}
	var tables []*experiments.Table
	for _, r := range runners {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		t := r.run(cfg)
		tables = append(tables, t)
		switch {
		case *jsonOut:
			// Collected into the report below.
		case *markdown:
			t.Markdown(os.Stdout)
		default:
			t.Write(os.Stdout)
		}
	}
	if len(tables) == 0 {
		fmt.Fprintf(os.Stderr, "benchviews: no experiment matches %q (have E1..E17)\n", *only)
		os.Exit(1)
	}
	if *jsonOut {
		path := *outPath
		if path == "" {
			path = defaultJSONPath(time.Now())
		}
		if err := writeJSONReport(path, cfg, tables); err != nil {
			fmt.Fprintf(os.Stderr, "benchviews: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d tables, E1 micro-benchmarks)\n", path, len(tables))
	}
}
