// Command benchviews runs the paper-reproduction experiments E1–E7 and
// prints their tables (see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for a recorded run).
//
// Usage:
//
//	benchviews [-e E1,E4] [-scale N] [-updates N] [-seed N] [-markdown]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gsv/internal/experiments"
)

func main() {
	var (
		only     = flag.String("e", "", "comma-separated experiment ids to run (default: all)")
		scale    = flag.Int("scale", 1, "workload scale multiplier")
		updates  = flag.Int("updates", 400, "updates per measured stream")
		seed     = flag.Int64("seed", 42, "workload seed")
		markdown = flag.Bool("markdown", false, "emit GitHub-flavored markdown")
	)
	flag.Parse()

	cfg := experiments.Config{Scale: *scale, Updates: *updates, Seed: *seed}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	runners := []struct {
		id  string
		run func(experiments.Config) *experiments.Table
	}{
		{"E1", experiments.E1IncrementalVsRecompute},
		{"E2", experiments.E2ParentIndexAblation},
		{"E3", experiments.E3RelationalBaseline},
		{"E4", experiments.E4ReportingLevels},
		{"E5", experiments.E5Caching},
		{"E6", experiments.E6Swizzling},
		{"E7", experiments.E7GeneralizedViews},
		{"E8", experiments.E8BulkUpdateIntent},
		{"E9", experiments.E9ClusterSharing},
		{"E10", experiments.E10DataGuide},
		{"E11", experiments.E11WireValidation},
	}
	ran := 0
	for _, r := range runners {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		t := r.run(cfg)
		if *markdown {
			t.Markdown(os.Stdout)
		} else {
			t.Write(os.Stdout)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "benchviews: no experiment matches %q (have E1..E11)\n", *only)
		os.Exit(1)
	}
}
