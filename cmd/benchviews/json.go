// JSON report mode: -json writes the experiment tables plus a set of
// Go micro-benchmarks to a machine-readable file (BENCH_<timestamp>.json
// by default; schema documented in EXPERIMENTS.md). CI uploads the file
// as an artifact so runs can be compared across commits.

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"gsv/internal/core"
	"gsv/internal/experiments"
	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/workload"
)

// benchSchema names the report layout; bump it when fields change shape.
const benchSchema = "gsv-bench/1"

// benchReport is the top-level document written by -json.
type benchReport struct {
	Schema string    `json:"schema"`
	Date   time.Time `json:"date"`
	Go     string    `json:"go"`
	OS     string    `json:"os"`
	Arch   string    `json:"arch"`
	CPUs   int       `json:"cpus"`
	Config struct {
		Scale   int   `json:"scale"`
		Updates int   `json:"updates"`
		Seed    int64 `json:"seed"`
	} `json:"config"`
	Tables     []benchTable  `json:"tables"`
	Benchmarks []benchResult `json:"benchmarks"`
}

type benchTable struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Caption string     `json:"caption,omitempty"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

type benchResult struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// writeJSONReport runs the micro-benchmarks and writes the full report.
func writeJSONReport(path string, cfg experiments.Config, tables []*experiments.Table) error {
	var doc benchReport
	doc.Schema = benchSchema
	doc.Date = time.Now().UTC()
	doc.Go = runtime.Version()
	doc.OS = runtime.GOOS
	doc.Arch = runtime.GOARCH
	doc.CPUs = runtime.NumCPU()
	doc.Config.Scale = cfg.Scale
	doc.Config.Updates = cfg.Updates
	doc.Config.Seed = cfg.Seed

	for _, t := range tables {
		doc.Tables = append(doc.Tables, benchTable{
			ID: t.ID, Title: t.Title, Caption: t.Caption,
			Headers: t.Headers, Rows: t.Rows,
		})
	}

	for _, mb := range microBenchmarks() {
		r := testing.Benchmark(mb.run)
		res := benchResult{
			Name:        mb.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if len(r.Extra) > 0 {
			res.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				res.Metrics[k] = v
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, res)
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := encodeReport(f, &doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func encodeReport(w io.Writer, doc *benchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// microBenchmarks replicates the E1-style maintenance micro-benchmarks
// from the root package's bench_test.go (test files are not importable,
// so the fixtures are rebuilt here from the same workload primitives).
func microBenchmarks() []struct {
	name string
	run  func(b *testing.B)
} {
	const benchView = "SELECT REL.r0.tuple X WHERE X.age > 30"
	fixture := func(b *testing.B, tuples int) (*store.Store, []oem.OID, []oem.OID) {
		b.Helper()
		s := store.NewDefault()
		db := workload.RelationLike(s, workload.RelationConfig{
			Relations: 2, TuplesPerRelation: tuples, FieldsPerTuple: 3, Seed: 7,
		})
		var sets, atoms []oem.OID
		for _, r := range db.Relations {
			sets = append(sets, r.OID)
			sets = append(sets, r.Tuples...)
			for _, tu := range r.Tuples {
				kids, _ := s.Children(tu)
				atoms = append(atoms, kids...)
			}
		}
		return s, sets, atoms
	}
	incremental := func(tuples int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			s, sets, atoms := fixture(b, tuples)
			vstore := store.New(store.Options{ParentIndex: true, AllowDangling: true})
			mv, err := core.Materialize("V", query.MustParse(benchView), s, vstore)
			if err != nil {
				b.Fatal(err)
			}
			m, err := core.NewSimpleMaintainer(mv, core.NewCentralAccess(s))
			if err != nil {
				b.Fatal(err)
			}
			stream := workload.NewStream(s, workload.StreamConfig{Seed: 9, ValueRange: 60}, sets, atoms)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				us, ok := stream.Next()
				if !ok {
					b.Fatal("stream exhausted")
				}
				for _, u := range us {
					if err := m.Apply(u); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
	recompute := func(tuples int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			s, sets, atoms := fixture(b, tuples)
			vstore := store.New(store.Options{ParentIndex: true, AllowDangling: true})
			mv, err := core.Materialize("V", query.MustParse(benchView), s, vstore)
			if err != nil {
				b.Fatal(err)
			}
			stream := workload.NewStream(s, workload.StreamConfig{Seed: 9, ValueRange: 60}, sets, atoms)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := stream.Next(); !ok {
					b.Fatal("stream exhausted")
				}
				if err := mv.Recompute(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	return []struct {
		name string
		run  func(b *testing.B)
	}{
		{"E1IncrementalMaintenance/tuples=100", incremental(100)},
		{"E1IncrementalMaintenance/tuples=1000", incremental(1000)},
		{"E1Recompute/tuples=100", recompute(100)},
		{"E1Recompute/tuples=1000", recompute(1000)},
	}
}

// defaultJSONPath names the report file after the wall clock, matching
// the BENCH_<timestamp>.json convention in EXPERIMENTS.md.
func defaultJSONPath(now time.Time) string {
	return fmt.Sprintf("BENCH_%s.json", now.UTC().Format("20060102T150405"))
}
