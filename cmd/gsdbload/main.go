// Command gsdbload drives a budgeted closed-loop read load against one
// or more gsdbserve/gsdbreplica servers and reports goodput — answers
// that arrived within the per-request deadline budget — separately from
// dead answers, typed overload sheds and failures (docs/WAREHOUSE.md,
// "Overload & graceful drain"). It is the operational companion to the
// E17 experiment: point it at a live server to see whether admission
// control is shedding and what the admitted-read latency looks like.
//
// Usage:
//
//	gsdbload -addr 127.0.0.1:7070 -clients 64 -duration 2s \
//	         -query 'SELECT ROOT.professor X WHERE X.age <= 45'
//	gsdbload -addr 127.0.0.1:7171 -view YP -budget 25ms
//	gsdbload -addr 127.0.0.1:7070,127.0.0.1:7071 -object 'P1'
//
// At least one of -query/-view/-object must be given (repeat or
// comma-separate for a mix). Exit status is 0 when the run recorded any
// goodput, 1 when it recorded none (the server was down, fully
// overloaded, or every answer was late), 2 on usage errors. With
// -require-sheds the run also fails unless the server shed at least one
// request — the overload-smoke assertion that protection is actually
// engaging.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gsv/internal/workload"
)

func main() {
	var (
		addrs       = flag.String("addr", "127.0.0.1:7070", "server address(es), comma-separated; clients spread round-robin")
		clients     = flag.Int("clients", 16, "concurrent closed-loop reader connections")
		duration    = flag.Duration("duration", 2*time.Second, "measured load window")
		warmup      = flag.Duration("warmup", 200*time.Millisecond, "unmeasured ramp-up before the window")
		queries     = flag.String("query", "", "query statement(s) to drive, comma-separated")
		views       = flag.String("view", "", "view name(s) to fetch members of, comma-separated")
		objects     = flag.String("object", "", "OID(s) to fetch, comma-separated")
		budget      = flag.Duration("budget", 25*time.Millisecond, "per-request deadline budget; later answers are dead, not goodput")
		backoff     = flag.Duration("shed-backoff", 5*time.Millisecond, "client wait after a typed shed before retrying")
		seed        = flag.Int64("seed", 1, "workload interleaving seed")
		requireShed = flag.Bool("require-sheds", false, "exit nonzero unless the server shed at least one request")
	)
	flag.Parse()

	split := func(s string) []string {
		if s == "" {
			return nil
		}
		var out []string
		for _, f := range strings.Split(s, ",") {
			if f = strings.TrimSpace(f); f != "" {
				out = append(out, f)
			}
		}
		return out
	}
	cfg := workload.BudgetedReadConfig{
		Addrs:       split(*addrs),
		Clients:     *clients,
		Duration:    *duration,
		Warmup:      *warmup,
		Queries:     split(*queries),
		Views:       split(*views),
		Objects:     split(*objects),
		Budget:      *budget,
		ShedBackoff: *backoff,
		Seed:        *seed,
	}
	if len(cfg.Addrs) == 0 {
		fmt.Fprintln(os.Stderr, "gsdbload: -addr must name at least one server")
		os.Exit(2)
	}
	if len(cfg.Queries)+len(cfg.Views)+len(cfg.Objects) == 0 {
		fmt.Fprintln(os.Stderr, "gsdbload: need at least one of -query/-view/-object")
		os.Exit(2)
	}

	res := workload.RunBudgetedReadLoad(cfg)
	fmt.Printf("%s\n", res.String())
	fmt.Printf("goodput %.1f/s  p99 %.2fms  window %s\n",
		res.Goodput(), res.P99()*1e3, res.Elapsed.Round(time.Millisecond))
	if res.Good == 0 {
		fmt.Fprintln(os.Stderr, "gsdbload: no goodput recorded")
		os.Exit(1)
	}
	if *requireShed && res.Sheds == 0 {
		fmt.Fprintln(os.Stderr, "gsdbload: -require-sheds: server shed nothing")
		os.Exit(1)
	}
}
