// Command gsdbreplica runs one read-replica node (docs/REPLICA.md): it
// bootstraps the primary's materialized views — from a checkpoint
// directory when one is given, from live snapshots otherwise — tails the
// primary's changefeed for every view over one multi-view subscription,
// and serves the read side of the warehouse wire protocol (query,
// members, stats, trace, subscribe) with a bounded-staleness guarantee.
//
// Usage:
//
//	gsdbreplica -primary 127.0.0.1:7070 -addr 127.0.0.1:7171
//	gsdbreplica -primary 127.0.0.1:7070 -addr :7171 \
//	            -bootstrap /var/lib/gsdb -max-lag 1000 -max-lag-age 5s
//	gsdbreplica -primary 127.0.0.1:7070 -addr :7171 \
//	            -debugaddr 127.0.0.1:8181
//
// The replica survives primary restarts: the feed connection redials
// with exponential backoff and resumes from the last applied cursor,
// falling back to a fresh snapshot when the primary's replay ring has
// already evicted it. While lag exceeds -max-lag (sequence distance) or
// -max-lag-age (time since last caught up — which includes being
// disconnected), data reads are rejected; stats and trace always answer,
// so operators can see how sick the node is (gsdbwatch -stats, -trace).
// With -debugaddr the same bounds gate /readyz (503 while lag exceeds
// them); /healthz, /metrics, /debug/vars and /debug/pprof are served
// alongside. Logging goes to stderr via log/slog; -log-level picks the
// verbosity.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gsv/internal/obs"
	"gsv/internal/replica"
)

// fatal logs at error level and exits — the slog analogue of log.Fatalf.
func fatal(msg string, args ...any) {
	slog.Error(msg, args...)
	os.Exit(1)
}

// setupLogging installs the process-wide slog handler.
func setupLogging(level string) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		fmt.Fprintf(os.Stderr, "-log-level %q: %v\n", level, err)
		os.Exit(2)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})))
}

func main() {
	var (
		primaryAddr = flag.String("primary", "127.0.0.1:7070", "primary server address")
		addr        = flag.String("addr", "127.0.0.1:7171", "listen address for read traffic")
		name        = flag.String("name", "replica", "replica name (metrics label, client ID)")
		bootstrap   = flag.String("bootstrap", "", "primary checkpoint directory to bootstrap from (empty = live snapshot)")
		maxLag      = flag.Uint64("max-lag", 0, "reject reads when this many base updates behind the primary (0 = unbounded)")
		maxLagAge   = flag.Duration("max-lag-age", 0, "reject reads when not caught up for this long (0 = unbounded)")
		ring        = flag.Int("feedring", 1024, "replay ring size per view of the replica's republished changefeed")
		debug       = flag.String("debugaddr", "", "HTTP introspection address serving /metrics, /healthz, /readyz, /debug/vars and /debug/pprof (empty = off)")
		dialWait    = flag.Duration("dial-timeout", 30*time.Second, "how long to keep retrying the initial primary dial")
		logLevel    = flag.String("log-level", "info", "log verbosity: debug|info|warn|error")
	)
	flag.Parse()
	setupLogging(*logLevel)

	opts := replica.Options{
		Name:         *name,
		Primary:      *primaryAddr,
		BootstrapDir: *bootstrap,
		MaxLagSeq:    *maxLag,
		MaxLagAge:    *maxLagAge,
		RingSize:     *ring,
	}
	// The tail loop redials forever once attached, but the very first
	// dial fails fast so a typo'd -primary is visible; retry it here so
	// "replica starts before primary" works in scripts and demos.
	var r *replica.Replica
	var err error
	deadline := time.Now().Add(*dialWait)
	for {
		r, err = replica.New(opts)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			fatal("primary unreachable", "primary", *primaryAddr, "err", err)
		}
		slog.Info("waiting for primary", "primary", *primaryAddr, "err", err)
		time.Sleep(500 * time.Millisecond)
	}
	if *bootstrap != "" {
		slog.Info("bootstrapped from checkpoint", "dir", *bootstrap, "views", fmt.Sprint(r.Views()))
	}

	reg := obs.NewRegistry()
	r.RegisterObs(reg)
	server := r.NewServer(reg)

	if *debug != "" {
		reg.PublishExpvar("gsv")
		mux := obs.DebugMux(reg)
		// Readiness gates on the same staleness bounds as the read gate:
		// /readyz answers 503 while lag exceeds -max-lag/-max-lag-age.
		obs.HealthHandlers(mux, r.Ready)
		go func() {
			slog.Info("debug http listening", "addr", *debug,
				"endpoints", "/metrics /healthz /readyz /debug/vars /debug/pprof")
			if err := http.ListenAndServe(*debug, mux); err != nil {
				slog.Error("debug http stopped", "err", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen failed", "addr", *addr, "err", err)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		server.Close()
		r.Close()
		os.Exit(0)
	}()

	if r.WaitCaughtUp(10 * time.Second) {
		seq, _ := r.Lag()
		slog.Info("caught up with primary, serving",
			"primary", *primaryAddr, "lag", seq, "views", fmt.Sprint(r.Views()), "addr", ln.Addr().String())
	} else {
		slog.Info("still catching up, serving",
			"primary", *primaryAddr, "views", fmt.Sprint(r.Views()), "addr", ln.Addr().String())
	}
	if err := server.Serve(ln); err != nil {
		slog.Info("server stopped", "err", err)
	}
}
