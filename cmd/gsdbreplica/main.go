// Command gsdbreplica runs one read-replica node (docs/REPLICA.md): it
// bootstraps the primary's materialized views — from a checkpoint
// directory when one is given, from live snapshots otherwise — tails the
// primary's changefeed for every view over one multi-view subscription,
// and serves the read side of the warehouse wire protocol (query,
// members, stats, trace, subscribe) with a bounded-staleness guarantee.
//
// Usage:
//
//	gsdbreplica -primary 127.0.0.1:7070 -addr 127.0.0.1:7171
//	gsdbreplica -primary 127.0.0.1:7070 -addr :7171 \
//	            -bootstrap /var/lib/gsdb -max-lag 1000 -max-lag-age 5s
//	gsdbreplica -primary 127.0.0.1:7070 -addr :7171 \
//	            -debugaddr 127.0.0.1:8181
//
// The replica survives primary restarts: the feed connection redials
// with exponential backoff and resumes from the last applied cursor,
// falling back to a fresh snapshot when the primary's replay ring has
// already evicted it. While lag exceeds -max-lag (sequence distance) or
// -max-lag-age (time since last caught up — which includes being
// disconnected), data reads are rejected; stats and trace always answer,
// so operators can see how sick the node is (gsdbwatch -stats, -trace).
// With -debugaddr the same bounds gate /readyz (503 while lag exceeds
// them); /healthz, /metrics, /debug/vars and /debug/pprof are served
// alongside. Logging goes to stderr via log/slog; -log-level picks the
// verbosity.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gsv/internal/obs"
	"gsv/internal/replica"
	"gsv/internal/warehouse"
)

// fatal logs at error level and exits — the slog analogue of log.Fatalf.
func fatal(msg string, args ...any) {
	slog.Error(msg, args...)
	os.Exit(1)
}

// setupLogging installs the process-wide slog handler.
func setupLogging(level string) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		fmt.Fprintf(os.Stderr, "-log-level %q: %v\n", level, err)
		os.Exit(2)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})))
}

func main() {
	var (
		primaryAddr = flag.String("primary", "127.0.0.1:7070", "primary server address")
		addr        = flag.String("addr", "127.0.0.1:7171", "listen address for read traffic")
		name        = flag.String("name", "replica", "replica name (metrics label, client ID)")
		bootstrap   = flag.String("bootstrap", "", "primary checkpoint directory to bootstrap from (empty = live snapshot)")
		maxLag      = flag.Uint64("max-lag", 0, "reject reads when this many base updates behind the primary (0 = unbounded)")
		maxLagAge   = flag.Duration("max-lag-age", 0, "reject reads when not caught up for this long (0 = unbounded)")
		ring        = flag.Int("feedring", 1024, "replay ring size per view of the replica's republished changefeed")
		debug       = flag.String("debugaddr", "", "HTTP introspection address serving /metrics, /healthz, /readyz, /debug/vars and /debug/pprof (empty = off)")
		dialWait    = flag.Duration("dial-timeout", 30*time.Second, "how long to keep retrying the initial primary dial")
		maxConns    = flag.Int("max-conns", 0, "overload protection: cap on concurrently open connections (0 = unlimited)")
		maxStreams  = flag.Int("max-streams", 0, "overload protection: cap on attached feed subscribers (0 = unlimited)")
		maxInflight = flag.Int("max-inflight", 0, "overload protection: cap on admitted weighted read concurrency (0 = unlimited; scans weigh 4, lookups 1)")
		maxQueue    = flag.Int("max-queue", 0, "overload protection: admission queue depth; arrivals beyond it shed (0 = no queue)")
		queueWait   = flag.Duration("queue-timeout", 100*time.Millisecond, "overload protection: longest a read may wait for admission before shedding")
		minSlack    = flag.Duration("min-slack", 0, "overload protection: shed deadline-carrying reads with less than this budget remaining (0 = serve until expiry)")
		idleTimeout = flag.Duration("idle-timeout", 0, "hang up query connections idle this long (0 = never; feed streams are exempt)")
		drainWait   = flag.Duration("drain-timeout", 10*time.Second, "SIGTERM: how long a graceful drain waits for in-flight requests")
		logLevel    = flag.String("log-level", "info", "log verbosity: debug|info|warn|error")
	)
	flag.Parse()
	setupLogging(*logLevel)

	opts := replica.Options{
		Name:         *name,
		Primary:      *primaryAddr,
		BootstrapDir: *bootstrap,
		MaxLagSeq:    *maxLag,
		MaxLagAge:    *maxLagAge,
		RingSize:     *ring,
	}
	// The tail loop redials forever once attached, but the very first
	// dial fails fast so a typo'd -primary is visible; retry it here so
	// "replica starts before primary" works in scripts and demos.
	var r *replica.Replica
	var err error
	deadline := time.Now().Add(*dialWait)
	for {
		r, err = replica.New(opts)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			fatal("primary unreachable", "primary", *primaryAddr, "err", err)
		}
		slog.Info("waiting for primary", "primary", *primaryAddr, "err", err)
		time.Sleep(500 * time.Millisecond)
	}
	if *bootstrap != "" {
		slog.Info("bootstrapped from checkpoint", "dir", *bootstrap, "views", fmt.Sprint(r.Views()))
	}

	reg := obs.NewRegistry()
	r.RegisterObs(reg)
	server := r.NewServer(reg)
	// Overload protection is always on (a zero config admits everything
	// but still counts), so gsv_overload_* is always scrapeable and the
	// SIGTERM drain below is uniform.
	admission := warehouse.NewAdmissionController(warehouse.AdmissionConfig{
		MaxConns: *maxConns, MaxStreams: *maxStreams,
		MaxInflight: int64(*maxInflight), MaxQueue: *maxQueue,
		QueueWait: *queueWait, MinSlack: *minSlack,
	})
	admission.RegisterObs(reg, obs.L("node", *name))
	server.Admission = admission
	server.IdleTimeout = *idleTimeout

	if *debug != "" {
		reg.PublishExpvar("gsv")
		mux := obs.DebugMux(reg)
		// Readiness gates on the same staleness bounds as the read gate
		// (/readyz answers 503 while lag exceeds -max-lag/-max-lag-age)
		// plus drain state, so load balancers stop routing here the moment
		// a shutdown begins.
		obs.HealthHandlers(mux, func() error {
			if server.Draining() {
				return errors.New("draining")
			}
			return r.Ready()
		})
		go func() {
			slog.Info("debug http listening", "addr", *debug,
				"endpoints", "/metrics /healthz /readyz /debug/vars /debug/pprof")
			if err := http.ListenAndServe(*debug, mux); err != nil {
				slog.Error("debug http stopped", "err", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen failed", "addr", *addr, "err", err)
	}
	// SIGINT/SIGTERM drains gracefully: stop accepting, flip /readyz to
	// 503, shed new data reads with the typed retryable error (clients
	// fail over to a sibling replica), finish in-flight requests within
	// -drain-timeout, then detach from the primary and exit.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		slog.Info("draining", "timeout", *drainWait, "inflight_conns", server.ConnCount())
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := server.Drain(ctx); err != nil {
			slog.Warn("drain did not complete; closing anyway", "err", err)
		} else {
			slog.Info("drain complete")
		}
		r.Close()
		os.Exit(0)
	}()

	if r.WaitCaughtUp(10 * time.Second) {
		seq, _ := r.Lag()
		slog.Info("caught up with primary, serving",
			"primary", *primaryAddr, "lag", seq, "views", fmt.Sprint(r.Views()), "addr", ln.Addr().String())
	} else {
		slog.Info("still catching up, serving",
			"primary", *primaryAddr, "views", fmt.Sprint(r.Views()), "addr", ln.Addr().String())
	}
	if err := server.Serve(ln); err != nil {
		slog.Info("server stopped", "err", err)
	}
	if server.Draining() {
		// Serve returned because Drain closed the listener; the signal
		// goroutine finishes the shutdown and exits the process.
		select {}
	}
}
