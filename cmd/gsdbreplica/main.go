// Command gsdbreplica runs one read-replica node (docs/REPLICA.md): it
// bootstraps the primary's materialized views — from a checkpoint
// directory when one is given, from live snapshots otherwise — tails the
// primary's changefeed for every view over one multi-view subscription,
// and serves the read side of the warehouse wire protocol (query,
// members, stats, subscribe) with a bounded-staleness guarantee.
//
// Usage:
//
//	gsdbreplica -primary 127.0.0.1:7070 -addr 127.0.0.1:7171
//	gsdbreplica -primary 127.0.0.1:7070 -addr :7171 \
//	            -bootstrap /var/lib/gsdb -max-lag 1000 -max-lag-age 5s
//	gsdbreplica -primary 127.0.0.1:7070 -addr :7171 \
//	            -debugaddr 127.0.0.1:8181
//
// The replica survives primary restarts: the feed connection redials
// with exponential backoff and resumes from the last applied cursor,
// falling back to a fresh snapshot when the primary's replay ring has
// already evicted it. While lag exceeds -max-lag (sequence distance) or
// -max-lag-age (time since last caught up — which includes being
// disconnected), data reads are rejected; stats always answer, so
// operators can see how sick the node is (gsdbwatch -stats).
package main

import (
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gsv/internal/obs"
	"gsv/internal/replica"
)

func main() {
	var (
		primaryAddr = flag.String("primary", "127.0.0.1:7070", "primary server address")
		addr        = flag.String("addr", "127.0.0.1:7171", "listen address for read traffic")
		name        = flag.String("name", "replica", "replica name (metrics label, client ID)")
		bootstrap   = flag.String("bootstrap", "", "primary checkpoint directory to bootstrap from (empty = live snapshot)")
		maxLag      = flag.Uint64("max-lag", 0, "reject reads when this many base updates behind the primary (0 = unbounded)")
		maxLagAge   = flag.Duration("max-lag-age", 0, "reject reads when not caught up for this long (0 = unbounded)")
		ring        = flag.Int("feedring", 1024, "replay ring size per view of the replica's republished changefeed")
		debug       = flag.String("debugaddr", "", "HTTP introspection address serving /metrics, /debug/vars and /debug/pprof (empty = off)")
		dialWait    = flag.Duration("dial-timeout", 30*time.Second, "how long to keep retrying the initial primary dial")
	)
	flag.Parse()

	opts := replica.Options{
		Name:         *name,
		Primary:      *primaryAddr,
		BootstrapDir: *bootstrap,
		MaxLagSeq:    *maxLag,
		MaxLagAge:    *maxLagAge,
		RingSize:     *ring,
	}
	// The tail loop redials forever once attached, but the very first
	// dial fails fast so a typo'd -primary is visible; retry it here so
	// "replica starts before primary" works in scripts and demos.
	var r *replica.Replica
	var err error
	deadline := time.Now().Add(*dialWait)
	for {
		r, err = replica.New(opts)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("primary %s: %v", *primaryAddr, err)
		}
		log.Printf("waiting for primary %s: %v", *primaryAddr, err)
		time.Sleep(500 * time.Millisecond)
	}
	if *bootstrap != "" {
		log.Printf("bootstrapped from %s (views: %v)", *bootstrap, r.Views())
	}

	reg := obs.NewRegistry()
	r.RegisterObs(reg)
	server := r.NewServer(reg)

	if *debug != "" {
		reg.PublishExpvar("gsv")
		mux := obs.DebugMux(reg)
		go func() {
			log.Printf("debug http on %s (/metrics, /debug/vars, /debug/pprof)", *debug)
			if err := http.ListenAndServe(*debug, mux); err != nil {
				log.Printf("debug http: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		server.Close()
		r.Close()
		os.Exit(0)
	}()

	if r.WaitCaughtUp(10 * time.Second) {
		seq, _ := r.Lag()
		log.Printf("caught up with primary %s (lag %d), serving %v on %s",
			*primaryAddr, seq, r.Views(), ln.Addr())
	} else {
		log.Printf("still catching up with %s, serving %v on %s",
			*primaryAddr, r.Views(), ln.Addr())
	}
	if err := server.Serve(ln); err != nil {
		log.Printf("server stopped: %v", err)
	}
}
