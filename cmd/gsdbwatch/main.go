// Command gsdbwatch connects to a served GSDB source (see cmd/gsdbserve)
// and watches a view in one of two modes:
//
//   - Default: define a materialized view at this process — the warehouse
//     — and print its membership whenever an incoming update report
//     changes it. Maintenance runs here, with the full protocol cost.
//   - -follow NAME: tail the changefeed of a view maintained at the
//     server (gsdbserve -feed), printing each delta event. Maintenance
//     runs there; this process only consumes cursors and deltas, and can
//     resume from its last cursor after a disconnect (docs/CHANGEFEED.md).
//
// Usage:
//
//	gsdbwatch -addr 127.0.0.1:7070 \
//	          -view "SELECT REL.r0.tuple X WHERE X.age > 30" \
//	          [-cache full|partial|none] [-for 30s]
//	gsdbwatch -addr 127.0.0.1:7070 -follow HOT [-from N] [-snapshot] \
//	          [-policy block|drop|disconnect] [-events N] [-for 30s]
//	gsdbwatch -addr 127.0.0.1:7070 -stats [-watch] [-every 2s] [-for 30s]
//	gsdbwatch -addr 127.0.0.1:7070 -trace [VIEW] [-watch] [-every 2s]
//
// -stats fetches the server's metrics registry and recent maintenance
// traces over the wire (gsdbserve with observability; see
// docs/OBSERVABILITY.md) and renders per-view stats; -watch refreshes
// every -every until -for elapses. A server that predates the stats
// request is reported as such instead of printing zeros.
//
// -trace fetches the node's recent propagation span chains — where each
// stamped update's time went between ingestion and visibility — and
// renders one waterfall per trace, optionally filtered to one VIEW.
// Point it at a primary for WAL + maintenance spans, at a replica for
// apply spans; the same trace ID on both nodes is one update's
// cross-node timeline (docs/OBSERVABILITY.md, "Propagation tracing").
//
// -from -1 (default) tails from now; -from 0 replays the whole retained
// history; -from N resumes after cursor N. When the cursor has been
// evicted from the server's replay ring, rerun with -snapshot to receive
// a full membership snapshot and tail from there.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"gsv/internal/feed"
	"gsv/internal/obs"
	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/warehouse"
)

// fatal logs at error level and exits — the slog analogue of log.Fatalf.
func fatal(msg string, args ...any) {
	slog.Error(msg, args...)
	os.Exit(1)
}

// setupLogging installs the process-wide slog handler (the same
// handler gsdbserve uses, so a pipeline of both logs uniformly).
func setupLogging(level string) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		fmt.Fprintf(os.Stderr, "-log-level %q: %v\n", level, err)
		os.Exit(2)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})))
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "source address")
		vq       = flag.String("view", "SELECT REL.r0.tuple X WHERE X.age > 30", "view definition query")
		cache    = flag.String("cache", "none", "auxiliary cache: none|partial|full")
		dur      = flag.Duration("for", 30*time.Second, "how long to watch")
		follow   = flag.String("follow", "", "follow a server-maintained view's changefeed instead of defining a view here")
		from     = flag.Int64("from", -1, "changefeed resume cursor: -1 tail, 0 full history, N resume after N")
		snap     = flag.Bool("snapshot", false, "fall back to a full snapshot when the resume cursor has expired")
		policy   = flag.String("policy", "", "slow-consumer policy to request: block|drop|disconnect (server default when empty)")
		nevents  = flag.Int("events", 0, "stop -follow after this many events (0 = until -for elapses)")
		state    = flag.String("state", "", "with -follow, persist the last consumed cursor to this file and resume from it on restart")
		stats    = flag.Bool("stats", false, "fetch and render the server's per-view stats instead of watching a view")
		trace    = flag.Bool("trace", false, "fetch and render the node's propagation span chains (optional positional arg filters to one view)")
		watch    = flag.Bool("watch", false, "with -stats/-trace, refresh until -for elapses")
		every    = flag.Duration("every", 2*time.Second, "refresh interval for -stats/-trace -watch")
		last     = flag.Int("last", 8, "with -trace, render only the newest N traces (0 = all retained)")
		logLevel = flag.String("log-level", "info", "log verbosity: debug|info|warn|error")
	)
	flag.Parse()
	setupLogging(*logLevel)

	if *stats {
		err := runStats(os.Stdout, statsConfig{
			addr: *addr, watch: *watch, every: *every, dur: *dur,
		})
		if err != nil {
			fatal("stats failed", "err", err)
		}
		return
	}

	if *trace {
		err := runTrace(os.Stdout, traceConfig{
			addr: *addr, view: flag.Arg(0), last: *last,
			watch: *watch, every: *every, dur: *dur,
		})
		if err != nil {
			fatal("trace failed", "err", err)
		}
		return
	}

	if *follow != "" {
		err := followFeed(os.Stdout, followConfig{
			addr: *addr, view: *follow, from: *from, snapshot: *snap,
			policy: *policy, maxEvents: *nevents, dur: *dur, stateFile: *state,
		})
		if err != nil {
			fatal("follow failed", "view", *follow, "err", err)
		}
		return
	}

	mode, err := parseCache(*cache)
	if err != nil {
		fatal("bad -cache mode", "err", err)
	}
	if err := watchView(os.Stdout, watchConfig{
		addr: *addr, query: *vq, cache: mode, dur: *dur,
	}); err != nil {
		fatal("watch failed", "err", err)
	}
}

func parseCache(s string) (warehouse.CacheMode, error) {
	switch strings.ToLower(s) {
	case "none":
		return warehouse.CacheNone, nil
	case "partial":
		return warehouse.CachePartial, nil
	case "full":
		return warehouse.CacheFull, nil
	default:
		return warehouse.CacheNone, fmt.Errorf("unknown cache mode %q", s)
	}
}

// watchConfig parameterizes the local-view (warehouse) mode.
type watchConfig struct {
	addr  string
	query string
	cache warehouse.CacheMode
	dur   time.Duration
	// maxReports stops the watch after this many processed reports;
	// 0 means watch until dur elapses. Tests use it for determinism.
	maxReports int
}

// watchView runs the default mode: a warehouse at this process maintains
// the view over the report stream and prints membership changes to out.
func watchView(out io.Writer, cfg watchConfig) error {
	q, err := query.Parse(cfg.query)
	if err != nil {
		return fmt.Errorf("view query: %w", err)
	}
	tr := warehouse.NewTransport(0)
	remote, err := warehouse.Dial("gsdbserve", cfg.addr, tr)
	if err != nil {
		return fmt.Errorf("dial %s: %w", cfg.addr, err)
	}
	defer remote.Close()

	w := warehouse.New(remote)
	v, err := w.DefineView("WATCH", q, warehouse.ViewConfig{Screening: true, Cache: cfg.cache})
	if err != nil {
		return fmt.Errorf("define view: %w", err)
	}
	last, err := printMembers(out, w, v, nil)
	if err != nil {
		return err
	}

	seen := 0
	deadline := time.Now().Add(cfg.dur)
	for time.Now().Before(deadline) {
		reports, _ := remote.WaitReportsTimeout(1, 100*time.Millisecond)
		// A maintenance failure (or a report-stream gap after the server
		// restarted) quarantines the view rather than ending the watch;
		// repair resyncs it and the watch continues.
		if err := w.ProcessBatch(reports); err != nil {
			fmt.Fprintf(out, "maintenance error, view quarantined: %v\n", err)
		}
		repaired := false
		if len(w.StaleViews()) > 0 {
			if n, err := w.RepairAll(); err != nil {
				fmt.Fprintf(out, "repair failed (will retry): %v\n", err)
			} else if n > 0 {
				fmt.Fprintf(out, "view repaired by resync\n")
				repaired = true
			}
		}
		if len(reports) == 0 && !repaired {
			continue
		}
		seen += len(reports)
		if last, err = printMembers(out, w, v, last); err != nil {
			return err
		}
		if cfg.maxReports > 0 && seen >= cfg.maxReports {
			break
		}
	}
	fmt.Fprintf(out, "\nwatched %d reports; wire traffic: %s\n", seen, tr)
	fmt.Fprintf(out, "view stats: %d reports, %d screened, %d fully local, %d query backs, state %s\n",
		v.Stats.Reports.Value(), v.Stats.Screened.Value(), v.Stats.LocalOnly.Value(),
		v.Stats.QueryBacks.Value(), v.State())
	return nil
}

// printMembers prints the membership when it changed and returns it.
// It reads strictly: a quarantined view reports its staleness instead of
// a possibly-lagging membership, and the watch keeps running while the
// repair machinery catches up.
func printMembers(out io.Writer, w *warehouse.Warehouse, v *warehouse.WView, last []oem.OID) ([]oem.OID, error) {
	members, err := w.FreshMembers(v.Name)
	if errors.Is(err, warehouse.ErrStaleView) {
		fmt.Fprintf(out, "view stale, awaiting repair: %v\n", err)
		return last, nil
	}
	if err != nil {
		return nil, fmt.Errorf("members: %w", err)
	}
	if last != nil && oem.SameMembers(members, last) {
		return members, nil
	}
	fmt.Fprintf(out, "value(WATCH) = %v\n", members)
	return members, nil
}

// statsConfig parameterizes -stats mode.
type statsConfig struct {
	addr  string
	watch bool
	every time.Duration
	dur   time.Duration
	// maxRounds stops -watch after this many renders; 0 means until dur
	// elapses. Tests use it for determinism.
	maxRounds int
}

// runStats fetches the server's registry snapshot and recent traces over
// the wire and renders per-view stats, optionally refreshing.
func runStats(out io.Writer, cfg statsConfig) error {
	remote, err := warehouse.Dial("gsdbserve", cfg.addr, warehouse.NewTransport(0))
	if err != nil {
		return fmt.Errorf("dial %s: %w", cfg.addr, err)
	}
	defer remote.Close()

	deadline := time.Now().Add(cfg.dur)
	rounds := 0
	for {
		payload, err := remote.FetchStats()
		if err != nil {
			if errors.Is(err, warehouse.ErrUnsupportedRequest) {
				return fmt.Errorf("the server at %s does not support the stats request — it predates the observability protocol; upgrade gsdbserve or use -view/-follow instead", cfg.addr)
			}
			return err
		}
		renderStats(out, payload)
		rounds++
		if !cfg.watch || (cfg.maxRounds > 0 && rounds >= cfg.maxRounds) || !time.Now().Before(deadline) {
			return nil
		}
		time.Sleep(cfg.every)
	}
}

// renderStats prints one per-view stats table plus the most recent
// maintenance traces from a stats payload.
func renderStats(out io.Writer, p *warehouse.StatsPayload) {
	views := map[string]bool{}
	var order []string
	for _, m := range p.Registry.Metrics {
		if m.Name != "gsv_view_reports_total" {
			continue
		}
		if v := m.Labels["view"]; v != "" && !views[v] {
			views[v] = true
			order = append(order, v)
		}
	}
	sort.Strings(order)
	fmt.Fprintf(out, "server stats @ %s\n", p.Registry.TakenAt.Format(time.RFC3339))
	if len(order) == 0 {
		fmt.Fprintln(out, "no views registered")
	} else {
		fmt.Fprintf(out, "%-12s %-10s %8s %8s %8s %8s %8s %8s %8s %12s\n",
			"VIEW", "STATE", "REPORTS", "SCREENED", "LOCAL", "QBACKS", "INS", "DEL", "REPAIRS", "AVG-MAINT")
		for _, view := range order {
			get := func(name string) float64 {
				mp, _ := p.Registry.Get(name, obs.L("view", view))
				return mp.Value
			}
			avg := "-"
			if mp, ok := p.Registry.Get("gsv_view_maintain_seconds", obs.L("view", view)); ok && mp.Count > 0 {
				avg = fmt.Sprintf("%.1fµs", mp.Sum/float64(mp.Count)*1e6)
			}
			state := "-"
			if mp, ok := p.Registry.Get("gsv_view_state", obs.L("view", view)); ok {
				state = warehouse.ViewState(int32(mp.Value)).String()
			}
			fmt.Fprintf(out, "%-12s %-10s %8.0f %8.0f %8.0f %8.0f %8.0f %8.0f %8.0f %12s\n",
				view, state,
				get("gsv_view_reports_total"), get("gsv_view_screened_total"),
				get("gsv_view_local_only_total"), get("gsv_view_query_backs_total"),
				get("gsv_view_delta_inserts_total"), get("gsv_view_delta_deletes_total"),
				get("gsv_view_repairs_total"), avg)
		}
	}
	renderReplicaStats(out, p)
	renderSourceStats(out, p)
	renderStoreStats(out, p)
	renderOverloadStats(out, p)
	if ws := p.RemoteWire; ws != nil {
		fmt.Fprintf(out, "client wire: reconnects=%d retries=%d gaps=%d bad-frames=%d\n",
			ws.QueryReconnects+ws.ReportReconnects, ws.Retries, ws.Gaps, ws.BadFrames)
		if ws.LastDecodeErr != "" {
			fmt.Fprintf(out, "last report decode error: %s\n", ws.LastDecodeErr)
		}
	}
	if n := len(p.Traces); n > 0 {
		show := p.Traces
		if len(show) > 5 {
			show = show[len(show)-5:]
		}
		fmt.Fprintf(out, "recent traces (%d retained):\n", n)
		for _, tr := range show {
			fmt.Fprintf(out, "  seq=%d %s view=%s outcome=%s qbacks=%d helpers=%d +%d -%d %.1fµs\n",
				tr.Seq, tr.Kind, tr.View, tr.Outcome, tr.QueryBacks,
				tr.Helpers.Total(), tr.Inserts, tr.Deletes, float64(tr.TotalNanos)/1e3)
		}
	}
}

// renderReplicaStats prints one line per replica when the stats payload
// came from a gsdbreplica node (docs/REPLICA.md): its staleness lag,
// applied feed traffic, resilience counters and gated reads. A primary's
// payload carries no gsv_replica_* metrics and prints nothing.
func renderReplicaStats(out io.Writer, p *warehouse.StatsPayload) {
	replicas := map[string]bool{}
	var order []string
	for _, m := range p.Registry.Metrics {
		if m.Name != "gsv_replica_lag_seq" {
			continue
		}
		if r := m.Labels["replica"]; r != "" && !replicas[r] {
			replicas[r] = true
			order = append(order, r)
		}
	}
	if len(order) == 0 {
		return
	}
	sort.Strings(order)
	fmt.Fprintf(out, "%-12s %8s %10s %12s %8s %8s %8s %8s %8s\n",
		"REPLICA", "LAG-SEQ", "LAG-AGE", "APPLIED-SEQ", "EVENTS", "INS", "DEL", "REDIALS", "GATED")
	for _, name := range order {
		get := func(metric string, extra ...obs.Label) float64 {
			mp, _ := p.Registry.Get(metric, append(extra, obs.L("replica", name))...)
			return mp.Value
		}
		fmt.Fprintf(out, "%-12s %8.0f %10s %12.0f %8.0f %8.0f %8.0f %8.0f %8.0f\n",
			name,
			get("gsv_replica_lag_seq"),
			fmt.Sprintf("%.2fs", get("gsv_replica_lag_seconds")),
			get("gsv_replica_applied_seq"),
			get("gsv_replica_applied_events_total"),
			get("gsv_replica_applied_deltas_total", obs.L("op", "insert")),
			get("gsv_replica_applied_deltas_total", obs.L("op", "delete")),
			get("gsv_replica_feed_redials_total"),
			get("gsv_replica_rejected_reads_total"))
	}
}

// renderSourceStats prints one line per federated source when the
// stats payload came from a federated node (docs/WAREHOUSE.md,
// "Multi-source federation & failure model"): its supervisor state,
// circuit-breaker counters and ingest watermark age, plus one summary
// line of the federation's cross-shard traffic. A single-source
// payload carries no gsv_source_state metrics and prints nothing.
func renderSourceStats(out io.Writer, p *warehouse.StatsPayload) {
	sources := map[string]bool{}
	var order []string
	for _, m := range p.Registry.Metrics {
		if m.Name != "gsv_source_state" {
			continue
		}
		if s := m.Labels["source"]; s != "" && !sources[s] {
			sources[s] = true
			order = append(order, s)
		}
	}
	if len(order) == 0 {
		return
	}
	sort.Strings(order)
	fmt.Fprintf(out, "%-12s %-10s %8s %8s %10s %12s\n",
		"SOURCE", "STATE", "TRIPS", "PROBES", "DEGR-READS", "WATERMARK")
	for _, name := range order {
		get := func(metric string) float64 {
			mp, _ := p.Registry.Get(metric, obs.L("source", name))
			return mp.Value
		}
		state := "-"
		if mp, ok := p.Registry.Get("gsv_source_state", obs.L("source", name)); ok {
			state = warehouse.SourceState(int32(mp.Value)).String()
		}
		// The watermark gauge is the newest drained origin stamp as Unix
		// seconds; render its age at snapshot time (0 = nothing drained).
		watermark := "-"
		if wm := get("gsv_source_watermark_seconds"); wm > 0 {
			age := p.Registry.TakenAt.Sub(time.Unix(0, int64(wm*1e9)))
			watermark = fmt.Sprintf("%.2fs ago", age.Seconds())
		}
		fmt.Fprintf(out, "%-12s %-10s %8.0f %8.0f %10.0f %12s\n",
			name, state,
			get("gsv_source_trips_total"), get("gsv_source_probes_total"),
			get("gsv_source_degraded_reads_total"), watermark)
	}
	fed := func(metric string) float64 {
		mp, _ := p.Registry.Get(metric)
		return mp.Value
	}
	if n := fed("gsv_federation_sources"); n > 0 {
		fmt.Fprintf(out, "federation: sources=%.0f cross-fetches=%.0f batched=%.0f partial-reads=%.0f\n",
			n, fed("gsv_federation_cross_fetches_total"),
			fed("gsv_federation_cross_batched_total"),
			fed("gsv_federation_partial_reads_total"))
	}
}

// renderStoreStats prints one line per store exporting MVCC gauges
// (docs/MVCC.md): the committed sequence, how many versions the history
// ring retains and back to which sequence, live snapshot pins and the
// reclamation counters. A payload from a node without gsv_store_*
// metrics prints nothing.
func renderStoreStats(out io.Writer, p *warehouse.StatsPayload) {
	stores := map[string]bool{}
	var order []string
	for _, m := range p.Registry.Metrics {
		if m.Name != "gsv_store_seq" {
			continue
		}
		if s := m.Labels["store"]; s != "" && !stores[s] {
			stores[s] = true
			order = append(order, s)
		}
	}
	if len(order) == 0 {
		return
	}
	sort.Strings(order)
	fmt.Fprintf(out, "%-16s %10s %10s %12s %8s %8s %10s\n",
		"STORE", "SEQ", "VERSIONS", "OLDEST-SEQ", "PINNED", "TAKEN", "RECLAIMED")
	for _, name := range order {
		get := func(metric string) float64 {
			mp, _ := p.Registry.Get(metric, obs.L("store", name))
			return mp.Value
		}
		fmt.Fprintf(out, "%-16s %10.0f %10.0f %12.0f %8.0f %8.0f %10.0f\n",
			name,
			get("gsv_store_seq"),
			get("gsv_store_versions_retained"),
			get("gsv_store_oldest_retained_seq"),
			get("gsv_store_snapshots_pinned"),
			get("gsv_store_snapshots_taken_total"),
			get("gsv_store_versions_reclaimed_total"))
	}
}

// renderOverloadStats prints one line per admission controller when the
// stats payload came from a node with overload protection wired in
// (docs/WAREHOUSE.md, "Overload & graceful drain"): live inflight
// weight, queue depth, connection and stream gauges, the shed counters
// split by class, and drain/accept-retry resilience counters. A shard
// is identified by its extra label (source on federated nodes, node on
// replicas); a single-source payload prints one unlabeled row.
func renderOverloadStats(out io.Writer, p *warehouse.StatsPayload) {
	type row struct {
		name  string
		label obs.Label
	}
	seen := map[string]bool{}
	var order []row
	for _, m := range p.Registry.Metrics {
		if m.Name != "gsv_overload_inflight" {
			continue
		}
		r := row{name: "-"}
		for _, key := range []string{"source", "node"} {
			if v := m.Labels[key]; v != "" {
				r = row{name: v, label: obs.L(key, v)}
				break
			}
		}
		if !seen[r.name] {
			seen[r.name] = true
			order = append(order, r)
		}
	}
	if len(order) == 0 {
		return
	}
	sort.Slice(order, func(i, j int) bool { return order[i].name < order[j].name })
	fmt.Fprintf(out, "%-12s %8s %6s %6s %8s %10s %10s %10s %8s %7s %8s\n",
		"OVERLOAD", "INFLIGHT", "QUEUE", "CONNS", "STREAMS",
		"SHED-CONN", "SHED-STRM", "SHED-READ", "EXPIRED", "DRAINS", "ACC-RTRY")
	for _, r := range order {
		get := func(metric string, extra ...obs.Label) float64 {
			if r.label.Key != "" {
				extra = append(extra, r.label)
			}
			mp, _ := p.Registry.Get(metric, extra...)
			return mp.Value
		}
		fmt.Fprintf(out, "%-12s %8.0f %6.0f %6.0f %8.0f %10.0f %10.0f %10.0f %8.0f %7.0f %8.0f\n",
			r.name,
			get("gsv_overload_inflight"), get("gsv_overload_queue"),
			get("gsv_overload_conns"), get("gsv_overload_streams"),
			get("gsv_overload_shed_total", obs.L("class", "conn")),
			get("gsv_overload_shed_total", obs.L("class", "stream")),
			get("gsv_overload_shed_total", obs.L("class", "read")),
			get("gsv_overload_expired_total"),
			get("gsv_overload_drains_total"),
			get("gsv_overload_accept_retries_total"))
	}
}

// traceConfig parameterizes -trace mode.
type traceConfig struct {
	addr  string
	view  string // filter; empty renders every view's chains
	last  int    // newest traces to render; 0 = all retained
	watch bool
	every time.Duration
	dur   time.Duration
	// maxRounds stops -watch after this many renders; 0 means until dur
	// elapses. Tests use it for determinism.
	maxRounds int
}

// runTrace fetches the node's propagation span chains over the wire and
// renders one waterfall per trace, optionally refreshing.
func runTrace(out io.Writer, cfg traceConfig) error {
	remote, err := warehouse.Dial("gsdbwatch", cfg.addr, warehouse.NewTransport(0))
	if err != nil {
		return fmt.Errorf("dial %s: %w", cfg.addr, err)
	}
	defer remote.Close()

	deadline := time.Now().Add(cfg.dur)
	rounds := 0
	for {
		payload, err := remote.FetchTrace(cfg.view)
		if err != nil {
			if errors.Is(err, warehouse.ErrUnsupportedRequest) {
				return fmt.Errorf("the node at %s does not support the trace request — it predates propagation tracing (or runs with observability off); upgrade it or use -stats instead", cfg.addr)
			}
			return err
		}
		renderChains(out, payload, cfg.last)
		rounds++
		if !cfg.watch || (cfg.maxRounds > 0 && rounds >= cfg.maxRounds) || !time.Now().Before(deadline) {
			return nil
		}
		time.Sleep(cfg.every)
	}
}

// renderChains prints one waterfall per trace: the spans of every chain
// sharing a trace ID, laid out on a common time axis starting at the
// update's ingestion instant. Only the newest `last` traces render
// (0 = all retained; the header reports the full counts either way).
// Chains fetched from a single node show that node's half; merging
// both nodes' output by trace ID gives the full cross-node timeline.
func renderChains(out io.Writer, p *warehouse.TracePayload, last int) {
	fmt.Fprintf(out, "propagation chains from %s (%d retained, %d total)\n",
		p.Node, len(p.Chains), p.Total)
	groups := map[string][]obs.SpanChain{}
	var order []string
	for _, c := range p.Chains {
		if _, ok := groups[c.TraceID]; !ok {
			order = append(order, c.TraceID)
		}
		groups[c.TraceID] = append(groups[c.TraceID], c)
	}
	if len(order) == 0 {
		fmt.Fprintln(out, "no chains recorded yet (drive some stamped updates first)")
		return
	}
	if last > 0 && len(order) > last {
		order = order[len(order)-last:]
	}
	for _, id := range order {
		chains := groups[id]
		var spans []obs.Span
		var end int64
		for _, c := range chains {
			spans = append(spans, c.Spans...)
			if e := c.EndNanos(); e > end {
				end = e
			}
		}
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		first := chains[0]
		fmt.Fprintf(out, "trace %s seq=%d %s origin=%s visible=+%s\n",
			id, first.Seq, first.Kind,
			time.Unix(0, first.Origin).Format("15:04:05.000"),
			time.Duration(end).Round(time.Microsecond))
		for _, s := range spans {
			target := s.Node
			if s.View != "" {
				target += "/" + s.View
			}
			fmt.Fprintf(out, "  %-20s %-16s %10s %10s  %s\n",
				target, s.Stage,
				"+"+time.Duration(s.Start).Round(time.Microsecond).String(),
				time.Duration(s.Nanos).Round(time.Microsecond).String(),
				spanBar(s.Start, s.Nanos, end))
		}
	}
}

// spanBar renders a span's position within the trace window as a
// fixed-width waterfall track.
func spanBar(start, nanos, window int64) string {
	const width = 32
	if window <= 0 {
		window = 1
	}
	b := []byte(strings.Repeat(".", width))
	lo := int(start * width / window)
	hi := int((start + nanos) * width / window)
	if lo < 0 {
		lo = 0
	}
	if lo >= width {
		lo = width - 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	if hi > width {
		hi = width
	}
	for i := lo; i < hi; i++ {
		b[i] = '#'
	}
	return string(b)
}

// followConfig parameterizes -follow mode.
type followConfig struct {
	addr     string
	view     string
	from     int64 // -1 tail, >= 0 resume after cursor
	snapshot bool
	policy   string
	// maxEvents stops after this many events; 0 means follow until dur.
	maxEvents int
	dur       time.Duration
	// stateFile, when set, persists the last consumed cursor after every
	// event; a restart resumes from it (overriding from) so the watcher
	// never re-prints events it already acknowledged.
	stateFile string
}

// cursorState is the JSON payload of a -state file.
type cursorState struct {
	View   string `json:"view"`
	Cursor uint64 `json:"cursor"`
}

// loadCursorState reads a -state file. A missing file is (zero, false,
// nil): a fresh watcher.
func loadCursorState(path string) (cursorState, bool, error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return cursorState{}, false, nil
	}
	if err != nil {
		return cursorState{}, false, err
	}
	var st cursorState
	if err := json.Unmarshal(b, &st); err != nil {
		return cursorState{}, false, fmt.Errorf("%s: %w", path, err)
	}
	return st, true, nil
}

// saveCursorState atomically replaces the -state file (temp + rename),
// so a crash mid-write leaves the previous cursor intact.
func saveCursorState(path, view string, cursor uint64) error {
	b, err := json.Marshal(cursorState{View: view, Cursor: cursor})
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// followFeed tails a server-maintained view's changefeed, printing one
// line per delta event. A broken stream (server restart, network fault)
// is redialed with the last consumed cursor, so no events are missed as
// long as they remain in the server's replay ring; when the cursor has
// been evicted, the redial falls back to a full-membership snapshot
// (docs/CHANGEFEED.md) and tails from there.
func followFeed(out io.Writer, cfg followConfig) error {
	req := warehouse.FeedRequest{View: cfg.view, Snapshot: cfg.snapshot, Policy: cfg.policy}
	if cfg.from >= 0 {
		req.Resume = true
		req.From = uint64(cfg.from)
	}
	if cfg.stateFile != "" {
		st, ok, err := loadCursorState(cfg.stateFile)
		if err != nil {
			return fmt.Errorf("state file: %w", err)
		}
		if ok {
			if st.View != cfg.view {
				return fmt.Errorf("state file %s tracks view %q, not %q (use a separate file per view)",
					cfg.stateFile, st.View, cfg.view)
			}
			req.Resume = true
			req.From = st.Cursor
			fmt.Fprintf(out, "resuming %s after cursor %d from %s\n", cfg.view, st.Cursor, cfg.stateFile)
		}
	}
	fc, err := warehouse.DialFeed(cfg.addr, req)
	if err != nil {
		if errors.Is(err, feed.ErrCursorExpired) {
			return fmt.Errorf("%w (rerun with -snapshot to recover from a full snapshot)", err)
		}
		return err
	}

	// cur is the live client; the deadline timer and reconnects swap it
	// under mu so the timer always closes the current connection.
	var mu sync.Mutex
	cur := fc
	setCur := func(c *warehouse.FeedClient) {
		mu.Lock()
		cur = c
		mu.Unlock()
	}
	closeCur := func() {
		mu.Lock()
		cur.Close()
		mu.Unlock()
	}
	defer closeCur()

	var deadline time.Time
	if cfg.dur > 0 {
		deadline = time.Now().Add(cfg.dur)
		// FeedClient.Next has no timeout of its own; closing the client
		// unblocks it when the watch window ends.
		timer := time.AfterFunc(cfg.dur, closeCur)
		defer timer.Stop()
	}
	expired := func() bool { return !deadline.IsZero() && !time.Now().Before(deadline) }

	fmt.Fprintf(out, "following %s at cursor %d (oldest retained %d)\n", fc.View, fc.Cursor, fc.Oldest)
	lastCursor := fc.Cursor
	if req.Resume {
		lastCursor = req.From
	}
	if fc.Snapshot != nil {
		fmt.Fprintf(out, "snapshot@%d value(%s) = %v\n", fc.Snapshot.Cursor, fc.View, fc.Snapshot.Members)
		lastCursor = fc.Snapshot.Cursor
	}
	// persist acknowledges lastCursor in the state file; a write failure
	// is reported but does not end the follow (the stream is still good).
	persist := func() {
		if cfg.stateFile == "" {
			return
		}
		if err := saveCursorState(cfg.stateFile, cfg.view, lastCursor); err != nil {
			fmt.Fprintf(out, "state file: %v\n", err)
		}
	}
	persist()

	n := 0
	for cfg.maxEvents == 0 || n < cfg.maxEvents {
		ev, err := cur.Next()
		if err != nil {
			if expired() {
				break // our own deadline closed the stream
			}
			// The stream broke (err may be io.EOF on a clean server
			// shutdown): redial with the last consumed cursor.
			nc, newLast, rerr := redialFeed(out, cfg, lastCursor, deadline)
			if nc == nil {
				if expired() {
					break
				}
				return rerr
			}
			lastCursor = newLast
			persist()
			setCur(nc)
			if expired() {
				// The deadline fired between the timer's close of the old
				// client and the swap; close the new one and stop.
				break
			}
			continue
		}
		fmt.Fprintf(out, "cursor=%d seq=%d %s(%s) +%v -%v\n",
			ev.Cursor, ev.Seq, ev.Kind, ev.N1, ev.Insert, ev.Delete)
		lastCursor = ev.Cursor
		persist()
		n++
	}
	fmt.Fprintf(out, "\nfollowed %d events on %s\n", n, cfg.view)
	return nil
}

// redialFeed re-establishes a broken follow, resuming after lastCursor,
// retrying until the deadline. When the cursor has been evicted from the
// server's replay ring it falls back to a snapshot subscription. It
// returns the new client and the cursor to resume from next time (the
// snapshot position, when one was taken).
func redialFeed(out io.Writer, cfg followConfig, lastCursor uint64, deadline time.Time) (*warehouse.FeedClient, uint64, error) {
	var lastErr error
	for attempt := 0; deadline.IsZero() || time.Now().Before(deadline); attempt++ {
		if attempt > 0 {
			time.Sleep(50 * time.Millisecond)
		}
		req := warehouse.FeedRequest{
			View: cfg.view, Resume: true, From: lastCursor, Policy: cfg.policy,
		}
		fc, err := warehouse.DialFeed(cfg.addr, req)
		if errors.Is(err, feed.ErrCursorExpired) {
			// Events since lastCursor are gone; recover via snapshot.
			req.Snapshot = true
			fc, err = warehouse.DialFeed(cfg.addr, req)
		}
		if err != nil {
			lastErr = err
			continue
		}
		fmt.Fprintf(out, "reconnected to %s at cursor %d (resuming after %d)\n", cfg.view, fc.Cursor, lastCursor)
		if fc.Snapshot != nil {
			fmt.Fprintf(out, "snapshot@%d value(%s) = %v\n", fc.Snapshot.Cursor, cfg.view, fc.Snapshot.Members)
			lastCursor = fc.Snapshot.Cursor
		}
		return fc, lastCursor, nil
	}
	if lastErr == nil {
		lastErr = errors.New("follow deadline elapsed during reconnect")
	}
	return nil, lastCursor, fmt.Errorf("reconnecting to %s: %w", cfg.view, lastErr)
}
