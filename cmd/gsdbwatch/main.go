// Command gsdbwatch connects to a served GSDB source (see cmd/gsdbserve),
// defines a materialized view at this process — the warehouse — and prints
// the view's membership whenever an incoming update report changes it.
//
// Usage:
//
//	gsdbwatch -addr 127.0.0.1:7070 \
//	          -view "SELECT REL.r0.tuple X WHERE X.age > 30" \
//	          [-cache full|partial|none] [-for 30s]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/warehouse"
)

func main() {
	var (
		addr  = flag.String("addr", "127.0.0.1:7070", "source address")
		vq    = flag.String("view", "SELECT REL.r0.tuple X WHERE X.age > 30", "view definition query")
		cache = flag.String("cache", "none", "auxiliary cache: none|partial|full")
		dur   = flag.Duration("for", 30*time.Second, "how long to watch")
	)
	flag.Parse()

	var mode warehouse.CacheMode
	switch strings.ToLower(*cache) {
	case "none":
		mode = warehouse.CacheNone
	case "partial":
		mode = warehouse.CachePartial
	case "full":
		mode = warehouse.CacheFull
	default:
		log.Fatalf("unknown cache mode %q", *cache)
	}

	q, err := query.Parse(*vq)
	if err != nil {
		log.Fatalf("view query: %v", err)
	}
	tr := warehouse.NewTransport(0)
	remote, err := warehouse.Dial("gsdbserve", *addr, tr)
	if err != nil {
		log.Fatalf("dial %s: %v", *addr, err)
	}
	defer remote.Close()

	w := warehouse.New(remote)
	v, err := w.DefineView("WATCH", q, warehouse.ViewConfig{Screening: true, Cache: mode})
	if err != nil {
		log.Fatalf("define view: %v", err)
	}
	last := printMembers(v, nil)

	deadline := time.Now().Add(*dur)
	for time.Now().Before(deadline) {
		reports := remote.DrainReports()
		if len(reports) == 0 {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		if err := w.ProcessAll(reports); err != nil {
			log.Fatalf("maintenance: %v", err)
		}
		last = printMembers(v, last)
	}
	fmt.Printf("\nwatched %s; wire traffic: %s\n", *dur, tr)
	fmt.Printf("view stats: %d reports, %d screened, %d fully local, %d query backs\n",
		v.Stats.Reports, v.Stats.Screened, v.Stats.LocalOnly, v.Stats.QueryBacks)
}

// printMembers prints the membership when it changed and returns it.
func printMembers(v *warehouse.WView, last []oem.OID) []oem.OID {
	members, err := v.MV.Members()
	if err != nil {
		log.Fatalf("members: %v", err)
	}
	if last != nil && oem.SameMembers(members, last) {
		return members
	}
	fmt.Printf("%s  value(WATCH) = %v\n", time.Now().Format("15:04:05.000"), members)
	return members
}
