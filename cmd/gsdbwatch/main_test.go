package main

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"gsv/internal/feed"
	"gsv/internal/obs"
	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/replica"
	"gsv/internal/store"
	"gsv/internal/warehouse"
	"gsv/internal/workload"
)

// startServer serves the PERSON database on a loopback listener with a
// co-located warehouse maintaining the YP view into a changefeed hub —
// the gsdbserve -feed arrangement, in process.
func startServer(t *testing.T, ring int) (*warehouse.Source, *warehouse.Warehouse, *warehouse.Server, string) {
	t.Helper()
	s := store.NewDefault()
	workload.PersonDB(s)
	src := warehouse.NewSource("gsdbserve", s, "ROOT", warehouse.Level2, warehouse.NewTransport(0))
	src.DrainReports()
	lw := warehouse.New(src)
	lw.Feed = feed.NewHub(feed.Options{RingSize: ring})
	q := query.MustParse("SELECT ROOT.professor X WHERE X.age <= 45")
	if _, err := lw.DefineView("YP", q, warehouse.ViewConfig{Screening: true}); err != nil {
		t.Fatal(err)
	}
	server := warehouse.NewServer(src)
	server.Feed = lw.Feed
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = server.Serve(ln) }()
	t.Cleanup(server.Close)
	return src, lw, server, ln.Addr().String()
}

// toggle flips P1 in and out of YP n times: each call is one feed event.
// Reports are broadcast so warehouse-mode watchers see them too.
func toggle(t *testing.T, src *warehouse.Source, lw *warehouse.Warehouse, server *warehouse.Server, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		val := int64(60)
		if i%2 == 1 {
			val = 30
		}
		rs, err := src.Modify("A1", oem.Int(val))
		if err != nil {
			t.Fatal(err)
		}
		if err := lw.ProcessAll(rs); err != nil {
			t.Fatal(err)
		}
		if err := server.Broadcast(rs); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFollowFeedReplay(t *testing.T) {
	src, lw, server, addr := startServer(t, 1024)
	toggle(t, src, lw, server, 2)

	var out strings.Builder
	err := followFeed(&out, followConfig{
		addr: addr, view: "YP", from: 0, maxEvents: 2, dur: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"following YP at cursor 2 (oldest retained 1)",
		"cursor=1",
		"-[P1]",
		"cursor=2",
		"+[P1]",
		"followed 2 events on YP",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestFollowFeedTail(t *testing.T) {
	src, lw, server, addr := startServer(t, 1024)
	toggle(t, src, lw, server, 2) // history a tail must NOT see

	done := make(chan error, 1)
	var out strings.Builder
	go func() {
		done <- followFeed(&out, followConfig{
			addr: addr, view: "YP", from: -1, maxEvents: 1, dur: 5 * time.Second,
		})
	}()
	// Drive the next event only once the tail is attached.
	deadline := time.Now().Add(5 * time.Second)
	for lw.Feed.Subscribers("YP") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("tail never attached")
		}
		time.Sleep(5 * time.Millisecond)
	}
	toggle(t, src, lw, server, 1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if strings.Contains(got, "cursor=1") || strings.Contains(got, "cursor=2") {
		t.Fatalf("tail replayed history:\n%s", got)
	}
	if !strings.Contains(got, "cursor=3") || !strings.Contains(got, "followed 1 events") {
		t.Fatalf("tail output:\n%s", got)
	}
}

func TestFollowFeedExpiredAndSnapshot(t *testing.T) {
	src, lw, server, addr := startServer(t, 2)
	toggle(t, src, lw, server, 8) // ring of 2 retains only cursors 7..8

	var out strings.Builder
	err := followFeed(&out, followConfig{addr: addr, view: "YP", from: 1, dur: time.Second})
	if err == nil || !strings.Contains(err.Error(), "-snapshot") {
		t.Fatalf("expired follow error = %v", err)
	}

	out.Reset()
	err = followFeed(&out, followConfig{
		addr: addr, view: "YP", from: 1, snapshot: true, maxEvents: 0, dur: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	// After 8 toggles P1 is back in: snapshot carries the membership.
	if !strings.Contains(got, "snapshot@8 value(YP) = [P1]") {
		t.Fatalf("snapshot output:\n%s", got)
	}
}

// TestFollowFeedSurvivesServerRestart: a follow whose server dies must
// redial with its last cursor and pick up exactly the events it missed
// — the hub's replay ring covers the outage, so nothing is lost or
// duplicated.
func TestFollowFeedSurvivesServerRestart(t *testing.T) {
	src, lw, server, addr := startServer(t, 1024)

	done := make(chan error, 1)
	var mu sync.Mutex
	var out strings.Builder
	syncOut := func(f func()) {
		mu.Lock()
		defer mu.Unlock()
		f()
	}
	go func() {
		done <- followFeed(writerFunc(func(p []byte) (int, error) {
			syncOut(func() { out.Write(p) })
			return len(p), nil
		}), followConfig{
			addr: addr, view: "YP", from: -1, maxEvents: 4, dur: 15 * time.Second,
		})
	}()

	deadline := time.Now().Add(5 * time.Second)
	for lw.Feed.Subscribers("YP") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follow never attached")
		}
		time.Sleep(5 * time.Millisecond)
	}
	toggle(t, src, lw, server, 2) // cursors 1..2, delivered live

	// Kill the server. Maintenance continues at the warehouse while it is
	// down, so cursors 3..4 land in the hub's ring with no one connected.
	server.Close()
	toggle(t, src, lw, server, 2)

	// Restart on the same address, sharing the same source and hub.
	var ln net.Listener
	var err error
	for try := 0; ; try++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if try > 100 {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	server2 := warehouse.NewServer(src)
	server2.Feed = lw.Feed
	go func() { _ = server2.Serve(ln) }()
	t.Cleanup(server2.Close)

	if err := <-done; err != nil {
		t.Fatal(err)
	}
	var got string
	syncOut(func() { got = out.String() })
	for _, want := range []string{
		"reconnected to YP", "cursor=1", "cursor=2", "cursor=3", "cursor=4",
		"followed 4 events on YP",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	// The resume replays strictly after the last consumed cursor: each
	// event appears exactly once.
	for _, c := range []string{"cursor=1", "cursor=2", "cursor=3", "cursor=4"} {
		if strings.Count(got, c) != 1 {
			t.Fatalf("%s seen %d times:\n%s", c, strings.Count(got, c), got)
		}
	}
}

// writerFunc adapts a function to io.Writer for race-safe test capture.
type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestFollowFeedUnknownView(t *testing.T) {
	_, _, _, addr := startServer(t, 16)
	err := followFeed(&strings.Builder{}, followConfig{addr: addr, view: "NOPE", from: -1, dur: time.Second})
	if err == nil || !strings.Contains(err.Error(), "unknown view") {
		t.Fatalf("unknown view error = %v", err)
	}
}

func TestWatchViewOverTCP(t *testing.T) {
	src, lw, server, addr := startServer(t, 1024)

	stop := make(chan struct{})
	defer close(stop)
	go func() {
		// Keep toggling until the watcher has seen enough reports; each
		// broadcast reaches report streams registered at that moment.
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(10 * time.Millisecond):
			}
			val := int64(60)
			if i%2 == 1 {
				val = 30
			}
			rs, err := src.Modify("A1", oem.Int(val))
			if err != nil {
				return
			}
			_ = lw.ProcessAll(rs)
			_ = server.Broadcast(rs)
		}
	}()

	var out strings.Builder
	err := watchView(&out, watchConfig{
		addr: addr, query: "SELECT ROOT.professor X WHERE X.age <= 45",
		cache: warehouse.CacheNone, dur: 10 * time.Second, maxReports: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "value(WATCH) = [") {
		t.Fatalf("no membership output:\n%s", got)
	}
	if !strings.Contains(got, "view stats:") || !strings.Contains(got, "watched") {
		t.Fatalf("no summary output:\n%s", got)
	}
}

func TestStatsRendersViewTable(t *testing.T) {
	src, lw, server, addr := startServer(t, 1024)
	reg := obs.NewRegistry()
	// Enable observability after the view exists: EnableObs is wired at
	// DefineView time in gsdbserve, but registration is idempotent enough
	// for the test to re-register the existing view's instruments.
	lw.Feed.RegisterObs(reg)
	lw.EnableObs(reg)
	server.Obs = reg
	server.Traces = lw.Traces
	toggle(t, src, lw, server, 4)

	var out strings.Builder
	err := runStats(&out, statsConfig{addr: addr, dur: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"server stats @", "VIEW", "YP", "recent traces",
		// The MVCC STORE section (docs/MVCC.md): the warehouse store
		// exports gsv_store_* gauges.
		"STORE", "PINNED", "RECLAIMED", "primary"} {
		if !strings.Contains(got, want) {
			t.Fatalf("stats output missing %q:\n%s", want, got)
		}
	}
}

func TestStatsRendersReplicaSection(t *testing.T) {
	src, lw, server, addr := startServer(t, 1024)
	server.Members = lw.FreshMembers
	server.FeedProgressInterval = 20 * time.Millisecond
	toggle(t, src, lw, server, 2)

	rep, err := replica.New(replica.Options{Name: "watched", Primary: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if !rep.WaitCaughtUp(5 * time.Second) {
		t.Fatal("replica never caught up")
	}
	reg := obs.NewRegistry()
	rep.RegisterObs(reg)
	rsrv := rep.NewServer(reg)
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = rsrv.Serve(rln) }()
	defer rsrv.Close()

	var out strings.Builder
	if err := runStats(&out, statsConfig{addr: rln.Addr().String(), dur: time.Second}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"REPLICA", "watched", "LAG-SEQ", "APPLIED-SEQ"} {
		if !strings.Contains(got, want) {
			t.Fatalf("replica stats output missing %q:\n%s", want, got)
		}
	}
}

func TestStatsWatchRefreshes(t *testing.T) {
	src, lw, server, addr := startServer(t, 1024)
	reg := obs.NewRegistry()
	lw.Feed.RegisterObs(reg)
	lw.EnableObs(reg)
	server.Obs = reg
	server.Traces = lw.Traces
	toggle(t, src, lw, server, 2)

	var out strings.Builder
	err := runStats(&out, statsConfig{
		addr: addr, watch: true, every: time.Millisecond, dur: 5 * time.Second, maxRounds: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "server stats @"); got != 3 {
		t.Fatalf("rendered %d rounds, want 3:\n%s", got, out.String())
	}
}

func TestStatsAgainstServerWithoutRegistry(t *testing.T) {
	// startServer wires no registry: the stats mode must report that
	// clearly rather than render an empty table.
	_, _, _, addr := startServer(t, 16)
	err := runStats(&strings.Builder{}, statsConfig{addr: addr, dur: time.Second})
	if err == nil || !strings.Contains(err.Error(), "no stats registry") {
		t.Fatalf("no-registry error = %v", err)
	}
}

func TestParseCache(t *testing.T) {
	for s, want := range map[string]warehouse.CacheMode{
		"none": warehouse.CacheNone, "Partial": warehouse.CachePartial, "FULL": warehouse.CacheFull,
	} {
		got, err := parseCache(s)
		if err != nil || got != want {
			t.Fatalf("parseCache(%q) = %v %v", s, got, err)
		}
	}
	if _, err := parseCache("bogus"); err == nil {
		t.Fatal("bogus cache mode parsed")
	}
}

func TestFollowFeedStateFileResume(t *testing.T) {
	src, lw, server, addr := startServer(t, 1024)
	toggle(t, src, lw, server, 2)
	state := t.TempDir() + "/yp.cursor"

	// First run consumes two events and acknowledges them in the state
	// file.
	var out strings.Builder
	err := followFeed(&out, followConfig{
		addr: addr, view: "YP", from: 0, maxEvents: 2, dur: 5 * time.Second,
		stateFile: state,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, ok, err := loadCursorState(state)
	if err != nil || !ok {
		t.Fatalf("state after first run: ok=%v err=%v", ok, err)
	}
	if st.View != "YP" || st.Cursor != 2 {
		t.Fatalf("state = %+v, want view YP cursor 2", st)
	}

	// Two more events land; a restarted watcher resumes from the state
	// file (from is -1: without the file it would tail and see nothing
	// until a new event).
	toggle(t, src, lw, server, 2)
	out.Reset()
	err = followFeed(&out, followConfig{
		addr: addr, view: "YP", from: -1, maxEvents: 2, dur: 5 * time.Second,
		stateFile: state,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"resuming YP after cursor 2",
		"cursor=3",
		"cursor=4",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("second run missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "cursor=1\n") || strings.Contains(got, "cursor=2\n") {
		t.Fatalf("second run re-printed acknowledged events:\n%s", got)
	}
	if st, _, _ := loadCursorState(state); st.Cursor != 4 {
		t.Fatalf("state after second run = %+v, want cursor 4", st)
	}

	// The state file is per-view: following another view with it is an
	// error rather than a silently wrong cursor.
	err = followFeed(&strings.Builder{}, followConfig{
		addr: addr, view: "OTHER", from: -1, dur: time.Second, stateFile: state,
	})
	if err == nil || !strings.Contains(err.Error(), "tracks view") {
		t.Fatalf("cross-view state reuse error = %v", err)
	}
}

// TestFollowFeedSurvivesDrainRestart: like the restart test above, but
// the primary leaves via graceful drain (SIGTERM path) instead of a
// hard close. The follow must ride out the drain — the feed connection
// ends when the drain completes — redial while the primary is gone, and
// resume exactly where it left off once a new primary binds.
func TestFollowFeedSurvivesDrainRestart(t *testing.T) {
	src, lw, server, addr := startServer(t, 1024)
	server.DrainGrace = 20 * time.Millisecond

	done := make(chan error, 1)
	var mu sync.Mutex
	var out strings.Builder
	syncOut := func(f func()) {
		mu.Lock()
		defer mu.Unlock()
		f()
	}
	go func() {
		done <- followFeed(writerFunc(func(p []byte) (int, error) {
			syncOut(func() { out.Write(p) })
			return len(p), nil
		}), followConfig{
			addr: addr, view: "YP", from: -1, maxEvents: 4, dur: 15 * time.Second,
		})
	}()

	deadline := time.Now().Add(5 * time.Second)
	for lw.Feed.Subscribers("YP") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follow never attached")
		}
		time.Sleep(5 * time.Millisecond)
	}
	toggle(t, src, lw, server, 2) // cursors 1..2, delivered live

	// Graceful drain: stops accepting, lets the in-flight feed stream
	// wind down, then closes. Maintenance continues while it is gone.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := server.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	toggle(t, src, lw, server, 2) // cursors 3..4 land in the ring unattended

	// A fresh primary binds the same address, sharing source and hub.
	var ln net.Listener
	var err error
	for try := 0; ; try++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if try > 100 {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	server2 := warehouse.NewServer(src)
	server2.Feed = lw.Feed
	go func() { _ = server2.Serve(ln) }()
	t.Cleanup(server2.Close)

	if err := <-done; err != nil {
		t.Fatal(err)
	}
	var got string
	syncOut(func() { got = out.String() })
	for _, want := range []string{
		"reconnected to YP", "cursor=1", "cursor=2", "cursor=3", "cursor=4",
		"followed 4 events on YP",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	for _, c := range []string{"cursor=1", "cursor=2", "cursor=3", "cursor=4"} {
		if strings.Count(got, c) != 1 {
			t.Fatalf("%s seen %d times:\n%s", c, strings.Count(got, c), got)
		}
	}
}
