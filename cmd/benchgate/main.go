// Command benchgate compares two benchviews JSON reports and fails when
// a tracked performance ratio regresses beyond a tolerance. It reads the
// ratio columns of the experiment tables — "speedup" (E12 parallel
// batching, E13 crash recovery) and "scaling" (E14 replica fan-out) —
// plus the recompute/incremental ratio of the paired E1
// micro-benchmarks. Ratios, not absolute times, are what transfer
// between machines: both legs of each ratio ran on the same box, so the
// box divides out. Latency columns ("p99 prop", E14's propagation
// freshness) are compared in the opposite direction — they regress by
// rising.
//
// The committed baseline lives in bench/ (see EXPERIMENTS.md); CI's
// bench-gate job regenerates a current report with the same
// configuration and runs:
//
//	benchgate -baseline bench/BENCH_<date>.json -current new.json [-tolerance 0.20]
//
// Exit status 1 means at least one ratio fell below
// baseline*(1-tolerance), a baselined metric disappeared, or an
// absolute -floor/-ceiling was not met.
//
// Floors and ceilings are machine-independent claims gated regardless
// of baseline drift: -floor 'E15\[shards=4\]\.scaling=2' asserts the
// 4-shard federated maintenance run keeps at least twice the 1-shard
// throughput on the current report, even if the committed baseline
// itself ever sagged; -ceiling 'E14.*\.p99=25' asserts propagation
// freshness stays under an absolute SLO. Percentile latencies swing
// an order of magnitude between runs on shared runners, so CI gates
// them with a ceiling and leaves the baseline comparison (-gate
// excluding .p99) informational.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// report mirrors the fields of the benchviews -json document that the
// gate consumes (schema "gsv-bench/1").
type report struct {
	Schema string `json:"schema"`
	Tables []struct {
		ID      string     `json:"id"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	} `json:"tables"`
	Benchmarks []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
}

const schemaWant = "gsv-bench/1"

func loadReport(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != schemaWant {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, schemaWant)
	}
	return &r, nil
}

// parseRatio reads a table ratio cell ("3.4x", "0.9x"). "inf" and
// anything unparseable report !ok and are not gated.
func parseRatio(cell string) (float64, bool) {
	cell = strings.TrimSuffix(strings.TrimSpace(cell), "x")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil || v <= 0 {
		return 0, false
	}
	return v, true
}

// ratioColumn reports whether a table column holds a gated ratio.
func ratioColumn(header string) bool {
	h := strings.ToLower(header)
	return strings.Contains(h, "speedup") || strings.Contains(h, "scaling")
}

// latencyColumn reports whether a table column holds a gated latency —
// lower is better, unlike ratios. E14's "p99 prop" (propagation
// freshness) is the one such column today.
func latencyColumn(header string) bool {
	return strings.Contains(strings.ToLower(header), "p99")
}

// parseLatency reads a latency cell ("1.25ms"). Unparseable or
// non-positive cells report !ok and are not gated (a tier that applied
// no stamped updates reports 0.00ms).
func parseLatency(cell string) (float64, bool) {
	cell = strings.TrimSuffix(strings.TrimSpace(cell), "ms")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil || v <= 0 {
		return 0, false
	}
	return v, true
}

// lowerIsBetter reports the comparison direction for a metric name:
// latency metrics regress upward, ratios downward.
func lowerIsBetter(name string) bool {
	return strings.HasSuffix(name, ".p99")
}

// metrics flattens a report into named ratios. Table rows are keyed by
// their first (identity) column so the key survives reordering:
// "E12[tuples=800].speedup". Micro-benchmarks contribute
// "bench[<suffix>].recompute_over_incremental" for every E1 pair.
func metrics(r *report) map[string]float64 {
	out := make(map[string]float64)
	for _, t := range r.Tables {
		for col, h := range t.Headers {
			ratio, latency := ratioColumn(h), latencyColumn(h)
			if !ratio && !latency {
				continue
			}
			field := strings.Fields(strings.ToLower(h))[0]
			for _, row := range t.Rows {
				if col >= len(row) || len(row) == 0 {
					continue
				}
				parse := parseRatio
				if latency {
					parse = parseLatency
				}
				v, ok := parse(row[col])
				if !ok {
					continue
				}
				id := row[0]
				if len(t.Headers) > 0 {
					id = t.Headers[0] + "=" + row[0]
				}
				out[fmt.Sprintf("%s[%s].%s", t.ID, id, field)] = v
			}
		}
	}
	// E1 pairs: BenchmarkE1Recompute/X over BenchmarkE1IncrementalMaintenance/X.
	inc := make(map[string]float64)
	rec := make(map[string]float64)
	for _, b := range r.Benchmarks {
		if b.NsPerOp <= 0 {
			continue
		}
		if rest, ok := strings.CutPrefix(b.Name, "E1IncrementalMaintenance/"); ok {
			inc[rest] = b.NsPerOp
		}
		if rest, ok := strings.CutPrefix(b.Name, "E1Recompute/"); ok {
			rec[rest] = b.NsPerOp
		}
	}
	for k, rv := range rec {
		if iv, ok := inc[k]; ok && iv > 0 {
			out[fmt.Sprintf("bench[%s].recompute_over_incremental", k)] = rv / iv
		}
	}
	return out
}

// bound is one absolute constraint on current metrics: every metric
// whose name matches re must be at least (floor) or at most (ceiling)
// val, and at least one metric must match (a bound nothing matches is
// lost coverage).
type bound struct {
	re      *regexp.Regexp
	val     float64
	ceiling bool
}

// parseBound reads a -floor/-ceiling argument, "name_regexp=value".
func parseBound(s string, ceiling bool) (bound, error) {
	i := strings.LastIndex(s, "=")
	if i < 0 {
		return bound{}, fmt.Errorf("want name_regexp=value, got %q", s)
	}
	re, err := regexp.Compile(s[:i])
	if err != nil {
		return bound{}, err
	}
	v, err := strconv.ParseFloat(s[i+1:], 64)
	if err != nil {
		return bound{}, err
	}
	return bound{re: re, val: v, ceiling: ceiling}, nil
}

// applyBounds enforces the absolute floors and ceilings on the current
// metrics and returns the number of failures.
func applyBounds(w io.Writer, cur map[string]float64, bounds []bound) int {
	names := make([]string, 0, len(cur))
	for k := range cur {
		names = append(names, k)
	}
	sort.Strings(names)
	failures := 0
	for _, b := range bounds {
		op, unit, breach := ">=", "x", "BELOW FLOOR"
		if b.ceiling {
			op, unit, breach = "<=", "ms", "ABOVE CEILING"
		}
		matched := false
		for _, name := range names {
			if !b.re.MatchString(name) {
				continue
			}
			matched = true
			status := "ok"
			if (b.ceiling && cur[name] > b.val) || (!b.ceiling && cur[name] < b.val) {
				status = breach
				failures++
			}
			fmt.Fprintf(w, "%-50s %8.2f%s   %s %.2f%s  %s\n", name, cur[name], unit, op, b.val, unit, status)
		}
		if !matched {
			fmt.Fprintf(w, "%-50s %10s   %s %.2f%s  NO METRIC MATCHES\n", b.re.String(), "-", op, b.val, unit)
			failures++
		}
	}
	return failures
}

func main() {
	var (
		basePath  = flag.String("baseline", "", "baseline benchviews JSON report (required)")
		curPath   = flag.String("current", "", "current benchviews JSON report (required)")
		tolerance = flag.Float64("tolerance", 0.20, "allowed fractional regression before failing")
		gate      = flag.String("gate", "", "regexp selecting which metrics are enforced (default: all); others print as informational")
	)
	var bounds []bound
	flag.Func("floor", "absolute minimum on current ratio metrics, as 'name_regexp=min' (repeatable)", func(s string) error {
		b, err := parseBound(s, false)
		if err != nil {
			return err
		}
		bounds = append(bounds, b)
		return nil
	})
	flag.Func("ceiling", "absolute maximum on current latency metrics in ms, as 'name_regexp=max' (repeatable)", func(s string) error {
		b, err := parseBound(s, true)
		if err != nil {
			return err
		}
		bounds = append(bounds, b)
		return nil
	})
	flag.Parse()
	if *basePath == "" || *curPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline and -current are required")
		flag.Usage()
		os.Exit(2)
	}
	var gateRe *regexp.Regexp
	if *gate != "" {
		re, err := regexp.Compile(*gate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: bad -gate: %v\n", err)
			os.Exit(2)
		}
		gateRe = re
	}
	base, err := loadReport(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	cur, err := loadReport(*curPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	curMetrics := metrics(cur)
	failures := compare(os.Stdout, metrics(base), curMetrics, *tolerance, gateRe)
	failures += applyBounds(os.Stdout, curMetrics, bounds)
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d metric(s) regressed beyond %.0f%%\n", failures, *tolerance*100)
		os.Exit(1)
	}
}

// compare prints one line per baselined metric and returns the number
// of enforced failures. A metric missing from the current report is a
// failure (lost coverage reads as a silent pass otherwise); metrics only
// in the current report are informational.
func compare(w io.Writer, base, cur map[string]float64, tolerance float64, gateRe *regexp.Regexp) int {
	names := make([]string, 0, len(base))
	for k := range base {
		names = append(names, k)
	}
	sort.Strings(names)
	failures := 0
	fmt.Fprintf(w, "%-50s %10s %10s %8s  %s\n", "metric", "baseline", "current", "delta", "status")
	for _, name := range names {
		b := base[name]
		enforced := gateRe == nil || gateRe.MatchString(name)
		unit := "x"
		if lowerIsBetter(name) {
			unit = "ms"
		}
		c, ok := cur[name]
		if !ok {
			status := "MISSING"
			if enforced {
				failures++
			} else {
				status = "missing (not gated)"
			}
			fmt.Fprintf(w, "%-50s %8.2f%s %10s %8s  %s\n", name, b, unit, "-", "-", status)
			continue
		}
		delta := (c - b) / b
		// Ratios regress by falling, latencies (".p99") by rising.
		worse, better := c < b*(1-tolerance), c > b*(1+tolerance)
		if lowerIsBetter(name) {
			worse, better = c > b*(1+tolerance), c < b*(1-tolerance)
		}
		status := "ok"
		switch {
		case worse && enforced:
			status = "REGRESSED"
			failures++
		case worse:
			status = "regressed (not gated)"
		case better:
			status = "improved"
		}
		fmt.Fprintf(w, "%-50s %8.2f%s %8.2f%s %+7.1f%%  %s\n", name, b, unit, c, unit, delta*100, status)
	}
	extra := 0
	for k := range cur {
		if _, ok := base[k]; !ok {
			extra++
		}
	}
	if extra > 0 {
		fmt.Fprintf(w, "(%d metric(s) in current report have no baseline)\n", extra)
	}
	return failures
}
