package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sampleReport = `{
  "schema": "gsv-bench/1",
  "tables": [
    {
      "id": "E12",
      "headers": ["tuples", "views", "updates", "serial us/upd", "batched us/upd", "speedup", "screened %", "members equal"],
      "rows": [
        ["50", "4", "400", "12.0", "6.0", "2.0x", "71.0", "true"],
        ["800", "4", "400", "40.0", "10.0", "4.0x", "71.0", "true"]
      ]
    },
    {
      "id": "E14",
      "headers": ["replicas", "readers", "upds applied", "reads", "qps", "scaling", "p99 prop", "members equal"],
      "rows": [
        ["1", "4", "100", "900", "4500", "1.0x", "0.40ms", "true"],
        ["4", "16", "100", "3200", "16000", "3.6x", "0.00ms", "true"]
      ]
    },
    {
      "id": "E15",
      "headers": ["shards", "updates", "reports", "upd/s", "scaling", "cross", "members equal"],
      "rows": [
        ["1", "1500", "1600", "800.0", "1.0x", "0", "true"],
        ["4", "1500", "1620", "2600.0", "3.3x", "0", "true"],
        ["8", "1500", "1630", "4400.0", "5.5x", "0", "true"]
      ]
    }
  ],
  "benchmarks": [
    {"name": "E1IncrementalMaintenance/tuples=100", "ns_per_op": 1000},
    {"name": "E1Recompute/tuples=100", "ns_per_op": 50000}
  ]
}`

func write(t *testing.T, doc string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "r.json")
	if err := os.WriteFile(p, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMetricsExtraction(t *testing.T) {
	r, err := loadReport(write(t, sampleReport))
	if err != nil {
		t.Fatal(err)
	}
	m := metrics(r)
	want := map[string]float64{
		"E12[tuples=50].speedup":  2.0,
		"E12[tuples=800].speedup": 4.0,
		"E14[replicas=1].scaling": 1.0,
		"E14[replicas=4].scaling": 3.6,
		"E14[replicas=1].p99":     0.40,
		"E15[shards=1].scaling":   1.0,
		"E15[shards=4].scaling":   3.3,
		"E15[shards=8].scaling":   5.5,
		// replicas=4's "0.00ms" p99 means no stamped updates were
		// applied and must NOT become a metric.
		"bench[tuples=100].recompute_over_incremental": 50.0,
	}
	for k, v := range want {
		if got, ok := m[k]; !ok || got != v {
			t.Errorf("metric %s = %v (present %v), want %v", k, got, ok, v)
		}
	}
	if len(m) != len(want) {
		t.Errorf("extracted %d metrics %v, want %d", len(m), m, len(want))
	}
}

func TestCompareRegressionAndTolerance(t *testing.T) {
	base := map[string]float64{"E12[tuples=800].speedup": 4.0, "E14[replicas=4].scaling": 3.6}
	// Within tolerance: 10% down passes at 20%.
	cur := map[string]float64{"E12[tuples=800].speedup": 3.6, "E14[replicas=4].scaling": 3.6}
	var out bytes.Buffer
	if n := compare(&out, base, cur, 0.20, nil); n != 0 {
		t.Fatalf("10%% drop at 20%% tolerance: %d failures\n%s", n, out.String())
	}
	// Beyond tolerance: 50% down fails.
	cur["E12[tuples=800].speedup"] = 2.0
	out.Reset()
	if n := compare(&out, base, cur, 0.20, nil); n != 1 {
		t.Fatalf("50%% drop at 20%% tolerance: %d failures, want 1\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Fatalf("missing REGRESSED marker:\n%s", out.String())
	}
}

func TestCompareLatencyDirection(t *testing.T) {
	base := map[string]float64{"E14[replicas=1].p99": 0.40}
	var out bytes.Buffer
	// A latency FALLING far beyond tolerance is an improvement.
	if n := compare(&out, base, map[string]float64{"E14[replicas=1].p99": 0.10}, 0.20, nil); n != 0 {
		t.Fatalf("latency drop counted as regression: %d failures\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "improved") {
		t.Fatalf("missing improved marker:\n%s", out.String())
	}
	// Rising beyond tolerance fails.
	out.Reset()
	if n := compare(&out, base, map[string]float64{"E14[replicas=1].p99": 0.60}, 0.20, nil); n != 1 {
		t.Fatalf("50%% latency rise at 20%% tolerance: %d failures, want 1\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") || !strings.Contains(out.String(), "ms") {
		t.Fatalf("latency regression output:\n%s", out.String())
	}
}

func TestCompareMissingMetricFails(t *testing.T) {
	base := map[string]float64{"E13[tuples=50].speedup": 5.0}
	var out bytes.Buffer
	if n := compare(&out, base, map[string]float64{}, 0.20, nil); n != 1 {
		t.Fatalf("missing metric: %d failures, want 1\n%s", n, out.String())
	}
}

func TestCompareGateFilter(t *testing.T) {
	base := map[string]float64{"E12[tuples=800].speedup": 4.0, "E14[replicas=4].scaling": 3.6}
	cur := map[string]float64{"E12[tuples=800].speedup": 1.0, "E14[replicas=4].scaling": 3.6}
	var out bytes.Buffer
	// Gating only E14 turns the E12 collapse informational.
	if n := compare(&out, base, cur, 0.20, regexp.MustCompile(`^E14`)); n != 0 {
		t.Fatalf("ungated regression counted: %d failures\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "regressed (not gated)") {
		t.Fatalf("missing informational marker:\n%s", out.String())
	}
}

func TestFloorsAndCeilings(t *testing.T) {
	cur := map[string]float64{"E15[shards=4].scaling": 3.3, "E15[shards=8].scaling": 5.5}
	mustBound := func(s string, ceiling bool) bound {
		b, err := parseBound(s, ceiling)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	var out bytes.Buffer
	// The committed claim: 4-shard maintenance throughput holds >= 2x.
	if n := applyBounds(&out, cur, []bound{mustBound(`E15\[shards=4\]\.scaling=2`, false)}); n != 0 {
		t.Fatalf("floor met but %d failures\n%s", n, out.String())
	}
	// A current run below the floor fails even if it matches baseline.
	out.Reset()
	cur["E15[shards=4].scaling"] = 1.5
	if n := applyBounds(&out, cur, []bound{mustBound(`E15\[shards=4\]\.scaling=2`, false)}); n != 1 {
		t.Fatalf("floor breach: %d failures, want 1\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "BELOW FLOOR") {
		t.Fatalf("missing BELOW FLOOR marker:\n%s", out.String())
	}
	// A bound no metric matches is lost coverage, not a silent pass.
	out.Reset()
	if n := applyBounds(&out, cur, []bound{mustBound(`E16.*=2`, false)}); n != 1 {
		t.Fatalf("unmatched floor: %d failures, want 1\n%s", n, out.String())
	}
	if _, err := parseBound("no-separator", false); err == nil {
		t.Fatal("malformed floor accepted")
	}
	// Ceilings gate latencies against an absolute SLO: under passes,
	// over fails.
	lat := map[string]float64{"E14[replicas=1].p99": 1.2}
	out.Reset()
	if n := applyBounds(&out, lat, []bound{mustBound(`E14.*\.p99=25`, true)}); n != 0 {
		t.Fatalf("ceiling met but %d failures\n%s", n, out.String())
	}
	out.Reset()
	lat["E14[replicas=1].p99"] = 40
	if n := applyBounds(&out, lat, []bound{mustBound(`E14.*\.p99=25`, true)}); n != 1 {
		t.Fatalf("ceiling breach: %d failures, want 1\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "ABOVE CEILING") {
		t.Fatalf("missing ABOVE CEILING marker:\n%s", out.String())
	}
}

func TestLoadReportRejectsWrongSchema(t *testing.T) {
	if _, err := loadReport(write(t, `{"schema": "gsv-bench/0"}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
}
