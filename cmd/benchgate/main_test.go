package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sampleReport = `{
  "schema": "gsv-bench/1",
  "tables": [
    {
      "id": "E12",
      "headers": ["tuples", "views", "updates", "serial us/upd", "batched us/upd", "speedup", "screened %", "members equal"],
      "rows": [
        ["50", "4", "400", "12.0", "6.0", "2.0x", "71.0", "true"],
        ["800", "4", "400", "40.0", "10.0", "4.0x", "71.0", "true"]
      ]
    },
    {
      "id": "E14",
      "headers": ["replicas", "readers", "upds applied", "reads", "qps", "scaling", "p99 prop", "members equal"],
      "rows": [
        ["1", "4", "100", "900", "4500", "1.0x", "0.40ms", "true"],
        ["4", "16", "100", "3200", "16000", "3.6x", "0.00ms", "true"]
      ]
    }
  ],
  "benchmarks": [
    {"name": "E1IncrementalMaintenance/tuples=100", "ns_per_op": 1000},
    {"name": "E1Recompute/tuples=100", "ns_per_op": 50000}
  ]
}`

func write(t *testing.T, doc string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "r.json")
	if err := os.WriteFile(p, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMetricsExtraction(t *testing.T) {
	r, err := loadReport(write(t, sampleReport))
	if err != nil {
		t.Fatal(err)
	}
	m := metrics(r)
	want := map[string]float64{
		"E12[tuples=50].speedup":  2.0,
		"E12[tuples=800].speedup": 4.0,
		"E14[replicas=1].scaling": 1.0,
		"E14[replicas=4].scaling": 3.6,
		"E14[replicas=1].p99":     0.40,
		// replicas=4's "0.00ms" p99 means no stamped updates were
		// applied and must NOT become a metric.
		"bench[tuples=100].recompute_over_incremental": 50.0,
	}
	for k, v := range want {
		if got, ok := m[k]; !ok || got != v {
			t.Errorf("metric %s = %v (present %v), want %v", k, got, ok, v)
		}
	}
	if len(m) != len(want) {
		t.Errorf("extracted %d metrics %v, want %d", len(m), m, len(want))
	}
}

func TestCompareRegressionAndTolerance(t *testing.T) {
	base := map[string]float64{"E12[tuples=800].speedup": 4.0, "E14[replicas=4].scaling": 3.6}
	// Within tolerance: 10% down passes at 20%.
	cur := map[string]float64{"E12[tuples=800].speedup": 3.6, "E14[replicas=4].scaling": 3.6}
	var out bytes.Buffer
	if n := compare(&out, base, cur, 0.20, nil); n != 0 {
		t.Fatalf("10%% drop at 20%% tolerance: %d failures\n%s", n, out.String())
	}
	// Beyond tolerance: 50% down fails.
	cur["E12[tuples=800].speedup"] = 2.0
	out.Reset()
	if n := compare(&out, base, cur, 0.20, nil); n != 1 {
		t.Fatalf("50%% drop at 20%% tolerance: %d failures, want 1\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Fatalf("missing REGRESSED marker:\n%s", out.String())
	}
}

func TestCompareLatencyDirection(t *testing.T) {
	base := map[string]float64{"E14[replicas=1].p99": 0.40}
	var out bytes.Buffer
	// A latency FALLING far beyond tolerance is an improvement.
	if n := compare(&out, base, map[string]float64{"E14[replicas=1].p99": 0.10}, 0.20, nil); n != 0 {
		t.Fatalf("latency drop counted as regression: %d failures\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "improved") {
		t.Fatalf("missing improved marker:\n%s", out.String())
	}
	// Rising beyond tolerance fails.
	out.Reset()
	if n := compare(&out, base, map[string]float64{"E14[replicas=1].p99": 0.60}, 0.20, nil); n != 1 {
		t.Fatalf("50%% latency rise at 20%% tolerance: %d failures, want 1\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") || !strings.Contains(out.String(), "ms") {
		t.Fatalf("latency regression output:\n%s", out.String())
	}
}

func TestCompareMissingMetricFails(t *testing.T) {
	base := map[string]float64{"E13[tuples=50].speedup": 5.0}
	var out bytes.Buffer
	if n := compare(&out, base, map[string]float64{}, 0.20, nil); n != 1 {
		t.Fatalf("missing metric: %d failures, want 1\n%s", n, out.String())
	}
}

func TestCompareGateFilter(t *testing.T) {
	base := map[string]float64{"E12[tuples=800].speedup": 4.0, "E14[replicas=4].scaling": 3.6}
	cur := map[string]float64{"E12[tuples=800].speedup": 1.0, "E14[replicas=4].scaling": 3.6}
	var out bytes.Buffer
	// Gating only E14 turns the E12 collapse informational.
	if n := compare(&out, base, cur, 0.20, regexp.MustCompile(`^E14`)); n != 0 {
		t.Fatalf("ungated regression counted: %d failures\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "regressed (not gated)") {
		t.Fatalf("missing informational marker:\n%s", out.String())
	}
}

func TestLoadReportRejectsWrongSchema(t *testing.T) {
	if _, err := loadReport(write(t, `{"schema": "gsv-bench/0"}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
}
