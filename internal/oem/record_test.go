package oem

import (
	"fmt"
	"testing"
)

func TestRecordPaperExample(t *testing.T) {
	// <name:'Joe', salary:50k> as an employee record.
	objs := Record("E1", "employee", []Field{
		{Label: "name", Value: String_("Joe")},
		{Label: "salary", Type: "dollars", Value: Int(50000)},
	})
	if len(objs) != 3 {
		t.Fatalf("objects = %d", len(objs))
	}
	rec := objs[len(objs)-1]
	if rec.OID != "E1" || rec.Label != "employee" || !rec.IsSet() {
		t.Fatalf("record object = %v", rec)
	}
	byOID := map[OID]*Object{}
	for _, o := range objs {
		byOID[o.OID] = o
	}
	name := byOID["E1_name"]
	if name == nil || name.Label != "name" || !name.Atom.Equal(String_("Joe")) {
		t.Fatalf("name field = %v", name)
	}
	sal := byOID["E1_salary"]
	if sal == nil || sal.Type != "dollars" || !sal.Atom.Equal(Int(50000)) {
		t.Fatalf("salary field = %v", sal)
	}
	if !rec.Contains("E1_name") || !rec.Contains("E1_salary") {
		t.Fatalf("record value = %v", rec.Set)
	}
}

func TestRecordDeterministicOrder(t *testing.T) {
	a := Record("R", "r", []Field{{Label: "z", Value: Int(1)}, {Label: "a", Value: Int(2)}})
	b := Record("R", "r", []Field{{Label: "a", Value: Int(2)}, {Label: "z", Value: Int(1)}})
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("order depends on input: %v vs %v", a[i], b[i])
		}
	}
	if a[0].Label != "a" {
		t.Fatalf("fields not sorted: %v", a[0])
	}
}

func TestRecordEmpty(t *testing.T) {
	objs := Record("R", "r", nil)
	if len(objs) != 1 || !objs[0].IsSet() || len(objs[0].Set) != 0 {
		t.Fatalf("empty record = %v", objs)
	}
}

func TestRecordValues(t *testing.T) {
	objs := Record("E1", "employee", []Field{
		{Label: "name", Value: String_("Joe")},
		{Label: "salary", Value: Int(50000)},
	})
	byOID := map[OID]*Object{}
	for _, o := range objs {
		byOID[o.OID] = o
	}
	lookup := func(oid OID) (*Object, error) {
		if o, ok := byOID[oid]; ok {
			return o, nil
		}
		return nil, fmt.Errorf("missing %s", oid)
	}
	rec := byOID["E1"]
	vals := RecordValues(rec, lookup)
	if len(vals) != 2 || !vals["name"].Equal(String_("Joe")) || !vals["salary"].Equal(Int(50000)) {
		t.Fatalf("values = %v", vals)
	}
	// Dangling and set children are skipped.
	rec.Add("missing")
	vals = RecordValues(rec, lookup)
	if len(vals) != 2 {
		t.Fatalf("values with dangling = %v", vals)
	}
	// Nil and atomic inputs yield empty maps.
	if len(RecordValues(nil, lookup)) != 0 {
		t.Fatal("nil record produced values")
	}
	if len(RecordValues(byOID["E1_name"], lookup)) != 0 {
		t.Fatal("atomic record produced values")
	}
}
