package oem

import (
	"encoding/json"
	"fmt"
)

// jsonAtom is the wire form of an Atom: the kind tag plus only the field
// that kind uses, so integers survive without float rounding.
type jsonAtom struct {
	Kind int      `json:"k"`
	I    *int64   `json:"i,omitempty"`
	F    *float64 `json:"f,omitempty"`
	S    *string  `json:"s,omitempty"`
	B    *bool    `json:"b,omitempty"`
}

// MarshalJSON implements json.Marshaler with a compact tagged encoding.
func (a Atom) MarshalJSON() ([]byte, error) {
	ja := jsonAtom{Kind: int(a.Kind)}
	switch a.Kind {
	case AtomInt:
		ja.I = &a.I
	case AtomFloat:
		ja.F = &a.F
	case AtomString:
		ja.S = &a.S
	case AtomBool:
		ja.B = &a.B
	case AtomNone:
	default:
		return nil, fmt.Errorf("oem: cannot marshal atom kind %d", int(a.Kind))
	}
	return json.Marshal(ja)
}

// UnmarshalJSON implements json.Unmarshaler.
func (a *Atom) UnmarshalJSON(data []byte) error {
	var ja jsonAtom
	if err := json.Unmarshal(data, &ja); err != nil {
		return err
	}
	*a = Atom{Kind: AtomKind(ja.Kind)}
	switch a.Kind {
	case AtomInt:
		if ja.I != nil {
			a.I = *ja.I
		}
	case AtomFloat:
		if ja.F != nil {
			a.F = *ja.F
		}
	case AtomString:
		if ja.S != nil {
			a.S = *ja.S
		}
	case AtomBool:
		if ja.B != nil {
			a.B = *ja.B
		}
	case AtomNone:
	default:
		return fmt.Errorf("oem: cannot unmarshal atom kind %d", ja.Kind)
	}
	return nil
}

// jsonObject is the wire form of an Object.
type jsonObject struct {
	OID   OID    `json:"oid"`
	Label string `json:"label"`
	Kind  int    `json:"kind"`
	Type  string `json:"type"`
	Atom  *Atom  `json:"atom,omitempty"`
	Set   []OID  `json:"set,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (o *Object) MarshalJSON() ([]byte, error) {
	jo := jsonObject{OID: o.OID, Label: o.Label, Kind: int(o.Kind), Type: o.Type}
	if o.IsAtomic() {
		a := o.Atom
		jo.Atom = &a
	} else {
		jo.Set = o.Set
	}
	return json.Marshal(jo)
}

// UnmarshalJSON implements json.Unmarshaler.
func (o *Object) UnmarshalJSON(data []byte) error {
	var jo jsonObject
	if err := json.Unmarshal(data, &jo); err != nil {
		return err
	}
	*o = Object{OID: jo.OID, Label: jo.Label, Kind: Kind(jo.Kind), Type: jo.Type, Set: jo.Set}
	if o.Kind == KindAtomic {
		if jo.Atom == nil {
			return fmt.Errorf("oem: atomic object %s without atom", jo.OID)
		}
		o.Atom = *jo.Atom
	}
	return nil
}
