package oem

import (
	"fmt"
	"strconv"
	"strings"
)

// AtomKind enumerates the representations an atomic value can take. The
// paper's examples use integers, strings and a "dollar" type; dollars are
// represented as integers with a distinct type name on the object.
type AtomKind int

const (
	// AtomNone is the zero Atom, the value of no-value placeholders.
	AtomNone AtomKind = iota
	// AtomInt is a 64-bit signed integer.
	AtomInt
	// AtomFloat is a 64-bit float.
	AtomFloat
	// AtomString is a string.
	AtomString
	// AtomBool is a boolean.
	AtomBool
)

// String returns the canonical name of the kind.
func (k AtomKind) String() string {
	switch k {
	case AtomNone:
		return "none"
	case AtomInt:
		return "integer"
	case AtomFloat:
		return "real"
	case AtomString:
		return "string"
	case AtomBool:
		return "boolean"
	default:
		return fmt.Sprintf("AtomKind(%d)", int(k))
	}
}

// Atom is the value of an atomic object: a small tagged union. The zero
// Atom has kind AtomNone and compares equal only to itself.
type Atom struct {
	Kind AtomKind
	I    int64
	F    float64
	S    string
	B    bool
}

// Int returns an integer atom.
func Int(v int64) Atom { return Atom{Kind: AtomInt, I: v} }

// Float returns a real-valued atom.
func Float(v float64) Atom { return Atom{Kind: AtomFloat, F: v} }

// String_ returns a string atom. The underscore avoids colliding with the
// String method required by fmt.Stringer.
func String_(v string) Atom { return Atom{Kind: AtomString, S: v} }

// Bool returns a boolean atom.
func Bool(v bool) Atom { return Atom{Kind: AtomBool, B: v} }

// TypeName returns the default type field for an object holding this atom.
func (a Atom) TypeName() string { return a.Kind.String() }

// IsZero reports whether the atom is the zero (no-value) atom.
func (a Atom) IsZero() bool { return a.Kind == AtomNone }

// Equal reports whether two atoms hold the same value. Integers and floats
// compare numerically across kinds, so Int(45) equals Float(45).
func (a Atom) Equal(b Atom) bool {
	c, ok := a.Compare(b)
	return ok && c == 0
}

// Compare orders two atoms. It returns -1, 0 or +1 and ok=true when the
// atoms are comparable: both numeric (integers and floats compare
// numerically across kinds), both strings, or both booleans (false < true).
// Incomparable atoms return ok=false; the query evaluator treats such
// comparisons as unsatisfied rather than as errors, since GSDB data carries
// no schema to rule them out.
func (a Atom) Compare(b Atom) (int, bool) {
	switch {
	case a.isNumeric() && b.isNumeric():
		af, bf := a.asFloat(), b.asFloat()
		// Compare exactly when both are integers to avoid float rounding on
		// large values.
		if a.Kind == AtomInt && b.Kind == AtomInt {
			switch {
			case a.I < b.I:
				return -1, true
			case a.I > b.I:
				return 1, true
			default:
				return 0, true
			}
		}
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	case a.Kind == AtomString && b.Kind == AtomString:
		return strings.Compare(a.S, b.S), true
	case a.Kind == AtomBool && b.Kind == AtomBool:
		switch {
		case a.B == b.B:
			return 0, true
		case !a.B:
			return -1, true
		default:
			return 1, true
		}
	case a.Kind == AtomNone && b.Kind == AtomNone:
		return 0, true
	default:
		return 0, false
	}
}

func (a Atom) isNumeric() bool { return a.Kind == AtomInt || a.Kind == AtomFloat }

func (a Atom) asFloat() float64 {
	if a.Kind == AtomInt {
		return float64(a.I)
	}
	return a.F
}

// String renders the atom's value. Strings are quoted in the paper's style.
func (a Atom) String() string {
	switch a.Kind {
	case AtomNone:
		return "<none>"
	case AtomInt:
		return strconv.FormatInt(a.I, 10)
	case AtomFloat:
		return strconv.FormatFloat(a.F, 'g', -1, 64)
	case AtomString:
		return "'" + a.S + "'"
	case AtomBool:
		return strconv.FormatBool(a.B)
	default:
		return fmt.Sprintf("Atom(%d)", int(a.Kind))
	}
}

// EncodedSize estimates the wire size of the atom in bytes.
func (a Atom) EncodedSize() int {
	switch a.Kind {
	case AtomInt, AtomFloat:
		return 8
	case AtomString:
		return len(a.S) + 1
	case AtomBool:
		return 1
	default:
		return 1
	}
}

// ParseAtom interprets a literal string as an atom: integers, floats and
// booleans parse to their kinds; quoted text ('...' or "...") parses to a
// string atom; anything else is a bare string atom. It is used by the query
// lexer and the CLI.
func ParseAtom(s string) Atom {
	if len(s) >= 2 {
		if (s[0] == '\'' && s[len(s)-1] == '\'') || (s[0] == '"' && s[len(s)-1] == '"') {
			return String_(s[1 : len(s)-1])
		}
	}
	if v, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int(v)
	}
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return Float(v)
	}
	if v, err := strconv.ParseBool(s); err == nil {
		return Bool(v)
	}
	return String_(s)
}
