package oem

import (
	"encoding/json"
	"testing"
	"testing/quick"
)

func roundTripObject(t *testing.T, o *Object) *Object {
	t.Helper()
	data, err := json.Marshal(o)
	if err != nil {
		t.Fatalf("marshal %v: %v", o, err)
	}
	var back Object
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal %s: %v", data, err)
	}
	return &back
}

func TestJSONRoundTripObjects(t *testing.T) {
	objs := []*Object{
		NewSet("P1", "professor", "N1", "A1"),
		NewSet("E", "empty"),
		NewAtom("A1", "age", Int(45)),
		NewAtom("N1", "name", String_("John")),
		NewAtom("F", "score", Float(2.5)),
		NewAtom("B", "flag", Bool(true)),
		NewTypedAtom("S1", "salary", "dollar", Int(1<<60)),
	}
	for _, o := range objs {
		back := roundTripObject(t, o)
		if !o.Equal(back) || o.Type != back.Type {
			t.Errorf("round trip changed %v -> %v", o, back)
		}
	}
}

func TestJSONAtomKindsExact(t *testing.T) {
	// Large integers must not round-trip through float64.
	a := Int(1<<62 + 1)
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back Atom
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.I != a.I || back.Kind != AtomInt {
		t.Fatalf("large int round trip: %v -> %v", a, back)
	}
	// Zero values are preserved per kind.
	for _, a := range []Atom{Int(0), Float(0), String_(""), Bool(false), {}} {
		data, _ := json.Marshal(a)
		var b Atom
		if err := json.Unmarshal(data, &b); err != nil {
			t.Fatal(err)
		}
		if b.Kind != a.Kind || !b.Equal(a) {
			t.Errorf("zero round trip: %v -> %v", a, b)
		}
	}
}

func TestJSONRejectsGarbage(t *testing.T) {
	var o Object
	for _, data := range []string{
		`{`,
		`{"oid":"A","label":"x","kind":0,"type":"integer"}`, // atomic, no atom
	} {
		if err := json.Unmarshal([]byte(data), &o); err == nil {
			t.Errorf("unmarshal(%q) succeeded", data)
		}
	}
	var a Atom
	if err := json.Unmarshal([]byte(`{"k":99}`), &a); err == nil {
		t.Error("unknown atom kind accepted")
	}
}

func TestPropertyJSONAtomRoundTrip(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool, sel uint8) bool {
		var a Atom
		switch sel % 5 {
		case 0:
			a = Int(i)
		case 1:
			a = Float(fl)
		case 2:
			a = String_(s)
		case 3:
			a = Bool(b)
		default:
			a = Atom{}
		}
		data, err := json.Marshal(a)
		if err != nil {
			return false
		}
		var back Atom
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		if a.Kind == AtomFloat {
			// NaN does not compare equal; accept kind equality there.
			return back.Kind == AtomFloat && (a.F != a.F || back.Equal(a))
		}
		return back.Kind == a.Kind && back.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
