package oem

import (
	"testing"
	"testing/quick"
)

func TestAtomConstructors(t *testing.T) {
	cases := []struct {
		a    Atom
		kind AtomKind
		name string
	}{
		{Int(5), AtomInt, "integer"},
		{Float(2.5), AtomFloat, "real"},
		{String_("hi"), AtomString, "string"},
		{Bool(true), AtomBool, "boolean"},
		{Atom{}, AtomNone, "none"},
	}
	for _, c := range cases {
		if c.a.Kind != c.kind {
			t.Errorf("%v Kind = %v, want %v", c.a, c.a.Kind, c.kind)
		}
		if c.a.TypeName() != c.name {
			t.Errorf("%v TypeName = %q, want %q", c.a, c.a.TypeName(), c.name)
		}
	}
}

func TestAtomCompareNumericCrossKind(t *testing.T) {
	if !Int(45).Equal(Float(45)) {
		t.Error("Int(45) != Float(45)")
	}
	if c, ok := Int(40).Compare(Float(45.5)); !ok || c != -1 {
		t.Errorf("Int(40) vs Float(45.5) = %d,%v", c, ok)
	}
	if c, ok := Float(50).Compare(Int(45)); !ok || c != 1 {
		t.Errorf("Float(50) vs Int(45) = %d,%v", c, ok)
	}
}

func TestAtomCompareLargeInts(t *testing.T) {
	// Large int64 values that would collide after float64 rounding must
	// still compare exactly.
	a := Int(1<<62 + 1)
	b := Int(1 << 62)
	if c, ok := a.Compare(b); !ok || c != 1 {
		t.Errorf("large int compare = %d,%v, want 1,true", c, ok)
	}
}

func TestAtomCompareStrings(t *testing.T) {
	if c, ok := String_("abc").Compare(String_("abd")); !ok || c != -1 {
		t.Errorf("'abc' vs 'abd' = %d,%v", c, ok)
	}
	if !String_("x").Equal(String_("x")) {
		t.Error("identical strings not equal")
	}
}

func TestAtomCompareBools(t *testing.T) {
	if c, ok := Bool(false).Compare(Bool(true)); !ok || c != -1 {
		t.Errorf("false vs true = %d,%v", c, ok)
	}
	if c, ok := Bool(true).Compare(Bool(true)); !ok || c != 0 {
		t.Errorf("true vs true = %d,%v", c, ok)
	}
}

func TestAtomCompareIncomparable(t *testing.T) {
	pairs := [][2]Atom{
		{String_("45"), Int(45)},
		{Bool(true), Int(1)},
		{String_("true"), Bool(true)},
		{Atom{}, Int(0)},
	}
	for _, p := range pairs {
		if _, ok := p[0].Compare(p[1]); ok {
			t.Errorf("%v vs %v comparable, want incomparable", p[0], p[1])
		}
		if p[0].Equal(p[1]) {
			t.Errorf("%v Equal %v", p[0], p[1])
		}
	}
	if c, ok := (Atom{}).Compare(Atom{}); !ok || c != 0 {
		t.Errorf("none vs none = %d,%v, want 0,true", c, ok)
	}
}

func TestAtomString(t *testing.T) {
	cases := []struct {
		a    Atom
		want string
	}{
		{Int(45), "45"},
		{Float(2.5), "2.5"},
		{String_("John"), "'John'"},
		{Bool(true), "true"},
		{Atom{}, "<none>"},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestParseAtom(t *testing.T) {
	cases := []struct {
		in   string
		want Atom
	}{
		{"45", Int(45)},
		{"-3", Int(-3)},
		{"2.5", Float(2.5)},
		{"true", Bool(true)},
		{"'John'", String_("John")},
		{`"Jane"`, String_("Jane")},
		{"hello", String_("hello")},
	}
	for _, c := range cases {
		got := ParseAtom(c.in)
		if got.Kind != c.want.Kind || !got.Equal(c.want) {
			t.Errorf("ParseAtom(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPropertyCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		c1, ok1 := Int(a).Compare(Int(b))
		c2, ok2 := Int(b).Compare(Int(a))
		return ok1 && ok2 && c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyStringCompareMatchesGo(t *testing.T) {
	f := func(a, b string) bool {
		c, ok := String_(a).Compare(String_(b))
		if !ok {
			return false
		}
		switch {
		case a < b:
			return c == -1
		case a > b:
			return c == 1
		default:
			return c == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
