package oem

import "sort"

// Field is one named field of a record, in the paper's Section 2 sense:
// "a multi-field employee object <name:'Joe', salary:50k> can be
// represented as
//
//	<E1, employee, set, {N1, S1}>
//	  <N1, name, string, 'Joe'>
//	  <S1, salary, dollars, 50k>"
type Field struct {
	// Label is the field name, used as the subobject's label.
	Label string
	// Type optionally overrides the atom's default type name ("dollar").
	Type string
	// Value is the field's atomic value.
	Value Atom
}

// Record flattens a multi-field record into OEM objects: one set object
// carrying the record label, plus one atomic subobject per field with OID
// <oid>_<label>. Fields are emitted in sorted label order for determinism;
// the record object is last so stores that validate children can insert
// the fields first. Fixed-format records ("the schema defines the first
// field to be a name") are represented identically — the field names
// simply repeat in every record, as the paper describes.
func Record(oid OID, label string, fields []Field) []*Object {
	sorted := append([]Field(nil), fields...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Label < sorted[j].Label })
	out := make([]*Object, 0, len(sorted)+1)
	members := make([]OID, 0, len(sorted))
	for _, f := range sorted {
		foid := OID(string(oid) + "_" + f.Label)
		var o *Object
		if f.Type != "" {
			o = NewTypedAtom(foid, f.Label, f.Type, f.Value)
		} else {
			o = NewAtom(foid, f.Label, f.Value)
		}
		out = append(out, o)
		members = append(members, foid)
	}
	out = append(out, NewSet(oid, label, members...))
	return out
}

// RecordValues inverts Record for an object whose children are atomic
// fields: it returns label → value for every atomic child found through
// lookup. Children that are missing or set objects are skipped. With
// repeated labels the last one in value order wins; OEM permits repeats
// and callers needing them should read the children directly.
func RecordValues(o *Object, lookup func(OID) (*Object, error)) map[string]Atom {
	out := map[string]Atom{}
	if o == nil || !o.IsSet() {
		return out
	}
	for _, c := range o.Set {
		child, err := lookup(c)
		if err != nil || child == nil || !child.IsAtomic() {
			continue
		}
		out[child.Label] = child.Atom
	}
	return out
}
