package oem

import (
	"testing"
	"testing/quick"
)

func TestNewSetDeduplicates(t *testing.T) {
	o := NewSet("S", "people", "P1", "P2", "P1", "P3", "P2")
	want := []OID{"P1", "P2", "P3"}
	if len(o.Set) != len(want) {
		t.Fatalf("Set = %v, want %v", o.Set, want)
	}
	for i, m := range want {
		if o.Set[i] != m {
			t.Fatalf("Set = %v, want %v", o.Set, want)
		}
	}
}

func TestAddRemoveContains(t *testing.T) {
	o := NewSet("S", "people")
	if o.Contains("P1") {
		t.Fatal("empty set contains P1")
	}
	if !o.Add("P1") {
		t.Fatal("first Add returned false")
	}
	if o.Add("P1") {
		t.Fatal("duplicate Add returned true")
	}
	if !o.Contains("P1") {
		t.Fatal("set does not contain P1 after Add")
	}
	if !o.Remove("P1") {
		t.Fatal("Remove of present member returned false")
	}
	if o.Remove("P1") {
		t.Fatal("Remove of absent member returned true")
	}
	if o.Contains("P1") {
		t.Fatal("set still contains P1 after Remove")
	}
}

func TestAddOnAtomicPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add on atomic object did not panic")
		}
	}()
	NewAtom("A", "age", Int(45)).Add("X")
}

func TestRemoveOnAtomicPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Remove on atomic object did not panic")
		}
	}()
	NewAtom("A", "age", Int(45)).Remove("X")
}

func TestReplace(t *testing.T) {
	o := NewSet("S", "people", "P1", "P2", "P3")
	if !o.Replace("P2", "MV.P2") {
		t.Fatal("Replace of present member returned false")
	}
	if o.Set[1] != "MV.P2" {
		t.Fatalf("Replace did not preserve position: %v", o.Set)
	}
	if o.Replace("P9", "X") {
		t.Fatal("Replace of absent member returned true")
	}
	// Replacing with an OID already present must not create a duplicate.
	if !o.Replace("P1", "P3") {
		t.Fatal("Replace(P1,P3) returned false")
	}
	if got := len(o.Set); got != 2 {
		t.Fatalf("after collapsing replace, len = %d (%v), want 2", got, o.Set)
	}
	if o.Contains("P1") {
		t.Fatal("P1 still present after Replace")
	}
}

func TestReplaceOnAtomic(t *testing.T) {
	a := NewAtom("A", "age", Int(3))
	if a.Replace("X", "Y") {
		t.Fatal("Replace on atomic object returned true")
	}
}

func TestCloneIsDeep(t *testing.T) {
	o := NewSet("S", "people", "P1", "P2")
	c := o.Clone()
	c.Add("P3")
	if o.Contains("P3") {
		t.Fatal("mutating clone changed original")
	}
	if !o.Equal(o.Clone()) {
		t.Fatal("object not equal to its own clone")
	}
}

func TestEqualIgnoresSetOrder(t *testing.T) {
	a := NewSet("S", "people", "P1", "P2", "P3")
	b := NewSet("S", "people", "P3", "P1", "P2")
	if !a.Equal(b) {
		t.Fatal("sets with same members in different order not Equal")
	}
	b.Remove("P3")
	if a.Equal(b) {
		t.Fatal("sets with different members Equal")
	}
}

func TestEqualNils(t *testing.T) {
	var a, b *Object
	if !a.Equal(b) {
		t.Fatal("nil != nil")
	}
	if a.Equal(NewSet("S", "s")) {
		t.Fatal("nil == non-nil")
	}
}

func TestEqualAtomic(t *testing.T) {
	a := NewAtom("A", "age", Int(45))
	b := NewAtom("A", "age", Int(45))
	if !a.Equal(b) {
		t.Fatal("identical atoms not Equal")
	}
	b.Atom = Int(46)
	if a.Equal(b) {
		t.Fatal("different atom values Equal")
	}
	c := NewAtom("A", "salary", Int(45))
	if a.Equal(c) {
		t.Fatal("different labels Equal")
	}
}

func TestStringRendering(t *testing.T) {
	set := NewSet("P1", "professor", "N1", "A1")
	if got, want := set.String(), "<P1, professor, set, {N1,A1}>"; got != want {
		t.Errorf("set String = %q, want %q", got, want)
	}
	atom := NewAtom("A1", "age", Int(45))
	if got, want := atom.String(), "<A1, age, integer, 45>"; got != want {
		t.Errorf("atom String = %q, want %q", got, want)
	}
	str := NewAtom("N1", "name", String_("John"))
	if got, want := str.String(), "<N1, name, string, 'John'>"; got != want {
		t.Errorf("string atom String = %q, want %q", got, want)
	}
	var nilObj *Object
	if nilObj.String() != "<nil>" {
		t.Errorf("nil String = %q", nilObj.String())
	}
}

func TestTypedAtom(t *testing.T) {
	s := NewTypedAtom("S1", "salary", "dollar", Int(100000))
	if s.Type != "dollar" {
		t.Fatalf("Type = %q, want dollar", s.Type)
	}
	if s.Atom.Kind != AtomInt {
		t.Fatalf("Kind = %v, want AtomInt", s.Atom.Kind)
	}
}

func TestSameMembers(t *testing.T) {
	cases := []struct {
		a, b []OID
		want bool
	}{
		{nil, nil, true},
		{[]OID{}, nil, true},
		{[]OID{"A"}, []OID{"A"}, true},
		{[]OID{"A", "B"}, []OID{"B", "A"}, true},
		{[]OID{"A"}, []OID{"B"}, false},
		{[]OID{"A"}, []OID{"A", "B"}, false},
	}
	for _, c := range cases {
		if got := SameMembers(c.a, c.b); got != c.want {
			t.Errorf("SameMembers(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEncodedSizePositive(t *testing.T) {
	if NewSet("S", "s", "A", "B").EncodedSize() <= 0 {
		t.Fatal("set EncodedSize not positive")
	}
	if NewAtom("A", "a", String_("hello")).EncodedSize() <= 0 {
		t.Fatal("atom EncodedSize not positive")
	}
}

func TestPropertyAddRemoveRoundTrip(t *testing.T) {
	f := func(members []string, extra string) bool {
		o := NewSet("S", "s")
		for _, m := range members {
			o.Add(OID(m))
		}
		before := o.Clone()
		if o.Contains(OID(extra)) {
			// Removing and re-adding a present member keeps membership.
			o.Remove(OID(extra))
			o.Add(OID(extra))
		} else {
			// Adding then removing an absent member restores the set.
			o.Add(OID(extra))
			o.Remove(OID(extra))
		}
		return before.Equal(o)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
