// Package oem implements the object model underlying a graph structured
// database (GSDB), following the OEM model of Papakonstantinou,
// Garcia-Molina and Widom as used by Zhuge and Garcia-Molina in "Graph
// Structured Views and Their Incremental Maintenance" (ICDE 1998).
//
// Every object carries four fields: an OID (a universally unique
// identifier), a label (a descriptive, non-unique string), a type, and a
// value. An object is either atomic — its value is a single Atom such as an
// integer or a string — or a set object, whose value is a set of OIDs of
// other objects. The directed edges implied by set values give the database
// its graph structure.
package oem

import (
	"fmt"
	"slices"
	"sort"
	"strings"
)

// OID is a universally unique object identifier. The paper treats OIDs as
// opaque; examples use meaningful names such as "P1" or "ROOT". Materialized
// views concatenate a view OID and a base OID with a dot (semantic OIDs), so
// base OIDs produced by this library never contain dots.
type OID string

// NoOID is the zero OID, returned when an object lookup fails.
const NoOID OID = ""

// Kind distinguishes atomic objects from set objects.
type Kind int

const (
	// KindAtomic marks an object whose value is a single Atom.
	KindAtomic Kind = iota
	// KindSet marks an object whose value is a set of OIDs.
	KindSet
)

// String returns "atomic" or "set".
func (k Kind) String() string {
	switch k {
	case KindAtomic:
		return "atomic"
	case KindSet:
		return "set"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// TypeSet is the type field value shared by all set objects.
const TypeSet = "set"

// IsGroupingLabel reports whether a label marks a *grouping* object — a
// database object, view object, query answer or authorization union. The
// paper calls database objects "simply a conceptual aid": they group every
// OID of a database and therefore violate the tree structure that the
// maintenance algorithms' path and ancestor functions assume. Path and
// ancestor computations skip grouping objects as parents unless the
// grouping object is itself the traversal root (databases and views are
// legitimate query entry points).
func IsGroupingLabel(label string) bool {
	switch label {
	case "database", "view", "mview", "answer", "authorized":
		return true
	default:
		return false
	}
}

// Object is a single OEM object. Exactly one of Atom and Set is meaningful,
// selected by Kind. Set members are kept duplicate-free in insertion order;
// the order is not semantically significant (values are sets) but keeps
// output and tests deterministic.
type Object struct {
	// OID uniquely identifies the object.
	OID OID
	// Label explains the meaning of the object; it need not be unique.
	Label string
	// Kind selects between the Atom and Set fields.
	Kind Kind
	// Type names the object's type: an atomic type such as "integer",
	// "string" or "dollar", or TypeSet for set objects. For atomic objects
	// the type is descriptive; comparisons use the Atom representation.
	Type string
	// Atom holds the value of an atomic object.
	Atom Atom
	// Set holds the value of a set object: the OIDs of its children.
	Set []OID
}

// NewAtom returns an atomic object. The type field is derived from the atom
// when typ is empty.
func NewAtom(oid OID, label string, a Atom) *Object {
	return &Object{OID: oid, Label: label, Kind: KindAtomic, Type: a.TypeName(), Atom: a}
}

// NewTypedAtom returns an atomic object with an explicit type name such as
// "dollar"; the representation is still carried by the atom.
func NewTypedAtom(oid OID, label, typ string, a Atom) *Object {
	return &Object{OID: oid, Label: label, Kind: KindAtomic, Type: typ, Atom: a}
}

// NewSet returns a set object whose value is the given OIDs. Duplicates are
// removed, keeping the first occurrence.
func NewSet(oid OID, label string, members ...OID) *Object {
	o := &Object{OID: oid, Label: label, Kind: KindSet, Type: TypeSet}
	for _, m := range members {
		o.Add(m)
	}
	return o
}

// IsSet reports whether the object is a set object.
func (o *Object) IsSet() bool { return o.Kind == KindSet }

// IsAtomic reports whether the object is an atomic object.
func (o *Object) IsAtomic() bool { return o.Kind == KindAtomic }

// Contains reports whether oid is a member of a set object's value. It is
// always false for atomic objects.
func (o *Object) Contains(oid OID) bool {
	return o.Kind == KindSet && slices.Contains(o.Set, oid)
}

// Add appends oid to a set object's value if not already present and
// reports whether the value changed. Calling Add on an atomic object
// panics: it indicates a logic error in the caller.
func (o *Object) Add(oid OID) bool {
	if o.Kind != KindSet {
		panic(fmt.Sprintf("oem: Add on atomic object %s", o.OID))
	}
	if slices.Contains(o.Set, oid) {
		return false
	}
	o.Set = append(o.Set, oid)
	return true
}

// Remove deletes oid from a set object's value and reports whether the
// value changed. Calling Remove on an atomic object panics.
func (o *Object) Remove(oid OID) bool {
	if o.Kind != KindSet {
		panic(fmt.Sprintf("oem: Remove on atomic object %s", o.OID))
	}
	i := slices.Index(o.Set, oid)
	if i < 0 {
		return false
	}
	o.Set = slices.Delete(o.Set, i, i+1)
	return true
}

// Replace substitutes member old with new in a set object's value,
// preserving position, and reports whether a substitution happened. It is
// used by edge swizzling, which rewrites base OIDs to delegate OIDs.
func (o *Object) Replace(old, new OID) bool {
	if o.Kind != KindSet {
		return false
	}
	i := slices.Index(o.Set, old)
	if i < 0 {
		return false
	}
	if slices.Contains(o.Set, new) {
		// The replacement is already present; drop the old member instead of
		// introducing a duplicate.
		o.Set = slices.Delete(o.Set, i, i+1)
		return true
	}
	o.Set[i] = new
	return true
}

// Clone returns a deep copy of the object.
func (o *Object) Clone() *Object {
	c := *o
	if o.Set != nil {
		c.Set = slices.Clone(o.Set)
	}
	return &c
}

// Equal reports whether two objects have the same OID, label, kind, type
// and value. Set values compare as sets: order is ignored.
func (o *Object) Equal(p *Object) bool {
	if o == nil || p == nil {
		return o == p
	}
	if o.OID != p.OID || o.Label != p.Label || o.Kind != p.Kind || o.Type != p.Type {
		return false
	}
	if o.Kind == KindAtomic {
		return o.Atom.Equal(p.Atom)
	}
	return SameMembers(o.Set, p.Set)
}

// SameMembers reports whether two OID slices contain the same set of OIDs,
// ignoring order. Inputs are assumed duplicate-free, as set values are.
func SameMembers(a, b []OID) bool {
	if len(a) != len(b) {
		return false
	}
	as := slices.Clone(a)
	bs := slices.Clone(b)
	slices.Sort(as)
	slices.Sort(bs)
	return slices.Equal(as, bs)
}

// String renders the object in the paper's angle-bracket notation, e.g.
// <P1, professor, set, {N1,A1,S1,P3}> or <A1, age, integer, 45>.
func (o *Object) String() string {
	if o == nil {
		return "<nil>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "<%s, %s, %s, ", o.OID, o.Label, o.Type)
	if o.Kind == KindAtomic {
		b.WriteString(o.Atom.String())
	} else {
		b.WriteByte('{')
		for i, m := range o.Set {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(string(m))
		}
		b.WriteByte('}')
	}
	b.WriteByte('>')
	return b.String()
}

// EncodedSize estimates the wire size of the object in bytes. The warehouse
// transport uses it to account for bytes shipped between sources and the
// warehouse; the estimate counts field contents plus small per-field
// framing, which is enough for the relative comparisons the benchmarks make.
func (o *Object) EncodedSize() int {
	n := len(o.OID) + len(o.Label) + len(o.Type) + 4 // framing
	if o.Kind == KindAtomic {
		n += o.Atom.EncodedSize()
	} else {
		for _, m := range o.Set {
			n += len(m) + 1
		}
	}
	return n
}

// SortOIDs sorts a slice of OIDs in place and returns it, for deterministic
// output in tests and tools.
func SortOIDs(oids []OID) []OID {
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	return oids
}
