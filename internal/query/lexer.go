package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds. Keywords are not distinguished by
// the lexer — the parser matches identifier text case-insensitively where a
// keyword is expected, so labels may reuse keyword spellings in path
// positions.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokDot
	tokStar
	tokQMark
	tokLParen
	tokRParen
	tokPipe
	tokComma
	tokColon
	tokOp // = != < <= > >=
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex tokenizes an input string. It returns an error for characters outside
// the language.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '?':
			toks = append(toks, token{tokQMark, "?", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '|':
			toks = append(toks, token{tokPipe, "|", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == ':':
			toks = append(toks, token{tokColon, ":", i})
			i++
		case c == '=':
			toks = append(toks, token{tokOp, "=", i})
			i++
		case c == '!':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, token{tokOp, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("query: unexpected '!' at %d", i)
			}
		case c == '<' || c == '>':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, token{tokOp, string(c) + "=", i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, string(c), i})
				i++
			}
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			for j < len(input) && input[j] != quote {
				j++
			}
			if j == len(input) {
				return nil, fmt.Errorf("query: unterminated string at %d", i)
			}
			toks = append(toks, token{tokString, input[i+1 : j], i})
			i = j + 1
		case c == '-' || isDigit(c):
			j := i
			if c == '-' {
				j++
				if j == len(input) || !isDigit(input[j]) {
					return nil, fmt.Errorf("query: unexpected '-' at %d", i)
				}
			}
			sawDot := false
			for j < len(input) && (isDigit(input[j]) || (input[j] == '.' && !sawDot && j+1 < len(input) && isDigit(input[j+1]))) {
				if input[j] == '.' {
					sawDot = true
				}
				j++
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < len(input) && isIdentPart(rune(input[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, input[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("query: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_' || r == '$'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '$'
}

// isKeyword reports whether an identifier token spells the given keyword,
// case-insensitively.
func isKeyword(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
