package query

import (
	"strings"
	"testing"

	"gsv/internal/oem"
)

func TestParseBasicQuery(t *testing.T) {
	q, err := Parse("SELECT ROOT.professor X WHERE X.age > 40")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Selects) != 1 {
		t.Fatalf("selects = %d", len(q.Selects))
	}
	s := q.Selects[0]
	if s.Entry != "ROOT" || s.Binder != "X" || s.Path.String() != "professor" {
		t.Fatalf("select = %+v", s)
	}
	c, ok := q.Where.(*Compare)
	if !ok {
		t.Fatalf("where = %T", q.Where)
	}
	if c.Binder != "X" || c.Path.String() != "age" || c.Op != OpGt || !c.Literal.Equal(oem.Int(40)) {
		t.Fatalf("compare = %+v", c)
	}
}

func TestParsePaperExamples(t *testing.T) {
	// Every query and view definition that appears in the paper must parse.
	stmts := []string{
		"SELECT ROOT.professor X WHERE X.age > 40",
		"SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON",
		"SELECT ROOT.professor X ANS INT VJ",
		"SELECT ROOT.*.professor X",
		"SELECT PROF.?.student X",
		"SELECT VJ.?.age",
		"SELECT MVJ.professor.student WITHIN MVJ",
		"SELECT REL.r.tuple X WHERE X.age > 30",
		"SELECT ROOT.professor X WHERE X.age <= 45",
		"SELECT ROOT.student.?",
	}
	for _, s := range stmts {
		if _, err := Parse(s); err != nil {
			t.Errorf("Parse(%q): %v", s, err)
		}
	}
	views := []string{
		"define view VJ as: SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON",
		"define mview MVJ as: SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON",
		"define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45",
		"define view PROF as: SELECT ROOT.*.professor X",
		"define view STUDENT as: SELECT PROF.?.student X",
		"define mview SEL as: SELECT REL.r.tuple X WHERE X.age > 30",
	}
	for _, s := range views {
		if _, err := ParseView(s); err != nil {
			t.Errorf("ParseView(%q): %v", s, err)
		}
	}
}

func TestParseViewStmt(t *testing.T) {
	v, err := ParseView("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45")
	if err != nil {
		t.Fatal(err)
	}
	if v.Name != "YP" || !v.Materialized {
		t.Fatalf("stmt = %+v", v)
	}
	if v.Query.Where.(*Compare).Op != OpLe {
		t.Fatalf("op = %v", v.Query.Where.(*Compare).Op)
	}
	// The colon is optional.
	v2, err := ParseView("define view V as SELECT ROOT.a X")
	if err != nil {
		t.Fatal(err)
	}
	if v2.Name != "V" || v2.Materialized {
		t.Fatalf("stmt = %+v", v2)
	}
}

func TestParseDefaultBinder(t *testing.T) {
	q := MustParse("SELECT VJ.?.age")
	if q.Selects[0].Binder != "X" {
		t.Fatalf("binder = %q", q.Selects[0].Binder)
	}
}

func TestParseClauses(t *testing.T) {
	q := MustParse("SELECT ROOT.professor X WHERE X.age > 40 WITHIN D1 ANS INT D2")
	if q.Within != "D1" || q.AnsInt != "D2" {
		t.Fatalf("clauses = %q %q", q.Within, q.AnsInt)
	}
}

func TestParseMultiSelect(t *testing.T) {
	q := MustParse("SELECT ROOT.professor X, ROOT.secretary X WHERE X.age > 30")
	if len(q.Selects) != 2 {
		t.Fatalf("selects = %d", len(q.Selects))
	}
	if q.Selects[1].Path.String() != "secretary" {
		t.Fatalf("second select = %+v", q.Selects[1])
	}
}

func TestParseAndOrConditions(t *testing.T) {
	q := MustParse("SELECT ROOT.professor X WHERE X.age > 30 AND X.name = 'John' OR X.salary >= 100000")
	or, ok := q.Where.(*Or)
	if !ok {
		t.Fatalf("where = %T, want *Or", q.Where)
	}
	if len(or.Conds) != 2 {
		t.Fatalf("or arms = %d", len(or.Conds))
	}
	and, ok := or.Conds[0].(*And)
	if !ok {
		t.Fatalf("first arm = %T, want *And", or.Conds[0])
	}
	if len(and.Conds) != 2 {
		t.Fatalf("and arms = %d", len(and.Conds))
	}
}

func TestParseParenthesizedCondition(t *testing.T) {
	q := MustParse("SELECT ROOT.p X WHERE X.a = 1 AND (X.b = 2 OR X.c = 3)")
	and, ok := q.Where.(*And)
	if !ok {
		t.Fatalf("where = %T", q.Where)
	}
	if _, ok := and.Conds[1].(*Or); !ok {
		t.Fatalf("second arm = %T, want *Or", and.Conds[1])
	}
}

func TestParseExistsAndContains(t *testing.T) {
	q := MustParse("SELECT ROOT.p X WHERE EXISTS X.student")
	c := q.Where.(*Compare)
	if c.Op != OpExists || c.Path.String() != "student" {
		t.Fatalf("exists = %+v", c)
	}
	q = MustParse("SELECT ROOT.p X WHERE X.name CONTAINS 'oh'")
	c = q.Where.(*Compare)
	if c.Op != OpContains || !c.Literal.Equal(oem.String_("oh")) {
		t.Fatalf("contains = %+v", c)
	}
}

func TestParseLiterals(t *testing.T) {
	cases := []struct {
		in   string
		want oem.Atom
	}{
		{"SELECT R.a X WHERE X.v = 45", oem.Int(45)},
		{"SELECT R.a X WHERE X.v = -3", oem.Int(-3)},
		{"SELECT R.a X WHERE X.v = 2.5", oem.Float(2.5)},
		{"SELECT R.a X WHERE X.v = true", oem.Bool(true)},
		{"SELECT R.a X WHERE X.v = 'John'", oem.String_("John")},
		{`SELECT R.a X WHERE X.v = "Jane"`, oem.String_("Jane")},
		{"SELECT R.a X WHERE X.v = education", oem.String_("education")},
	}
	for _, c := range cases {
		q := MustParse(c.in)
		lit := q.Where.(*Compare).Literal
		if lit.Kind != c.want.Kind || !lit.Equal(c.want) {
			t.Errorf("%q literal = %v, want %v", c.in, lit, c.want)
		}
	}
}

func TestParseBareBinderCondition(t *testing.T) {
	// A condition on the selected object's own value uses the empty path.
	q := MustParse("SELECT ROOT.?.age X WHERE X >= 45")
	c := q.Where.(*Compare)
	if c.Path.String() != "ε" {
		t.Fatalf("path = %q, want ε", c.Path.String())
	}
}

func TestParseKeywordsCaseInsensitive(t *testing.T) {
	q, err := Parse("select ROOT.professor X where X.age > 40 within D1 ans int D2")
	if err != nil {
		t.Fatal(err)
	}
	if q.Within != "D1" || q.AnsInt != "D2" {
		t.Fatalf("clauses = %+v", q)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROM x",
		"SELECT",
		"SELECT .professor X",
		"SELECT ROOT. professor ! X",
		"SELECT ROOT.professor X WHERE",
		"SELECT ROOT.professor X WHERE X.age >",
		"SELECT ROOT.professor X WHERE X.age ? 40",
		"SELECT ROOT.professor X WITHIN",
		"SELECT ROOT.professor X ANS D2",
		"SELECT ROOT.professor X WHERE Y.age > 40", // unbound binder
		"SELECT ROOT.professor X WHERE X.age > 40 garbage",
		"SELECT ROOT.(professor X",
		"define mview as: SELECT ROOT.a X",
		"define table T as: SELECT ROOT.a X",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			if _, verr := ParseView(s); verr == nil {
				t.Errorf("Parse(%q) succeeded, want error", s)
			}
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, s := range []string{"a ! b", "a @ b", "'unterminated", "a - b"} {
		if _, err := lex(s); err == nil {
			t.Errorf("lex(%q) succeeded, want error", s)
		}
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	inputs := []string{
		"SELECT ROOT.professor X WHERE X.age > 40 WITHIN D1 ANS INT D2",
		"SELECT ROOT.* X WHERE X.name = 'John'",
		"SELECT A.a X, B.b Y",
		"SELECT R.p X WHERE X.a = 1 AND X.b = 2",
		"SELECT R.p X WHERE EXISTS X.q",
	}
	for _, in := range inputs {
		q := MustParse(in)
		again, err := Parse(q.String())
		if err != nil {
			t.Errorf("reparse of %q -> %q failed: %v", in, q.String(), err)
			continue
		}
		if again.String() != q.String() {
			t.Errorf("round trip changed: %q -> %q", q.String(), again.String())
		}
	}
}

func TestViewStmtString(t *testing.T) {
	v := MustParseView("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45")
	s := v.String()
	if !strings.Contains(s, "mview YP") || !strings.Contains(s, "X.age <= 45") {
		t.Fatalf("String = %q", s)
	}
	if _, err := ParseView(s); err != nil {
		t.Fatalf("reparse of %q: %v", s, err)
	}
}

func TestOpNegate(t *testing.T) {
	pairs := map[Op]Op{OpEq: OpNe, OpNe: OpEq, OpLt: OpGe, OpLe: OpGt, OpGt: OpLe, OpGe: OpLt}
	for op, want := range pairs {
		got, ok := op.Negate()
		if !ok || got != want {
			t.Errorf("Negate(%v) = %v,%v, want %v", op, got, ok, want)
		}
	}
	for _, op := range []Op{OpContains, OpExists} {
		if _, ok := op.Negate(); ok {
			t.Errorf("Negate(%v) ok, want not ok", op)
		}
	}
}

func TestOpApply(t *testing.T) {
	cases := []struct {
		op   Op
		v    oem.Atom
		lit  oem.Atom
		want bool
	}{
		{OpEq, oem.Int(45), oem.Int(45), true},
		{OpNe, oem.Int(45), oem.Int(45), false},
		{OpLt, oem.Int(40), oem.Int(45), true},
		{OpLe, oem.Int(45), oem.Int(45), true},
		{OpGt, oem.Int(50), oem.Float(45), true},
		{OpGe, oem.Int(44), oem.Int(45), false},
		{OpEq, oem.String_("John"), oem.String_("John"), true},
		{OpContains, oem.String_("John"), oem.String_("oh"), true},
		{OpContains, oem.String_("John"), oem.String_("xx"), false},
		{OpContains, oem.Int(5), oem.String_("5"), false},
		// Cross-kind: = is false, != is true.
		{OpEq, oem.String_("45"), oem.Int(45), false},
		{OpNe, oem.String_("45"), oem.Int(45), true},
		{OpLt, oem.String_("45"), oem.Int(45), false},
	}
	for _, c := range cases {
		if got := c.op.Apply(c.v, c.lit); got != c.want {
			t.Errorf("%v.Apply(%v,%v) = %v, want %v", c.op, c.v, c.lit, got, c.want)
		}
	}
}
