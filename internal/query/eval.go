package query

import (
	"fmt"

	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/store"
)

// Stats counts the work done by one evaluation; the benchmark harness uses
// it to compare query strategies (e.g. swizzled versus unswizzled views).
type Stats struct {
	// ObjectsVisited counts Out() expansions during path traversals.
	ObjectsVisited int
}

// Evaluator runs queries against a store — either a live *store.Store or a
// pinned *store.Snapshot (any store.Reader): evaluation is read-only, so a
// snapshot gives point-in-time-consistent answers while writers race ahead.
type Evaluator struct {
	Store store.Reader
	// Stats, when non-nil, accumulates evaluation work counters.
	Stats *Stats
	// Resolve, when non-nil, maps each OID encountered while following
	// edges before it is looked up. Materialized views use it to redirect
	// base OIDs in unswizzled delegate values to the delegates themselves
	// ("check if the delegate for P3 is in MVJ", Section 3.2).
	Resolve func(oem.OID) oem.OID
}

// NewEvaluator returns an evaluator over s: a live store or a snapshot.
func NewEvaluator(s store.Reader) *Evaluator { return &Evaluator{Store: s} }

// graph adapts the store to pathexpr.Graph, restricted to a database scope
// when the query carries a WITHIN clause: objects outside the scope are
// completely ignored — they are neither traversed nor returned.
func (ev *Evaluator) graph(scope map[oem.OID]bool) pathexpr.Graph {
	return pathexpr.GraphFunc(func(oid oem.OID) []pathexpr.Neighbor {
		if scope != nil && !scope[oid] {
			return nil
		}
		if ev.Stats != nil {
			ev.Stats.ObjectsVisited++
		}
		// Children + Label avoid the full object clones Get would make —
		// this is the query/maintenance hot path (see docs/MVCC.md on the
		// allocation profile).
		kids, err := ev.Store.Children(oid)
		if err != nil || len(kids) == 0 {
			return nil
		}
		nbs := make([]pathexpr.Neighbor, 0, len(kids))
		for _, c := range kids {
			if ev.Resolve != nil {
				c = ev.Resolve(c)
			}
			if scope != nil && !scope[c] {
				continue
			}
			l, err := ev.Store.Label(c)
			if err != nil {
				continue // dangling OID: not traversable
			}
			nbs = append(nbs, pathexpr.Neighbor{Label: l, To: c})
		}
		return nbs
	})
}

// Eval evaluates the query and returns the answer's member OIDs, sorted.
// The answer is not stored; see EvalToObject for the paper's reified
// <ANS, answer, set, ...> form.
func (ev *Evaluator) Eval(q *Query) ([]oem.OID, error) {
	var scope map[oem.OID]bool
	if q.Within != "" {
		m, err := ev.Store.DatabaseMembers(q.Within)
		if err != nil {
			return nil, fmt.Errorf("query: WITHIN %s: %w", q.Within, err)
		}
		// The database object itself is in scope, so it can serve as the
		// query's entry point (e.g. SELECT MVJ.professor WITHIN MVJ).
		m[q.Within] = true
		scope = m
	}
	g := ev.graph(scope)

	seen := map[oem.OID]bool{}
	var members []oem.OID
	for _, item := range q.Selects {
		if scope != nil && !scope[item.Entry] {
			continue // the entry point itself is ignored outside the scope
		}
		if !ev.Store.Has(item.Entry) {
			return nil, fmt.Errorf("query: entry point %s: %w", item.Entry, store.ErrNotFound)
		}
		candidates := pathexpr.Eval(g, []oem.OID{item.Entry}, item.Path)
		for _, x := range candidates {
			if seen[x] {
				continue
			}
			ok, err := ev.holds(q.Where, item.Binder, x, g)
			if err != nil {
				return nil, err
			}
			if ok {
				seen[x] = true
				members = append(members, x)
			}
		}
	}

	if q.AnsInt != "" {
		keep, err := ev.Store.DatabaseMembers(q.AnsInt)
		if err != nil {
			return nil, fmt.Errorf("query: ANS INT %s: %w", q.AnsInt, err)
		}
		filtered := members[:0]
		for _, m := range members {
			if keep[m] {
				filtered = append(filtered, m)
			}
		}
		members = filtered
	}
	return oem.SortOIDs(members), nil
}

// holds evaluates the condition tree for candidate x bound to binder.
// Conditions on other binders are vacuously true for this candidate: with
// the multi-select extension each item contributes independently, and a
// well-formed query uses one binder per item's conditions.
func (ev *Evaluator) holds(c Cond, binder string, x oem.OID, g pathexpr.Graph) (bool, error) {
	if c == nil {
		return true, nil
	}
	switch v := c.(type) {
	case *Compare:
		if v.Binder != binder {
			return true, nil
		}
		return ev.compareHolds(v, x, g), nil
	case *And:
		for _, sub := range v.Conds {
			ok, err := ev.holds(sub, binder, x, g)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	case *Or:
		for _, sub := range v.Conds {
			ok, err := ev.holds(sub, binder, x, g)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	default:
		return false, fmt.Errorf("query: unknown condition %T", c)
	}
}

// compareHolds implements the paper's cond(): it evaluates X.cond_path and
// returns true if any reached object satisfies the comparison. OpExists is
// satisfied by any reached object; other operators require an atomic value.
func (ev *Evaluator) compareHolds(c *Compare, x oem.OID, g pathexpr.Graph) bool {
	reached := pathexpr.Eval(g, []oem.OID{x}, c.Path)
	for _, oid := range reached {
		if c.Op == OpExists {
			return true
		}
		o, err := ev.Store.Get(oid)
		if err != nil || !o.IsAtomic() {
			continue
		}
		if c.Op.Apply(o.Atom, c.Literal) {
			return true
		}
	}
	return false
}

// EvalToObject evaluates the query and stores the answer as the paper's
// <ANS, answer, set, value(ANS)> object, returning its OID.
func (ev *Evaluator) EvalToObject(q *Query) (oem.OID, error) {
	w, ok := ev.Store.(*store.Store)
	if !ok {
		return oem.NoOID, fmt.Errorf("query: EvalToObject needs a writable store, have %T", ev.Store)
	}
	members, err := ev.Eval(q)
	if err != nil {
		return oem.NoOID, err
	}
	oid := w.GenOID("ANS")
	if err := w.Put(oem.NewSet(oid, "answer", members...)); err != nil {
		return oem.NoOID, err
	}
	return oid, nil
}
