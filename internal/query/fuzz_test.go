package query

import (
	"testing"

	"gsv/internal/pathexpr"
)

// FuzzParse checks that the query parser never panics, and that any input
// it accepts has a String rendering the parser accepts again, unchanged
// (a fixed point). Run with `go test -fuzz=FuzzParse ./internal/query`;
// under plain `go test` the seed corpus doubles as a regression test.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT ROOT.professor X WHERE X.age > 40",
		"SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON",
		"SELECT A.a X, B.(b|c)*.d Y WHERE X.v >= 2.5 AND Y.w != true ANS INT D",
		"SELECT R.p X WHERE EXISTS X.q OR X.r CONTAINS 'z'",
		"select root.? x where x <= -1 within db ans int db2",
		"SELECT",
		"SELECT ROOT..a X",
		"SELECT ROOT.a X WHERE",
		"DEFINE VIEW V AS: SELECT ROOT.a X",
		"\x00\xff",
		"SELECT R.a X WHERE X.b = 'unterminated",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		s1 := q.String()
		q2, err := Parse(s1)
		if err != nil {
			t.Fatalf("accepted %q but rejected its rendering %q: %v", input, s1, err)
		}
		if s2 := q2.String(); s1 != s2 {
			t.Fatalf("String not a fixed point: %q -> %q", s1, s2)
		}
	})
}

// FuzzParsePathExpr checks the path-expression parser the same way, and
// additionally that accepted expressions survive Normalize without
// changing acceptance of a probe path.
func FuzzParsePathExpr(f *testing.F) {
	seeds := []string{
		"", "a", "a.b", "*", "?", "a.*", "(a|b).c", "a*", "(a.b)*", "a.(b|c)*.d",
		"((((a))))", "a|", "(a", "a..b", "*.?.*",
	}
	for _, s := range seeds {
		f.Add(s, "a.b")
	}
	f.Fuzz(func(t *testing.T, input, probe string) {
		e, err := pathexpr.Parse(input)
		if err != nil {
			return
		}
		rendered := e.String()
		if rendered == "∅" || rendered == "ε" {
			return // not input syntax by design
		}
		e2, err := pathexpr.Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rejected its rendering %q: %v", input, rendered, err)
		}
		p, perr := pathexpr.ParsePath(probe)
		if perr != nil {
			return
		}
		if pathexpr.Matches(e, p) != pathexpr.Matches(e2, p) {
			t.Fatalf("rendering changed the language: %q vs %q on %q", input, rendered, probe)
		}
		n := pathexpr.Normalize(e)
		if pathexpr.Matches(e, p) != pathexpr.Matches(n, p) {
			t.Fatalf("Normalize changed acceptance of %q for %q", probe, input)
		}
	})
}
