package query

import (
	"errors"
	"testing"

	"gsv/internal/oem"
	"gsv/internal/store"
	"gsv/internal/workload"
)

func personStore(t testing.TB) *store.Store {
	t.Helper()
	s := store.NewDefault()
	workload.PersonDB(s)
	return s
}

func evalStr(t *testing.T, s *store.Store, q string) []oem.OID {
	t.Helper()
	got, err := NewEvaluator(s).Eval(MustParse(q))
	if err != nil {
		t.Fatalf("Eval(%q): %v", q, err)
	}
	return got
}

func TestEvalSection2Example(t *testing.T) {
	// "SELECT ROOT.professor X WHERE X.age > 40 will return
	//  <ANS, answer, set, {P1}>".
	s := personStore(t)
	got := evalStr(t, s, "SELECT ROOT.professor X WHERE X.age > 40")
	if !oem.SameMembers(got, []oem.OID{"P1"}) {
		t.Fatalf("got %v, want [P1]", got)
	}
}

func TestEvalExample3ViewQuery(t *testing.T) {
	// View VJ: persons named John within PERSON -> {P1, P3}.
	s := personStore(t)
	got := evalStr(t, s, "SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON")
	if !oem.SameMembers(got, []oem.OID{"P1", "P3"}) {
		t.Fatalf("got %v, want [P1 P3]", got)
	}
}

func TestEvalWithinExcludesRemoteObjects(t *testing.T) {
	// Section 2: all objects in D1 except A1. The query with WITHIN D1 has
	// an empty result because the condition path cannot reach A1.
	s := personStore(t)
	var d1 []oem.OID
	for _, oid := range workload.PersonOIDs {
		if oid != "A1" {
			d1 = append(d1, oid)
		}
	}
	if err := s.NewDatabase("D1", "database", d1...); err != nil {
		t.Fatal(err)
	}
	got := evalStr(t, s, "SELECT ROOT.professor X WHERE X.age > 40 WITHIN D1")
	if len(got) != 0 {
		t.Fatalf("got %v, want empty", got)
	}
}

func TestEvalAnsIntFollowsRemotePointers(t *testing.T) {
	// Section 2: with ANS INT D1 (A1 outside D1), the answer is {P1}: the
	// WHERE evaluation may follow remote pointers, only the answer is
	// intersected.
	s := personStore(t)
	var d1 []oem.OID
	for _, oid := range workload.PersonOIDs {
		if oid != "A1" {
			d1 = append(d1, oid)
		}
	}
	if err := s.NewDatabase("D1", "database", d1...); err != nil {
		t.Fatal(err)
	}
	got := evalStr(t, s, "SELECT ROOT.professor X WHERE X.age > 40 ANS INT D1")
	if !oem.SameMembers(got, []oem.OID{"P1"}) {
		t.Fatalf("got %v, want [P1]", got)
	}

	// "However, if all nodes except P1 are in D1, the same query will
	// return an empty set."
	var d2 []oem.OID
	for _, oid := range workload.PersonOIDs {
		if oid != "P1" {
			d2 = append(d2, oid)
		}
	}
	if err := s.NewDatabase("D2", "database", d2...); err != nil {
		t.Fatal(err)
	}
	got = evalStr(t, s, "SELECT ROOT.professor X WHERE X.age > 40 ANS INT D2")
	if len(got) != 0 {
		t.Fatalf("got %v, want empty", got)
	}
}

func TestEvalViewsOnViews(t *testing.T) {
	// Expression 3.4: PROF selects professors at any depth; STUDENT selects
	// their direct students.
	s := personStore(t)
	prof := evalStr(t, s, "SELECT ROOT.*.professor X")
	if !oem.SameMembers(prof, []oem.OID{"P1", "P2"}) {
		t.Fatalf("PROF = %v, want [P1 P2]", prof)
	}
	if err := s.NewDatabase("PROF", "view", prof...); err != nil {
		t.Fatal(err)
	}
	student := evalStr(t, s, "SELECT PROF.?.student X")
	if !oem.SameMembers(student, []oem.OID{"P3"}) {
		t.Fatalf("STUDENT = %v, want [P3]", student)
	}
}

func TestEvalFollowOnQuery(t *testing.T) {
	// "SELECT VJ.?.age" gives the ages of persons named John.
	s := personStore(t)
	vj := evalStr(t, s, "SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON")
	if err := s.NewDatabase("VJ", "view", vj...); err != nil {
		t.Fatal(err)
	}
	got := evalStr(t, s, "SELECT VJ.?.age")
	if !oem.SameMembers(got, []oem.OID{"A1", "A3"}) {
		t.Fatalf("got %v, want [A1 A3]", got)
	}
}

func TestEvalMultiSelectUnion(t *testing.T) {
	s := personStore(t)
	got := evalStr(t, s, "SELECT ROOT.professor X, ROOT.secretary X WHERE X.age >= 40")
	if !oem.SameMembers(got, []oem.OID{"P1", "P4"}) {
		t.Fatalf("got %v, want [P1 P4]", got)
	}
}

func TestEvalAndOr(t *testing.T) {
	s := personStore(t)
	got := evalStr(t, s, "SELECT ROOT.? X WHERE X.name = 'John' AND X.age > 30")
	if !oem.SameMembers(got, []oem.OID{"P1"}) {
		t.Fatalf("AND: got %v, want [P1]", got)
	}
	got = evalStr(t, s, "SELECT ROOT.? X WHERE X.name = 'Sally' OR X.name = 'Tom'")
	if !oem.SameMembers(got, []oem.OID{"P2", "P4"}) {
		t.Fatalf("OR: got %v, want [P2 P4]", got)
	}
}

func TestEvalExistsContains(t *testing.T) {
	s := personStore(t)
	got := evalStr(t, s, "SELECT ROOT.? X WHERE EXISTS X.student")
	if !oem.SameMembers(got, []oem.OID{"P1"}) {
		t.Fatalf("EXISTS: got %v, want [P1]", got)
	}
	got = evalStr(t, s, "SELECT ROOT.? X WHERE X.name CONTAINS 'o'")
	// John (P1), Tom (P4), and P3's name John.
	if !oem.SameMembers(got, []oem.OID{"P1", "P3", "P4"}) {
		t.Fatalf("CONTAINS: got %v, want [P1 P3 P4]", got)
	}
}

func TestEvalBareBinderCondition(t *testing.T) {
	// Selecting atomic objects and conditioning on their own value.
	s := personStore(t)
	got := evalStr(t, s, "SELECT ROOT.?.age X WHERE X >= 40")
	if !oem.SameMembers(got, []oem.OID{"A1", "A4"}) {
		t.Fatalf("got %v, want [A1 A4]", got)
	}
}

func TestEvalNoWhere(t *testing.T) {
	s := personStore(t)
	got := evalStr(t, s, "SELECT ROOT.professor X")
	if !oem.SameMembers(got, []oem.OID{"P1", "P2"}) {
		t.Fatalf("got %v, want [P1 P2]", got)
	}
}

func TestEvalEntryErrors(t *testing.T) {
	s := personStore(t)
	_, err := NewEvaluator(s).Eval(MustParse("SELECT NOSUCH.professor X"))
	if !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	_, err = NewEvaluator(s).Eval(MustParse("SELECT ROOT.professor X WITHIN NOSUCH"))
	if err == nil {
		t.Fatal("missing WITHIN database did not error")
	}
	_, err = NewEvaluator(s).Eval(MustParse("SELECT ROOT.professor X ANS INT NOSUCH"))
	if err == nil {
		t.Fatal("missing ANS INT database did not error")
	}
}

func TestEvalEntryOutsideWithinIsIgnored(t *testing.T) {
	s := personStore(t)
	if err := s.NewDatabase("EMPTY", "database"); err != nil {
		t.Fatal(err)
	}
	got := evalStr(t, s, "SELECT ROOT.professor X WITHIN EMPTY")
	if len(got) != 0 {
		t.Fatalf("got %v, want empty", got)
	}
}

func TestEvalDanglingOIDsIgnored(t *testing.T) {
	s := store.NewDefault()
	s.MustPut(oem.NewSet("R", "root", "gone", "A"))
	s.MustPut(oem.NewAtom("A", "age", oem.Int(50)))
	got := evalStr(t, s, "SELECT R.? X")
	if !oem.SameMembers(got, []oem.OID{"A"}) {
		t.Fatalf("got %v, want [A]", got)
	}
}

func TestEvalToObject(t *testing.T) {
	s := personStore(t)
	oid, err := NewEvaluator(s).EvalToObject(MustParse("SELECT ROOT.professor X WHERE X.age > 40"))
	if err != nil {
		t.Fatal(err)
	}
	o, err := s.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	if o.Label != "answer" || !oem.SameMembers(o.Set, []oem.OID{"P1"}) {
		t.Fatalf("answer object = %v", o)
	}
}

func TestEvalStats(t *testing.T) {
	s := personStore(t)
	ev := NewEvaluator(s)
	ev.Stats = &Stats{}
	if _, err := ev.Eval(MustParse("SELECT ROOT.* X WHERE X.name = 'John'")); err != nil {
		t.Fatal(err)
	}
	if ev.Stats.ObjectsVisited == 0 {
		t.Fatal("stats did not count visits")
	}
}

func TestEvalCyclicData(t *testing.T) {
	// GSDBs are graphs; queries must terminate on cycles.
	s := store.NewDefault()
	s.MustPut(oem.NewSet("A", "node", "B"))
	s.MustPut(oem.NewSet("B", "node", "A", "V"))
	s.MustPut(oem.NewAtom("V", "age", oem.Int(99)))
	got := evalStr(t, s, "SELECT A.* X WHERE X.*.age > 0")
	if !oem.SameMembers(got, []oem.OID{"A", "B"}) {
		t.Fatalf("got %v, want [A B]", got)
	}
}
