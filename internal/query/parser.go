package query

import (
	"fmt"
	"strconv"
	"strings"

	"gsv/internal/oem"
	"gsv/internal/pathexpr"
)

// Parse parses a SELECT query.
func Parse(input string) (*Query, error) {
	p, err := newParser(input)
	if err != nil {
		return nil, err
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := p.expectEOF(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse for constant queries in tests and examples.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

// ParseView parses a view definition statement:
// define view NAME as: <query> or define mview NAME as: <query>.
func ParseView(input string) (*ViewStmt, error) {
	p, err := newParser(input)
	if err != nil {
		return nil, err
	}
	v, err := p.parseViewStmt()
	if err != nil {
		return nil, err
	}
	if err := p.expectEOF(); err != nil {
		return nil, err
	}
	return v, nil
}

// MustParseView is ParseView for constant statements.
func MustParseView(input string) *ViewStmt {
	v, err := ParseView(input)
	if err != nil {
		panic(err)
	}
	return v
}

type parser struct {
	toks []token
	pos  int
}

func newParser(input string) (*parser, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	return &parser{toks: toks}, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expect(kind tokKind, what string) (token, error) {
	t := p.cur()
	if t.kind != kind {
		return t, fmt.Errorf("query: expected %s at %d, got %s", what, t.pos, t)
	}
	p.pos++
	return t, nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.cur()
	if !isKeyword(t, kw) {
		return fmt.Errorf("query: expected %s at %d, got %s", strings.ToUpper(kw), t.pos, t)
	}
	p.pos++
	return nil
}

func (p *parser) expectEOF() error {
	if t := p.cur(); t.kind != tokEOF {
		return fmt.Errorf("query: trailing input at %d: %s", t.pos, t)
	}
	return nil
}

func (p *parser) parseViewStmt() (*ViewStmt, error) {
	if err := p.expectKeyword("define"); err != nil {
		return nil, err
	}
	var materialized bool
	switch {
	case isKeyword(p.cur(), "view"):
		p.pos++
	case isKeyword(p.cur(), "mview"):
		materialized = true
		p.pos++
	default:
		return nil, fmt.Errorf("query: expected VIEW or MVIEW at %d, got %s", p.cur().pos, p.cur())
	}
	name, err := p.expect(tokIdent, "view name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("as"); err != nil {
		return nil, err
	}
	if p.cur().kind == tokColon {
		p.pos++
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return &ViewStmt{Name: name.text, Materialized: materialized, Query: q}, nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	q := &Query{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Selects = append(q.Selects, item)
		if p.cur().kind != tokComma {
			break
		}
		p.pos++
	}
	if isKeyword(p.cur(), "where") {
		p.pos++
		cond, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = cond
	}
	if isKeyword(p.cur(), "within") {
		p.pos++
		t, err := p.expect(tokIdent, "database name after WITHIN")
		if err != nil {
			return nil, err
		}
		q.Within = oem.OID(t.text)
	}
	if isKeyword(p.cur(), "ans") {
		p.pos++
		if err := p.expectKeyword("int"); err != nil {
			return nil, err
		}
		t, err := p.expect(tokIdent, "database name after ANS INT")
		if err != nil {
			return nil, err
		}
		q.AnsInt = oem.OID(t.text)
	}
	if err := p.validate(q); err != nil {
		return nil, err
	}
	return q, nil
}

// validate enforces that conditions refer only to binders introduced by the
// SELECT clause.
func (p *parser) validate(q *Query) error {
	bound := make(map[string]bool, len(q.Selects))
	for _, s := range q.Selects {
		bound[s.Binder] = true
	}
	if q.Where == nil {
		return nil
	}
	used := map[string]bool{}
	q.Where.Binders(used)
	for b := range used {
		if !bound[b] {
			return fmt.Errorf("query: condition refers to unbound binder %q", b)
		}
	}
	return nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	entry, err := p.expect(tokIdent, "entry point")
	if err != nil {
		return SelectItem{}, err
	}
	expr := pathexpr.Eps()
	if p.cur().kind == tokDot {
		p.pos++
		expr, err = p.parsePathSeq()
		if err != nil {
			return SelectItem{}, err
		}
	}
	binder := "X"
	if t := p.cur(); t.kind == tokIdent &&
		!isKeyword(t, "where") && !isKeyword(t, "within") && !isKeyword(t, "ans") {
		binder = t.text
		p.pos++
	}
	return SelectItem{Entry: oem.OID(entry.text), Path: expr, Binder: binder}, nil
}

// parsePathSeq parses a dot-separated path expression from the token
// stream: elem { "." elem } with elem := label["*"] | "?"["*"] | "*" |
// "(" alt ")"["*"].
func (p *parser) parsePathSeq() (pathexpr.Expr, error) {
	var elems []pathexpr.Expr
	for {
		e, err := p.parsePathElem()
		if err != nil {
			return nil, err
		}
		elems = append(elems, e)
		if p.cur().kind != tokDot {
			break
		}
		p.pos++
	}
	return pathexpr.Seq(elems...), nil
}

func (p *parser) parsePathElem() (pathexpr.Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokStar:
		p.pos++
		return pathexpr.AnyPath(), nil
	case tokQMark:
		p.pos++
		if p.cur().kind == tokStar {
			p.pos++
			return pathexpr.AnyPath(), nil
		}
		return pathexpr.AnyLabel(), nil
	case tokIdent, tokNumber:
		p.pos++
		if t.text == "ε" {
			// The empty path's print form; accept it so rendered
			// queries round-trip.
			return pathexpr.Eps(), nil
		}
		e := pathexpr.Label(t.text)
		if p.cur().kind == tokStar {
			p.pos++
			return pathexpr.Star(e), nil
		}
		return e, nil
	case tokLParen:
		p.pos++
		var branches []pathexpr.Expr
		for {
			b, err := p.parsePathSeq()
			if err != nil {
				return nil, err
			}
			branches = append(branches, b)
			if p.cur().kind != tokPipe {
				break
			}
			p.pos++
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		e := pathexpr.Alt(branches...)
		if p.cur().kind == tokStar {
			p.pos++
			return pathexpr.Star(e), nil
		}
		return e, nil
	default:
		return nil, fmt.Errorf("query: expected path element at %d, got %s", t.pos, t)
	}
}

func (p *parser) parseOr() (Cond, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	conds := []Cond{left}
	for isKeyword(p.cur(), "or") {
		p.pos++
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		conds = append(conds, right)
	}
	if len(conds) == 1 {
		return conds[0], nil
	}
	return &Or{Conds: conds}, nil
}

func (p *parser) parseAnd() (Cond, error) {
	left, err := p.parseCondPrimary()
	if err != nil {
		return nil, err
	}
	conds := []Cond{left}
	for isKeyword(p.cur(), "and") {
		p.pos++
		right, err := p.parseCondPrimary()
		if err != nil {
			return nil, err
		}
		conds = append(conds, right)
	}
	if len(conds) == 1 {
		return conds[0], nil
	}
	return &And{Conds: conds}, nil
}

func (p *parser) parseCondPrimary() (Cond, error) {
	t := p.cur()
	switch {
	case t.kind == tokLParen:
		p.pos++
		c, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return c, nil
	case isKeyword(t, "exists"):
		p.pos++
		binder, path, err := p.parseBinderPath()
		if err != nil {
			return nil, err
		}
		return &Compare{Binder: binder, Path: path, Op: OpExists}, nil
	default:
		binder, path, err := p.parseBinderPath()
		if err != nil {
			return nil, err
		}
		op, err := p.parseOp()
		if err != nil {
			return nil, err
		}
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return &Compare{Binder: binder, Path: path, Op: op, Literal: lit}, nil
	}
}

// parseBinderPath parses X.path_expr; a bare binder denotes the empty path
// (a condition on the selected object's own value).
func (p *parser) parseBinderPath() (string, pathexpr.Expr, error) {
	b, err := p.expect(tokIdent, "binder")
	if err != nil {
		return "", nil, err
	}
	if p.cur().kind != tokDot {
		return b.text, pathexpr.Eps(), nil
	}
	p.pos++
	e, err := p.parsePathSeq()
	if err != nil {
		return "", nil, err
	}
	return b.text, e, nil
}

func (p *parser) parseOp() (Op, error) {
	t := p.cur()
	if isKeyword(t, "contains") {
		p.pos++
		return OpContains, nil
	}
	if t.kind != tokOp {
		return 0, fmt.Errorf("query: expected comparison operator at %d, got %s", t.pos, t)
	}
	p.pos++
	switch t.text {
	case "=":
		return OpEq, nil
	case "!=":
		return OpNe, nil
	case "<":
		return OpLt, nil
	case "<=":
		return OpLe, nil
	case ">":
		return OpGt, nil
	case ">=":
		return OpGe, nil
	default:
		return 0, fmt.Errorf("query: unknown operator %q at %d", t.text, t.pos)
	}
}

func (p *parser) parseLiteral() (oem.Atom, error) {
	t := p.next()
	switch t.kind {
	case tokString:
		return oem.String_(t.text), nil
	case tokNumber:
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return oem.Atom{}, fmt.Errorf("query: bad number %q at %d", t.text, t.pos)
			}
			return oem.Float(f), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return oem.Atom{}, fmt.Errorf("query: bad number %q at %d", t.text, t.pos)
		}
		return oem.Int(i), nil
	case tokIdent:
		if strings.EqualFold(t.text, "true") {
			return oem.Bool(true), nil
		}
		if strings.EqualFold(t.text, "false") {
			return oem.Bool(false), nil
		}
		// A bare word literal is a string atom, matching the paper's
		// unquoted example values.
		return oem.String_(t.text), nil
	default:
		return oem.Atom{}, fmt.Errorf("query: expected literal at %d, got %s", t.pos, t)
	}
}
