package query

import (
	"fmt"
	"math/rand"
	"testing"

	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/store"
	"gsv/internal/workload"
)

// bruteEval is an oracle: enumerate all label paths from the entry up to
// maxLen, keep objects whose path matches the select expression, then test
// the condition by enumerating condition paths the same way.
func bruteEval(s *store.Store, q *Query, maxLen int) []oem.OID {
	result := map[oem.OID]bool{}
	for _, item := range q.Selects {
		for _, x := range bruteReach(s, item.Entry, item.Path, maxLen) {
			if bruteCond(s, q.Where, item.Binder, x, maxLen) {
				result[x] = true
			}
		}
	}
	out := make([]oem.OID, 0, len(result))
	for oid := range result {
		out = append(out, oid)
	}
	return oem.SortOIDs(out)
}

func bruteReach(s *store.Store, start oem.OID, e pathexpr.Expr, maxLen int) []oem.OID {
	found := map[oem.OID]bool{}
	var walk func(oid oem.OID, p pathexpr.Path)
	walk = func(oid oem.OID, p pathexpr.Path) {
		if pathexpr.Matches(e, p) {
			found[oid] = true
		}
		if len(p) == maxLen {
			return
		}
		kids, err := s.Children(oid)
		if err != nil {
			return
		}
		for _, c := range kids {
			lbl, err := s.Label(c)
			if err != nil {
				continue
			}
			walk(c, p.Concat(pathexpr.Path{lbl}))
		}
	}
	if s.Has(start) {
		walk(start, pathexpr.Path{})
	}
	out := make([]oem.OID, 0, len(found))
	for oid := range found {
		out = append(out, oid)
	}
	return oem.SortOIDs(out)
}

func bruteCond(s *store.Store, c Cond, binder string, x oem.OID, maxLen int) bool {
	switch v := c.(type) {
	case nil:
		return true
	case *Compare:
		if v.Binder != binder {
			return true
		}
		for _, oid := range bruteReach(s, x, v.Path, maxLen) {
			if v.Op == OpExists {
				return true
			}
			o, err := s.Get(oid)
			if err != nil || !o.IsAtomic() {
				continue
			}
			if v.Op.Apply(o.Atom, v.Literal) {
				return true
			}
		}
		return false
	case *And:
		for _, sub := range v.Conds {
			if !bruteCond(s, sub, binder, x, maxLen) {
				return false
			}
		}
		return true
	case *Or:
		for _, sub := range v.Conds {
			if bruteCond(s, sub, binder, x, maxLen) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// TestPropertyEvaluatorMatchesBruteForce runs assorted query shapes over
// random trees and compares the evaluator against the path-enumeration
// oracle.
func TestPropertyEvaluatorMatchesBruteForce(t *testing.T) {
	queries := []string{
		"SELECT n0.* X WHERE X.age > 50",
		"SELECT n0.? X WHERE EXISTS X.?.name",
		"SELECT n0.?.? X WHERE X.name CONTAINS 'name1'",
		"SELECT n0.* X WHERE X.age > 20 AND X.age < 80",
		"SELECT n0.*.age X WHERE X >= 50 OR X < 10",
		"SELECT n0.? X, n0.?.? X WHERE X.score >= 50",
		"SELECT n0.(item|part).* X WHERE X.age != 30",
	}
	for seed := int64(0); seed < 4; seed++ {
		s := store.NewDefault()
		workload.RandomTree(s, workload.TreeConfig{Depth: 3, Fanout: 3, Seed: seed})
		ev := NewEvaluator(s)
		for _, qs := range queries {
			q := MustParse(qs)
			got, err := ev.Eval(q)
			if err != nil {
				t.Fatalf("seed %d %q: %v", seed, qs, err)
			}
			want := bruteEval(s, q, 5)
			if !oem.SameMembers(got, want) {
				t.Fatalf("seed %d %q:\n got %v\nwant %v", seed, qs, got, want)
			}
		}
	}
}

// TestPropertyParseStringRoundTrip generates random queries from grammar
// pieces and checks Parse(q.String()) is a fixed point.
func TestPropertyParseStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	entries := []string{"ROOT", "DB1", "V"}
	paths := []string{"a", "a.b", "*", "?", "a.*", "(a|b).c", "a.b*.c", "?.name"}
	ops := []string{"=", "!=", "<", "<=", ">", ">=", "CONTAINS"}
	lits := []string{"5", "2.5", "'x'", "hello", "true"}
	randCond := func() string {
		switch rng.Intn(3) {
		case 0:
			return fmt.Sprintf("X.%s %s %s", paths[rng.Intn(len(paths))], ops[rng.Intn(len(ops))], lits[rng.Intn(len(lits))])
		case 1:
			return fmt.Sprintf("EXISTS X.%s", paths[rng.Intn(len(paths))])
		default:
			return fmt.Sprintf("X.%s %s %s AND X.%s %s %s",
				paths[rng.Intn(len(paths))], ops[rng.Intn(len(ops))], lits[rng.Intn(len(lits))],
				paths[rng.Intn(len(paths))], ops[rng.Intn(len(ops))], lits[rng.Intn(len(lits))])
		}
	}
	for i := 0; i < 200; i++ {
		qs := fmt.Sprintf("SELECT %s.%s X", entries[rng.Intn(len(entries))], paths[rng.Intn(len(paths))])
		if rng.Intn(2) == 0 {
			qs += " WHERE " + randCond()
		}
		if rng.Intn(3) == 0 {
			qs += " WITHIN DBX"
		}
		if rng.Intn(3) == 0 {
			qs += " ANS INT DBY"
		}
		q, err := Parse(qs)
		if err != nil {
			t.Fatalf("generated query failed to parse: %q: %v", qs, err)
		}
		s1 := q.String()
		q2, err := Parse(s1)
		if err != nil {
			t.Fatalf("round trip parse failed: %q -> %q: %v", qs, s1, err)
		}
		if s2 := q2.String(); s1 != s2 {
			t.Fatalf("String not a fixed point: %q -> %q", s1, s2)
		}
	}
}
