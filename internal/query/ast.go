// Package query implements the paper's query language for graph structured
// databases (Section 2, expression 2.1):
//
//	SELECT OBJ.sel_path_exp X
//	WHERE cond(X.cond_path_exp)
//	[WITHIN DB1]
//	[ANS INT DB2]
//
// plus the view-definition statements of Section 3
// (define view V as: ... / define mview MV as: ...) and the Section 6
// extensions the paper calls straightforward: multiple selection paths
// (comma-separated SELECT items) and multiple conditions combined with AND
// and OR. The package provides a lexer, a recursive-descent parser, and an
// evaluator over a store.
package query

import (
	"fmt"
	"strings"

	"gsv/internal/oem"
	"gsv/internal/pathexpr"
)

// Query is a parsed query.
type Query struct {
	// Selects lists the selection items. The paper's core language has
	// exactly one; multiple items are the Section 6 extension and denote
	// the union of their candidate sets.
	Selects []SelectItem
	// Where is the condition, or nil when absent.
	Where Cond
	// Within names the database that limits the search (WITHIN DB1), or ""
	// when absent: OIDs outside the database are completely ignored.
	Within oem.OID
	// AnsInt names the database the answer is intersected with
	// (ANS INT DB2), or "" when absent.
	AnsInt oem.OID
}

// SelectItem is one OBJ.path_expr X selection.
type SelectItem struct {
	// Entry is the entry-point OID (an object or database name).
	Entry oem.OID
	// Path is the selection path expression.
	Path pathexpr.Expr
	// Binder names the selected object in conditions; it defaults to "X".
	Binder string
}

// Clone returns a copy of the query that shares no mutable state with the
// original (condition trees and path expressions are immutable and are
// shared).
func (q *Query) Clone() *Query {
	out := *q
	out.Selects = append([]SelectItem(nil), q.Selects...)
	return &out
}

// String renders the query in concrete syntax.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, s := range q.Selects {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s.%s %s", s.Entry, s.Path, s.Binder)
	}
	if q.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(q.Where.String())
	}
	if q.Within != "" {
		fmt.Fprintf(&b, " WITHIN %s", q.Within)
	}
	if q.AnsInt != "" {
		fmt.Fprintf(&b, " ANS INT %s", q.AnsInt)
	}
	return b.String()
}

// Op is a comparison operator in a condition.
type Op int

// Comparison operators. OpContains tests substring containment on string
// atoms; OpExists tests that the condition path reaches at least one object.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpContains
	OpExists
)

// String returns the operator's concrete syntax.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpContains:
		return "CONTAINS"
	case OpExists:
		return "EXISTS"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Negate returns the operator accepting exactly the complementary
// comparable values (e.g. < becomes >=). Contains and Exists have no
// comparison complement and return ok=false.
func (o Op) Negate() (Op, bool) {
	switch o {
	case OpEq:
		return OpNe, true
	case OpNe:
		return OpEq, true
	case OpLt:
		return OpGe, true
	case OpLe:
		return OpGt, true
	case OpGt:
		return OpLe, true
	case OpGe:
		return OpLt, true
	default:
		return o, false
	}
}

// Apply evaluates the operator on an atomic value against the literal.
// Incomparable pairs are unsatisfied, not errors: GSDB data is schemaless.
func (o Op) Apply(v, lit oem.Atom) bool {
	switch o {
	case OpContains:
		return v.Kind == oem.AtomString && lit.Kind == oem.AtomString && strings.Contains(v.S, lit.S)
	case OpExists:
		return true
	}
	c, ok := v.Compare(lit)
	if !ok {
		// "=" and "!=" across kinds: unequal kinds are simply not equal.
		if o == OpNe {
			return true
		}
		return false
	}
	switch o {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	default:
		return false
	}
}

// Cond is a boolean condition tree over path comparisons.
type Cond interface {
	String() string
	// Binders appends the binder names the condition refers to.
	Binders(set map[string]bool)
}

// Compare is the leaf condition cond(X.cond_path): it holds when any object
// in X.cond_path has an atomic value v with Op.Apply(v, Literal) true, or —
// for OpExists — when X.cond_path is non-empty.
type Compare struct {
	Binder  string
	Path    pathexpr.Expr
	Op      Op
	Literal oem.Atom
}

// String renders the comparison. The result re-parses to the same
// condition: a bare-binder comparison (empty condition path) renders
// without the path, since ".ε" would read back as a literal label.
func (c *Compare) String() string {
	target := c.Binder
	if c.Path != nil && c.Path != pathexpr.Eps() {
		target = fmt.Sprintf("%s.%s", c.Binder, c.Path)
	}
	if c.Op == OpExists {
		return fmt.Sprintf("EXISTS %s", target)
	}
	return fmt.Sprintf("%s %s %s", target, c.Op, c.Literal)
}

// Binders implements Cond.
func (c *Compare) Binders(set map[string]bool) { set[c.Binder] = true }

// And is a conjunction of conditions.
type And struct{ Conds []Cond }

// String renders the conjunction.
func (a *And) String() string {
	parts := make([]string, len(a.Conds))
	for i, c := range a.Conds {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, " AND ") + ")"
}

// Binders implements Cond.
func (a *And) Binders(set map[string]bool) {
	for _, c := range a.Conds {
		c.Binders(set)
	}
}

// Or is a disjunction of conditions.
type Or struct{ Conds []Cond }

// String renders the disjunction.
func (o *Or) String() string {
	parts := make([]string, len(o.Conds))
	for i, c := range o.Conds {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, " OR ") + ")"
}

// Binders implements Cond.
func (o *Or) Binders(set map[string]bool) {
	for _, c := range o.Conds {
		c.Binders(set)
	}
}

// ViewStmt is a parsed view definition: define view V as: <query> or
// define mview MV as: <query>.
type ViewStmt struct {
	Name         string
	Materialized bool
	Query        *Query
}

// String renders the statement.
func (v *ViewStmt) String() string {
	kw := "view"
	if v.Materialized {
		kw = "mview"
	}
	return fmt.Sprintf("define %s %s as: %s", kw, v.Name, v.Query)
}
