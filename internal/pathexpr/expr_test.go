package pathexpr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseExpr(t *testing.T) {
	cases := []struct {
		in, out string
	}{
		{"", "ε"},
		{"professor", "professor"},
		{"professor.age", "professor.age"},
		{"?", "?"},
		{"*", "*"},
		{"?*", "*"},
		{"professor.*", "professor.*"},
		{"professor.?", "professor.?"},
		{"(a|b)", "(a|b)"},
		{"(a|b).c", "(a|b).c"},
		{"(a.b)*", "(a.b)*"},
		{"a*", "a*"},
		{"a.(b|c)*.d", "a.(b|c)*.d"},
	}
	for _, c := range cases {
		e, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q) error: %v", c.in, err)
			continue
		}
		if got := e.String(); got != c.out {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.out)
		}
	}
}

func TestParseExprErrors(t *testing.T) {
	for _, in := range []string{"(a", "a|", "a..b", ".a", "a.(b))", "|a", "()"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse("(a")
}

func TestMatches(t *testing.T) {
	cases := []struct {
		expr string
		path string
		want bool
	}{
		{"professor", "professor", true},
		{"professor", "student", false},
		{"professor.age", "professor.age", true},
		{"professor.age", "professor", false},
		{"?", "anything", true},
		{"?", "", false},
		{"*", "", true},
		{"*", "a.b.c", true},
		{"professor.*", "professor", true},
		{"professor.*", "professor.student.age", true},
		{"professor.*", "student", false},
		{"professor.?", "professor.age", true},
		{"professor.?", "professor.student.age", false},
		{"(a|b).c", "a.c", true},
		{"(a|b).c", "b.c", true},
		{"(a|b).c", "c.c", false},
		{"(a.b)*", "", true},
		{"(a.b)*", "a.b.a.b", true},
		{"(a.b)*", "a.b.a", false},
		{"a*", "a.a.a", true},
		{"a*", "a.b", false},
		{"a.(b|c)*.d", "a.d", true},
		{"a.(b|c)*.d", "a.b.c.b.d", true},
		{"a.(b|c)*.d", "a.b.c.e.d", false},
	}
	for _, c := range cases {
		e := MustParse(c.expr)
		var p Path
		if c.path != "" {
			p = MustParsePath(c.path)
		}
		if got := Matches(e, p); got != c.want {
			t.Errorf("Matches(%q, %q) = %v, want %v", c.expr, c.path, got, c.want)
		}
	}
}

func TestDeriveResidual(t *testing.T) {
	// Consuming "professor" from professor.age leaves age.
	e := MustParse("professor.age")
	d := Derive(e, MustParsePath("professor"))
	if d.String() != "age" {
		t.Errorf("residual = %q, want age", d.String())
	}
	// Consuming a non-matching label yields the empty language.
	if !IsEmpty(Derive(e, MustParsePath("student"))) {
		t.Error("residual of mismatched label not empty")
	}
	// Consuming from * leaves *.
	if got := Derive(MustParse("*"), MustParsePath("a.b")).String(); got != "*" {
		t.Errorf("residual of * = %q", got)
	}
	// ε is the residual of a fully consumed path.
	if d := Derive(e, MustParsePath("professor.age")); !Nullable(d) {
		t.Error("fully consumed expression not nullable")
	}
}

func TestIsConst(t *testing.T) {
	p, ok := IsConst(MustParse("professor.age"))
	if !ok || !p.Equal(MustParsePath("professor.age")) {
		t.Errorf("IsConst(professor.age) = %v,%v", p, ok)
	}
	p, ok = IsConst(MustParse(""))
	if !ok || len(p) != 0 {
		t.Errorf("IsConst(ε) = %v,%v", p, ok)
	}
	for _, s := range []string{"*", "?", "a.*", "(a|b)", "a*", "a.(b|c)"} {
		if _, ok := IsConst(MustParse(s)); ok {
			t.Errorf("IsConst(%q) = true, want false", s)
		}
	}
}

func TestConstRoundTrip(t *testing.T) {
	p := MustParsePath("a.b.c")
	got, ok := IsConst(Const(p))
	if !ok || !got.Equal(p) {
		t.Fatalf("IsConst(Const(%v)) = %v,%v", p, got, ok)
	}
}

func TestCombinatorSimplifications(t *testing.T) {
	if !IsEmpty(Seq(Label("a"), Empty())) {
		t.Error("a.∅ not empty")
	}
	if got := Seq(Eps(), Label("a")).String(); got != "a" {
		t.Errorf("ε.a = %q", got)
	}
	if got := Alt(Empty(), Label("a")).String(); got != "a" {
		t.Errorf("∅|a = %q", got)
	}
	if got := Alt(Label("a"), Label("a")).String(); got != "a" {
		t.Errorf("a|a = %q", got)
	}
	if got := Star(Eps()).String(); got != "ε" {
		t.Errorf("ε* = %q", got)
	}
	if got := Star(Star(Label("a"))).String(); got != "a*" {
		t.Errorf("(a*)* = %q", got)
	}
	if got := Star(Empty()).String(); got != "ε" {
		t.Errorf("∅* = %q", got)
	}
}

func TestNormalizeCanonicalizesAlt(t *testing.T) {
	a := Normalize(Alt(Label("b"), Label("a"), Label("b")))
	b := Normalize(Alt(Label("a"), Label("b")))
	if a.String() != b.String() {
		t.Errorf("normalized alts differ: %q vs %q", a.String(), b.String())
	}
	// Nested alternations in any association normalize identically.
	c := Normalize(altExpr{altExpr{Label("c"), Label("a")}, Label("b")})
	d := Normalize(altExpr{Label("a"), altExpr{Label("b"), Label("c")}})
	if c.String() != d.String() {
		t.Errorf("flattened alts differ: %q vs %q", c.String(), d.String())
	}
}

// randPath builds a random path over a tiny alphabet, to exercise Matches
// against a brute-force instance check.
func randPath(rng *rand.Rand, n int) Path {
	labels := []string{"a", "b", "c"}
	p := make(Path, n)
	for i := range p {
		p[i] = labels[rng.Intn(len(labels))]
	}
	return p
}

// TestPropertyDeriveSoundness checks that for random paths p and q,
// Matches(e, p.q) == Matches(Derive(e,p), q) — the defining property of the
// derivative.
func TestPropertyDeriveSoundness(t *testing.T) {
	exprs := []string{"*", "a.*", "(a|b)*.c", "a.(b|c)*", "?.?", "a.b.c", "(a.b)*"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := MustParse(exprs[rng.Intn(len(exprs))])
		p := randPath(rng, rng.Intn(4))
		q := randPath(rng, rng.Intn(4))
		return Matches(e, p.Concat(q)) == Matches(Derive(e, p), q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyNormalizePreservesLanguage samples random short paths and
// checks Normalize does not change acceptance.
func TestPropertyNormalizePreservesLanguage(t *testing.T) {
	exprs := []string{"*", "a.*", "(b|a)*.c", "a.(c|b)*", "?.?", "a.b.c", "(a.b)*", "(a|a).b"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := MustParse(exprs[rng.Intn(len(exprs))])
		p := randPath(rng, rng.Intn(5))
		return Matches(e, p) == Matches(Normalize(e), p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
