package pathexpr

import (
	"sort"

	"gsv/internal/oem"
)

// Neighbor is one outgoing edge of a set object: the child's OID together
// with the child's label (OEM edges are unlabeled; path labels name the
// child object).
type Neighbor struct {
	Label string
	To    oem.OID
}

// Graph abstracts the data a path evaluation traverses. Implementations
// return the outgoing neighbors of an object, or nil for atomic, missing or
// out-of-scope objects (the WITHIN clause is implemented by an adapter that
// returns nil outside the database).
type Graph interface {
	Out(oem.OID) []Neighbor
}

// GraphFunc adapts a function to the Graph interface.
type GraphFunc func(oem.OID) []Neighbor

// Out calls the function.
func (f GraphFunc) Out(oid oem.OID) []Neighbor { return f(oid) }

// Eval computes the union of N.p over all starting objects N and all
// instances p of e — the paper's N.e. It runs a product search over
// (object, residual-expression) pairs using ACI-normalized Brzozowski
// derivatives, which keeps the state space finite and makes the evaluation
// safe on cyclic graphs. Results are returned sorted and duplicate-free;
// starting objects appear in the result when e is nullable.
func Eval(g Graph, start []oem.OID, e Expr) []oem.OID {
	e = Normalize(e)
	if e.isEmpty() {
		return nil
	}
	type state struct {
		oid  oem.OID
		expr string
	}
	derivs := map[string]map[string]Expr{} // expr string -> label -> residual
	exprs := map[string]Expr{e.String(): e}

	residual := func(cur Expr, label string) Expr {
		key := cur.String()
		byLabel := derivs[key]
		if byLabel == nil {
			byLabel = map[string]Expr{}
			derivs[key] = byLabel
		}
		d, ok := byLabel[label]
		if !ok {
			d = Normalize(cur.derive(label))
			byLabel[label] = d
			exprs[d.String()] = d
		}
		return d
	}

	seen := map[state]bool{}
	result := map[oem.OID]bool{}
	var queue []state
	for _, n := range start {
		st := state{n, e.String()}
		if !seen[st] {
			seen[st] = true
			queue = append(queue, st)
		}
	}
	for len(queue) > 0 {
		st := queue[0]
		queue = queue[1:]
		cur := exprs[st.expr]
		if cur.nullable() {
			result[st.oid] = true
		}
		for _, nb := range g.Out(st.oid) {
			d := residual(cur, nb.Label)
			if d.isEmpty() {
				continue
			}
			next := state{nb.To, d.String()}
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	out := make([]oem.OID, 0, len(result))
	for oid := range result {
		out = append(out, oid)
	}
	return oem.SortOIDs(out)
}

// EvalPath computes N.p for a constant path: the objects reached from any
// start by following exactly the labels of p.
func EvalPath(g Graph, start []oem.OID, p Path) []oem.OID {
	return Eval(g, start, Const(p))
}

// Normalize rewrites e into an ACI-canonical form: alternations are
// flattened, sorted and deduplicated, and sequences are right-associated.
// Two expressions denoting the same language after these rewrites render to
// the same string, which Eval uses as a state key. Brzozowski's theorem
// guarantees that the set of ACI-normalized derivatives of any expression
// is finite, which bounds Eval's product state space.
func Normalize(e Expr) Expr {
	switch v := e.(type) {
	case seqExpr:
		// Flatten to a slice, normalize elements, rebuild right-associated.
		var parts []Expr
		flattenSeq(e, &parts)
		for i := range parts {
			parts[i] = Normalize(parts[i])
		}
		return Seq(parts...)
	case altExpr:
		var branches []Expr
		flattenAlt(e, &branches)
		norm := make([]Expr, 0, len(branches))
		seen := map[string]bool{}
		for _, b := range branches {
			nb := Normalize(b)
			if nb.isEmpty() {
				continue
			}
			key := nb.String()
			if !seen[key] {
				seen[key] = true
				norm = append(norm, nb)
			}
		}
		sort.Slice(norm, func(i, j int) bool { return norm[i].String() < norm[j].String() })
		return Alt(norm...)
	case starExpr:
		return Star(Normalize(v.body))
	default:
		return e
	}
}

func flattenSeq(e Expr, out *[]Expr) {
	if s, ok := e.(seqExpr); ok {
		flattenSeq(s.left, out)
		flattenSeq(s.right, out)
		return
	}
	*out = append(*out, e)
}

func flattenAlt(e Expr, out *[]Expr) {
	if a, ok := e.(altExpr); ok {
		flattenAlt(a.left, out)
		flattenAlt(a.right, out)
		return
	}
	*out = append(*out, e)
}
