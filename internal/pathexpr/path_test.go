package pathexpr

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParsePath(t *testing.T) {
	cases := []struct {
		in   string
		want Path
		err  bool
	}{
		{"", Path{}, false},
		{"professor", Path{"professor"}, false},
		{"professor.age", Path{"professor", "age"}, false},
		{"professor..age", nil, true},
		{".age", nil, true},
		{"professor.*", nil, true},
		{"a?b", nil, true},
	}
	for _, c := range cases {
		got, err := ParsePath(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParsePath(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if err == nil && !got.Equal(c.want) {
			t.Errorf("ParsePath(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMustParsePathPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParsePath did not panic on bad input")
		}
	}()
	MustParsePath("..")
}

func TestPathString(t *testing.T) {
	if got := MustParsePath("professor.student").String(); got != "professor.student" {
		t.Errorf("String = %q", got)
	}
	if got := (Path{}).String(); got != "ε" {
		t.Errorf("empty String = %q", got)
	}
}

func TestPathPrefixSuffix(t *testing.T) {
	p := MustParsePath("a.b.c")
	if !p.HasPrefix(MustParsePath("a.b")) || !p.HasPrefix(Path{}) || !p.HasPrefix(p) {
		t.Error("HasPrefix false negatives")
	}
	if p.HasPrefix(MustParsePath("b")) || p.HasPrefix(MustParsePath("a.b.c.d")) {
		t.Error("HasPrefix false positives")
	}
	if !p.HasSuffix(MustParsePath("b.c")) || !p.HasSuffix(Path{}) || !p.HasSuffix(p) {
		t.Error("HasSuffix false negatives")
	}
	if p.HasSuffix(MustParsePath("a.b")) {
		t.Error("HasSuffix false positive")
	}
}

func TestPathConcatClone(t *testing.T) {
	a := MustParsePath("x.y")
	b := MustParsePath("z")
	c := a.Concat(b)
	if !c.Equal(MustParsePath("x.y.z")) {
		t.Fatalf("Concat = %v", c)
	}
	c[0] = "mutated"
	if a[0] != "x" {
		t.Fatal("Concat aliased its input")
	}
	d := a.Clone()
	d[0] = "w"
	if a[0] != "x" {
		t.Fatal("Clone aliased its input")
	}
}

func TestPropertyConcatAssociative(t *testing.T) {
	mk := func(ss []string) Path {
		var p Path
		for _, s := range ss {
			if s != "" && !strings.ContainsAny(s, ".*?()|") {
				p = append(p, s)
			}
		}
		return p
	}
	f := func(a, b, c []string) bool {
		pa, pb, pc := mk(a), mk(b), mk(c)
		return pa.Concat(pb).Concat(pc).Equal(pa.Concat(pb.Concat(pc)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
