// Package pathexpr implements paths and path expressions over object
// labels, the navigation core of the paper's Section 2. A path is a
// sequence of labels separated by dots (professor.student); a path
// expression is a regular expression of paths, with "?" matching any single
// label and "*" matching any path (zero or more labels). The package
// compiles expressions to NFAs, evaluates them over graphs via a product
// construction that is safe on cyclic data, tests whether a constant path
// is an instance of an expression, and computes Brzozowski derivatives —
// the residual expression after consuming a path prefix — which the
// wildcard-view maintenance extension relies on.
package pathexpr

import (
	"fmt"
	"strings"
)

// Path is a sequence of zero or more object labels. The empty path reaches
// only the starting object itself.
type Path []string

// ParsePath parses a dotted label sequence such as "professor.age". The
// empty string parses to the empty path. Labels must not be empty and must
// not contain the wildcard or operator characters of path expressions; use
// Parse for expressions.
func ParsePath(s string) (Path, error) {
	if s == "" {
		return Path{}, nil
	}
	parts := strings.Split(s, ".")
	p := make(Path, 0, len(parts))
	for _, part := range parts {
		if part == "" {
			return nil, fmt.Errorf("pathexpr: empty label in path %q", s)
		}
		if strings.ContainsAny(part, "*?()|") {
			return nil, fmt.Errorf("pathexpr: label %q contains expression syntax; use Parse", part)
		}
		p = append(p, part)
	}
	return p, nil
}

// MustParsePath is ParsePath for constant paths in tests and examples.
func MustParsePath(s string) Path {
	p, err := ParsePath(s)
	if err != nil {
		panic(err)
	}
	return p
}

// String renders the path in dotted form; the empty path renders as "ε".
func (p Path) String() string {
	if len(p) == 0 {
		return "ε"
	}
	return strings.Join(p, ".")
}

// Equal reports whether two paths are the same label sequence (the paper's
// p1 = p2 definition).
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// HasPrefix reports whether q is a prefix of p.
func (p Path) HasPrefix(q Path) bool {
	if len(q) > len(p) {
		return false
	}
	return p[:len(q)].Equal(q)
}

// HasSuffix reports whether q is a suffix of p. Algorithm 1's deletion case
// tests "p = p1.cond_path", i.e. whether cond_path is a suffix of p.
func (p Path) HasSuffix(q Path) bool {
	if len(q) > len(p) {
		return false
	}
	return p[len(p)-len(q):].Equal(q)
}

// Concat returns the concatenation p.q as a fresh path.
func (p Path) Concat(q Path) Path {
	out := make(Path, 0, len(p)+len(q))
	out = append(out, p...)
	out = append(out, q...)
	return out
}

// Clone returns a copy of the path.
func (p Path) Clone() Path {
	out := make(Path, len(p))
	copy(out, p)
	return out
}
