package pathexpr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gsv/internal/oem"
)

// mapGraph is a test Graph backed by adjacency lists.
type mapGraph map[oem.OID][]Neighbor

func (g mapGraph) Out(oid oem.OID) []Neighbor { return g[oid] }

// personGraph mirrors the paper's Figure 2.
func personGraph() mapGraph {
	return mapGraph{
		"ROOT": {{"professor", "P1"}, {"professor", "P2"}, {"student", "P3"}, {"secretary", "P4"}},
		"P1":   {{"name", "N1"}, {"age", "A1"}, {"salary", "S1"}, {"student", "P3"}},
		"P3":   {{"name", "N3"}, {"age", "A3"}, {"major", "M3"}},
		"P2":   {{"name", "N2"}, {"address", "ADD2"}},
		"P4":   {{"name", "N4"}, {"age", "A4"}},
	}
}

func oids(ss ...string) []oem.OID {
	out := make([]oem.OID, len(ss))
	for i, s := range ss {
		out[i] = oem.OID(s)
	}
	return out
}

func TestEvalConstPaths(t *testing.T) {
	g := personGraph()
	cases := []struct {
		path string
		want []oem.OID
	}{
		{"professor", oids("P1", "P2")},
		{"professor.age", oids("A1")},
		{"professor.student", oids("P3")},
		{"professor.student.age", oids("A3")},
		{"student", oids("P3")},
		{"nosuch", nil},
		{"", oids("ROOT")},
	}
	for _, c := range cases {
		got := EvalPath(g, oids("ROOT"), MustParsePath(c.path))
		if !oem.SameMembers(got, c.want) {
			t.Errorf("ROOT.%s = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestEvalWildcards(t *testing.T) {
	g := personGraph()
	cases := []struct {
		expr string
		want []oem.OID
	}{
		// ROOT.* includes ROOT itself (empty instance) and every descendant.
		{"*", oids("ROOT", "P1", "P2", "P3", "P4", "N1", "A1", "S1", "N2", "ADD2", "N3", "A3", "M3", "N4", "A4")},
		{"?", oids("P1", "P2", "P3", "P4")},
		{"?.age", oids("A1", "A3", "A4")},
		{"*.age", oids("A1", "A3", "A4")},
		{"professor.*", oids("P1", "P2", "N1", "A1", "S1", "P3", "N2", "ADD2", "N3", "A3", "M3")},
		{"professor.?", oids("N1", "A1", "S1", "P3", "N2", "ADD2")},
		{"(professor|secretary).age", oids("A1", "A4")},
		{"professor.student|secretary", oids("P3", "P4")},
		{"*.name", oids("N1", "N2", "N3", "N4")},
	}
	for _, c := range cases {
		got := Eval(g, oids("ROOT"), MustParse(c.expr))
		if !oem.SameMembers(got, c.want) {
			t.Errorf("ROOT.%s = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestEvalMultipleStarts(t *testing.T) {
	g := personGraph()
	got := Eval(g, oids("P1", "P4"), MustParse("age"))
	if !oem.SameMembers(got, oids("A1", "A4")) {
		t.Errorf("got %v", got)
	}
}

func TestEvalEmptyExprAndStarts(t *testing.T) {
	g := personGraph()
	if got := Eval(g, nil, MustParse("*")); len(got) != 0 {
		t.Errorf("no starts gave %v", got)
	}
	if got := Eval(g, oids("ROOT"), Empty()); len(got) != 0 {
		t.Errorf("empty expr gave %v", got)
	}
}

func TestEvalCycleSafe(t *testing.T) {
	// A cycle: A -> B -> A, both labeled "n".
	g := mapGraph{
		"A": {{"n", "B"}},
		"B": {{"n", "A"}},
	}
	got := Eval(g, oids("A"), MustParse("n*"))
	if !oem.SameMembers(got, oids("A", "B")) {
		t.Errorf("cycle closure = %v", got)
	}
	got = Eval(g, oids("A"), MustParse("n.n"))
	if !oem.SameMembers(got, oids("A")) {
		t.Errorf("n.n on cycle = %v", got)
	}
}

func TestEvalSelfLoop(t *testing.T) {
	g := mapGraph{"A": {{"self", "A"}, {"x", "B"}}}
	got := Eval(g, oids("A"), MustParse("self*.x"))
	if !oem.SameMembers(got, oids("B")) {
		t.Errorf("self*.x = %v", got)
	}
}

func TestEvalDiamondDAG(t *testing.T) {
	// Two distinct paths to D; D must appear once.
	g := mapGraph{
		"A": {{"l", "B"}, {"r", "C"}},
		"B": {{"d", "D"}},
		"C": {{"d", "D"}},
	}
	got := Eval(g, oids("A"), MustParse("?.d"))
	if !oem.SameMembers(got, oids("D")) {
		t.Errorf("diamond = %v", got)
	}
}

// bruteEval enumerates all label paths up to maxLen from the start and
// keeps objects whose path matches e — an oracle for Eval on small DAGs.
func bruteEval(g mapGraph, start oem.OID, e Expr, maxLen int) []oem.OID {
	result := map[oem.OID]bool{}
	var walk func(oid oem.OID, p Path)
	walk = func(oid oem.OID, p Path) {
		if Matches(e, p) {
			result[oid] = true
		}
		if len(p) == maxLen {
			return
		}
		for _, nb := range g[oid] {
			walk(nb.To, p.Concat(Path{nb.Label}))
		}
	}
	walk(start, Path{})
	out := make([]oem.OID, 0, len(result))
	for oid := range result {
		out = append(out, oid)
	}
	return oem.SortOIDs(out)
}

// randomDAG builds a layered random DAG so brute-force path enumeration
// terminates.
func randomDAG(rng *rand.Rand) (mapGraph, oem.OID) {
	labels := []string{"a", "b", "c"}
	g := mapGraph{}
	const layers, perLayer = 4, 3
	node := func(l, i int) oem.OID { return oem.OID(string(rune('A'+l)) + string(rune('0'+i))) }
	for l := 0; l < layers-1; l++ {
		for i := 0; i < perLayer; i++ {
			n := node(l, i)
			edges := rng.Intn(3)
			for e := 0; e < edges; e++ {
				g[n] = append(g[n], Neighbor{labels[rng.Intn(len(labels))], node(l+1, rng.Intn(perLayer))})
			}
		}
	}
	root := oem.OID("R")
	for i := 0; i < perLayer; i++ {
		g[root] = append(g[root], Neighbor{labels[rng.Intn(len(labels))], node(0, i)})
	}
	return g, root
}

func TestPropertyEvalMatchesBruteForce(t *testing.T) {
	exprs := []string{"*", "a.*", "(a|b)*", "?.b", "a.b", "*.c", "a*.b", "(a|b).(b|c)"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, root := randomDAG(rng)
		e := MustParse(exprs[rng.Intn(len(exprs))])
		got := Eval(g, []oem.OID{root}, e)
		want := bruteEval(g, root, e, 6)
		return oem.SameMembers(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
