package pathexpr

import (
	"fmt"
	"strings"
)

// Expr is a path expression: a regular expression whose alphabet is object
// labels. The concrete forms are label literals, the single-label wildcard
// "?", concatenation (dot), alternation "|", grouping, and the Kleene
// closure "*" applied to a group or label; the bare element "*" is sugar
// for "(?)*" — any path, including the empty one. Expressions are
// immutable; all combinators return fresh values.
type Expr interface {
	// String renders the expression in parseable concrete syntax.
	String() string
	// nullable reports whether the expression matches the empty path.
	nullable() bool
	// derive returns the Brzozowski derivative with respect to one label:
	// the expression matching exactly the suffixes q such that label.q
	// matches the original. It returns Empty() when no continuation exists.
	derive(label string) Expr
	// isEmpty reports whether the expression matches nothing at all.
	isEmpty() bool
}

type (
	// emptySet matches nothing (∅).
	emptySet struct{}
	// epsilon matches only the empty path.
	epsilon struct{}
	// labelExpr matches the single-label path with exactly this label.
	labelExpr struct{ name string }
	// anyLabel matches any single-label path ("?").
	anyLabel struct{}
	// seqExpr matches concatenations: left then right.
	seqExpr struct{ left, right Expr }
	// altExpr matches either branch.
	altExpr struct{ left, right Expr }
	// starExpr matches zero or more repetitions of its body.
	starExpr struct{ body Expr }
)

// Empty returns the expression matching no path at all.
func Empty() Expr { return emptySet{} }

// Eps returns the expression matching only the empty path.
func Eps() Expr { return epsilon{} }

// Label returns the expression matching the one-label path `name`.
func Label(name string) Expr { return labelExpr{name} }

// AnyLabel returns "?": any single label.
func AnyLabel() Expr { return anyLabel{} }

// AnyPath returns "*": any path of zero or more labels, i.e. (?)*.
func AnyPath() Expr { return Star(AnyLabel()) }

// Seq concatenates expressions, simplifying around ε and ∅.
func Seq(es ...Expr) Expr {
	out := Expr(epsilon{})
	for i := len(es) - 1; i >= 0; i-- {
		out = seq2(es[i], out)
	}
	return out
}

func seq2(a, b Expr) Expr {
	if a.isEmpty() || b.isEmpty() {
		return emptySet{}
	}
	if _, ok := a.(epsilon); ok {
		return b
	}
	if _, ok := b.(epsilon); ok {
		return a
	}
	return seqExpr{a, b}
}

// Alt returns the alternation of the expressions, simplifying around ∅.
func Alt(es ...Expr) Expr {
	out := Expr(emptySet{})
	for _, e := range es {
		out = alt2(out, e)
	}
	return out
}

func alt2(a, b Expr) Expr {
	if a.isEmpty() {
		return b
	}
	if b.isEmpty() {
		return a
	}
	if a.String() == b.String() {
		return a
	}
	return altExpr{a, b}
}

// Star returns the Kleene closure of e.
func Star(e Expr) Expr {
	switch e.(type) {
	case emptySet, epsilon:
		return epsilon{}
	case starExpr:
		return e
	}
	return starExpr{e}
}

// Const returns the expression matching exactly the constant path p.
func Const(p Path) Expr {
	es := make([]Expr, len(p))
	for i, l := range p {
		es[i] = Label(l)
	}
	return Seq(es...)
}

func (emptySet) String() string    { return "∅" }
func (epsilon) String() string     { return "ε" }
func (e labelExpr) String() string { return e.name }
func (anyLabel) String() string    { return "?" }

func (e seqExpr) String() string {
	return childString(e.left, false) + "." + childString(e.right, false)
}

func (e altExpr) String() string {
	return "(" + e.left.String() + "|" + e.right.String() + ")"
}

func (e starExpr) String() string {
	if _, ok := e.body.(anyLabel); ok {
		return "*"
	}
	return childString(e.body, true) + "*"
}

func childString(e Expr, starBody bool) string {
	switch e.(type) {
	case altExpr:
		return e.String() // already parenthesized
	case seqExpr:
		if starBody {
			return "(" + e.String() + ")"
		}
		return e.String()
	default:
		return e.String()
	}
}

func (emptySet) nullable() bool  { return false }
func (epsilon) nullable() bool   { return true }
func (labelExpr) nullable() bool { return false }
func (anyLabel) nullable() bool  { return false }
func (e seqExpr) nullable() bool { return e.left.nullable() && e.right.nullable() }
func (e altExpr) nullable() bool { return e.left.nullable() || e.right.nullable() }
func (starExpr) nullable() bool  { return true }

func (emptySet) isEmpty() bool  { return true }
func (epsilon) isEmpty() bool   { return false }
func (labelExpr) isEmpty() bool { return false }
func (anyLabel) isEmpty() bool  { return false }
func (e seqExpr) isEmpty() bool { return e.left.isEmpty() || e.right.isEmpty() }
func (e altExpr) isEmpty() bool { return e.left.isEmpty() && e.right.isEmpty() }
func (starExpr) isEmpty() bool  { return false }

func (emptySet) derive(string) Expr { return emptySet{} }
func (epsilon) derive(string) Expr  { return emptySet{} }

func (e labelExpr) derive(label string) Expr {
	if e.name == label {
		return epsilon{}
	}
	return emptySet{}
}

func (anyLabel) derive(string) Expr { return epsilon{} }

func (e seqExpr) derive(label string) Expr {
	d := seq2(e.left.derive(label), e.right)
	if e.left.nullable() {
		return alt2(d, e.right.derive(label))
	}
	return d
}

func (e altExpr) derive(label string) Expr {
	return alt2(e.left.derive(label), e.right.derive(label))
}

func (e starExpr) derive(label string) Expr {
	return seq2(e.body.derive(label), Expr(e))
}

// Nullable reports whether e matches the empty path.
func Nullable(e Expr) bool { return e.nullable() }

// IsEmpty reports whether e matches no path at all.
func IsEmpty(e Expr) bool { return e.isEmpty() }

// Derive returns the residual of e after consuming the constant path p:
// the expression matching exactly the suffixes q such that p.q matches e.
// Algorithm 1's wildcard extension uses it to test whether
// path(ROOT,N1).label(N2) can still be extended to an instance of
// sel_path.cond_path, and what remains to be matched below N2.
func Derive(e Expr, p Path) Expr {
	for _, l := range p {
		e = e.derive(l)
		if e.isEmpty() {
			return Empty()
		}
	}
	return e
}

// Matches reports whether the constant path p is an instance of e.
func Matches(e Expr, p Path) bool { return Derive(e, p).nullable() }

// IsConst reports whether e denotes exactly one constant path, and returns
// that path. Simple views (Section 4.2) require constant selection and
// condition paths; the view layer uses IsConst to classify definitions.
func IsConst(e Expr) (Path, bool) {
	var p Path
	for {
		switch v := e.(type) {
		case epsilon:
			return p, true
		case labelExpr:
			return append(p, v.name), true
		case seqExpr:
			l, ok := v.left.(labelExpr)
			if !ok {
				return nil, false
			}
			p = append(p, l.name)
			e = v.right
		default:
			return nil, false
		}
	}
}

// Parse parses the concrete syntax of path expressions:
//
//	expr   := seq
//	seq    := starred { "." starred }
//	starred:= atom [ "*" ]
//	atom   := label | "?" | "*" | "(" alt ")"
//	alt    := seq { "|" seq }
//
// A bare "*" element is any path; "name*" is zero-or-more repetitions of
// the label. The empty string parses to ε.
func Parse(s string) (Expr, error) {
	p := &exprParser{input: s}
	p.skipSpace()
	if p.pos >= len(p.input) {
		return Eps(), nil
	}
	e, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return nil, fmt.Errorf("pathexpr: trailing input at %d in %q", p.pos, s)
	}
	return e, nil
}

// MustParse is Parse for constant expressions in tests and examples.
func MustParse(s string) Expr {
	e, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return e
}

type exprParser struct {
	input string
	pos   int
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	if p.pos < len(p.input) {
		return p.input[p.pos]
	}
	return 0
}

func (p *exprParser) parseAlt() (Expr, error) {
	e, err := p.parseSeq()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.peek() != '|' {
			return e, nil
		}
		p.pos++
		r, err := p.parseSeq()
		if err != nil {
			return nil, err
		}
		e = alt2(e, r)
	}
}

func (p *exprParser) parseSeq() (Expr, error) {
	e, err := p.parseStarred()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.peek() != '.' {
			return e, nil
		}
		p.pos++
		r, err := p.parseStarred()
		if err != nil {
			return nil, err
		}
		e = seq2(e, r)
	}
}

func (p *exprParser) parseStarred() (Expr, error) {
	p.skipSpace()
	switch p.peek() {
	case '*':
		// Bare "*" element: any path. A following "*" is redundant but legal.
		p.pos++
		return AnyPath(), nil
	case '?':
		p.pos++
		if p.peek() == '*' {
			p.pos++
			return AnyPath(), nil
		}
		return AnyLabel(), nil
	case '(':
		p.pos++
		e, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, fmt.Errorf("pathexpr: missing ')' at %d in %q", p.pos, p.input)
		}
		p.pos++
		if p.peek() == '*' {
			p.pos++
			return Star(e), nil
		}
		return e, nil
	case 0, ')', '|', '.':
		return nil, fmt.Errorf("pathexpr: expected path element at %d in %q", p.pos, p.input)
	default:
		start := p.pos
		for p.pos < len(p.input) && !strings.ContainsRune(".*?()| \t", rune(p.input[p.pos])) {
			p.pos++
		}
		name := p.input[start:p.pos]
		if name == "" {
			return nil, fmt.Errorf("pathexpr: expected label at %d in %q", start, p.input)
		}
		e := Expr(labelExpr{name})
		if p.peek() == '*' {
			p.pos++
			return Star(e), nil
		}
		return e, nil
	}
}
