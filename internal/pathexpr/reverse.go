package pathexpr

// Reverse returns the expression matching exactly the label-wise reversals
// of the paths e matches. The generalized view maintainer uses it to decide
// whether an object belongs to entry.e by walking *up* parent edges: Y is
// in entry.e iff entry is reached from Y over the reversed graph along
// Reverse(e).
func Reverse(e Expr) Expr {
	switch v := e.(type) {
	case seqExpr:
		return seq2(Reverse(v.right), Reverse(v.left))
	case altExpr:
		return alt2(Reverse(v.left), Reverse(v.right))
	case starExpr:
		return Star(Reverse(v.body))
	default:
		return e
	}
}
