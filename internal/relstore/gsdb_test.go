package relstore

import (
	"fmt"
	"strings"
	"testing"

	"gsv/internal/core"
	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/workload"
)

func TestFlattenPerson(t *testing.T) {
	s := store.NewDefault()
	workload.PersonDB(s)
	e := Flatten(s)
	// 15 data objects (the PERSON database object is skipped).
	if got := e.Tables[TableObj].Len(); got != 15 {
		t.Fatalf("OBJ rows = %d, want 15", got)
	}
	// Edges: ROOT(4) + P1(4) + P2(2) + P3(3) + P4(2) = 15.
	if got := e.Tables[TableChild].Len(); got != 15 {
		t.Fatalf("CHILD rows = %d, want 15", got)
	}
	// Atomic objects: 10.
	if got := e.Tables[TableAtom].Len(); got != 10 {
		t.Fatalf("ATOM rows = %d, want 10", got)
	}
	if !e.Tables[TableChild].Has(Row{OIDVal("ROOT"), OIDVal("P1")}) {
		t.Fatal("missing CHILD(ROOT,P1)")
	}
	if !e.Tables[TableObj].Has(Row{OIDVal("P1"), StrVal("professor")}) {
		t.Fatal("missing OBJ(P1,professor)")
	}
}

func simpleDef(t testing.TB, q string) core.SimpleDef {
	t.Helper()
	def, ok := core.Simplify(query.MustParse(q))
	if !ok {
		t.Fatalf("not a simple view: %s", q)
	}
	return def
}

func TestCompileSimpleView(t *testing.T) {
	def := simpleDef(t, "SELECT REL.r.tuple X WHERE X.age > 30")
	cq, err := CompileSimpleView(def)
	if err != nil {
		t.Fatal(err)
	}
	// 2 sel steps + 1 cond step, each CHILD+OBJ, plus the ATOM join.
	if len(cq.Atoms) != 7 {
		t.Fatalf("atoms = %d (%s)", len(cq.Atoms), cq)
	}
	if len(cq.Selections) != 1 {
		t.Fatalf("selections = %v", cq.Selections)
	}
	if cq.Head[0] != "o2" {
		t.Fatalf("head = %v", cq.Head)
	}
	s := cq.String()
	if !strings.Contains(s, "CHILD('REL',o1)") || !strings.Contains(s, "OBJ(o2,'tuple')") {
		t.Fatalf("rendered query = %s", s)
	}
}

func TestCompileRejects(t *testing.T) {
	if _, err := CompileSimpleView(core.SimpleDef{}); err == nil {
		t.Fatal("empty sel path accepted")
	}
	def := simpleDef(t, "SELECT REL.r.tuple X WHERE X.age > 30")
	def.Within = "DB"
	if _, err := CompileSimpleView(def); err == nil {
		t.Fatal("WITHIN accepted")
	}
}

func TestGSDBViewMatchesQuery(t *testing.T) {
	s := store.NewDefault()
	workload.RelationLike(s, workload.RelationConfig{
		Relations: 2, TuplesPerRelation: 8, FieldsPerTuple: 2, Seed: 3,
	})
	def := simpleDef(t, "SELECT REL.r0.tuple X WHERE X.age > 30")
	g, err := NewGSDBView(s, def)
	if err != nil {
		t.Fatal(err)
	}
	want, err := query.NewEvaluator(s).Eval(query.MustParse("SELECT REL.r0.tuple X WHERE X.age > 30"))
	if err != nil {
		t.Fatal(err)
	}
	if got := g.MemberOIDs(); !oem.SameMembers(got, want) {
		t.Fatalf("relational view %v != query %v", got, want)
	}
}

func TestCompileCondOnSelectedAtom(t *testing.T) {
	// A view selecting atomic objects with a condition on their own value:
	// empty condition path, ATOM join directly on the head variable.
	s := store.NewDefault()
	workload.RelationLike(s, workload.RelationConfig{
		Relations: 1, TuplesPerRelation: 6, FieldsPerTuple: 2, Seed: 9,
	})
	def := simpleDef(t, "SELECT REL.r0.tuple.age X WHERE X > 30")
	g, err := NewGSDBView(s, def)
	if err != nil {
		t.Fatal(err)
	}
	want, err := query.NewEvaluator(s).Eval(query.MustParse("SELECT REL.r0.tuple.age X WHERE X > 30"))
	if err != nil {
		t.Fatal(err)
	}
	if got := g.MemberOIDs(); !oem.SameMembers(got, want) {
		t.Fatalf("relational %v != query %v", got, want)
	}
	// Maintenance under a modify that flips membership.
	target := want[0]
	before := s.Seq()
	if err := s.Modify(target, oem.Int(5)); err != nil {
		t.Fatal(err)
	}
	for _, u := range s.LogSince(before) {
		g.Apply(u)
	}
	want, _ = query.NewEvaluator(s).Eval(query.MustParse("SELECT REL.r0.tuple.age X WHERE X > 30"))
	if got := g.MemberOIDs(); !oem.SameMembers(got, want) {
		t.Fatalf("after modify: relational %v != query %v", got, want)
	}
}

func TestTranslateUpdateMultiTable(t *testing.T) {
	// "An insertion of an atomic object needs to modify all three tables":
	// creation touches OBJ and ATOM, the connecting insert touches CHILD.
	s := store.NewDefault()
	workload.PersonDB(s)
	before := s.Seq()
	s.MustPut(oem.NewAtom("A2", "age", oem.Int(40)))
	if err := s.Insert("P2", "A2"); err != nil {
		t.Fatal(err)
	}
	var all []Delta
	for _, u := range s.LogSince(before) {
		all = append(all, TranslateUpdate(u)...)
	}
	if len(all) != 3 {
		t.Fatalf("deltas = %v, want 3", all)
	}
	tables := map[string]bool{}
	for _, d := range all {
		tables[d.Table] = true
		if !d.Insert {
			t.Fatalf("unexpected delete delta: %+v", d)
		}
	}
	if !tables[TableObj] || !tables[TableAtom] || !tables[TableChild] {
		t.Fatalf("tables touched = %v", tables)
	}
	// Modify touches ATOM twice (delete old, insert new).
	before = s.Seq()
	if err := s.Modify("A2", oem.Int(41)); err != nil {
		t.Fatal(err)
	}
	all = nil
	for _, u := range s.LogSince(before) {
		all = append(all, TranslateUpdate(u)...)
	}
	if len(all) != 2 || all[0].Insert || !all[1].Insert {
		t.Fatalf("modify deltas = %v", all)
	}
}

func TestTranslateSkipsGroupingObjects(t *testing.T) {
	s := store.NewDefault()
	u := store.Update{Kind: store.UpdateCreate, N1: "DB", Object: oem.NewSet("DB", "database", "A")}
	if ds := TranslateUpdate(u); len(ds) != 0 {
		t.Fatalf("database create produced deltas: %v", ds)
	}
	_ = s
}

// TestPropertyRelationalMatchesGSDB is the E3 correctness cross-check: the
// relational counting view and the native Algorithm 1 view track the same
// members through a long random update stream.
func TestPropertyRelationalMatchesGSDB(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			base := store.NewDefault()
			db := workload.RelationLike(base, workload.RelationConfig{
				Relations: 2, TuplesPerRelation: 6, FieldsPerTuple: 2, Seed: seed,
			})
			def := simpleDef(t, "SELECT REL.r0.tuple X WHERE X.age > 40")
			rel, err := NewGSDBView(base, def)
			if err != nil {
				t.Fatal(err)
			}
			vstore := store.New(store.Options{ParentIndex: true, AllowDangling: true})
			mv, err := core.Materialize("V", query.MustParse("SELECT REL.r0.tuple X WHERE X.age > 40"), base, vstore)
			if err != nil {
				t.Fatal(err)
			}
			sm, err := core.NewSimpleMaintainer(mv, core.NewCentralAccess(base))
			if err != nil {
				t.Fatal(err)
			}
			var sets, atoms []oem.OID
			for _, r := range db.Relations {
				sets = append(sets, r.OID)
				sets = append(sets, r.Tuples...)
				for _, tu := range r.Tuples {
					kids, _ := base.Children(tu)
					atoms = append(atoms, kids...)
				}
			}
			stream := workload.NewStream(base, workload.StreamConfig{
				Seed: seed + 100, Mix: workload.Mix{Insert: 3, Delete: 2, Modify: 5}, ValueRange: 90,
			}, sets, atoms)
			for step := 0; step < 150; step++ {
				us, ok := stream.Next()
				if !ok {
					break
				}
				for _, u := range us {
					rel.Apply(u)
					if err := sm.Apply(u); err != nil {
						t.Fatal(err)
					}
				}
				if step%15 == 0 {
					gsdbMembers, err := mv.Members()
					if err != nil {
						t.Fatal(err)
					}
					if got := rel.MemberOIDs(); !oem.SameMembers(got, gsdbMembers) {
						t.Fatalf("step %d: relational %v != gsdb %v", step, got, gsdbMembers)
					}
				}
			}
			gsdbMembers, _ := mv.Members()
			if got := rel.MemberOIDs(); !oem.SameMembers(got, gsdbMembers) {
				t.Fatalf("final: relational %v != gsdb %v", got, gsdbMembers)
			}
		})
	}
}

func TestStatsAccumulate(t *testing.T) {
	var a, b Stats
	b.RowsScanned, b.IndexProbes, b.DeltaRows = 1, 2, 3
	a.Add(b)
	a.Add(b)
	if a.RowsScanned != 2 || a.IndexProbes != 4 || a.DeltaRows != 6 {
		t.Fatalf("stats = %+v", a)
	}
}
