package relstore

import (
	"fmt"

	"gsv/internal/core"
	"gsv/internal/oem"
	"gsv/internal/store"
)

// Table and column names of the three-relation flattening (Example 8).
const (
	TableObj   = "OBJ"   // OBJ(OID, LABEL)
	TableChild = "CHILD" // CHILD(PARENT, CHILD)
	TableAtom  = "ATOM"  // ATOM(OID, TYPE, VALUE)
)

// Flatten builds the three tables from a GSDB store. Grouping objects
// (databases, views) are skipped: they are conceptual aids, not data, and
// the relational baseline should compete on the same data the GSDB
// algorithm maintains.
func Flatten(s *store.Store) *Engine {
	obj := NewTable(TableObj, "OID", "LABEL")
	child := NewTable(TableChild, "PARENT", "CHILD")
	atom := NewTable(TableAtom, "OID", "TYPE", "VALUE")
	s.ForEach(func(o *oem.Object) {
		if oem.IsGroupingLabel(o.Label) {
			return
		}
		obj.Insert(Row{OIDVal(o.OID), StrVal(o.Label)})
		if o.IsAtomic() {
			// The TYPE column holds the representation type (integer,
			// string, ...), not the object's descriptive type name, so
			// that modify deltas — which carry only atoms — can produce
			// exactly matching delete rows.
			atom.Insert(Row{OIDVal(o.OID), StrVal(o.Atom.TypeName()), o.Atom})
			return
		}
		for _, c := range o.Set {
			child.Insert(Row{OIDVal(o.OID), OIDVal(c)})
		}
	})
	return NewEngine(obj, child, atom)
}

// CompileSimpleView translates a simple GSDB view definition (Section 4.2)
// into the select-project-join query of Example 8's discussion: one CHILD
// self-join per path step, an OBJ label constraint per step, and an ATOM
// join plus selection for the condition. The head is the OID of the
// selected object X.
//
//	SELECT REL.r.tuple X WHERE X.age > 30
//
// becomes
//
//	V(o2) :- CHILD('REL',o1), OBJ(o1,'r'), CHILD(o1,o2), OBJ(o2,'tuple'),
//	         CHILD(o2,c1), OBJ(c1,'age'), ATOM(c1,ty,v), v > 30
func CompileSimpleView(def core.SimpleDef) (*CQ, error) {
	if len(def.SelPath) == 0 {
		return nil, fmt.Errorf("relstore: empty selection path")
	}
	if def.Within != "" {
		return nil, fmt.Errorf("relstore: WITHIN views are not supported by the relational baseline")
	}
	q := &CQ{}
	prev := C(OIDVal(def.Entry))
	var x string
	for i, lbl := range def.SelPath {
		v := fmt.Sprintf("o%d", i+1)
		q.Atoms = append(q.Atoms,
			BodyAtom{TableChild, []Term{prev, V(v)}},
			BodyAtom{TableObj, []Term{V(v), C(StrVal(lbl))}},
		)
		prev = V(v)
		x = v
	}
	q.Head = []string{x}
	curr := prev
	for i, lbl := range def.CondPath {
		v := fmt.Sprintf("c%d", i+1)
		q.Atoms = append(q.Atoms,
			BodyAtom{TableChild, []Term{curr, V(v)}},
			BodyAtom{TableObj, []Term{V(v), C(StrVal(lbl))}},
		)
		curr = V(v)
	}
	if !def.Cond.Always {
		// Bind the condition object's atomic value and select on it. With
		// an empty condition path the selected object itself is tested.
		q.Atoms = append(q.Atoms, BodyAtom{TableAtom, []Term{curr, V("ty"), V("val")}})
		q.Selections = append(q.Selections, Selection{Var: "val", Op: def.Cond.Op, Literal: def.Cond.Literal})
	}
	return q, nil
}

// TranslateUpdate maps one GSDB basic update to the table deltas of the
// flattened representation — the multi-table expansion the paper warns
// about: "an insertion of an atomic object needs to modify all three
// tables".
func TranslateUpdate(u store.Update) []Delta {
	switch u.Kind {
	case store.UpdateCreate:
		o := u.Object
		if o == nil || oem.IsGroupingLabel(o.Label) {
			return nil
		}
		ds := []Delta{{TableObj, Row{OIDVal(o.OID), StrVal(o.Label)}, true}}
		if o.IsAtomic() {
			ds = append(ds, Delta{TableAtom, Row{OIDVal(o.OID), StrVal(o.Atom.TypeName()), o.Atom}, true})
		} else {
			for _, c := range o.Set {
				ds = append(ds, Delta{TableChild, Row{OIDVal(o.OID), OIDVal(c)}, true})
			}
		}
		return ds
	case store.UpdateInsert:
		return []Delta{{TableChild, Row{OIDVal(u.N1), OIDVal(u.N2)}, true}}
	case store.UpdateDelete:
		return []Delta{{TableChild, Row{OIDVal(u.N1), OIDVal(u.N2)}, false}}
	case store.UpdateModify:
		// The TYPE column is not tracked through modifications here: the
		// view compilation never constrains it, so old/new rows use the
		// atom's own type name consistently.
		return []Delta{
			{TableAtom, Row{OIDVal(u.N1), StrVal(u.Old.TypeName()), u.Old}, false},
			{TableAtom, Row{OIDVal(u.N1), StrVal(u.New.TypeName()), u.New}, true},
		}
	default:
		return nil
	}
}

// GSDBView is the complete relational pipeline for one simple GSDB view:
// flattened tables, a compiled SPJ query, and a counting-maintained
// materialization. It mirrors the MaterializedView + SimpleMaintainer pair
// on the relational side.
type GSDBView struct {
	Engine *Engine
	View   *MaterializedCQ
}

// NewGSDBView flattens the store and materializes the compiled view.
func NewGSDBView(s *store.Store, def core.SimpleDef) (*GSDBView, error) {
	q, err := CompileSimpleView(def)
	if err != nil {
		return nil, err
	}
	e := Flatten(s)
	return &GSDBView{Engine: e, View: MaterializeCQ(e, q)}, nil
}

// Apply maintains the relational view under one GSDB update.
func (g *GSDBView) Apply(u store.Update) {
	for _, d := range TranslateUpdate(u) {
		g.View.ApplyDelta(d)
	}
}

// MemberOIDs returns the view's member OIDs, for comparison with the GSDB
// materialized view.
func (g *GSDBView) MemberOIDs() []oem.OID {
	rows := g.View.Rows()
	out := make([]oem.OID, 0, len(rows))
	for _, r := range rows {
		out = append(out, oem.OID(r[0].S))
	}
	return oem.SortOIDs(out)
}
