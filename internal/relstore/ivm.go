package relstore

import (
	"sort"
)

// MaterializedCQ is a materialized conjunctive view with derivation counts
// — the counting algorithm's bookkeeping: a head tuple stays in the view
// while its count is positive, so deletions need no recomputation.
type MaterializedCQ struct {
	Q      *CQ
	Engine *Engine
	rows   map[string]ViewRow
}

// MaterializeCQ evaluates q and stores the result with counts.
func MaterializeCQ(e *Engine, q *CQ) *MaterializedCQ {
	return &MaterializedCQ{Q: q, Engine: e, rows: e.Eval(q)}
}

// Rows returns the current view tuples (count > 0), sorted.
func (m *MaterializedCQ) Rows() []Row {
	keys := make([]string, 0, len(m.rows))
	for k, vr := range m.rows {
		if vr.Count > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]Row, len(keys))
	for i, k := range keys {
		out[i] = m.rows[k].Row
	}
	return out
}

// Len returns the number of distinct view tuples.
func (m *MaterializedCQ) Len() int {
	n := 0
	for _, vr := range m.rows {
		if vr.Count > 0 {
			n++
		}
	}
	return n
}

// Count returns the derivation count of a head row.
func (m *MaterializedCQ) Count(r Row) int { return m.rows[r.key()].Count }

// Delta is a single-tuple change to a base table.
type Delta struct {
	Table  string
	Row    Row
	Insert bool // false = delete
}

// ApplyDelta maintains the view incrementally under one base delta and
// applies the delta to the base table. The delta joins are computed with
// the tuple present in its table (inserts are applied first, deletes are
// removed last), partitioned by the first body occurrence binding the
// tuple so each new/lost derivation is counted exactly once.
func (m *MaterializedCQ) ApplyDelta(d Delta) {
	t := m.Engine.Tables[d.Table]
	if t == nil {
		return
	}
	if d.Insert {
		if !t.Insert(d.Row) {
			return // duplicate insert: set semantics, no change
		}
		m.propagate(d, +1)
		return
	}
	if !t.Has(d.Row) {
		return
	}
	m.propagate(d, -1)
	t.Delete(d.Row)
}

// propagate adds sign to the count of every derivation using d.Row,
// partitioned by first occurrence.
func (m *MaterializedCQ) propagate(d Delta, sign int) {
	for i, atom := range m.Q.Atoms {
		if atom.Table != d.Table {
			continue
		}
		// Unify the delta row with the atom's constants before joining.
		if !deltaMatchesAtom(atom, d.Row) {
			continue
		}
		fx := &fixed{atom: i, row: d.Row, excludeRow: d.Row}
		m.Engine.join(m.Q, 0, binding{}, fx, func(b binding) {
			head := headRow(m.Q, b)
			k := head.key()
			vr := m.rows[k]
			vr.Row = head
			vr.Count += sign
			if m.Engine.Stats != nil {
				m.Engine.Stats.DeltaRows++
			}
			if vr.Count == 0 {
				delete(m.rows, k)
			} else {
				m.rows[k] = vr
			}
		})
	}
}

func deltaMatchesAtom(atom BodyAtom, r Row) bool {
	if len(atom.Terms) != len(r) {
		return false
	}
	for c, term := range atom.Terms {
		if term.IsConst && !term.Const.Equal(r[c]) {
			return false
		}
	}
	return true
}
