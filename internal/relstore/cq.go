package relstore

import (
	"fmt"
	"strings"

	"gsv/internal/query"
)

// Term is one position in a body atom: a variable or a constant.
type Term struct {
	Var   string
	Const Val
	// IsConst selects between the two.
	IsConst bool
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(v Val) Term { return Term{Const: v, IsConst: true} }

// String renders the term.
func (t Term) String() string {
	if t.IsConst {
		return t.Const.String()
	}
	return t.Var
}

// BodyAtom is one R(t1, ..., tk) conjunct.
type BodyAtom struct {
	Table string
	Terms []Term
}

// String renders the atom.
func (a BodyAtom) String() string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.String()
	}
	return fmt.Sprintf("%s(%s)", a.Table, strings.Join(parts, ","))
}

// Selection is a comparison applied to a bound variable, e.g. v > 30.
type Selection struct {
	Var     string
	Op      query.Op
	Literal Val
}

// String renders the selection.
func (s Selection) String() string {
	return fmt.Sprintf("%s %s %s", s.Var, s.Op, s.Literal)
}

// CQ is a conjunctive query with selections:
//
//	Head(head...) :- atom1, atom2, ..., sel1, sel2, ...
type CQ struct {
	Head       []string
	Atoms      []BodyAtom
	Selections []Selection
}

// String renders the query in Datalog-ish syntax.
func (q *CQ) String() string {
	var parts []string
	for _, a := range q.Atoms {
		parts = append(parts, a.String())
	}
	for _, s := range q.Selections {
		parts = append(parts, s.String())
	}
	return fmt.Sprintf("V(%s) :- %s", strings.Join(q.Head, ","), strings.Join(parts, ", "))
}

// binding maps variables to values during join evaluation.
type binding map[string]Val

// Engine evaluates and maintains conjunctive queries over a set of named
// tables.
type Engine struct {
	Tables map[string]*Table
	// Stats, when non-nil, accumulates low-level operation counters.
	Stats *Stats
}

// NewEngine returns an engine over the given tables.
func NewEngine(tables ...*Table) *Engine {
	e := &Engine{Tables: make(map[string]*Table)}
	for _, t := range tables {
		e.Tables[t.Name] = t
	}
	return e
}

// Eval computes the head tuples of q with their multiplicities (number of
// derivations), by backtracking join with index probes.
func (e *Engine) Eval(q *CQ) map[string]ViewRow {
	out := make(map[string]ViewRow)
	e.join(q, 0, binding{}, nil, func(b binding) {
		head := headRow(q, b)
		k := head.key()
		vr := out[k]
		vr.Row = head
		vr.Count++
		out[k] = vr
	})
	return out
}

// ViewRow is one materialized view tuple with its derivation count.
type ViewRow struct {
	Row   Row
	Count int
}

func headRow(q *CQ, b binding) Row {
	head := make(Row, len(q.Head))
	for i, v := range q.Head {
		head[i] = b[v]
	}
	return head
}

// fixed pins one body atom to a specific row during delta evaluation; the
// exclude function suppresses rows at other occurrences of the same table.
type fixed struct {
	atom int
	row  Row
	// excludeBelow suppresses `row` at occurrences with index < atom;
	// occurrences > atom see the full table. This implements the
	// first-occurrence partition of counting IVM.
	excludeRow Row
}

// join enumerates bindings satisfying atoms[i:] given b, honoring an
// optional fixed atom, and calls emit for complete bindings that pass the
// selections.
func (e *Engine) join(q *CQ, i int, b binding, fx *fixed, emit func(binding)) {
	if i == len(q.Atoms) {
		for _, sel := range q.Selections {
			v, ok := b[sel.Var]
			if !ok || !sel.Op.Apply(v, sel.Literal) {
				return
			}
		}
		emit(b)
		return
	}
	atom := q.Atoms[i]
	t := e.Tables[atom.Table]
	if t == nil {
		return
	}

	tryRow := func(r Row) bool {
		// First-occurrence partition: occurrences before the fixed one must
		// not re-use the delta row.
		if fx != nil && i < fx.atom && atom.Table == q.Atoms[fx.atom].Table && r.Equal(fx.excludeRow) {
			return true
		}
		undo := make([]string, 0, len(atom.Terms))
		ok := true
		for c, term := range atom.Terms {
			if term.IsConst {
				if !r[c].Equal(term.Const) {
					ok = false
					break
				}
				continue
			}
			if bv, bound := b[term.Var]; bound {
				if !bv.Equal(r[c]) {
					ok = false
					break
				}
				continue
			}
			b[term.Var] = r[c]
			undo = append(undo, term.Var)
		}
		if ok {
			e.join(q, i+1, b, fx, emit)
		}
		for _, v := range undo {
			delete(b, v)
		}
		return true
	}

	if fx != nil && i == fx.atom {
		tryRow(fx.row)
		return
	}

	// Pick the most selective access path: a constant or bound column.
	bestCol, bestVal := -1, Val{}
	for c, term := range atom.Terms {
		if term.IsConst {
			bestCol, bestVal = c, term.Const
			break
		}
		if v, bound := b[term.Var]; bound {
			bestCol, bestVal = c, v
			break
		}
	}
	if bestCol >= 0 {
		t.Probe(e.Stats, bestCol, bestVal, tryRow)
	} else {
		t.Scan(e.Stats, tryRow)
	}
}
