package relstore

import (
	"testing"

	"gsv/internal/oem"
	"gsv/internal/query"
)

func TestTableInsertDeleteHas(t *testing.T) {
	tb := NewTable("T", "A", "B")
	r := Row{StrVal("x"), oem.Int(1)}
	if !tb.Insert(r) {
		t.Fatal("first insert returned false")
	}
	if tb.Insert(r) {
		t.Fatal("duplicate insert returned true")
	}
	if !tb.Has(r) || tb.Len() != 1 {
		t.Fatal("Has/Len wrong")
	}
	if !tb.Delete(r) {
		t.Fatal("delete returned false")
	}
	if tb.Delete(r) {
		t.Fatal("double delete returned true")
	}
	if tb.Has(r) || tb.Len() != 0 {
		t.Fatal("row survived delete")
	}
}

func TestTableArityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	NewTable("T", "A").Insert(Row{StrVal("x"), StrVal("y")})
}

func TestTableProbe(t *testing.T) {
	tb := NewTable("T", "A", "B")
	tb.Insert(Row{StrVal("x"), oem.Int(1)})
	tb.Insert(Row{StrVal("x"), oem.Int(2)})
	tb.Insert(Row{StrVal("y"), oem.Int(3)})
	var st Stats
	var got []Row
	tb.Probe(&st, 0, StrVal("x"), func(r Row) bool {
		got = append(got, r)
		return true
	})
	if len(got) != 2 {
		t.Fatalf("probe found %d rows, want 2", len(got))
	}
	if st.IndexProbes != 1 || st.RowsScanned != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// Index is maintained across deletes.
	tb.Delete(Row{StrVal("x"), oem.Int(1)})
	got = nil
	tb.Probe(nil, 0, StrVal("x"), func(r Row) bool { got = append(got, r); return true })
	if len(got) != 1 {
		t.Fatalf("after delete probe found %d rows", len(got))
	}
}

func TestRowKeyDistinguishesKinds(t *testing.T) {
	a := Row{oem.Int(1)}
	b := Row{oem.String_("1")}
	if a.key() == b.key() {
		t.Fatal("int 1 and string '1' share a key")
	}
}

// triangleEngine builds E(a,b) edges for a small graph and a 2-hop query.
func twoHopFixture() (*Engine, *CQ) {
	e := NewEngine(NewTable("E", "SRC", "DST"))
	for _, edge := range [][2]string{{"a", "b"}, {"b", "c"}, {"b", "d"}, {"c", "d"}} {
		e.Tables["E"].Insert(Row{StrVal(edge[0]), StrVal(edge[1])})
	}
	q := &CQ{
		Head:  []string{"z"},
		Atoms: []BodyAtom{{"E", []Term{C(StrVal("a")), V("y")}}, {"E", []Term{V("y"), V("z")}}},
	}
	return e, q
}

func TestEvalTwoHop(t *testing.T) {
	e, q := twoHopFixture()
	res := e.Eval(q)
	// a->b->{c,d}: two results, each with one derivation.
	if len(res) != 2 {
		t.Fatalf("results = %v", res)
	}
	for _, vr := range res {
		if vr.Count != 1 {
			t.Fatalf("count = %d", vr.Count)
		}
	}
}

func TestEvalCountsMultipleDerivations(t *testing.T) {
	e, q := twoHopFixture()
	// Add a->c so d gets a second derivation (a->b->d and a->c->d).
	e.Tables["E"].Insert(Row{StrVal("a"), StrVal("c")})
	res := e.Eval(q)
	d := res[Row{StrVal("d")}.key()]
	if d.Count != 2 {
		t.Fatalf("count(d) = %d, want 2", d.Count)
	}
}

func TestEvalSelections(t *testing.T) {
	e := NewEngine(NewTable("R", "X", "V"))
	e.Tables["R"].Insert(Row{StrVal("p"), oem.Int(10)})
	e.Tables["R"].Insert(Row{StrVal("q"), oem.Int(50)})
	q := &CQ{
		Head:       []string{"x"},
		Atoms:      []BodyAtom{{"R", []Term{V("x"), V("v")}}},
		Selections: []Selection{{Var: "v", Op: query.OpGt, Literal: oem.Int(20)}},
	}
	res := e.Eval(q)
	if len(res) != 1 {
		t.Fatalf("res = %v", res)
	}
	if _, ok := res[Row{StrVal("q")}.key()]; !ok {
		t.Fatal("q missing")
	}
}

func TestIVMInsertDeleteMatchesRecompute(t *testing.T) {
	e, q := twoHopFixture()
	m := MaterializeCQ(e, q)
	check := func(when string) {
		t.Helper()
		fresh := e.Eval(q)
		if len(fresh) != m.Len() {
			t.Fatalf("%s: view %d rows, recompute %d", when, m.Len(), len(fresh))
		}
		for k, vr := range fresh {
			if m.rows[k].Count != vr.Count {
				t.Fatalf("%s: count mismatch for %v: %d vs %d", when, vr.Row, m.rows[k].Count, vr.Count)
			}
		}
	}
	check("initial")
	// New 2-hop derivations via a->c.
	m.ApplyDelta(Delta{"E", Row{StrVal("a"), StrVal("c")}, true})
	check("after insert a->c")
	if m.Count(Row{StrVal("d")}) != 2 {
		t.Fatalf("count(d) = %d, want 2", m.Count(Row{StrVal("d")}))
	}
	// Removing b->d drops one derivation of d; d stays via c->d.
	m.ApplyDelta(Delta{"E", Row{StrVal("b"), StrVal("d")}, false})
	check("after delete b->d")
	if m.Count(Row{StrVal("d")}) != 1 {
		t.Fatalf("count(d) = %d, want 1", m.Count(Row{StrVal("d")}))
	}
	// Removing c->d eliminates d entirely.
	m.ApplyDelta(Delta{"E", Row{StrVal("c"), StrVal("d")}, false})
	check("after delete c->d")
	if m.Count(Row{StrVal("d")}) != 0 {
		t.Fatal("d survived with no derivations")
	}
	// Duplicate insert and spurious delete are no-ops.
	m.ApplyDelta(Delta{"E", Row{StrVal("a"), StrVal("b")}, true})
	m.ApplyDelta(Delta{"E", Row{StrVal("z"), StrVal("z")}, false})
	check("after no-ops")
}

func TestIVMSelfJoinDeltaTouchesBothOccurrences(t *testing.T) {
	// A self-loop edge binds both body occurrences; the first-occurrence
	// partition must count exactly the right number of new derivations.
	e := NewEngine(NewTable("E", "SRC", "DST"))
	q := &CQ{
		Head:  []string{"z"},
		Atoms: []BodyAtom{{"E", []Term{V("y"), V("z")}}, {"E", []Term{V("z"), V("y")}}},
	}
	m := MaterializeCQ(e, q)
	m.ApplyDelta(Delta{"E", Row{StrVal("a"), StrVal("a")}, true})
	fresh := e.Eval(q)
	if len(fresh) != m.Len() || m.Count(Row{StrVal("a")}) != fresh[Row{StrVal("a")}.key()].Count {
		t.Fatalf("self-join IVM diverged: view=%v fresh=%v", m.rows, fresh)
	}
	m.ApplyDelta(Delta{"E", Row{StrVal("a"), StrVal("b")}, true})
	m.ApplyDelta(Delta{"E", Row{StrVal("b"), StrVal("a")}, true})
	fresh = e.Eval(q)
	for k, vr := range fresh {
		if m.rows[k].Count != vr.Count {
			t.Fatalf("count mismatch for %v: %d vs %d", vr.Row, m.rows[k].Count, vr.Count)
		}
	}
	m.ApplyDelta(Delta{"E", Row{StrVal("a"), StrVal("a")}, false})
	fresh = e.Eval(q)
	if len(fresh) != m.Len() {
		t.Fatalf("after delete: view %d, fresh %d", m.Len(), len(fresh))
	}
}
