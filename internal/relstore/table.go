// Package relstore implements the paper's Section 4.4 relational baseline
// (Example 8): graph structured data flattened into three relations —
//
//	OBJ(OID, LABEL)      labels of all objects
//	CHILD(PARENT, CHILD) edges of all set objects
//	ATOM(OID, TYPE, VALUE) values of all atomic objects
//
// — with GSDB views compiled into select-project-join queries over many
// self-joins of CHILD, maintained incrementally by counting-based delta
// propagation (the standard relational IVM technique of Gupta, Mumick and
// Subrahmanian, which the paper cites as [GMS93]). The module exists to
// answer the paper's second discussion question: is maintaining the view
// on the relational representation competitive with the native GSDB
// algorithm? Experiment E3 measures both.
package relstore

import (
	"fmt"
	"sort"
	"strings"

	"gsv/internal/oem"
)

// Val is one column value. Relational columns hold OIDs, labels (strings)
// or atomic values; oem.Atom covers all of them.
type Val = oem.Atom

// Row is one tuple.
type Row []Val

// key renders a row as a canonical map key.
func (r Row) key() string {
	var b strings.Builder
	for i, v := range r {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(fmt.Sprintf("%d:%v", int(v.Kind), v))
	}
	return b.String()
}

// Equal reports whether two rows hold the same values.
func (r Row) Equal(s Row) bool {
	if len(r) != len(s) {
		return false
	}
	for i := range r {
		if !r[i].Equal(s[i]) {
			return false
		}
	}
	return true
}

// String renders the row.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Stats counts low-level relational work — the "table operations" compared
// against GSDB object touches in experiment E3.
type Stats struct {
	// RowsScanned counts rows visited by scans and index probes.
	RowsScanned int
	// IndexProbes counts hash-index lookups.
	IndexProbes int
	// DeltaRows counts view delta tuples produced.
	DeltaRows int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.RowsScanned += other.RowsScanned
	s.IndexProbes += other.IndexProbes
	s.DeltaRows += other.DeltaRows
}

// Table is a set-semantics relation with hash indexes on every column.
type Table struct {
	Name string
	Cols []string
	rows map[string]Row
	// idx[c][valkey] lists row keys with that value in column c.
	idx []map[string]map[string]struct{}
}

// NewTable returns an empty table with the given columns.
func NewTable(name string, cols ...string) *Table {
	t := &Table{Name: name, Cols: cols, rows: make(map[string]Row)}
	t.idx = make([]map[string]map[string]struct{}, len(cols))
	for i := range t.idx {
		t.idx[i] = make(map[string]map[string]struct{})
	}
	return t
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Has reports whether the table contains the row.
func (t *Table) Has(r Row) bool {
	_, ok := t.rows[r.key()]
	return ok
}

// Insert adds a row; it reports whether the table changed (set semantics).
func (t *Table) Insert(r Row) bool {
	if len(r) != len(t.Cols) {
		panic(fmt.Sprintf("relstore: arity mismatch inserting into %s: %v", t.Name, r))
	}
	k := r.key()
	if _, ok := t.rows[k]; ok {
		return false
	}
	t.rows[k] = append(Row(nil), r...)
	for c, v := range r {
		vk := valKey(v)
		m := t.idx[c][vk]
		if m == nil {
			m = make(map[string]struct{})
			t.idx[c][vk] = m
		}
		m[k] = struct{}{}
	}
	return true
}

// Delete removes a row; it reports whether the table changed.
func (t *Table) Delete(r Row) bool {
	k := r.key()
	row, ok := t.rows[k]
	if !ok {
		return false
	}
	delete(t.rows, k)
	for c, v := range row {
		vk := valKey(v)
		if m := t.idx[c][vk]; m != nil {
			delete(m, k)
			if len(m) == 0 {
				delete(t.idx[c], vk)
			}
		}
	}
	return true
}

// Scan calls fn for every row.
func (t *Table) Scan(st *Stats, fn func(Row) bool) {
	for _, r := range t.rows {
		if st != nil {
			st.RowsScanned++
		}
		if !fn(r) {
			return
		}
	}
}

// Probe calls fn for every row whose column col holds v, using the index.
func (t *Table) Probe(st *Stats, col int, v Val, fn func(Row) bool) {
	if st != nil {
		st.IndexProbes++
	}
	for k := range t.idx[col][valKey(v)] {
		if st != nil {
			st.RowsScanned++
		}
		if !fn(t.rows[k]) {
			return
		}
	}
}

// Rows returns all rows, sorted by key for deterministic output.
func (t *Table) Rows() []Row {
	keys := make([]string, 0, len(t.rows))
	for k := range t.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Row, len(keys))
	for i, k := range keys {
		out[i] = t.rows[k]
	}
	return out
}

func valKey(v Val) string {
	return fmt.Sprintf("%d:%v", int(v.Kind), v)
}

// OIDVal wraps an OID as a column value.
func OIDVal(oid oem.OID) Val { return oem.String_(string(oid)) }

// StrVal wraps a string as a column value.
func StrVal(s string) Val { return oem.String_(s) }
