package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"time"
)

// This file is the overload side of the read workload: a closed-loop
// generator whose every request carries a deadline budget (the wire
// protocol's budget_ms field) and whose result separates *goodput* —
// answers that arrived within the budget — from dead answers, typed
// sheds and failures. E17 and cmd/gsdbload drive it against protected
// and unprotected servers to measure what admission control buys.

// overloadedMarker identifies a typed retryable shed in a response's
// error string (warehouse.ErrOverloaded's message; workload sits below
// warehouse in the dependency order, so the marker is repeated here).
const overloadedMarker = "overloaded (retryable)"

// BudgetedReadConfig configures RunBudgetedReadLoad.
type BudgetedReadConfig struct {
	// Addrs are the servers to read from; clients are spread across
	// them round-robin.
	Addrs []string
	// Clients is the total number of concurrent reader connections
	// (default 4). Offered load scales with it: a closed-loop client
	// keeps exactly one request in flight.
	Clients int
	// Duration is how long to drive reads (default 1s).
	Duration time.Duration
	// Warmup, when positive, extends the run by an unmeasured ramp-up:
	// requests sent before it elapses are not counted, so closed-loop
	// results reflect steady state rather than the empty-queue start.
	Warmup time.Duration
	// Queries are full query statements driven via the "query" op.
	Queries []string
	// Views are view names driven via the "members" op.
	Views []string
	// Objects are OIDs driven via the "object" op.
	Objects []string
	// Budget is the per-request deadline budget, stamped into every
	// frame as budget_ms; an answer arriving after it is a dead answer
	// (Late), not goodput (default 25ms).
	Budget time.Duration
	// ShedBackoff is how long a client waits after a shed before
	// retrying — the client half of the retryable-overload contract
	// (default 5ms).
	ShedBackoff time.Duration
	// Seed seeds per-client request interleaving (default 1).
	Seed int64
}

// BudgetedReadResult aggregates one RunBudgetedReadLoad run.
type BudgetedReadResult struct {
	// Good counts answers that arrived within the budget: the goodput.
	Good uint64
	// Late counts dead answers — successful responses that arrived
	// after the budget, when the caller had already given up.
	Late uint64
	// Sheds counts typed retryable overload sheds (ErrOverloaded,
	// ErrDraining, ErrBudgetExpired on the wire).
	Sheds uint64
	// Rejected counts other server-side errors.
	Rejected uint64
	// Errors counts transport-level failures (dial, write, read).
	Errors uint64
	// Elapsed is the measured wall-clock window.
	Elapsed time.Duration
	// Latencies holds every successful answer's latency in seconds
	// (good and late alike), for percentile reporting.
	Latencies []float64
}

// Goodput is the within-budget read throughput per second.
func (r BudgetedReadResult) Goodput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Good) / r.Elapsed.Seconds()
}

// P99 is the 99th-percentile answer latency in seconds (0 when no
// answer arrived).
func (r BudgetedReadResult) P99() float64 {
	if len(r.Latencies) == 0 {
		return 0
	}
	s := append([]float64(nil), r.Latencies...)
	sort.Float64s(s)
	i := (len(s)*99 + 99) / 100
	if i < 1 {
		i = 1
	}
	if i > len(s) {
		i = len(s)
	}
	return s[i-1]
}

// String summarizes the result for logs.
func (r BudgetedReadResult) String() string {
	return fmt.Sprintf("%d good in %s (%.0f good/s, p99 %.2fms, %d late, %d shed, %d rejected, %d errors)",
		r.Good, r.Elapsed.Round(time.Millisecond), r.Goodput(), r.P99()*1e3,
		r.Late, r.Sheds, r.Rejected, r.Errors)
}

// budgetRequest is the wire shape of a budgeted read: one of the three
// read ops plus the deadline budget (warehouse netRequest subset).
type budgetRequest struct {
	Op       string `json:"op"`
	OID      string `json:"oid,omitempty"`
	View     string `json:"view,omitempty"`
	Query    string `json:"query,omitempty"`
	BudgetMS int64  `json:"budget_ms,omitempty"`
	// DeadlineUnixMS is the absolute deadline (send time + budget). The
	// generator always runs against same-host servers, where absolute
	// deadlines are skew-free and let the server shed dead-on-arrival
	// requests whose budget burned in upstream queues.
	DeadlineUnixMS int64 `json:"deadline_unix_ms,omitempty"`
}

// RunBudgetedReadLoad drives closed-loop budgeted reads against
// cfg.Addrs for cfg.Duration. Each client owns one "query"-mode TCP
// connection and keeps one request in flight; sheds back off briefly
// and retry, transport errors redial, and every answer is classified
// against the budget it was stamped with.
func RunBudgetedReadLoad(cfg BudgetedReadConfig) BudgetedReadResult {
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 25 * time.Millisecond
	}
	if cfg.ShedBackoff <= 0 {
		cfg.ShedBackoff = 5 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	var res BudgetedReadResult
	if len(cfg.Addrs) == 0 || (len(cfg.Queries) == 0 && len(cfg.Views) == 0 && len(cfg.Objects) == 0) {
		return res
	}
	// The IO deadline is generous on purpose: the run must *observe*
	// dead answers from an unprotected server to count them as Late.
	ioTimeout := 8 * cfg.Budget
	if ioTimeout < 2*time.Second {
		ioTimeout = 2 * time.Second
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	stop := make(chan struct{})
	start := time.Now()
	measureFrom := start.Add(cfg.Warmup)
	for i := 0; i < cfg.Clients; i++ {
		addr := cfg.Addrs[i%len(cfg.Addrs)]
		wg.Add(1)
		go func(addr string, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var local BudgetedReadResult
			defer func() {
				mu.Lock()
				res.Good += local.Good
				res.Late += local.Late
				res.Sheds += local.Sheds
				res.Rejected += local.Rejected
				res.Errors += local.Errors
				res.Latencies = append(res.Latencies, local.Latencies...)
				mu.Unlock()
			}()
			var conn net.Conn
			var br *bufio.Reader
			dial := func() bool {
				var err error
				conn, err = net.DialTimeout("tcp", addr, ioTimeout)
				if err != nil {
					local.Errors++
					return false
				}
				if _, err := conn.Write([]byte("query\n")); err != nil {
					local.Errors++
					conn.Close()
					conn = nil
					return false
				}
				br = bufio.NewReader(conn)
				return true
			}
			defer func() {
				if conn != nil {
					conn.Close()
				}
			}()
			pause := func(d time.Duration) bool {
				select {
				case <-stop:
					return false
				case <-time.After(d):
					return true
				}
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if conn == nil && !dial() {
					if !pause(10 * time.Millisecond) {
						return
					}
					continue
				}
				req := budgetRequest{BudgetMS: cfg.Budget.Milliseconds()}
				switch {
				case len(cfg.Queries) > 0:
					req.Op = "query"
					req.Query = cfg.Queries[rng.Intn(len(cfg.Queries))]
				case len(cfg.Views) > 0 && (len(cfg.Objects) == 0 || rng.Intn(2) == 0):
					req.Op = "members"
					req.View = cfg.Views[rng.Intn(len(cfg.Views))]
				default:
					req.Op = "object"
					req.OID = cfg.Objects[rng.Intn(len(cfg.Objects))]
				}
				sent := time.Now()
				req.DeadlineUnixMS = sent.Add(cfg.Budget).UnixMilli()
				frame, err := json.Marshal(req)
				if err != nil {
					local.Errors++
					return
				}
				_ = conn.SetDeadline(sent.Add(ioTimeout))
				if _, err := conn.Write(append(frame, '\n')); err != nil {
					local.Errors++
					conn.Close()
					conn = nil
					continue
				}
				line, err := br.ReadBytes('\n')
				if err != nil {
					local.Errors++
					conn.Close()
					conn = nil
					continue
				}
				lat := time.Since(sent)
				var resp readResponse
				if err := json.Unmarshal(line, &resp); err != nil {
					local.Errors++
					conn.Close()
					conn = nil
					continue
				}
				measured := !sent.Before(measureFrom)
				if resp.Err != "" {
					if strings.Contains(resp.Err, overloadedMarker) {
						if measured {
							local.Sheds++
						}
						// Jittered backoff: a synchronized herd of shed
						// clients re-offering in lockstep would defeat
						// the shedding.
						backoff := cfg.ShedBackoff/2 + time.Duration(rng.Int63n(int64(cfg.ShedBackoff)))
						if !pause(backoff) {
							return
						}
					} else if measured {
						local.Rejected++
					}
					continue
				}
				if !measured {
					continue
				}
				local.Latencies = append(local.Latencies, lat.Seconds())
				if lat <= cfg.Budget {
					local.Good++
				} else {
					local.Late++
				}
			}
		}(addr, cfg.Seed+int64(i)*7919)
	}
	timer := time.NewTimer(cfg.Warmup + cfg.Duration)
	<-timer.C
	// The measured window closes now; wg.Wait below only lets in-flight
	// requests finish (their answers may still be classified, a
	// negligible overshoot) — the wait must not stretch Elapsed, or slow
	// stragglers would deflate the computed rates.
	res.Elapsed = time.Since(measureFrom)
	close(stop)
	wg.Wait()
	return res
}
