package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// This file is the read side of the workload package: a load generator
// that drives view reads against warehouse wire-protocol servers
// (primaries or replicas) and measures throughput. It speaks the raw
// line-delimited JSON protocol directly — workload sits below warehouse
// in the dependency order, and a reader needs only two request shapes —
// so it can hammer any number of addresses without sharing client
// machinery (each connection is independent, like real readers).

// ReadLoadConfig configures RunReadLoad.
type ReadLoadConfig struct {
	// Addrs are the servers to read from; clients are spread across them
	// round-robin.
	Addrs []string
	// Clients is the total number of concurrent reader connections
	// (default 4).
	Clients int
	// Duration is how long to drive reads (default 1s).
	Duration time.Duration
	// Views are the view names to query via the "members" op; one is
	// picked per request. Empty means Objects must be set.
	Views []string
	// Objects, when non-empty, mixes in "object" fetches of these OIDs
	// (half the requests, alternating with members reads).
	Objects []OIDList
	// Seed seeds per-client request interleaving (default 1).
	Seed int64
	// IOTimeout bounds each request round trip (default 5s).
	IOTimeout time.Duration
}

// OIDList is one server's fetchable OIDs (index-aligned with Addrs when
// lengths match; otherwise list 0 is used for every server).
type OIDList []string

// ReadLoadResult aggregates one RunReadLoad run.
type ReadLoadResult struct {
	// Reads is the number of successful read responses.
	Reads uint64
	// Rejected counts reads the server refused (staleness gate, stale
	// view): the connection survived, the response carried an error.
	Rejected uint64
	// Errors counts transport-level failures (dial, write, read).
	Errors uint64
	// Elapsed is the measured wall-clock window.
	Elapsed time.Duration
	// PerAddr is the successful-read count by server address.
	PerAddr map[string]uint64
}

// QPS is the successful read throughput.
func (r ReadLoadResult) QPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Reads) / r.Elapsed.Seconds()
}

// readRequest is the wire shape of the two read ops this generator
// drives ("members" and "object"); it mirrors the warehouse protocol's
// query-mode request frame.
type readRequest struct {
	Op   string `json:"op"`
	OID  string `json:"oid,omitempty"`
	View string `json:"view,omitempty"`
}

// readResponse is the subset of the response frame the generator needs.
type readResponse struct {
	Err     string   `json:"err,omitempty"`
	Members []string `json:"members,omitempty"`
	Objects []any    `json:"objects,omitempty"`
}

// RunReadLoad drives concurrent view reads against cfg.Addrs for
// cfg.Duration and reports aggregate throughput. Each client owns one
// TCP connection in "query" mode and issues requests back to back; a
// transport error tears the connection down and the client redials, so
// a flaky server costs throughput rather than aborting the run.
func RunReadLoad(cfg ReadLoadConfig) ReadLoadResult {
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = 5 * time.Second
	}
	res := ReadLoadResult{PerAddr: make(map[string]uint64, len(cfg.Addrs))}
	if len(cfg.Addrs) == 0 || (len(cfg.Views) == 0 && len(cfg.Objects) == 0) {
		return res
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	stop := make(chan struct{})
	start := time.Now()
	for i := 0; i < cfg.Clients; i++ {
		addr := cfg.Addrs[i%len(cfg.Addrs)]
		objs := OIDList{}
		if len(cfg.Objects) == len(cfg.Addrs) {
			objs = cfg.Objects[i%len(cfg.Addrs)]
		} else if len(cfg.Objects) > 0 {
			objs = cfg.Objects[0]
		}
		wg.Add(1)
		go func(addr string, objs OIDList, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var reads, rejected, errors uint64
			defer func() {
				mu.Lock()
				res.Reads += reads
				res.Rejected += rejected
				res.Errors += errors
				res.PerAddr[addr] += reads
				mu.Unlock()
			}()
			var conn net.Conn
			var br *bufio.Reader
			dial := func() bool {
				var err error
				conn, err = net.DialTimeout("tcp", addr, cfg.IOTimeout)
				if err != nil {
					errors++
					return false
				}
				if _, err := conn.Write([]byte("query\n")); err != nil {
					errors++
					conn.Close()
					conn = nil
					return false
				}
				br = bufio.NewReader(conn)
				return true
			}
			defer func() {
				if conn != nil {
					conn.Close()
				}
			}()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if conn == nil && !dial() {
					select {
					case <-stop:
						return
					case <-time.After(10 * time.Millisecond):
					}
					continue
				}
				req := readRequest{}
				if len(objs) > 0 && (len(cfg.Views) == 0 || rng.Intn(2) == 0) {
					req.Op = "object"
					req.OID = objs[rng.Intn(len(objs))]
				} else {
					req.Op = "members"
					req.View = cfg.Views[rng.Intn(len(cfg.Views))]
				}
				frame, err := json.Marshal(req)
				if err != nil {
					errors++
					return
				}
				_ = conn.SetDeadline(time.Now().Add(cfg.IOTimeout))
				if _, err := conn.Write(append(frame, '\n')); err != nil {
					errors++
					conn.Close()
					conn = nil
					continue
				}
				line, err := br.ReadBytes('\n')
				if err != nil {
					errors++
					conn.Close()
					conn = nil
					continue
				}
				var resp readResponse
				if err := json.Unmarshal(line, &resp); err != nil {
					errors++
					conn.Close()
					conn = nil
					continue
				}
				if resp.Err != "" {
					rejected++
					continue
				}
				reads++
			}
		}(addr, objs, cfg.Seed+int64(i)*7919)
	}
	timer := time.NewTimer(cfg.Duration)
	<-timer.C
	close(stop)
	wg.Wait()
	res.Elapsed = time.Since(start)
	return res
}

// String summarizes the result for logs.
func (r ReadLoadResult) String() string {
	return fmt.Sprintf("%d reads in %s (%.0f qps, %d rejected, %d errors)",
		r.Reads, r.Elapsed.Round(time.Millisecond), r.QPS(), r.Rejected, r.Errors)
}
