// Package workload builds the synthetic graph structured databases and
// update streams used by the tests, the examples and the benchmark
// harness. It includes the paper's own examples — the Figure 1 object
// graph, the Figure 2 PERSON database, and the Figure 5 relation-like
// database of Example 7 — plus parameterized generators for trees, deep
// label chains and DAGs, and seeded update streams.
package workload

import (
	"fmt"
	"math/rand"

	"gsv/internal/oem"
	"gsv/internal/store"
)

// PersonOIDs lists the member OIDs of the paper's PERSON database
// (Example 2), excluding the database object itself.
var PersonOIDs = []oem.OID{
	"ROOT", "P1", "P2", "P3", "P4",
	"N1", "A1", "S1", "N2", "ADD2", "N3", "A3", "M3", "N4", "A4",
}

// PersonDB loads the paper's Example 2 objects into s and creates the
// PERSON database object grouping them. It returns the database OID.
//
//	<ROOT, person, set, {P1,P2,P3,P4}>
//	  <P1, professor, set, {N1,A1,S1,P3}> with name John, age 45, salary $100k
//	  <P3, student, set, {N3,A3,M3}> with name John, age 20, major education
//	  <P2, professor, set, {N2,ADD2}> with name Sally, address Palo Alto
//	  <P4, secretary, set, {N4,A4}> with name Tom, age 40
func PersonDB(s *store.Store) oem.OID {
	s.MustPut(oem.NewSet("ROOT", "person", "P1", "P2", "P3", "P4"))
	s.MustPut(oem.NewSet("P1", "professor", "N1", "A1", "S1", "P3"))
	s.MustPut(oem.NewAtom("N1", "name", oem.String_("John")))
	s.MustPut(oem.NewAtom("A1", "age", oem.Int(45)))
	s.MustPut(oem.NewTypedAtom("S1", "salary", "dollar", oem.Int(100000)))
	s.MustPut(oem.NewSet("P3", "student", "N3", "A3", "M3"))
	s.MustPut(oem.NewAtom("N3", "name", oem.String_("John")))
	s.MustPut(oem.NewAtom("A3", "age", oem.Int(20)))
	s.MustPut(oem.NewAtom("M3", "major", oem.String_("education")))
	s.MustPut(oem.NewSet("P2", "professor", "N2", "ADD2"))
	s.MustPut(oem.NewAtom("N2", "name", oem.String_("Sally")))
	s.MustPut(oem.NewAtom("ADD2", "address", oem.String_("Palo Alto")))
	s.MustPut(oem.NewSet("P4", "secretary", "N4", "A4"))
	s.MustPut(oem.NewAtom("N4", "name", oem.String_("Tom")))
	s.MustPut(oem.NewAtom("A4", "age", oem.Int(40)))
	if err := s.NewDatabase("PERSON", "database", PersonOIDs...); err != nil {
		panic(err)
	}
	return "PERSON"
}

// FigureOneDB loads the seven-object graph of the paper's Figure 1 (objects
// A–G with parent-child edges A→B, A→E, B→C, B→D, D→F, E→F, F→G, C→G) and
// returns the root OID A. Leaves are atomic; interior nodes are sets.
func FigureOneDB(s *store.Store) oem.OID {
	s.MustPut(oem.NewSet("A", "a", "B", "E"))
	s.MustPut(oem.NewSet("B", "b", "C", "D"))
	s.MustPut(oem.NewSet("C", "c", "G"))
	s.MustPut(oem.NewSet("D", "d", "F"))
	s.MustPut(oem.NewSet("E", "e", "F"))
	s.MustPut(oem.NewSet("F", "f", "G"))
	s.MustPut(oem.NewAtom("G", "g", oem.Int(7)))
	return "A"
}

// RelationConfig parameterizes the relation-like database of Example 7 /
// Figure 5: a REL root whose children are "relations", each holding
// "tuple" children, each tuple holding atomic fields.
type RelationConfig struct {
	// Relations is the number of relation objects under REL.
	Relations int
	// TuplesPerRelation is the number of tuple objects per relation.
	TuplesPerRelation int
	// FieldsPerTuple is the number of atomic fields per tuple; the first
	// field is always an integer "age" so views can select on it.
	FieldsPerTuple int
	// AgeRange bounds the generated age values: ages are uniform in
	// [0, AgeRange). Zero means 100.
	AgeRange int
	// Seed drives the deterministic random generator.
	Seed int64
}

// Relation describes one generated relation.
type Relation struct {
	OID    oem.OID
	Name   string
	Tuples []oem.OID
}

// RelationDB is the handle returned by RelationLike.
type RelationDB struct {
	Root      oem.OID // the REL object
	DB        oem.OID // the database object listing every OID
	Relations []Relation
}

// RelationLike builds the Figure 5 database: REL with relation children
// r0, r1, ..., each with tuple children, each tuple with an age field and
// FieldsPerTuple-1 string fields. It returns handles to the generated
// structure for use by update streams.
func RelationLike(s *store.Store, cfg RelationConfig) *RelationDB {
	if cfg.AgeRange <= 0 {
		cfg.AgeRange = 100
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := &RelationDB{Root: "REL"}
	all := []oem.OID{"REL"}
	var relOIDs []oem.OID
	for r := 0; r < cfg.Relations; r++ {
		rel := Relation{
			OID:  oem.OID(fmt.Sprintf("R%d", r)),
			Name: fmt.Sprintf("r%d", r),
		}
		var tupleOIDs []oem.OID
		for t := 0; t < cfg.TuplesPerRelation; t++ {
			toid := oem.OID(fmt.Sprintf("T%d_%d", r, t))
			var fields []oem.OID
			ageOID := oem.OID(fmt.Sprintf("F%d_%d_age", r, t))
			s.MustPut(oem.NewAtom(ageOID, "age", oem.Int(int64(rng.Intn(cfg.AgeRange)))))
			fields = append(fields, ageOID)
			all = append(all, ageOID)
			for f := 1; f < cfg.FieldsPerTuple; f++ {
				foid := oem.OID(fmt.Sprintf("F%d_%d_%d", r, t, f))
				s.MustPut(oem.NewAtom(foid, fmt.Sprintf("f%d", f), oem.String_(fmt.Sprintf("v%d", rng.Intn(1000)))))
				fields = append(fields, foid)
				all = append(all, foid)
			}
			s.MustPut(oem.NewSet(toid, "tuple", fields...))
			tupleOIDs = append(tupleOIDs, toid)
			all = append(all, toid)
		}
		s.MustPut(oem.NewSet(rel.OID, rel.Name, tupleOIDs...))
		rel.Tuples = tupleOIDs
		relOIDs = append(relOIDs, rel.OID)
		all = append(all, rel.OID)
		db.Relations = append(db.Relations, rel)
	}
	s.MustPut(oem.NewSet("REL", "relations", relOIDs...))
	dbOID := oem.OID("RELDB")
	if err := s.NewDatabase(dbOID, "database", all...); err != nil {
		panic(err)
	}
	db.DB = dbOID
	return db
}

// DeepChain builds a database that is a chain of set objects of the given
// depth — C0.l.l.l...l — ending in an atomic "age" leaf, with `width`
// irrelevant sibling leaves at every level to give traversals something to
// wade through. It returns the root OID and the leaf OID. Deep chains make
// the cost of path(ROOT,N) and ancestor(N,p) without a parent index visible
// (experiment E2).
func DeepChain(s *store.Store, depth, width int) (root, leaf oem.OID) {
	if depth < 1 {
		depth = 1
	}
	root = "C0"
	prev := oem.NoOID
	for d := depth; d >= 0; d-- {
		oid := oem.OID(fmt.Sprintf("C%d", d))
		var kids []oem.OID
		if prev != oem.NoOID {
			kids = append(kids, prev)
		}
		for w := 0; w < width; w++ {
			woid := oem.OID(fmt.Sprintf("W%d_%d", d, w))
			s.MustPut(oem.NewAtom(woid, "pad", oem.Int(int64(w))))
			kids = append(kids, woid)
		}
		if d == depth {
			leaf = oem.OID(fmt.Sprintf("L%d", d))
			s.MustPut(oem.NewAtom(leaf, "age", oem.Int(30)))
			kids = append(kids, leaf)
		}
		s.MustPut(oem.NewSet(oid, "l", kids...))
		prev = oid
	}
	return "C0", leaf
}

// TreeConfig parameterizes RandomTree.
type TreeConfig struct {
	// Depth is the tree height below the root.
	Depth int
	// Fanout is the number of children per interior node.
	Fanout int
	// Labels is the label vocabulary for interior nodes; leaves cycle
	// through "name" (string), "age" (int) and "score" (float).
	Labels []string
	// Seed drives the deterministic random generator.
	Seed int64
}

// TreeDB is the handle returned by RandomTree.
type TreeDB struct {
	Root oem.OID
	DB   oem.OID
	// Interior and Leaves list the generated set and atomic objects.
	Interior []oem.OID
	Leaves   []oem.OID
}

// RandomTree builds a random tree with the given shape and returns handles
// to its parts. OIDs are "n<k>" for interior nodes and "a<k>" for leaves.
func RandomTree(s *store.Store, cfg TreeConfig) *TreeDB {
	if len(cfg.Labels) == 0 {
		cfg.Labels = []string{"item", "part", "widget"}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := &TreeDB{Root: "n0"}
	var all []oem.OID
	counter := 0
	var leafCounter int
	var build func(depth int) oem.OID
	build = func(depth int) oem.OID {
		oid := oem.OID(fmt.Sprintf("n%d", counter))
		counter++
		all = append(all, oid)
		db.Interior = append(db.Interior, oid)
		var kids []oem.OID
		for f := 0; f < cfg.Fanout; f++ {
			if depth <= 1 {
				leaf := oem.OID(fmt.Sprintf("a%d", leafCounter))
				leafCounter++
				switch leafCounter % 3 {
				case 0:
					s.MustPut(oem.NewAtom(leaf, "name", oem.String_(fmt.Sprintf("name%d", rng.Intn(50)))))
				case 1:
					s.MustPut(oem.NewAtom(leaf, "age", oem.Int(int64(rng.Intn(100)))))
				default:
					s.MustPut(oem.NewAtom(leaf, "score", oem.Float(rng.Float64()*100)))
				}
				kids = append(kids, leaf)
				all = append(all, leaf)
				db.Leaves = append(db.Leaves, leaf)
			} else {
				kids = append(kids, build(depth-1))
			}
		}
		label := cfg.Labels[rng.Intn(len(cfg.Labels))]
		if oid == "n0" {
			label = "root"
		}
		s.MustPut(oem.NewSet(oid, label, kids...))
		return oid
	}
	// Build children-first ordering requires care: build() Puts the node
	// after its children, so the root Put happens last; the store permits
	// dangling references anyway.
	build(cfg.Depth)
	db.DB = "TREEDB"
	if err := s.NewDatabase(db.DB, "database", all...); err != nil {
		panic(err)
	}
	return db
}
