package workload

import (
	"fmt"
	"math/rand"

	"gsv/internal/oem"
	"gsv/internal/store"
)

// Mix gives the relative weights of the three basic update kinds in a
// generated stream. Weights need not sum to any particular value.
type Mix struct {
	Insert int
	Delete int
	Modify int
}

// DefaultMix is an update mix dominated by modifications, with some churn.
var DefaultMix = Mix{Insert: 2, Delete: 1, Modify: 7}

// StreamConfig parameterizes an update stream.
type StreamConfig struct {
	Mix  Mix
	Seed int64
	// InsertLabel is the label given to newly created atomic children; the
	// default "age" makes inserts relevant to the standard benchmark views.
	InsertLabel string
	// ValueRange bounds generated integer values: [0, ValueRange). Zero
	// means 100.
	ValueRange int
}

// Stream generates a deterministic sequence of valid basic updates against
// a store. It tracks the set objects and atomic objects it can target and
// the edges it has added, so deletes always name existing edges.
type Stream struct {
	cfg     StreamConfig
	rng     *rand.Rand
	s       *store.Store
	sets    []oem.OID
	atoms   []oem.OID
	created int
	// removable tracks (parent, child) edges this stream inserted and has
	// not yet deleted, so deletions never damage the base fixture.
	removable [][2]oem.OID
}

// NewStream builds a stream over s targeting the given set objects (as
// insertion points) and atomic objects (as modify targets).
func NewStream(s *store.Store, cfg StreamConfig, sets, atoms []oem.OID) *Stream {
	if cfg.ValueRange <= 0 {
		cfg.ValueRange = 100
	}
	if cfg.InsertLabel == "" {
		cfg.InsertLabel = "age"
	}
	if cfg.Mix == (Mix{}) {
		cfg.Mix = DefaultMix
	}
	return &Stream{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		s:     s,
		sets:  append([]oem.OID(nil), sets...),
		atoms: append([]oem.OID(nil), atoms...),
	}
}

// Next applies one random update to the store and returns the logged
// updates it produced (an insert of a fresh atom produces a create followed
// by an insert). It reports false if no update could be generated.
func (st *Stream) Next() ([]store.Update, bool) {
	total := st.cfg.Mix.Insert + st.cfg.Mix.Delete + st.cfg.Mix.Modify
	if total == 0 || (len(st.sets) == 0 && len(st.atoms) == 0) {
		return nil, false
	}
	before := st.s.Seq()
	for attempts := 0; attempts < 10; attempts++ {
		r := st.rng.Intn(total)
		var err error
		switch {
		case r < st.cfg.Mix.Insert:
			err = st.doInsert()
		case r < st.cfg.Mix.Insert+st.cfg.Mix.Delete:
			err = st.doDelete()
		default:
			err = st.doModify()
		}
		if err == nil && st.s.Seq() > before {
			return st.s.LogSince(before), true
		}
	}
	return nil, false
}

// Run applies n updates and returns the flattened logged updates.
func (st *Stream) Run(n int) []store.Update {
	var out []store.Update
	for i := 0; i < n; i++ {
		us, ok := st.Next()
		if !ok {
			break
		}
		out = append(out, us...)
	}
	return out
}

func (st *Stream) doInsert() error {
	if len(st.sets) == 0 {
		return errNoTarget
	}
	parent := st.sets[st.rng.Intn(len(st.sets))]
	st.created++
	oid := oem.OID(fmt.Sprintf("u%d_%d", st.cfg.Seed, st.created))
	atom := oem.NewAtom(oid, st.cfg.InsertLabel, oem.Int(int64(st.rng.Intn(st.cfg.ValueRange))))
	if err := st.s.Put(atom); err != nil {
		return err
	}
	if err := st.s.Insert(parent, oid); err != nil {
		return err
	}
	st.atoms = append(st.atoms, oid)
	st.removable = append(st.removable, [2]oem.OID{parent, oid})
	return nil
}

func (st *Stream) doDelete() error {
	if len(st.removable) == 0 {
		return errNoTarget
	}
	i := st.rng.Intn(len(st.removable))
	edge := st.removable[i]
	st.removable[i] = st.removable[len(st.removable)-1]
	st.removable = st.removable[:len(st.removable)-1]
	return st.s.Delete(edge[0], edge[1])
}

func (st *Stream) doModify() error {
	if len(st.atoms) == 0 {
		return errNoTarget
	}
	target := st.atoms[st.rng.Intn(len(st.atoms))]
	if !st.s.Has(target) {
		return errNoTarget
	}
	return st.s.Modify(target, oem.Int(int64(st.rng.Intn(st.cfg.ValueRange))))
}

var errNoTarget = fmt.Errorf("workload: no valid update target")
