package workload

import (
	"testing"

	"gsv/internal/oem"
	"gsv/internal/store"
)

func TestPersonDBMatchesFigure2(t *testing.T) {
	s := store.NewDefault()
	db := PersonDB(s)
	if db != "PERSON" {
		t.Fatalf("db = %s", db)
	}
	// 15 objects + the database object.
	if s.Len() != 16 {
		t.Fatalf("Len = %d, want 16", s.Len())
	}
	root, err := s.Get("ROOT")
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(root.Set, []oem.OID{"P1", "P2", "P3", "P4"}) {
		t.Fatalf("ROOT = %v", root.Set)
	}
	p1, _ := s.Get("P1")
	if p1.Label != "professor" || !p1.Contains("P3") {
		t.Fatalf("P1 = %v", p1)
	}
	a1, _ := s.Get("A1")
	if !a1.Atom.Equal(oem.Int(45)) {
		t.Fatalf("A1 = %v", a1)
	}
	s1, _ := s.Get("S1")
	if s1.Type != "dollar" {
		t.Fatalf("S1 type = %q", s1.Type)
	}
	members, _ := s.DatabaseMembers("PERSON")
	if len(members) != 15 {
		t.Fatalf("PERSON members = %d, want 15", len(members))
	}
}

func TestFigureOneDB(t *testing.T) {
	s := store.NewDefault()
	root := FigureOneDB(s)
	if root != "A" {
		t.Fatalf("root = %s", root)
	}
	if s.Len() != 7 {
		t.Fatalf("Len = %d, want 7", s.Len())
	}
	// F is reachable from both D and E (a DAG, not a tree).
	ps, err := s.Parents("F")
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(ps, []oem.OID{"D", "E"}) {
		t.Fatalf("Parents(F) = %v", ps)
	}
}

func TestRelationLikeShape(t *testing.T) {
	s := store.NewDefault()
	db := RelationLike(s, RelationConfig{Relations: 2, TuplesPerRelation: 3, FieldsPerTuple: 2, Seed: 1})
	if len(db.Relations) != 2 {
		t.Fatalf("relations = %d", len(db.Relations))
	}
	rel, err := s.Get("REL")
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Set) != 2 {
		t.Fatalf("REL children = %v", rel.Set)
	}
	r0, _ := s.Get(db.Relations[0].OID)
	if r0.Label != "r0" || len(r0.Set) != 3 {
		t.Fatalf("r0 = %v", r0)
	}
	tup, _ := s.Get(db.Relations[0].Tuples[0])
	if tup.Label != "tuple" || len(tup.Set) != 2 {
		t.Fatalf("tuple = %v", tup)
	}
	// First field is an integer age.
	age, _ := s.Get(tup.Set[0])
	if age.Label != "age" || age.Atom.Kind != oem.AtomInt {
		t.Fatalf("age field = %v", age)
	}
	// Total objects: REL + 2 relations + 6 tuples + 12 fields + database.
	if s.Len() != 22 {
		t.Fatalf("Len = %d, want 22", s.Len())
	}
}

func TestRelationLikeDeterministic(t *testing.T) {
	build := func() []string {
		s := store.NewDefault()
		RelationLike(s, RelationConfig{Relations: 2, TuplesPerRelation: 2, FieldsPerTuple: 3, Seed: 42})
		var out []string
		s.ForEach(func(o *oem.Object) { out = append(out, o.String()) })
		return out
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatal("different sizes")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("object %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestDeepChain(t *testing.T) {
	s := store.NewDefault()
	root, leaf := DeepChain(s, 5, 2)
	if root != "C0" {
		t.Fatalf("root = %s", root)
	}
	// Walk down the chain: 5 hops of label l reach C5 whose children
	// include the leaf.
	cur := root
	for d := 1; d <= 5; d++ {
		kids, err := s.Children(cur)
		if err != nil {
			t.Fatal(err)
		}
		next := oem.NoOID
		for _, k := range kids {
			o, _ := s.Get(k)
			if o.Label == "l" {
				next = k
			}
		}
		if next == oem.NoOID {
			t.Fatalf("no chain child under %s", cur)
		}
		cur = next
	}
	kids, _ := s.Children(cur)
	found := false
	for _, k := range kids {
		if k == leaf {
			found = true
		}
	}
	if !found {
		t.Fatalf("leaf %s not under %s", leaf, cur)
	}
	lo, _ := s.Get(leaf)
	if lo.Label != "age" {
		t.Fatalf("leaf label = %q", lo.Label)
	}
}

func TestRandomTree(t *testing.T) {
	s := store.NewDefault()
	db := RandomTree(s, TreeConfig{Depth: 3, Fanout: 2, Seed: 7})
	root, err := s.Get(db.Root)
	if err != nil {
		t.Fatal(err)
	}
	if root.Label != "root" || len(root.Set) != 2 {
		t.Fatalf("root = %v", root)
	}
	// Depth 3, fanout 2: 1+2+4 interior, 8 leaves.
	if len(db.Interior) != 7 {
		t.Fatalf("interior = %d, want 7", len(db.Interior))
	}
	if len(db.Leaves) != 8 {
		t.Fatalf("leaves = %d, want 8", len(db.Leaves))
	}
	for _, l := range db.Leaves {
		o, err := s.Get(l)
		if err != nil {
			t.Fatal(err)
		}
		if !o.IsAtomic() {
			t.Fatalf("leaf %s not atomic", l)
		}
	}
}

func TestStreamProducesValidUpdates(t *testing.T) {
	s := store.NewDefault()
	db := RelationLike(s, RelationConfig{Relations: 2, TuplesPerRelation: 5, FieldsPerTuple: 2, Seed: 3})
	var sets, atoms []oem.OID
	for _, r := range db.Relations {
		sets = append(sets, r.Tuples...)
		for _, tu := range r.Tuples {
			kids, _ := s.Children(tu)
			atoms = append(atoms, kids...)
		}
	}
	st := NewStream(s, StreamConfig{Seed: 9, Mix: Mix{Insert: 3, Delete: 2, Modify: 5}}, sets, atoms)
	updates := st.Run(200)
	if len(updates) < 200 {
		t.Fatalf("got %d logged updates, want >= 200", len(updates))
	}
	counts := map[store.UpdateKind]int{}
	for _, u := range updates {
		counts[u.Kind]++
	}
	for _, k := range []store.UpdateKind{store.UpdateInsert, store.UpdateDelete, store.UpdateModify} {
		if counts[k] == 0 {
			t.Errorf("no %v updates generated", k)
		}
	}
	if counts[store.UpdateDelete] > counts[store.UpdateInsert] {
		t.Errorf("more deletes (%d) than inserts (%d): stream deleted fixture edges",
			counts[store.UpdateDelete], counts[store.UpdateInsert])
	}
}

func TestStreamDeterministic(t *testing.T) {
	run := func() []string {
		s := store.NewDefault()
		db := RelationLike(s, RelationConfig{Relations: 1, TuplesPerRelation: 3, FieldsPerTuple: 2, Seed: 3})
		st := NewStream(s, StreamConfig{Seed: 11}, db.Relations[0].Tuples, nil)
		var out []string
		for _, u := range st.Run(50) {
			out = append(out, u.String())
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("update %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestStreamEmpty(t *testing.T) {
	s := store.NewDefault()
	st := NewStream(s, StreamConfig{Seed: 1}, nil, nil)
	if _, ok := st.Next(); ok {
		t.Fatal("stream with no targets produced an update")
	}
}
