package feed

import (
	"fmt"
	"sync"

	"gsv/internal/core"
	"gsv/internal/obs"
	"gsv/internal/oem"
	"gsv/internal/store"
)

// Hub is the changefeed fan-out point. One Hub serves any number of
// views; each view has its own cursor sequence, replay ring and
// subscriber set. All methods are safe for concurrent use; per-view
// event order is total even with concurrent publishers.
type Hub struct {
	opts Options

	mu    sync.Mutex
	views map[string]*viewFeed
	reg   *obs.Registry // nil until RegisterObs
}

// viewFeed is one view's cursor, ring and subscribers.
type viewFeed struct {
	// pubMu serializes publishes to this view so every subscriber sees
	// the same total order. Lock order: pubMu before Hub.mu.
	pubMu sync.Mutex

	cursor uint64  // last assigned cursor; 0 = nothing published yet
	ring   []Event // circular buffer, capacity Options.RingSize
	head   int     // index of the oldest retained event
	count  int     // retained events
	subs   map[*Subscription]struct{}
	// snapshot answers the full current membership for the
	// expired-cursor fallback; nil when the view was never registered.
	snapshot func() ([]oem.OID, error)

	// Instruments are always allocated (value fields, atomic, no lock)
	// and updated unconditionally; RegisterObs merely exposes them on a
	// registry. Because reads are atomic, a metrics scrape never takes
	// Hub.mu — no lock-order interaction with the publish path.
	events      obs.Counter // events published to this view
	dropped     obs.Counter // events evicted under PolicyDropOldest
	occupancy   obs.Gauge   // events currently retained in the ring
	subscribers obs.Gauge   // attached subscriptions
	maxLag      obs.Gauge   // most undelivered events buffered by any subscriber
}

// NewHub returns an empty hub.
func NewHub(o Options) *Hub {
	return &Hub{opts: o.withDefaults(), views: make(map[string]*viewFeed)}
}

// feedLocked returns the viewFeed for name, creating it if needed.
// Callers hold h.mu.
func (h *Hub) feedLocked(name string) *viewFeed {
	vf, ok := h.views[name]
	if !ok {
		vf = &viewFeed{
			ring: make([]Event, h.opts.RingSize),
			subs: make(map[*Subscription]struct{}),
		}
		h.views[name] = vf
		h.registerFeedLocked(name, vf)
	}
	return vf
}

// RegisterObs exposes every view feed's instruments on reg: event and
// drop counters, ring occupancy, subscriber count and the worst
// subscriber lag, all labeled by view. Feeds created later register
// automatically. The instruments are live either way; registration only
// adds exposition.
func (h *Hub) RegisterObs(reg *obs.Registry) {
	reg.Help("gsv_feed_events_total", "delta events published to the view's feed")
	reg.Help("gsv_feed_dropped_total", "events evicted by the drop-oldest slow-consumer policy")
	reg.Help("gsv_feed_ring_occupancy", "events currently retained in the replay ring")
	reg.Help("gsv_feed_subscribers", "subscriptions attached to the view's feed")
	reg.Help("gsv_feed_max_lag", "most undelivered events buffered by any subscriber")
	h.mu.Lock()
	defer h.mu.Unlock()
	h.reg = reg
	for name, vf := range h.views {
		h.registerFeedLocked(name, vf)
	}
}

// registerFeedLocked adopts one feed's instruments into the hub's
// registry, if any. Callers hold h.mu.
func (h *Hub) registerFeedLocked(name string, vf *viewFeed) {
	if h.reg == nil {
		return
	}
	lv := obs.L("view", name)
	h.reg.RegisterCounter("gsv_feed_events_total", &vf.events, lv)
	h.reg.RegisterCounter("gsv_feed_dropped_total", &vf.dropped, lv)
	h.reg.RegisterGauge("gsv_feed_ring_occupancy", &vf.occupancy, lv)
	h.reg.RegisterGauge("gsv_feed_subscribers", &vf.subscribers, lv)
	h.reg.RegisterGauge("gsv_feed_max_lag", &vf.maxLag, lv)
}

// RegisterView announces a view to the hub and installs its snapshot
// function, used as the fallback when a resume cursor has been evicted.
// snapshot may be nil; registering an existing view replaces it.
func (h *Hub) RegisterView(name string, snapshot func() ([]oem.OID, error)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.feedLocked(name).snapshot = snapshot
}

// Publish appends one delta event to a view's feed and fans it out. The
// cursor it was assigned is returned; empty deltas are not published and
// return 0. Publish is the core.DeltaObserver shape after currying the
// hub: maintainers call it once per successfully applied base update.
func (h *Hub) Publish(view string, u store.Update, d core.Deltas) uint64 {
	if len(d.Insert) == 0 && len(d.Delete) == 0 {
		return 0
	}
	return h.publish(Event{
		View: view, Seq: u.Seq, Kind: u.Kind.String(), N1: u.N1, N2: u.N2,
		Insert: append([]oem.OID(nil), d.Insert...),
		Delete: append([]oem.OID(nil), d.Delete...),
		Origin: u.Origin, TraceID: u.TraceID,
	})
}

// KindBatch is the Event.Kind of coalesced batch events.
const KindBatch = "batch"

// PublishBatch appends one coalesced event netting n base updates, as
// produced by a core.DeltaCoalescer: last is the final contributing
// update and d the net membership change. With n <= 1 it degrades to a
// plain Publish so single-update batches look exactly like the
// per-update feed. Empty deltas are not published and return 0 — a batch
// whose inserts and deletes cancelled entirely is invisible, which is
// consistent with replay semantics (the net change is nothing).
func (h *Hub) PublishBatch(view string, last store.Update, n int, d core.Deltas) uint64 {
	if len(d.Insert) == 0 && len(d.Delete) == 0 {
		return 0
	}
	if n <= 1 {
		return h.Publish(view, last, d)
	}
	return h.publish(Event{
		View: view, Seq: last.Seq, Kind: KindBatch, Updates: n,
		Insert: append([]oem.OID(nil), d.Insert...),
		Delete: append([]oem.OID(nil), d.Delete...),
		Origin: last.Origin, TraceID: last.TraceID,
	})
}

// BatchObserver adapts the hub to core.BatchObserver: install it with
// Registry.SetBatchObserver to get one cursored event per view per
// batch. The view's OID doubles as its feed name, as in Observer.
func (h *Hub) BatchObserver() core.BatchObserver {
	return func(view oem.OID, last store.Update, n int, d core.Deltas) {
		h.PublishBatch(string(view), last, n, d)
	}
}

// publish assigns ev a cursor on its view's feed and fans it out.
func (h *Hub) publish(ev Event) uint64 {
	view := ev.View

	h.mu.Lock()
	vf := h.feedLocked(view)
	h.mu.Unlock()

	vf.pubMu.Lock()
	defer vf.pubMu.Unlock()

	h.mu.Lock()
	vf.cursor++
	ev.Cursor = vf.cursor
	vf.append(ev)
	subs := make([]*Subscription, 0, len(vf.subs))
	for s := range vf.subs {
		subs = append(subs, s)
	}
	h.mu.Unlock()
	vf.events.Inc()
	vf.occupancy.Set(int64(vf.count))

	// Delivery happens outside h.mu so a blocking subscriber never
	// prevents other views from publishing or new subscribers from
	// attaching; pubMu keeps this view's order total.
	lag := 0
	for _, s := range subs {
		if !s.deliver(ev) {
			h.remove(s)
		}
		if n := len(s.ch); n > lag {
			lag = n
		}
	}
	vf.maxLag.Set(int64(lag))
	return ev.Cursor
}

// Observer adapts the hub to core.DeltaObserver for one published view
// name, for installing directly on a maintainer.
func (h *Hub) Observer(view string) core.DeltaObserver {
	return func(_ oem.OID, u store.Update, d core.Deltas) { h.Publish(view, u, d) }
}

// PublishEvent republishes an already-cursored event, assigning it the
// next cursor on its view's feed. Replicas use it (after RestoreCursor
// to ev.Cursor-1) to re-expose applied primary deltas on their own hub
// with the primary's cursor numbering preserved, so a consumer can move
// between primary and replica feeds without losing its place. Empty
// events are not published and return 0.
func (h *Hub) PublishEvent(ev Event) uint64 {
	if ev.Empty() {
		return 0
	}
	return h.publish(ev)
}

// Snapshot answers a view's full current membership together with the
// cursor it corresponds to, using the registered snapshot function. It
// is the server side of a snapshot-bootstrap: take a tail subscription
// first, then call Snapshot — events racing in between re-announce
// membership the snapshot already reflects, so appliers treat them as
// idempotent duplicates.
func (h *Hub) Snapshot(view string) (*Snapshot, error) {
	h.mu.Lock()
	vf, ok := h.views[view]
	if !ok {
		h.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknownView, view)
	}
	fn := vf.snapshot
	cursor := vf.cursor
	h.mu.Unlock()
	if fn == nil {
		return nil, fmt.Errorf("feed: view %s has no snapshot function", view)
	}
	members, err := fn()
	if err != nil {
		return nil, fmt.Errorf("feed: snapshot for %s: %w", view, err)
	}
	return &Snapshot{Cursor: cursor, Members: members}, nil
}

// append stores ev in the ring, evicting the oldest event when full.
func (vf *viewFeed) append(ev Event) {
	if len(vf.ring) == 0 {
		return
	}
	if vf.count < len(vf.ring) {
		vf.ring[(vf.head+vf.count)%len(vf.ring)] = ev
		vf.count++
		return
	}
	vf.ring[vf.head] = ev
	vf.head = (vf.head + 1) % len(vf.ring)
}

// oldestRetained is the cursor of the oldest event still in the ring;
// 0 when the ring is empty.
func (vf *viewFeed) oldestRetained() uint64 {
	if vf.count == 0 {
		return 0
	}
	return vf.cursor - uint64(vf.count) + 1
}

// replayAfter collects the retained events with cursors > from, oldest
// first.
func (vf *viewFeed) replayAfter(from uint64) []Event {
	var out []Event
	for i := 0; i < vf.count; i++ {
		ev := vf.ring[(vf.head+i)%len(vf.ring)]
		if ev.Cursor > from {
			out = append(out, ev)
		}
	}
	return out
}

// Subscribe attaches a subscriber to a view's feed. Without Resume the
// subscription starts at the current cursor (only future events are
// delivered). With Resume, events after SubOptions.From are replayed
// from the ring first — gap-free and duplicate-free — or, when the ring
// has already evicted them, Subscribe either fails with ErrCursorExpired
// or (with SnapshotOnExpire) delivers a full membership snapshot and
// tails from the current cursor.
func (h *Hub) Subscribe(view string, o SubOptions) (*Subscription, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	vf, ok := h.views[view]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownView, view)
	}

	var replay []Event
	var snap *Snapshot
	if o.Resume {
		switch {
		case o.From > vf.cursor:
			return nil, fmt.Errorf("%w: resume after %d, view at %d", ErrFutureCursor, o.From, vf.cursor)
		case o.From+1 >= vf.oldestRetained() || vf.cursor == 0:
			replay = vf.replayAfter(o.From)
		case o.SnapshotOnExpire && vf.snapshot != nil:
			members, err := vf.snapshot()
			if err != nil {
				return nil, fmt.Errorf("feed: snapshot fallback for %s: %w", view, err)
			}
			snap = &Snapshot{Cursor: vf.cursor, Members: members}
		default:
			return nil, fmt.Errorf("%w: resume after %d, oldest retained %d (ring %d)",
				ErrCursorExpired, o.From, vf.oldestRetained(), len(vf.ring))
		}
	}

	policy := h.opts.Policy
	if o.HasPolicy {
		policy = o.Policy
	}
	buffer := h.opts.Buffer
	if o.Buffer > 0 {
		buffer = o.Buffer
	}
	if buffer < len(replay) {
		buffer = len(replay) // replay must never block
	}
	if buffer < 1 {
		buffer = 1
	}

	s := &Subscription{
		hub: h, view: view, policy: policy,
		ch: make(chan Event, buffer), done: make(chan struct{}),
		snap: snap, drops: &vf.dropped,
	}
	for _, ev := range replay {
		s.ch <- ev
	}
	vf.subs[s] = struct{}{}
	vf.subscribers.Set(int64(len(vf.subs)))
	return s, nil
}

// remove detaches a subscription from its view.
func (h *Hub) remove(s *Subscription) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if vf, ok := h.views[s.view]; ok {
		delete(vf.subs, s)
		vf.subscribers.Set(int64(len(vf.subs)))
	}
}

// RestoreCursor advances a view's cursor to at least c without
// publishing an event. Recovery uses it after a restart so cursors
// persisted by subscribers (gsdbwatch -state) stay meaningful: events
// published after recovery never reuse cursor numbers that were handed
// out before the crash. The ring starts empty, so a resume from a
// restored cursor falls back to the registered snapshot, which is
// exactly the membership the recovered view serves.
func (h *Hub) RestoreCursor(view string, c uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	vf := h.feedLocked(view)
	if c > vf.cursor {
		vf.cursor = c
	}
}

// Cursor returns a view's last assigned cursor; ok is false for views
// the hub has never seen.
func (h *Hub) Cursor(view string) (uint64, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	vf, ok := h.views[view]
	if !ok {
		return 0, false
	}
	return vf.cursor, true
}

// OldestRetained returns the cursor of the oldest event a view's ring
// still holds (0 when nothing is retained).
func (h *Hub) OldestRetained(view string) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	vf, ok := h.views[view]
	if !ok {
		return 0
	}
	return vf.oldestRetained()
}

// Views returns the names the hub knows, unsorted.
func (h *Hub) Views() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.views))
	for name := range h.views {
		out = append(out, name)
	}
	return out
}

// Subscribers returns how many subscriptions a view currently has.
func (h *Hub) Subscribers(view string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	vf, ok := h.views[view]
	if !ok {
		return 0
	}
	return len(vf.subs)
}
