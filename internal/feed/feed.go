// Package feed is the view-delta changefeed: it turns the membership
// deltas Algorithm 1 computes during incremental maintenance into a
// durable-enough event stream that downstream consumers can tail, instead
// of re-querying or re-snapshotting views after every base update.
//
// A Hub assigns each view an independent, monotonically increasing cursor,
// buffers the most recent events in a bounded per-view ring, and fans them
// out to any number of subscribers. A subscriber that disconnects can
// resume from its last cursor and — as long as the ring still holds the
// missed events — observes exactly the delta sequence an always-connected
// subscriber saw, with no gaps and no duplicates. When the cursor has
// been evicted from the ring, Subscribe fails with ErrCursorExpired; the
// subscriber then falls back to a full snapshot of the current membership
// (SubOptions.SnapshotOnExpire) and tails from the current cursor.
//
// The package is deliberately independent of where views live: the
// centralized Registry and the distributed Warehouse both publish through
// the same core.DeltaObserver hook, and internal/warehouse/net.go exposes
// a Hub over TCP as the "subscribe" connection mode.
package feed

import (
	"errors"

	"gsv/internal/oem"
)

// Event is one view-delta changefeed entry: the membership changes one
// base update actually caused in one view. Insert and Delete hold base
// OIDs (the delegates are view-local); Seq is the base update's sequence
// number, Cursor the view-local feed position.
type Event struct {
	View   string `json:"view"`
	Cursor uint64 `json:"cursor"`
	Seq    uint64 `json:"seq,omitempty"`
	// Kind, N1 and N2 identify the triggering base update
	// (insert/delete/modify/create with the paper's argument order).
	Kind   string    `json:"kind,omitempty"`
	N1     oem.OID   `json:"n1,omitempty"`
	N2     oem.OID   `json:"n2,omitempty"`
	Insert []oem.OID `json:"insert,omitempty"`
	Delete []oem.OID `json:"delete,omitempty"`
	// Updates is how many base updates a coalesced batch event nets
	// together (Kind "batch"); 0 or 1 means a per-update event. Seq is
	// then the sequence number of the last contributing update, and
	// Insert/Delete the net membership change — replaying them reaches
	// the same membership as replaying the per-update stream.
	Updates int `json:"updates,omitempty"`
	// Origin and TraceID carry the triggering update's propagation
	// trace context (store.Update.Origin/TraceID) so downstream nodes
	// can extend the span chain and compute visibility latency against
	// the ingestion instant. For a batch event they are the last
	// contributing update's. Zero/empty on events from unstamped
	// updates or old peers — omitempty keeps the wire envelope
	// backward-compatible in both directions (old servers simply never
	// send them, old clients ignore unknown fields).
	Origin  int64  `json:"origin,omitempty"`
	TraceID string `json:"trace_id,omitempty"`
}

// Empty reports whether the event carries no membership change.
func (e Event) Empty() bool { return len(e.Insert) == 0 && len(e.Delete) == 0 }

// Policy selects what Publish does when a subscriber's channel is full.
type Policy int

const (
	// PolicyBlock applies backpressure: the publisher waits until the
	// subscriber drains (or the subscription closes). Lossless, but a
	// stalled consumer stalls maintenance.
	PolicyBlock Policy = iota
	// PolicyDropOldest evicts the oldest undelivered event to make room.
	// The subscriber detects the loss as a cursor gap and can resume the
	// missed range from the ring.
	PolicyDropOldest
	// PolicyDisconnect closes the subscription with ErrSlowConsumer.
	PolicyDisconnect
)

// String names the policy as the wire protocol spells it.
func (p Policy) String() string {
	switch p {
	case PolicyBlock:
		return "block"
	case PolicyDropOldest:
		return "drop"
	case PolicyDisconnect:
		return "disconnect"
	default:
		return "unknown"
	}
}

// ParsePolicy converts a wire/CLI spelling to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "block":
		return PolicyBlock, nil
	case "drop", "drop-oldest":
		return PolicyDropOldest, nil
	case "disconnect":
		return PolicyDisconnect, nil
	default:
		return 0, errors.New("feed: unknown policy " + s)
	}
}

var (
	// ErrUnknownView is returned by Subscribe for a view the hub has
	// never seen (neither registered nor published to).
	ErrUnknownView = errors.New("feed: unknown view")
	// ErrCursorExpired is returned by Subscribe when the resume cursor
	// precedes the oldest event retained in the view's ring.
	ErrCursorExpired = errors.New("feed: cursor expired")
	// ErrFutureCursor is returned by Subscribe when the resume cursor is
	// beyond the view's current cursor.
	ErrFutureCursor = errors.New("feed: cursor in the future")
	// ErrSlowConsumer closes subscriptions under PolicyDisconnect.
	ErrSlowConsumer = errors.New("feed: slow consumer disconnected")
)

// Options configures a Hub.
type Options struct {
	// RingSize bounds the per-view replay ring (default 1024). Zero or
	// negative means the default; resume windows shrink accordingly.
	RingSize int
	// Buffer is the default per-subscription channel capacity (default
	// 64, minimum 1).
	Buffer int
	// Policy is the default slow-consumer policy (default PolicyBlock).
	Policy Policy
}

const (
	defaultRingSize = 1024
	defaultBuffer   = 64
)

func (o Options) withDefaults() Options {
	if o.RingSize <= 0 {
		o.RingSize = defaultRingSize
	}
	if o.Buffer <= 0 {
		o.Buffer = defaultBuffer
	}
	return o
}

// SubOptions configures one subscription.
type SubOptions struct {
	// Resume replays events after cursor From instead of tailing from
	// the current cursor. From = 0 replays the whole retained history.
	Resume bool
	// From is the last cursor the subscriber has consumed; replay starts
	// at From+1. Only meaningful with Resume.
	From uint64
	// Buffer overrides the hub's default channel capacity. Replayed
	// events never block: the channel is grown to hold them.
	Buffer int
	// Policy overrides the hub's default slow-consumer policy. Use
	// PolicyBlock explicitly via the hub default; a non-zero value here
	// always wins.
	Policy Policy
	// HasPolicy marks Policy as explicitly set (PolicyBlock is the zero
	// value, so a flag is needed to distinguish "unset").
	HasPolicy bool
	// SnapshotOnExpire converts an expired resume cursor into a full
	// membership snapshot (Subscription.Snapshot) plus a tail from the
	// current cursor, instead of failing with ErrCursorExpired. It
	// requires the view to have been registered with a snapshot
	// function.
	SnapshotOnExpire bool
}

// Snapshot is the full-membership fallback a subscription receives when
// its resume cursor had been evicted: the view's members as of Cursor.
// Events with cursors at or below Cursor may still be delivered by the
// publisher racing the snapshot; they re-announce membership the snapshot
// already reflects, so appliers treat inserts/deletes as idempotent.
type Snapshot struct {
	Cursor  uint64    `json:"cursor"`
	Members []oem.OID `json:"members"`
}
