package feed

import (
	"testing"

	"gsv/internal/core"
	"gsv/internal/oem"
	"gsv/internal/store"
)

func TestPublishBatchCoalescedEvent(t *testing.T) {
	h := NewHub(Options{})
	h.RegisterView("V", nil)
	sub, err := h.Subscribe("V", SubOptions{Buffer: 8})
	if err != nil {
		t.Fatal(err)
	}
	last := store.Update{Seq: 40, Kind: store.UpdateModify, N1: "F1"}
	cur := h.PublishBatch("V", last, 3, core.Deltas{
		Insert: []oem.OID{"A", "B"}, Delete: []oem.OID{"C"},
	})
	if cur != 1 {
		t.Fatalf("cursor = %d", cur)
	}
	ev := collect(t, sub, 1)[0]
	if ev.Kind != KindBatch || ev.Updates != 3 || ev.Seq != 40 {
		t.Fatalf("event = %+v", ev)
	}
	if !oem.SameMembers(ev.Insert, []oem.OID{"A", "B"}) || !oem.SameMembers(ev.Delete, []oem.OID{"C"}) {
		t.Fatalf("deltas = %+v", ev)
	}
}

func TestPublishBatchDegradations(t *testing.T) {
	h := NewHub(Options{})
	// A batch that netted to nothing is invisible.
	if cur := h.PublishBatch("V", store.Update{Seq: 9}, 5, core.Deltas{}); cur != 0 {
		t.Fatalf("empty batch assigned cursor %d", cur)
	}
	if c, ok := h.Cursor("V"); ok && c != 0 {
		t.Fatalf("cursor moved on empty batch: %d", c)
	}
	// A single-update batch is published as an ordinary per-update event,
	// indistinguishable from the serial feed.
	u := store.Update{Seq: 3, Kind: store.UpdateInsert, N1: "ROOT", N2: "X"}
	h.RegisterView("V", nil)
	sub, err := h.Subscribe("V", SubOptions{Buffer: 2})
	if err != nil {
		t.Fatal(err)
	}
	h.PublishBatch("V", u, 1, core.Deltas{Insert: []oem.OID{"X"}})
	ev := collect(t, sub, 1)[0]
	if ev.Kind != store.UpdateInsert.String() || ev.Updates != 0 || ev.N2 != "X" {
		t.Fatalf("single-update batch event = %+v", ev)
	}
}

// TestBatchObserverEndToEnd wires a hub to a registry via the adapter and
// checks that one batch yields one coalesced event per touched view whose
// replay matches the view's membership change.
func TestBatchObserverEndToEnd(t *testing.T) {
	s := store.NewDefault()
	s.MustPut(oem.NewSet("ROOT", "root"))
	for i, age := range []int64{20, 40, 60} {
		oid := oem.OID(rune('A' + i))
		s.MustPut(oem.NewAtom(oid, "age", oem.Int(age)))
		s.MustPut(oem.NewSet("P"+oid, "person", oid))
		if err := s.Insert("ROOT", "P"+oid); err != nil {
			t.Fatal(err)
		}
	}
	r := core.NewRegistry(s)
	if _, err := r.Define("define mview OLD as: SELECT ROOT.person X WHERE X.age > 30"); err != nil {
		t.Fatal(err)
	}
	before, err := r.Evaluate("OLD")
	if err != nil {
		t.Fatal(err)
	}

	h := NewHub(Options{})
	r.SetBatchObserver(h.BatchObserver())
	h.RegisterView("OLD", nil)
	sub, err := h.Subscribe("OLD", SubOptions{Buffer: 8})
	if err != nil {
		t.Fatal(err)
	}

	// Two membership-changing modifies in one batch: A ages into the view,
	// C ages out.
	seq0 := s.Seq()
	if err := s.Modify("A", oem.Int(35)); err != nil {
		t.Fatal(err)
	}
	if err := s.Modify("C", oem.Int(10)); err != nil {
		t.Fatal(err)
	}
	if err := r.ApplyBatch(s.LogSince(seq0)); err != nil {
		t.Fatal(err)
	}

	ev := collect(t, sub, 1)[0]
	if ev.Kind != KindBatch || ev.Updates != 2 {
		t.Fatalf("event = %+v", ev)
	}
	set := map[oem.OID]bool{}
	for _, m := range before {
		set[m] = true
	}
	for _, y := range ev.Insert {
		set[y] = true
	}
	for _, y := range ev.Delete {
		delete(set, y)
	}
	after, err := r.Evaluate("OLD")
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != len(after) {
		t.Fatalf("replay %v != membership %v", set, after)
	}
	for _, m := range after {
		if !set[m] {
			t.Fatalf("replay %v != membership %v", set, after)
		}
	}
}
