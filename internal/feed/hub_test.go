package feed

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"gsv/internal/core"
	"gsv/internal/oem"
	"gsv/internal/store"
)

// pub publishes a single-insert delta event numbered i and returns the
// assigned cursor.
func pub(h *Hub, view string, i int) uint64 {
	u := store.Update{Seq: uint64(i), Kind: store.UpdateInsert, N1: "ROOT", N2: oem.OID(fmt.Sprintf("X%d", i))}
	return h.Publish(view, u, core.Deltas{Insert: []oem.OID{oem.OID(fmt.Sprintf("X%d", i))}})
}

// collect drains n events from a subscription, failing the test on a
// stall.
func collect(t *testing.T, sub *Subscription, n int) []Event {
	t.Helper()
	out := make([]Event, 0, n)
	for len(out) < n {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				t.Fatalf("subscription closed after %d of %d events (err %v)", len(out), n, sub.Err())
			}
			out = append(out, ev)
		case <-time.After(5 * time.Second):
			t.Fatalf("stalled after %d of %d events", len(out), n)
		}
	}
	return out
}

func cursors(evs []Event) []uint64 {
	out := make([]uint64, len(evs))
	for i, ev := range evs {
		out[i] = ev.Cursor
	}
	return out
}

func TestHubCursorsPerView(t *testing.T) {
	h := NewHub(Options{})
	if got := pub(h, "A", 1); got != 1 {
		t.Fatalf("first cursor = %d", got)
	}
	if got := pub(h, "A", 2); got != 2 {
		t.Fatalf("second cursor = %d", got)
	}
	// Views have independent cursor sequences.
	if got := pub(h, "B", 1); got != 1 {
		t.Fatalf("view B first cursor = %d", got)
	}
	if c, ok := h.Cursor("A"); !ok || c != 2 {
		t.Fatalf("Cursor(A) = %d %v", c, ok)
	}
	// Empty deltas are not published.
	if got := h.Publish("A", store.Update{}, core.Deltas{}); got != 0 {
		t.Fatalf("empty publish assigned cursor %d", got)
	}
	if c, _ := h.Cursor("A"); c != 2 {
		t.Fatalf("cursor moved on empty publish: %d", c)
	}
}

func TestHubTailSeesOnlyFutureEvents(t *testing.T) {
	h := NewHub(Options{})
	pub(h, "V", 1)
	pub(h, "V", 2)
	sub, err := h.Subscribe("V", SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub(h, "V", 3)
	evs := collect(t, sub, 1)
	if evs[0].Cursor != 3 {
		t.Fatalf("tail got cursor %d", evs[0].Cursor)
	}
}

func TestHubResumeReplaysExactly(t *testing.T) {
	h := NewHub(Options{})
	for i := 1; i <= 10; i++ {
		pub(h, "V", i)
	}
	sub, err := h.Subscribe("V", SubOptions{Resume: true, From: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub(h, "V", 11)
	evs := collect(t, sub, 7)
	for i, ev := range evs {
		if want := uint64(5 + i); ev.Cursor != want {
			t.Fatalf("cursors = %v, want 5..11", cursors(evs))
		}
	}
	// From = 0 replays the whole retained history.
	all, err := h.Subscribe("V", SubOptions{Resume: true, From: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer all.Close()
	if evs := collect(t, all, 11); evs[0].Cursor != 1 || evs[10].Cursor != 11 {
		t.Fatalf("full replay cursors = %v", cursors(evs))
	}
}

func TestHubSubscribeErrors(t *testing.T) {
	h := NewHub(Options{RingSize: 4})
	if _, err := h.Subscribe("NOPE", SubOptions{}); !errors.Is(err, ErrUnknownView) {
		t.Fatalf("unknown view error = %v", err)
	}
	for i := 1; i <= 10; i++ {
		pub(h, "V", i)
	}
	if _, err := h.Subscribe("V", SubOptions{Resume: true, From: 99}); !errors.Is(err, ErrFutureCursor) {
		t.Fatalf("future cursor error = %v", err)
	}
	// Ring holds 7..10; resuming after 4 needs 5 and 6, both evicted.
	if _, err := h.Subscribe("V", SubOptions{Resume: true, From: 4}); !errors.Is(err, ErrCursorExpired) {
		t.Fatalf("expired cursor error = %v", err)
	}
	// SnapshotOnExpire without a registered snapshot still expires.
	if _, err := h.Subscribe("V", SubOptions{Resume: true, From: 4, SnapshotOnExpire: true}); !errors.Is(err, ErrCursorExpired) {
		t.Fatalf("snapshotless fallback error = %v", err)
	}
	// The edge of the ring is still replayable: From 6 needs 7..10.
	sub, err := h.Subscribe("V", SubOptions{Resume: true, From: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if evs := collect(t, sub, 4); evs[0].Cursor != 7 {
		t.Fatalf("edge replay cursors = %v", cursors(evs))
	}
	if h.OldestRetained("V") != 7 {
		t.Fatalf("OldestRetained = %d", h.OldestRetained("V"))
	}
}

func TestHubSnapshotFallback(t *testing.T) {
	h := NewHub(Options{RingSize: 2})
	members := []oem.OID{"X9", "X10"}
	h.RegisterView("V", func() ([]oem.OID, error) { return members, nil })
	for i := 1; i <= 10; i++ {
		pub(h, "V", i)
	}
	sub, err := h.Subscribe("V", SubOptions{Resume: true, From: 3, SnapshotOnExpire: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	snap := sub.Snapshot()
	if snap == nil || snap.Cursor != 10 || !oem.SameMembers(snap.Members, members) {
		t.Fatalf("snapshot = %+v", snap)
	}
	// The subscription tails from the snapshot cursor.
	pub(h, "V", 11)
	if evs := collect(t, sub, 1); evs[0].Cursor != 11 {
		t.Fatalf("post-snapshot cursor = %d", evs[0].Cursor)
	}

	// A failing snapshot function surfaces its error.
	h.RegisterView("V", func() ([]oem.OID, error) { return nil, errors.New("boom") })
	if _, err := h.Subscribe("V", SubOptions{Resume: true, From: 3, SnapshotOnExpire: true}); err == nil {
		t.Fatal("failing snapshot did not error")
	}
}

func TestHubPolicyDropOldest(t *testing.T) {
	h := NewHub(Options{Policy: PolicyDropOldest, Buffer: 2})
	h.RegisterView("V", nil)
	sub, err := h.Subscribe("V", SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	for i := 1; i <= 5; i++ {
		pub(h, "V", i)
	}
	// Buffer 2: events 1..3 were evicted to admit 4 and 5.
	if sub.Dropped() != 3 {
		t.Fatalf("dropped = %d", sub.Dropped())
	}
	evs := collect(t, sub, 2)
	if evs[0].Cursor != 4 || evs[1].Cursor != 5 {
		t.Fatalf("retained cursors = %v", cursors(evs))
	}
	// The gap is recoverable: resume from the last seen cursor.
	re, err := h.Subscribe("V", SubOptions{Resume: true, From: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if evs := collect(t, re, 5); evs[0].Cursor != 1 {
		t.Fatalf("recovery replay = %v", cursors(evs))
	}
}

func TestHubPolicyDisconnect(t *testing.T) {
	h := NewHub(Options{Buffer: 1})
	h.RegisterView("V", nil)
	sub, err := h.Subscribe("V", SubOptions{Policy: PolicyDisconnect, HasPolicy: true})
	if err != nil {
		t.Fatal(err)
	}
	pub(h, "V", 1) // fills the buffer
	pub(h, "V", 2) // overflows: disconnect
	if !errors.Is(sub.Err(), ErrSlowConsumer) {
		t.Fatalf("err = %v", sub.Err())
	}
	// The channel closes after the buffered event.
	if ev, ok := <-sub.Events(); !ok || ev.Cursor != 1 {
		t.Fatalf("buffered event = %+v %v", ev, ok)
	}
	if _, ok := <-sub.Events(); ok {
		t.Fatal("channel still open after disconnect")
	}
	if h.Subscribers("V") != 0 {
		t.Fatalf("subscribers = %d", h.Subscribers("V"))
	}
}

func TestHubPolicyBlockBackpressure(t *testing.T) {
	h := NewHub(Options{Buffer: 1})
	h.RegisterView("V", nil)
	sub, err := h.Subscribe("V", SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pub(h, "V", 1) // fills the buffer
	published := make(chan uint64)
	go func() { published <- pub(h, "V", 2) }()
	select {
	case <-published:
		t.Fatal("publish did not block on a full subscriber")
	case <-time.After(20 * time.Millisecond):
	}
	// Draining unblocks the publisher.
	if ev := <-sub.Events(); ev.Cursor != 1 {
		t.Fatalf("drained cursor = %d", ev.Cursor)
	}
	select {
	case c := <-published:
		if c != 2 {
			t.Fatalf("published cursor = %d", c)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("publish still blocked after drain")
	}
	sub.Close()
}

func TestHubCloseUnblocksPublisher(t *testing.T) {
	h := NewHub(Options{Buffer: 1})
	h.RegisterView("V", nil)
	sub, err := h.Subscribe("V", SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pub(h, "V", 1)
	published := make(chan struct{})
	go func() { pub(h, "V", 2); close(published) }()
	time.Sleep(10 * time.Millisecond) // let the publisher block
	sub.Close()
	select {
	case <-published:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock the publisher")
	}
	if h.Subscribers("V") != 0 {
		t.Fatalf("subscribers = %d", h.Subscribers("V"))
	}
}

func TestHubObserverAdapter(t *testing.T) {
	h := NewHub(Options{})
	obs := h.Observer("V")
	sub, errSub := func() (*Subscription, error) {
		h.RegisterView("V", nil)
		return h.Subscribe("V", SubOptions{})
	}()
	if errSub != nil {
		t.Fatal(errSub)
	}
	defer sub.Close()
	obs("ignored", store.Update{Seq: 9, Kind: store.UpdateModify, N1: "A1"}, core.Deltas{Delete: []oem.OID{"P1"}})
	evs := collect(t, sub, 1)
	if evs[0].View != "V" || evs[0].Seq != 9 || evs[0].Kind != "modify" || evs[0].Delete[0] != "P1" {
		t.Fatalf("observed event = %+v", evs[0])
	}
	// Empty deltas never reach subscribers.
	obs("ignored", store.Update{Seq: 10}, core.Deltas{})
	select {
	case ev := <-sub.Events():
		t.Fatalf("empty delta produced event %+v", ev)
	case <-time.After(10 * time.Millisecond):
	}
}

func TestHubViewsAndSubscribers(t *testing.T) {
	h := NewHub(Options{})
	h.RegisterView("A", nil)
	pub(h, "B", 1)
	views := h.Views()
	if len(views) != 2 {
		t.Fatalf("views = %v", views)
	}
	sub, err := h.Subscribe("A", SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if h.Subscribers("A") != 1 || h.Subscribers("B") != 0 {
		t.Fatalf("subscriber counts = %d %d", h.Subscribers("A"), h.Subscribers("B"))
	}
	sub.Close()
	if h.Subscribers("A") != 0 {
		t.Fatal("Close left the subscription attached")
	}
	// Closing twice is safe.
	sub.Close()
}

// TestHubConcurrentPublishSubscribe exercises the hub under -race:
// concurrent publishers to separate views, subscribers joining, leaving
// and resuming mid-stream. Per-view cursor order must stay total and
// gap-free for every fully-connected subscriber.
func TestHubConcurrentPublishSubscribe(t *testing.T) {
	const perView = 200
	h := NewHub(Options{RingSize: perView * 2, Buffer: 8})
	views := []string{"V0", "V1", "V2"}
	for _, v := range views {
		h.RegisterView(v, nil)
	}

	var wg sync.WaitGroup
	// One full-history subscriber per view, draining concurrently.
	type result struct {
		evs []Event
		err error
	}
	results := make([]result, len(views))
	for i, v := range views {
		sub, err := h.Subscribe(v, SubOptions{})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, sub *Subscription) {
			defer wg.Done()
			for len(results[i].evs) < perView {
				ev, ok := <-sub.Events()
				if !ok {
					results[i].err = errors.New("closed early")
					return
				}
				results[i].evs = append(results[i].evs, ev)
			}
			sub.Close()
		}(i, sub)
	}
	// Churning subscribers that join and leave while publishing runs.
	for _, v := range views {
		wg.Add(1)
		go func(v string) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				sub, err := h.Subscribe(v, SubOptions{Resume: true, From: 0, Policy: PolicyDropOldest, HasPolicy: true})
				if err != nil {
					t.Error(err)
					return
				}
				<-sub.Events()
				sub.Close()
			}
		}(v)
	}
	// Publishers.
	for _, v := range views {
		wg.Add(1)
		go func(v string) {
			defer wg.Done()
			for i := 1; i <= perView; i++ {
				pub(h, v, i)
			}
		}(v)
	}
	wg.Wait()
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("view %s: %v", views[i], r.err)
		}
		for j, ev := range r.evs {
			if ev.Cursor != uint64(j+1) {
				t.Fatalf("view %s: cursor %d at position %d", views[i], ev.Cursor, j)
			}
		}
	}
}

func TestPolicyStringsRoundTrip(t *testing.T) {
	for _, p := range []Policy{PolicyBlock, PolicyDropOldest, PolicyDisconnect} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: %v %v", p, got, err)
		}
	}
	if p, err := ParsePolicy(""); err != nil || p != PolicyBlock {
		t.Fatalf("empty policy = %v %v", p, err)
	}
	if p, err := ParsePolicy("drop-oldest"); err != nil || p != PolicyDropOldest {
		t.Fatalf("drop-oldest = %v %v", p, err)
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("bogus policy parsed")
	}
}

func TestEventEmpty(t *testing.T) {
	if !(Event{}).Empty() {
		t.Fatal("zero event not empty")
	}
	if (Event{Insert: []oem.OID{"X"}}).Empty() {
		t.Fatal("insert event empty")
	}
}
