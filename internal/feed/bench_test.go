package feed

import (
	"fmt"
	"sync"
	"testing"

	"gsv/internal/core"
	"gsv/internal/oem"
	"gsv/internal/store"
)

// BenchmarkPublish measures publish + fan-out cost as the subscriber
// count grows. Subscribers drain concurrently under PolicyBlock, so the
// number also reflects backpressure overhead.
func BenchmarkPublish(b *testing.B) {
	for _, subs := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			h := NewHub(Options{Buffer: 1024})
			h.RegisterView("V", nil)
			var wg sync.WaitGroup
			sl := make([]*Subscription, subs)
			for i := range sl {
				sub, err := h.Subscribe("V", SubOptions{})
				if err != nil {
					b.Fatal(err)
				}
				sl[i] = sub
				wg.Add(1)
				go func(sub *Subscription) {
					defer wg.Done()
					for range sub.Events() {
					}
				}(sub)
			}
			u := store.Update{Kind: store.UpdateInsert, N1: "ROOT", N2: "X"}
			d := core.Deltas{Insert: []oem.OID{"X"}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Publish("V", u, d)
			}
			b.StopTimer()
			for _, sub := range sl {
				sub.Close()
			}
			wg.Wait()
		})
	}
}

// BenchmarkSubscribeResume measures resume-with-replay cost against a
// full ring.
func BenchmarkSubscribeResume(b *testing.B) {
	h := NewHub(Options{RingSize: 1024})
	h.RegisterView("V", nil)
	u := store.Update{Kind: store.UpdateInsert, N1: "ROOT", N2: "X"}
	d := core.Deltas{Insert: []oem.OID{"X"}}
	for i := 0; i < 1024; i++ {
		h.Publish("V", u, d)
	}
	from := h.OldestRetained("V") - 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub, err := h.Subscribe("V", SubOptions{Resume: true, From: from})
		if err != nil {
			b.Fatal(err)
		}
		sub.Close()
	}
}
