package feed

import (
	"sync"

	"gsv/internal/obs"
)

// Subscription is one subscriber's attachment to a view's feed. Consume
// with Events; the channel closes when the subscription is closed by
// either side. After the channel closes, Err reports why (nil for a
// local Close, ErrSlowConsumer under PolicyDisconnect).
type Subscription struct {
	hub    *Hub
	view   string
	policy Policy
	done   chan struct{}
	once   sync.Once

	mu      sync.Mutex
	ch      chan Event
	closed  bool
	err     error
	dropped uint64
	snap    *Snapshot
	// drops points at the view feed's shared drop counter so per-view
	// drop totals survive subscription churn.
	drops *obs.Counter
}

// Events returns the receive channel. Replayed events (resume) are
// already buffered when Subscribe returns.
func (s *Subscription) Events() <-chan Event { return s.ch }

// View names the subscribed view.
func (s *Subscription) View() string { return s.view }

// Snapshot returns the full-membership fallback taken at subscribe time,
// or nil when the subscription resumed (or tailed) normally.
func (s *Subscription) Snapshot() *Snapshot { return s.snap }

// Dropped counts events evicted under PolicyDropOldest.
func (s *Subscription) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Err reports why the subscription ended (nil while live or after a
// local Close).
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close detaches the subscription and closes its channel. Safe to call
// any number of times and concurrently with publishes.
func (s *Subscription) Close() {
	// Unblock a publisher stuck in PolicyBlock delivery first: it holds
	// s.mu while waiting, and releases it once done closes.
	s.once.Do(func() { close(s.done) })
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.ch)
	}
	s.mu.Unlock()
	s.hub.remove(s)
}

// deliver hands one event to the subscriber, applying the slow-consumer
// policy. It returns false when the subscription disconnected itself
// (PolicyDisconnect) and must be removed from the view.
func (s *Subscription) deliver(ev Event) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return true
	}
	switch s.policy {
	case PolicyDropOldest:
		for {
			select {
			case s.ch <- ev:
				return true
			default:
			}
			// Full: evict the oldest undelivered event and retry. The
			// consumer may race us draining; the loop converges because
			// nothing but this (per-view serialized) publisher sends.
			select {
			case <-s.ch:
				s.dropped++
				s.drops.Inc()
			default:
			}
		}
	case PolicyDisconnect:
		select {
		case s.ch <- ev:
			return true
		default:
			s.err = ErrSlowConsumer
			s.closed = true
			s.once.Do(func() { close(s.done) })
			close(s.ch)
			return false
		}
	default: // PolicyBlock
		select {
		case s.ch <- ev:
		case <-s.done:
			// Closing: the pending Close owns the channel teardown.
		}
		return true
	}
}
