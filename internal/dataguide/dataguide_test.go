package dataguide

import (
	"testing"

	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/store"
	"gsv/internal/workload"
)

func personGuide(t testing.TB) (*store.Store, *Guide) {
	t.Helper()
	s := store.NewDefault()
	workload.PersonDB(s)
	g, err := Build(s, "ROOT")
	if err != nil {
		t.Fatal(err)
	}
	return s, g
}

func TestBuildPerson(t *testing.T) {
	_, g := personGuide(t)
	// Every label path appears exactly once; HasPath answers the
	// Section 5.2 schema questions.
	for _, p := range []string{"professor", "professor.age", "professor.student.major", "student.name", "secretary.age"} {
		if !g.HasPath(pathexpr.MustParsePath(p)) {
			t.Errorf("missing path %s", p)
		}
	}
	// "objects labeled student do not have a child object with label
	// salary" — the paper's example of path knowledge.
	for _, p := range []string{"student.salary", "professor.major", "salary", "secretary.salary"} {
		if g.HasPath(pathexpr.MustParsePath(p)) {
			t.Errorf("phantom path %s", p)
		}
	}
}

func TestBuildMissingRoot(t *testing.T) {
	s := store.NewDefault()
	if _, err := Build(s, "NOPE"); err == nil {
		t.Fatal("missing root accepted")
	}
}

func TestTargets(t *testing.T) {
	_, g := personGuide(t)
	if got := g.Targets(pathexpr.MustParsePath("professor")); !oem.SameMembers(got, []oem.OID{"P1", "P2"}) {
		t.Fatalf("Targets(professor) = %v", got)
	}
	if got := g.Targets(pathexpr.MustParsePath("professor.student.age")); !oem.SameMembers(got, []oem.OID{"A3"}) {
		t.Fatalf("Targets(professor.student.age) = %v", got)
	}
	if got := g.Targets(pathexpr.MustParsePath("nosuch")); got != nil {
		t.Fatalf("Targets(nosuch) = %v", got)
	}
	if got := g.Targets(pathexpr.Path{}); !oem.SameMembers(got, []oem.OID{"ROOT"}) {
		t.Fatalf("Targets(ε) = %v", got)
	}
}

func TestGuideSkipsGroupingAndDelegates(t *testing.T) {
	s, _ := personGuide(t)
	// Add a delegate-looking object and a database edge; neither may
	// appear in guide paths.
	s.MustPut(oem.NewSet("MV.P1", "professor", "N1"))
	if err := s.Insert("ROOT", "MV.P1"); err != nil {
		t.Fatal(err)
	}
	g, err := Build(s, "ROOT")
	if err != nil {
		t.Fatal(err)
	}
	for _, tgt := range g.Targets(pathexpr.MustParsePath("professor")) {
		if tgt == "MV.P1" {
			t.Fatal("delegate leaked into guide targets")
		}
	}
}

// guideVsData cross-checks Guide.Eval against a data-level evaluation.
func guideVsData(t testing.TB, s *store.Store, g *Guide, root oem.OID, expr string) {
	t.Helper()
	e := pathexpr.MustParse(expr)
	got := g.Eval(e)
	data := pathexpr.Eval(dataGraph(s), []oem.OID{root}, e)
	if !oem.SameMembers(got, data) {
		t.Fatalf("%s: guide %v != data %v", expr, got, data)
	}
}

func dataGraph(s *store.Store) pathexpr.Graph {
	return pathexpr.GraphFunc(func(oid oem.OID) []pathexpr.Neighbor {
		kids, err := s.Children(oid)
		if err != nil {
			return nil
		}
		var nbs []pathexpr.Neighbor
		for _, c := range kids {
			lbl, err := s.Label(c)
			if err != nil || oem.IsGroupingLabel(lbl) {
				continue
			}
			nbs = append(nbs, pathexpr.Neighbor{Label: lbl, To: c})
		}
		return nbs
	})
}

func TestGuideEvalMatchesData(t *testing.T) {
	s, g := personGuide(t)
	for _, expr := range []string{
		"professor", "professor.age", "*", "*.age", "?.name",
		"(professor|secretary).age", "professor.*", "?", "nosuch.*",
	} {
		guideVsData(t, s, g, "ROOT", expr)
	}
}

func TestGuideEvalOnDAG(t *testing.T) {
	s := store.NewDefault()
	workload.FigureOneDB(s)
	g, err := Build(s, "A")
	if err != nil {
		t.Fatal(err)
	}
	for _, expr := range []string{"*", "b.d.f", "?.?", "*.g", "e.f.g"} {
		guideVsData(t, s, g, "A", expr)
	}
}

func TestGuideSizeIndependentOfCardinality(t *testing.T) {
	sizeFor := func(tuples int) int {
		s := store.NewDefault()
		workload.RelationLike(s, workload.RelationConfig{
			Relations: 2, TuplesPerRelation: tuples, FieldsPerTuple: 3, Seed: 1,
		})
		g, err := Build(s, "REL")
		if err != nil {
			t.Fatal(err)
		}
		return g.Size()
	}
	small, large := sizeFor(5), sizeFor(200)
	if small != large {
		t.Fatalf("guide size grew with cardinality: %d vs %d", small, large)
	}
}

func TestPaths(t *testing.T) {
	_, g := personGuide(t)
	paths := g.Paths(2)
	want := map[string]bool{
		"professor": true, "student": true, "secretary": true,
		"professor.age": true, "professor.student": true, "student.major": true,
	}
	got := map[string]bool{}
	for _, p := range paths {
		got[p.String()] = true
		if len(p) > 2 {
			t.Fatalf("path %v exceeds maxLen", p)
		}
	}
	for w := range want {
		if !got[w] {
			t.Errorf("Paths missing %s (have %v)", w, paths)
		}
	}
}

func TestPairOccurs(t *testing.T) {
	_, g := personGuide(t)
	cases := []struct {
		parent, child string
		want          bool
	}{
		{"", "professor", true},
		{"", "salary", false},
		{"professor", "age", true},
		{"professor", "student", true},
		{"student", "major", true},
		{"student", "salary", false}, // the paper's example
		{"secretary", "major", false},
	}
	for _, c := range cases {
		if got := g.PairOccurs(c.parent, c.child); got != c.want {
			t.Errorf("PairOccurs(%q,%q) = %v, want %v", c.parent, c.child, got, c.want)
		}
	}
}

func TestStale(t *testing.T) {
	s, g := personGuide(t)
	if g.Stale(s) {
		t.Fatal("fresh guide reported stale")
	}
	if err := s.Modify("A1", oem.Int(46)); err != nil {
		t.Fatal(err)
	}
	if !g.Stale(s) {
		t.Fatal("guide not stale after update")
	}
}

// TestPropertyGuideEvalMatchesData builds random trees and cross-checks
// guide evaluation against data evaluation for assorted expressions.
func TestPropertyGuideEvalMatchesData(t *testing.T) {
	exprs := []string{"*", "?.?", "*.age", "item*", "(item|part).*", "?.name"}
	for seed := int64(0); seed < 5; seed++ {
		s := store.NewDefault()
		db := workload.RandomTree(s, workload.TreeConfig{Depth: 3, Fanout: 3, Seed: seed})
		g, err := Build(s, db.Root)
		if err != nil {
			t.Fatal(err)
		}
		for _, expr := range exprs {
			e := pathexpr.MustParse(expr)
			got := g.Eval(e)
			want := pathexpr.Eval(dataGraph(s), []oem.OID{db.Root}, e)
			if !oem.SameMembers(got, want) {
				t.Fatalf("seed %d %s: guide %v != data %v", seed, expr, got, want)
			}
		}
	}
}

func TestNodeOIDRoundTrip(t *testing.T) {
	for _, id := range []int{0, 1, 42, 12345} {
		if got := nodeIndex(nodeOID(id)); got != id {
			t.Errorf("round trip %d -> %d", id, got)
		}
	}
	for _, bad := range []oem.OID{"", "#", "x1", "#1x", "P1"} {
		if nodeIndex(bad) >= 0 && bad != "#1x" { // "#1x" rejected by digit check
			t.Errorf("nodeIndex(%q) accepted", bad)
		}
	}
	if nodeIndex("#1x") != -1 {
		t.Error("nodeIndex(#1x) accepted")
	}
}

func BenchmarkGuideVsDataWildcard(b *testing.B) {
	s := store.NewDefault()
	workload.RelationLike(s, workload.RelationConfig{
		Relations: 2, TuplesPerRelation: 500, FieldsPerTuple: 3, Seed: 1,
	})
	g, err := Build(s, "REL")
	if err != nil {
		b.Fatal(err)
	}
	e := pathexpr.MustParse("*.age")
	b.Run("guide", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(g.Eval(e)) == 0 {
				b.Fatal("empty")
			}
		}
	})
	b.Run("data", func(b *testing.B) {
		graph := dataGraph(s)
		for i := 0; i < b.N; i++ {
			if len(pathexpr.Eval(graph, []oem.OID{"REL"}, e)) == 0 {
				b.Fatal("empty")
			}
		}
	})
}
