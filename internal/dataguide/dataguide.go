// Package dataguide implements strong DataGuides (Goldman and Widom,
// VLDB 1997), the structural summaries the paper's Section 5.2 points at:
// "This path knowledge can be considered a type of 'schema' for certain
// objects and their children [GW97]."
//
// A DataGuide of a database rooted at ROOT is a deterministic graph in
// which every label path from ROOT appears exactly once; each guide node
// carries the *target set* — the data objects reachable by that path.
// Queries about paths (does professor.salary occur? which objects does
// *.age reach?) are answered on the guide, whose size is bounded by the
// number of distinct label-path behaviors rather than the number of
// objects, so wildcard path expressions evaluate without touching the
// data.
package dataguide

import (
	"fmt"
	"sort"
	"strings"

	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/store"
)

// node is one guide state: a distinct target set with its label edges.
type node struct {
	id      int
	targets []oem.OID
	out     map[string]*node
}

// Guide is a strong DataGuide over one database root.
type Guide struct {
	Root oem.OID
	// Seq is the store sequence number the guide was built at; a guide is
	// a snapshot summary and goes stale as the store advances.
	Seq uint64

	start *node
	nodes []*node
}

// Build constructs the strong DataGuide of the objects reachable from
// root. Grouping objects (databases, views) and delegates are skipped as
// children, matching the path semantics of the view machinery. Build is
// deterministic: target sets are canonicalized by sorted OIDs.
func Build(s *store.Store, root oem.OID) (*Guide, error) {
	if !s.Has(root) {
		return nil, fmt.Errorf("dataguide: root %s: %w", root, store.ErrNotFound)
	}
	g := &Guide{Root: root, Seq: s.Seq()}
	byKey := map[string]*node{}

	mk := func(targets []oem.OID) (*node, bool) {
		key := targetKey(targets)
		if n, ok := byKey[key]; ok {
			return n, false
		}
		n := &node{id: len(g.nodes), targets: targets, out: map[string]*node{}}
		byKey[key] = n
		g.nodes = append(g.nodes, n)
		return n, true
	}

	startTargets := []oem.OID{root}
	g.start, _ = mk(startTargets)
	queue := []*node{g.start}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		// Group the children of all targets by label.
		byLabel := map[string]map[oem.OID]bool{}
		for _, t := range n.targets {
			kids, err := s.Children(t)
			if err != nil {
				continue
			}
			for _, c := range kids {
				lbl, err := s.Label(c)
				if err != nil || oem.IsGroupingLabel(lbl) || strings.ContainsRune(string(c), '.') {
					continue
				}
				m := byLabel[lbl]
				if m == nil {
					m = map[oem.OID]bool{}
					byLabel[lbl] = m
				}
				m[c] = true
			}
		}
		labels := make([]string, 0, len(byLabel))
		for l := range byLabel {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			targets := make([]oem.OID, 0, len(byLabel[l]))
			for oid := range byLabel[l] {
				targets = append(targets, oid)
			}
			oem.SortOIDs(targets)
			child, fresh := mk(targets)
			n.out[l] = child
			if fresh {
				queue = append(queue, child)
			}
		}
	}
	return g, nil
}

func targetKey(targets []oem.OID) string {
	parts := make([]string, len(targets))
	for i, t := range targets {
		parts[i] = string(t)
	}
	return strings.Join(parts, "\x1f")
}

// Size returns the number of guide nodes — the structural complexity of
// the database, independent of its cardinality.
func (g *Guide) Size() int { return len(g.nodes) }

// HasPath reports whether the constant label path occurs in the database.
func (g *Guide) HasPath(p pathexpr.Path) bool {
	n := g.start
	for _, l := range p {
		n = n.out[l]
		if n == nil {
			return false
		}
	}
	return true
}

// Targets returns the objects reachable from the root by the constant
// path, straight from the guide (no data traversal). The result aliases
// guide state; callers must not mutate it.
func (g *Guide) Targets(p pathexpr.Path) []oem.OID {
	n := g.start
	for _, l := range p {
		n = n.out[l]
		if n == nil {
			return nil
		}
	}
	return n.targets
}

// Eval evaluates a path expression from the root using the guide: a
// product search over (guide node, residual expression) pairs, unioning
// target sets at accepting states. For databases with few distinct
// structures this touches far fewer states than a data traversal
// (experiment E10 measures the difference).
func (g *Guide) Eval(e pathexpr.Expr) []oem.OID {
	graph := pathexpr.GraphFunc(func(oid oem.OID) []pathexpr.Neighbor {
		idx := nodeIndex(oid)
		if idx < 0 || idx >= len(g.nodes) {
			return nil
		}
		n := g.nodes[idx]
		labels := make([]string, 0, len(n.out))
		for l := range n.out {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		nbs := make([]pathexpr.Neighbor, 0, len(labels))
		for _, l := range labels {
			nbs = append(nbs, pathexpr.Neighbor{Label: l, To: nodeOID(n.out[l].id)})
		}
		return nbs
	})
	accepted := pathexpr.Eval(graph, []oem.OID{nodeOID(g.start.id)}, e)
	seen := map[oem.OID]bool{}
	var out []oem.OID
	for _, a := range accepted {
		idx := nodeIndex(a)
		if idx < 0 || idx >= len(g.nodes) {
			continue
		}
		for _, t := range g.nodes[idx].targets {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	// The start state's target is the root itself; pathexpr.Eval includes
	// it when the expression is nullable, matching data-level semantics.
	return oem.SortOIDs(out)
}

// nodeOID encodes a guide node id as a synthetic OID for the product
// search; guide ids never collide with data OIDs because they exist only
// inside Eval.
func nodeOID(id int) oem.OID { return oem.OID(fmt.Sprintf("#%d", id)) }

func nodeIndex(oid oem.OID) int {
	if len(oid) < 2 || oid[0] != '#' {
		return -1
	}
	n := 0
	for _, c := range string(oid[1:]) {
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// Paths enumerates every constant label path of length at most maxLen that
// occurs in the database, in sorted order — the "schema" listing of
// Section 5.2.
func (g *Guide) Paths(maxLen int) []pathexpr.Path {
	var out []pathexpr.Path
	type frame struct {
		n *node
		p pathexpr.Path
	}
	stack := []frame{{g.start, pathexpr.Path{}}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if len(f.p) > 0 {
			out = append(out, f.p)
		}
		if len(f.p) == maxLen {
			continue
		}
		labels := make([]string, 0, len(f.n.out))
		for l := range f.n.out {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			stack = append(stack, frame{f.n.out[l], f.p.Concat(pathexpr.Path{l})})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// PairOccurs reports whether any object at the end of some root path with
// final label parentLabel has a child labeled childLabel — the pair
// knowledge of the warehouse's Section 5.2 screening, derived from the
// guide instead of a scan.
func (g *Guide) PairOccurs(parentLabel, childLabel string) bool {
	// The root's label is outside the guide's alphabet; callers use ""
	// for pairs anchored at the root.
	if parentLabel == "" {
		return g.start.out[childLabel] != nil
	}
	for _, m := range g.nodes {
		if k := m.out[parentLabel]; k != nil && k.out[childLabel] != nil {
			return true
		}
	}
	return false
}

// Stale reports whether the store has advanced past the guide's snapshot.
func (g *Guide) Stale(s *store.Store) bool { return s.Seq() != g.Seq }
