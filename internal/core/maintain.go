package core

import (
	"fmt"
	"time"

	"gsv/internal/obs"
	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/store"
)

// Maintainer applies base updates to a materialized view incrementally.
type Maintainer interface {
	// Apply processes one logged base update, bringing the view to the
	// state consistent with the base right after that update. Updates must
	// be applied in sequence order.
	Apply(u store.Update) error
}

// DeltaObserver is notified after a maintainer successfully applies one
// base update: view is the view's OID, u the triggering update, and d the
// membership changes that were *actually* applied (idempotent re-inserts
// and re-deletes are filtered out, so the stream of observed deltas
// replays to exactly the view's membership history). The changefeed
// subsystem (internal/feed) is the canonical observer; observers must not
// mutate the view and should return quickly — they run on the maintenance
// path.
type DeltaObserver func(view oem.OID, u store.Update, d Deltas)

// SimpleMaintainer is the paper's Algorithm 1 (Section 4.3): incremental
// maintenance of a simple materialized view — constant sel_path and
// cond_path over a tree-structured base — under the three basic updates.
// All base reads go through a BaseAccess, so the identical algorithm runs
// centralized and at a warehouse.
//
// Beyond the paper's membership logic, the maintainer also keeps delegate
// *values* synchronized with their originals (the paper stipulates that "a
// delegate has the same value as the original object" but Algorithm 1
// itself only maintains view membership): an update touching an object
// that has a delegate refreshes that delegate's copied value.
type SimpleMaintainer struct {
	View   *MaterializedView
	Def    SimpleDef
	Access BaseAccess
	// Observer, when non-nil, receives the membership deltas each Apply
	// actually performed.
	Observer DeltaObserver
	// Metrics, when non-nil, records per-stage timings and applied delta
	// counts for each Apply. Nil means no instrumentation and no clock
	// reads on the maintenance path.
	Metrics *MaintainerMetrics
}

// MaintainerMetrics instruments a maintainer's Apply: how long Algorithm
// 1's delta derivation takes (ComputeLatency), how long applying the
// deltas and refreshing the delegate takes (ApplyLatency), and how many
// membership changes were actually performed. Any field may be nil; the
// obs instruments are nil-safe.
type MaintainerMetrics struct {
	ComputeLatency *obs.Histogram
	ApplyLatency   *obs.Histogram
	Inserts        *obs.Counter
	Deletes        *obs.Counter
	// StageObserver, when non-nil, receives each Apply stage's duration
	// ("compute": Algorithm 1's delta derivation; then "apply": V_insert/
	// V_delete plus the delegate refresh) as it completes. Propagation
	// tracing uses it to split one maintenance span into sub-spans. It
	// runs on the maintenance path under whatever lock serializes Apply.
	StageObserver func(stage string, nanos int64)
}

// NewSimpleMaintainer builds Algorithm 1 for mv, classifying its query as
// a simple view. It returns an error when the definition is not simple.
func NewSimpleMaintainer(mv *MaterializedView, access BaseAccess) (*SimpleMaintainer, error) {
	def, ok := Simplify(mv.Query)
	if !ok {
		return nil, fmt.Errorf("%w: %s (use the general maintainer)", ErrNotSimple, mv.OID)
	}
	return &SimpleMaintainer{View: mv, Def: def, Access: access}, nil
}

// Deltas holds the membership changes Algorithm 1 derives from one update:
// the base OIDs whose delegates are to be inserted into or deleted from
// the view, in derivation order.
type Deltas struct {
	Insert []oem.OID
	Delete []oem.OID
}

// Empty reports whether the update required no membership change.
func (d Deltas) Empty() bool { return len(d.Insert) == 0 && len(d.Delete) == 0 }

// Apply implements Maintainer: it computes the membership deltas, applies
// them with V_insert/V_delete, then refreshes the touched delegate value.
func (m *SimpleMaintainer) Apply(u store.Update) error {
	var t0 time.Time
	if m.Metrics != nil {
		t0 = time.Now()
	}
	d, err := m.ComputeDeltas(u)
	if err != nil {
		return err
	}
	if m.Metrics != nil {
		now := time.Now()
		m.Metrics.ComputeLatency.Observe(now.Sub(t0).Seconds())
		if m.Metrics.StageObserver != nil {
			m.Metrics.StageObserver("compute", now.Sub(t0).Nanoseconds())
		}
		t0 = now
	}
	var applied Deltas
	for _, y := range d.Insert {
		changed, err := viewInsert(m.View, m.Access, y)
		if err != nil {
			return err
		}
		if changed {
			applied.Insert = append(applied.Insert, y)
		}
	}
	for _, y := range d.Delete {
		changed, err := viewDelete(m.View, y)
		if err != nil {
			return err
		}
		if changed {
			applied.Delete = append(applied.Delete, y)
		}
	}
	if err := m.refreshDelegate(u); err != nil {
		return err
	}
	if m.Metrics != nil {
		elapsed := time.Since(t0)
		m.Metrics.ApplyLatency.Observe(elapsed.Seconds())
		if m.Metrics.StageObserver != nil {
			m.Metrics.StageObserver("apply", elapsed.Nanoseconds())
		}
		m.Metrics.Inserts.Add(uint64(len(applied.Insert)))
		m.Metrics.Deletes.Add(uint64(len(applied.Delete)))
	}
	if m.Observer != nil {
		m.Observer(m.View.OID, u, applied)
	}
	return nil
}

// ComputeDeltas runs Algorithm 1's case analysis for one update without
// touching the view. View clusters use it to share a single analysis
// across member views; Apply uses it internally.
func (m *SimpleMaintainer) ComputeDeltas(u store.Update) (Deltas, error) {
	var d Deltas
	var err error
	switch u.Kind {
	case store.UpdateCreate:
		// "Creating a new object that is not pointed at by any other object
		// will have no impact on any queries."
	case store.UpdateInsert:
		d, err = m.onInsert(u.N1, u.N2)
	case store.UpdateDelete:
		d, err = m.onDelete(u.N1, u.N2)
	case store.UpdateModify:
		d, err = m.onModify(u.N1, u.Old, u.New)
	}
	return d, err
}

// matchPrefix computes the premise shared by the insert and delete cases:
// sel_path.cond_path = path(ROOT,N1).label(N2).p. It returns the residual
// path p, the path q = path(ROOT,N1), and ok=false when the update cannot
// affect the view.
func (m *SimpleMaintainer) matchPrefix(n1, n2 oem.OID) (p, q pathexpr.Path, ok bool, err error) {
	full := m.Def.FullPath()
	q, found, err := m.Access.Path(m.Def.Entry, n1)
	if err != nil || !found {
		return nil, nil, false, err
	}
	lbl, err := m.Access.Label(n2)
	if err != nil {
		return nil, nil, false, err
	}
	prefix := q.Concat(pathexpr.Path{lbl})
	if !full.HasPrefix(prefix) {
		return nil, nil, false, nil
	}
	return full[len(prefix):], q, true, nil
}

// onInsert is Algorithm 1's insert(N1,N2) case:
//
//	If sel_path.cond_path = path(ROOT,N1).label(N2).p then
//	  S = eval(N2, p, cond)
//	  for all X in S: V_insert(MV, MV.Y) where Y = ancestor(X, cond_path)
func (m *SimpleMaintainer) onInsert(n1, n2 oem.OID) (Deltas, error) {
	var d Deltas
	p, _, ok, err := m.matchPrefix(n1, n2)
	if err != nil || !ok {
		return d, err
	}
	s, err := m.Access.EvalCond(n2, p, m.Def.Cond)
	if err != nil {
		return d, err
	}
	for _, x := range s {
		y, found, err := m.Access.Ancestor(x, m.Def.CondPath)
		if err != nil {
			return d, err
		}
		if found {
			d.Insert = append(d.Insert, y)
		}
	}
	return d, nil
}

// onDelete is Algorithm 1's delete(N1,N2) case:
//
//	If sel_path.cond_path = path(ROOT,N1).label(N2).p then
//	  S = eval(N2, p, cond)
//	  for all X in S, Y = ancestor(X, cond_path)
//	  if p = p1.cond_path then V_delete(MV, MV.Y)
//	  else if eval(Y, cond_path, cond) = ∅ then V_delete(MV, MV.Y)
//
// When p ends with cond_path, Y lies inside the detached subtree and
// ancestor(X, cond_path) uses only subtree edges, which remain intact.
// Otherwise Y lies on the still-attached path above N1; the paper's
// ancestor(X, cond_path) would cross the edge that was just deleted, so we
// reach Y equivalently as ancestor(N1, q[|sel_path|:]) using intact edges,
// then re-check the condition (other descendants of Y may still satisfy
// it — the non-unique-label scenario of Section 4.2).
func (m *SimpleMaintainer) onDelete(n1, n2 oem.OID) (Deltas, error) {
	var d Deltas
	p, q, ok, err := m.matchPrefix(n1, n2)
	if err != nil || !ok {
		return d, err
	}
	s, err := m.Access.EvalCond(n2, p, m.Def.Cond)
	if err != nil {
		return d, err
	}
	if len(s) == 0 {
		return d, nil
	}
	if p.HasSuffix(m.Def.CondPath) {
		// Y is at or below N2: every X maps to a Y that lost its only
		// root path (tree base), so the delete is unconditional.
		for _, x := range s {
			y, found, err := m.Access.Ancestor(x, m.Def.CondPath)
			if err != nil {
				return d, err
			}
			if found {
				d.Delete = append(d.Delete, y)
			}
		}
		return d, nil
	}
	// Y is above the deleted edge, at selection depth along q.
	rel := q[len(m.Def.SelPath):]
	y, found, err := m.Access.Ancestor(n1, rel)
	if err != nil || !found {
		return d, err
	}
	remaining, err := m.Access.EvalCond(y, m.Def.CondPath, m.Def.Cond)
	if err != nil {
		return d, err
	}
	if len(remaining) == 0 {
		d.Delete = append(d.Delete, y)
	}
	return d, nil
}

// onModify is Algorithm 1's modify(N,oldv,newv) case:
//
//	If path(ROOT,N) = sel_path.cond_path then
//	  Y = ancestor(N, cond_path)
//	  if cond(newv) then V_insert(MV, MV.Y)
//	  else if cond(oldv) and eval(Y, cond_path, cond) = ∅
//	    then V_delete(MV, MV.Y)
func (m *SimpleMaintainer) onModify(n oem.OID, oldv, newv oem.Atom) (Deltas, error) {
	var d Deltas
	full := m.Def.FullPath()
	pn, found, err := m.Access.Path(m.Def.Entry, n)
	if err != nil || !found {
		return d, err
	}
	if !pn.Equal(full) {
		return d, nil
	}
	y, found, err := m.Access.Ancestor(n, m.Def.CondPath)
	if err != nil || !found {
		return d, err
	}
	if m.Def.Cond.HoldsValue(newv) {
		d.Insert = append(d.Insert, y)
		return d, nil
	}
	if m.Def.Cond.HoldsValue(oldv) {
		remaining, err := m.Access.EvalCond(y, m.Def.CondPath, m.Def.Cond)
		if err != nil {
			return d, err
		}
		if len(remaining) == 0 {
			d.Delete = append(d.Delete, y)
		}
	}
	return d, nil
}

// VInsert exposes V_insert for callers that derive membership changes by
// other means — the warehouse uses it for the Level-1 modify protocol,
// where old and new values are withheld and membership is re-derived by
// querying the source.
func (m *SimpleMaintainer) VInsert(y oem.OID) error {
	_, err := viewInsert(m.View, m.Access, y)
	return err
}

// VDelete exposes V_delete; see VInsert.
func (m *SimpleMaintainer) VDelete(y oem.OID) error {
	_, err := viewDelete(m.View, y)
	return err
}

// refreshDelegate keeps delegate values equal to their originals when an
// update touches an object that (still) has a delegate in the view.
func (m *SimpleMaintainer) refreshDelegate(u store.Update) error {
	return refreshDelegate(m.View, u)
}

// viewInsert implements V_insert for any maintainer; it reports whether
// membership actually changed (inserting an existing delegate is
// ignored). The new delegate is created unswizzled, then swizzled — and
// cross-references from existing delegates fixed up — when the view is
// currently swizzled.
func viewInsert(mv *MaterializedView, access BaseAccess, y oem.OID) (bool, error) {
	d := DelegateOID(mv.OID, y)
	vo, err := mv.ViewStore.Get(mv.OID)
	if err != nil {
		return false, err
	}
	if vo.Contains(d) {
		return false, nil
	}
	o, err := access.Fetch(y)
	if err != nil {
		return false, fmt.Errorf("core: V_insert(%s, %s): %w", mv.OID, d, err)
	}
	del := o.Clone()
	del.OID = d
	if mv.ViewStore.Has(d) {
		// A stale delegate object survived an earlier removal; overwrite.
		if err := mv.setDelegate(del); err != nil {
			return false, err
		}
	} else if err := mv.ViewStore.Put(del); err != nil {
		return false, err
	}
	if err := mv.ViewStore.Insert(mv.OID, d); err != nil {
		return false, err
	}
	if mv.Swizzled {
		return true, reswizzleAround(mv, y)
	}
	return true, nil
}

// viewDelete implements V_delete for any maintainer; it reports whether
// membership actually changed (deleting an absent delegate does nothing).
func viewDelete(mv *MaterializedView, y oem.OID) (bool, error) {
	d := DelegateOID(mv.OID, y)
	vo, err := mv.ViewStore.Get(mv.OID)
	if err != nil {
		return false, err
	}
	if !vo.Contains(d) {
		return false, nil
	}
	if mv.Swizzled {
		// Other delegates pointing at MV.y fall back to the base OID y.
		if err := mv.mapEdges(func(mem oem.OID) (oem.OID, bool) {
			if mem == d {
				return y, true
			}
			return mem, false
		}); err != nil {
			return false, err
		}
	}
	if err := mv.ViewStore.Delete(mv.OID, d); err != nil {
		return false, err
	}
	return true, mv.ViewStore.Remove(d)
}

// DiffMembers computes the Deltas that transform the sorted membership
// before into after — the observer payload for maintainers that
// reconcile instead of computing deltas directly (general, DAG,
// recompute). Inputs must be sorted ascending (MaterializedView.Members
// returns sorted slices).
func DiffMembers(before, after []oem.OID) Deltas {
	var d Deltas
	i, j := 0, 0
	for i < len(before) && j < len(after) {
		switch {
		case before[i] == after[j]:
			i++
			j++
		case before[i] < after[j]:
			d.Delete = append(d.Delete, before[i])
			i++
		default:
			d.Insert = append(d.Insert, after[j])
			j++
		}
	}
	d.Delete = append(d.Delete, before[i:]...)
	d.Insert = append(d.Insert, after[j:]...)
	return d
}

// reswizzleAround restores the swizzling invariant after delegate y was
// inserted into a swizzled view: the new delegate's value is swizzled, and
// existing delegates pointing at base OID y are redirected to MV.y.
func reswizzleAround(mv *MaterializedView, y oem.OID) error {
	d := DelegateOID(mv.OID, y)
	return mv.mapEdges(func(mem oem.OID) (oem.OID, bool) {
		if mem == y {
			return d, true
		}
		dm := DelegateOID(mv.OID, mem)
		if mv.ViewStore.Has(dm) {
			// Member of the freshly copied delegate value.
			return dm, true
		}
		return mem, false
	})
}

// refreshDelegate propagates a base update into the affected delegate's
// value, preserving the "same value as the original" property for members
// whose membership did not change.
func refreshDelegate(mv *MaterializedView, u store.Update) error {
	d := DelegateOID(mv.OID, u.N1)
	vo, err := mv.ViewStore.Get(mv.OID)
	if err != nil {
		return err
	}
	if !vo.Contains(d) {
		return nil
	}
	switch u.Kind {
	case store.UpdateInsert:
		member := u.N2
		if mv.Swizzled {
			if dm := DelegateOID(mv.OID, u.N2); mv.ViewStore.Has(dm) {
				member = dm
			}
		}
		obj, err := mv.ViewStore.Get(d)
		if err != nil {
			return err
		}
		if obj.Contains(member) {
			return nil
		}
		return mv.ViewStore.Insert(d, member)
	case store.UpdateDelete:
		obj, err := mv.ViewStore.Get(d)
		if err != nil {
			return err
		}
		for _, cand := range []oem.OID{u.N2, DelegateOID(mv.OID, u.N2)} {
			if obj.Contains(cand) {
				return mv.ViewStore.Delete(d, cand)
			}
		}
		return nil
	case store.UpdateModify:
		return mv.ViewStore.Modify(d, u.New)
	default:
		return nil
	}
}
