package core

import (
	"fmt"

	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/store"
)

// BaseAccess isolates the computations of Algorithm 1 that need access to
// the base databases — the functions path(ROOT,N), ancestor(N,p) and
// eval(N,p,cond) of Section 4.3, plus object fetches for delegate creation.
// The same maintenance code runs centralized (CentralAccess, direct store
// reads) and in a warehouse (the warehouse package implements BaseAccess by
// sending source queries), exactly as the paper intends when it says the
// algorithm "isolates the computations that need access to the base
// databases".
type BaseAccess interface {
	// Path returns path(root, n): the label path from root to n, assuming
	// tree structure (at most one path between two objects). ok is false
	// when n is not a descendant of root. Path(root, root) is the empty
	// path.
	Path(root, n oem.OID) (pathexpr.Path, bool, error)
	// Ancestor returns ancestor(n, p): the ancestor y of n with
	// path(y, n) = p, or ok=false if none exists. Ancestor(n, ε) is n.
	Ancestor(n oem.OID, p pathexpr.Path) (oem.OID, bool, error)
	// EvalCond returns eval(n, p, cond): the objects in n.p that satisfy
	// the condition.
	EvalCond(n oem.OID, p pathexpr.Path, cond CondTest) ([]oem.OID, error)
	// Fetch returns a copy of object n, for delegate creation.
	Fetch(n oem.OID) (*oem.Object, error)
	// Label returns label(n).
	Label(n oem.OID) (string, error)
}

// AccessStats counts the base accesses a maintainer performed; experiment
// E2 compares these across index configurations and the warehouse package
// maps them to source queries.
type AccessStats struct {
	PathCalls     int
	AncestorCalls int
	EvalCalls     int
	FetchCalls    int
	LabelCalls    int
	// ObjectsTouched counts individual base objects read.
	ObjectsTouched int
}

// Add accumulates other into s.
func (s *AccessStats) Add(other AccessStats) {
	s.PathCalls += other.PathCalls
	s.AncestorCalls += other.AncestorCalls
	s.EvalCalls += other.EvalCalls
	s.FetchCalls += other.FetchCalls
	s.LabelCalls += other.LabelCalls
	s.ObjectsTouched += other.ObjectsTouched
}

// CentralAccess implements BaseAccess directly against a store — the
// centralized setting of Section 4, where base data and view reside at the
// same site. When the store maintains a parent index, Path and Ancestor
// walk up from the object; without it they fall back to traversals from the
// root or scans, reproducing the cost asymmetry of Section 4.4 ("if there
// does not exist such an index, evaluating the same function may require a
// traversal from ROOT to N").
type CentralAccess struct {
	// S is the base read surface: the live store, or a pinned snapshot when
	// a maintenance batch wants every read answered at one version (see
	// Registry.ApplyBatch).
	S store.Reader
	// Within restricts all traversals to members of this database object,
	// implementing a WITHIN clause in the view definition. Empty means
	// unrestricted.
	Within oem.OID
	// Stats, when non-nil, accumulates access counters.
	Stats *AccessStats
}

// NewCentralAccess returns a CentralAccess over s — a live store or a
// pinned snapshot.
func NewCentralAccess(s store.Reader) *CentralAccess { return &CentralAccess{S: s} }

func (a *CentralAccess) touch(n int) {
	if a.Stats != nil {
		a.Stats.ObjectsTouched += n
	}
}

// scope returns the WITHIN member set, or nil for unrestricted access.
func (a *CentralAccess) scope() (map[oem.OID]bool, error) {
	if a.Within == "" {
		return nil, nil
	}
	return a.S.DatabaseMembers(a.Within)
}

func inScope(scope map[oem.OID]bool, oid oem.OID) bool {
	return scope == nil || scope[oid]
}

// Label implements BaseAccess.
func (a *CentralAccess) Label(n oem.OID) (string, error) {
	if a.Stats != nil {
		a.Stats.LabelCalls++
	}
	a.touch(1)
	return a.S.Label(n)
}

// Fetch implements BaseAccess.
func (a *CentralAccess) Fetch(n oem.OID) (*oem.Object, error) {
	if a.Stats != nil {
		a.Stats.FetchCalls++
	}
	a.touch(1)
	return a.S.Get(n)
}

// Path implements BaseAccess. With a parent index it walks up from n,
// collecting labels; without one it searches down from root.
func (a *CentralAccess) Path(root, n oem.OID) (pathexpr.Path, bool, error) {
	if a.Stats != nil {
		a.Stats.PathCalls++
	}
	scope, err := a.scope()
	if err != nil {
		return nil, false, err
	}
	if !inScope(scope, n) || !inScope(scope, root) {
		return nil, false, nil
	}
	if n == root {
		return pathexpr.Path{}, true, nil
	}
	if a.S.Options().ParentIndex {
		return a.pathUp(root, n, scope)
	}
	return a.pathDown(root, n, scope)
}

// pathUp walks parent links from n toward root. The base is assumed to be
// a tree; with multiple parents (a DAG) it explores all of them and returns
// the first root-reaching path, which is unique on trees.
func (a *CentralAccess) pathUp(root, n oem.OID, scope map[oem.OID]bool) (pathexpr.Path, bool, error) {
	type frame struct {
		oid  oem.OID
		path pathexpr.Path // labels from oid down to n
	}
	lbl, err := a.S.Label(n)
	if err != nil {
		return nil, false, err
	}
	a.touch(1)
	stack := []frame{{n, pathexpr.Path{lbl}}}
	visited := map[oem.OID]bool{n: true}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		parents, err := a.S.Parents(f.oid)
		if err != nil {
			return nil, false, err
		}
		a.touch(len(parents))
		for _, p := range parents {
			if !inScope(scope, p) {
				continue
			}
			if p == root {
				return f.path, true, nil
			}
			if visited[p] {
				continue
			}
			visited[p] = true
			plbl, err := a.S.Label(p)
			if err != nil {
				return nil, false, err
			}
			if oem.IsGroupingLabel(plbl) || isDelegate(p) {
				// Grouping objects (databases, views) point at everything,
				// and delegates of co-located materialized views shadow
				// base objects; neither is part of the base data tree
				// unless used as root.
				continue
			}
			stack = append(stack, frame{p, pathexpr.Path{plbl}.Concat(f.path)})
		}
	}
	return nil, false, nil
}

// pathDown searches from root for n — the index-free fallback.
func (a *CentralAccess) pathDown(root, n oem.OID, scope map[oem.OID]bool) (pathexpr.Path, bool, error) {
	type frame struct {
		oid  oem.OID
		path pathexpr.Path
	}
	stack := []frame{{root, pathexpr.Path{}}}
	visited := map[oem.OID]bool{root: true}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		kids, err := a.S.Children(f.oid)
		if err != nil {
			continue // object vanished mid-walk; treat as leaf
		}
		a.touch(1)
		for _, c := range kids {
			if !inScope(scope, c) || visited[c] {
				continue
			}
			lbl, err := a.S.Label(c)
			if err != nil {
				continue // dangling reference
			}
			cpath := f.path.Concat(pathexpr.Path{lbl})
			if c == n {
				return cpath, true, nil
			}
			visited[c] = true
			stack = append(stack, frame{c, cpath})
		}
	}
	return nil, false, nil
}

// Ancestor implements BaseAccess. With a parent index it walks up len(p)
// steps verifying labels; without one it scans candidate ancestors —
// the expensive case the paper warns about.
func (a *CentralAccess) Ancestor(n oem.OID, p pathexpr.Path) (oem.OID, bool, error) {
	if a.Stats != nil {
		a.Stats.AncestorCalls++
	}
	scope, err := a.scope()
	if err != nil {
		return oem.NoOID, false, err
	}
	if !inScope(scope, n) {
		return oem.NoOID, false, nil
	}
	if len(p) == 0 {
		return n, true, nil
	}
	if a.S.Options().ParentIndex {
		return a.ancestorUp(n, p, scope)
	}
	return a.ancestorScan(n, p, scope)
}

func (a *CentralAccess) ancestorUp(n oem.OID, p pathexpr.Path, scope map[oem.OID]bool) (oem.OID, bool, error) {
	// Walk up one step per label of p, last label first. On a tree each
	// step has one parent; on DAG bases all parents are explored.
	cur := []oem.OID{n}
	for i := len(p) - 1; i >= 0; i-- {
		var next []oem.OID
		for _, oid := range cur {
			lbl, err := a.S.Label(oid)
			if err != nil {
				continue
			}
			a.touch(1)
			if lbl != p[i] {
				continue
			}
			parents, err := a.S.Parents(oid)
			if err != nil {
				continue
			}
			a.touch(len(parents))
			for _, par := range parents {
				if inScope(scope, par) && !isDelegate(par) {
					next = append(next, par)
				}
			}
		}
		if len(next) == 0 {
			return oem.NoOID, false, nil
		}
		cur = next
	}
	// Drop grouping objects and delegates: a database object is a parent
	// of everything, and a co-located delegate copies its original's value
	// and label; either would masquerade as the ancestor.
	kept := cur[:0]
	for _, oid := range cur {
		if isDelegate(oid) {
			continue
		}
		lbl, err := a.S.Label(oid)
		if err == nil && !oem.IsGroupingLabel(lbl) {
			kept = append(kept, oid)
		}
	}
	if len(kept) == 0 {
		return oem.NoOID, false, nil
	}
	// Tree assumption: a single ancestor. On DAGs, return the smallest OID
	// deterministically; the generalized maintainer handles multiplicity.
	return oem.SortOIDs(kept)[0], true, nil
}

// ancestorScan finds an object X with path(X, n) = p by scanning all set
// objects and probing downward — O(|DB| · fanout^|p|) in the worst case.
func (a *CentralAccess) ancestorScan(n oem.OID, p pathexpr.Path, scope map[oem.OID]bool) (oem.OID, bool, error) {
	var probe func(oid oem.OID, depth int) bool
	probe = func(oid oem.OID, depth int) bool {
		if depth == len(p) {
			return oid == n
		}
		kids, err := a.S.Children(oid)
		if err != nil {
			return false
		}
		a.touch(1)
		for _, c := range kids {
			if !inScope(scope, c) {
				continue
			}
			lbl, err := a.S.Label(c)
			if err != nil || lbl != p[depth] {
				continue
			}
			if probe(c, depth+1) {
				return true
			}
		}
		return false
	}
	for _, oid := range a.S.OIDs() {
		if !inScope(scope, oid) {
			continue
		}
		if isDelegate(oid) {
			continue
		}
		if lbl, err := a.S.Label(oid); err != nil || oem.IsGroupingLabel(lbl) {
			continue
		}
		if probe(oid, 0) {
			return oid, true, nil
		}
	}
	return oem.NoOID, false, nil
}

// EvalCond implements BaseAccess: the objects in n.p satisfying cond.
func (a *CentralAccess) EvalCond(n oem.OID, p pathexpr.Path, cond CondTest) ([]oem.OID, error) {
	if a.Stats != nil {
		a.Stats.EvalCalls++
	}
	scope, err := a.scope()
	if err != nil {
		return nil, err
	}
	if !inScope(scope, n) {
		return nil, nil
	}
	reached := pathexpr.EvalPath(a.graph(scope), []oem.OID{n}, p)
	var out []oem.OID
	for _, oid := range reached {
		o, err := a.S.Get(oid)
		if err != nil {
			continue
		}
		a.touch(1)
		if cond.HoldsObject(o) {
			out = append(out, oid)
		}
	}
	return out, nil
}

// graph adapts the store to pathexpr.Graph under a scope.
func (a *CentralAccess) graph(scope map[oem.OID]bool) pathexpr.Graph {
	return pathexpr.GraphFunc(func(oid oem.OID) []pathexpr.Neighbor {
		if !inScope(scope, oid) {
			return nil
		}
		kids, err := a.S.Children(oid)
		if err != nil {
			return nil
		}
		a.touch(1)
		nbs := make([]pathexpr.Neighbor, 0, len(kids))
		for _, c := range kids {
			if !inScope(scope, c) {
				continue
			}
			lbl, err := a.S.Label(c)
			if err != nil {
				continue
			}
			nbs = append(nbs, pathexpr.Neighbor{Label: lbl, To: c})
		}
		return nbs
	})
}

// isDelegate reports whether an OID is a semantic delegate OID. Base OIDs
// produced by this library never contain dots, so the check is structural.
func isDelegate(oid oem.OID) bool {
	_, _, ok := SplitDelegateOID(oid)
	return ok
}

// ErrTreeViolation reports that a maintainer built for tree bases observed
// graph-shaped data it cannot handle.
var ErrTreeViolation = fmt.Errorf("core: base data violates the tree assumption")
