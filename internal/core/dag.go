package core

import (
	"fmt"

	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/store"
)

// DagAccess extends the helper functions for DAG-shaped bases, where the
// paper's Section 6 notes "there may be more than one path between two
// objects. Therefore, the actual implementation of the algorithm, e.g.,
// computing ancestor(X,p), is more difficult."
type DagAccess interface {
	BaseAccess
	// AllPaths returns every simple label path from root to n.
	AllPaths(root, n oem.OID) ([]pathexpr.Path, error)
	// AllAncestors returns every object X with path(X, n) = p.
	AllAncestors(n oem.OID, p pathexpr.Path) ([]oem.OID, error)
}

// AllPaths implements DagAccess for CentralAccess by walking parent edges
// upward, enumerating simple paths. Worst-case exponential in the DAG's
// sharing, like any all-paths enumeration; view paths are short in
// practice.
func (a *CentralAccess) AllPaths(root, n oem.OID) ([]pathexpr.Path, error) {
	scope, err := a.scope()
	if err != nil {
		return nil, err
	}
	if !inScope(scope, n) || !inScope(scope, root) {
		return nil, nil
	}
	var out []pathexpr.Path
	onStack := map[oem.OID]bool{}
	var walk func(oid oem.OID, below pathexpr.Path) error
	walk = func(oid oem.OID, below pathexpr.Path) error {
		if oid == root {
			out = append(out, below.Clone())
			return nil
		}
		if onStack[oid] {
			return nil // simple paths only
		}
		onStack[oid] = true
		defer delete(onStack, oid)
		lbl, err := a.S.Label(oid)
		if err != nil {
			return nil
		}
		a.touch(1)
		if oem.IsGroupingLabel(lbl) || isDelegate(oid) {
			return nil
		}
		parents, err := a.S.Parents(oid)
		if err != nil {
			return nil
		}
		a.touch(len(parents))
		next := pathexpr.Path{lbl}.Concat(below)
		for _, p := range parents {
			if !inScope(scope, p) {
				continue
			}
			if err := walk(p, next); err != nil {
				return err
			}
		}
		return nil
	}
	if n == root {
		return []pathexpr.Path{{}}, nil
	}
	if err := walk(n, pathexpr.Path{}); err != nil {
		return nil, err
	}
	return out, nil
}

// AllAncestors implements DagAccess for CentralAccess.
func (a *CentralAccess) AllAncestors(n oem.OID, p pathexpr.Path) ([]oem.OID, error) {
	scope, err := a.scope()
	if err != nil {
		return nil, err
	}
	if !inScope(scope, n) {
		return nil, nil
	}
	if len(p) == 0 {
		return []oem.OID{n}, nil
	}
	cur := map[oem.OID]bool{n: true}
	for i := len(p) - 1; i >= 0; i-- {
		next := map[oem.OID]bool{}
		for oid := range cur {
			lbl, err := a.S.Label(oid)
			if err != nil || lbl != p[i] {
				continue
			}
			a.touch(1)
			parents, err := a.S.Parents(oid)
			if err != nil {
				continue
			}
			a.touch(len(parents))
			for _, par := range parents {
				if inScope(scope, par) && !isDelegate(par) {
					next[par] = true
				}
			}
		}
		if len(next) == 0 {
			return nil, nil
		}
		cur = next
	}
	out := make([]oem.OID, 0, len(cur))
	for oid := range cur {
		lbl, err := a.S.Label(oid)
		if err == nil && !oem.IsGroupingLabel(lbl) {
			out = append(out, oid)
		}
	}
	return oem.SortOIDs(out), nil
}

// DagMaintainer is the Section 6 DAG relaxation of Algorithm 1: the same
// case analysis, with path(ROOT,N1) and ancestor(X,p) generalized to sets
// because objects can have several derivations. Deletions re-verify
// candidate members (another derivation may keep them in the view);
// insertions stay idempotent via V_insert.
type DagMaintainer struct {
	View   *MaterializedView
	Def    SimpleDef
	Access DagAccess
	// Observer, when non-nil, receives the membership deltas each Apply
	// actually performed.
	Observer DeltaObserver
}

// NewDagMaintainer builds the DAG maintainer for a simple view over a
// store with a parent index (required for upward path enumeration).
func NewDagMaintainer(mv *MaterializedView, access DagAccess) (*DagMaintainer, error) {
	def, ok := Simplify(mv.Query)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotSimple, mv.OID)
	}
	return &DagMaintainer{View: mv, Def: def, Access: access}, nil
}

// Apply implements Maintainer.
func (m *DagMaintainer) Apply(u store.Update) error {
	var applied Deltas
	switch u.Kind {
	case store.UpdateInsert:
		if err := m.onEdge(u.N1, u.N2, true, &applied); err != nil {
			return err
		}
	case store.UpdateDelete:
		if err := m.onEdge(u.N1, u.N2, false, &applied); err != nil {
			return err
		}
	case store.UpdateModify:
		if err := m.onModify(u.N1, u.Old, u.New, &applied); err != nil {
			return err
		}
	}
	if err := refreshDelegate(m.View, u); err != nil {
		return err
	}
	if m.Observer != nil {
		m.Observer(m.View.OID, u, applied)
	}
	return nil
}

// onEdge handles insert and delete symmetrically: it collects the
// candidate members whose derivations pass through the changed edge, then
// reconciles each against the current base state.
func (m *DagMaintainer) onEdge(n1, n2 oem.OID, isInsert bool, applied *Deltas) error {
	full := m.Def.FullPath()
	paths, err := m.Access.AllPaths(m.Def.Entry, n1)
	if err != nil {
		return err
	}
	lbl, err := m.Access.Label(n2)
	if err != nil {
		return nil
	}
	candidates := map[oem.OID]bool{}
	for _, q := range paths {
		prefix := q.Concat(pathexpr.Path{lbl})
		if !full.HasPrefix(prefix) {
			continue
		}
		p := full[len(prefix):]
		s, err := m.Access.EvalCond(n2, p, m.Def.Cond)
		if err != nil {
			return err
		}
		for _, x := range s {
			ys, err := m.Access.AllAncestors(x, m.Def.CondPath)
			if err != nil {
				return err
			}
			for _, y := range ys {
				candidates[y] = true
			}
		}
		// For deletions, members above the deleted edge are candidates
		// too (they may have lost their only evidence through n2).
		if !isInsert && len(prefix) > len(m.Def.SelPath) {
			ys, err := m.Access.AllAncestors(n1, q[len(m.Def.SelPath):])
			if err != nil {
				return err
			}
			for _, y := range ys {
				candidates[y] = true
			}
		}
	}
	for _, y := range oem.SortOIDs(oidKeys(candidates)) {
		if err := m.reconcile(y, applied); err != nil {
			return err
		}
	}
	return nil
}

// oidKeys collects a set's keys for deterministic iteration.
func oidKeys(set map[oem.OID]bool) []oem.OID {
	out := make([]oem.OID, 0, len(set))
	for oid := range set {
		out = append(out, oid)
	}
	return out
}

func (m *DagMaintainer) onModify(n oem.OID, oldv, newv oem.Atom, applied *Deltas) error {
	full := m.Def.FullPath()
	paths, err := m.Access.AllPaths(m.Def.Entry, n)
	if err != nil {
		return err
	}
	matches := false
	for _, q := range paths {
		if q.Equal(full) {
			matches = true
			break
		}
	}
	if !matches {
		return nil
	}
	ys, err := m.Access.AllAncestors(n, m.Def.CondPath)
	if err != nil {
		return err
	}
	for _, y := range ys {
		if err := m.reconcile(y, applied); err != nil {
			return err
		}
	}
	return nil
}

// reconcile re-derives Y's membership: Y is a member iff some root path to
// Y matches sel_path and some condition-path descendant satisfies cond.
// Actual changes are recorded in applied.
func (m *DagMaintainer) reconcile(y oem.OID, applied *Deltas) error {
	member, err := m.isMember(y)
	if err != nil {
		return err
	}
	if member {
		changed, err := viewInsert(m.View, m.Access, y)
		if changed {
			applied.Insert = append(applied.Insert, y)
		}
		return err
	}
	changed, err := viewDelete(m.View, y)
	if changed {
		applied.Delete = append(applied.Delete, y)
	}
	return err
}

func (m *DagMaintainer) isMember(y oem.OID) (bool, error) {
	paths, err := m.Access.AllPaths(m.Def.Entry, y)
	if err != nil {
		return false, err
	}
	onSel := false
	for _, q := range paths {
		if q.Equal(m.Def.SelPath) {
			onSel = true
			break
		}
	}
	if !onSel {
		return false, nil
	}
	evidence, err := m.Access.EvalCond(y, m.Def.CondPath, m.Def.Cond)
	if err != nil {
		return false, err
	}
	return len(evidence) > 0, nil
}
