package core

import (
	"testing"

	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/workload"
)

// newMVJ builds the paper's Example 4 materialized view MVJ (persons named
// John within PERSON), centralized.
func newMVJ(t testing.TB) (*store.Store, *MaterializedView) {
	t.Helper()
	s := store.NewDefault()
	workload.PersonDB(s)
	mv, err := Materialize("MVJ", query.MustParse("SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON"), s, s)
	if err != nil {
		t.Fatal(err)
	}
	return s, mv
}

func TestMaterializeFigure3(t *testing.T) {
	// Figure 3: MVJ holds delegates MVJ.P1 and MVJ.P3 with the base values.
	s, mv := newMVJ(t)
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"P1", "P3"}) {
		t.Fatalf("MVJ members = %v, want [P1 P3]", got)
	}
	vo, _ := s.Get("MVJ")
	if vo.Label != ViewLabel {
		t.Fatalf("view object label = %q", vo.Label)
	}
	if !oem.SameMembers(vo.Set, []oem.OID{"MVJ.P1", "MVJ.P3"}) {
		t.Fatalf("view object = %v", vo.Set)
	}
	p1, _ := mv.Delegate("P1")
	if !oem.SameMembers(p1.Set, []oem.OID{"N1", "A1", "S1", "P3"}) {
		t.Fatalf("MVJ.P1 = %v", p1.Set)
	}
	p3, _ := mv.Delegate("P3")
	if !oem.SameMembers(p3.Set, []oem.OID{"N3", "A3", "M3"}) {
		t.Fatalf("MVJ.P3 = %v", p3.Set)
	}
	if !mv.Contains("P1") || mv.Contains("P2") {
		t.Fatal("Contains wrong")
	}
}

func TestMaterializeDuplicateOID(t *testing.T) {
	s, _ := newMVJ(t)
	if _, err := Materialize("MVJ", query.MustParse("SELECT ROOT.professor X"), s, s); err == nil {
		t.Fatal("duplicate view OID accepted")
	}
}

func TestSwizzleAndUnswizzle(t *testing.T) {
	// Section 3.2: swizzling changes P3 in value(MVJ.P1) to MVJ.P3 — the
	// only member of MVJ.P1's value with a delegate in the view.
	s, mv := newMVJ(t)
	if err := mv.Swizzle(); err != nil {
		t.Fatal(err)
	}
	p1, _ := mv.Delegate("P1")
	if !oem.SameMembers(p1.Set, []oem.OID{"N1", "A1", "S1", "MVJ.P3"}) {
		t.Fatalf("swizzled MVJ.P1 = %v", p1.Set)
	}
	// Swizzling twice is a no-op.
	if err := mv.Swizzle(); err != nil {
		t.Fatal(err)
	}
	if err := mv.Unswizzle(); err != nil {
		t.Fatal(err)
	}
	p1, _ = mv.Delegate("P1")
	if !oem.SameMembers(p1.Set, []oem.OID{"N1", "A1", "S1", "P3"}) {
		t.Fatalf("unswizzled MVJ.P1 = %v", p1.Set)
	}
	_ = s
}

func TestQueryViewSameResultsSwizzledOrNot(t *testing.T) {
	// "Swizzling should not affect the results of queries": the paper's
	// SELECT MVJ.professor.student WITHIN MVJ returns MVJ.P3 either way.
	_, mv := newMVJ(t)
	q := query.MustParse("SELECT MVJ.professor.student WITHIN MVJ")
	unswizzled, err := mv.QueryView(q)
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(unswizzled, []oem.OID{"MVJ.P3"}) {
		t.Fatalf("unswizzled answer = %v, want [MVJ.P3]", unswizzled)
	}
	if err := mv.Swizzle(); err != nil {
		t.Fatal(err)
	}
	swizzled, err := mv.QueryView(q)
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(swizzled, unswizzled) {
		t.Fatalf("swizzled %v != unswizzled %v", swizzled, unswizzled)
	}
}

func TestQueryViewEquivalentToVirtual(t *testing.T) {
	// "Whether a view is materialized or not should not affect query
	// results": a query on MVJ returns the delegates of what the virtual
	// query returns on the base.
	s, mv := newMVJ(t)
	baseAns, err := query.NewEvaluator(s).Eval(query.MustParse("SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON"))
	if err != nil {
		t.Fatal(err)
	}
	viewAns, err := mv.QueryView(query.MustParse("SELECT MVJ.? X WITHIN MVJ"))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]oem.OID, len(baseAns))
	for i, b := range baseAns {
		want[i] = DelegateOID("MVJ", b)
	}
	if !oem.SameMembers(viewAns, want) {
		t.Fatalf("view answer %v != delegates of base answer %v", viewAns, want)
	}
}

func TestQueryViewReachesBaseWithoutWithin(t *testing.T) {
	// Without a WITHIN clause, a query on the view may follow base OIDs in
	// delegate values out to base objects (centralized store), e.g. the
	// age subobject of MVJ.P1.
	_, mv := newMVJ(t)
	got, err := mv.QueryView(query.MustParse("SELECT MVJ.professor.age X"))
	if err != nil {
		t.Fatal(err)
	}
	// A1 resolves to... MVJ has no delegate for A1, so it stays the base
	// object A1.
	if !oem.SameMembers(got, []oem.OID{"A1"}) {
		t.Fatalf("got %v, want [A1]", got)
	}
}

func TestStripBaseOIDs(t *testing.T) {
	// Swizzle then strip: the view becomes self-contained — queries cannot
	// escape to base objects anymore.
	_, mv := newMVJ(t)
	if err := mv.Swizzle(); err != nil {
		t.Fatal(err)
	}
	if err := mv.StripBaseOIDs(); err != nil {
		t.Fatal(err)
	}
	p1, _ := mv.Delegate("P1")
	if !oem.SameMembers(p1.Set, []oem.OID{"MVJ.P3"}) {
		t.Fatalf("stripped MVJ.P1 = %v", p1.Set)
	}
	got, err := mv.QueryView(query.MustParse("SELECT MVJ.professor.age X"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("query escaped the stripped view: %v", got)
	}
}

func TestAddTimestamps(t *testing.T) {
	_, mv := newMVJ(t)
	if err := mv.AddTimestamps(1234); err != nil {
		t.Fatal(err)
	}
	got, err := mv.QueryView(query.MustParse("SELECT MVJ.?.ts X WHERE X = 1234"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("timestamp subobjects = %v, want 2", got)
	}
	// Idempotent.
	if err := mv.AddTimestamps(9999); err != nil {
		t.Fatal(err)
	}
	got, _ = mv.QueryView(query.MustParse("SELECT MVJ.?.ts X WHERE X = 9999"))
	if len(got) != 0 {
		t.Fatalf("second AddTimestamps overwrote: %v", got)
	}
}

func TestRecomputeReconciles(t *testing.T) {
	s, mv := newMVJ(t)
	// Change the base behind the view's back, then recompute.
	if err := s.Modify("N2", oem.String_("John")); err != nil { // Sally -> John
		t.Fatal(err)
	}
	if err := s.Modify("N3", oem.String_("Jane")); err != nil { // P3's John -> Jane
		t.Fatal(err)
	}
	if err := mv.Recompute(); err != nil {
		t.Fatal(err)
	}
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"P1", "P2"}) {
		t.Fatalf("recomputed MVJ = %v, want [P1 P2]", got)
	}
	if mv.ViewStore.Has("MVJ.P3") {
		t.Fatal("stale delegate survived recompute")
	}
}

func TestRecomputePreservesSwizzling(t *testing.T) {
	s, mv := newMVJ(t)
	if err := mv.Swizzle(); err != nil {
		t.Fatal(err)
	}
	if err := s.Modify("N2", oem.String_("John")); err != nil {
		t.Fatal(err)
	}
	if err := mv.Recompute(); err != nil {
		t.Fatal(err)
	}
	if !mv.Swizzled {
		t.Fatal("recompute dropped the swizzled flag")
	}
	p1, _ := mv.Delegate("P1")
	if !p1.Contains("MVJ.P3") {
		t.Fatalf("swizzling lost after recompute: %v", p1.Set)
	}
}

func TestMaterializeIntoSeparateStore(t *testing.T) {
	// The warehouse arrangement: delegates live in their own store; base
	// OIDs inside delegate values dangle there (remote references).
	base := store.NewDefault()
	workload.PersonDB(base)
	vstore := store.New(store.Options{ParentIndex: true, LabelIndex: true, AllowDangling: true})
	mv, err := Materialize("MVJ", query.MustParse("SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON"), base, vstore)
	if err != nil {
		t.Fatal(err)
	}
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"P1", "P3"}) {
		t.Fatalf("members = %v", got)
	}
	if base.Has("MVJ.P1") {
		t.Fatal("delegate leaked into the base store")
	}
	if !vstore.Has("MVJ.P1") || vstore.Has("P1") {
		t.Fatal("view store contents wrong")
	}
	// Swizzling still works: P3 has a delegate, N1 does not.
	if err := mv.Swizzle(); err != nil {
		t.Fatal(err)
	}
	p1, _ := mv.Delegate("P1")
	if !p1.Contains("MVJ.P3") || !p1.Contains("N1") {
		t.Fatalf("swizzled remote delegate = %v", p1.Set)
	}
}
