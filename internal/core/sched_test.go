package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"gsv/internal/oem"
	"gsv/internal/store"
)

func TestSchedulerRunsEveryTaskOnce(t *testing.T) {
	for _, p := range []int{1, 2, 8} {
		s := NewScheduler(p)
		var counts [20]atomic.Int64
		tasks := make([]Task, len(counts))
		for i := range tasks {
			i := i
			tasks[i] = Task{Name: fmt.Sprintf("t%d", i), Fn: func() error {
				counts[i].Add(1)
				return nil
			}}
		}
		for _, err := range s.Run(tasks) {
			if err != nil {
				t.Fatalf("p=%d: unexpected error %v", p, err)
			}
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("p=%d: task %d ran %d times", p, i, got)
			}
		}
		if got := s.Metrics.Batches.Value(); got != 1 {
			t.Fatalf("p=%d: batches = %d", p, got)
		}
		if got := s.Metrics.QueueDepth.Value(); got != 0 {
			t.Fatalf("p=%d: queue depth left at %d", p, got)
		}
	}
}

func TestSchedulerErrorsArePositional(t *testing.T) {
	s := NewScheduler(4)
	boom := errors.New("boom")
	errs := s.Run([]Task{
		{Name: "ok", Fn: func() error { return nil }},
		{Name: "bad", Fn: func() error { return boom }},
		{Name: "ok2", Fn: func() error { return nil }},
	})
	if errs[0] != nil || errs[2] != nil || !errors.Is(errs[1], boom) {
		t.Fatalf("errs = %v", errs)
	}
}

func TestSchedulerBoundsConcurrency(t *testing.T) {
	const bound = 3
	s := NewScheduler(bound)
	var cur, peak atomic.Int64
	var mu sync.Mutex
	tasks := make([]Task, 24)
	for i := range tasks {
		tasks[i] = Task{Fn: func() error {
			n := cur.Add(1)
			mu.Lock()
			if n > peak.Load() {
				peak.Store(n)
			}
			mu.Unlock()
			runtime.Gosched()
			cur.Add(-1)
			return nil
		}}
	}
	s.Run(tasks)
	if p := peak.Load(); p > bound {
		t.Fatalf("peak concurrency %d exceeds bound %d", p, bound)
	}
}

func TestSchedulerParallelismDefaultsToNumCPU(t *testing.T) {
	s := NewScheduler(0)
	if got := s.Parallelism(); got != runtime.NumCPU() {
		t.Fatalf("Parallelism() = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	s.SetParallelism(5)
	if got := s.Parallelism(); got != 5 {
		t.Fatalf("Parallelism() = %d after SetParallelism(5)", got)
	}
	s.SetParallelism(-1)
	if got := s.Parallelism(); got != runtime.NumCPU() {
		t.Fatalf("Parallelism() = %d, want NumCPU after SetParallelism(-1)", got)
	}
}

func TestDeltaCoalescerNetsInsertDeletePairs(t *testing.T) {
	c := NewDeltaCoalescer()
	u := func(seq uint64) store.Update { return store.Update{Seq: seq, Kind: store.UpdateInsert} }

	c.Add(u(1), Deltas{Insert: []oem.OID{"A", "B"}})
	c.Add(u(2), Deltas{})                       // empty: ignored
	c.Add(u(3), Deltas{Delete: []oem.OID{"A"}}) // cancels A's insert
	c.Add(u(4), Deltas{Insert: []oem.OID{"C"}}) //
	c.Add(u(5), Deltas{Delete: []oem.OID{"D"}}) // net delete of pre-batch member
	c.Add(u(6), Deltas{Insert: []oem.OID{"D"}}) // cancels D's delete
	c.Add(u(7), Deltas{Delete: []oem.OID{"B"}}) // cancels B
	c.Add(u(8), Deltas{Insert: []oem.OID{"B"}}) // re-inserts B: net insert again

	if c.Count() != 7 {
		t.Fatalf("Count = %d, want 7 (empty delta must not count)", c.Count())
	}
	if c.Last().Seq != 8 {
		t.Fatalf("Last().Seq = %d, want 8", c.Last().Seq)
	}
	d := c.Deltas()
	if !oem.SameMembers(d.Insert, []oem.OID{"B", "C"}) {
		t.Fatalf("net Insert = %v, want [B C]", d.Insert)
	}
	if len(d.Delete) != 0 {
		t.Fatalf("net Delete = %v, want none", d.Delete)
	}
}

func TestDeltaCoalescerReplayEquivalence(t *testing.T) {
	// Replaying the coalesced delta over a starting membership must land
	// on the same set as replaying the per-update stream.
	apply := func(set map[oem.OID]bool, d Deltas) {
		for _, y := range d.Insert {
			set[y] = true
		}
		for _, y := range d.Delete {
			delete(set, y)
		}
	}
	stream := []Deltas{
		{Insert: []oem.OID{"A"}},
		{Delete: []oem.OID{"Z"}},
		{Insert: []oem.OID{"B"}, Delete: []oem.OID{"A"}},
		{Insert: []oem.OID{"A"}},
	}
	serial := map[oem.OID]bool{"Z": true}
	c := NewDeltaCoalescer()
	for i, d := range stream {
		apply(serial, d)
		c.Add(store.Update{Seq: uint64(i + 1)}, d)
	}
	coalesced := map[oem.OID]bool{"Z": true}
	apply(coalesced, c.Deltas())
	if len(serial) != len(coalesced) {
		t.Fatalf("serial %v vs coalesced %v", serial, coalesced)
	}
	for m := range serial {
		if !coalesced[m] {
			t.Fatalf("serial %v vs coalesced %v", serial, coalesced)
		}
	}
}
