package core

import (
	"fmt"
	"math/rand"
	"testing"

	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/workload"
)

// soakViews mixes simple views over distinct labels with an unscreenable
// wildcard view, so the soak exercises the label index, the always
// bucket, and the membership sweep together.
var soakViews = []string{
	"define mview SA0 as: SELECT REL.r0.tuple X WHERE X.age > 30",
	"define mview SA1 as: SELECT REL.r1.tuple X WHERE X.age > 55",
	"define mview SF1 as: SELECT REL.r0.tuple X WHERE X.f1 = 'v1'",
	"define mview SF2 as: SELECT REL.r1.tuple X WHERE X.f2 = 'v2'",
	"define mview SW as: SELECT REL.* X WHERE X.age > 40",
}

// soakLeg builds a fresh fixture, defines the soak views, drives the
// seeded stream through ApplyBatch in the given chunk sizes, and returns
// the final membership of every view plus the final store.
func soakLeg(t *testing.T, seed int64, chunks []int, parallelism int, screening bool) (map[string][]oem.OID, *store.Store) {
	t.Helper()
	s := store.NewDefault()
	workload.RelationLike(s, workload.RelationConfig{
		Relations: 2, TuplesPerRelation: 40, FieldsPerTuple: 3, Seed: seed,
	})
	var sets, atoms []oem.OID
	s.ForEach(func(o *oem.Object) {
		switch o.Label {
		case "tuple":
			sets = append(sets, o.OID)
		case "age", "f1", "f2":
			atoms = append(atoms, o.OID)
		}
	})
	r := NewRegistry(s)
	for _, stmt := range soakViews {
		if _, err := r.Define(stmt); err != nil {
			t.Fatal(err)
		}
	}
	r.SetParallelism(parallelism)
	r.SetScreening(screening)

	stream := workload.NewStream(s, workload.StreamConfig{Seed: seed + 1, ValueRange: 70}, sets, atoms)
	for _, n := range chunks {
		var batch []store.Update
		for i := 0; i < n; i++ {
			us, ok := stream.Next()
			if !ok {
				break
			}
			batch = append(batch, us...)
		}
		if err := r.ApplyBatch(batch); err != nil {
			t.Fatalf("ApplyBatch: %v", err)
		}
	}

	out := map[string][]oem.OID{}
	for _, name := range []string{"SA0", "SA1", "SF1", "SF2", "SW"} {
		ms, err := r.Evaluate(name)
		if err != nil {
			t.Fatalf("Evaluate(%s): %v", name, err)
		}
		out[name] = oem.SortOIDs(ms)
	}
	return out, s
}

// TestApplyBatchEquivalenceSoak is the PR's correctness bar: for several
// seeds and random chunkings, the parallel batched path (screening on,
// pool of 8), the serial path (screening off, parallelism 1), and a
// from-scratch recompute over the final base must agree member-for-member
// on every view. Run it under -race to also certify the fan-out.
func TestApplyBatchEquivalenceSoak(t *testing.T) {
	queries := map[string]string{
		"SA0": "SELECT REL.r0.tuple X WHERE X.age > 30",
		"SA1": "SELECT REL.r1.tuple X WHERE X.age > 55",
		"SF1": "SELECT REL.r0.tuple X WHERE X.f1 = 'v1'",
		"SF2": "SELECT REL.r1.tuple X WHERE X.f2 = 'v2'",
		"SW":  "SELECT REL.* X WHERE X.age > 40",
	}
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			// Random chunk sizes, identical across the legs (the chunking
			// is part of the workload, not the implementation under test).
			rng := rand.New(rand.NewSource(seed * 31))
			var chunks []int
			for total := 0; total < 150; {
				n := 1 + rng.Intn(40)
				chunks = append(chunks, n)
				total += n
			}

			parallel, ps := soakLeg(t, seed, chunks, 8, true)
			serial, ss := soakLeg(t, seed, chunks, 1, false)

			// Same deterministic stream, so the bases must agree before
			// the views are compared.
			if ps.Seq() != ss.Seq() {
				t.Fatalf("base stores diverged: seq %d vs %d", ps.Seq(), ss.Seq())
			}

			for name := range queries {
				if !oem.SameMembers(parallel[name], serial[name]) {
					t.Errorf("%s: parallel %v != serial %v", name, parallel[name], serial[name])
				}
			}

			// From-scratch recompute over the final base is the oracle for
			// both maintained paths.
			ev := query.NewEvaluator(ps)
			for name, q := range queries {
				want, err := ev.Eval(query.MustParse(q))
				if err != nil {
					t.Fatalf("oracle eval %s: %v", name, err)
				}
				if !oem.SameMembers(parallel[name], oem.SortOIDs(want)) {
					t.Errorf("%s: maintained %v != recomputed %v", name, parallel[name], want)
				}
			}
		})
	}
}
