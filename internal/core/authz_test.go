package core

import (
	"testing"

	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/workload"
)

// authzFixture builds PERSON plus a VJ view object (persons named John)
// and an authorizer granting "kid" access to VJ only.
func authzFixture(t testing.TB, mode AuthzMode) (*store.Store, *Authorizer) {
	t.Helper()
	s := store.NewDefault()
	workload.PersonDB(s)
	members, err := query.NewEvaluator(s).Eval(query.MustParse("SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON"))
	if err != nil {
		t.Fatal(err)
	}
	s.MustPut(oem.NewSet("VJ", "view", members...))
	a := NewAuthorizer(s, mode)
	a.Grant("kid", "VJ")
	return s, a
}

func TestAuthzAnsIntFiltersAnswer(t *testing.T) {
	_, a := authzFixture(t, AuthzAnsInt)
	// The kid asks for all professors; only the John professor (P1) is in
	// the authorized view.
	got, err := a.Run("kid", query.MustParse("SELECT ROOT.professor X"))
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(got, []oem.OID{"P1"}) {
		t.Fatalf("kid sees %v, want [P1]", got)
	}
}

func TestAuthzNoGrantsSeesNothing(t *testing.T) {
	_, a := authzFixture(t, AuthzAnsInt)
	got, err := a.Run("stranger", query.MustParse("SELECT ROOT.professor X"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("stranger sees %v", got)
	}
}

func TestAuthzWithinRestrictsTraversal(t *testing.T) {
	_, a := authzFixture(t, AuthzWithin)
	// Under WITHIN, even the traversal is confined: ROOT itself is outside
	// the authorized set, so nothing is reachable.
	got, err := a.Run("kid", query.MustParse("SELECT ROOT.professor X"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("kid sees %v through an unauthorized entry", got)
	}
	// Entering through an authorized object works.
	got, err = a.Run("kid", query.MustParse("SELECT P1.student X"))
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(got, []oem.OID{"P3"}) {
		t.Fatalf("kid sees %v, want [P3]", got)
	}
}

func TestAuthzRevoke(t *testing.T) {
	_, a := authzFixture(t, AuthzAnsInt)
	a.Revoke("kid")
	got, err := a.Run("kid", query.MustParse("SELECT ROOT.professor X"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("revoked kid sees %v", got)
	}
}

func TestAuthzCombinesWithExistingClause(t *testing.T) {
	s, a := authzFixture(t, AuthzAnsInt)
	// A query that already restricts to professors-only database gets the
	// intersection of both restrictions.
	profMembers, err := query.NewEvaluator(s).Eval(query.MustParse("SELECT ROOT.professor X"))
	if err != nil {
		t.Fatal(err)
	}
	s.MustPut(oem.NewSet("PROFS", "view", profMembers...))
	q := query.MustParse("SELECT ROOT.? X ANS INT PROFS")
	got, err := a.Run("kid", q)
	if err != nil {
		t.Fatal(err)
	}
	// P1 is both a professor and named John; P3 (John, student) is
	// filtered by PROFS, P2 (professor, Sally) by the grant.
	if !oem.SameMembers(got, []oem.OID{"P1"}) {
		t.Fatalf("combined restriction = %v, want [P1]", got)
	}
}

func TestAuthzGrantOfMaterializedViewCoversBase(t *testing.T) {
	s := store.NewDefault()
	workload.PersonDB(s)
	mv, err := Materialize("MVJ", query.MustParse("SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON"), s, s)
	if err != nil {
		t.Fatal(err)
	}
	_ = mv
	a := NewAuthorizer(s, AuthzAnsInt)
	a.Grant("kid", "MVJ")
	// Granting the materialized view authorizes both the delegates and
	// their base originals.
	got, err := a.Run("kid", query.MustParse("SELECT ROOT.? X"))
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(got, []oem.OID{"P1", "P3"}) {
		t.Fatalf("kid sees %v, want [P1 P3]", got)
	}
}

func TestAuthzMissingGrantedView(t *testing.T) {
	s := store.NewDefault()
	workload.PersonDB(s)
	a := NewAuthorizer(s, AuthzAnsInt)
	a.Grant("kid", "NOSUCH")
	if _, err := a.Run("kid", query.MustParse("SELECT ROOT.? X")); err == nil {
		t.Fatal("missing granted view did not error")
	}
}

func TestAuthzDynamicGrants(t *testing.T) {
	// "Since views can be changed, it is easy to dynamically modify the
	// privilege of a user": expansion resolves the view at query time.
	s, a := authzFixture(t, AuthzAnsInt)
	if err := s.Delete("VJ", "P3"); err != nil {
		t.Fatal(err)
	}
	got, err := a.Run("kid", query.MustParse("SELECT ROOT.? X"))
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(got, []oem.OID{"P1"}) {
		t.Fatalf("after shrinking VJ, kid sees %v", got)
	}
}
