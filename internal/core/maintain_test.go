package core

import (
	"fmt"
	"testing"

	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/workload"
)

// newYP builds the paper's Example 5 view YP (professors with age <= 45)
// over a fresh PERSON store, materialized into the same store.
func newYP(t testing.TB) (*store.Store, *MaterializedView, *SimpleMaintainer) {
	t.Helper()
	s := store.NewDefault()
	workload.PersonDB(s)
	mv, err := Materialize("YP", query.MustParse("SELECT ROOT.professor X WHERE X.age <= 45").Clone(), s, s)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewSimpleMaintainer(mv, NewCentralAccess(s))
	if err != nil {
		t.Fatal(err)
	}
	return s, mv, m
}

func applyLogged(t testing.TB, s *store.Store, m Maintainer, mutate func()) {
	t.Helper()
	before := s.Seq()
	mutate()
	for _, u := range s.LogSince(before) {
		if u.Kind != store.UpdateCreate && isViewTouch(u) {
			continue
		}
		if err := m.Apply(u); err != nil {
			t.Fatalf("Apply(%s): %v", u, err)
		}
	}
}

// isViewTouch filters view-store writes when base and view share a store.
func isViewTouch(u store.Update) bool {
	_, _, ok := SplitDelegateOID(u.N1)
	return ok || u.N1 == "YP"
}

func members(t testing.TB, mv *MaterializedView) []oem.OID {
	t.Helper()
	ms, err := mv.Members()
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func TestMaterializeExample5(t *testing.T) {
	// Figure 4 (left): YP contains only YP.P1 — P2 has no age child yet.
	_, mv, _ := newYP(t)
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"P1"}) {
		t.Fatalf("initial YP = %v, want [P1]", got)
	}
	d, err := mv.Delegate("P1")
	if err != nil {
		t.Fatal(err)
	}
	if d.OID != "YP.P1" || d.Label != "professor" {
		t.Fatalf("delegate = %v", d)
	}
	// Delegate value equals the original value (unswizzled base OIDs).
	if !oem.SameMembers(d.Set, []oem.OID{"N1", "A1", "S1", "P3"}) {
		t.Fatalf("delegate value = %v", d.Set)
	}
}

func TestExample5InsertAge(t *testing.T) {
	// insert(P2, A2) with <A2, age, 40>: P2 now satisfies age <= 45, so
	// YP.P2 is inserted — Figure 4 (right).
	s, mv, m := newYP(t)
	applyLogged(t, s, m, func() {
		s.MustPut(oem.NewAtom("A2", "age", oem.Int(40)))
		if err := s.Insert("P2", "A2"); err != nil {
			t.Fatal(err)
		}
	})
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"P1", "P2"}) {
		t.Fatalf("YP after insert = %v, want [P1 P2]", got)
	}
	d, _ := mv.Delegate("P2")
	if !oem.SameMembers(d.Set, []oem.OID{"N2", "ADD2", "A2"}) {
		t.Fatalf("YP.P2 value = %v", d.Set)
	}
}

func TestExample6DeleteProfessor(t *testing.T) {
	// delete(ROOT, P1): the view loses YP.P1 (Example 6, steps 1-3).
	s, mv, m := newYP(t)
	applyLogged(t, s, m, func() {
		if err := s.Delete("ROOT", "P1"); err != nil {
			t.Fatal(err)
		}
	})
	if got := members(t, mv); len(got) != 0 {
		t.Fatalf("YP after delete = %v, want empty", got)
	}
	if mv.ViewStore.Has("YP.P1") {
		t.Fatal("delegate YP.P1 not reclaimed")
	}
}

func TestInsertIrrelevantLabelIgnored(t *testing.T) {
	// An insert whose label does not lie on sel_path.cond_path cannot
	// change the view (the screening case of Section 5.1, scenario 2).
	s, mv, m := newYP(t)
	applyLogged(t, s, m, func() {
		s.MustPut(oem.NewAtom("H2", "hobby", oem.String_("golf")))
		if err := s.Insert("P2", "H2"); err != nil {
			t.Fatal(err)
		}
	})
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"P1"}) {
		t.Fatalf("YP = %v, want [P1]", got)
	}
}

func TestModifyInAndOut(t *testing.T) {
	s, mv, m := newYP(t)
	// modify(A1, 45, 50): P1 leaves the view.
	applyLogged(t, s, m, func() {
		if err := s.Modify("A1", oem.Int(50)); err != nil {
			t.Fatal(err)
		}
	})
	if got := members(t, mv); len(got) != 0 {
		t.Fatalf("after modify out: %v", got)
	}
	// modify(A1, 50, 44): P1 re-enters.
	applyLogged(t, s, m, func() {
		if err := s.Modify("A1", oem.Int(44)); err != nil {
			t.Fatal(err)
		}
	})
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"P1"}) {
		t.Fatalf("after modify back: %v", got)
	}
}

func TestModifyRefreshesAtomicDelegateValue(t *testing.T) {
	// A view over atomic objects: delegates must track value changes that
	// keep the object in the view.
	s := store.NewDefault()
	workload.PersonDB(s)
	mv, err := Materialize("AG", query.MustParse("SELECT ROOT.professor.age X WHERE X >= 0").Clone(), s, s)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewSimpleMaintainer(mv, NewCentralAccess(s))
	if err != nil {
		t.Fatal(err)
	}
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"A1"}) {
		t.Fatalf("AG = %v", got)
	}
	before := s.Seq()
	if err := s.Modify("A1", oem.Int(46)); err != nil {
		t.Fatal(err)
	}
	for _, u := range s.LogSince(before) {
		if err := m.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	d, _ := mv.Delegate("A1")
	if !d.Atom.Equal(oem.Int(46)) {
		t.Fatalf("delegate atom = %v, want 46", d.Atom)
	}
}

func TestMultipleDerivationsNonUniqueLabels(t *testing.T) {
	// Section 4.2: "one object may have two or more subobjects with the
	// same label", so a member can have several derivations. Removing one
	// age child must keep P1 in YP while another satisfying age remains.
	s, mv, m := newYP(t)
	applyLogged(t, s, m, func() {
		s.MustPut(oem.NewAtom("A1b", "age", oem.Int(30)))
		if err := s.Insert("P1", "A1b"); err != nil {
			t.Fatal(err)
		}
	})
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"P1"}) {
		t.Fatalf("after second age: %v", got)
	}
	// Remove the original satisfying age: P1 stays (A1b still satisfies).
	applyLogged(t, s, m, func() {
		if err := s.Delete("P1", "A1"); err != nil {
			t.Fatal(err)
		}
	})
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"P1"}) {
		t.Fatalf("after deleting A1: %v", got)
	}
	// Remove the second one too: now P1 leaves.
	applyLogged(t, s, m, func() {
		if err := s.Delete("P1", "A1b"); err != nil {
			t.Fatal(err)
		}
	})
	if got := members(t, mv); len(got) != 0 {
		t.Fatalf("after deleting both ages: %v", got)
	}
}

func TestModifyOneOfTwoDerivations(t *testing.T) {
	// Modify one satisfying age out of range while another remains: the
	// eval(Y, cond_path, cond) recheck must keep Y in the view.
	s, mv, m := newYP(t)
	applyLogged(t, s, m, func() {
		s.MustPut(oem.NewAtom("A1b", "age", oem.Int(30)))
		if err := s.Insert("P1", "A1b"); err != nil {
			t.Fatal(err)
		}
	})
	applyLogged(t, s, m, func() {
		if err := s.Modify("A1b", oem.Int(99)); err != nil {
			t.Fatal(err)
		}
	})
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"P1"}) {
		t.Fatalf("after modifying one derivation: %v", got)
	}
}

func TestInsertSubtreeBringsMembers(t *testing.T) {
	// Inserting an edge high in the tree can bring a whole subtree of new
	// members at once: insert(ROOT, P5) where P5 is a professor with a
	// satisfying age.
	s, mv, m := newYP(t)
	applyLogged(t, s, m, func() {
		s.MustPut(oem.NewAtom("A5", "age", oem.Int(33)))
		s.MustPut(oem.NewSet("P5", "professor", "A5"))
		if err := s.Insert("ROOT", "P5"); err != nil {
			t.Fatal(err)
		}
	})
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"P1", "P5"}) {
		t.Fatalf("YP = %v, want [P1 P5]", got)
	}
}

func TestExample7RelationView(t *testing.T) {
	// Example 7: SELECT REL.r0.tuple X WHERE X.age > 30; inserting a new
	// tuple T with age 40 adds SEL.T.
	s := store.NewDefault()
	db := workload.RelationLike(s, workload.RelationConfig{
		Relations: 2, TuplesPerRelation: 3, FieldsPerTuple: 2, Seed: 1,
	})
	mv, err := Materialize("SEL", query.MustParse("SELECT REL.r0.tuple X WHERE X.age > 30").Clone(), s, s)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewSimpleMaintainer(mv, NewCentralAccess(s))
	if err != nil {
		t.Fatal(err)
	}
	before := members(t, mv)
	seqBefore := s.Seq()
	s.MustPut(oem.NewAtom("Anew", "age", oem.Int(40)))
	s.MustPut(oem.NewSet("Tnew", "tuple", "Anew"))
	if err := s.Insert(db.Relations[0].OID, "Tnew"); err != nil {
		t.Fatal(err)
	}
	for _, u := range s.LogSince(seqBefore) {
		if err := m.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	want := append(append([]oem.OID{}, before...), "Tnew")
	if got := members(t, mv); !oem.SameMembers(got, want) {
		t.Fatalf("SEL = %v, want %v", got, want)
	}

	// Inserting a tuple into a different relation is screened out early.
	seqBefore = s.Seq()
	s.MustPut(oem.NewAtom("Aother", "age", oem.Int(40)))
	s.MustPut(oem.NewSet("Tother", "tuple", "Aother"))
	if err := s.Insert(db.Relations[1].OID, "Tother"); err != nil {
		t.Fatal(err)
	}
	for _, u := range s.LogSince(seqBefore) {
		if err := m.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	if got := members(t, mv); !oem.SameMembers(got, want) {
		t.Fatalf("SEL after irrelevant insert = %v, want %v", got, want)
	}
}

func TestViewWithoutWhere(t *testing.T) {
	s := store.NewDefault()
	workload.PersonDB(s)
	mv, err := Materialize("ALLP", query.MustParse("SELECT ROOT.professor X").Clone(), s, s)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewSimpleMaintainer(mv, NewCentralAccess(s))
	if err != nil {
		t.Fatal(err)
	}
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"P1", "P2"}) {
		t.Fatalf("ALLP = %v", got)
	}
	before := s.Seq()
	s.MustPut(oem.NewSet("P9", "professor"))
	if err := s.Insert("ROOT", "P9"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("ROOT", "P2"); err != nil {
		t.Fatal(err)
	}
	for _, u := range s.LogSince(before) {
		if err := m.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"P1", "P9"}) {
		t.Fatalf("ALLP = %v, want [P1 P9]", got)
	}
}

func TestDeltasAPI(t *testing.T) {
	s, _, m := newYP(t)
	s.MustPut(oem.NewAtom("A2", "age", oem.Int(40)))
	before := s.Seq()
	if err := s.Insert("P2", "A2"); err != nil {
		t.Fatal(err)
	}
	u := s.LogSince(before)[0]
	d, err := m.ComputeDeltas(u)
	if err != nil {
		t.Fatal(err)
	}
	if d.Empty() || !oem.SameMembers(d.Insert, []oem.OID{"P2"}) || len(d.Delete) != 0 {
		t.Fatalf("deltas = %+v", d)
	}
	// Create updates produce no deltas.
	d, err = m.ComputeDeltas(store.Update{Kind: store.UpdateCreate, N1: "Z"})
	if err != nil || !d.Empty() {
		t.Fatalf("create deltas = %+v, %v", d, err)
	}
}

func TestNewSimpleMaintainerRejectsGeneral(t *testing.T) {
	s := store.NewDefault()
	workload.PersonDB(s)
	mv, err := Materialize("W", query.MustParse("SELECT ROOT.* X WHERE X.name = 'John'").Clone(), s, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSimpleMaintainer(mv, NewCentralAccess(s)); err == nil {
		t.Fatal("wildcard view accepted by simple maintainer")
	}
}

// checkConsistent verifies the central correctness invariant: the
// incrementally maintained view equals a from-scratch materialization,
// both in membership and in delegate values.
func checkConsistent(t testing.TB, mv *MaterializedView) {
	t.Helper()
	fresh, err := query.NewEvaluator(mv.Base).Eval(mv.Query)
	if err != nil {
		t.Fatal(err)
	}
	got := members(t, mv)
	if !oem.SameMembers(got, fresh) {
		t.Fatalf("view members %v != recomputed %v", got, fresh)
	}
	for _, b := range fresh {
		d, err := mv.Delegate(b)
		if err != nil {
			t.Fatalf("missing delegate for %s: %v", b, err)
		}
		o, err := mv.Base.Get(b)
		if err != nil {
			t.Fatal(err)
		}
		if d.Label != o.Label || d.Kind != o.Kind {
			t.Fatalf("delegate %s shape mismatch: %v vs %v", b, d, o)
		}
		if o.IsAtomic() && !d.Atom.Equal(o.Atom) {
			t.Fatalf("delegate %s atom %v != base %v", b, d.Atom, o.Atom)
		}
		if o.IsSet() && !oem.SameMembers(d.Set, o.Set) {
			t.Fatalf("delegate %s value %v != base %v", b, d.Set, o.Set)
		}
	}
}

// TestPropertyIncrementalEqualsRecompute is the core correctness property:
// over random relation-like databases and long random update streams,
// Algorithm 1 keeps the view identical to recomputation after every
// update. Several view shapes are exercised.
func TestPropertyIncrementalEqualsRecompute(t *testing.T) {
	views := []string{
		"SELECT REL.r0.tuple X WHERE X.age > 30",
		"SELECT REL.r0.tuple X WHERE X.age <= 60",
		"SELECT REL.r1.tuple X WHERE X.age != 50",
		"SELECT REL.r0.tuple X",
		"SELECT REL.r0.tuple.age X WHERE X >= 20",
	}
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			base := store.NewDefault()
			db := workload.RelationLike(base, workload.RelationConfig{
				Relations: 2, TuplesPerRelation: 6, FieldsPerTuple: 2, Seed: seed,
			})
			vstore := store.New(store.Options{ParentIndex: true, LabelIndex: true, AllowDangling: true})
			var mvs []*MaterializedView
			var ms []*SimpleMaintainer
			for i, vq := range views {
				mv, err := Materialize(oem.OID(fmt.Sprintf("V%d", i)), query.MustParse(vq).Clone(), base, vstore)
				if err != nil {
					t.Fatal(err)
				}
				m, err := NewSimpleMaintainer(mv, NewCentralAccess(base))
				if err != nil {
					t.Fatal(err)
				}
				mvs = append(mvs, mv)
				ms = append(ms, m)
			}
			var sets, atoms []oem.OID
			for _, r := range db.Relations {
				sets = append(sets, r.OID)
				sets = append(sets, r.Tuples...)
				for _, tu := range r.Tuples {
					kids, _ := base.Children(tu)
					atoms = append(atoms, kids...)
				}
			}
			stream := workload.NewStream(base, workload.StreamConfig{
				Seed: seed * 31, Mix: workload.Mix{Insert: 3, Delete: 2, Modify: 5}, ValueRange: 80,
			}, sets, atoms)
			for step := 0; step < 120; step++ {
				us, ok := stream.Next()
				if !ok {
					break
				}
				for _, u := range us {
					for _, m := range ms {
						if err := m.Apply(u); err != nil {
							t.Fatalf("step %d %s: %v", step, u, err)
						}
					}
				}
				if step%10 == 0 || step == 119 {
					for _, mv := range mvs {
						checkConsistent(t, mv)
					}
				}
			}
			for _, mv := range mvs {
				checkConsistent(t, mv)
			}
		})
	}
}

// TestPropertyNoIndexEqualsIndexed replays the same stream against stores
// with and without parent indexes: Algorithm 1's answers must not depend
// on the index configuration, only its cost does.
func TestPropertyNoIndexEqualsIndexed(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		run := func(parentIndex bool) []oem.OID {
			opts := store.DefaultOptions()
			opts.ParentIndex = parentIndex
			base := store.New(opts)
			db := workload.RelationLike(base, workload.RelationConfig{
				Relations: 1, TuplesPerRelation: 5, FieldsPerTuple: 2, Seed: seed,
			})
			vstore := store.New(store.Options{AllowDangling: true, ParentIndex: true})
			mv, err := Materialize("V", query.MustParse("SELECT REL.r0.tuple X WHERE X.age > 40").Clone(), base, vstore)
			if err != nil {
				t.Fatal(err)
			}
			m, err := NewSimpleMaintainer(mv, NewCentralAccess(base))
			if err != nil {
				t.Fatal(err)
			}
			stream := workload.NewStream(base, workload.StreamConfig{Seed: seed}, db.Relations[0].Tuples, nil)
			for _, u := range stream.Run(60) {
				if err := m.Apply(u); err != nil {
					t.Fatal(err)
				}
			}
			return members(t, mv)
		}
		a, b := run(true), run(false)
		if !oem.SameMembers(a, b) {
			t.Fatalf("seed %d: indexed %v != unindexed %v", seed, a, b)
		}
	}
}
