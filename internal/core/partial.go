package core

import (
	"fmt"

	"gsv/internal/oem"
	"gsv/internal/store"
)

// PartialView is the paper's Section 6 open problem "partially
// materialized views ... views that materialize a few levels of objects
// and leave the rest as pointers back to base data. This type of views may
// be useful for caching some but not all data of interest."
//
// A PartialView materializes a delegate for every view member and for
// every descendant up to Depth levels below a member. Set values inside
// the materialized region are swizzled to delegate OIDs; values at the
// frontier keep base OIDs — the "pointers back to base data". Depth 0
// degenerates to a plain materialized view of the members.
//
// Maintenance combines Algorithm 1 for membership with mirror maintenance
// for the materialized region, so the partial copy tracks the base
// incrementally.
type PartialView struct {
	OID   oem.OID
	Def   SimpleDef
	Depth int
	Base  *store.Store
	// ViewStore holds the view object and delegates; it needs
	// AllowDangling (frontier pointers) and a parent index (pruning).
	ViewStore *store.Store
	Access    BaseAccess

	maint *SimpleMaintainer
	// depth maps each mirrored base OID to its level below its member
	// (members are at level 0).
	depth map[oem.OID]int
}

// NewPartialView materializes the view to the given depth.
func NewPartialView(oid oem.OID, def SimpleDef, depth int, base, viewStore *store.Store) (*PartialView, error) {
	if depth < 0 {
		return nil, fmt.Errorf("core: negative materialization depth %d", depth)
	}
	if base == viewStore {
		// Pruning garbage-collects the view store from the view object;
		// sharing it with the base (or other views) would reclaim their
		// objects.
		return nil, fmt.Errorf("core: a partial view needs a dedicated view store")
	}
	p := &PartialView{
		OID: oid, Def: def, Depth: depth,
		Base: base, ViewStore: viewStore,
		Access: NewCentralAccess(base),
		depth:  map[oem.OID]int{},
	}
	q, err := def.Query()
	if err != nil {
		return nil, err
	}
	// The membership maintainer shares the view store: its view object is
	// p's view object, and its V_insert/V_delete are overridden by p
	// (Apply consumes ComputeDeltas only).
	mv, err := Materialize(oid, q, base, viewStore)
	if err != nil {
		return nil, err
	}
	p.maint = &SimpleMaintainer{View: mv, Def: def, Access: p.Access}
	members, err := mv.Members()
	if err != nil {
		return nil, err
	}
	for _, m := range members {
		// Materialize created the level-0 delegates; deepen each member.
		p.depth[m] = 0
		if err := p.mirrorBelow(m, 0); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// delegateOID maps a mirrored base OID to its delegate OID.
func (p *PartialView) delegateOID(b oem.OID) oem.OID { return DelegateOID(p.OID, b) }

// mirrorBelow materializes the subtree under base object b (already
// mirrored at level lvl) down to p.Depth, swizzling values inside the
// region.
func (p *PartialView) mirrorBelow(b oem.OID, lvl int) error {
	o, err := p.Access.Fetch(b)
	if err != nil {
		return err
	}
	if err := p.writeDelegate(o, lvl); err != nil {
		return err
	}
	if !o.IsSet() || lvl >= p.Depth {
		return nil
	}
	for _, c := range o.Set {
		if !p.Base.Has(c) {
			continue // dangling base pointer stays dangling
		}
		if cur, ok := p.depth[c]; ok && cur <= lvl+1 {
			continue // already mirrored at the same or shallower level
		}
		p.depth[c] = lvl + 1
		if err := p.mirrorBelow(c, lvl+1); err != nil {
			return err
		}
	}
	return nil
}

// writeDelegate stores (or overwrites) the delegate of o at level lvl,
// swizzling set members that are themselves mirrored below the frontier.
func (p *PartialView) writeDelegate(o *oem.Object, lvl int) error {
	d := o.Clone()
	d.OID = p.delegateOID(o.OID)
	if d.IsSet() && lvl < p.Depth {
		for i, c := range d.Set {
			if p.Base.Has(c) {
				d.Set[i] = p.delegateOID(c)
			}
		}
	}
	if p.ViewStore.Has(d.OID) {
		if d.IsAtomic() {
			return p.ViewStore.Modify(d.OID, d.Atom)
		}
		return p.ViewStore.SetValue(d.OID, d.Set)
	}
	return p.ViewStore.Put(d)
}

// Apply maintains the partial view under one base update.
func (p *PartialView) Apply(u store.Update) error {
	deltas, err := p.maint.ComputeDeltas(u)
	if err != nil {
		return err
	}
	for _, y := range deltas.Insert {
		if err := p.addMember(y); err != nil {
			return err
		}
	}
	for _, y := range deltas.Delete {
		if err := p.removeMember(y); err != nil {
			return err
		}
	}
	return p.refresh(u)
}

func (p *PartialView) addMember(y oem.OID) error {
	vo, err := p.ViewStore.Get(p.OID)
	if err != nil {
		return err
	}
	d := p.delegateOID(y)
	if vo.Contains(d) {
		return nil
	}
	p.depth[y] = 0
	if err := p.mirrorBelow(y, 0); err != nil {
		return err
	}
	return p.ViewStore.Insert(p.OID, d)
}

func (p *PartialView) removeMember(y oem.OID) error {
	vo, err := p.ViewStore.Get(p.OID)
	if err != nil {
		return err
	}
	d := p.delegateOID(y)
	if !vo.Contains(d) {
		return nil
	}
	if err := p.ViewStore.Delete(p.OID, d); err != nil {
		return err
	}
	return p.prune()
}

// prune reclaims delegates no longer reachable from the view object and
// fixes the depth bookkeeping. Tree bases make reachability exact.
func (p *PartialView) prune() error {
	removed := p.ViewStore.CollectGarbage(p.OID)
	for _, d := range removed {
		if _, b, ok := SplitDelegateOID(d); ok {
			delete(p.depth, b)
		}
	}
	return nil
}

// refresh propagates a base update into the mirrored region.
func (p *PartialView) refresh(u store.Update) error {
	lvl, mirrored := p.depth[u.N1]
	if !mirrored {
		return nil
	}
	d := p.delegateOID(u.N1)
	if !p.ViewStore.Has(d) {
		return nil
	}
	switch u.Kind {
	case store.UpdateModify:
		return p.ViewStore.Modify(d, u.New)
	case store.UpdateInsert:
		if lvl >= p.Depth {
			// Frontier: record the base pointer.
			obj, err := p.ViewStore.Get(d)
			if err != nil {
				return err
			}
			if obj.Contains(u.N2) {
				return nil
			}
			return p.ViewStore.Insert(d, u.N2)
		}
		// Inside the region: mirror the attached subtree and link the
		// delegate.
		if p.Base.Has(u.N2) {
			if cur, ok := p.depth[u.N2]; !ok || cur > lvl+1 {
				p.depth[u.N2] = lvl + 1
				if err := p.mirrorBelow(u.N2, lvl+1); err != nil {
					return err
				}
			}
			obj, err := p.ViewStore.Get(d)
			if err != nil {
				return err
			}
			dm := p.delegateOID(u.N2)
			if obj.Contains(dm) {
				return nil
			}
			return p.ViewStore.Insert(d, dm)
		}
		// Dangling child: keep the base OID.
		return p.ViewStore.Insert(d, u.N2)
	case store.UpdateDelete:
		obj, err := p.ViewStore.Get(d)
		if err != nil {
			return err
		}
		for _, cand := range []oem.OID{p.delegateOID(u.N2), u.N2} {
			if obj.Contains(cand) {
				if err := p.ViewStore.Delete(d, cand); err != nil {
					return err
				}
				break
			}
		}
		return p.prune()
	default:
		return nil
	}
}

// Members returns the base OIDs of the view's members.
func (p *PartialView) Members() ([]oem.OID, error) { return p.maint.View.Members() }

// Delegate returns the delegate of a mirrored base object.
func (p *PartialView) Delegate(b oem.OID) (*oem.Object, error) {
	return p.ViewStore.Get(p.delegateOID(b))
}

// MirroredCount returns how many base objects are materialized, members
// included — the space the partial view actually uses.
func (p *PartialView) MirroredCount() int { return len(p.depth) }

// IsMirrored reports whether base object b has a delegate.
func (p *PartialView) IsMirrored(b oem.OID) bool {
	_, ok := p.depth[b]
	return ok
}
