package core

import (
	"fmt"
	"sort"

	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/query"
	"gsv/internal/store"
)

// AggOp enumerates the aggregate functions.
type AggOp int

const (
	// AggCount counts the view's members.
	AggCount AggOp = iota
	// AggSum sums the numeric values reached by the value path.
	AggSum
	// AggMin takes the minimum of those values.
	AggMin
	// AggMax takes the maximum.
	AggMax
	// AggAvg averages them.
	AggAvg
)

// String names the operator.
func (op AggOp) String() string {
	switch op {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	default:
		return fmt.Sprintf("AggOp(%d)", int(op))
	}
}

// AggDef defines an aggregate view — the paper's Section 6 open problem
// "views in which the value of one delegate object is obtained from more
// than one base objects, for example, aggregate views". Base selects the
// contributing members exactly like a simple view; ValuePath reaches the
// numeric atoms below each member that feed the aggregate (ignored by
// AggCount, which counts members).
//
// Example: the total salary of professors aged at most 45 —
//
//	Base:      SELECT ROOT.professor X WHERE X.age <= 45
//	ValuePath: salary
//	Op:        AggSum
type AggDef struct {
	Base      SimpleDef
	ValuePath pathexpr.Path
	Op        AggOp
}

// AggregateView is an incrementally maintained aggregate. Its result is a
// single atomic object <OID, op, value> in the view store, updated in
// place as the base changes. Internally it tracks the member set and, per
// member, the contributing atoms with their numeric values, so deletions
// and modifications adjust the aggregate exactly (min/max keep the full
// value multiset and never need base recomputation).
type AggregateView struct {
	OID    oem.OID
	Def    AggDef
	Base   *store.Store
	Views  *store.Store
	Access BaseAccess

	membership *SimpleMaintainer // drives membership deltas; its view is a shadow
	members    map[oem.OID]bool
	contrib    map[oem.OID]float64 // contributing atom -> numeric value
	atomOwner  map[oem.OID]oem.OID // contributing atom -> member
}

// NewAggregateView materializes the aggregate and returns its maintainer.
func NewAggregateView(oid oem.OID, def AggDef, base, views *store.Store) (*AggregateView, error) {
	a := &AggregateView{
		OID: oid, Def: def, Base: base, Views: views,
		Access:    NewCentralAccess(base),
		members:   map[oem.OID]bool{},
		contrib:   map[oem.OID]float64{},
		atomOwner: map[oem.OID]oem.OID{},
	}
	// A shadow materialized view collects membership; it lives in a
	// private store so no delegates pollute the caller's stores.
	shadow := store.New(store.Options{ParentIndex: true, AllowDangling: true})
	q, err := def.Base.Query()
	if err != nil {
		return nil, err
	}
	mv, err := Materialize(oid+"_members", q, base, shadow)
	if err != nil {
		return nil, err
	}
	a.membership = &SimpleMaintainer{View: mv, Def: def.Base, Access: a.Access}
	initial, err := mv.Members()
	if err != nil {
		return nil, err
	}
	for _, m := range initial {
		if err := a.addMember(m); err != nil {
			return nil, err
		}
	}
	if err := views.Put(oem.NewAtom(oid, def.Op.String(), a.result())); err != nil {
		return nil, err
	}
	return a, nil
}

// Query reconstructs a parsable query from a SimpleDef, the inverse of
// Simplify. Aggregate views use it to materialize their membership shadow
// through the standard path.
func (d SimpleDef) Query() (*query.Query, error) {
	qs := fmt.Sprintf("SELECT %s.%s X", d.Entry, joinPath(d.SelPath))
	if !d.Cond.Always {
		if d.Cond.Op == query.OpExists {
			qs += fmt.Sprintf(" WHERE EXISTS X.%s", joinPath(d.CondPath))
		} else {
			qs += fmt.Sprintf(" WHERE X.%s %s %s", joinPath(d.CondPath), d.Cond.Op, d.Cond.Literal)
		}
	}
	if d.Within != "" {
		qs += fmt.Sprintf(" WITHIN %s", d.Within)
	}
	return query.Parse(qs)
}

func joinPath(p pathexpr.Path) string {
	if len(p) == 0 {
		return ""
	}
	s := p[0]
	for _, l := range p[1:] {
		s += "." + l
	}
	return s
}

// Apply maintains the aggregate under one base update.
func (a *AggregateView) Apply(u store.Update) error {
	deltas, err := a.membership.ComputeDeltas(u)
	if err != nil {
		return err
	}
	// Keep the shadow view in sync so future delta computations that
	// consult it (none currently, but V_insert idempotence does) hold.
	if err := a.membership.Apply(u); err != nil {
		return err
	}
	for _, y := range deltas.Insert {
		if err := a.addMember(y); err != nil {
			return err
		}
	}
	for _, y := range deltas.Delete {
		a.removeMember(y)
	}
	if err := a.applyValueChange(u); err != nil {
		return err
	}
	return a.publish()
}

// addMember records a new member and pulls its current contributions.
func (a *AggregateView) addMember(y oem.OID) error {
	if a.members[y] {
		return nil
	}
	a.members[y] = true
	atoms, err := a.Access.EvalCond(y, a.Def.ValuePath, CondTest{Always: true})
	if err != nil {
		return err
	}
	for _, oid := range atoms {
		a.addContribution(y, oid)
	}
	return nil
}

func (a *AggregateView) addContribution(y, atom oem.OID) {
	o, err := a.Access.Fetch(atom)
	if err != nil || !o.IsAtomic() {
		return
	}
	v, ok := numeric(o.Atom)
	if !ok {
		return
	}
	a.contrib[atom] = v
	a.atomOwner[atom] = y
}

func (a *AggregateView) removeMember(y oem.OID) {
	if !a.members[y] {
		return
	}
	delete(a.members, y)
	for atom, owner := range a.atomOwner {
		if owner == y {
			delete(a.atomOwner, atom)
			delete(a.contrib, atom)
		}
	}
}

// applyValueChange tracks contributing atoms through the three updates.
func (a *AggregateView) applyValueChange(u store.Update) error {
	switch u.Kind {
	case store.UpdateModify:
		if owner, ok := a.atomOwner[u.N1]; ok {
			if v, isNum := numeric(u.New); isNum {
				a.contrib[u.N1] = v
			} else {
				delete(a.contrib, u.N1)
				delete(a.atomOwner, u.N1)
			}
			_ = owner
		} else {
			// The atom may have become relevant only now (it was
			// non-numeric before); re-check its ownership.
			return a.rescanAtom(u.N1)
		}
		return nil
	case store.UpdateInsert, store.UpdateDelete:
		// An edge change can attach or detach contributing atoms below a
		// member: match path(member, atom) = ValuePath around the edge.
		return a.rescanEdge(u)
	default:
		return nil
	}
}

// rescanAtom re-derives whether atom n contributes (its member ancestor is
// in the member set) and updates the books.
func (a *AggregateView) rescanAtom(n oem.OID) error {
	if len(a.Def.ValuePath) == 0 {
		return nil
	}
	y, ok, err := a.Access.Ancestor(n, a.Def.ValuePath)
	if err != nil || !ok || !a.members[y] {
		return err
	}
	a.addContribution(y, n)
	return nil
}

// rescanEdge handles insert/delete(N1,N2) for contribution tracking.
func (a *AggregateView) rescanEdge(u store.Update) error {
	full := a.Def.Base.SelPath.Concat(a.Def.ValuePath)
	q, found, err := a.Access.Path(a.Def.Base.Entry, u.N1)
	if err != nil || !found {
		return err
	}
	lbl, err := a.Access.Label(u.N2)
	if err != nil {
		return nil // dangling; nothing to do
	}
	prefix := q.Concat(pathexpr.Path{lbl})
	if !full.HasPrefix(prefix) {
		return nil
	}
	p := full[len(prefix):]
	atoms, err := a.Access.EvalCond(u.N2, p, CondTest{Always: true})
	if err != nil {
		return err
	}
	for _, atom := range atoms {
		if u.Kind == store.UpdateInsert {
			y, ok, err := a.Access.Ancestor(atom, a.Def.ValuePath)
			if err != nil {
				return err
			}
			if ok && a.members[y] {
				a.addContribution(y, atom)
			}
		} else {
			delete(a.contrib, atom)
			delete(a.atomOwner, atom)
		}
	}
	return nil
}

// result computes the current aggregate value.
func (a *AggregateView) result() oem.Atom {
	switch a.Def.Op {
	case AggCount:
		return oem.Int(int64(len(a.members)))
	case AggSum:
		return oem.Float(a.sum())
	case AggAvg:
		if len(a.contrib) == 0 {
			return oem.Atom{}
		}
		return oem.Float(a.sum() / float64(len(a.contrib)))
	case AggMin, AggMax:
		vals := a.values()
		if len(vals) == 0 {
			return oem.Atom{}
		}
		if a.Def.Op == AggMin {
			return oem.Float(vals[0])
		}
		return oem.Float(vals[len(vals)-1])
	default:
		return oem.Atom{}
	}
}

func (a *AggregateView) sum() float64 {
	s := 0.0
	for _, v := range a.contrib {
		s += v
	}
	return s
}

func (a *AggregateView) values() []float64 {
	out := make([]float64, 0, len(a.contrib))
	for _, v := range a.contrib {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}

// publish writes the current result into the view store's result object.
func (a *AggregateView) publish() error {
	cur, err := a.Views.Get(a.OID)
	if err != nil {
		return err
	}
	next := a.result()
	if cur.Atom.Equal(next) && cur.Atom.Kind == next.Kind {
		return nil
	}
	return a.Views.Modify(a.OID, next)
}

// Value returns the current aggregate value.
func (a *AggregateView) Value() (oem.Atom, error) {
	o, err := a.Views.Get(a.OID)
	if err != nil {
		return oem.Atom{}, err
	}
	return o.Atom, nil
}

// Members returns the current member count (for introspection and tests).
func (a *AggregateView) Members() int { return len(a.members) }

func numeric(v oem.Atom) (float64, bool) {
	switch v.Kind {
	case oem.AtomInt:
		return float64(v.I), true
	case oem.AtomFloat:
		return v.F, true
	default:
		return 0, false
	}
}
