package core

import (
	"testing"

	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/workload"
)

func personStore(t testing.TB, parentIndex bool) *store.Store {
	t.Helper()
	opts := store.DefaultOptions()
	opts.ParentIndex = parentIndex
	s := store.New(opts)
	workload.PersonDB(s)
	return s
}

func TestCentralAccessPath(t *testing.T) {
	for _, idx := range []bool{true, false} {
		s := personStore(t, idx)
		a := NewCentralAccess(s)
		cases := []struct {
			n    oem.OID
			want string
			ok   bool
		}{
			{"ROOT", "ε", true},
			{"P1", "professor", true},
			{"A1", "professor.age", true},
			{"A3", "student.age", true}, // ROOT.student.age: the direct edge wins
			{"M3", "student.major", true},
			{"PERSON", "", false}, // the database object is not a descendant
		}
		for _, c := range cases {
			p, ok, err := a.Path("ROOT", c.n)
			if err != nil {
				t.Fatalf("idx=%v Path(ROOT,%s): %v", idx, c.n, err)
			}
			if ok != c.ok {
				t.Errorf("idx=%v Path(ROOT,%s) ok = %v, want %v", idx, c.n, ok, c.ok)
				continue
			}
			if ok && p.String() != c.want && !alternatePath(c.n, p) {
				t.Errorf("idx=%v Path(ROOT,%s) = %s, want %s", idx, c.n, p, c.want)
			}
		}
	}
}

// alternatePath accepts the other valid derivation for objects with two
// paths from ROOT (P3 and its children are reachable directly and through
// P1). The paper assumes trees; the PERSON example is mildly DAG-shaped.
func alternatePath(n oem.OID, p pathexpr.Path) bool {
	alts := map[oem.OID][]string{
		"A3": {"professor.student.age"},
		"M3": {"professor.student.major"},
		"P3": {"professor.student"},
	}
	for _, alt := range alts[n] {
		if p.String() == alt {
			return true
		}
	}
	return false
}

func TestCentralAccessAncestor(t *testing.T) {
	for _, idx := range []bool{true, false} {
		s := personStore(t, idx)
		a := NewCentralAccess(s)
		y, ok, err := a.Ancestor("A1", pathexpr.MustParsePath("age"))
		if err != nil || !ok || y != "P1" {
			t.Fatalf("idx=%v Ancestor(A1, age) = %v %v %v", idx, y, ok, err)
		}
		y, ok, err = a.Ancestor("A3", pathexpr.MustParsePath("student.age"))
		if err != nil || !ok || y == oem.NoOID {
			t.Fatalf("idx=%v Ancestor(A3, student.age) = %v %v %v", idx, y, ok, err)
		}
		// Both ROOT and P1 have a student child; either is a valid answer
		// on this slightly DAG-shaped example.
		if y != "ROOT" && y != "P1" {
			t.Fatalf("idx=%v Ancestor(A3, student.age) = %v", idx, y)
		}
		// Empty path: the object itself.
		y, ok, _ = a.Ancestor("A1", pathexpr.Path{})
		if !ok || y != "A1" {
			t.Fatalf("idx=%v Ancestor(A1, ε) = %v %v", idx, y, ok)
		}
		// Label mismatch.
		_, ok, _ = a.Ancestor("A1", pathexpr.MustParsePath("salary"))
		if ok {
			t.Fatalf("idx=%v Ancestor(A1, salary) found", idx)
		}
	}
}

func TestCentralAccessEvalCond(t *testing.T) {
	s := personStore(t, true)
	a := NewCentralAccess(s)
	cond := CondTest{Op: query.OpLe, Literal: oem.Int(45)}
	got, err := a.EvalCond("P1", pathexpr.MustParsePath("age"), cond)
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(got, []oem.OID{"A1"}) {
		t.Fatalf("eval(P1, age, <=45) = %v", got)
	}
	// Condition excluding: age > 100 matches nothing.
	got, _ = a.EvalCond("P1", pathexpr.MustParsePath("age"), CondTest{Op: query.OpGt, Literal: oem.Int(100)})
	if len(got) != 0 {
		t.Fatalf("eval(P1, age, >100) = %v", got)
	}
	// Empty path evaluates the object itself.
	got, _ = a.EvalCond("A1", pathexpr.Path{}, cond)
	if !oem.SameMembers(got, []oem.OID{"A1"}) {
		t.Fatalf("eval(A1, ε, <=45) = %v", got)
	}
}

func TestCentralAccessWithin(t *testing.T) {
	s := personStore(t, true)
	// D1 excludes A1: the condition path cannot reach it.
	var d1 []oem.OID
	for _, oid := range workload.PersonOIDs {
		if oid != "A1" {
			d1 = append(d1, oid)
		}
	}
	if err := s.NewDatabase("D1", "database", d1...); err != nil {
		t.Fatal(err)
	}
	a := &CentralAccess{S: s, Within: "D1"}
	got, err := a.EvalCond("P1", pathexpr.MustParsePath("age"), CondTest{Always: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("eval within D1 reached %v", got)
	}
	// Path to an excluded object fails.
	_, ok, _ := a.Path("ROOT", "A1")
	if ok {
		t.Fatal("Path reached excluded object")
	}
}

func TestCentralAccessStats(t *testing.T) {
	s := personStore(t, true)
	a := NewCentralAccess(s)
	a.Stats = &AccessStats{}
	if _, _, err := a.Path("ROOT", "A1"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Fetch("P1"); err != nil {
		t.Fatal(err)
	}
	if a.Stats.PathCalls != 1 || a.Stats.FetchCalls != 1 || a.Stats.ObjectsTouched == 0 {
		t.Fatalf("stats = %+v", a.Stats)
	}
	var sum AccessStats
	sum.Add(*a.Stats)
	sum.Add(*a.Stats)
	if sum.PathCalls != 2 {
		t.Fatalf("Add: %+v", sum)
	}
}

func TestCentralAccessDetachedSubtree(t *testing.T) {
	// After delete(ROOT,P1), ancestor within the detached subtree still
	// works with the parent index — the delete case of Algorithm 1 relies
	// on it.
	s := personStore(t, true)
	if err := s.Delete("ROOT", "P1"); err != nil {
		t.Fatal(err)
	}
	a := NewCentralAccess(s)
	y, ok, err := a.Ancestor("A1", pathexpr.MustParsePath("age"))
	if err != nil || !ok || y != "P1" {
		t.Fatalf("Ancestor in detached subtree = %v %v %v", y, ok, err)
	}
}
