package core

import (
	"testing"

	"gsv/internal/oem"
	"gsv/internal/store"
	"gsv/internal/workload"
)

// screenFixture builds a relation-like base (labels REL, r0/r1, tuple,
// age, f1, f2) with one registry holding views over distinct labels.
func screenFixture(t testing.TB) (*store.Store, *Registry) {
	t.Helper()
	s := store.NewDefault()
	workload.RelationLike(s, workload.RelationConfig{
		Relations: 2, TuplesPerRelation: 20, FieldsPerTuple: 3, Seed: 7,
	})
	r := NewRegistry(s)
	for _, stmt := range []string{
		"define mview A0 as: SELECT REL.r0.tuple X WHERE X.age > 30",
		"define mview A1 as: SELECT REL.r1.tuple X WHERE X.age > 30",
		"define mview F1 as: SELECT REL.r0.tuple X WHERE X.f1 = 'v1'",
	} {
		if _, err := r.Define(stmt); err != nil {
			t.Fatal(err)
		}
	}
	return s, r
}

// names maps Affected indices back to view names.
func affectedNames(ix *ScreenIndex, u store.Update, label func(oem.OID) (string, bool)) []string {
	var out []string
	for _, i := range ix.Affected(u, label) {
		out = append(out, ix.Views()[i].Name)
	}
	return out
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestScreenRoutesByKindAndLabel(t *testing.T) {
	s, r := screenFixture(t)
	ix := r.screenIndex()
	if len(ix.Views()) != 3 {
		t.Fatalf("indexed %d views", len(ix.Views()))
	}
	label := func(oid oem.OID) (string, bool) {
		l, err := s.Label(oid)
		return l, err == nil
	}

	// A modify of an age atom reaches exactly the age views (byLast).
	s.MustPut(oem.NewAtom("ZAGE", "age", oem.Int(99)))
	mod := store.Update{Kind: store.UpdateModify, N1: "ZAGE"}
	if got := affectedNames(ix, mod, label); !sameStrings(got, []string{"A0", "A1"}) {
		t.Fatalf("modify(age) routed to %v, want [A0 A1]", got)
	}

	// A modify of an f1 atom reaches only F1.
	s.MustPut(oem.NewAtom("ZF1", "f1", oem.String_("v1")))
	mod1 := store.Update{Kind: store.UpdateModify, N1: "ZF1"}
	if got := affectedNames(ix, mod1, label); !sameStrings(got, []string{"F1"}) {
		t.Fatalf("modify(f1) routed to %v, want [F1]", got)
	}

	// An insert whose child is an age atom reaches the age views; an
	// insert of an f2 atom reaches nothing (no view mentions f2).
	ins := store.Update{Kind: store.UpdateInsert, N1: "REL", N2: "ZAGE"}
	if got := affectedNames(ix, ins, label); !sameStrings(got, []string{"A0", "A1"}) {
		t.Fatalf("insert(age) routed to %v, want [A0 A1]", got)
	}
	s.MustPut(oem.NewAtom("ZF2", "f2", oem.String_("x")))
	ins2 := store.Update{Kind: store.UpdateInsert, N1: "REL", N2: "ZF2"}
	if got := affectedNames(ix, ins2, label); len(got) != 0 {
		t.Fatalf("insert(f2) routed to %v, want none", got)
	}

	// Creates screen on the created object's own label (dangling
	// references may attach to it).
	crt := store.Update{Kind: store.UpdateCreate, N1: "ZAGE"}
	if got := affectedNames(ix, crt, label); !sameStrings(got, []string{"A0", "A1"}) {
		t.Fatalf("create(age) routed to %v, want [A0 A1]", got)
	}

	// An unresolvable label routes everywhere — the maintainers own the
	// error semantics, not the screen.
	gone := store.Update{Kind: store.UpdateInsert, N1: "REL", N2: "NOPE"}
	if got := affectedNames(ix, gone, label); len(got) != 3 {
		t.Fatalf("unknown label routed to %v, want all 3", got)
	}
}

func TestScreenMembershipSweepReachesDelegates(t *testing.T) {
	s, r := screenFixture(t)
	ix := r.screenIndex()
	label := func(oid oem.OID) (string, bool) {
		l, err := s.Label(oid)
		return l, err == nil
	}
	members, err := r.Evaluate("A0")
	if err != nil || len(members) == 0 {
		t.Fatalf("A0 members: %v err %v", members, err)
	}
	// An insert under a member tuple with an unindexed child label cannot
	// change any membership, but A0's delegate for that tuple must track
	// its value — the sweep routes it to A0 (and only the views holding
	// the member).
	s.MustPut(oem.NewAtom("ZZZ", "zzz", oem.Int(1)))
	u := store.Update{Kind: store.UpdateInsert, N1: members[0], N2: "ZZZ"}
	got := affectedNames(ix, u, label)
	if !sameStrings(got, []string{"A0"}) {
		t.Fatalf("member-touching insert routed to %v, want [A0]", got)
	}
}

func TestScreenUnsimplifiableViewIsAlwaysRouted(t *testing.T) {
	s, r := screenFixture(t)
	// A wildcard sel_path is outside the simple class: unscreenable.
	if _, err := r.Define("define mview W as: SELECT REL.* X WHERE X.age > 0"); err != nil {
		t.Fatal(err)
	}
	ix := r.screenIndex()
	label := func(oid oem.OID) (string, bool) {
		l, err := s.Label(oid)
		return l, err == nil
	}
	s.MustPut(oem.NewAtom("ZF2b", "f2", oem.String_("x")))
	u := store.Update{Kind: store.UpdateInsert, N1: "REL", N2: "ZF2b"}
	if got := affectedNames(ix, u, label); !sameStrings(got, []string{"W"}) {
		t.Fatalf("insert(f2) routed to %v, want just the wildcard view", got)
	}
}

func TestScreenViewReferencingViewsGoToSerialTail(t *testing.T) {
	_, r := screenFixture(t)
	if _, err := r.Define("define mview VV as: SELECT A0.* X WHERE X.age > 40"); err != nil {
		t.Fatal(err)
	}
	ix := r.screenIndex()
	for _, v := range ix.Views() {
		if v.Name == "VV" {
			t.Fatal("view-over-view was indexed for parallel fan-out")
		}
	}
	found := false
	for _, v := range r.tail {
		found = found || v.Name == "VV"
	}
	if !found {
		t.Fatal("view-over-view missing from the serial tail")
	}
}
