package core

import (
	"strings"
	"testing"

	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/workload"
)

// nestedStore builds people containing people, so view members reference
// each other and swizzling has intra-view edges to manage:
//
//	TOP ── person G1 (age 40) ── person G2 (age 30) ── person G3 (age 70)
func nestedStore(t testing.TB) *store.Store {
	t.Helper()
	s := store.NewDefault()
	s.MustPut(oem.NewAtom("AG3", "age", oem.Int(70)))
	s.MustPut(oem.NewSet("G3", "person", "AG3"))
	s.MustPut(oem.NewAtom("AG2", "age", oem.Int(30)))
	s.MustPut(oem.NewSet("G2", "person", "AG2", "G3"))
	s.MustPut(oem.NewAtom("AG1", "age", oem.Int(40)))
	s.MustPut(oem.NewSet("G1", "person", "AG1", "G2"))
	s.MustPut(oem.NewSet("TOP", "top", "G1"))
	return s
}

// newSwizzledView materializes all persons at depth 1..2 and swizzles.
func newSwizzledView(t testing.TB) (*store.Store, *MaterializedView, *GeneralMaintainer) {
	t.Helper()
	s := nestedStore(t)
	mv, err := Materialize("SW", query.MustParse("SELECT TOP.* X WHERE X.age > 0"), s, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := mv.Swizzle(); err != nil {
		t.Fatal(err)
	}
	g, err := NewGeneralMaintainer(mv)
	if err != nil {
		t.Fatal(err)
	}
	return s, mv, g
}

func TestSwizzledViewInsertMaintainsSwizzling(t *testing.T) {
	s, mv, g := newSwizzledView(t)
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"G1", "G2", "G3"}) {
		t.Fatalf("initial = %v", got)
	}
	// A new person under G3 joins the view; the view is swizzled, so the
	// new delegate's value must be swizzled and G3's delegate must point
	// at SW.G4 (not G4).
	before := s.Seq()
	s.MustPut(oem.NewAtom("AG4", "age", oem.Int(20)))
	s.MustPut(oem.NewSet("G4", "person", "AG4"))
	if err := s.Insert("G3", "G4"); err != nil {
		t.Fatal(err)
	}
	feed(t, s, g, before)
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"G1", "G2", "G3", "G4"}) {
		t.Fatalf("after insert = %v", got)
	}
	g3, _ := mv.Delegate("G3")
	if !g3.Contains("SW.G4") || g3.Contains("G4") {
		t.Fatalf("G3 delegate not re-swizzled: %v", g3.Set)
	}
	// The answers of a WITHIN query stay consistent with an unswizzled
	// twin after maintenance.
	got, err := mv.QueryView(query.MustParse("SELECT SW.person.person X WITHIN SW"))
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(got, []oem.OID{"SW.G2", "SW.G3", "SW.G4"}) {
		t.Fatalf("WITHIN query after maintenance = %v", got)
	}
}

func TestSwizzledViewDeleteUnswizzlesReferences(t *testing.T) {
	s, mv, g := newSwizzledView(t)
	// Force G3 out of the view by aging it to a non-matching value...
	// the condition is age > 0, so instead cut its only derivation.
	before := s.Seq()
	if err := s.Delete("G2", "G3"); err != nil {
		t.Fatal(err)
	}
	feed(t, s, g, before)
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"G1", "G2"}) {
		t.Fatalf("after delete = %v", got)
	}
	if mv.ViewStore.Has("SW.G3") {
		t.Fatal("removed delegate still stored")
	}
	// G2's delegate lost the edge entirely (the base edge is gone), and
	// no delegate still references SW.G3.
	g2, _ := mv.Delegate("G2")
	for _, m := range g2.Set {
		if m == "SW.G3" || m == "G3" {
			t.Fatalf("G2 delegate kept a reference to the removed member: %v", g2.Set)
		}
	}
}

func TestSwizzledViewMemberExitKeepsBaseEdge(t *testing.T) {
	// When a member leaves the view while the *base edge remains* (the
	// condition fails), references to it in other delegates must fall
	// back to the base OID.
	s := nestedStore(t)
	mv, err := Materialize("SW", query.MustParse("SELECT TOP.* X WHERE X.age < 50"), s, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := mv.Swizzle(); err != nil {
		t.Fatal(err)
	}
	g, err := NewGeneralMaintainer(mv)
	if err != nil {
		t.Fatal(err)
	}
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"G1", "G2"}) {
		t.Fatalf("initial = %v", got)
	}
	// G2 ages out; G1's delegate currently points at SW.G2 and must
	// revert to the base OID G2.
	before := s.Seq()
	if err := s.Modify("AG2", oem.Int(60)); err != nil {
		t.Fatal(err)
	}
	feed(t, s, g, before)
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"G1"}) {
		t.Fatalf("after exit = %v", got)
	}
	g1, _ := mv.Delegate("G1")
	if !g1.Contains("G2") || g1.Contains("SW.G2") {
		t.Fatalf("G1 delegate reference not unswizzled: %v", g1.Set)
	}
}

func TestSwizzledSimpleMaintainer(t *testing.T) {
	// Algorithm 1 on a swizzled simple view (PERSON / YP).
	s := store.NewDefault()
	workload.PersonDB(s)
	mv, err := Materialize("YP", query.MustParse("SELECT ROOT.professor X WHERE X.age <= 45"), s, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := mv.Swizzle(); err != nil {
		t.Fatal(err)
	}
	m, err := NewSimpleMaintainer(mv, NewCentralAccess(s))
	if err != nil {
		t.Fatal(err)
	}
	before := s.Seq()
	s.MustPut(oem.NewAtom("A2", "age", oem.Int(40)))
	if err := s.Insert("P2", "A2"); err != nil {
		t.Fatal(err)
	}
	for _, u := range s.LogSince(before) {
		if u.Kind != store.UpdateCreate && isViewTouch(u) {
			continue
		}
		if err := m.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"P1", "P2"}) {
		t.Fatalf("swizzled YP = %v", got)
	}
	// Value refresh under swizzling: A2 has no delegate, so the base OID
	// is recorded.
	p2, _ := mv.Delegate("P2")
	if !p2.Contains("A2") {
		t.Fatalf("P2 delegate = %v", p2.Set)
	}
}

func TestRefreshDelegateFrom(t *testing.T) {
	s := store.NewDefault()
	workload.PersonDB(s)
	mv, err := Materialize("YP", query.MustParse("SELECT ROOT.professor X WHERE X.age <= 45"), s, s)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the P1 delegate's value from a fresh object.
	fresh := oem.NewSet("P1", "professor", "N1")
	if err := mv.RefreshDelegateFrom(fresh); err != nil {
		t.Fatal(err)
	}
	d, _ := mv.Delegate("P1")
	if !oem.SameMembers(d.Set, []oem.OID{"N1"}) {
		t.Fatalf("refreshed delegate = %v", d.Set)
	}
	// Refreshing a non-member is a no-op.
	if err := mv.RefreshDelegateFrom(oem.NewSet("P4", "secretary")); err != nil {
		t.Fatal(err)
	}
	if mv.ViewStore.Has("YP.P4") {
		t.Fatal("non-member delegate created")
	}
	// Atomic refresh path.
	mvA, err := Materialize("AG", query.MustParse("SELECT ROOT.professor.age X WHERE X >= 0"), s, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := mvA.RefreshDelegateFrom(oem.NewAtom("A1", "age", oem.Int(46))); err != nil {
		t.Fatal(err)
	}
	d, _ = mvA.Delegate("A1")
	if !d.Atom.Equal(oem.Int(46)) {
		t.Fatalf("refreshed atom = %v", d.Atom)
	}
}

func TestBulkUpdateString(t *testing.T) {
	b := BulkUpdate{
		Selector: SimpleDef{
			Entry:    "ROOT",
			SelPath:  pathexpr.MustParsePath("person"),
			CondPath: pathexpr.MustParsePath("name"),
			Cond:     CondTest{Op: query.OpEq, Literal: oem.String_("Mark")},
		},
		EffectPath: pathexpr.MustParsePath("salary"),
	}
	s := b.String()
	for _, want := range []string{"salary", "person", "name", "Mark"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}

func TestRegistryStrategyDag(t *testing.T) {
	s := store.NewDefault()
	workload.PersonDB(s)
	r := NewRegistry(s)
	vs := query.MustParseView("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45")
	v, err := r.DefineParsed(vs, StrategyDag)
	if err != nil {
		t.Fatal(err)
	}
	if v.Strategy != StrategyDag {
		t.Fatalf("strategy = %v", v.Strategy)
	}
	before := s.Seq()
	if err := s.Modify("A1", oem.Int(60)); err != nil {
		t.Fatal(err)
	}
	if err := r.ApplyAll(s.LogSince(before)); err != nil {
		t.Fatal(err)
	}
	got, _ := r.Evaluate("YP")
	if len(got) != 0 {
		t.Fatalf("dag-strategy YP = %v", got)
	}
	if StrategyDag.String() != "dag" {
		t.Fatalf("String = %q", StrategyDag.String())
	}
}
