package core

import (
	"testing"

	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/workload"
)

// newPersonCluster builds a cluster with two overlapping views: YOUNG
// (age <= 45 professors+students via two clusters? — no: professors only)
// and NAMED (professors with a name). P1 belongs to both.
func newPersonCluster(t testing.TB) (*store.Store, *Cluster) {
	t.Helper()
	s := store.NewDefault()
	workload.PersonDB(s)
	c := NewCluster("CL", s, s)
	if err := c.AddView("YOUNG", query.MustParse("SELECT ROOT.professor X WHERE X.age <= 45")); err != nil {
		t.Fatal(err)
	}
	if err := c.AddView("NAMED", query.MustParse("SELECT ROOT.professor X WHERE EXISTS X.name")); err != nil {
		t.Fatal(err)
	}
	return s, c
}

func TestClusterSharesDelegates(t *testing.T) {
	s, c := newPersonCluster(t)
	young, err := c.Members("YOUNG")
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(young, []oem.OID{"P1"}) {
		t.Fatalf("YOUNG = %v", young)
	}
	named, err := c.Members("NAMED")
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(named, []oem.OID{"P1", "P2"}) {
		t.Fatalf("NAMED = %v", named)
	}
	// P1 is in both views but has exactly one delegate: CL.P1.
	if c.DelegateCount() != 2 { // P1 and P2
		t.Fatalf("DelegateCount = %d, want 2", c.DelegateCount())
	}
	if !s.Has("CL.P1") || s.Has("YOUNG.P1") || s.Has("NAMED.P1") {
		t.Fatal("per-view delegates exist despite clustering")
	}
	d, err := c.Delegate("P1")
	if err != nil {
		t.Fatal(err)
	}
	if d.Label != "professor" {
		t.Fatalf("shared delegate = %v", d)
	}
}

func TestClusterMaintenance(t *testing.T) {
	s, c := newPersonCluster(t)
	// Age P1 out of YOUNG: the shared delegate survives because NAMED
	// still references it.
	before := s.Seq()
	if err := s.Modify("A1", oem.Int(60)); err != nil {
		t.Fatal(err)
	}
	for _, u := range s.LogSince(before) {
		if err := c.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	young, _ := c.Members("YOUNG")
	named, _ := c.Members("NAMED")
	if len(young) != 0 {
		t.Fatalf("YOUNG = %v", young)
	}
	if !oem.SameMembers(named, []oem.OID{"P1", "P2"}) {
		t.Fatalf("NAMED = %v", named)
	}
	if !s.Has("CL.P1") {
		t.Fatal("shared delegate reclaimed while still referenced")
	}
	// Remove P1's name: it leaves NAMED and the delegate is reclaimed.
	before = s.Seq()
	if err := s.Delete("P1", "N1"); err != nil {
		t.Fatal(err)
	}
	for _, u := range s.LogSince(before) {
		if err := c.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	named, _ = c.Members("NAMED")
	if !oem.SameMembers(named, []oem.OID{"P2"}) {
		t.Fatalf("NAMED after name removal = %v", named)
	}
	if s.Has("CL.P1") {
		t.Fatal("shared delegate not reclaimed at refcount zero")
	}
	if c.DelegateCount() != 1 {
		t.Fatalf("DelegateCount = %d, want 1", c.DelegateCount())
	}
}

func TestClusterDelegateValueRefresh(t *testing.T) {
	s, c := newPersonCluster(t)
	before := s.Seq()
	s.MustPut(oem.NewAtom("H1", "hobby", oem.String_("chess")))
	if err := s.Insert("P1", "H1"); err != nil {
		t.Fatal(err)
	}
	for _, u := range s.LogSince(before) {
		if err := c.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	d, _ := c.Delegate("P1")
	if !d.Contains("H1") {
		t.Fatalf("shared delegate value stale: %v", d.Set)
	}
}

func TestClusterMembershipInsertSharesNewDelegate(t *testing.T) {
	// A brand-new professor enters both views through maintenance; the
	// cluster creates exactly one shared delegate with refcount 2.
	s, c := newPersonCluster(t)
	before := s.Seq()
	s.MustPut(oem.NewAtom("N9", "name", oem.String_("Ada")))
	s.MustPut(oem.NewAtom("A9", "age", oem.Int(30)))
	s.MustPut(oem.NewSet("P9", "professor", "N9", "A9"))
	if err := s.Insert("ROOT", "P9"); err != nil {
		t.Fatal(err)
	}
	for _, u := range s.LogSince(before) {
		if err := c.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	young, _ := c.Members("YOUNG")
	named, _ := c.Members("NAMED")
	if !oem.SameMembers(young, []oem.OID{"P1", "P9"}) {
		t.Fatalf("YOUNG = %v", young)
	}
	if !oem.SameMembers(named, []oem.OID{"P1", "P2", "P9"}) {
		t.Fatalf("NAMED = %v", named)
	}
	if !s.Has("CL.P9") {
		t.Fatal("shared delegate missing")
	}
	if c.DelegateCount() != 3 { // P1, P2, P9
		t.Fatalf("DelegateCount = %d", c.DelegateCount())
	}
	// Leaving one view keeps the delegate; leaving both reclaims it.
	before = s.Seq()
	if err := s.Modify("A9", oem.Int(99)); err != nil { // exits YOUNG only
		t.Fatal(err)
	}
	for _, u := range s.LogSince(before) {
		if err := c.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Has("CL.P9") {
		t.Fatal("delegate reclaimed while NAMED still holds it")
	}
	before = s.Seq()
	if err := s.Delete("P9", "N9"); err != nil { // exits NAMED too
		t.Fatal(err)
	}
	for _, u := range s.LogSince(before) {
		if err := c.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	if s.Has("CL.P9") {
		t.Fatal("delegate survived refcount zero")
	}
}

func TestClusterSharedDelegateAtomRefresh(t *testing.T) {
	// A cluster over atomic members must refresh the shared delegate's
	// value on modify.
	s := store.NewDefault()
	workload.PersonDB(s)
	c := NewCluster("CA", s, s)
	if err := c.AddView("AGES", query.MustParse("SELECT ROOT.professor.age X WHERE X >= 0")); err != nil {
		t.Fatal(err)
	}
	before := s.Seq()
	if err := s.Modify("A1", oem.Int(46)); err != nil {
		t.Fatal(err)
	}
	for _, u := range s.LogSince(before) {
		if err := c.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	d, err := c.Delegate("A1")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Atom.Equal(oem.Int(46)) {
		t.Fatalf("shared atom delegate = %v", d.Atom)
	}
}

func TestClusterDuplicateView(t *testing.T) {
	_, c := newPersonCluster(t)
	if err := c.AddView("YOUNG", query.MustParse("SELECT ROOT.secretary X")); err == nil {
		t.Fatal("duplicate cluster view accepted")
	}
}

func TestClusterRejectsGeneralViews(t *testing.T) {
	s := store.NewDefault()
	workload.PersonDB(s)
	c := NewCluster("CL", s, s)
	if err := c.AddView("W", query.MustParse("SELECT ROOT.* X WHERE X.name = 'John'")); err == nil {
		t.Fatal("cluster accepted a non-simple view")
	}
}

func TestClusterSavesSpaceVersusSeparateViews(t *testing.T) {
	// The motivating property: k overlapping views keep one delegate per
	// object, not k.
	s := store.NewDefault()
	db := workload.RelationLike(s, workload.RelationConfig{
		Relations: 1, TuplesPerRelation: 10, FieldsPerTuple: 2, Seed: 5, AgeRange: 100,
	})
	_ = db
	c := NewCluster("CL", s, s)
	queries := []string{
		"SELECT REL.r0.tuple X WHERE X.age >= 0",  // everything
		"SELECT REL.r0.tuple X WHERE X.age >= 20", // subset
		"SELECT REL.r0.tuple X WHERE X.age >= 40", // smaller subset
	}
	total := 0
	for i, qs := range queries {
		name := oem.OID([]string{"V1", "V2", "V3"}[i])
		if err := c.AddView(name, query.MustParse(qs)); err != nil {
			t.Fatal(err)
		}
		ms, err := c.Members(name)
		if err != nil {
			t.Fatal(err)
		}
		total += len(ms)
	}
	if c.DelegateCount() >= total {
		t.Fatalf("cluster uses %d delegates, naive views would use %d", c.DelegateCount(), total)
	}
	if c.DelegateCount() != 10 {
		t.Fatalf("DelegateCount = %d, want 10 (all tuples)", c.DelegateCount())
	}
}
