package core

import (
	"testing"

	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/workload"
)

// marksRaise is the paper's example intent: salaries of persons named
// 'Mark' increased.
func marksRaise() BulkUpdate {
	return BulkUpdate{
		Selector: SimpleDef{
			Entry:    "ROOT",
			SelPath:  pathexpr.MustParsePath("person"),
			CondPath: pathexpr.MustParsePath("name"),
			Cond:     CondTest{Op: query.OpEq, Literal: oem.String_("Mark")},
		},
		EffectPath: pathexpr.MustParsePath("salary"),
	}
}

func TestScreenPaperExample(t *testing.T) {
	// "a view containing the salary of persons named 'John' should be
	// unaffected": the view selects salary atoms of Johns; the update
	// modifies salary atoms of Marks — same label path, disjoint selectors.
	johnSalaries := SimpleDef{
		Entry:    "ROOT",
		SelPath:  pathexpr.MustParsePath("person"),
		CondPath: pathexpr.MustParsePath("name"),
		Cond:     CondTest{Op: query.OpEq, Literal: oem.String_("John")},
	}
	// Membership depends on name atoms, which the update does not touch;
	// delegate values depend on person objects, also untouched — but the
	// *selector-level* reasoning applies when the view reads salaries.
	// First: a view over persons (set members) is path-disjoint.
	if got := ScreenBulkUpdate(johnSalaries, marksRaise(), false); got != UnaffectedDisjointPaths {
		t.Fatalf("persons-view screening = %v, want disjoint paths", got)
	}
	// Second: a view over the salary atoms themselves shares the path and
	// needs the selector-disjointness argument. (Such a view has
	// sel_path person.salary with the name condition expressed... the
	// simple-view grammar ties the condition to the selected object, so
	// the closest encoding selects persons and copies salaries at depth;
	// the path-level check still captures the paper's point when the
	// touched path equals the view's read set.)
	salaryView := SimpleDef{
		Entry:   "ROOT",
		SelPath: pathexpr.MustParsePath("person.salary"),
		Cond:    CondTest{Always: true},
	}
	if got := ScreenBulkUpdate(salaryView, marksRaise(), false); got != Affected {
		t.Fatalf("salary-view screening = %v, want affected (no selector proof)", got)
	}
}

func TestScreenDisjointSelectors(t *testing.T) {
	view := SimpleDef{
		Entry:    "ROOT",
		SelPath:  pathexpr.MustParsePath("person"),
		CondPath: pathexpr.MustParsePath("name"),
		Cond:     CondTest{Op: query.OpEq, Literal: oem.String_("John")},
	}
	// An update that modifies the NAME atoms of Marks touches exactly the
	// view's membership path; only selector disjointness saves us.
	renameMarks := BulkUpdate{
		Selector: SimpleDef{
			Entry:    "ROOT",
			SelPath:  pathexpr.MustParsePath("person"),
			CondPath: pathexpr.MustParsePath("name"),
			Cond:     CondTest{Op: query.OpEq, Literal: oem.String_("Mark")},
		},
		EffectPath: pathexpr.MustParsePath("name"),
	}
	if got := ScreenBulkUpdate(view, renameMarks, false); got != Affected {
		t.Fatalf("without assumeStable: %v, want affected", got)
	}
	if got := ScreenBulkUpdate(view, renameMarks, true); got != UnaffectedDisjointSelectors {
		t.Fatalf("with assumeStable: %v, want disjoint selectors", got)
	}
	// Note assumeStable's second assertion: a rename transform CAN mint
	// Johns out of Marks, so this particular update may only be screened
	// when the caller vouches for a condition-stable transform.
	// TestBulkRenameCaveat exercises the unscreened (sound) path.
}

func TestScreenDifferentEntry(t *testing.T) {
	view := SimpleDef{Entry: "OTHER", SelPath: pathexpr.MustParsePath("person"), Cond: CondTest{Always: true}}
	if got := ScreenBulkUpdate(view, marksRaise(), false); got != UnaffectedDifferentEntry {
		t.Fatalf("screening = %v", got)
	}
}

func TestCondsDisjoint(t *testing.T) {
	eq := func(s string) CondTest { return CondTest{Op: query.OpEq, Literal: oem.String_(s)} }
	cases := []struct {
		a, b CondTest
		want bool
	}{
		{eq("Mark"), eq("John"), true},
		{eq("Mark"), eq("Mark"), false},
		{eq("Mark"), CondTest{Op: query.OpNe, Literal: oem.String_("Mark")}, true},
		{CondTest{Op: query.OpLt, Literal: oem.Int(10)}, CondTest{Op: query.OpGt, Literal: oem.Int(20)}, true},
		{CondTest{Op: query.OpLt, Literal: oem.Int(30)}, CondTest{Op: query.OpGt, Literal: oem.Int(20)}, false},
		{CondTest{Op: query.OpLe, Literal: oem.Int(10)}, CondTest{Op: query.OpGe, Literal: oem.Int(10)}, false},
		{CondTest{Op: query.OpLt, Literal: oem.Int(10)}, CondTest{Op: query.OpGe, Literal: oem.Int(10)}, true},
		{CondTest{Op: query.OpGt, Literal: oem.Int(20)}, CondTest{Op: query.OpLt, Literal: oem.Int(10)}, true},
		{eq("5"), CondTest{Op: query.OpGt, Literal: oem.Int(3)}, true}, // string '5' never satisfies numeric >
	}
	for _, c := range cases {
		if got := condsDisjoint(c.a, c.b); got != c.want {
			t.Errorf("condsDisjoint(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// bulkFixture: two persons (Mark with salary, John with salary) plus two
// registered views.
func bulkFixture(t testing.TB) (*store.Store, *Registry) {
	t.Helper()
	s := store.NewDefault()
	s.MustPut(oem.NewSet("ROOT", "people", "M", "J"))
	s.MustPut(oem.NewSet("M", "person", "MN", "MS"))
	s.MustPut(oem.NewAtom("MN", "name", oem.String_("Mark")))
	s.MustPut(oem.NewTypedAtom("MS", "salary", "dollar", oem.Int(50000)))
	s.MustPut(oem.NewSet("J", "person", "JN", "JS"))
	s.MustPut(oem.NewAtom("JN", "name", oem.String_("John")))
	s.MustPut(oem.NewTypedAtom("JS", "salary", "dollar", oem.Int(60000)))
	r := NewRegistry(s)
	if _, err := r.Define("define mview JOHNS as: SELECT ROOT.person X WHERE X.name = 'John'"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Define("define mview RICH as: SELECT ROOT.person X WHERE X.salary > 55000"); err != nil {
		t.Fatal(err)
	}
	return s, r
}

func TestApplyBulkExecutesAndScreens(t *testing.T) {
	s, r := bulkFixture(t)
	outcomes, err := r.ApplyBulk(marksRaise(), func(v oem.Atom) oem.Atom {
		return oem.Int(v.I + 1000)
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	// The raise happened.
	ms, _ := s.Get("MS")
	if !ms.Atom.Equal(oem.Int(51000)) {
		t.Fatalf("Mark's salary = %v", ms.Atom)
	}
	js, _ := s.Get("JS")
	if !js.Atom.Equal(oem.Int(60000)) {
		t.Fatalf("John's salary = %v (should be untouched)", js.Atom)
	}
	byView := map[string]BulkOutcome{}
	for _, oc := range outcomes {
		byView[oc.View] = oc
	}
	// JOHNS reads name atoms: path-disjoint from salary updates.
	if oc := byView["JOHNS"]; oc.Reason == Affected || oc.Applied != 0 {
		t.Fatalf("JOHNS outcome = %+v, want screened", oc)
	}
	// RICH reads salary atoms at the touched path: must process.
	if oc := byView["RICH"]; oc.Reason != Affected || oc.Applied == 0 {
		t.Fatalf("RICH outcome = %+v, want affected", oc)
	}
	// Both views are correct afterwards.
	johns, _ := r.Evaluate("JOHNS")
	if !oem.SameMembers(johns, []oem.OID{"J"}) {
		t.Fatalf("JOHNS = %v", johns)
	}
	rich, _ := r.Evaluate("RICH")
	if !oem.SameMembers(rich, []oem.OID{"J"}) {
		t.Fatalf("RICH = %v", rich)
	}
	// A bigger raise moves Mark into RICH; the view tracks it because
	// RICH processes salary updates.
	if _, err := r.ApplyBulk(marksRaise(), func(v oem.Atom) oem.Atom {
		return oem.Int(v.I + 10000)
	}, true); err != nil {
		t.Fatal(err)
	}
	rich, _ = r.Evaluate("RICH")
	if !oem.SameMembers(rich, []oem.OID{"J", "M"}) {
		t.Fatalf("RICH after big raise = %v", rich)
	}
}

// TestBulkRenameCaveat documents the soundness boundary: a bulk update
// whose effect path IS the view's condition path may change membership of
// the *other* selector's objects (renaming Marks can mint Johns), so such
// updates must be treated as affected regardless of selector literals
// unless the caller vouches otherwise by passing assumeStable=false.
func TestBulkRenameCaveat(t *testing.T) {
	s, r := bulkFixture(t)
	rename := BulkUpdate{
		Selector: SimpleDef{
			Entry:    "ROOT",
			SelPath:  pathexpr.MustParsePath("person"),
			CondPath: pathexpr.MustParsePath("name"),
			Cond:     CondTest{Op: query.OpEq, Literal: oem.String_("Mark")},
		},
		EffectPath: pathexpr.MustParsePath("name"),
	}
	// With assumeStable=false the JOHNS view processes the rename and
	// stays correct even when Mark becomes John.
	if _, err := r.ApplyBulk(rename, func(oem.Atom) oem.Atom {
		return oem.String_("John")
	}, false); err != nil {
		t.Fatal(err)
	}
	johns, _ := r.Evaluate("JOHNS")
	if !oem.SameMembers(johns, []oem.OID{"J", "M"}) {
		t.Fatalf("JOHNS after rename = %v", johns)
	}
	_ = s
}

func TestUnaffectedReasonString(t *testing.T) {
	for r, want := range map[UnaffectedReason]string{
		Affected: "affected", UnaffectedDifferentEntry: "different entry",
		UnaffectedDisjointPaths: "disjoint paths", UnaffectedDisjointSelectors: "disjoint selectors",
	} {
		if r.String() != want {
			t.Errorf("String(%d) = %q", int(r), r.String())
		}
	}
}

func TestApplyBulkOnWorkload(t *testing.T) {
	// ApplyBulk on relation-like data touches exactly the matching atoms.
	s := store.NewDefault()
	workload.RelationLike(s, workload.RelationConfig{
		Relations: 1, TuplesPerRelation: 10, FieldsPerTuple: 2, Seed: 2, AgeRange: 50,
	})
	bu := BulkUpdate{
		Selector: SimpleDef{
			Entry:    "REL",
			SelPath:  pathexpr.MustParsePath("r0.tuple"),
			CondPath: pathexpr.MustParsePath("age"),
			Cond:     CondTest{Op: query.OpLt, Literal: oem.Int(25)},
		},
		EffectPath: pathexpr.MustParsePath("age"),
	}
	n, err := ApplyBulk(s, bu, func(v oem.Atom) oem.Atom { return oem.Int(v.I + 100) })
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("bulk update matched nothing")
	}
	// No atom younger than 25 remains.
	got, err := query.NewEvaluator(s).Eval(query.MustParse("SELECT REL.r0.tuple.age X WHERE X < 25"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("young ages survived: %v", got)
	}
}
