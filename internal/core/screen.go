package core

import (
	"gsv/internal/oem"
	"gsv/internal/store"
)

// ScreenIndex is the static analogue of Algorithm 1's screening step
// (Section 4) and the Section 5.2 auxiliary structures, lifted from one
// view to the whole registry: an index from the edge labels that appear
// in each view's sel_path.cond_path to the views an update can possibly
// affect. Routing one update costs one label lookup plus two map probes
// instead of running every view's maintainer, so a batch touching k of n
// views costs O(k) maintainer calls rather than O(n).
//
// Soundness: a view's membership or delegate values can change only when
//
//   - an insert/delete's child (or a create's object) carries a label on
//     the view's full path — any entry-to-member path through the new or
//     removed edge must spell out sel_path.cond_path, so an edge whose
//     child label never occurs on that path cannot appear on one;
//   - a modify hits an atom whose label is the *last* label of the full
//     path — Algorithm 1 requires path(entry, N) = sel_path.cond_path,
//     whose final label is the label of N itself; or
//   - the update's N1 is already a member, in which case only the
//     delegate's copied value needs refreshing (the membership logic
//     cannot fire, but V's delegates must track originals).
//
// Views whose queries fall outside the simple class (wildcards, ANS INT,
// non-comparison conditions) are unscreenable and land in the always
// bucket: every update routes to them, exactly as the serial path did.
type ScreenIndex struct {
	views   []*View          // maintained views, name order
	byLabel map[string][]int // label on full path -> views (insert/delete/create)
	byLast  map[string][]int // last label of full path -> views (modify)
	always  []int            // unscreenable views: routed every update
}

// BuildScreenIndex indexes the given views (any without a maintainer are
// skipped). Views retains the given order; routing preserves it.
func BuildScreenIndex(views []*View) *ScreenIndex {
	ix := &ScreenIndex{
		byLabel: make(map[string][]int),
		byLast:  make(map[string][]int),
	}
	for _, v := range views {
		if v.Maintainer == nil {
			continue
		}
		i := len(ix.views)
		ix.views = append(ix.views, v)
		def, ok := Simplify(v.Query)
		full := def.FullPath()
		if !ok || len(full) == 0 {
			ix.always = append(ix.always, i)
			continue
		}
		seen := map[string]bool{}
		for _, l := range full {
			if !seen[l] {
				seen[l] = true
				ix.byLabel[l] = append(ix.byLabel[l], i)
			}
		}
		ix.byLast[full[len(full)-1]] = append(ix.byLast[full[len(full)-1]], i)
	}
	return ix
}

// Views returns the indexed views in routing order.
func (ix *ScreenIndex) Views() []*View { return ix.views }

// Route determines which views update k (the update's position in its
// batch) can affect and calls emit(i) exactly once per affected view
// index, in no particular order. stamp must be a caller-owned slice of
// len(ix.Views()) ints, initialized to -1 and reused across the batch; it
// dedupes emissions when an update hits a view through both the label
// index and the membership check. label resolves an OID's edge label;
// when it fails (the object is already gone, e.g. mid-Remove) the update
// routes to every view, preserving the serial path's error behavior.
func (ix *ScreenIndex) Route(u store.Update, k int, stamp []int, label func(oem.OID) (string, bool), emit func(int)) {
	hit := func(i int) {
		if stamp[i] != k {
			stamp[i] = k
			emit(i)
		}
	}
	all := func() {
		for i := range ix.views {
			hit(i)
		}
	}

	var byKind map[string][]int
	var labelOf oem.OID
	switch u.Kind {
	case store.UpdateInsert, store.UpdateDelete:
		byKind, labelOf = ix.byLabel, u.N2
	case store.UpdateCreate:
		// A created object can attach to pre-existing dangling references,
		// so it screens like an inserted child keyed on its own label.
		byKind, labelOf = ix.byLabel, u.N1
	case store.UpdateModify:
		byKind, labelOf = ix.byLast, u.N1
	default:
		// Synthetic or unknown kinds are unscreenable.
		all()
		return
	}

	l, ok := label(labelOf)
	if !ok {
		all()
		return
	}
	for _, i := range byKind[l] {
		hit(i)
	}
	for _, i := range ix.always {
		hit(i)
	}
	// Membership check: an update whose N1 already has a delegate must
	// reach the view regardless of labels, so the delegate's copied value
	// stays synchronized with the original.
	for i, v := range ix.views {
		if stamp[i] != k && v.Materialized != nil && v.Materialized.Contains(u.N1) {
			hit(i)
		}
	}
}

// Affected returns the indices (into Views) of the views u can affect,
// ascending. It is Route with the bookkeeping handled internally —
// convenient for tests and one-off callers.
func (ix *ScreenIndex) Affected(u store.Update, label func(oem.OID) (string, bool)) []int {
	stamp := make([]int, len(ix.views))
	for i := range stamp {
		stamp[i] = -1
	}
	var out []int
	ix.Route(u, 0, stamp, label, func(i int) { out = append(out, i) })
	// Route emits label hits before always hits, so restore index order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
