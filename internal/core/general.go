package core

import (
	"fmt"

	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/query"
	"gsv/internal/store"
)

// GeneralMaintainer incrementally maintains views beyond Algorithm 1's
// simple class — the extensions Section 6 sketches: selection paths that
// are general path expressions with wild cards, multiple selection paths,
// AND/OR conditions, and DAG-shaped bases with more than one derivation per
// view member.
//
// Strategy: each update determines a *candidate set* of objects whose
// membership may have changed — for insert/delete(N1,N2) the ancestors of
// N1 (including N1) plus the subtree under N2; for modify(N) the ancestors
// of N (including N). For every candidate Y the maintainer decides current
// membership from scratch — Y is a member iff some path from the entry to Y
// matches a selection expression (tested by walking *up* parent edges
// against the reversed expression, which also handles multiple DAG
// derivations) and the full WHERE condition holds — then issues V_insert or
// V_delete accordingly. This is more work per update than Algorithm 1 but
// far less than recomputation, and it is exact.
//
// GeneralMaintainer requires direct access to a store (the centralized
// setting): candidate discovery needs parent traversal, which the
// warehouse scenarios of Section 5 do not export.
type GeneralMaintainer struct {
	View *MaterializedView
	// Observer, when non-nil, receives the membership deltas each Apply
	// actually performed.
	Observer DeltaObserver
	// access wraps the base store for delegate creation.
	access *CentralAccess
	// scopeOID is the view's WITHIN database, if any.
	scopeOID oem.OID
}

// NewGeneralMaintainer builds a generalized maintainer for mv over its base
// store.
func NewGeneralMaintainer(mv *MaterializedView) (*GeneralMaintainer, error) {
	if !mv.Base.Options().ParentIndex {
		return nil, fmt.Errorf("core: the general maintainer requires a parent index on the base store")
	}
	return &GeneralMaintainer{
		View:     mv,
		access:   NewCentralAccess(mv.Base),
		scopeOID: mv.Query.Within,
	}, nil
}

// Apply implements Maintainer.
func (g *GeneralMaintainer) Apply(u store.Update) error {
	var candidates []oem.OID
	switch u.Kind {
	case store.UpdateCreate:
		return nil
	case store.UpdateInsert, store.UpdateDelete:
		candidates = append(g.ancestorsAndSelf(u.N1), g.subtree(u.N2)...)
	case store.UpdateModify:
		candidates = g.ancestorsAndSelf(u.N1)
	}
	seen := map[oem.OID]bool{}
	var applied Deltas
	for _, y := range candidates {
		if seen[y] {
			continue
		}
		seen[y] = true
		member, changed, err := g.reconcile(y)
		if err != nil {
			return err
		}
		if changed && member {
			applied.Insert = append(applied.Insert, y)
		} else if changed {
			applied.Delete = append(applied.Delete, y)
		}
	}
	if err := refreshDelegate(g.View, u); err != nil {
		return err
	}
	if g.Observer != nil {
		g.Observer(g.View.OID, u, applied)
	}
	return nil
}

// reconcile recomputes Y's membership and updates the view to match; it
// reports the decided membership and whether the view changed.
func (g *GeneralMaintainer) reconcile(y oem.OID) (member, changed bool, err error) {
	member, err = g.isMember(y)
	if err != nil {
		return false, false, err
	}
	if member {
		changed, err = viewInsert(g.View, g.access, y)
		return member, changed, err
	}
	changed, err = viewDelete(g.View, y)
	return member, changed, err
}

// isMember decides whether y currently belongs to the view.
func (g *GeneralMaintainer) isMember(y oem.OID) (bool, error) {
	if !g.View.Base.Has(y) {
		return false, nil
	}
	scope, err := g.scope()
	if err != nil {
		return false, err
	}
	if scope != nil && !scope[y] {
		return false, nil
	}
	q := g.View.Query
	for _, item := range q.Selects {
		if scope != nil && !scope[item.Entry] {
			continue
		}
		ok, err := g.onSelectPath(item.Entry, y, item.Path, scope)
		if err != nil {
			return false, err
		}
		if !ok {
			continue
		}
		holds, err := g.conditionHolds(q.Where, item.Binder, y, scope)
		if err != nil {
			return false, err
		}
		if holds {
			return true, nil
		}
	}
	return false, nil
}

// onSelectPath reports whether some path from entry to y matches expr. It
// evaluates the reversed expression from y over the reversed (parent)
// graph and checks whether the entry is reached — linear in the product of
// graph size and expression size, cycle-safe, and correct on DAGs with any
// number of derivations.
func (g *GeneralMaintainer) onSelectPath(entry, y oem.OID, expr pathexpr.Expr, scope map[oem.OID]bool) (bool, error) {
	rev := pathexpr.Reverse(expr)
	reached := pathexpr.Eval(g.reverseGraph(scope), []oem.OID{y}, rev)
	for _, oid := range reached {
		if oid == entry {
			return true, nil
		}
	}
	return false, nil
}

// reverseGraph walks parent edges; traversing from object o to its parent
// consumes label(o), matching the forward path-label convention.
func (g *GeneralMaintainer) reverseGraph(scope map[oem.OID]bool) pathexpr.Graph {
	return pathexpr.GraphFunc(func(oid oem.OID) []pathexpr.Neighbor {
		if scope != nil && !scope[oid] {
			return nil
		}
		lbl, err := g.View.Base.Label(oid)
		if err != nil {
			return nil
		}
		parents, err := g.View.Base.Parents(oid)
		if err != nil {
			return nil
		}
		nbs := make([]pathexpr.Neighbor, 0, len(parents))
		for _, p := range parents {
			if scope != nil && !scope[p] {
				continue
			}
			nbs = append(nbs, pathexpr.Neighbor{Label: lbl, To: p})
		}
		return nbs
	})
}

// conditionHolds evaluates the full WHERE tree for candidate y.
func (g *GeneralMaintainer) conditionHolds(c query.Cond, binder string, y oem.OID, scope map[oem.OID]bool) (bool, error) {
	if c == nil {
		return true, nil
	}
	switch v := c.(type) {
	case *query.Compare:
		if v.Binder != binder {
			return true, nil
		}
		cond := CondTest{Op: v.Op, Literal: v.Literal}
		reached := pathexpr.Eval(g.forwardGraph(scope), []oem.OID{y}, v.Path)
		for _, oid := range reached {
			o, err := g.View.Base.Get(oid)
			if err != nil {
				continue
			}
			if cond.HoldsObject(o) {
				return true, nil
			}
		}
		return false, nil
	case *query.And:
		for _, sub := range v.Conds {
			ok, err := g.conditionHolds(sub, binder, y, scope)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	case *query.Or:
		for _, sub := range v.Conds {
			ok, err := g.conditionHolds(sub, binder, y, scope)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	default:
		return false, fmt.Errorf("core: unknown condition %T", c)
	}
}

func (g *GeneralMaintainer) forwardGraph(scope map[oem.OID]bool) pathexpr.Graph {
	return pathexpr.GraphFunc(func(oid oem.OID) []pathexpr.Neighbor {
		if scope != nil && !scope[oid] {
			return nil
		}
		kids, err := g.View.Base.Children(oid)
		if err != nil {
			return nil
		}
		nbs := make([]pathexpr.Neighbor, 0, len(kids))
		for _, c := range kids {
			if scope != nil && !scope[c] {
				continue
			}
			lbl, err := g.View.Base.Label(c)
			if err != nil {
				continue
			}
			nbs = append(nbs, pathexpr.Neighbor{Label: lbl, To: c})
		}
		return nbs
	})
}

func (g *GeneralMaintainer) scope() (map[oem.OID]bool, error) {
	if g.scopeOID == "" {
		return nil, nil
	}
	m, err := g.View.Base.DatabaseMembers(g.scopeOID)
	if err != nil {
		return nil, err
	}
	// The database object itself is in scope, matching the query
	// evaluator's WITHIN semantics.
	m[g.scopeOID] = true
	return m, nil
}

// ancestorsAndSelf returns n and every (transitive) ancestor of n,
// cycle-safe.
func (g *GeneralMaintainer) ancestorsAndSelf(n oem.OID) []oem.OID {
	out := []oem.OID{n}
	seen := map[oem.OID]bool{n: true}
	stack := []oem.OID{n}
	for len(stack) > 0 {
		oid := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		parents, err := g.View.Base.Parents(oid)
		if err != nil {
			continue
		}
		for _, p := range parents {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
				stack = append(stack, p)
			}
		}
	}
	return out
}

// subtree returns n and everything reachable from n, cycle-safe.
func (g *GeneralMaintainer) subtree(n oem.OID) []oem.OID {
	out := []oem.OID{n}
	seen := map[oem.OID]bool{n: true}
	stack := []oem.OID{n}
	for len(stack) > 0 {
		oid := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		kids, err := g.View.Base.Children(oid)
		if err != nil {
			continue
		}
		for _, c := range kids {
			if !seen[c] && g.View.Base.Has(c) {
				seen[c] = true
				out = append(out, c)
				stack = append(stack, c)
			}
		}
	}
	return out
}
