package core

import (
	"fmt"

	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
)

// AuthzMode selects how user queries are restricted to authorized views
// (Section 3.1: "user queries are automatically expanded to include
// ANS INT or WITHIN clauses for the union of views the user is authorized
// to access").
type AuthzMode int

const (
	// AuthzAnsInt intersects the query answer with the authorized union:
	// evaluation may traverse unauthorized objects, but never returns them.
	AuthzAnsInt AuthzMode = iota
	// AuthzWithin confines the whole evaluation to the authorized union:
	// unauthorized objects are completely ignored, even during traversal.
	AuthzWithin
)

// Authorizer rewrites user queries so they can only retrieve (or see)
// objects in the views a user is authorized for. Because views can be
// redefined or re-evaluated at any time, authorization is dynamic: the
// expansion references a union object that is rebuilt on each call.
type Authorizer struct {
	Store *store.Store
	Mode  AuthzMode
	// Grants maps user names to the view object OIDs they may access.
	Grants map[string][]oem.OID
}

// NewAuthorizer returns an authorizer over s.
func NewAuthorizer(s *store.Store, mode AuthzMode) *Authorizer {
	return &Authorizer{Store: s, Mode: mode, Grants: make(map[string][]oem.OID)}
}

// Grant authorizes user for the given view objects (in addition to any
// previous grants).
func (a *Authorizer) Grant(user string, views ...oem.OID) {
	a.Grants[user] = append(a.Grants[user], views...)
}

// Revoke removes all grants for user.
func (a *Authorizer) Revoke(user string) { delete(a.Grants, user) }

// Expand returns a copy of q restricted to the user's authorized views.
// It materializes the union of the granted view objects as a fresh set
// object and attaches it as an ANS INT or WITHIN clause. A query that
// already carries the corresponding clause is further restricted: the
// existing database is intersected with the authorized union. A user with
// no grants gets a query over the empty database.
func (a *Authorizer) Expand(user string, q *query.Query) (*query.Query, error) {
	union, err := a.unionObject(user)
	if err != nil {
		return nil, err
	}
	out := *q
	out.Selects = append([]query.SelectItem(nil), q.Selects...)
	switch a.Mode {
	case AuthzAnsInt:
		if q.AnsInt != "" {
			combined, err := a.Store.Intersect(q.AnsInt, union)
			if err != nil {
				return nil, err
			}
			union = combined
		}
		out.AnsInt = union
	case AuthzWithin:
		if q.Within != "" {
			combined, err := a.Store.Intersect(q.Within, union)
			if err != nil {
				return nil, err
			}
			union = combined
		}
		out.Within = union
	default:
		return nil, fmt.Errorf("core: unknown authorization mode %d", int(a.Mode))
	}
	return &out, nil
}

// unionObject builds a set object holding the union of the user's granted
// views' members and returns its OID.
func (a *Authorizer) unionObject(user string) (oem.OID, error) {
	oid := a.Store.GenOID("auth_" + user)
	u := oem.NewSet(oid, "authorized")
	for _, v := range a.Grants[user] {
		vo, err := a.Store.Get(v)
		if err != nil {
			return oem.NoOID, fmt.Errorf("core: granted view %s: %w", v, err)
		}
		for _, m := range vo.Set {
			// Granted materialized views list delegate OIDs; authorize the
			// base objects they stand for as well, so queries over base
			// data are filtered correctly.
			u.Add(m)
			if _, base, ok := SplitDelegateOID(m); ok && v != oem.NoOID {
				if a.Store.Has(base) {
					u.Add(base)
				}
			}
		}
	}
	if err := a.Store.Put(u); err != nil {
		return oem.NoOID, err
	}
	return oid, nil
}

// Run expands and evaluates a user query in one step.
func (a *Authorizer) Run(user string, q *query.Query) ([]oem.OID, error) {
	eq, err := a.Expand(user, q)
	if err != nil {
		return nil, err
	}
	return query.NewEvaluator(a.Store).Eval(eq)
}
