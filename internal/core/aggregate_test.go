package core

import (
	"fmt"
	"math"
	"testing"

	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/workload"
)

// salarySum builds the aggregate "total salary of professors aged <= 45"
// over PERSON.
func salaryAgg(t testing.TB, op AggOp) (*store.Store, *AggregateView) {
	t.Helper()
	s := store.NewDefault()
	workload.PersonDB(s)
	def := AggDef{
		Base: SimpleDef{
			Entry:    "ROOT",
			SelPath:  pathexpr.MustParsePath("professor"),
			CondPath: pathexpr.MustParsePath("age"),
			Cond:     CondTest{Op: query.OpLe, Literal: oem.Int(45)},
		},
		ValuePath: pathexpr.MustParsePath("salary"),
		Op:        op,
	}
	vstore := store.New(store.Options{ParentIndex: true, AllowDangling: true})
	a, err := NewAggregateView("AGG", def, s, vstore)
	if err != nil {
		t.Fatal(err)
	}
	return s, a
}

func feedAgg(t testing.TB, s *store.Store, a *AggregateView, from uint64) {
	t.Helper()
	for _, u := range s.LogSince(from) {
		if err := a.Apply(u); err != nil {
			t.Fatalf("Apply(%s): %v", u, err)
		}
	}
}

func wantValue(t testing.TB, a *AggregateView, want oem.Atom) {
	t.Helper()
	got, err := a.Value()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("aggregate = %v, want %v", got, want)
	}
}

func TestAggregateInitial(t *testing.T) {
	// Only P1 qualifies (age 45); its salary is 100000.
	_, a := salaryAgg(t, AggSum)
	wantValue(t, a, oem.Float(100000))
	if a.Members() != 1 {
		t.Fatalf("members = %d", a.Members())
	}
}

func TestAggregateCount(t *testing.T) {
	s, a := salaryAgg(t, AggCount)
	wantValue(t, a, oem.Int(1))
	before := s.Seq()
	s.MustPut(oem.NewAtom("A2", "age", oem.Int(40)))
	if err := s.Insert("P2", "A2"); err != nil {
		t.Fatal(err)
	}
	feedAgg(t, s, a, before)
	wantValue(t, a, oem.Int(2))
}

func TestAggregateMembershipChanges(t *testing.T) {
	s, a := salaryAgg(t, AggSum)
	// P2 joins with a salary of 80000.
	before := s.Seq()
	s.MustPut(oem.NewAtom("A2", "age", oem.Int(40)))
	s.MustPut(oem.NewTypedAtom("S2", "salary", "dollar", oem.Int(80000)))
	if err := s.Insert("P2", "S2"); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("P2", "A2"); err != nil {
		t.Fatal(err)
	}
	feedAgg(t, s, a, before)
	wantValue(t, a, oem.Float(180000))

	// P1 ages out: its salary leaves the sum.
	before = s.Seq()
	if err := s.Modify("A1", oem.Int(60)); err != nil {
		t.Fatal(err)
	}
	feedAgg(t, s, a, before)
	wantValue(t, a, oem.Float(80000))

	// ... and back in.
	before = s.Seq()
	if err := s.Modify("A1", oem.Int(44)); err != nil {
		t.Fatal(err)
	}
	feedAgg(t, s, a, before)
	wantValue(t, a, oem.Float(180000))
}

func TestAggregateValueModify(t *testing.T) {
	s, a := salaryAgg(t, AggSum)
	before := s.Seq()
	if err := s.Modify("S1", oem.Int(120000)); err != nil {
		t.Fatal(err)
	}
	feedAgg(t, s, a, before)
	wantValue(t, a, oem.Float(120000))
}

func TestAggregateValueEdgeChanges(t *testing.T) {
	s, a := salaryAgg(t, AggSum)
	// A second salary atom under P1 contributes too.
	before := s.Seq()
	s.MustPut(oem.NewTypedAtom("S1b", "salary", "dollar", oem.Int(5000)))
	if err := s.Insert("P1", "S1b"); err != nil {
		t.Fatal(err)
	}
	feedAgg(t, s, a, before)
	wantValue(t, a, oem.Float(105000))
	// Detaching it removes the contribution.
	before = s.Seq()
	if err := s.Delete("P1", "S1b"); err != nil {
		t.Fatal(err)
	}
	feedAgg(t, s, a, before)
	wantValue(t, a, oem.Float(100000))
}

func TestAggregateMinMaxExactUnderDeletes(t *testing.T) {
	// Min/max must survive deletion of the current extremum — the case
	// that makes naive incremental min/max wrong.
	s, a := salaryAgg(t, AggMax)
	before := s.Seq()
	s.MustPut(oem.NewAtom("A2", "age", oem.Int(40)))
	s.MustPut(oem.NewTypedAtom("S2", "salary", "dollar", oem.Int(250000)))
	if err := s.Insert("P2", "S2"); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("P2", "A2"); err != nil {
		t.Fatal(err)
	}
	feedAgg(t, s, a, before)
	wantValue(t, a, oem.Float(250000))
	// Remove the maximum contributor: the max falls back to 100000.
	before = s.Seq()
	if err := s.Delete("P2", "S2"); err != nil {
		t.Fatal(err)
	}
	feedAgg(t, s, a, before)
	wantValue(t, a, oem.Float(100000))
}

func TestAggregateAvgAndEmpty(t *testing.T) {
	s, a := salaryAgg(t, AggAvg)
	wantValue(t, a, oem.Float(100000))
	// Remove the only member: avg becomes the no-value atom.
	before := s.Seq()
	if err := s.Delete("ROOT", "P1"); err != nil {
		t.Fatal(err)
	}
	feedAgg(t, s, a, before)
	got, err := a.Value()
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsZero() {
		t.Fatalf("empty avg = %v, want none", got)
	}
}

func TestAggregateIgnoresNonNumeric(t *testing.T) {
	s, a := salaryAgg(t, AggSum)
	before := s.Seq()
	s.MustPut(oem.NewAtom("S1c", "salary", oem.String_("negotiable")))
	if err := s.Insert("P1", "S1c"); err != nil {
		t.Fatal(err)
	}
	feedAgg(t, s, a, before)
	wantValue(t, a, oem.Float(100000))
	// The atom becoming numeric later is picked up by the modify rescan.
	before = s.Seq()
	if err := s.Modify("S1c", oem.Int(1)); err != nil {
		t.Fatal(err)
	}
	feedAgg(t, s, a, before)
	wantValue(t, a, oem.Float(100001))
}

// aggOracle recomputes the aggregate from scratch.
func aggOracle(t testing.TB, s *store.Store, def AggDef) oem.Atom {
	t.Helper()
	q, err := def.Base.Query()
	if err != nil {
		t.Fatal(err)
	}
	members, err := query.NewEvaluator(s).Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if def.Op == AggCount {
		return oem.Int(int64(len(members)))
	}
	access := NewCentralAccess(s)
	var vals []float64
	for _, m := range members {
		atoms, err := access.EvalCond(m, def.ValuePath, CondTest{Always: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, oid := range atoms {
			o, err := s.Get(oid)
			if err != nil {
				continue
			}
			if v, ok := numeric(o.Atom); ok {
				vals = append(vals, v)
			}
		}
	}
	if len(vals) == 0 {
		if def.Op == AggSum {
			return oem.Float(0)
		}
		return oem.Atom{}
	}
	sum, mn, mx := 0.0, math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		sum += v
		mn = math.Min(mn, v)
		mx = math.Max(mx, v)
	}
	switch def.Op {
	case AggSum:
		return oem.Float(sum)
	case AggAvg:
		return oem.Float(sum / float64(len(vals)))
	case AggMin:
		return oem.Float(mn)
	default:
		return oem.Float(mx)
	}
}

// TestPropertyAggregateEqualsRecompute drives random streams over
// relation-like data for every aggregate operator and compares against a
// from-scratch oracle after each update.
func TestPropertyAggregateEqualsRecompute(t *testing.T) {
	ops := []AggOp{AggCount, AggSum, AggMin, AggMax, AggAvg}
	for _, op := range ops {
		op := op
		t.Run(op.String(), func(t *testing.T) {
			s := store.NewDefault()
			db := workload.RelationLike(s, workload.RelationConfig{
				Relations: 1, TuplesPerRelation: 8, FieldsPerTuple: 2, Seed: int64(op),
			})
			def := AggDef{
				Base: SimpleDef{
					Entry:    "REL",
					SelPath:  pathexpr.MustParsePath("r0.tuple"),
					CondPath: pathexpr.MustParsePath("age"),
					Cond:     CondTest{Op: query.OpGt, Literal: oem.Int(30)},
				},
				ValuePath: pathexpr.MustParsePath("age"),
				Op:        op,
			}
			vstore := store.New(store.Options{ParentIndex: true, AllowDangling: true})
			a, err := NewAggregateView("AGG", def, s, vstore)
			if err != nil {
				t.Fatal(err)
			}
			var sets, atoms []oem.OID
			sets = append(sets, db.Relations[0].OID)
			sets = append(sets, db.Relations[0].Tuples...)
			for _, tu := range db.Relations[0].Tuples {
				kids, _ := s.Children(tu)
				atoms = append(atoms, kids...)
			}
			stream := workload.NewStream(s, workload.StreamConfig{
				Seed: int64(op)*3 + 1, Mix: workload.Mix{Insert: 3, Delete: 2, Modify: 5}, ValueRange: 80,
			}, sets, atoms)
			for step := 0; step < 100; step++ {
				before := s.Seq()
				if _, ok := stream.Next(); !ok {
					break
				}
				feedAgg(t, s, a, before)
				got, err := a.Value()
				if err != nil {
					t.Fatal(err)
				}
				want := aggOracle(t, s, def)
				if !atomsClose(got, want) {
					t.Fatalf("step %d: aggregate %v != oracle %v", step, got, want)
				}
			}
		})
	}
}

// atomsClose compares aggregate atoms with float tolerance.
func atomsClose(a, b oem.Atom) bool {
	if a.IsZero() || b.IsZero() {
		return a.IsZero() == b.IsZero()
	}
	av, aok := numeric(a)
	bv, bok := numeric(b)
	if !aok || !bok {
		return a.Equal(b)
	}
	return math.Abs(av-bv) < 1e-6*math.Max(1, math.Abs(bv))
}

func TestAggOpString(t *testing.T) {
	for op, want := range map[AggOp]string{
		AggCount: "count", AggSum: "sum", AggMin: "min", AggMax: "max", AggAvg: "avg",
	} {
		if op.String() != want {
			t.Errorf("String(%d) = %q", int(op), op.String())
		}
	}
}

func TestSimpleDefQueryRoundTrip(t *testing.T) {
	for _, qs := range []string{
		"SELECT ROOT.professor X WHERE X.age <= 45",
		"SELECT REL.r0.tuple X",
		"SELECT ROOT.professor X WHERE EXISTS X.name",
		"SELECT ROOT.person X WHERE X.name = 'John' WITHIN PERSON",
	} {
		def, ok := Simplify(query.MustParse(qs))
		if !ok {
			t.Fatalf("not simple: %s", qs)
		}
		q, err := def.Query()
		if err != nil {
			t.Fatalf("Query() for %s: %v", qs, err)
		}
		def2, ok := Simplify(q)
		if !ok {
			t.Fatalf("round-tripped query not simple: %s", q)
		}
		if fmt.Sprintf("%+v", def) != fmt.Sprintf("%+v", def2) {
			t.Fatalf("round trip changed def:\n%+v\n%+v", def, def2)
		}
	}
}
