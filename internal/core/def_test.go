package core

import (
	"testing"

	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/query"
)

func TestDelegateOIDRoundTrip(t *testing.T) {
	d := DelegateOID("MVJ", "P1")
	if d != "MVJ.P1" {
		t.Fatalf("DelegateOID = %s", d)
	}
	view, base, ok := SplitDelegateOID(d)
	if !ok || view != "MVJ" || base != "P1" {
		t.Fatalf("Split = %s %s %v", view, base, ok)
	}
}

func TestSplitDelegateOIDNested(t *testing.T) {
	// A delegate of a delegate (view over a materialized view) splits at
	// the first dot.
	d := DelegateOID("MV2", DelegateOID("MVJ", "P1"))
	view, base, ok := SplitDelegateOID(d)
	if !ok || view != "MV2" || base != "MVJ.P1" {
		t.Fatalf("Split = %s %s %v", view, base, ok)
	}
}

func TestSplitDelegateOIDMalformed(t *testing.T) {
	for _, d := range []oem.OID{"P1", ".P1", "MVJ.", ""} {
		if _, _, ok := SplitDelegateOID(d); ok {
			t.Errorf("Split(%q) ok, want malformed", d)
		}
	}
}

func TestCondTest(t *testing.T) {
	always := CondTest{Always: true}
	if !always.HoldsValue(oem.Int(1)) || !always.HoldsObject(oem.NewSet("S", "s")) {
		t.Error("Always condition rejected a value")
	}
	le45 := CondTest{Op: query.OpLe, Literal: oem.Int(45)}
	if !le45.HoldsValue(oem.Int(45)) || le45.HoldsValue(oem.Int(46)) {
		t.Error("<=45 misbehaves on values")
	}
	if le45.HoldsObject(oem.NewSet("S", "s")) {
		t.Error("comparison condition held on a set object")
	}
	if !le45.HoldsObject(oem.NewAtom("A", "age", oem.Int(40))) {
		t.Error("comparison condition rejected satisfying atom")
	}
	exists := CondTest{Op: query.OpExists}
	if !exists.HoldsValue(oem.Int(999)) || !exists.HoldsObject(oem.NewSet("S", "s")) {
		t.Error("exists condition rejected an object")
	}
}

func TestSimplifyAcceptsPaperViews(t *testing.T) {
	cases := []struct {
		stmt     string
		sel      string
		condPath string
		entry    oem.OID
	}{
		{"define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45", "professor", "age", "ROOT"},
		{"define mview SEL as: SELECT REL.r.tuple X WHERE X.age > 30", "r.tuple", "age", "REL"},
		{"define mview M as: SELECT ROOT.a.b.c X", "a.b.c", "ε", "ROOT"},
	}
	for _, c := range cases {
		vs := query.MustParseView(c.stmt)
		def, ok := Simplify(vs.Query)
		if !ok {
			t.Errorf("Simplify(%q) not simple", c.stmt)
			continue
		}
		if def.SelPath.String() != c.sel || def.CondPath.String() != c.condPath || def.Entry != c.entry {
			t.Errorf("Simplify(%q) = %+v", c.stmt, def)
		}
	}
}

func TestSimplifyWithinKept(t *testing.T) {
	vs := query.MustParseView("define mview MVJ as: SELECT ROOT.person X WHERE X.name = 'John' WITHIN PERSON")
	def, ok := Simplify(vs.Query)
	if !ok || def.Within != "PERSON" {
		t.Fatalf("def = %+v, ok=%v", def, ok)
	}
}

func TestSimplifyRejectsGeneralViews(t *testing.T) {
	general := []string{
		"SELECT ROOT.* X WHERE X.name = 'John'",     // wildcard sel
		"SELECT ROOT.a X WHERE X.*.b = 1",           // wildcard cond
		"SELECT ROOT.a X, ROOT.b X",                 // multi-select
		"SELECT ROOT.a X WHERE X.b = 1 AND X.c = 2", // conjunction
		"SELECT ROOT.a X WHERE X.b = 1 OR X.c = 2",  // disjunction
		"SELECT ROOT.a X ANS INT D2",                // ANS INT
		"SELECT ROOT.?.b X",                         // single wildcard
	}
	for _, s := range general {
		if _, ok := Simplify(query.MustParse(s)); ok {
			t.Errorf("Simplify(%q) accepted a general view", s)
		}
	}
}

func TestSimpleDefFullPath(t *testing.T) {
	def := SimpleDef{
		SelPath:  pathexpr.MustParsePath("r.tuple"),
		CondPath: pathexpr.MustParsePath("age"),
	}
	if got := def.FullPath().String(); got != "r.tuple.age" {
		t.Fatalf("FullPath = %q", got)
	}
}
