package core

import (
	"fmt"
	"sort"

	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
)

// Strategy selects how a materialized view is maintained.
type Strategy int

const (
	// StrategyAuto picks Algorithm 1 for simple views and the general
	// maintainer otherwise.
	StrategyAuto Strategy = iota
	// StrategySimple forces Algorithm 1; registration fails for
	// non-simple definitions.
	StrategySimple
	// StrategyGeneral forces the generalized maintainer.
	StrategyGeneral
	// StrategyRecompute rebuilds the view from scratch on every update —
	// the Section 4.4 baseline.
	StrategyRecompute
	// StrategyDag forces the Section 6 DAG variant of Algorithm 1, which
	// tolerates multiple paths between objects; registration fails for
	// non-simple definitions.
	StrategyDag
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategySimple:
		return "simple"
	case StrategyGeneral:
		return "general"
	case StrategyRecompute:
		return "recompute"
	case StrategyDag:
		return "dag"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// recomputeMaintainer adapts full recomputation to the Maintainer
// interface.
type recomputeMaintainer struct {
	mv       *MaterializedView
	observer DeltaObserver
}

// Apply implements Maintainer by rebuilding the view from scratch. With
// an observer installed, the deltas are derived by diffing membership
// around the rebuild — recomputation is O(view) anyway.
func (r *recomputeMaintainer) Apply(u store.Update) error {
	if r.observer == nil {
		return r.mv.Recompute()
	}
	before, err := r.mv.Members()
	if err != nil {
		return err
	}
	if err := r.mv.Recompute(); err != nil {
		return err
	}
	after, err := r.mv.Members()
	if err != nil {
		return err
	}
	r.observer(r.mv.OID, u, DiffMembers(before, after))
	return nil
}

// View is one registered view: virtual (Materialized nil) or materialized.
type View struct {
	Name  string
	Query *query.Query
	// Materialized is non-nil for materialized views.
	Materialized *MaterializedView
	// Maintainer keeps the materialized view current; nil for virtual views.
	Maintainer Maintainer
	// Strategy records the maintenance strategy in use.
	Strategy Strategy
}

// Registry manages the views defined over one base store in the
// centralized setting: it evaluates virtual views on demand, materializes
// mviews into the same store, and routes every base update to every
// materialized view's maintainer. (The warehouse package has its own
// registry-like Warehouse type for the distributed setting.)
type Registry struct {
	base     *store.Store
	views    map[string]*View
	drain    func()
	observer DeltaObserver
	// skipThrough suppresses Watch-buffered updates with sequence numbers
	// at or below it — used after ApplyBulk, which maintains the views
	// itself, so draining must not re-apply the same updates.
	skipThrough uint64
}

// SkipThrough tells a watching registry to discard buffered updates whose
// sequence number is at or below seq. Callers that maintain views through
// a side channel (Registry.ApplyBulk) use it to avoid double application.
func (r *Registry) SkipThrough(seq uint64) { r.skipThrough = seq }

// NewRegistry returns an empty registry over base.
func NewRegistry(base *store.Store) *Registry {
	return &Registry{base: base, views: make(map[string]*View)}
}

// Define parses and registers a view definition statement, materializing
// the view if the statement says mview. The view name becomes the OID of
// the view object. Materialized views use StrategyAuto.
func (r *Registry) Define(stmt string) (*View, error) {
	vs, err := query.ParseView(stmt)
	if err != nil {
		return nil, err
	}
	return r.DefineParsed(vs, StrategyAuto)
}

// DefineParsed registers a parsed view statement with an explicit
// maintenance strategy.
func (r *Registry) DefineParsed(vs *query.ViewStmt, strategy Strategy) (*View, error) {
	if _, ok := r.views[vs.Name]; ok {
		return nil, fmt.Errorf("core: view %s already defined", vs.Name)
	}
	v := &View{Name: vs.Name, Query: vs.Query, Strategy: strategy}
	if vs.Materialized {
		mv, err := Materialize(oem.OID(vs.Name), vs.Query, r.base, r.base)
		if err != nil {
			return nil, err
		}
		m, actual, err := newMaintainer(mv, strategy)
		if err != nil {
			// Roll back the materialization so a failed Define leaves no
			// residue.
			_ = r.dropMaterialized(mv)
			return nil, err
		}
		v.Materialized = mv
		v.Maintainer = m
		v.Strategy = actual
		setMaintainerObserver(m, r.observer)
	} else {
		// A virtual view is still represented by a view object so that it
		// can serve as a query entry point and in ANS INT clauses; its
		// value is refreshed on each Evaluate.
		members, err := query.NewEvaluator(r.base).Eval(vs.Query)
		if err != nil {
			return nil, err
		}
		if err := r.base.Put(oem.NewSet(oem.OID(vs.Name), "view", members...)); err != nil {
			return nil, err
		}
	}
	r.views[vs.Name] = v
	return v, nil
}

// newMaintainer builds the maintainer for a strategy, resolving Auto.
func newMaintainer(mv *MaterializedView, strategy Strategy) (Maintainer, Strategy, error) {
	switch strategy {
	case StrategySimple:
		m, err := NewSimpleMaintainer(mv, NewCentralAccess(mv.Base))
		if err != nil {
			return nil, strategy, err
		}
		if w := mv.Query.Within; w != "" {
			m.Access = &CentralAccess{S: mv.Base, Within: w}
		}
		return m, StrategySimple, nil
	case StrategyGeneral:
		m, err := NewGeneralMaintainer(mv)
		return m, StrategyGeneral, err
	case StrategyDag:
		access := NewCentralAccess(mv.Base)
		if w := mv.Query.Within; w != "" {
			access = &CentralAccess{S: mv.Base, Within: w}
		}
		m, err := NewDagMaintainer(mv, access)
		return m, StrategyDag, err
	case StrategyRecompute:
		return &recomputeMaintainer{mv: mv}, StrategyRecompute, nil
	default: // StrategyAuto
		if _, ok := Simplify(mv.Query); ok {
			return newMaintainer(mv, StrategySimple)
		}
		return newMaintainer(mv, StrategyGeneral)
	}
}

// SetObserver installs a DeltaObserver on every registered materialized
// view's maintainer and on maintainers of views defined later — the
// wiring point for the internal/feed changefeed in the centralized
// setting. Passing nil removes the observer.
func (r *Registry) SetObserver(obs DeltaObserver) {
	r.observer = obs
	for _, v := range r.views {
		if v.Maintainer != nil {
			setMaintainerObserver(v.Maintainer, obs)
		}
	}
}

// setMaintainerObserver attaches obs to any maintainer type that
// supports delta observation; unknown maintainers are left alone.
func setMaintainerObserver(m Maintainer, obs DeltaObserver) {
	switch mt := m.(type) {
	case *SimpleMaintainer:
		mt.Observer = obs
	case *GeneralMaintainer:
		mt.Observer = obs
	case *DagMaintainer:
		mt.Observer = obs
	case *recomputeMaintainer:
		mt.observer = obs
	}
}

// dropMaterialized removes a materialized view's objects from the store,
// used to roll back a partially failed Define.
func (r *Registry) dropMaterialized(mv *MaterializedView) error {
	vo, err := r.base.Get(mv.OID)
	if err != nil {
		return err
	}
	for _, d := range vo.Set {
		if r.base.Has(d) {
			if err := r.base.Remove(d); err != nil {
				return err
			}
		}
	}
	return r.base.Remove(mv.OID)
}

// Drop unregisters a view and removes its objects from the store.
func (r *Registry) Drop(name string) error {
	v, ok := r.views[name]
	if !ok {
		return fmt.Errorf("core: view %s not defined", name)
	}
	delete(r.views, name)
	if v.Materialized != nil {
		return r.dropMaterialized(v.Materialized)
	}
	return r.base.Remove(oem.OID(name))
}

// Get returns a registered view by name.
func (r *Registry) Get(name string) (*View, bool) {
	v, ok := r.views[name]
	return v, ok
}

// Names returns the registered view names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.views))
	for n := range r.views {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Evaluate returns the current members of a view. Virtual views are
// re-evaluated (and their view object refreshed); materialized views are
// read from their stored delegates.
func (r *Registry) Evaluate(name string) ([]oem.OID, error) {
	v, ok := r.views[name]
	if !ok {
		return nil, fmt.Errorf("core: view %s not defined", name)
	}
	if v.Materialized != nil {
		return v.Materialized.Members()
	}
	members, err := query.NewEvaluator(r.base).Eval(v.Query)
	if err != nil {
		return nil, err
	}
	if err := r.base.SetValue(oem.OID(v.Name), members); err != nil {
		return nil, err
	}
	return members, nil
}

// Apply routes one base update to every materialized view's maintainer.
// Note that view-store mutations performed by maintainers are themselves
// logged updates in the (shared) store; Apply must only be called with
// *base* updates. The Watch helper does this filtering.
func (r *Registry) Apply(u store.Update) error {
	for _, name := range r.Names() {
		v := r.views[name]
		if v.Maintainer == nil {
			continue
		}
		if err := v.Maintainer.Apply(u); err != nil {
			return fmt.Errorf("core: maintaining %s after %s: %w", name, u, err)
		}
	}
	return nil
}

// ApplyAll applies a sequence of updates in order.
func (r *Registry) ApplyAll(us []store.Update) error {
	for _, u := range us {
		if err := r.Apply(u); err != nil {
			return err
		}
	}
	return nil
}

// IsViewObject reports whether an OID belongs to view machinery — a view
// object or one of its delegates — rather than to the base data. Watch
// uses it to keep maintenance from feeding on its own writes when views
// live in the base store.
func (r *Registry) IsViewObject(oid oem.OID) bool {
	if _, ok := r.views[string(oid)]; ok {
		return true
	}
	if view, _, ok := SplitDelegateOID(oid); ok {
		if _, reg := r.views[string(view)]; reg {
			return true
		}
	}
	return false
}

// Watch subscribes the registry to the base store: every future base
// update is routed to the maintainers, skipping updates that touch view
// objects or delegates. Maintenance errors are reported to onErr (which
// may be nil to ignore them). Updates are buffered during the synchronous
// callback and drained afterwards, because maintainers read and write the
// store.
func (r *Registry) Watch(onErr func(error)) {
	var pending []store.Update
	var draining bool
	r.base.Subscribe(func(u store.Update) {
		pending = append(pending, u)
	})
	drain := func() {
		if draining {
			return
		}
		draining = true
		defer func() { draining = false }()
		for len(pending) > 0 {
			u := pending[0]
			pending = pending[1:]
			if u.Seq <= r.skipThrough || r.IsViewObject(u.N1) {
				continue
			}
			if err := r.Apply(u); err != nil && onErr != nil {
				onErr(err)
			}
		}
	}
	// Wrap the public mutation points by polling after each subscription
	// callback: the store calls subscribers with its lock held, so the
	// drain must happen on the caller's side. Registry.Drain is exported
	// for explicit draining; tests and the CLI call it after each update.
	r.drain = drain
}

// Drain processes updates buffered by Watch. It must be called after base
// mutations when Watch is active; the gsv facade does this automatically.
func (r *Registry) Drain() {
	if r.drain != nil {
		r.drain()
	}
}
