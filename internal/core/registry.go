package core

import (
	"errors"
	"fmt"
	"sort"

	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
)

// Strategy selects how a materialized view is maintained.
type Strategy int

const (
	// StrategyAuto picks Algorithm 1 for simple views and the general
	// maintainer otherwise.
	StrategyAuto Strategy = iota
	// StrategySimple forces Algorithm 1; registration fails for
	// non-simple definitions.
	StrategySimple
	// StrategyGeneral forces the generalized maintainer.
	StrategyGeneral
	// StrategyRecompute rebuilds the view from scratch on every update —
	// the Section 4.4 baseline.
	StrategyRecompute
	// StrategyDag forces the Section 6 DAG variant of Algorithm 1, which
	// tolerates multiple paths between objects; registration fails for
	// non-simple definitions.
	StrategyDag
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategySimple:
		return "simple"
	case StrategyGeneral:
		return "general"
	case StrategyRecompute:
		return "recompute"
	case StrategyDag:
		return "dag"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// recomputeMaintainer adapts full recomputation to the Maintainer
// interface.
type recomputeMaintainer struct {
	mv       *MaterializedView
	observer DeltaObserver
}

// Apply implements Maintainer by rebuilding the view from scratch. With
// an observer installed, the deltas are derived by diffing membership
// around the rebuild — recomputation is O(view) anyway.
func (r *recomputeMaintainer) Apply(u store.Update) error {
	if r.observer == nil {
		return r.mv.Recompute()
	}
	before, err := r.mv.Members()
	if err != nil {
		return err
	}
	if err := r.mv.Recompute(); err != nil {
		return err
	}
	after, err := r.mv.Members()
	if err != nil {
		return err
	}
	r.observer(r.mv.OID, u, DiffMembers(before, after))
	return nil
}

// View is one registered view: virtual (Materialized nil) or materialized.
type View struct {
	Name  string
	Query *query.Query
	// Materialized is non-nil for materialized views.
	Materialized *MaterializedView
	// Maintainer keeps the materialized view current; nil for virtual views.
	Maintainer Maintainer
	// Strategy records the maintenance strategy in use.
	Strategy Strategy
}

// Registry manages the views defined over one base store in the
// centralized setting: it evaluates virtual views on demand, materializes
// mviews into the same store, and routes every base update to every
// materialized view's maintainer. (The warehouse package has its own
// registry-like Warehouse type for the distributed setting.)
type Registry struct {
	base     *store.Store
	views    map[string]*View
	observer DeltaObserver
	// batchObserver receives one coalesced delta per view per applied
	// batch; see SetBatchObserver.
	batchObserver BatchObserver
	// defaultStrategy is what Define uses; StrategyAuto unless
	// SetDefaultStrategy overrides it.
	defaultStrategy Strategy
	// sched fans per-view batch work out over a bounded pool.
	sched *Scheduler
	// screen/tail are rebuilt lazily after Define/Drop (nil screen =
	// dirty). tail holds views whose queries reference other views; they
	// are unscreenable and must run after the fan-out, serially.
	screen *ScreenIndex
	tail   []*View
	// screening toggles the label index; off means every update routes to
	// every view, the literal serial loop.
	screening bool
	// buf group-commits store updates between Watch and Drain.
	buf      *store.Buffer
	onErr    func(error)
	draining bool
	// skipThrough suppresses Watch-buffered updates with sequence numbers
	// at or below it — used after ApplyBulk, which maintains the views
	// itself, so draining must not re-apply the same updates.
	skipThrough uint64
}

// BatchObserver is notified once per view per batch with the coalesced
// membership delta: last is the final contributing update (its Seq stamps
// the event), n how many updates contributed, and d the net change.
// Observers must be safe for concurrent use when parallelism > 1 — they
// run on worker goroutines.
type BatchObserver func(view oem.OID, last store.Update, n int, d Deltas)

// SkipThrough tells a watching registry to discard buffered updates whose
// sequence number is at or below seq. Callers that maintain views through
// a side channel (Registry.ApplyBulk) use it to avoid double application.
func (r *Registry) SkipThrough(seq uint64) { r.skipThrough = seq }

// NewRegistry returns an empty registry over base. Maintenance defaults
// to serial (parallelism 1) with screening on; SetParallelism widens the
// worker pool.
func NewRegistry(base *store.Store) *Registry {
	return &Registry{
		base:      base,
		views:     make(map[string]*View),
		sched:     NewScheduler(1),
		screening: true,
	}
}

// SetDefaultStrategy sets the maintenance strategy Define uses for views
// registered afterwards (DefineParsed still takes an explicit one).
func (r *Registry) SetDefaultStrategy(s Strategy) { r.defaultStrategy = s }

// DefaultStrategy returns the strategy Define currently uses.
func (r *Registry) DefaultStrategy() Strategy { return r.defaultStrategy }

// SetParallelism bounds the maintenance worker pool; n <= 0 means
// runtime.NumCPU(), 1 (the default) keeps maintenance on the calling
// goroutine.
func (r *Registry) SetParallelism(n int) { r.sched.SetParallelism(n) }

// Parallelism returns the current worker-pool bound.
func (r *Registry) Parallelism() int { return r.sched.Parallelism() }

// SetScreening toggles the label screening index. On (the default),
// ApplyBatch routes each update only to the views it can affect; off
// reproduces the exhaustive updates × views loop. Results are identical
// either way — screening only skips provably no-op maintainer calls.
func (r *Registry) SetScreening(on bool) { r.screening = on }

// Scheduler exposes the registry's maintenance scheduler, e.g. to
// register its metrics on an obs.Registry.
func (r *Registry) Scheduler() *Scheduler { return r.sched }

// Define parses and registers a view definition statement, materializing
// the view if the statement says mview. The view name becomes the OID of
// the view object. Materialized views use the registry's default
// strategy (StrategyAuto unless SetDefaultStrategy changed it).
func (r *Registry) Define(stmt string) (*View, error) {
	vs, err := query.ParseView(stmt)
	if err != nil {
		return nil, err
	}
	return r.DefineParsed(vs, r.defaultStrategy)
}

// DefineParsed registers a parsed view statement with an explicit
// maintenance strategy.
func (r *Registry) DefineParsed(vs *query.ViewStmt, strategy Strategy) (*View, error) {
	if _, ok := r.views[vs.Name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrViewExists, vs.Name)
	}
	v := &View{Name: vs.Name, Query: vs.Query, Strategy: strategy}
	if vs.Materialized {
		mv, err := Materialize(oem.OID(vs.Name), vs.Query, r.base, r.base)
		if err != nil {
			return nil, err
		}
		m, actual, err := newMaintainer(mv, strategy)
		if err != nil {
			// Roll back the materialization so a failed Define leaves no
			// residue.
			_ = r.dropMaterialized(mv)
			return nil, err
		}
		v.Materialized = mv
		v.Maintainer = m
		v.Strategy = actual
		setMaintainerObserver(m, r.observer)
	} else {
		// A virtual view is still represented by a view object so that it
		// can serve as a query entry point and in ANS INT clauses; its
		// value is refreshed on each Evaluate.
		members, err := query.NewEvaluator(r.base).Eval(vs.Query)
		if err != nil {
			return nil, err
		}
		if err := r.base.Put(oem.NewSet(oem.OID(vs.Name), "view", members...)); err != nil {
			return nil, err
		}
	}
	r.views[vs.Name] = v
	r.screen, r.tail = nil, nil // new view: rebuild the screening index
	return v, nil
}

// AdoptParsed registers a parsed view statement whose materialized state
// already exists in the base store — the recovery path: a checkpoint
// restored the view object and delegates, so re-materializing would both
// duplicate them and cost O(view), defeating restart-without-recompute.
// It fails with ErrViewNotFound if the view object is absent (the caller
// then falls back to DefineParsed, i.e. a fresh materialization).
func (r *Registry) AdoptParsed(vs *query.ViewStmt, strategy Strategy) (*View, error) {
	if _, ok := r.views[vs.Name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrViewExists, vs.Name)
	}
	if !r.base.Has(oem.OID(vs.Name)) {
		return nil, fmt.Errorf("%w: %s (no view object to adopt)", ErrViewNotFound, vs.Name)
	}
	v := &View{Name: vs.Name, Query: vs.Query, Strategy: strategy}
	if vs.Materialized {
		mv := &MaterializedView{OID: oem.OID(vs.Name), Query: vs.Query, Base: r.base, ViewStore: r.base}
		m, actual, err := newMaintainer(mv, strategy)
		if err != nil {
			return nil, err
		}
		v.Materialized = mv
		v.Maintainer = m
		v.Strategy = actual
		setMaintainerObserver(m, r.observer)
	}
	r.views[vs.Name] = v
	r.screen, r.tail = nil, nil // new view: rebuild the screening index
	return v, nil
}

// newMaintainer builds the maintainer for a strategy, resolving Auto.
func newMaintainer(mv *MaterializedView, strategy Strategy) (Maintainer, Strategy, error) {
	switch strategy {
	case StrategySimple:
		m, err := NewSimpleMaintainer(mv, NewCentralAccess(mv.Base))
		if err != nil {
			return nil, strategy, err
		}
		if w := mv.Query.Within; w != "" {
			m.Access = &CentralAccess{S: mv.Base, Within: w}
		}
		return m, StrategySimple, nil
	case StrategyGeneral:
		m, err := NewGeneralMaintainer(mv)
		return m, StrategyGeneral, err
	case StrategyDag:
		access := NewCentralAccess(mv.Base)
		if w := mv.Query.Within; w != "" {
			access = &CentralAccess{S: mv.Base, Within: w}
		}
		m, err := NewDagMaintainer(mv, access)
		return m, StrategyDag, err
	case StrategyRecompute:
		return &recomputeMaintainer{mv: mv}, StrategyRecompute, nil
	default: // StrategyAuto
		if _, ok := Simplify(mv.Query); ok {
			return newMaintainer(mv, StrategySimple)
		}
		return newMaintainer(mv, StrategyGeneral)
	}
}

// SetObserver installs a DeltaObserver on every registered materialized
// view's maintainer and on maintainers of views defined later — the
// wiring point for the internal/feed changefeed in the centralized
// setting. Passing nil removes the observer.
func (r *Registry) SetObserver(obs DeltaObserver) {
	r.observer = obs
	for _, v := range r.views {
		if v.Maintainer != nil {
			setMaintainerObserver(v.Maintainer, obs)
		}
	}
}

// SetBatchObserver installs the observer that receives one coalesced
// membership delta per view per ApplyBatch — the wiring point for
// batch-mode changefeeds (feed.Hub.BatchObserver). It composes with
// SetObserver: the per-update observer still fires for every applied
// update, the batch observer once at the end of each view's share.
// Passing nil removes it.
func (r *Registry) SetBatchObserver(fn BatchObserver) { r.batchObserver = fn }

// setMaintainerObserver attaches obs to any maintainer type that
// supports delta observation; unknown maintainers are left alone.
func setMaintainerObserver(m Maintainer, obs DeltaObserver) {
	switch mt := m.(type) {
	case *SimpleMaintainer:
		mt.Observer = obs
	case *GeneralMaintainer:
		mt.Observer = obs
	case *DagMaintainer:
		mt.Observer = obs
	case *recomputeMaintainer:
		mt.observer = obs
	}
}

// dropMaterialized removes a materialized view's objects from the store,
// used to roll back a partially failed Define.
func (r *Registry) dropMaterialized(mv *MaterializedView) error {
	vo, err := r.base.Get(mv.OID)
	if err != nil {
		return err
	}
	for _, d := range vo.Set {
		if r.base.Has(d) {
			if err := r.base.Remove(d); err != nil {
				return err
			}
		}
	}
	return r.base.Remove(mv.OID)
}

// Drop unregisters a view and removes its objects from the store.
func (r *Registry) Drop(name string) error {
	v, ok := r.views[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrViewNotFound, name)
	}
	delete(r.views, name)
	r.screen, r.tail = nil, nil // dropped view: rebuild the screening index
	if v.Materialized != nil {
		return r.dropMaterialized(v.Materialized)
	}
	return r.base.Remove(oem.OID(name))
}

// Get returns a registered view by name.
func (r *Registry) Get(name string) (*View, bool) {
	v, ok := r.views[name]
	return v, ok
}

// Names returns the registered view names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.views))
	for n := range r.views {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Evaluate returns the current members of a view. Virtual views are
// re-evaluated (and their view object refreshed); materialized views are
// read from their stored delegates.
func (r *Registry) Evaluate(name string) ([]oem.OID, error) {
	v, ok := r.views[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrViewNotFound, name)
	}
	if v.Materialized != nil {
		return v.Materialized.Members()
	}
	members, err := query.NewEvaluator(r.base).Eval(v.Query)
	if err != nil {
		return nil, err
	}
	if err := r.base.SetValue(oem.OID(v.Name), members); err != nil {
		return nil, err
	}
	return members, nil
}

// EvaluateAt returns the members of a view as of rd, a pinned snapshot of
// the base store. Materialized views are read from their stored delegates
// in the snapshot; virtual views are evaluated against it. Unlike
// Evaluate, the read is side-effect free: a snapshot cannot refresh the
// virtual view's object, so it is left alone.
func (r *Registry) EvaluateAt(name string, rd store.Reader) ([]oem.OID, error) {
	v, ok := r.views[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrViewNotFound, name)
	}
	if v.Materialized != nil {
		return v.Materialized.MembersAt(rd)
	}
	return query.NewEvaluator(rd).Eval(v.Query)
}

// screenIndex returns the current screening index, rebuilding it after
// Define/Drop. Views whose queries reference another registered view
// (entry point, WITHIN or ANS INT naming a view object) go to the serial
// tail instead: their membership depends on view objects the fan-out is
// concurrently rewriting, so they run after it, in name order, against
// every update.
func (r *Registry) screenIndex() *ScreenIndex {
	if r.screen != nil {
		return r.screen
	}
	var indexable []*View
	r.tail = nil
	for _, name := range r.Names() {
		v := r.views[name]
		if v.Maintainer == nil {
			continue
		}
		if r.refsView(v.Query) {
			r.tail = append(r.tail, v)
		} else {
			indexable = append(indexable, v)
		}
	}
	r.screen = BuildScreenIndex(indexable)
	return r.screen
}

// refsView reports whether q mentions a registered view's object.
func (r *Registry) refsView(q *query.Query) bool {
	for _, s := range q.Selects {
		if r.IsViewObject(s.Entry) {
			return true
		}
	}
	return (q.Within != "" && r.IsViewObject(q.Within)) ||
		(q.AnsInt != "" && r.IsViewObject(q.AnsInt))
}

// ApplyBatch is the one maintenance entrypoint: it group-commits a batch
// of base updates through screening and the scheduler. Each update is
// routed to the views it can affect (all of them with screening off),
// each view's share runs as one task applying its updates in sequence
// order, and tasks fan out over the worker pool. Per-view ordering is
// exact; cross-view interleaving is unspecified, which is fine because
// fanned-out views never read each other (view-referencing views run in
// the serial tail). A view that fails stops processing its own share and
// reports one error; other views complete, and ApplyBatch returns the
// per-view errors joined.
//
// Note that view-store mutations performed by maintainers are themselves
// logged updates in the (shared) store; ApplyBatch must only be called
// with *base* updates. The Watch/Drain pair does this filtering.
func (r *Registry) ApplyBatch(us []store.Update) error {
	if len(us) == 0 {
		return nil
	}
	ix := r.screenIndex()
	views := ix.Views()
	if len(views) == 0 && len(r.tail) == 0 {
		return nil
	}
	m := &r.sched.Metrics
	m.BatchSize.Observe(float64(len(us)))

	// Pin the batch's base version once: every update in us is already
	// committed, so the snapshot covers the whole batch, and screening plus
	// every fanned-out maintainer read one frozen state — no torn reads
	// even when other goroutines mutate the store mid-batch.
	snap := r.base.Snapshot()
	defer snap.Close()

	perView := make([][]store.Update, len(views))
	if r.screening {
		stamp := make([]int, len(views))
		for i := range stamp {
			stamp[i] = -1
		}
		label := func(oid oem.OID) (string, bool) {
			l, err := snap.Label(oid)
			return l, err == nil
		}
		routed := 0
		for k, u := range us {
			ix.Route(u, k, stamp, label, func(i int) {
				perView[i] = append(perView[i], u)
				routed++
			})
		}
		m.RoutedPairs.Add(uint64(routed))
		m.ScreenedPairs.Add(uint64(len(us)*len(views) - routed))
	} else {
		for i := range views {
			perView[i] = us
		}
		m.RoutedPairs.Add(uint64(len(us) * len(views)))
	}

	tasks := make([]Task, 0, len(views))
	for i, ups := range perView {
		if len(ups) == 0 {
			continue
		}
		v := views[i]
		tasks = append(tasks, Task{Name: v.Name, Fn: func() error {
			return r.applyViewBatch(v, ups, snap)
		}})
	}
	var all []error
	for _, err := range r.sched.Run(tasks) {
		if err != nil {
			all = append(all, err)
		}
	}
	for _, v := range r.tail {
		m.RoutedPairs.Add(uint64(len(us)))
		// Tail views read other views' objects as base data, so each gets
		// a fresh pin taken after the fan-out (and after earlier tail
		// views) committed its view-store writes.
		ts := r.base.Snapshot()
		err := r.applyViewBatch(v, us, ts)
		ts.Close()
		if err != nil {
			all = append(all, err)
		}
	}
	return errors.Join(all...)
}

// setMaintainerBase points a maintainer's base reads (its CentralAccess and
// its view's Base) at rd for the duration of a batch, returning a restore
// function. Maintainers whose access is not a CentralAccess — warehouse
// RemoteAccess answers from report enrichment and source query-backs —
// keep their access untouched; only the view's Base is repointed.
func setMaintainerBase(m Maintainer, mv *MaterializedView, rd store.Reader) (restore func()) {
	var undo []func()
	if mv != nil {
		old := mv.Base
		mv.Base = rd
		undo = append(undo, func() { mv.Base = old })
	}
	swap := func(a BaseAccess) {
		if ca, ok := a.(*CentralAccess); ok {
			old := ca.S
			ca.S = rd
			undo = append(undo, func() { ca.S = old })
		}
	}
	switch v := m.(type) {
	case *SimpleMaintainer:
		swap(v.Access)
	case *GeneralMaintainer:
		swap(v.access)
	case *DagMaintainer:
		swap(v.Access)
	}
	return func() {
		for i := len(undo) - 1; i >= 0; i-- {
			undo[i]()
		}
	}
}

// applyViewBatch applies one view's share of a batch in order, feeding
// the legacy per-update observer as before and publishing one coalesced
// delta to the batch observer at the end. It temporarily intercepts the
// maintainer's observer and repoints base reads at the batch's pinned
// snapshot; both safe because each view belongs to exactly one task per
// batch. View-store writes stay on the live store.
func (r *Registry) applyViewBatch(v *View, ups []store.Update, base store.Reader) error {
	if v.Maintainer == nil || len(ups) == 0 {
		return nil
	}
	if base != nil {
		restore := setMaintainerBase(v.Maintainer, v.Materialized, base)
		defer restore()
	}
	legacy := r.observer
	var co *DeltaCoalescer
	if r.batchObserver != nil {
		co = NewDeltaCoalescer()
	}
	if co != nil {
		setMaintainerObserver(v.Maintainer, func(view oem.OID, u store.Update, d Deltas) {
			if legacy != nil {
				legacy(view, u, d)
			}
			co.Add(u, d)
		})
		defer setMaintainerObserver(v.Maintainer, legacy)
	}
	for _, u := range ups {
		if err := v.Maintainer.Apply(u); err != nil {
			return fmt.Errorf("core: maintaining %s after %s: %w", v.Name, u, err)
		}
	}
	if co != nil && co.Count() > 0 {
		r.batchObserver(v.Materialized.OID, co.Last(), co.Count(), co.Deltas())
	}
	return nil
}

// Apply routes one base update through the batch path — a one-element
// ApplyBatch.
func (r *Registry) Apply(u store.Update) error {
	return r.ApplyBatch([]store.Update{u})
}

// ApplyAll applies a sequence of updates in order.
//
// Deprecated: ApplyAll is ApplyBatch under its pre-batching name; call
// ApplyBatch directly.
func (r *Registry) ApplyAll(us []store.Update) error {
	return r.ApplyBatch(us)
}

// IsViewObject reports whether an OID belongs to view machinery — a view
// object or one of its delegates — rather than to the base data. Watch
// uses it to keep maintenance from feeding on its own writes when views
// live in the base store.
func (r *Registry) IsViewObject(oid oem.OID) bool {
	if _, ok := r.views[string(oid)]; ok {
		return true
	}
	if view, _, ok := SplitDelegateOID(oid); ok {
		if _, reg := r.views[string(view)]; reg {
			return true
		}
	}
	return false
}

// Watch subscribes the registry to the base store: updates are
// group-committed into a store.Buffer during the synchronous callback
// (the store calls subscribers with its lock held, so maintenance must
// happen on the caller's side) and Drain later routes each buffered
// batch through ApplyBatch, skipping updates that touch view objects or
// delegates. Maintenance errors are reported to onErr (nil to ignore
// them), one call per failed view.
func (r *Registry) Watch(onErr func(error)) {
	r.onErr = onErr
	if r.buf != nil {
		return // already subscribed; just replace the error sink
	}
	r.buf = store.NewBuffer()
	r.base.Subscribe(r.buf.Observe)
}

// Drain processes updates buffered since the last Drain as one batch (or
// several, when maintenance itself logs more base-relevant updates). It
// must be called after base mutations when Watch is active; the gsv
// facade does this automatically on Sync.
func (r *Registry) Drain() {
	if r.buf == nil || r.draining {
		return
	}
	r.draining = true
	defer func() { r.draining = false }()
	for {
		us := r.buf.Take()
		if len(us) == 0 {
			return
		}
		batch := make([]store.Update, 0, len(us))
		for _, u := range us {
			if u.Seq <= r.skipThrough || r.IsViewObject(u.N1) {
				continue
			}
			batch = append(batch, u)
		}
		if len(batch) == 0 {
			continue
		}
		if err := r.ApplyBatch(batch); err != nil && r.onErr != nil {
			for _, e := range unwrapJoined(err) {
				r.onErr(e)
			}
		}
	}
}

// unwrapJoined flattens an errors.Join result into its parts; a plain
// error comes back as a one-element slice.
func unwrapJoined(err error) []error {
	if u, ok := err.(interface{ Unwrap() []error }); ok {
		return u.Unwrap()
	}
	return []error{err}
}
