package core

import (
	"fmt"

	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/query"
	"gsv/internal/store"
)

// BulkUpdate describes an intentional update — the paper's final Section 6
// open problem: "How does one maintain materialized views when not only
// the updated base objects, but also the update query that generated them
// is known? For example, we may know that the salary of each person named
// 'Mark' was increased by $1000. Then a view containing the salary of
// persons named 'John' should be unaffected."
//
// Selector picks the target objects X exactly like a simple view
// definition; EffectPath locates the atoms below each X whose values the
// update modifies (it modifies values only — bulk structural updates are
// out of scope, as in the paper's example).
type BulkUpdate struct {
	Selector   SimpleDef
	EffectPath pathexpr.Path
}

// String renders the intent.
func (b BulkUpdate) String() string {
	return fmt.Sprintf("modify %s of %s.%s where %s.%s %s",
		b.EffectPath, b.Selector.Entry, b.Selector.SelPath,
		b.Selector.SelPath, b.Selector.CondPath, b.Selector.Cond)
}

// touchedPath returns the full label path (from the selector entry) of the
// atoms the bulk update modifies.
func (b BulkUpdate) touchedPath() pathexpr.Path {
	return b.Selector.SelPath.Concat(b.EffectPath)
}

// UnaffectedReason explains a screening decision, for logs and tests.
type UnaffectedReason int

const (
	// Affected means the view may be affected and must process the
	// individual updates.
	Affected UnaffectedReason = iota
	// UnaffectedDifferentEntry: the update and the view hang off
	// different roots.
	UnaffectedDifferentEntry
	// UnaffectedDisjointPaths: the modified atoms lie on a label path the
	// view's membership and delegate values never read.
	UnaffectedDisjointPaths
	// UnaffectedDisjointSelectors: paths coincide, but the selector and
	// the view condition are mutually exclusive on the same atoms (e.g.
	// name = 'Mark' vs name = 'John' under the functional-label
	// assumption).
	UnaffectedDisjointSelectors
)

// String names the reason.
func (r UnaffectedReason) String() string {
	switch r {
	case Affected:
		return "affected"
	case UnaffectedDifferentEntry:
		return "different entry"
	case UnaffectedDisjointPaths:
		return "disjoint paths"
	case UnaffectedDisjointSelectors:
		return "disjoint selectors"
	default:
		return fmt.Sprintf("UnaffectedReason(%d)", int(r))
	}
}

// ScreenBulkUpdate decides whether a view is unaffected by a bulk update,
// using only the two intents — no data access. The entry and path
// reasoning is unconditional; the disjoint-selector reasoning is enabled
// by the caller-asserted assumeStable flag, which vouches for two facts
// the intents alone cannot establish:
//
//  1. Functional labels: no object has two children with the same label
//     (true for relation-like data, not guaranteed by OEM) — otherwise one
//     object could satisfy both selectors (two name children 'Mark' and
//     'John').
//  2. Condition-stable transform: the new values do not change the truth
//     of the view's condition for any selected object (a $1000 raise
//     cannot change a name; a rename of Marks CAN mint Johns and must be
//     run with assumeStable=false — see TestBulkRenameCaveat).
func ScreenBulkUpdate(view SimpleDef, b BulkUpdate, assumeStable bool) UnaffectedReason {
	if view.Entry != b.Selector.Entry {
		// Under the tree assumption of Section 4, distinct entry objects
		// root disjoint subtrees, so an update below one entry cannot
		// touch atoms below another.
		return UnaffectedDifferentEntry
	}
	touched := b.touchedPath()

	// The view reads atoms at sel_path.cond_path (membership) and copies
	// the member objects themselves at sel_path (delegate values; a value
	// modify affects a delegate only if the member is atomic, i.e. the
	// member path itself is touched).
	readsMembership := touched.Equal(view.FullPath())
	readsDelegates := touched.Equal(view.SelPath)
	if !readsMembership && !readsDelegates {
		return UnaffectedDisjointPaths
	}

	// Paths coincide: try to prove the selectors disjoint.
	if assumeStable && selectorsDisjoint(view, b.Selector) {
		return UnaffectedDisjointSelectors
	}
	return Affected
}

// selectorsDisjoint reports whether no object can satisfy both simple
// conditions, assuming functional labels. It handles the paper's case —
// equality conditions on the same condition path with different literals —
// plus numerically incompatible ranges.
func selectorsDisjoint(a, b SimpleDef) bool {
	if !a.SelPath.Equal(b.SelPath) || !a.CondPath.Equal(b.CondPath) {
		return false
	}
	ca, cb := a.Cond, b.Cond
	if ca.Always || cb.Always || ca.Op == query.OpExists || cb.Op == query.OpExists {
		return false
	}
	return condsDisjoint(ca, cb)
}

// condsDisjoint checks value-level incompatibility of two comparisons.
func condsDisjoint(a, b CondTest) bool {
	// Equality vs equality with different literals.
	if a.Op == query.OpEq && b.Op == query.OpEq {
		return !a.Literal.Equal(b.Literal)
	}
	// Equality vs a comparison excluding the literal.
	if a.Op == query.OpEq {
		return !b.HoldsValue(a.Literal)
	}
	if b.Op == query.OpEq {
		return !a.HoldsValue(b.Literal)
	}
	// Range vs range: disjoint when the ranges cannot overlap, e.g.
	// x < 10 and x > 20.
	cmp, ok := a.Literal.Compare(b.Literal)
	if !ok {
		return false
	}
	lower := func(op query.Op) bool { return op == query.OpGt || op == query.OpGe }
	upper := func(op query.Op) bool { return op == query.OpLt || op == query.OpLe }
	switch {
	case upper(a.Op) && lower(b.Op):
		// a: x < La (or <=), b: x > Lb (or >=); disjoint if La <= Lb with
		// strictness handled below.
		if cmp < 0 {
			return true
		}
		return cmp == 0 && (a.Op == query.OpLt || b.Op == query.OpGt)
	case lower(a.Op) && upper(b.Op):
		if cmp > 0 {
			return true
		}
		return cmp == 0 && (a.Op == query.OpGt || b.Op == query.OpLt)
	default:
		return false
	}
}

// ApplyBulk executes a bulk update against a store: for every selected
// object X and every atom in X.EffectPath, apply transform to its value.
// Individual modify updates are logged as usual, so maintainers that do
// NOT understand the intent can still process them one by one; maintainers
// that do (see Registry.ApplyBulk) skip them wholesale.
func ApplyBulk(s *store.Store, b BulkUpdate, transform func(oem.Atom) oem.Atom) (int, error) {
	q, err := b.Selector.Query()
	if err != nil {
		return 0, err
	}
	members, err := query.NewEvaluator(s).Eval(q)
	if err != nil {
		return 0, err
	}
	access := NewCentralAccess(s)
	modified := 0
	for _, m := range members {
		atoms, err := access.EvalCond(m, b.EffectPath, CondTest{Always: true})
		if err != nil {
			return modified, err
		}
		for _, oid := range atoms {
			o, err := s.Get(oid)
			if err != nil || !o.IsAtomic() {
				continue
			}
			if err := s.Modify(oid, transform(o.Atom)); err != nil {
				return modified, err
			}
			modified++
		}
	}
	return modified, nil
}

// BulkOutcome summarizes what Registry.ApplyBulk did per view.
type BulkOutcome struct {
	View    string
	Reason  UnaffectedReason
	Applied int // individual updates processed (0 when screened)
}

// ApplyBulk executes a bulk update and maintains every registered
// materialized view, screening views the intent provably does not touch.
// assumeStable extends screening to disjoint selectors (see
// ScreenBulkUpdate for the two facts it asserts). It returns one outcome
// per materialized view.
func (r *Registry) ApplyBulk(b BulkUpdate, transform func(oem.Atom) oem.Atom, assumeStable bool) ([]BulkOutcome, error) {
	before := r.base.Seq()
	if _, err := ApplyBulk(r.base, b, transform); err != nil {
		return nil, err
	}
	updates := r.base.LogSince(before)
	var out []BulkOutcome
	for _, name := range r.Names() {
		v := r.views[name]
		if v.Maintainer == nil {
			continue
		}
		oc := BulkOutcome{View: name}
		if def, ok := Simplify(v.Query); ok {
			oc.Reason = ScreenBulkUpdate(def, b, assumeStable)
		}
		if oc.Reason == Affected {
			for _, u := range updates {
				if err := v.Maintainer.Apply(u); err != nil {
					return out, err
				}
				oc.Applied++
			}
		}
		out = append(out, oc)
	}
	return out, nil
}
