// Package core implements the paper's primary contribution: virtual and
// materialized views over graph structured databases (Section 3), and their
// incremental maintenance (Section 4).
//
// A view is defined by a query and is itself an ordinary GSDB object
// <V, view, set, value(V)>, so views can be queried and further views can
// be defined on them. A materialized view additionally stores a *delegate*
// object for every base object in the view; delegate OIDs are semantic —
// the view OID concatenated with the base OID (MV.P1) — which is what lets
// maintenance relate delegates back to their originals.
//
// Maintenance comes in three strategies:
//
//   - SimpleMaintainer implements the paper's Algorithm 1 verbatim for
//     simple views (constant selection and condition paths over tree bases),
//     expressed against a BaseAccess interface so the same algorithm runs
//     centralized (direct store access) and in a warehouse (query-backs).
//   - GeneralMaintainer handles the Section 6 extensions: wildcard path
//     expressions, multiple selection paths, AND/OR conditions, and DAG
//     bases with multiple derivations.
//   - Recompute rebuilds the view from scratch; it is both the correctness
//     oracle for the property tests and the baseline for experiment E1.
package core

import (
	"fmt"
	"strings"

	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/query"
)

// DelegateOID returns the semantic OID of the delegate of base object
// `base` in the view with OID `view`: the concatenation view.base
// (Section 3.2).
func DelegateOID(view, base oem.OID) oem.OID {
	return oem.OID(string(view) + "." + string(base))
}

// SplitDelegateOID inverts DelegateOID, splitting at the first dot. View
// OIDs never contain dots; base OIDs may (a delegate of a delegate, for
// views defined over materialized views).
func SplitDelegateOID(d oem.OID) (view, base oem.OID, ok bool) {
	i := strings.IndexByte(string(d), '.')
	if i <= 0 || i == len(d)-1 {
		return "", "", false
	}
	return d[:i], d[i+1:], true
}

// CondTest is the paper's cond() predicate over atomic objects, reduced to
// the data needed by maintenance: a comparison operator and literal. The
// zero CondTest (Always true) represents a view without a WHERE clause.
type CondTest struct {
	// Always marks the trivial condition that accepts every object.
	Always  bool
	Op      query.Op
	Literal oem.Atom
}

// HoldsValue reports whether an atomic value satisfies the condition —
// the cond(newv) test of Algorithm 1's modify case. OpExists holds for any
// existing object regardless of value.
func (c CondTest) HoldsValue(v oem.Atom) bool {
	if c.Always || c.Op == query.OpExists {
		return true
	}
	return c.Op.Apply(v, c.Literal)
}

// HoldsObject reports whether an object satisfies the condition: atomic
// objects are tested by value; set objects satisfy only Always/OpExists.
func (c CondTest) HoldsObject(o *oem.Object) bool {
	if c.Always || c.Op == query.OpExists {
		return true
	}
	return o.IsAtomic() && c.Op.Apply(o.Atom, c.Literal)
}

// String renders the condition.
func (c CondTest) String() string {
	if c.Always {
		return "true"
	}
	if c.Op == query.OpExists {
		return "exists"
	}
	return fmt.Sprintf("%s %s", c.Op, c.Literal)
}

// SimpleDef is the shape of a *simple view* (Section 4.2): a single
// constant selection path from one entry object, and a condition that is a
// single cond() over one constant condition path:
//
//	define mview MV as: SELECT ROOT.sel_path X WHERE cond(X.cond_path)
//
// An optional WITHIN database restricts all traversals.
type SimpleDef struct {
	Entry    oem.OID
	SelPath  pathexpr.Path
	CondPath pathexpr.Path
	Cond     CondTest
	Within   oem.OID
}

// FullPath returns sel_path.cond_path, the concatenation Algorithm 1
// matches update locations against.
func (d SimpleDef) FullPath() pathexpr.Path { return d.SelPath.Concat(d.CondPath) }

// Simplify classifies a parsed query as a simple view definition. It
// returns ok=false when the query needs the generalized maintainer:
// multiple selection items, wildcard path expressions, AND/OR conditions,
// or an ANS INT clause (whose answer depends on a second, independently
// changing database).
func Simplify(q *query.Query) (SimpleDef, bool) {
	if len(q.Selects) != 1 || q.AnsInt != "" {
		return SimpleDef{}, false
	}
	item := q.Selects[0]
	sel, ok := pathexpr.IsConst(item.Path)
	if !ok {
		return SimpleDef{}, false
	}
	def := SimpleDef{
		Entry:   item.Entry,
		SelPath: sel,
		Within:  q.Within,
		Cond:    CondTest{Always: true},
	}
	if q.Where == nil {
		return def, true
	}
	cmp, ok := q.Where.(*query.Compare)
	if !ok || cmp.Binder != item.Binder {
		return SimpleDef{}, false
	}
	condPath, ok := pathexpr.IsConst(cmp.Path)
	if !ok {
		return SimpleDef{}, false
	}
	def.CondPath = condPath
	def.Cond = CondTest{Op: cmp.Op, Literal: cmp.Literal}
	return def, true
}
