package core

import (
	"fmt"
	"testing"

	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/workload"
)

func ypDef() SimpleDef {
	return SimpleDef{
		Entry:    "ROOT",
		SelPath:  pathexpr.MustParsePath("professor"),
		CondPath: pathexpr.MustParsePath("age"),
		Cond:     CondTest{Op: query.OpLe, Literal: oem.Int(45)},
	}
}

func newPartial(t testing.TB, depth int) (*store.Store, *PartialView) {
	t.Helper()
	s := store.NewDefault()
	workload.PersonDB(s)
	vstore := store.New(store.Options{ParentIndex: true, LabelIndex: true, AllowDangling: true})
	p, err := NewPartialView("PV", ypDef(), depth, s, vstore)
	if err != nil {
		t.Fatal(err)
	}
	return s, p
}

func feedPartial(t testing.TB, s *store.Store, p *PartialView, from uint64) {
	t.Helper()
	for _, u := range s.LogSince(from) {
		if err := p.Apply(u); err != nil {
			t.Fatalf("Apply(%s): %v", u, err)
		}
	}
}

func TestPartialDepth0IsPlainView(t *testing.T) {
	_, p := newPartial(t, 0)
	members, err := p.Members()
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(members, []oem.OID{"P1"}) {
		t.Fatalf("members = %v", members)
	}
	// Only the member is mirrored; its value keeps base pointers.
	if p.MirroredCount() != 1 {
		t.Fatalf("mirrored = %d", p.MirroredCount())
	}
	d, err := p.Delegate("P1")
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(d.Set, []oem.OID{"N1", "A1", "S1", "P3"}) {
		t.Fatalf("depth-0 delegate = %v", d.Set)
	}
}

func TestPartialDepth1MaterializesChildren(t *testing.T) {
	_, p := newPartial(t, 1)
	// P1 plus its 4 children are mirrored.
	if p.MirroredCount() != 5 {
		t.Fatalf("mirrored = %d, want 5", p.MirroredCount())
	}
	d, err := p.Delegate("P1")
	if err != nil {
		t.Fatal(err)
	}
	// The member's value is swizzled to delegate OIDs.
	if !oem.SameMembers(d.Set, []oem.OID{"PV.N1", "PV.A1", "PV.S1", "PV.P3"}) {
		t.Fatalf("depth-1 member value = %v", d.Set)
	}
	// The frontier delegate (P3, level 1) keeps base pointers.
	p3, err := p.Delegate("P3")
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(p3.Set, []oem.OID{"N3", "A3", "M3"}) {
		t.Fatalf("frontier delegate = %v", p3.Set)
	}
	if p.IsMirrored("N3") {
		t.Fatal("level-2 object mirrored at depth 1")
	}
}

func TestPartialDepth2ReachesGrandchildren(t *testing.T) {
	_, p := newPartial(t, 2)
	// P1 + 4 children + P3's 3 children.
	if p.MirroredCount() != 8 {
		t.Fatalf("mirrored = %d, want 8", p.MirroredCount())
	}
	p3, _ := p.Delegate("P3")
	if !oem.SameMembers(p3.Set, []oem.OID{"PV.N3", "PV.A3", "PV.M3"}) {
		t.Fatalf("level-1 value at depth 2 = %v", p3.Set)
	}
}

func TestPartialMembershipChange(t *testing.T) {
	s, p := newPartial(t, 1)
	before := s.Seq()
	s.MustPut(oem.NewAtom("A2", "age", oem.Int(40)))
	if err := s.Insert("P2", "A2"); err != nil {
		t.Fatal(err)
	}
	feedPartial(t, s, p, before)
	members, _ := p.Members()
	if !oem.SameMembers(members, []oem.OID{"P1", "P2"}) {
		t.Fatalf("members = %v", members)
	}
	// P2's children (N2, ADD2, A2) are now mirrored too.
	if !p.IsMirrored("N2") || !p.IsMirrored("A2") {
		t.Fatal("new member's children not mirrored")
	}
	d, _ := p.Delegate("P2")
	if !oem.SameMembers(d.Set, []oem.OID{"PV.N2", "PV.ADD2", "PV.A2"}) {
		t.Fatalf("P2 delegate = %v", d.Set)
	}

	// P1 leaves: its whole mirrored subtree is pruned.
	before = s.Seq()
	if err := s.Modify("A1", oem.Int(60)); err != nil {
		t.Fatal(err)
	}
	feedPartial(t, s, p, before)
	members, _ = p.Members()
	if !oem.SameMembers(members, []oem.OID{"P2"}) {
		t.Fatalf("members = %v", members)
	}
	if p.IsMirrored("P1") || p.IsMirrored("N1") || p.ViewStore.Has("PV.N1") {
		t.Fatal("departed member's mirror not pruned")
	}
}

func TestPartialValueMaintenance(t *testing.T) {
	s, p := newPartial(t, 1)
	// Modify a mirrored child's value.
	before := s.Seq()
	if err := s.Modify("N1", oem.String_("Johnny")); err != nil {
		t.Fatal(err)
	}
	feedPartial(t, s, p, before)
	n1, err := p.Delegate("N1")
	if err != nil {
		t.Fatal(err)
	}
	if !n1.Atom.Equal(oem.String_("Johnny")) {
		t.Fatalf("mirrored atom = %v", n1.Atom)
	}
	// Attach a new child inside the region: it gets mirrored and linked.
	before = s.Seq()
	s.MustPut(oem.NewAtom("H1", "hobby", oem.String_("chess")))
	if err := s.Insert("P1", "H1"); err != nil {
		t.Fatal(err)
	}
	feedPartial(t, s, p, before)
	if !p.IsMirrored("H1") {
		t.Fatal("new in-region child not mirrored")
	}
	d, _ := p.Delegate("P1")
	if !d.Contains("PV.H1") {
		t.Fatalf("member value missing new delegate: %v", d.Set)
	}
	// Detach it again: the delegate is pruned.
	before = s.Seq()
	if err := s.Delete("P1", "H1"); err != nil {
		t.Fatal(err)
	}
	feedPartial(t, s, p, before)
	if p.IsMirrored("H1") || p.ViewStore.Has("PV.H1") {
		t.Fatal("detached child's mirror not pruned")
	}
}

func TestPartialFrontierInsertKeepsPointer(t *testing.T) {
	s, p := newPartial(t, 1)
	// P3 is at the frontier (level 1): a new child under it stays a base
	// pointer.
	before := s.Seq()
	s.MustPut(oem.NewAtom("G3", "gpa", oem.Float(3.9)))
	if err := s.Insert("P3", "G3"); err != nil {
		t.Fatal(err)
	}
	feedPartial(t, s, p, before)
	if p.IsMirrored("G3") {
		t.Fatal("frontier child was mirrored")
	}
	p3, _ := p.Delegate("P3")
	if !p3.Contains("G3") {
		t.Fatalf("frontier value missing base pointer: %v", p3.Set)
	}
}

func TestPartialRejectsSharedStore(t *testing.T) {
	s := store.NewDefault()
	workload.PersonDB(s)
	if _, err := NewPartialView("PV", ypDef(), 1, s, s); err == nil {
		t.Fatal("shared store accepted")
	}
	vstore := store.New(store.Options{AllowDangling: true, ParentIndex: true})
	if _, err := NewPartialView("PV", ypDef(), -1, s, vstore); err == nil {
		t.Fatal("negative depth accepted")
	}
}

// partialOracle rebuilds a partial view from scratch and compares every
// delegate object with the maintained one.
func checkPartialConsistent(t testing.TB, s *store.Store, p *PartialView) {
	t.Helper()
	fresh := store.New(store.Options{ParentIndex: true, LabelIndex: true, AllowDangling: true})
	oracle, err := NewPartialView(p.OID, p.Def, p.Depth, s, fresh)
	if err != nil {
		t.Fatal(err)
	}
	wantMembers, err := oracle.Members()
	if err != nil {
		t.Fatal(err)
	}
	gotMembers, err := p.Members()
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(gotMembers, wantMembers) {
		t.Fatalf("members %v != oracle %v", gotMembers, wantMembers)
	}
	if p.MirroredCount() != oracle.MirroredCount() {
		t.Fatalf("mirrored %d != oracle %d", p.MirroredCount(), oracle.MirroredCount())
	}
	fresh.ForEach(func(o *oem.Object) {
		got, err := p.ViewStore.Get(o.OID)
		if err != nil {
			t.Fatalf("missing delegate %s: %v", o.OID, err)
		}
		if !got.Equal(o) {
			t.Fatalf("delegate %s differs:\n got %v\nwant %v", o.OID, got, o)
		}
	})
}

// TestPropertyPartialEqualsRematerialize drives random streams and checks
// the maintained partial view object-for-object against a fresh build.
func TestPropertyPartialEqualsRematerialize(t *testing.T) {
	for _, depth := range []int{0, 1, 2} {
		depth := depth
		t.Run(fmt.Sprintf("depth=%d", depth), func(t *testing.T) {
			s := store.NewDefault()
			db := workload.RelationLike(s, workload.RelationConfig{
				Relations: 2, TuplesPerRelation: 5, FieldsPerTuple: 2, Seed: int64(depth),
			})
			def := SimpleDef{
				Entry:    "REL",
				SelPath:  pathexpr.MustParsePath("r0.tuple"),
				CondPath: pathexpr.MustParsePath("age"),
				Cond:     CondTest{Op: query.OpGt, Literal: oem.Int(30)},
			}
			vstore := store.New(store.Options{ParentIndex: true, LabelIndex: true, AllowDangling: true})
			p, err := NewPartialView("PV", def, depth, s, vstore)
			if err != nil {
				t.Fatal(err)
			}
			var sets, atoms []oem.OID
			for _, r := range db.Relations {
				sets = append(sets, r.OID)
				sets = append(sets, r.Tuples...)
				for _, tu := range r.Tuples {
					kids, _ := s.Children(tu)
					atoms = append(atoms, kids...)
				}
			}
			stream := workload.NewStream(s, workload.StreamConfig{
				Seed: int64(depth)*11 + 3, Mix: workload.Mix{Insert: 3, Delete: 2, Modify: 5}, ValueRange: 80,
			}, sets, atoms)
			for step := 0; step < 80; step++ {
				before := s.Seq()
				if _, ok := stream.Next(); !ok {
					break
				}
				feedPartial(t, s, p, before)
				if step%8 == 0 || step == 79 {
					checkPartialConsistent(t, s, p)
				}
			}
			checkPartialConsistent(t, s, p)
		})
	}
}
