package core

import (
	"fmt"
	"math/rand"
	"testing"

	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/query"
	"gsv/internal/store"
)

// dagFixture builds a small DAG: two departments share an employee whose
// age makes it a view member.
//
//	ORG ── dept D1 ── emp E1 ── age 30
//	    ── dept D2 ── emp E1 (shared!)
//	              └── emp E2 ── age 55
func dagFixture(t testing.TB) *store.Store {
	t.Helper()
	s := store.NewDefault()
	s.MustPut(oem.NewAtom("AG1", "age", oem.Int(30)))
	s.MustPut(oem.NewAtom("AG2", "age", oem.Int(55)))
	s.MustPut(oem.NewSet("E1", "emp", "AG1"))
	s.MustPut(oem.NewSet("E2", "emp", "AG2"))
	s.MustPut(oem.NewSet("D1", "dept", "E1"))
	s.MustPut(oem.NewSet("D2", "dept", "E1", "E2"))
	s.MustPut(oem.NewSet("ORG", "org", "D1", "D2"))
	return s
}

func newDag(t testing.TB, s *store.Store, q string) (*MaterializedView, *DagMaintainer) {
	t.Helper()
	vstore := store.New(store.Options{ParentIndex: true, AllowDangling: true})
	mv, err := Materialize("DV", query.MustParse(q), s, vstore)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewDagMaintainer(mv, NewCentralAccess(s))
	if err != nil {
		t.Fatal(err)
	}
	return mv, m
}

func feedDag(t testing.TB, s *store.Store, m *DagMaintainer, from uint64) {
	t.Helper()
	for _, u := range s.LogSince(from) {
		if err := m.Apply(u); err != nil {
			t.Fatalf("Apply(%s): %v", u, err)
		}
	}
}

func TestDagAllPaths(t *testing.T) {
	s := dagFixture(t)
	a := NewCentralAccess(s)
	paths, err := a.AllPaths("ORG", "E1")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths to E1 = %v, want 2", paths)
	}
	for _, p := range paths {
		if p.String() != "dept.emp" {
			t.Fatalf("path = %v", p)
		}
	}
	// Same object as root: the empty path.
	paths, _ = a.AllPaths("ORG", "ORG")
	if len(paths) != 1 || len(paths[0]) != 0 {
		t.Fatalf("self paths = %v", paths)
	}
	// Unreachable object: no paths.
	s.MustPut(oem.NewAtom("LONER", "x", oem.Int(1)))
	paths, _ = a.AllPaths("ORG", "LONER")
	if len(paths) != 0 {
		t.Fatalf("loner paths = %v", paths)
	}
}

func TestDagAllAncestors(t *testing.T) {
	s := dagFixture(t)
	a := NewCentralAccess(s)
	ys, err := a.AllAncestors("AG1", pathexpr.MustParsePath("emp.age"))
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(ys, []oem.OID{"D1", "D2"}) {
		t.Fatalf("ancestors = %v", ys)
	}
	ys, _ = a.AllAncestors("AG1", pathexpr.MustParsePath("age"))
	if !oem.SameMembers(ys, []oem.OID{"E1"}) {
		t.Fatalf("ancestors(age) = %v", ys)
	}
	ys, _ = a.AllAncestors("AG1", pathexpr.Path{})
	if !oem.SameMembers(ys, []oem.OID{"AG1"}) {
		t.Fatalf("ancestors(ε) = %v", ys)
	}
}

func TestDagMaintainerSharedDerivations(t *testing.T) {
	s := dagFixture(t)
	mv, m := newDag(t, s, "SELECT ORG.dept.emp X WHERE X.age < 50")
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"E1"}) {
		t.Fatalf("initial = %v", got)
	}
	// Cut one of E1's two derivations: it stays a member through the
	// other — the exact case Algorithm 1's tree assumption cannot handle.
	before := s.Seq()
	if err := s.Delete("D1", "E1"); err != nil {
		t.Fatal(err)
	}
	feedDag(t, s, m, before)
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"E1"}) {
		t.Fatalf("after cutting one derivation = %v", got)
	}
	// Cut the second derivation: now it leaves.
	before = s.Seq()
	if err := s.Delete("D2", "E1"); err != nil {
		t.Fatal(err)
	}
	feedDag(t, s, m, before)
	if got := members(t, mv); len(got) != 0 {
		t.Fatalf("after cutting both = %v", got)
	}
	// Reattach under D1: back in.
	before = s.Seq()
	if err := s.Insert("D1", "E1"); err != nil {
		t.Fatal(err)
	}
	feedDag(t, s, m, before)
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"E1"}) {
		t.Fatalf("after reattach = %v", got)
	}
}

func TestDagMaintainerModify(t *testing.T) {
	s := dagFixture(t)
	mv, m := newDag(t, s, "SELECT ORG.dept.emp X WHERE X.age < 50")
	before := s.Seq()
	if err := s.Modify("AG2", oem.Int(40)); err != nil {
		t.Fatal(err)
	}
	feedDag(t, s, m, before)
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"E1", "E2"}) {
		t.Fatalf("after modify in = %v", got)
	}
	before = s.Seq()
	if err := s.Modify("AG1", oem.Int(60)); err != nil {
		t.Fatal(err)
	}
	feedDag(t, s, m, before)
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"E2"}) {
		t.Fatalf("after modify out = %v", got)
	}
}

func TestDagMaintainerRejectsGeneralViews(t *testing.T) {
	s := dagFixture(t)
	vstore := store.New(store.Options{ParentIndex: true, AllowDangling: true})
	mv, err := Materialize("W", query.MustParse("SELECT ORG.* X"), s, vstore)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDagMaintainer(mv, NewCentralAccess(s)); err == nil {
		t.Fatal("wildcard view accepted")
	}
}

// randomLayeredDAG builds a DAG with shared children across layers and
// returns the store plus mutation targets.
func randomLayeredDAG(seed int64) (*store.Store, []oem.OID, []oem.OID) {
	rng := rand.New(rand.NewSource(seed))
	s := store.NewDefault()
	const emps = 6
	var empOIDs, ageOIDs []oem.OID
	for e := 0; e < emps; e++ {
		age := oem.OID(fmt.Sprintf("AG%d", e))
		s.MustPut(oem.NewAtom(age, "age", oem.Int(int64(rng.Intn(80)))))
		emp := oem.OID(fmt.Sprintf("E%d", e))
		s.MustPut(oem.NewSet(emp, "emp", age))
		empOIDs = append(empOIDs, emp)
		ageOIDs = append(ageOIDs, age)
	}
	var depts []oem.OID
	for d := 0; d < 3; d++ {
		dept := oem.OID(fmt.Sprintf("D%d", d))
		var kids []oem.OID
		for e := 0; e < emps; e++ {
			if rng.Intn(2) == 0 {
				kids = append(kids, empOIDs[e])
			}
		}
		s.MustPut(oem.NewSet(dept, "dept", kids...))
		depts = append(depts, dept)
	}
	s.MustPut(oem.NewSet("ORG", "org", depts...))
	return s, append(depts, empOIDs...), ageOIDs
}

// TestPropertyDagEqualsRecompute drives random edge churn over shared-
// children DAGs and checks the DAG maintainer against recomputation.
func TestPropertyDagEqualsRecompute(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			s, sets, atoms := randomLayeredDAG(seed)
			mv, m := newDag(t, s, "SELECT ORG.dept.emp X WHERE X.age < 40")
			rng := rand.New(rand.NewSource(seed + 99))
			for step := 0; step < 120; step++ {
				before := s.Seq()
				switch rng.Intn(3) {
				case 0: // toggle a dept->emp edge
					d := sets[rng.Intn(3)]
					e := sets[3+rng.Intn(len(sets)-3)]
					kids, _ := s.Children(d)
					has := false
					for _, k := range kids {
						if k == e {
							has = true
						}
					}
					if has {
						_ = s.Delete(d, e)
					} else {
						_ = s.Insert(d, e)
					}
				case 1: // modify an age
					_ = s.Modify(atoms[rng.Intn(len(atoms))], oem.Int(int64(rng.Intn(80))))
				default: // toggle an ORG->dept edge
					d := sets[rng.Intn(3)]
					kids, _ := s.Children("ORG")
					has := false
					for _, k := range kids {
						if k == d {
							has = true
						}
					}
					if has {
						_ = s.Delete("ORG", d)
					} else {
						_ = s.Insert("ORG", d)
					}
				}
				feedDag(t, s, m, before)
				if step%10 == 0 || step == 119 {
					fresh, err := query.NewEvaluator(s).Eval(mv.Query)
					if err != nil {
						t.Fatal(err)
					}
					got := members(t, mv)
					if !oem.SameMembers(got, fresh) {
						t.Fatalf("step %d: dag view %v != fresh %v", step, got, fresh)
					}
				}
			}
		})
	}
}
