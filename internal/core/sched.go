package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gsv/internal/obs"
	"gsv/internal/oem"
	"gsv/internal/store"
)

// Task is one unit of maintenance work the Scheduler fans out: typically
// "apply this view's share of a batch". Name identifies the task in
// errors; Fn does the work.
type Task struct {
	Name string
	Fn   func() error
}

// SchedMetrics instruments a Scheduler. The instruments are always
// allocated and updated (atomics, no locks); RegisterObs exposes them on
// an obs.Registry. BatchSize and the screening counters are recorded by
// the callers that know batch composition (Registry.ApplyBatch, the
// warehouse); the Scheduler itself records batches, latency, queue depth
// and achieved parallel speedup.
type SchedMetrics struct {
	Batches       obs.Counter    // batches run through the scheduler
	BatchSize     *obs.Histogram // base updates per batch
	BatchLatency  *obs.Histogram // wall-clock seconds per batch
	Speedup       *obs.Histogram // busy-time / wall-time per batch (effective parallelism)
	ScreenedPairs obs.Counter    // (view, update) pairs eliminated by screening
	RoutedPairs   obs.Counter    // (view, update) pairs routed to maintainers
	QueueDepth    obs.Gauge      // tasks admitted but not yet finished
}

// sizeBuckets bounds batch-size histograms: 1 update to ~64k, ×4 per step.
var sizeBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536}

func newSchedMetrics() SchedMetrics {
	return SchedMetrics{
		BatchSize:    obs.NewHistogram(sizeBuckets),
		BatchLatency: obs.NewHistogram(obs.LatencyBuckets),
		Speedup:      obs.NewHistogram([]float64{1, 1.5, 2, 3, 4, 6, 8, 12, 16, 24, 32}),
	}
}

// RegisterObs exposes the scheduler's instruments on reg under the given
// subsystem label (e.g. "registry", "warehouse").
func (m *SchedMetrics) RegisterObs(reg *obs.Registry, subsystem string) {
	reg.Help("gsv_sched_batches_total", "update batches run through the maintenance scheduler")
	reg.Help("gsv_sched_batch_updates", "base updates per scheduled batch")
	reg.Help("gsv_sched_batch_seconds", "wall-clock latency per scheduled batch")
	reg.Help("gsv_sched_parallel_speedup", "per-batch busy-time over wall-time (effective parallelism)")
	reg.Help("gsv_sched_pairs_screened_total", "(view, update) pairs eliminated by the screening index")
	reg.Help("gsv_sched_pairs_routed_total", "(view, update) pairs routed to maintainers")
	reg.Help("gsv_sched_queue_depth", "maintenance tasks admitted but not yet finished")
	ls := obs.L("subsystem", subsystem)
	reg.RegisterCounter("gsv_sched_batches_total", &m.Batches, ls)
	reg.RegisterHistogram("gsv_sched_batch_updates", m.BatchSize, ls)
	reg.RegisterHistogram("gsv_sched_batch_seconds", m.BatchLatency, ls)
	reg.RegisterHistogram("gsv_sched_parallel_speedup", m.Speedup, ls)
	reg.RegisterCounter("gsv_sched_pairs_screened_total", &m.ScreenedPairs, ls)
	reg.RegisterCounter("gsv_sched_pairs_routed_total", &m.RoutedPairs, ls)
	reg.RegisterGauge("gsv_sched_queue_depth", &m.QueueDepth, ls)
}

// Scheduler fans maintenance tasks out over a bounded worker pool. One
// batch of tasks at a time: Run admits every task, bounds concurrency at
// the configured parallelism, and collects per-task errors positionally.
// Per-view ordering is the caller's concern — the scheduler guarantees
// only that each Task runs exactly once; callers make a task process its
// view's updates in sequence order internally.
type Scheduler struct {
	parallelism atomic.Int64
	// Metrics is updated on every Run; see SchedMetrics.
	Metrics SchedMetrics
}

// NewScheduler returns a scheduler bounded at n concurrent tasks; n <= 0
// means runtime.NumCPU().
func NewScheduler(n int) *Scheduler {
	s := &Scheduler{Metrics: newSchedMetrics()}
	s.SetParallelism(n)
	return s
}

// SetParallelism rebounds the worker pool; n <= 0 means runtime.NumCPU().
// Safe to call between batches; a Run already in flight keeps its bound.
func (s *Scheduler) SetParallelism(n int) {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	s.parallelism.Store(int64(n))
}

// Parallelism returns the current concurrency bound.
func (s *Scheduler) Parallelism() int { return int(s.parallelism.Load()) }

// Run executes every task and returns a slice of per-task errors aligned
// with tasks (nil entries for successes). With parallelism 1 — or a
// single task — everything runs inline on the caller's goroutine; no
// goroutines, no channels, so the serial path costs what a plain loop
// costs.
func (s *Scheduler) Run(tasks []Task) []error {
	if len(tasks) == 0 {
		return nil
	}
	p := s.Parallelism()
	errs := make([]error, len(tasks))
	start := time.Now()
	s.Metrics.QueueDepth.Add(int64(len(tasks)))

	var busy atomic.Int64 // summed task nanoseconds
	runOne := func(i int) {
		t0 := time.Now()
		errs[i] = tasks[i].Fn()
		busy.Add(int64(time.Since(t0)))
		s.Metrics.QueueDepth.Add(-1)
	}

	if p <= 1 || len(tasks) == 1 {
		for i := range tasks {
			runOne(i)
		}
	} else {
		sem := make(chan struct{}, p)
		var wg sync.WaitGroup
		wg.Add(len(tasks))
		for i := range tasks {
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				runOne(i)
			}(i)
		}
		wg.Wait()
	}

	wall := time.Since(start)
	s.Metrics.Batches.Inc()
	s.Metrics.BatchLatency.Observe(wall.Seconds())
	if wall > 0 {
		s.Metrics.Speedup.Observe(float64(busy.Load()) / float64(wall))
	}
	return errs
}

// DeltaCoalescer nets a view's membership deltas over a batch of updates
// so the changefeed publishes one event per batch. Because maintainers
// report only deltas that were actually applied (no idempotent
// re-inserts), insert/delete pairs for the same member cancel exactly:
// replaying the coalesced delta reaches the same membership as replaying
// the per-update stream. Not safe for concurrent use; each view task owns
// its own coalescer.
type DeltaCoalescer struct {
	ops   map[oem.OID]int8 // +1 net insert, -1 net delete, 0 cancelled
	order []oem.OID        // first-touch order, for deterministic output
	n     int              // updates that contributed a non-empty delta
	last  store.Update     // most recent contributing update
}

// NewDeltaCoalescer returns an empty coalescer.
func NewDeltaCoalescer() *DeltaCoalescer {
	return &DeltaCoalescer{ops: make(map[oem.OID]int8)}
}

// Add folds one update's applied deltas in. Empty deltas are ignored.
func (c *DeltaCoalescer) Add(u store.Update, d Deltas) {
	if d.Empty() {
		return
	}
	c.n++
	c.last = u
	for _, y := range d.Insert {
		c.toggle(y, +1)
	}
	for _, y := range d.Delete {
		c.toggle(y, -1)
	}
}

func (c *DeltaCoalescer) toggle(y oem.OID, dir int8) {
	prev, seen := c.ops[y]
	if !seen {
		c.order = append(c.order, y)
	}
	if prev == -dir {
		c.ops[y] = 0
		return
	}
	c.ops[y] = dir
}

// Count returns how many updates contributed non-empty deltas.
func (c *DeltaCoalescer) Count() int { return c.n }

// Last returns the most recent contributing update (zero Update when
// Count is 0); its Seq stamps the coalesced event.
func (c *DeltaCoalescer) Last() store.Update { return c.last }

// Deltas returns the net membership change in first-touch order.
func (c *DeltaCoalescer) Deltas() Deltas {
	var d Deltas
	for _, y := range c.order {
		switch c.ops[y] {
		case +1:
			d.Insert = append(d.Insert, y)
		case -1:
			d.Delete = append(d.Delete, y)
		}
	}
	return d
}
