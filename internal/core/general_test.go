package core

import (
	"fmt"
	"testing"

	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/workload"
)

func newGeneral(t testing.TB, base *store.Store, oid oem.OID, q string) (*MaterializedView, *GeneralMaintainer) {
	t.Helper()
	mv, err := Materialize(oid, query.MustParse(q), base, base)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGeneralMaintainer(mv)
	if err != nil {
		t.Fatal(err)
	}
	return mv, g
}

func feed(t testing.TB, s *store.Store, m Maintainer, from uint64) {
	t.Helper()
	for _, u := range s.LogSince(from) {
		if _, _, isDelegate := SplitDelegateOID(u.N1); isDelegate {
			continue
		}
		if lbl, err := s.Label(u.N1); err == nil && oem.IsGroupingLabel(lbl) {
			continue
		}
		if err := m.Apply(u); err != nil {
			t.Fatalf("Apply(%s): %v", u, err)
		}
	}
}

func TestGeneralWildcardView(t *testing.T) {
	// The paper's VJ: SELECT ROOT.* X WHERE X.name = 'John' — a wildcard
	// selection Algorithm 1 cannot handle (Section 6).
	s := store.NewDefault()
	workload.PersonDB(s)
	mv, g := newGeneral(t, s, "MVJ", "SELECT ROOT.* X WHERE X.name = 'John'")
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"P1", "P3"}) {
		t.Fatalf("initial = %v", got)
	}
	// Renaming Sally to John brings P2 in.
	before := s.Seq()
	if err := s.Modify("N2", oem.String_("John")); err != nil {
		t.Fatal(err)
	}
	feed(t, s, g, before)
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"P1", "P2", "P3"}) {
		t.Fatalf("after rename = %v", got)
	}
	// Deleting the edge ROOT->P3 removes P3 only if it has no other
	// derivation — it does (via P1), so the view keeps it.
	before = s.Seq()
	if err := s.Delete("ROOT", "P3"); err != nil {
		t.Fatal(err)
	}
	feed(t, s, g, before)
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"P1", "P2", "P3"}) {
		t.Fatalf("after deleting one derivation = %v", got)
	}
	// Deleting the second derivation (P1->P3) removes P3.
	before = s.Seq()
	if err := s.Delete("P1", "P3"); err != nil {
		t.Fatal(err)
	}
	feed(t, s, g, before)
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"P1", "P2"}) {
		t.Fatalf("after deleting both derivations = %v", got)
	}
}

func TestGeneralDeepWildcardInsert(t *testing.T) {
	// Section 6: "If a view is defined by SELECT ROOT.*, then any insertion
	// of a ROOT's descendant node will cause delegate objects to be
	// inserted into the view."
	s := store.NewDefault()
	workload.PersonDB(s)
	mv, g := newGeneral(t, s, "ALL", "SELECT ROOT.* X WHERE X.name = 'John'")
	before := s.Seq()
	// Attach a new person subtree deep under P2.
	s.MustPut(oem.NewAtom("N9", "name", oem.String_("John")))
	s.MustPut(oem.NewSet("P9", "assistant", "N9"))
	if err := s.Insert("P2", "P9"); err != nil {
		t.Fatal(err)
	}
	feed(t, s, g, before)
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"P1", "P3", "P9"}) {
		t.Fatalf("after deep insert = %v", got)
	}
}

func TestGeneralMultiSelectAndConjunction(t *testing.T) {
	s := store.NewDefault()
	workload.PersonDB(s)
	mv, g := newGeneral(t, s, "MX",
		"SELECT ROOT.professor X, ROOT.secretary X WHERE X.age >= 40 AND X.name != 'Nobody'")
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"P1", "P4"}) {
		t.Fatalf("initial = %v", got)
	}
	before := s.Seq()
	if err := s.Modify("A4", oem.Int(20)); err != nil { // Tom too young now
		t.Fatal(err)
	}
	feed(t, s, g, before)
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"P1"}) {
		t.Fatalf("after modify = %v", got)
	}
}

func TestGeneralDisjunction(t *testing.T) {
	s := store.NewDefault()
	workload.PersonDB(s)
	mv, g := newGeneral(t, s, "MO",
		"SELECT ROOT.? X WHERE X.name = 'Sally' OR X.age = 20")
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"P2", "P3"}) {
		t.Fatalf("initial = %v", got)
	}
	before := s.Seq()
	if err := s.Modify("A3", oem.Int(21)); err != nil {
		t.Fatal(err)
	}
	feed(t, s, g, before)
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"P2"}) {
		t.Fatalf("after modify = %v", got)
	}
}

func TestGeneralDAGBase(t *testing.T) {
	// Figure 1's DAG: F has two parents (D and E). A view selecting "any
	// depth" objects must handle membership via multiple derivations.
	s := store.NewDefault()
	workload.FigureOneDB(s)
	mv, g := newGeneral(t, s, "VF", "SELECT A.* X WHERE X.*.g >= 0")
	// Every interior node reaches G (g=7): A itself plus B,C,D,E,F.
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"A", "B", "C", "D", "E", "F"}) {
		t.Fatalf("initial = %v", got)
	}
	// Cut D->F: F keeps membership through E.
	before := s.Seq()
	if err := s.Delete("D", "F"); err != nil {
		t.Fatal(err)
	}
	feed(t, s, g, before)
	got := members(t, mv)
	if !oem.SameMembers(got, []oem.OID{"A", "B", "C", "E", "F"}) {
		t.Fatalf("after cutting D->F = %v", got)
	}
	// Cut E->F too: F is unreachable from A now.
	before = s.Seq()
	if err := s.Delete("E", "F"); err != nil {
		t.Fatal(err)
	}
	feed(t, s, g, before)
	got = members(t, mv)
	if !oem.SameMembers(got, []oem.OID{"A", "B", "C"}) {
		t.Fatalf("after cutting E->F = %v", got)
	}
}

func TestGeneralRequiresParentIndex(t *testing.T) {
	opts := store.DefaultOptions()
	opts.ParentIndex = false
	s := store.New(opts)
	workload.PersonDB(s)
	mv, err := Materialize("V", query.MustParse("SELECT ROOT.* X"), s, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewGeneralMaintainer(mv); err == nil {
		t.Fatal("general maintainer accepted an index-free store")
	}
}

func TestGeneralWithinScope(t *testing.T) {
	s := store.NewDefault()
	workload.PersonDB(s)
	mv, g := newGeneral(t, s, "VW", "SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON")
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"P1", "P3"}) {
		t.Fatalf("initial = %v", got)
	}
	// An object outside PERSON is invisible to the view even when linked.
	before := s.Seq()
	s.MustPut(oem.NewAtom("NX", "name", oem.String_("John")))
	s.MustPut(oem.NewSet("PX", "visitor", "NX"))
	if err := s.Insert("ROOT", "PX"); err != nil {
		t.Fatal(err)
	}
	feed(t, s, g, before)
	if got := members(t, mv); !oem.SameMembers(got, []oem.OID{"P1", "P3"}) {
		t.Fatalf("outside-scope insert changed view: %v", got)
	}
}

// TestPropertyGeneralEqualsRecompute drives random update streams through
// the general maintainer on wildcard views and checks against
// recomputation — the analogue of the Algorithm 1 property test for the
// Section 6 extensions.
func TestPropertyGeneralEqualsRecompute(t *testing.T) {
	views := []string{
		"SELECT REL.* X WHERE X.age > 30",
		"SELECT REL.?.tuple X WHERE X.age > 30 OR X.age < 10",
		"SELECT REL.r0.tuple X, REL.r1.tuple X WHERE X.age >= 20 AND X.age <= 70",
	}
	for seed := int64(0); seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			base := store.NewDefault()
			db := workload.RelationLike(base, workload.RelationConfig{
				Relations: 2, TuplesPerRelation: 4, FieldsPerTuple: 2, Seed: seed,
			})
			var mvs []*MaterializedView
			var gs []*GeneralMaintainer
			for i, vq := range views {
				mv, g := newGeneral(t, base, oem.OID(fmt.Sprintf("G%d", i)), vq)
				mvs = append(mvs, mv)
				gs = append(gs, g)
			}
			var sets, atoms []oem.OID
			for _, r := range db.Relations {
				sets = append(sets, r.OID)
				sets = append(sets, r.Tuples...)
				for _, tu := range r.Tuples {
					kids, _ := base.Children(tu)
					atoms = append(atoms, kids...)
				}
			}
			stream := workload.NewStream(base, workload.StreamConfig{
				Seed: seed*7 + 1, Mix: workload.Mix{Insert: 3, Delete: 2, Modify: 5}, ValueRange: 80,
			}, sets, atoms)
			for step := 0; step < 60; step++ {
				before := base.Seq()
				if _, ok := stream.Next(); !ok {
					break
				}
				for _, g := range gs {
					feed(t, base, g, before)
				}
				if step%6 == 0 || step == 59 {
					for _, mv := range mvs {
						checkConsistent(t, mv)
					}
				}
			}
			for _, mv := range mvs {
				checkConsistent(t, mv)
			}
		})
	}
}
