package core

import (
	"fmt"

	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
)

// MaterializedView is a stored copy of the objects in a view (Section 3.2):
// a view object <MV, mview, set, {delegates}> plus one delegate per base
// object, held in ViewStore. ViewStore may be the base store itself
// (centralized, Section 4) or a separate store (a warehouse, Section 5).
type MaterializedView struct {
	// OID is the view object's OID; the view name doubles as its OID, as
	// in the paper's examples (MVJ, YP, SEL).
	OID oem.OID
	// Query is the view definition query, evaluated against Base.
	Query *query.Query
	// Base is the store holding the base objects.
	Base store.Reader
	// ViewStore is the store holding the view object and delegates.
	ViewStore *store.Store
	// Swizzled records whether edges are currently swizzled: base OIDs in
	// delegate values replaced by delegate OIDs where one exists.
	Swizzled bool
}

// ViewLabel is the label of materialized view objects.
const ViewLabel = "mview"

// Materialize evaluates the definition query against base and builds the
// materialized view in viewStore. The two stores may be the same. It fails
// if an object with the view OID already exists in viewStore.
func Materialize(oid oem.OID, q *query.Query, base store.Reader, viewStore *store.Store) (*MaterializedView, error) {
	mv := &MaterializedView{OID: oid, Query: q, Base: base, ViewStore: viewStore}
	members, err := query.NewEvaluator(base).Eval(q)
	if err != nil {
		return nil, fmt.Errorf("core: materialize %s: %w", oid, err)
	}
	viewObj := oem.NewSet(oid, ViewLabel)
	for _, b := range members {
		viewObj.Add(DelegateOID(oid, b))
	}
	if err := viewStore.Put(viewObj); err != nil {
		return nil, err
	}
	for _, b := range members {
		if err := mv.createDelegate(b); err != nil {
			return nil, err
		}
	}
	return mv, nil
}

// createDelegate copies base object b into the view store under its
// delegate OID. The copied value is unswizzled: set values keep base OIDs
// (Section 4.3's assumption).
func (mv *MaterializedView) createDelegate(b oem.OID) error {
	o, err := mv.Base.Get(b)
	if err != nil {
		return fmt.Errorf("core: delegate source %s: %w", b, err)
	}
	d := o.Clone()
	d.OID = DelegateOID(mv.OID, b)
	if mv.ViewStore.Has(d.OID) {
		return mv.setDelegate(d)
	}
	return mv.ViewStore.Put(d)
}

// setDelegate overwrites an existing delegate's value in place through the
// store's update interface, so the view store's log stays accurate.
func (mv *MaterializedView) setDelegate(d *oem.Object) error {
	if d.IsAtomic() {
		return mv.ViewStore.Modify(d.OID, d.Atom)
	}
	return mv.ViewStore.SetValue(d.OID, d.Set)
}

// RefreshDelegateFrom overwrites the delegate of base object o with o's
// current label-preserving value. The warehouse uses it when a report
// withholds values (Level 1) and the fresh object had to be fetched.
func (mv *MaterializedView) RefreshDelegateFrom(o *oem.Object) error {
	d := o.Clone()
	d.OID = DelegateOID(mv.OID, o.OID)
	if !mv.ViewStore.Has(d.OID) {
		return nil
	}
	return mv.setDelegate(d)
}

// Members returns the base OIDs currently in the view, sorted.
func (mv *MaterializedView) Members() ([]oem.OID, error) {
	vo, err := mv.ViewStore.Get(mv.OID)
	if err != nil {
		return nil, err
	}
	out := make([]oem.OID, 0, len(vo.Set))
	for _, d := range vo.Set {
		_, base, ok := SplitDelegateOID(d)
		if !ok {
			return nil, fmt.Errorf("core: malformed delegate OID %s in view %s", d, mv.OID)
		}
		out = append(out, base)
	}
	return oem.SortOIDs(out), nil
}

// MembersAt returns the view's membership as read from rd — a pinned
// snapshot of the view store. Centralized registries materialize views
// into the base store itself, so a base-store snapshot covers the view
// object and answers membership at that exact version while maintenance
// runs on.
func (mv *MaterializedView) MembersAt(rd store.Reader) ([]oem.OID, error) {
	vo, err := rd.Get(mv.OID)
	if err != nil {
		return nil, err
	}
	out := make([]oem.OID, 0, len(vo.Set))
	for _, d := range vo.Set {
		_, base, ok := SplitDelegateOID(d)
		if !ok {
			return nil, fmt.Errorf("core: malformed delegate OID %s in view %s", d, mv.OID)
		}
		out = append(out, base)
	}
	return oem.SortOIDs(out), nil
}

// Contains reports whether base object b has a delegate in the view.
// With the view store's parent index this is O(1) — no clone of the view
// object — so it is cheap enough for the screening index's per-update
// membership probe.
func (mv *MaterializedView) Contains(b oem.OID) bool {
	return mv.ViewStore.HasChild(mv.OID, DelegateOID(mv.OID, b))
}

// Delegate returns the delegate object of base object b.
func (mv *MaterializedView) Delegate(b oem.OID) (*oem.Object, error) {
	return mv.ViewStore.Get(DelegateOID(mv.OID, b))
}

// Swizzle rewrites every delegate's set value, replacing each base OID b
// with the delegate OID MV.b when MV.b is in the view (Section 3.2).
// Swizzling must not affect query results; it trades this rewrite pass for
// cheaper WITHIN-view query evaluation and local access.
func (mv *MaterializedView) Swizzle() error {
	if mv.Swizzled {
		return nil
	}
	if err := mv.mapEdges(func(b oem.OID) (oem.OID, bool) {
		d := DelegateOID(mv.OID, b)
		if mv.ViewStore.Has(d) {
			return d, true
		}
		return b, false
	}); err != nil {
		return err
	}
	mv.Swizzled = true
	return nil
}

// Unswizzle restores base OIDs in delegate values.
func (mv *MaterializedView) Unswizzle() error {
	if !mv.Swizzled {
		return nil
	}
	if err := mv.mapEdges(func(m oem.OID) (oem.OID, bool) {
		view, base, ok := SplitDelegateOID(m)
		if ok && view == mv.OID {
			return base, true
		}
		return m, false
	}); err != nil {
		return err
	}
	mv.Swizzled = false
	return nil
}

// mapEdges applies f to every member OID of every set delegate.
func (mv *MaterializedView) mapEdges(f func(oem.OID) (oem.OID, bool)) error {
	vo, err := mv.ViewStore.Get(mv.OID)
	if err != nil {
		return err
	}
	for _, doid := range vo.Set {
		d, err := mv.ViewStore.Get(doid)
		if err != nil || !d.IsSet() {
			continue
		}
		changed := false
		mapped := make([]oem.OID, 0, len(d.Set))
		for _, m := range d.Set {
			nm, ch := f(m)
			mapped = append(mapped, nm)
			changed = changed || ch
		}
		if changed {
			if err := mv.ViewStore.SetValue(doid, mapped); err != nil {
				return err
			}
		}
	}
	return nil
}

// StripBaseOIDs removes every remaining base OID from delegate values —
// the paper's "manual modification" example that turns a swizzled view
// into a closed world: later queries on the view can only reach view
// objects. After stripping, the view can no longer be unswizzled or
// maintained precisely; it is a snapshot.
func (mv *MaterializedView) StripBaseOIDs() error {
	return mv.FilterEdges(func(m oem.OID) bool {
		view, _, ok := SplitDelegateOID(m)
		return ok && view == mv.OID
	})
}

// FilterEdges drops member OIDs of set delegates for which keep is false.
// StripBaseOIDs is FilterEdges(keep delegates only).
func (mv *MaterializedView) FilterEdges(keep func(oem.OID) bool) error {
	vo, err := mv.ViewStore.Get(mv.OID)
	if err != nil {
		return err
	}
	for _, doid := range vo.Set {
		d, err := mv.ViewStore.Get(doid)
		if err != nil || !d.IsSet() {
			continue
		}
		kept := make([]oem.OID, 0, len(d.Set))
		for _, m := range d.Set {
			if keep(m) {
				kept = append(kept, m)
			}
		}
		if len(kept) != len(d.Set) {
			if err := mv.ViewStore.SetValue(doid, kept); err != nil {
				return err
			}
		}
	}
	return nil
}

// AddTimestamps attaches a "ts" atomic subobject with the given clock value
// to every set delegate that lacks one — the paper's auxiliary-information
// example of legitimate view modification. The timestamp objects live only
// in the view store.
func (mv *MaterializedView) AddTimestamps(clock int64) error {
	vo, err := mv.ViewStore.Get(mv.OID)
	if err != nil {
		return err
	}
	for _, doid := range vo.Set {
		d, err := mv.ViewStore.Get(doid)
		if err != nil || !d.IsSet() {
			continue
		}
		tsOID := oem.OID(string(doid) + ".ts")
		if mv.ViewStore.Has(tsOID) {
			continue
		}
		if err := mv.ViewStore.Put(oem.NewAtom(tsOID, "ts", oem.Int(clock))); err != nil {
			return err
		}
		if err := mv.ViewStore.Insert(doid, tsOID); err != nil {
			return err
		}
	}
	return nil
}

// Recompute rebuilds the view from the current base state: it re-evaluates
// the definition query, then reconciles delegates — creating missing ones,
// refreshing stale values, and dropping delegates of departed members. It
// is the paper's "recomputing the entire view" baseline (Section 4.4) and
// the correctness oracle of the property tests. Swizzling is reapplied
// when the view was swizzled.
func (mv *MaterializedView) Recompute() error {
	members, err := query.NewEvaluator(mv.Base).Eval(mv.Query)
	if err != nil {
		return err
	}
	want := make(map[oem.OID]bool, len(members))
	for _, b := range members {
		want[b] = true
	}
	cur, err := mv.Members()
	if err != nil {
		return err
	}
	curSet := make(map[oem.OID]bool, len(cur))
	for _, b := range cur {
		curSet[b] = true
	}
	// Drop departed members.
	for _, b := range cur {
		if !want[b] {
			d := DelegateOID(mv.OID, b)
			if err := mv.ViewStore.Delete(mv.OID, d); err != nil {
				return err
			}
			if err := mv.ViewStore.Remove(d); err != nil {
				return err
			}
		}
	}
	// Create or refresh current members (refresh keeps delegate values in
	// sync with base values, which a full recompute must guarantee).
	for _, b := range members {
		if err := mv.createDelegate(b); err != nil {
			return err
		}
		if !curSet[b] {
			if err := mv.ViewStore.Insert(mv.OID, DelegateOID(mv.OID, b)); err != nil {
				return err
			}
		}
	}
	if mv.Swizzled {
		mv.Swizzled = false
		if err := mv.Swizzle(); err != nil {
			return err
		}
	}
	return nil
}

// QueryView evaluates q against the view store. For unswizzled views it
// installs a delegate-resolution hook: when a traversal inside the view
// reaches a base OID b whose delegate MV.b exists, the traversal continues
// at the delegate — the paper's "check if the delegate for P3 is in MVJ"
// step. Swizzled views need no hook, which is exactly the performance
// argument for swizzling (experiment E6).
func (mv *MaterializedView) QueryView(q *query.Query) ([]oem.OID, error) {
	ev := query.NewEvaluator(mv.ViewStore)
	if !mv.Swizzled {
		ev.Resolve = func(b oem.OID) oem.OID {
			d := DelegateOID(mv.OID, b)
			if mv.ViewStore.Has(d) {
				return d
			}
			return b
		}
	}
	return ev.Eval(q)
}
