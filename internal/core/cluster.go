package core

import (
	"fmt"

	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
)

// Cluster implements the paper's view clusters (Section 3.2): when a site
// defines several materialized views whose contents overlap, a cluster
// makes all of them share a single delegate per base object instead of one
// delegate per (view, object) pair. Delegate OIDs use the *cluster* OID
// (CL.P1); each member view object lists the shared delegates for its own
// members, and a reference count per base object governs delegate
// lifetime.
type Cluster struct {
	// OID is the cluster identifier used in shared delegate OIDs.
	OID oem.OID
	// ViewStore holds the member view objects and the shared delegates.
	ViewStore *store.Store
	// Base is the base store in the centralized arrangement; nil when the
	// cluster was built with NewClusterWith over remote access.
	Base *store.Store
	// Observer, when non-nil, receives the membership deltas each member
	// view's Apply actually performed, keyed by the member view's OID.
	Observer DeltaObserver

	// evaluate answers a view-definition query over the base data and
	// fetch retrieves one base object; access backs the member views'
	// Algorithm 1 maintainers. In the centralized case all three read the
	// base store directly; a warehouse supplies query-back
	// implementations (Section 3.2 motivates clusters for remote sites).
	evaluate func(q *query.Query) ([]oem.OID, error)
	fetch    func(oem.OID) (*oem.Object, error)
	access   BaseAccess

	views map[oem.OID]*clusterView
	refs  map[oem.OID]int // base OID -> number of member views containing it
}

type clusterView struct {
	oid oem.OID
	q   *query.Query
	m   Maintainer
}

// NewCluster returns an empty centralized cluster over base.
func NewCluster(oid oem.OID, base, viewStore *store.Store) *Cluster {
	c := NewClusterWith(oid, viewStore, ClusterBackend{
		Evaluate: func(q *query.Query) ([]oem.OID, error) {
			return query.NewEvaluator(base).Eval(q)
		},
		Fetch:  base.Get,
		Access: NewCentralAccess(base),
	})
	c.Base = base
	return c
}

// ClusterBackend supplies the base-data operations a cluster needs,
// decoupled from where the base lives.
type ClusterBackend struct {
	// Evaluate answers a view-definition query.
	Evaluate func(q *query.Query) ([]oem.OID, error)
	// Fetch retrieves one base object for delegate creation.
	Fetch func(oem.OID) (*oem.Object, error)
	// Access backs Algorithm 1's helper functions.
	Access BaseAccess
}

// NewClusterWith returns an empty cluster over an arbitrary backend —
// the warehouse uses it with query-back implementations.
func NewClusterWith(oid oem.OID, viewStore *store.Store, b ClusterBackend) *Cluster {
	return &Cluster{
		OID:       oid,
		ViewStore: viewStore,
		evaluate:  b.Evaluate,
		fetch:     b.Fetch,
		access:    b.Access,
		views:     make(map[oem.OID]*clusterView),
		refs:      make(map[oem.OID]int),
	}
}

// sharedDelegateOID is DelegateOID with the cluster OID.
func (c *Cluster) sharedDelegateOID(base oem.OID) oem.OID { return DelegateOID(c.OID, base) }

// AddView defines and materializes a member view. Its view object lists
// shared (cluster-scoped) delegate OIDs. Only simple views are supported:
// cluster members are maintained with Algorithm 1.
func (c *Cluster) AddView(name oem.OID, q *query.Query) error {
	if _, ok := c.views[name]; ok {
		return fmt.Errorf("core: cluster %s already has view %s", c.OID, name)
	}
	def, ok := Simplify(q)
	if !ok {
		return fmt.Errorf("%w: cluster view %s", ErrNotSimple, name)
	}
	members, err := c.evaluate(q)
	if err != nil {
		return err
	}
	vo := oem.NewSet(name, ViewLabel)
	for _, b := range members {
		vo.Add(c.sharedDelegateOID(b))
	}
	if err := c.ViewStore.Put(vo); err != nil {
		return err
	}
	for _, b := range members {
		if err := c.retain(b); err != nil {
			return err
		}
	}
	cv := &clusterView{oid: name, q: q}
	sm := &SimpleMaintainer{Def: def, Access: c.access}
	cv.m = &clusterMaintainer{c: c, view: name, inner: sm}
	c.views[name] = cv
	return nil
}

// retain bumps the reference count of a base object's shared delegate,
// creating the delegate on the 0→1 transition.
func (c *Cluster) retain(b oem.OID) error {
	c.refs[b]++
	if c.refs[b] > 1 {
		return nil
	}
	o, err := c.fetch(b)
	if err != nil {
		return err
	}
	d := o.Clone()
	d.OID = c.sharedDelegateOID(b)
	if c.ViewStore.Has(d.OID) {
		return nil
	}
	return c.ViewStore.Put(d)
}

// release drops one reference, removing the delegate on the 1→0
// transition.
func (c *Cluster) release(b oem.OID) error {
	if c.refs[b] == 0 {
		return nil
	}
	c.refs[b]--
	if c.refs[b] > 0 {
		return nil
	}
	delete(c.refs, b)
	d := c.sharedDelegateOID(b)
	if c.ViewStore.Has(d) {
		return c.ViewStore.Remove(d)
	}
	return nil
}

// Members returns the base OIDs currently in a member view.
func (c *Cluster) Members(view oem.OID) ([]oem.OID, error) {
	vo, err := c.ViewStore.Get(view)
	if err != nil {
		return nil, err
	}
	out := make([]oem.OID, 0, len(vo.Set))
	for _, d := range vo.Set {
		_, b, ok := SplitDelegateOID(d)
		if !ok {
			return nil, fmt.Errorf("core: malformed shared delegate %s", d)
		}
		out = append(out, b)
	}
	return oem.SortOIDs(out), nil
}

// Delegate returns the shared delegate for a base object.
func (c *Cluster) Delegate(b oem.OID) (*oem.Object, error) {
	return c.ViewStore.Get(c.sharedDelegateOID(b))
}

// ContainsMember reports whether base object b is currently a member of
// the named member view.
func (c *Cluster) ContainsMember(view, b oem.OID) bool {
	vo, err := c.ViewStore.Get(view)
	if err != nil {
		return false
	}
	return vo.Contains(c.sharedDelegateOID(b))
}

// DelegateCount returns the number of live shared delegates — the space
// the cluster actually uses, compared against one-delegate-per-view.
func (c *Cluster) DelegateCount() int { return len(c.refs) }

// Apply routes a base update to every member view's maintainer.
func (c *Cluster) Apply(u store.Update) error {
	for _, b := range oem.SortOIDs(c.viewOIDs()) {
		if err := c.views[b].m.Apply(u); err != nil {
			return err
		}
	}
	return nil
}

// RefreshDelegateFrom overwrites the shared delegate of base object o
// with o's current value, if a delegate exists. Warehouse Level-1 modify
// handling uses it after fetching the object (reports withhold values).
func (c *Cluster) RefreshDelegateFrom(o *oem.Object) error {
	d := c.sharedDelegateOID(o.OID)
	if !c.ViewStore.Has(d) {
		return nil
	}
	if o.IsAtomic() {
		return c.ViewStore.Modify(d, o.Atom)
	}
	return c.ViewStore.SetValue(d, o.Set)
}

// ViewNames returns the member view OIDs, sorted.
func (c *Cluster) ViewNames() []oem.OID { return oem.SortOIDs(c.viewOIDs()) }

// ViewDef returns the simple definition of a member view.
func (c *Cluster) ViewDef(name oem.OID) (SimpleDef, bool) {
	cv, ok := c.views[name]
	if !ok {
		return SimpleDef{}, false
	}
	return Simplify(cv.q)
}

// VInsert exposes the cluster-aware V_insert for one member view, for
// protocols that derive membership externally (the warehouse's Level-1
// modify recheck).
func (c *Cluster) VInsert(view, y oem.OID) error {
	cv, ok := c.views[view]
	if !ok {
		return fmt.Errorf("core: cluster %s has no view %s", c.OID, view)
	}
	_, err := cv.m.(*clusterMaintainer).vInsert(y)
	return err
}

// VDelete exposes the cluster-aware V_delete; see VInsert.
func (c *Cluster) VDelete(view, y oem.OID) error {
	cv, ok := c.views[view]
	if !ok {
		return fmt.Errorf("core: cluster %s has no view %s", c.OID, view)
	}
	_, err := cv.m.(*clusterMaintainer).vDelete(y)
	return err
}

func (c *Cluster) viewOIDs() []oem.OID {
	out := make([]oem.OID, 0, len(c.views))
	for oid := range c.views {
		out = append(out, oid)
	}
	return out
}

// clusterMaintainer adapts Algorithm 1 to shared delegates: membership
// decisions come from the inner SimpleMaintainer's ComputeDeltas, but
// V_insert and V_delete manipulate the shared pool with reference
// counting.
type clusterMaintainer struct {
	c     *Cluster
	view  oem.OID
	inner *SimpleMaintainer
}

// Apply implements Maintainer for a cluster member.
func (cm *clusterMaintainer) Apply(u store.Update) error {
	d, err := cm.inner.ComputeDeltas(u)
	if err != nil {
		return err
	}
	var applied Deltas
	for _, y := range d.Insert {
		changed, err := cm.vInsert(y)
		if err != nil {
			return err
		}
		if changed {
			applied.Insert = append(applied.Insert, y)
		}
	}
	for _, y := range d.Delete {
		changed, err := cm.vDelete(y)
		if err != nil {
			return err
		}
		if changed {
			applied.Delete = append(applied.Delete, y)
		}
	}
	if err := cm.refresh(u); err != nil {
		return err
	}
	if cm.c.Observer != nil {
		cm.c.Observer(cm.view, u, applied)
	}
	return nil
}

func (cm *clusterMaintainer) vInsert(y oem.OID) (bool, error) {
	vo, err := cm.c.ViewStore.Get(cm.view)
	if err != nil {
		return false, err
	}
	d := cm.c.sharedDelegateOID(y)
	if vo.Contains(d) {
		return false, nil
	}
	if err := cm.c.retain(y); err != nil {
		return false, err
	}
	return true, cm.c.ViewStore.Insert(cm.view, d)
}

func (cm *clusterMaintainer) vDelete(y oem.OID) (bool, error) {
	vo, err := cm.c.ViewStore.Get(cm.view)
	if err != nil {
		return false, err
	}
	d := cm.c.sharedDelegateOID(y)
	if !vo.Contains(d) {
		return false, nil
	}
	if err := cm.c.ViewStore.Delete(cm.view, d); err != nil {
		return false, err
	}
	return true, cm.c.release(y)
}

// refresh keeps the shared delegate value synchronized, once per cluster
// (the first member view to process the update does the work; subsequent
// refreshes are no-ops because the value already matches).
func (cm *clusterMaintainer) refresh(u store.Update) error {
	d := cm.c.sharedDelegateOID(u.N1)
	if !cm.c.ViewStore.Has(d) {
		return nil
	}
	switch u.Kind {
	case store.UpdateInsert:
		obj, err := cm.c.ViewStore.Get(d)
		if err != nil {
			return err
		}
		if obj.Contains(u.N2) {
			return nil
		}
		return cm.c.ViewStore.Insert(d, u.N2)
	case store.UpdateDelete:
		obj, err := cm.c.ViewStore.Get(d)
		if err != nil {
			return err
		}
		if !obj.Contains(u.N2) {
			return nil
		}
		return cm.c.ViewStore.Delete(d, u.N2)
	case store.UpdateModify:
		obj, err := cm.c.ViewStore.Get(d)
		if err != nil {
			return err
		}
		if obj.IsAtomic() && !obj.Atom.Equal(u.New) {
			return cm.c.ViewStore.Modify(d, u.New)
		}
		return nil
	default:
		return nil
	}
}
