package core

import "errors"

// Sentinel errors for the registry and maintainer layer. Callers match
// them with errors.Is rather than string comparison; every error the
// package returns for these conditions wraps one of them with context
// (the view name, the triggering statement, and so on).
var (
	// ErrViewNotFound reports an operation on a view name that is not
	// registered.
	ErrViewNotFound = errors.New("core: view not found")

	// ErrViewExists reports a Define for a name that is already taken.
	ErrViewExists = errors.New("core: view already defined")

	// ErrNotSimple reports that a view definition falls outside the
	// paper's simple-view class (constant sel_path/cond_path, single
	// select, comparison condition) and therefore cannot use Algorithm 1
	// or the DAG variant; use the general maintainer instead.
	ErrNotSimple = errors.New("core: not a simple view")
)
