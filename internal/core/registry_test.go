package core

import (
	"testing"

	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/workload"
)

func newRegistry(t testing.TB) (*store.Store, *Registry) {
	t.Helper()
	s := store.NewDefault()
	workload.PersonDB(s)
	return s, NewRegistry(s)
}

func TestRegistryDefineVirtual(t *testing.T) {
	s, r := newRegistry(t)
	v, err := r.Define("define view VJ as: SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON")
	if err != nil {
		t.Fatal(err)
	}
	if v.Materialized != nil {
		t.Fatal("virtual view got materialized")
	}
	got, err := r.Evaluate("VJ")
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(got, []oem.OID{"P1", "P3"}) {
		t.Fatalf("VJ = %v", got)
	}
	// The view object exists and is usable as a query entry point
	// (expression 3.3: ANS INT VJ).
	ans, err := query.NewEvaluator(s).Eval(query.MustParse("SELECT ROOT.professor X ANS INT VJ"))
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(ans, []oem.OID{"P1"}) {
		t.Fatalf("ANS INT VJ answer = %v, want [P1]", ans)
	}
}

func TestRegistryVirtualViewRefreshesOnEvaluate(t *testing.T) {
	s, r := newRegistry(t)
	if _, err := r.Define("define view VJ as: SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON"); err != nil {
		t.Fatal(err)
	}
	if err := s.Modify("N3", oem.String_("Jane")); err != nil {
		t.Fatal(err)
	}
	got, err := r.Evaluate("VJ")
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(got, []oem.OID{"P1"}) {
		t.Fatalf("refreshed VJ = %v, want [P1]", got)
	}
}

func TestRegistryDefineMaterializedAuto(t *testing.T) {
	_, r := newRegistry(t)
	v, err := r.Define("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45")
	if err != nil {
		t.Fatal(err)
	}
	if v.Materialized == nil || v.Maintainer == nil {
		t.Fatal("mview not materialized")
	}
	if v.Strategy != StrategySimple {
		t.Fatalf("strategy = %v, want simple for a simple view", v.Strategy)
	}
	// Wildcard views route to the general maintainer automatically.
	v2, err := r.Define("define mview MVJ as: SELECT ROOT.* X WHERE X.name = 'John'")
	if err != nil {
		t.Fatal(err)
	}
	if v2.Strategy != StrategyGeneral {
		t.Fatalf("strategy = %v, want general for a wildcard view", v2.Strategy)
	}
}

func TestRegistryDuplicateName(t *testing.T) {
	_, r := newRegistry(t)
	if _, err := r.Define("define view V as: SELECT ROOT.professor X"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Define("define view V as: SELECT ROOT.secretary X"); err == nil {
		t.Fatal("duplicate view name accepted")
	}
}

func TestRegistryApplyMaintainsAllViews(t *testing.T) {
	s, r := newRegistry(t)
	if _, err := r.Define("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Define("define mview OLD as: SELECT ROOT.professor X WHERE X.age > 45"); err != nil {
		t.Fatal(err)
	}
	before := s.Seq()
	if err := s.Modify("A1", oem.Int(50)); err != nil {
		t.Fatal(err)
	}
	if err := r.ApplyAll(s.LogSince(before)); err != nil {
		t.Fatal(err)
	}
	yp, _ := r.Evaluate("YP")
	old, _ := r.Evaluate("OLD")
	if len(yp) != 0 || !oem.SameMembers(old, []oem.OID{"P1"}) {
		t.Fatalf("YP=%v OLD=%v", yp, old)
	}
}

func TestRegistryWatchDrain(t *testing.T) {
	s, r := newRegistry(t)
	if _, err := r.Define("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45"); err != nil {
		t.Fatal(err)
	}
	var errs []error
	r.Watch(func(err error) { errs = append(errs, err) })
	s.MustPut(oem.NewAtom("A2", "age", oem.Int(40)))
	if err := s.Insert("P2", "A2"); err != nil {
		t.Fatal(err)
	}
	r.Drain()
	if len(errs) != 0 {
		t.Fatalf("maintenance errors: %v", errs)
	}
	got, _ := r.Evaluate("YP")
	if !oem.SameMembers(got, []oem.OID{"P1", "P2"}) {
		t.Fatalf("YP after watch = %v", got)
	}
	// A second drain with nothing pending is a no-op.
	r.Drain()
}

func TestRegistryDrop(t *testing.T) {
	s, r := newRegistry(t)
	if _, err := r.Define("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45"); err != nil {
		t.Fatal(err)
	}
	if err := r.Drop("YP"); err != nil {
		t.Fatal(err)
	}
	if s.Has("YP") || s.Has("YP.P1") {
		t.Fatal("dropped view left objects behind")
	}
	if err := r.Drop("YP"); err == nil {
		t.Fatal("double drop succeeded")
	}
	// The name is reusable.
	if _, err := r.Define("define view YP as: SELECT ROOT.secretary X"); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryStrategyRecompute(t *testing.T) {
	s, r := newRegistry(t)
	vs := query.MustParseView("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45")
	v, err := r.DefineParsed(vs, StrategyRecompute)
	if err != nil {
		t.Fatal(err)
	}
	if v.Strategy != StrategyRecompute {
		t.Fatalf("strategy = %v", v.Strategy)
	}
	before := s.Seq()
	if err := s.Modify("A1", oem.Int(50)); err != nil {
		t.Fatal(err)
	}
	if err := r.ApplyAll(s.LogSince(before)); err != nil {
		t.Fatal(err)
	}
	got, _ := r.Evaluate("YP")
	if len(got) != 0 {
		t.Fatalf("recompute strategy YP = %v", got)
	}
}

func TestRegistryNamesAndGet(t *testing.T) {
	_, r := newRegistry(t)
	for _, stmt := range []string{
		"define view B as: SELECT ROOT.professor X",
		"define view A as: SELECT ROOT.secretary X",
	} {
		if _, err := r.Define(stmt); err != nil {
			t.Fatal(err)
		}
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Fatalf("Names = %v", names)
	}
	if _, ok := r.Get("A"); !ok {
		t.Fatal("Get(A) missing")
	}
	if _, ok := r.Get("Z"); ok {
		t.Fatal("Get(Z) found")
	}
	if _, err := r.Evaluate("Z"); err == nil {
		t.Fatal("Evaluate(Z) succeeded")
	}
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{
		StrategyAuto: "auto", StrategySimple: "simple",
		StrategyGeneral: "general", StrategyRecompute: "recompute",
	} {
		if s.String() != want {
			t.Errorf("String(%d) = %q", int(s), s.String())
		}
	}
}

func TestIsViewObject(t *testing.T) {
	_, r := newRegistry(t)
	if _, err := r.Define("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45"); err != nil {
		t.Fatal(err)
	}
	if !r.IsViewObject("YP") || !r.IsViewObject("YP.P1") {
		t.Fatal("view objects not recognized")
	}
	if r.IsViewObject("P1") || r.IsViewObject("OTHER.P1") {
		t.Fatal("base objects misclassified")
	}
}
