package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// MetricsHandler serves every given registry in the Prometheus text
// exposition format.
func MetricsHandler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, r := range regs {
			if r != nil {
				_ = r.WritePrometheus(w)
			}
		}
	})
}

// DebugMux builds the standard introspection mux served by gsdbserve
// -debugaddr: /metrics (Prometheus text format), /debug/vars (expvar,
// including anything the registries published there), and the
// net/http/pprof handlers under /debug/pprof/.
func DebugMux(regs ...*Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(regs...))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// HealthHandlers adds /healthz and /readyz to mux
// (docs/OBSERVABILITY.md, "Health endpoints"): /healthz answers 200 as
// long as the process serves HTTP (liveness), /readyz answers 200 when
// ready() returns nil and 503 with the error text otherwise (readiness
// — warehouses gate it on view staleness, replicas on lag bounds). A
// nil ready means always ready.
func HealthHandlers(mux *http.ServeMux, ready func() error) {
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ready != nil {
			if err := ready(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				_, _ = w.Write([]byte("not ready: " + err.Error() + "\n"))
				return
			}
		}
		_, _ = w.Write([]byte("ready\n"))
	})
}
