// Package obs is the repository's observability substrate: a
// dependency-free metrics layer (atomic counters, gauges and fixed-bucket
// latency histograms in a named registry with cheap label support) plus
// the per-update maintenance trace emitted alongside the changefeed's
// DeltaObserver.
//
// The paper's whole argument is quantitative — Algorithm 1 wins because
// maintenance cost per update (helper-function calls, query backs, cache
// hits) is small versus recomputation (§4–§5.2) — so the instruments here
// are shaped around exactly those quantities. Components own their hot
// counters directly (a Counter embeds one atomic word; incrementing it is
// a single atomic add, no map lookup), and a Registry is the naming and
// exposition layer bolted on top: it snapshots every registered
// instrument into JSON, Prometheus text exposition format, and expvar.
//
// Instrument methods are nil-receiver safe, so optional instrumentation
// costs one branch when disabled.
package obs

import (
	"sort"
	"sync/atomic"
)

// Label is one name dimension attached to a metric, e.g. view=V1.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// sortLabels returns labels sorted by key (copying only when needed) so
// that label order never distinguishes two metrics.
func sortLabels(labels []Label) []Label {
	if sort.SliceIsSorted(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key }) {
		return labels
	}
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use, so counters embed directly in stats structs; all methods
// are safe on a nil receiver.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. The zero value is ready to
// use; all methods are safe on a nil receiver.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
