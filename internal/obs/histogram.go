package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket latency/size histogram. Buckets are chosen
// at construction and never change, so Observe is a binary search plus
// two atomic adds — cheap enough for the maintenance hot path. The
// implicit +Inf bucket catches everything above the last bound.
//
// All methods are safe for concurrent use and on a nil receiver.
type Histogram struct {
	bounds []float64       // sorted upper bounds, +Inf excluded
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits of the running sum
}

// LatencyBuckets are the default bounds for maintenance latencies, in
// seconds: 1µs to ~10s, roughly ×4 per step. Algorithm 1's per-update
// cost sits in the low microseconds centralized and grows with query
// backs at a warehouse, so the range covers both regimes.
var LatencyBuckets = []float64{
	1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 256e-3, 1, 4, 10,
}

// NewHistogram builds a histogram with the given upper bounds (sorted and
// deduplicated; NaNs and a trailing +Inf are dropped — +Inf is implicit).
func NewHistogram(bounds []float64) *Histogram {
	bs := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if !math.IsNaN(b) && !math.IsInf(b, +1) {
			bs = append(bs, b)
		}
	}
	sort.Float64s(bs)
	n := 0
	for i, b := range bs {
		if i == 0 || b != bs[i-1] {
			bs[n] = b
			n++
		}
	}
	bs = bs[:n]
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h != nil {
		h.Observe(time.Since(t0).Seconds())
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Buckets returns the cumulative bucket counts: Buckets()[i] counts
// observations ≤ Bounds()[i]; the final entry is the total (≤ +Inf).
func (h *Histogram) Buckets() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// Bounds returns the configured upper bounds (+Inf excluded).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}
