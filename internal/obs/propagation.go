package obs

import (
	"sync"
	"sync/atomic"
)

// This file is the cross-node half of the observability layer
// (docs/OBSERVABILITY.md, "Propagation tracing"): while Trace records
// what ONE node's maintenance did with an update, a SpanChain records
// WHERE an update's time went on its way from ingestion at the source
// to visibility on a serving node. Every node that handles a stamped
// store.Update (Origin/TraceID set) appends one chain of spans to its
// ChainRing; chains from different nodes joined on TraceID reconstruct
// the full source → WAL → maintain → feed → replica timeline, which is
// what gsdbwatch -trace renders as a waterfall.

// Span is one timed step of an update's propagation on one node.
// Start is the offset from the chain's Origin instant in nanoseconds
// (wall clock, so spans from different nodes on a shared clock line up
// on one axis); Nanos is the step's duration.
type Span struct {
	Node  string `json:"node"`
	View  string `json:"view,omitempty"`
	Stage string `json:"stage"`
	Start int64  `json:"start_nanos"`
	Nanos int64  `json:"nanos"`
}

// SpanChain is one node's record of one stamped update: the trace
// context it arrived with plus the spans this node added. "One
// cross-node span chain per update" is the join of every node's
// SpanChain with the same TraceID.
type SpanChain struct {
	TraceID string `json:"trace_id"`
	Seq     uint64 `json:"seq,omitempty"`
	Kind    string `json:"kind,omitempty"`
	View    string `json:"view,omitempty"`
	// Origin is the ingestion stamp in Unix nanoseconds (store.Update.Origin).
	Origin int64 `json:"origin_nanos"`
	// Node is the node that recorded this chain.
	Node  string `json:"node"`
	Spans []Span `json:"spans,omitempty"`
}

// EndNanos returns the end of the chain's last span as an offset from
// Origin (0 for an empty chain) — the update's visibility latency on
// this node.
func (c SpanChain) EndNanos() int64 {
	var end int64
	for _, s := range c.Spans {
		if e := s.Start + s.Nanos; e > end {
			end = e
		}
	}
	return end
}

// AdvanceWatermark lifts a watermark atomic to stamp, never lowering
// it — concurrent appliers may finish out of origin order.
func AdvanceWatermark(w *atomic.Int64, stamp int64) {
	for {
		cur := w.Load()
		if stamp <= cur || w.CompareAndSwap(cur, stamp) {
			return
		}
	}
}

// ChainRing is a bounded, concurrency-safe buffer of the most recent
// span chains, mirroring TraceRing. The trace wire request snapshots
// it; nil rings mean propagation tracing is off and cost one branch.
type ChainRing struct {
	mu    sync.Mutex
	buf   []SpanChain
	head  int // oldest retained
	count int
	total uint64
}

// NewChainRing returns a ring retaining the last n chains (n < 1 is
// clamped to 1).
func NewChainRing(n int) *ChainRing {
	if n < 1 {
		n = 1
	}
	return &ChainRing{buf: make([]SpanChain, n)}
}

// Add appends one chain, evicting the oldest when full. Nil-safe so an
// absent ring disables recording.
func (r *ChainRing) Add(c SpanChain) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if r.count < len(r.buf) {
		r.buf[(r.head+r.count)%len(r.buf)] = c
		r.count++
		return
	}
	r.buf[r.head] = c
	r.head = (r.head + 1) % len(r.buf)
}

// Snapshot returns the retained chains, oldest first.
func (r *ChainRing) Snapshot() []SpanChain {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanChain, r.count)
	for i := 0; i < r.count; i++ {
		out[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	return out
}

// Total counts all chains ever added, including evicted ones.
func (r *ChainRing) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
