package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestTraceRingEviction(t *testing.T) {
	r := NewTraceRing(3)
	for i := 1; i <= 5; i++ {
		r.Add(Trace{Seq: uint64(i)})
	}
	got := r.Snapshot()
	if len(got) != 3 || got[0].Seq != 3 || got[2].Seq != 5 {
		t.Fatalf("snapshot = %+v", got)
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d", r.Total())
	}
}

func TestTraceRingClampsSize(t *testing.T) {
	r := NewTraceRing(0)
	r.Add(Trace{Seq: 1})
	r.Add(Trace{Seq: 2})
	got := r.Snapshot()
	if len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("snapshot = %+v", got)
	}
}

func TestNilTraceRing(t *testing.T) {
	var r *TraceRing
	if r.Sink() != nil {
		t.Fatal("nil ring produced a sink")
	}
	if r.Snapshot() != nil || r.Total() != 0 {
		t.Fatal("nil ring holds traces")
	}
}

func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Add(Trace{View: fmt.Sprintf("V%d", g), Seq: uint64(i)})
				if i%50 == 0 {
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != 2000 {
		t.Fatalf("total = %d", r.Total())
	}
	if got := r.Snapshot(); len(got) != 64 {
		t.Fatalf("retained %d traces", len(got))
	}
}

func TestTraceJSONSchema(t *testing.T) {
	tr := Trace{
		View: "V1", Source: "s1", Seq: 9, Kind: "insert", Level: 2,
		Outcome: OutcomeQueryBack, QueryBacks: 2,
		Helpers:   HelperCounts{Path: 1, Ancestor: 1, Eval: 1},
		CacheHits: 1, CacheMiss: 1, Inserts: 1,
		Stages:     []Stage{{Name: "screen", Nanos: 100}, {Name: "maintain", Nanos: 900}},
		TotalNanos: 1000,
	}
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Helpers.Total() != 3 || back.Outcome != OutcomeQueryBack || len(back.Stages) != 2 {
		t.Fatalf("round trip = %+v", back)
	}
}
