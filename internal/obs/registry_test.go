package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Buckets() != nil || h.Bounds() != nil {
		t.Fatal("nil histogram observed something")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", L("view", "V1"))
	b := r.Counter("x_total", L("view", "V1"))
	if a != b {
		t.Fatal("same name+labels produced distinct counters")
	}
	if other := r.Counter("x_total", L("view", "V2")); other == a {
		t.Fatal("distinct labels shared a counter")
	}
	// Label order must not matter.
	g1 := r.Gauge("g", L("a", "1"), L("b", "2"))
	g2 := r.Gauge("g", L("b", "2"), L("a", "1"))
	if g1 != g2 {
		t.Fatal("label order split a series")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m")
}

func TestRegisterExternalCounter(t *testing.T) {
	r := NewRegistry()
	var stats struct{ Hits Counter }
	got := r.RegisterCounter("hits_total", &stats.Hits)
	if got != &stats.Hits {
		t.Fatal("adoption did not return the external counter")
	}
	stats.Hits.Add(7)
	p, ok := r.Snapshot().Get("hits_total")
	if !ok || p.Value != 7 {
		t.Fatalf("snapshot = %+v, %v", p, ok)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	// SearchFloat64s puts v == bound into that bound's bucket index, i.e.
	// buckets are [..]: le=1 gets 0.5 and 1.
	cum := h.Buckets()
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (all %v)", i, cum[i], w, cum)
		}
	}
	if h.Count() != 5 || h.Sum() != 556.5 {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestHistogramBoundsSanitized(t *testing.T) {
	h := NewHistogram([]float64{10, 1, 1, math.Inf(1), math.NaN()})
	if b := h.Bounds(); len(b) != 2 || b[0] != 1 || b[1] != 10 {
		t.Fatalf("bounds = %v", b)
	}
}

// TestSnapshotWhileUpdatesInFlight hammers instruments from several
// goroutines while snapshots are taken, checking (under -race) that the
// snapshot path is race-free and that counter values are monotonic
// across snapshots.
func TestSnapshotWhileUpdatesInFlight(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", L("view", "V1"))
	h := r.Histogram("lat_seconds", nil, L("view", "V1"))
	r.GaugeFunc("depth", func() float64 { return 42 })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(1e-5)
				}
			}
		}()
	}
	var last float64
	var lastCount uint64
	for i := 0; i < 200; i++ {
		s := r.Snapshot()
		p, ok := s.Get("ops_total", L("view", "V1"))
		if !ok {
			t.Fatal("ops_total missing")
		}
		if p.Value < last {
			t.Fatalf("counter went backwards: %v -> %v", last, p.Value)
		}
		last = p.Value
		hp, _ := s.Get("lat_seconds", L("view", "V1"))
		if hp.Count < lastCount {
			t.Fatalf("histogram count went backwards: %d -> %d", lastCount, hp.Count)
		}
		lastCount = hp.Count
	}
	close(stop)
	wg.Wait()
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Help("gsv_view_reports_total", "reports routed to the view")
	r.Counter("gsv_view_reports_total", L("view", "V1")).Add(3)
	r.Counter("gsv_view_reports_total", L("view", "V2")).Add(1)
	r.Gauge("gsv_feed_ring_occupancy", L("view", "V1")).Set(17)
	h := r.Histogram("gsv_maintain_seconds", []float64{0.001, 0.1})
	h.Observe(0.0005)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP gsv_view_reports_total reports routed to the view\n",
		"# TYPE gsv_view_reports_total counter\n",
		`gsv_view_reports_total{view="V1"} 3`,
		`gsv_view_reports_total{view="V2"} 1`,
		"# TYPE gsv_feed_ring_occupancy gauge\n",
		`gsv_feed_ring_occupancy{view="V1"} 17`,
		"# TYPE gsv_maintain_seconds histogram\n",
		`gsv_maintain_seconds_bucket{le="0.001"} 1`,
		`gsv_maintain_seconds_bucket{le="0.1"} 1`,
		`gsv_maintain_seconds_bucket{le="+Inf"} 2`,
		"gsv_maintain_seconds_sum 5.0005",
		"gsv_maintain_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// TYPE header appears once per name even with several series.
	if strings.Count(out, "# TYPE gsv_view_reports_total") != 1 {
		t.Fatalf("duplicated TYPE header:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", L("view", "a\"b\\c\nd")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `{view="a\"b\\c\nd"}`) {
		t.Fatalf("escaping wrong:\n%s", b.String())
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total").Inc()
	srv := httptest.NewServer(DebugMux(r))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "up_total 1") {
		t.Fatalf("metrics body:\n%s", body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}

	// /debug/vars is live too (it serves the process expvar namespace).
	vars, err := srv.Client().Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer vars.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(vars.Body).Decode(&doc); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", L("view", "V1")).Add(2)
	r.Histogram("h", []float64{1}).Observe(0.5)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if p, ok := back.Get("c", L("view", "V1")); !ok || p.Value != 2 {
		t.Fatalf("round-tripped counter = %+v, %v", p, ok)
	}
	if p, ok := back.Get("h"); !ok || p.Count != 1 || len(p.Buckets) != 1 || p.Buckets[0].Count != 1 {
		t.Fatalf("round-tripped histogram = %+v, %v", p, ok)
	}
}
