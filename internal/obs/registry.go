package obs

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind classifies a registered metric.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind as the snapshot spells it.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

// metric is one registered instrument: a name, its labels, and exactly
// one of the instrument pointers.
type metric struct {
	name    string
	labels  []Label
	kind    Kind
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// Registry names instruments and exposes them. Components keep direct
// pointers to their instruments (registration returns them), so the
// registry is never on a hot path — only Snapshot and the exposition
// writers walk it. All methods are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric          // registration order
	index   map[string]*metric // name + canonical labels
	help    map[string]string  // per metric name
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: map[string]*metric{}, help: map[string]string{}}
}

// metricKey canonicalizes name+labels; labels must be sorted.
func metricKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('{')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte('}')
	}
	return b.String()
}

// register installs m unless a metric with the same name+labels exists,
// in which case the existing one is returned (get-or-create). Registering
// the same name+labels under a different kind panics: it is a programming
// error that would silently split a time series.
func (r *Registry) register(m *metric) *metric {
	m.labels = sortLabels(m.labels)
	key := metricKey(m.name, m.labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.index[key]; ok {
		if prev.kind != m.kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", key, m.kind, prev.kind))
		}
		return prev
	}
	r.index[key] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter returns the counter registered under name+labels, creating it
// if needed.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.register(&metric{name: name, labels: labels, kind: KindCounter, counter: new(Counter)}).counter
}

// RegisterCounter adopts an externally owned counter (e.g. a field of a
// stats struct) under name+labels, so hot-path increments stay a direct
// atomic add while the registry handles exposition. When the series
// already exists, the existing counter wins and is returned.
func (r *Registry) RegisterCounter(name string, c *Counter, labels ...Label) *Counter {
	return r.register(&metric{name: name, labels: labels, kind: KindCounter, counter: c}).counter
}

// Gauge returns the gauge registered under name+labels, creating it if
// needed.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.register(&metric{name: name, labels: labels, kind: KindGauge, gauge: new(Gauge)}).gauge
}

// RegisterGauge adopts an externally owned gauge; see RegisterCounter.
func (r *Registry) RegisterGauge(name string, g *Gauge, labels ...Label) *Gauge {
	return r.register(&metric{name: name, labels: labels, kind: KindGauge, gauge: g}).gauge
}

// GaugeFunc registers a gauge whose value is computed at snapshot time.
// fn must be safe to call concurrently and must not call back into the
// registry.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	r.register(&metric{name: name, labels: labels, kind: KindGauge, gaugeFn: fn})
}

// Histogram returns the histogram registered under name+labels, creating
// it with the given bounds if needed (nil bounds = LatencyBuckets).
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets
	}
	return r.register(&metric{name: name, labels: labels, kind: KindHistogram, hist: NewHistogram(bounds)}).hist
}

// RegisterHistogram adopts an externally owned histogram; see
// RegisterCounter.
func (r *Registry) RegisterHistogram(name string, h *Histogram, labels ...Label) *Histogram {
	return r.register(&metric{name: name, labels: labels, kind: KindHistogram, hist: h}).hist
}

// Help sets the help text emitted for a metric name in the Prometheus
// exposition.
func (r *Registry) Help(name, text string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = text
}

// Snapshot is a point-in-time copy of every registered metric,
// JSON-serializable for the stats wire request and /debug/vars.
type Snapshot struct {
	TakenAt time.Time     `json:"taken_at"`
	Metrics []MetricPoint `json:"metrics"`
}

// MetricPoint is one metric's snapshot value.
type MetricPoint struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value carries the counter or gauge value.
	Value float64 `json:"value"`
	// Count, Sum and Buckets are histogram-only.
	Count   uint64   `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one cumulative histogram bucket: observations ≤ LE.
type Bucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// Get returns the point for name with exactly the given labels, or false.
func (s Snapshot) Get(name string, labels ...Label) (MetricPoint, bool) {
	for _, p := range s.Metrics {
		if p.Name != name || len(p.Labels) != len(labels) {
			continue
		}
		match := true
		for _, l := range labels {
			if p.Labels[l.Key] != l.Value {
				match = false
				break
			}
		}
		if match {
			return p, true
		}
	}
	return MetricPoint{}, false
}

// Snapshot captures every metric. Counters and histograms are read with
// atomic loads, so a snapshot taken while updates are in flight is
// race-free and each individual value is monotonic across snapshots.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	s := Snapshot{TakenAt: time.Now(), Metrics: make([]MetricPoint, 0, len(metrics))}
	for _, m := range metrics {
		p := MetricPoint{Name: m.name, Kind: m.kind.String()}
		if len(m.labels) > 0 {
			p.Labels = make(map[string]string, len(m.labels))
			for _, l := range m.labels {
				p.Labels[l.Key] = l.Value
			}
		}
		switch m.kind {
		case KindCounter:
			p.Value = float64(m.counter.Value())
		case KindGauge:
			if m.gaugeFn != nil {
				p.Value = m.gaugeFn()
			} else {
				p.Value = float64(m.gauge.Value())
			}
		case KindHistogram:
			p.Count = m.hist.Count()
			p.Sum = m.hist.Sum()
			bounds := m.hist.Bounds()
			cum := m.hist.Buckets()
			// The implicit +Inf bucket is omitted: its cumulative count is
			// Count, and +Inf does not survive JSON encoding.
			p.Buckets = make([]Bucket, len(bounds))
			for i := range bounds {
				p.Buckets[i] = Bucket{LE: bounds[i], Count: cum[i]}
			}
		}
		s.Metrics = append(s.Metrics, p)
	}
	return s
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE header per metric name, then one
// sample line per series, histograms expanded into _bucket/_sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	// Group series by name, names in first-registration order, so TYPE
	// headers are emitted exactly once.
	names := make([]string, 0, len(metrics))
	byName := map[string][]*metric{}
	for _, m := range metrics {
		if _, ok := byName[m.name]; !ok {
			names = append(names, m.name)
		}
		byName[m.name] = append(byName[m.name], m)
	}
	for _, name := range names {
		group := byName[name]
		if h := help[name]; h != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(h)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, group[0].kind); err != nil {
			return err
		}
		for _, m := range group {
			if err := writeSeries(w, m); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, m *metric) error {
	switch m.kind {
	case KindCounter:
		_, err := fmt.Fprintf(w, "%s%s %s\n", m.name, labelString(m.labels, nil),
			strconv.FormatUint(m.counter.Value(), 10))
		return err
	case KindGauge:
		v := float64(m.gauge.Value())
		if m.gaugeFn != nil {
			v = m.gaugeFn()
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", m.name, labelString(m.labels, nil), formatFloat(v))
		return err
	case KindHistogram:
		bounds := m.hist.Bounds()
		cum := m.hist.Buckets()
		for i, c := range cum {
			le := "+Inf"
			if i < len(bounds) {
				le = formatFloat(bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.name,
				labelString(m.labels, &Label{Key: "le", Value: le}), c); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.name, labelString(m.labels, nil),
			formatFloat(m.hist.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, labelString(m.labels, nil), m.hist.Count())
		return err
	}
	return nil
}

// labelString renders {k="v",...}; extra (the le label) is appended last.
func labelString(labels []Label, extra *Label) string {
	if len(labels) == 0 && extra == nil {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extra != nil {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extra.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SortedMetrics returns the snapshot's points sorted by name then label
// string — a stable order for rendering tables.
func (s Snapshot) SortedMetrics() []MetricPoint {
	out := append([]MetricPoint(nil), s.Metrics...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelMapString(out[i].Labels) < labelMapString(out[j].Labels)
	})
	return out
}

func labelMapString(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(m[k])
		b.WriteByte(';')
	}
	return b.String()
}

// ExpvarFunc adapts the registry to an expvar.Var whose JSON is the
// current Snapshot.
func (r *Registry) ExpvarFunc() expvar.Func {
	return func() any { return r.Snapshot() }
}

// PublishExpvar publishes the registry's snapshot under name in the
// process-global expvar namespace (served at /debug/vars). Publishing an
// already-taken name is a no-op: expvar.Publish panics on duplicates, and
// restartable callers (tests) must stay safe.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) == nil {
		expvar.Publish(name, r.ExpvarFunc())
	}
}
