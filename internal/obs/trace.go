package obs

import "sync"

// Outcome classifies one maintenance trace: what the warehouse did with
// the report for one view.
const (
	OutcomeScreened  = "screened"   // label/path screening discarded it
	OutcomeLocal     = "local"      // maintained with zero query backs
	OutcomeQueryBack = "query-back" // maintenance required source queries
	OutcomeError     = "error"      // maintenance failed
)

// HelperCounts breaks down the Algorithm 1 helper-function calls one
// update triggered (§4.3's path/ancestor/eval plus the label and fetch
// accessors the implementation adds).
type HelperCounts struct {
	Label    int `json:"label,omitempty"`
	Fetch    int `json:"fetch,omitempty"`
	Path     int `json:"path,omitempty"`
	Ancestor int `json:"ancestor,omitempty"`
	Eval     int `json:"eval,omitempty"`
}

// Total sums all helper calls.
func (h HelperCounts) Total() int { return h.Label + h.Fetch + h.Path + h.Ancestor + h.Eval }

// Stage is one timed step of a maintenance trace.
type Stage struct {
	Name  string `json:"name"`
	Nanos int64  `json:"nanos"`
}

// Trace is the structured record of one UpdateReport's journey through
// one view's maintenance: the screened/local/query-back decision, the
// helper-function calls it triggered, cache hits and misses, the applied
// delta sizes, and per-stage timings. Traces are emitted through a
// TraceSink alongside the changefeed's DeltaObserver; the ring sink keeps
// the most recent ones for the stats wire request.
type Trace struct {
	View   string `json:"view"`
	Source string `json:"source,omitempty"`
	Seq    uint64 `json:"seq"`
	Kind   string `json:"kind"`
	Level  int    `json:"level,omitempty"`

	Outcome    string       `json:"outcome"`
	QueryBacks int          `json:"query_backs,omitempty"`
	Helpers    HelperCounts `json:"helpers"`
	CacheHits  int          `json:"cache_hits,omitempty"`
	CacheMiss  int          `json:"cache_misses,omitempty"`
	// Inserts and Deletes are the membership delta sizes actually applied.
	Inserts int `json:"inserts,omitempty"`
	Deletes int `json:"deletes,omitempty"`

	Stages     []Stage `json:"stages,omitempty"`
	TotalNanos int64   `json:"total_nanos"`
	Err        string  `json:"err,omitempty"`
}

// TraceSink receives completed maintenance traces. Sinks run on the
// maintenance path and must return quickly; nil sinks mean tracing is
// off and cost one branch.
type TraceSink func(Trace)

// TraceRing is a bounded, concurrency-safe buffer of the most recent
// traces — the canonical TraceSink. The stats wire request snapshots it.
type TraceRing struct {
	mu    sync.Mutex
	buf   []Trace
	head  int // oldest retained
	count int
	total uint64
}

// NewTraceRing returns a ring retaining the last n traces (n < 1 is
// clamped to 1).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{buf: make([]Trace, n)}
}

// Add appends one trace, evicting the oldest when full. Add is the
// TraceSink shape; install it with ring.Add or via Sink.
func (r *TraceRing) Add(t Trace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if r.count < len(r.buf) {
		r.buf[(r.head+r.count)%len(r.buf)] = t
		r.count++
		return
	}
	r.buf[r.head] = t
	r.head = (r.head + 1) % len(r.buf)
}

// Sink returns the ring as a TraceSink; nil-safe so an absent ring
// disables tracing.
func (r *TraceRing) Sink() TraceSink {
	if r == nil {
		return nil
	}
	return r.Add
}

// Snapshot returns the retained traces, oldest first.
func (r *TraceRing) Snapshot() []Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Trace, r.count)
	for i := 0; i < r.count; i++ {
		out[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	return out
}

// Total counts all traces ever added, including evicted ones.
func (r *TraceRing) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
