package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestChainRingEviction(t *testing.T) {
	r := NewChainRing(3)
	for i := 1; i <= 5; i++ {
		r.Add(SpanChain{TraceID: fmt.Sprintf("t-%d", i), Origin: int64(i)})
	}
	got := r.Snapshot()
	if len(got) != 3 {
		t.Fatalf("retained %d chains", len(got))
	}
	// Oldest first, newest retained.
	for i, want := range []string{"t-3", "t-4", "t-5"} {
		if got[i].TraceID != want {
			t.Fatalf("snapshot[%d] = %q, want %q", i, got[i].TraceID, want)
		}
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d", r.Total())
	}
}

func TestChainRingClampsSize(t *testing.T) {
	r := NewChainRing(0)
	r.Add(SpanChain{TraceID: "a"})
	r.Add(SpanChain{TraceID: "b"})
	if got := r.Snapshot(); len(got) != 1 || got[0].TraceID != "b" {
		t.Fatalf("snapshot = %+v", got)
	}
}

func TestNilChainRing(t *testing.T) {
	var r *ChainRing
	r.Add(SpanChain{TraceID: "x"}) // must not panic
	if r.Snapshot() != nil || r.Total() != 0 {
		t.Fatal("nil ring is not empty")
	}
}

// TestChainRingConcurrent hammers Add/Snapshot/Total from many
// goroutines; run with -race. Snapshots must always be internally
// consistent: at most the ring's capacity, and every element a chain
// some writer actually added.
func TestChainRingConcurrent(t *testing.T) {
	r := NewChainRing(8)
	const writers, perWriter = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Add(SpanChain{
					TraceID: fmt.Sprintf("w%d-%d", w, i),
					Origin:  int64(i + 1),
					Spans:   []Span{{Node: "n", Stage: "apply", Nanos: int64(i)}},
				})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		snap := r.Snapshot()
		if len(snap) > 8 {
			t.Fatalf("snapshot larger than capacity: %d", len(snap))
		}
		for _, c := range snap {
			if c.TraceID == "" || c.Origin <= 0 {
				t.Fatalf("torn chain in snapshot: %+v", c)
			}
		}
		select {
		case <-done:
			if got := r.Total(); got != writers*perWriter {
				t.Fatalf("total = %d, want %d", got, writers*perWriter)
			}
			return
		default:
		}
	}
}

// TestAdvanceWatermarkConcurrent races many advancers pushing stamps in
// arbitrary order; the watermark must end at the maximum and never be
// observed moving backwards.
func TestAdvanceWatermarkConcurrent(t *testing.T) {
	var w atomic.Int64
	const goroutines, stamps = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		var last int64
		for {
			cur := w.Load()
			if cur < last {
				t.Error("watermark went backwards")
				return
			}
			last = cur
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= stamps; i++ {
				// Interleave ascending and descending pushes so CAS loops
				// actually contend and stale stamps arrive late.
				if g%2 == 0 {
					AdvanceWatermark(&w, int64(i))
				} else {
					AdvanceWatermark(&w, int64(stamps-i+1))
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	if got := w.Load(); got != stamps {
		t.Fatalf("watermark = %d, want %d", got, stamps)
	}
	AdvanceWatermark(&w, 3) // stale stamp after the fact
	if got := w.Load(); got != stamps {
		t.Fatalf("stale stamp lowered the watermark to %d", got)
	}
}

func TestSpanChainEndNanos(t *testing.T) {
	if got := (SpanChain{}).EndNanos(); got != 0 {
		t.Fatalf("empty chain end = %d", got)
	}
	c := SpanChain{Spans: []Span{
		{Stage: "screen", Start: 10, Nanos: 5},
		{Stage: "maintain", Start: 15, Nanos: 85},
		// A nested sub-span ending before the outer one must not win.
		{Stage: "maintain.compute", Start: 15, Nanos: 20},
	}}
	if got := c.EndNanos(); got != 100 {
		t.Fatalf("end = %d, want 100", got)
	}
}

// TestLatencyBucketBoundaries pins where observations land at the
// extremes of the default bounds: exactly on a bound counts into that
// bound's bucket (Prometheus le-semantics), sub-microsecond values land
// in the first bucket, and anything past the last bound lands in +Inf.
func TestLatencyBucketBoundaries(t *testing.T) {
	h := NewHistogram(nil) // nil bounds are NOT defaulted here — use explicit
	if len(h.Bounds()) != 0 {
		t.Fatalf("bounds = %v", h.Bounds())
	}
	h = NewHistogram(LatencyBuckets)
	bounds := h.Bounds()
	last := bounds[len(bounds)-1]

	// Sub-millisecond extreme: below, on, and just above the first bound.
	h.Observe(1e-9)   // 1ns, far below the 1µs floor
	h.Observe(1e-6)   // exactly the first bound
	h.Observe(1.1e-6) // just above it
	// Multi-second extreme: on the last bound and beyond it.
	h.Observe(last)     // exactly 10s
	h.Observe(last * 3) // 30s, only +Inf can hold it

	cum := h.Buckets()
	if cum[0] != 2 {
		t.Fatalf("≤1µs bucket = %d, want 2 (1ns and the exact bound)", cum[0])
	}
	if cum[1] != 3 {
		t.Fatalf("≤4µs bucket = %d, want 3", cum[1])
	}
	if cum[len(cum)-2] != 4 {
		t.Fatalf("≤%vs bucket = %d, want 4 (30s excluded)", last, cum[len(cum)-2])
	}
	if cum[len(cum)-1] != 5 {
		t.Fatalf("+Inf bucket = %d, want 5", cum[len(cum)-1])
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	want := 1e-9 + 1e-6 + 1.1e-6 + last + last*3
	if got := h.Sum(); got < want*0.999999 || got > want*1.000001 {
		t.Fatalf("sum = %v, want ~%v", got, want)
	}
}
