package experiments

import (
	"net"

	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/warehouse"
	"gsv/internal/workload"
)

// E11WireValidation replays the same update stream through the in-process
// simulated transport and through the real TCP protocol, and compares the
// communication counts. The query-back counts must match exactly — the
// maintenance logic is identical — which validates that every simulated
// number in E4/E5 corresponds one-for-one to a real message; byte counts
// differ by the JSON framing factor, reported for calibration.
func E11WireValidation(cfg Config) *Table {
	t := &Table{
		ID:    "E11",
		Title: "simulated transport vs real TCP wire (validation)",
		Caption: "The same stream maintained through the in-process transport and " +
			"through Server/Dial over a loopback socket. Identical query-back " +
			"counts validate the simulation; the byte ratio calibrates the " +
			"simulator's size estimates against JSON framing.",
		Headers: []string{"mode", "updates", "queries/upd", "objects/upd", "bytes/upd"},
	}
	tuples := 60 * cfg.Scale
	updates := max(30, cfg.Updates/4)

	type result struct {
		updates                 int
		queries, objects, bytes float64
	}

	run := func(overTCP bool) result {
		s := store.NewDefault()
		db := workload.RelationLike(s, workload.RelationConfig{
			Relations: 2, TuplesPerRelation: tuples, FieldsPerTuple: 3, Seed: cfg.Seed,
		})
		srcTr := warehouse.NewTransport(0)
		src := warehouse.NewSource("rel", s, "REL", warehouse.Level2, srcTr)
		src.DrainReports()

		var api warehouse.SourceAPI = src
		var tr *warehouse.Transport = srcTr
		var server *warehouse.Server
		if overTCP {
			server = warehouse.NewServer(src)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				panic(err)
			}
			go func() { _ = server.Serve(ln) }()
			defer server.Close()
			tr = warehouse.NewTransport(0)
			remote, err := warehouse.Dial("rel", ln.Addr().String(), tr)
			if err != nil {
				panic(err)
			}
			defer remote.Close()
			api = remote
		}

		w := warehouse.New(api)
		if _, err := w.DefineView("SEL", query.MustParse(relViewQuery),
			warehouse.ViewConfig{Screening: true}); err != nil {
			panic(err)
		}
		var sets, atoms []oem.OID
		for _, r := range db.Relations {
			sets = append(sets, r.OID)
			sets = append(sets, r.Tuples...)
			for _, tu := range r.Tuples {
				kids, _ := s.Children(tu)
				atoms = append(atoms, kids...)
			}
		}
		stream := workload.NewStream(s, workload.StreamConfig{Seed: cfg.Seed + 1, ValueRange: 60}, sets, atoms)
		before := tr.Snapshot()
		applied := 0
		for i := 0; i < updates; i++ {
			if _, ok := stream.Next(); !ok {
				break
			}
			var reports []*warehouse.UpdateReport
			if overTCP {
				raw := src.DrainReports()
				if err := server.Broadcast(raw); err != nil {
					panic(err)
				}
				remote := api.(*warehouse.RemoteSource)
				reports = remote.WaitReports(len(raw))
			} else {
				reports = src.DrainReports()
			}
			if err := w.ProcessAll(reports); err != nil {
				panic(err)
			}
			applied += len(reports)
		}
		used := tr.Sub(before)
		n := float64(max(1, applied))
		return result{
			updates: applied,
			queries: float64(used.QueryBacks) / n,
			objects: float64(used.ObjectsShipped) / n,
			bytes:   float64(used.Bytes) / n,
		}
	}

	sim := run(false)
	tcp := run(true)
	t.AddRow("simulated", sim.updates, sim.queries, sim.objects, sim.bytes)
	t.AddRow("real TCP", tcp.updates, tcp.queries, tcp.objects, tcp.bytes)
	if sim.queries != tcp.queries {
		t.AddRow("MISMATCH", "-", "query counts differ!", "-", "-")
	}
	return t
}
