package experiments

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"gsv/internal/faults"
	"gsv/internal/feed"
	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/replica"
	"gsv/internal/warehouse"
	"gsv/internal/workload"
)

// e14ServiceDelay models each replica node's fixed per-I/O service
// latency (a remote node's RTT + request handling), injected on every
// read and write of the node's accepted connections. Without it the
// whole tier shares the benchmark host's CPU and node-count scaling is
// invisible on small hosts; with it, capacity is bound by node count —
// the thing the experiment measures — while the host's cores only set
// the (unsaturated) processing cost per read.
const e14ServiceDelay = 2 * time.Millisecond

// e14Views are the two replicated views: one per relation, on the age
// field the update stream keeps flapping.
var e14Views = []struct{ name, stmt string }{
	{"AGE0", "SELECT REL.r0.tuple X WHERE X.age > 30"},
	{"AGE1", "SELECT REL.r1.tuple X WHERE X.age > 50"},
}

// E14ReplicaScaling measures the read-replica serving tier
// (docs/REPLICA.md): one primary maintains two views under a continuous
// update stream while 1, 2 and 4 replicas follow its changefeed; a fixed
// pool of readers per replica hammers the "members" op over the wire.
// Aggregate read throughput should scale near-linearly with the replica
// count — each replica serves from its own store, and the primary's
// extra cost per replica is one feed subscription, not one reader.
// After the measured window every replica must converge to the
// primary's exact membership.
func E14ReplicaScaling(cfg Config) *Table {
	t := &Table{
		ID:    "E14",
		Title: "read-replica scaling: aggregate read throughput vs replica count",
		Caption: "Read-replica tier (docs/REPLICA.md). One primary maintains 2 views " +
			"under a continuous update stream; N replicas bootstrap from snapshots, " +
			"follow the multi-view changefeed, and serve the members op over the " +
			"wire to 4 readers each. Every replica node models a fixed per-I/O " +
			"service latency (2ms), so capacity is bound by node count rather than " +
			"the shared benchmark host's cores. qps is aggregate successful reads/s " +
			"across all replicas; scaling is qps relative to the 1-replica run; " +
			"p99 prop is the 99th-percentile origin-to-replica-visible propagation " +
			"latency across all stamped updates the replicas applied (the freshness " +
			"the tier actually delivers — gated so staleness regressions fail CI). " +
			"After the window each replica must match the primary member-for-member.",
		Headers: []string{"replicas", "readers", "upds applied", "reads", "qps",
			"scaling", "p99 prop", "members equal"},
	}
	window := 200 * time.Millisecond
	if cfg.Updates >= 200 {
		window = 600 * time.Millisecond
	}
	var baseQPS float64
	for _, n := range []int{1, 2, 4} {
		applied, res, p99, equal := e14Run(cfg, n, window)
		if !equal {
			panic(fmt.Sprintf("E14: replica membership diverged at n=%d", n))
		}
		if n == 1 {
			baseQPS = res.QPS()
		}
		t.AddRow(n, 4*n, applied, res.Reads, res.QPS(), ratio(res.QPS(), baseQPS),
			fmt.Sprintf("%.2fms", p99*1e3), equal)
	}
	return t
}

// p99Of returns the 99th-percentile of latency samples in seconds
// (0 when empty).
func p99Of(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sort.Float64s(samples)
	i := (len(samples)*99 + 99) / 100 // ceil(0.99n)
	if i < 1 {
		i = 1
	}
	if i > len(samples) {
		i = len(samples)
	}
	return samples[i-1]
}

// e14Run measures one replica count: primary + n replicas + 4 readers
// per replica for one window, then a convergence check. p99 is the
// tier's 99th-percentile origin-to-visible propagation latency in
// seconds, pooled across every replica's applied updates.
func e14Run(cfg Config, n int, window time.Duration) (applied int, res workload.ReadLoadResult, p99 float64, equal bool) {
	s, sets, atoms := e12Fixture(50*cfg.Scale, cfg.Seed)
	src := warehouse.NewSource("primary", s, "REL", warehouse.Level2, warehouse.NewTransport(0))
	src.DrainReports()
	w := warehouse.New(src)
	w.Feed = feed.NewHub(feed.Options{RingSize: 8192})
	for _, v := range e14Views {
		if _, err := w.DefineView(v.name, query.MustParse(v.stmt), warehouse.ViewConfig{Screening: true}); err != nil {
			panic(err)
		}
	}
	server := warehouse.NewServer(src)
	server.Feed = w.Feed
	server.Members = w.FreshMembers
	server.FeedProgressInterval = 25 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go func() { _ = server.Serve(ln) }()
	defer server.Close()

	var reps []*replica.Replica
	var rsrvs []*warehouse.Server
	var addrs []string
	defer func() {
		for _, rs := range rsrvs {
			rs.Close()
		}
		for _, r := range reps {
			r.Close()
		}
	}()
	for i := 0; i < n; i++ {
		r, err := replica.New(replica.Options{
			Name: fmt.Sprintf("r%d", i), Primary: ln.Addr().String(),
		})
		if err != nil {
			panic(err)
		}
		reps = append(reps, r)
		if !r.WaitCaughtUp(10 * time.Second) {
			panic("E14: replica never caught up")
		}
		rsrv := r.NewServer(nil)
		rln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		// One injector per node: a shared one would serialize all nodes'
		// reads on its mutex, masking exactly the scaling being measured.
		inj := faults.New(faults.Config{DelayProb: 1, Delay: e14ServiceDelay})
		go func() { _ = rsrv.Serve(inj.WrapListener(rln)) }()
		rsrvs = append(rsrvs, rsrv)
		addrs = append(addrs, rln.Addr().String())
	}

	// Continuous maintenance on the primary for the whole window.
	stop := make(chan struct{})
	var driver sync.WaitGroup
	driver.Add(1)
	go func() {
		defer driver.Done()
		stream := workload.NewStream(s, workload.StreamConfig{Seed: cfg.Seed + 7, ValueRange: 60}, sets, atoms)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, ok := stream.Next(); !ok {
				return
			}
			if err := w.ProcessAll(src.DrainReports()); err != nil {
				panic(err)
			}
			applied++
			time.Sleep(500 * time.Microsecond)
		}
	}()

	views := make([]string, 0, len(e14Views))
	for _, v := range e14Views {
		views = append(views, v.name)
	}
	res = workload.RunReadLoad(workload.ReadLoadConfig{
		Addrs: addrs, Clients: 4 * n, Duration: window,
		Views: views, Seed: cfg.Seed,
	})
	close(stop)
	driver.Wait()

	equal = true
	finalSeq := src.Store.Seq()
	for _, r := range reps {
		if !r.WaitSeq(finalSeq, 10*time.Second) {
			equal = false
			continue
		}
		for _, v := range e14Views {
			want, err := w.FreshMembers(v.name)
			if err != nil {
				panic(err)
			}
			got, err := r.Members(v.name)
			if err != nil {
				panic(err)
			}
			if !oem.SameMembers(got, want) {
				equal = false
			}
		}
	}
	var samples []float64
	for _, r := range reps {
		samples = append(samples, r.PropagationSamples()...)
	}
	return applied, res, p99Of(samples), equal
}
