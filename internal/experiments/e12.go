package experiments

import (
	"fmt"
	"runtime"
	"time"

	"gsv/internal/core"
	"gsv/internal/oem"
	"gsv/internal/store"
	"gsv/internal/workload"
)

// e12Views is a multi-view workload whose conditions spread over the
// distinct field labels of the relation-like base (age is the integer
// first field, f1/f2 the string fields), across both relations. Label
// diversity is what gives the screening index leverage: a modify of an
// f2 atom provably cannot affect a view whose paths never mention f2.
var e12Views = []struct{ name, stmt string }{
	{"AGE0", "define mview AGE0 as: SELECT REL.r0.tuple X WHERE X.age > 30"},
	{"AGE1", "define mview AGE1 as: SELECT REL.r1.tuple X WHERE X.age > 50"},
	{"F1R0", "define mview F1R0 as: SELECT REL.r0.tuple X WHERE X.f1 = 'v7'"},
	{"F1R1", "define mview F1R1 as: SELECT REL.r1.tuple X WHERE X.f1 = 'v7'"},
	{"F2R0", "define mview F2R0 as: SELECT REL.r0.tuple X WHERE X.f2 = 'v7'"},
	{"F2R1", "define mview F2R1 as: SELECT REL.r1.tuple X WHERE X.f2 = 'v7'"},
	{"F3R0", "define mview F3R0 as: SELECT REL.r0.tuple X WHERE X.f3 = 'v7'"},
	{"F3R1", "define mview F3R1 as: SELECT REL.r1.tuple X WHERE X.f3 = 'v7'"},
	{"F4R0", "define mview F4R0 as: SELECT REL.r0.tuple X WHERE X.f4 = 'v7'"},
	{"F4R1", "define mview F4R1 as: SELECT REL.r1.tuple X WHERE X.f4 = 'v7'"},
}

// e12Fixture is relFixture with five fields per tuple (labels age,
// f1..f4) so a random modify hits any one view family only 1/5 of the
// time — the label spread a screening index exists to exploit.
func e12Fixture(tuples int, seed int64) (*store.Store, []oem.OID, []oem.OID) {
	s := store.NewDefault()
	db := workload.RelationLike(s, workload.RelationConfig{
		Relations: 2, TuplesPerRelation: tuples, FieldsPerTuple: 5, Seed: seed,
	})
	var sets, atoms []oem.OID
	for _, r := range db.Relations {
		sets = append(sets, r.OID)
		sets = append(sets, r.Tuples...)
		for _, tu := range r.Tuples {
			kids, _ := s.Children(tu)
			atoms = append(atoms, kids...)
		}
	}
	return s, sets, atoms
}

// E12ParallelBatchedMaintenance measures the PR-4 scheduler: the same
// update stream applied through Registry.ApplyBatch once on the serial
// path (parallelism 1, screening off — the literal pre-scheduler
// per-update x per-view loop) and once on the batched path (screening
// index on, worker pool at NumCPU). Both legs group-commit identical
// chunks, so the measured gap is exactly what the scheduler adds:
// screening retires provably-unaffected (update, view) pairs before any
// maintainer runs, and surviving pairs fan out over the pool.
//
// Expected shape: speedup well above 2x on a single core already (most
// pairs screen out under a diverse multi-view workload), growing with
// core count. Memberships must be identical on both legs.
func E12ParallelBatchedMaintenance(cfg Config) *Table {
	t := &Table{
		ID:    "E12",
		Title: "parallel batched maintenance vs the serial per-update loop",
		Caption: "PR 4 scheduler. 10 materialized views over distinct field labels of " +
			"both relations; same stream group-committed in chunks of 32 through " +
			"ApplyBatch. Serial = parallelism 1 + screening off; batched = screening " +
			"index + NumCPU workers. Screened% is the fraction of (update, view) " +
			"pairs retired without running a maintainer; memberships are compared " +
			"member-for-member across the legs.",
		Headers: []string{"tuples", "views", "updates", "serial us/upd", "batched us/upd",
			"speedup", "screened %", "members equal"},
	}
	const chunk = 32
	for _, tuples := range []int{50, 200, 800} {
		tuples *= cfg.Scale
		updates := cfg.Updates

		run := func(batched bool) (time.Duration, int, float64, map[string][]oem.OID) {
			s, sets, atoms := e12Fixture(tuples, cfg.Seed)
			reg := core.NewRegistry(s)
			for _, v := range e12Views {
				if _, err := reg.Define(v.stmt); err != nil {
					panic(err)
				}
			}
			if batched {
				reg.SetScreening(true)
				reg.SetParallelism(runtime.NumCPU())
			} else {
				reg.SetScreening(false)
				reg.SetParallelism(1)
			}
			stream := workload.NewStream(s, workload.StreamConfig{
				Seed: cfg.Seed + 1, ValueRange: 60,
			}, sets, atoms)
			// Pre-generate the whole stream in chunks; the store advances as
			// the stream runs, exactly like mutations accumulating between
			// Drains, and ApplyBatch replays the log from behind.
			var batches [][]store.Update
			applied := 0
			for applied < updates {
				var b []store.Update
				for len(b) < chunk && applied < updates {
					us, ok := stream.Next()
					if !ok {
						break
					}
					b = append(b, us...)
					applied++
				}
				if len(b) == 0 {
					break
				}
				batches = append(batches, b)
			}
			m := &reg.Scheduler().Metrics
			r0, s0 := m.RoutedPairs.Value(), m.ScreenedPairs.Value()
			d := timed(func() {
				for _, b := range batches {
					if err := reg.ApplyBatch(b); err != nil {
						panic(err)
					}
				}
			})
			routed := float64(m.RoutedPairs.Value() - r0)
			screened := float64(m.ScreenedPairs.Value() - s0)
			pct := 0.0
			if routed+screened > 0 {
				pct = 100 * screened / (routed + screened)
			}
			members := map[string][]oem.OID{}
			for _, v := range e12Views {
				ms, err := reg.Evaluate(v.name)
				if err != nil {
					panic(err)
				}
				members[v.name] = ms
			}
			return d, applied, pct, members
		}

		serialD, serialN, _, serialM := run(false)
		batchD, batchN, pct, batchM := run(true)

		equal := serialN == batchN
		for _, v := range e12Views {
			a, b := serialM[v.name], batchM[v.name]
			if len(a) != len(b) {
				equal = false
				break
			}
			for i := range a {
				if a[i] != b[i] {
					equal = false
					break
				}
			}
		}
		if !equal {
			panic(fmt.Sprintf("E12: memberships diverged at tuples=%d", tuples))
		}

		serialUS := float64(serialD.Microseconds()) / float64(max(1, serialN))
		batchUS := float64(batchD.Microseconds()) / float64(max(1, batchN))
		t.AddRow(tuples, len(e12Views), serialN,
			serialUS, batchUS, ratio(serialUS, batchUS),
			fmt.Sprintf("%.1f", pct), equal)
	}
	return t
}
