package experiments

import (
	"fmt"
	"time"

	"gsv/internal/faults"
	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/warehouse"
	"gsv/internal/workload"
)

// e15ServiceDelay models each source server's fixed per-request service
// latency (RTT + handling at a remote source), injected on every query
// back a shard's maintenance issues to its source. Without it all
// shards share the benchmark host's CPU and shard-count scaling is
// invisible; with it, maintenance is bound by per-source round trips —
// the cost partitioning exists to divide.
const e15ServiceDelay = time.Millisecond

// e15Views are the two federated views, one per relation, on the age
// field the update stream keeps modifying.
var e15Views = []struct{ name, stmt string }{
	{"AGE0", "SELECT REL.r0.tuple X WHERE X.age > 30"},
	{"AGE1", "SELECT REL.r1.tuple X WHERE X.age > 50"},
}

// E15ShardScaling measures the federated warehouse (docs/WAREHOUSE.md,
// "Multi-source federation & failure model"): the same base GSDB is
// hash-partitioned with subtree affinity across 1, 2, 4 and 8 source
// shards, every shard's report stream feeds its own member views, and
// one Federation.Pump round absorbs an identical update mix. Each
// source charges a fixed service delay per query back, so maintenance
// throughput is bound by how many sources serve the query backs
// concurrently — it should scale near-linearly with the shard count.
// After the round every federated view must equal the union of
// from-scratch recomputes over all shard stores.
func E15ShardScaling(cfg Config) *Table {
	t := &Table{
		ID:    "E15",
		Title: "federated maintenance scaling: throughput vs source shard count",
		Caption: "Sharded multi-source warehouse (docs/WAREHOUSE.md). The base GSDB is " +
			"hash-partitioned with subtree affinity across N autonomous sources; " +
			"each shard maintains member views over its partition and the " +
			"federation unions them. Every source models a fixed per-query-back " +
			"service latency (1ms), so a maintenance round is bound by per-source " +
			"round trips. upd/s is updates absorbed per second of Pump wall time; " +
			"scaling is upd/s relative to the 1-shard run (gated: the 4-shard run " +
			"must hold at least 2x). cross is cross-shard query backs (affinity " +
			"keeps it near zero). After the round every federated view must match " +
			"the union of from-scratch recomputes over all shards.",
		Headers: []string{"shards", "updates", "reports", "upd/s",
			"scaling", "cross", "members equal"},
	}
	updates := 5 * cfg.Updates
	var baseUPS float64
	for _, n := range []int{1, 2, 4, 8} {
		reports, elapsed, cross, equal := e15Run(cfg, n, updates)
		if !equal {
			panic(fmt.Sprintf("E15: federated membership diverged at n=%d", n))
		}
		ups := float64(updates) / elapsed.Seconds()
		if n == 1 {
			baseUPS = ups
		}
		t.AddRow(n, updates, reports, ups, ratio(ups, baseUPS), cross, equal)
	}
	return t
}

// e15Run builds one n-shard federation over a partitioned relational
// base, applies the update mix spread evenly across the shards, and
// times the Pump rounds that absorb it.
func e15Run(cfg Config, n, updates int) (reports int, elapsed time.Duration, cross uint64, equal bool) {
	base := store.NewDefault()
	db := workload.RelationLike(base, workload.RelationConfig{
		Relations: 2, TuplesPerRelation: 50 * cfg.Scale, FieldsPerTuple: 5, Seed: cfg.Seed,
	})
	p := warehouse.NewPartitioner(n)
	stores, err := warehouse.PartitionStore(base, p, warehouse.PartitionConfig{Affinity: true})
	if err != nil {
		panic(err)
	}
	sources := make([]warehouse.SourceAPI, n)
	for k := 0; k < n; k++ {
		src := warehouse.NewSource(fmt.Sprintf("source%d", k), stores[k], db.Root,
			warehouse.Level2, warehouse.NewTransport(0))
		src.DrainReports()
		// The per-source service charge: every query back pays one
		// "round trip" to this shard's (otherwise in-process) source.
		sources[k] = warehouse.WrapSource(src, faults.New(faults.Config{
			DelayProb: 1, Delay: e15ServiceDelay,
		}))
	}
	fed, err := warehouse.NewFederation(sources, warehouse.FederationConfig{Partitioner: p})
	if err != nil {
		panic(err)
	}
	for _, v := range e15Views {
		if err := fed.DefineView(v.name, query.MustParse(v.stmt), warehouse.ViewConfig{Screening: true}); err != nil {
			panic(err)
		}
	}

	// One update stream per shard over its owned tuples; the total mix
	// is spread evenly, modelling sources that update autonomously.
	streams := make([]*workload.Stream, n)
	for k := 0; k < n; k++ {
		var sets, atoms []oem.OID
		for _, r := range db.Relations {
			sets = append(sets, r.OID)
			for _, tu := range r.Tuples {
				if !stores[k].Has(tu) {
					continue
				}
				sets = append(sets, tu)
				kids, _ := stores[k].Children(tu)
				atoms = append(atoms, kids...)
			}
		}
		streams[k] = workload.NewStream(stores[k], workload.StreamConfig{
			Seed: cfg.Seed + int64(k), ValueRange: 60,
		}, sets, atoms)
	}
	for i := 0; i < updates; i++ {
		if _, ok := streams[i%n].Next(); !ok {
			panic("E15: stream exhausted")
		}
	}

	start := time.Now()
	for {
		nproc, err := fed.Pump()
		if err != nil {
			panic(err)
		}
		reports += nproc
		if nproc == 0 {
			break
		}
	}
	elapsed = time.Since(start)

	equal = true
	for _, v := range e15Views {
		got, err := fed.Members(v.name)
		if err != nil {
			panic(err)
		}
		q := query.MustParse(v.stmt)
		seen := make(map[oem.OID]bool)
		var want []oem.OID
		for _, st := range stores {
			ms, err := query.NewEvaluator(st).Eval(q)
			if err != nil {
				panic(err)
			}
			for _, m := range ms {
				if !seen[m] {
					seen[m] = true
					want = append(want, m)
				}
			}
		}
		if !oem.SameMembers(got, oem.SortOIDs(want)) {
			equal = false
		}
	}
	return reports, elapsed, fed.CrossFetches(), equal
}
