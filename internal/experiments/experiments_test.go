package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "T", Title: "demo", Caption: "caption text", Headers: []string{"a", "bb"}}
	tb.AddRow(1, 2.5)
	tb.AddRow("x", "y")
	var buf bytes.Buffer
	tb.Write(&buf)
	out := buf.String()
	for _, want := range []string{"T — demo", "caption text", "a", "bb", "2.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	buf.Reset()
	tb.Markdown(&buf)
	if !strings.Contains(buf.String(), "| a | bb |") {
		t.Errorf("markdown header missing:\n%s", buf.String())
	}
}

func TestE1ShapeIncrementalWins(t *testing.T) {
	cfg := SmallConfig()
	tb := E1IncrementalVsRecompute(cfg)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// On the largest size, incremental must beat recomputation clearly.
	last := tb.Rows[len(tb.Rows)-1]
	incr := parseCell(t, last[3])
	recomp := parseCell(t, last[4])
	if recomp <= incr {
		t.Errorf("recompute (%v us) not slower than incremental (%v us) at max size", recomp, incr)
	}
	// The speedup should grow with database size (shape check between the
	// smallest and largest rows).
	first := tb.Rows[0]
	sp0 := parseCell(t, first[5])
	spN := parseCell(t, last[5])
	if spN < sp0 {
		t.Errorf("speedup shrank with size: %v -> %v", sp0, spN)
	}
}

func TestE2ShapeIndexHelps(t *testing.T) {
	tb := E2ParentIndexAblation(SmallConfig())
	last := tb.Rows[len(tb.Rows)-1]
	idxObjs := parseCell(t, last[3])
	scanObjs := parseCell(t, last[5])
	if scanObjs <= idxObjs {
		t.Errorf("index-free maintenance touched %v objs/upd, indexed %v — expected more", scanObjs, idxObjs)
	}
}

func TestE3ShapeGSDBWins(t *testing.T) {
	tb := E3RelationalBaseline(SmallConfig())
	for _, row := range tb.Rows {
		deltas := parseCell(t, row[5])
		if deltas < 1.0 {
			t.Errorf("table deltas per update %v < 1", deltas)
		}
	}
	// At the largest size the relational side should not be faster.
	last := tb.Rows[len(tb.Rows)-1]
	gs := parseCell(t, last[2])
	rel := parseCell(t, last[3])
	if rel < gs {
		t.Logf("note: relational faster (%v vs %v) at this size — acceptable at small scale", rel, gs)
	}
}

func TestE4ShapeLevelsMonotone(t *testing.T) {
	tb := E4ReportingLevels(SmallConfig())
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	q1 := parseCell(t, tb.Rows[0][2])
	q2 := parseCell(t, tb.Rows[1][2])
	q3 := parseCell(t, tb.Rows[2][2])
	if !(q1 >= q2 && q2 >= q3) {
		t.Errorf("queries per update not monotone: %v %v %v", q1, q2, q3)
	}
	if q1 == 0 {
		t.Error("level 1 issued no queries at all")
	}
}

func TestE5ShapeFullCacheLocal(t *testing.T) {
	tb := E5Caching(SmallConfig())
	byName := map[string][]string{}
	for _, row := range tb.Rows {
		byName[row[0]] = row
	}
	none := parseCell(t, byName["no cache, no screening"][1])
	full := parseCell(t, byName["full cache + screening"][1])
	if full != 0 {
		t.Errorf("full cache still queries: %v/upd", full)
	}
	if none <= full {
		t.Errorf("no-cache (%v) not more expensive than full cache (%v)", none, full)
	}
	partial := parseCell(t, byName["partial cache + screening"][1])
	if partial > none {
		t.Errorf("partial cache (%v) worse than no cache (%v)", partial, none)
	}
	if c := parseCell(t, byName["full cache + screening"][4]); c <= 0 {
		t.Error("full cache reports zero bytes")
	}
}

func TestE6ShapeSwizzlingSameAnswers(t *testing.T) {
	tb := E6Swizzling(SmallConfig())
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if parseCell(t, row[2]) <= 0 || parseCell(t, row[3]) <= 0 {
			t.Errorf("non-positive timings: %v", row)
		}
	}
}

func TestE7ShapeLadder(t *testing.T) {
	tb := E7GeneralizedViews(SmallConfig())
	var simple, general, recompute float64
	for _, row := range tb.Rows {
		if row[0] != "simple (r0.tuple, age>30)" {
			continue
		}
		v := parseCell(t, row[2])
		switch row[1] {
		case "simple":
			simple = v
		case "general":
			general = v
		case "recompute":
			recompute = v
		}
	}
	if simple <= 0 || general <= 0 || recompute <= 0 {
		t.Fatalf("missing ladder rows: %v %v %v", simple, general, recompute)
	}
	if recompute < simple {
		t.Errorf("recompute (%v) faster than Algorithm 1 (%v)", recompute, simple)
	}
}

func TestE8ShapeIntentScreens(t *testing.T) {
	tb := E8BulkUpdateIntent(SmallConfig())
	// Six rows: three views without screening, three with.
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	var offUpdates, johnsOn, richOn float64
	for _, row := range tb.Rows {
		switch {
		case row[1] == "off" && row[0] == "JOHNS":
			offUpdates = parseCell(t, row[3])
		case row[1] == "on" && row[0] == "JOHNS":
			johnsOn = parseCell(t, row[3])
		case row[1] == "on" && row[0] == "RICH":
			richOn = parseCell(t, row[3])
		}
	}
	if offUpdates == 0 {
		t.Fatal("bulk update produced no individual updates")
	}
	if johnsOn != 0 {
		t.Errorf("JOHNS processed %v updates despite intent screening", johnsOn)
	}
	if richOn == 0 {
		t.Error("RICH (salary view) was screened but is affected")
	}
}

func TestE9ShapeClusterSaves(t *testing.T) {
	tb := E9ClusterSharing(SmallConfig())
	for _, row := range tb.Rows {
		sep := parseCell(t, row[2])
		shared := parseCell(t, row[3])
		if shared >= sep {
			t.Errorf("cluster (%v) not smaller than separate (%v)", shared, sep)
		}
	}
}

func TestE10ShapeGuideScales(t *testing.T) {
	tb := E10DataGuide(SmallConfig())
	first, last := tb.Rows[0], tb.Rows[len(tb.Rows)-1]
	if first[2] != last[2] {
		t.Errorf("guide nodes grew with cardinality: %s vs %s", first[2], last[2])
	}
	if parseCell(t, last[3]) >= parseCell(t, last[4]) {
		t.Errorf("guide eval (%s us) not faster than data eval (%s us) at max size", last[3], last[4])
	}
}

func TestE11ShapeWireMatchesSimulation(t *testing.T) {
	tb := E11WireValidation(SmallConfig())
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %v (a third row signals a query-count mismatch)", tb.Rows)
	}
	simQ := parseCell(t, tb.Rows[0][2])
	tcpQ := parseCell(t, tb.Rows[1][2])
	if simQ != tcpQ {
		t.Fatalf("query backs differ: simulated %v vs TCP %v", simQ, tcpQ)
	}
	if parseCell(t, tb.Rows[1][4]) <= 0 {
		t.Fatal("TCP bytes not measured")
	}
}

func TestAllRuns(t *testing.T) {
	cfg := SmallConfig()
	cfg.Updates = 30
	tables := All(cfg)
	if len(tables) != 15 {
		t.Fatalf("tables = %d", len(tables))
	}
	var buf bytes.Buffer
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Errorf("%s has no rows", tb.ID)
		}
		tb.Write(&buf)
	}
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestE14ShapeReplicasConvergeAndServe(t *testing.T) {
	tb := E14ReplicaScaling(SmallConfig())
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[7] != "true" {
			t.Fatalf("replica membership diverged: %v", row)
		}
		if parseCell(t, row[4]) <= 0 {
			t.Fatalf("no reads measured: %v", row)
		}
		if !strings.HasSuffix(row[6], "ms") {
			t.Fatalf("p99 prop cell not a latency: %v", row)
		}
	}
	// Near-linear scaling is asserted on the full-size run (cmd/benchviews
	// and the bench-gate baseline); at test scale we only require that the
	// tier measures and converges.
}

func TestE13ShapeRecoveryMatchesAndRuns(t *testing.T) {
	tb := E13CrashRecovery(SmallConfig())
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[6] != "true" {
			t.Fatalf("memberships diverged: %v", row)
		}
		if parseCell(t, row[3]) <= 0 || parseCell(t, row[4]) <= 0 {
			t.Fatalf("unmeasured leg: %v", row)
		}
	}
	// The headline claim — recovery beats cold start — is asserted only on
	// the full-size sweep (cmd/benchviews); at test scale the fixed costs
	// of opening a directory can dominate, so here we only require the
	// legs to agree and the table to be well-formed.
}
