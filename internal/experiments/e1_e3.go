package experiments

import (
	"fmt"
	"strings"
	"time"

	"gsv/internal/core"
	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/relstore"
	"gsv/internal/store"
	"gsv/internal/workload"
)

// relFixture builds a relation-like base with one maintained view target
// and returns the stream targets.
func relFixture(tuples int, seed int64) (*store.Store, *workload.RelationDB, []oem.OID, []oem.OID) {
	s := store.NewDefault()
	db := workload.RelationLike(s, workload.RelationConfig{
		Relations: 2, TuplesPerRelation: tuples, FieldsPerTuple: 3, Seed: seed,
	})
	var sets, atoms []oem.OID
	for _, r := range db.Relations {
		sets = append(sets, r.OID)
		sets = append(sets, r.Tuples...)
		for _, tu := range r.Tuples {
			kids, _ := s.Children(tu)
			atoms = append(atoms, kids...)
		}
	}
	return s, db, sets, atoms
}

const relViewQuery = "SELECT REL.r0.tuple X WHERE X.age > 30"

// timed runs fn once and returns its duration.
func timed(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// E1IncrementalVsRecompute measures the paper's first Section 4.4
// question: is incremental maintenance more efficient than recomputing the
// entire view? Sweep the database size; apply the same update stream under
// Algorithm 1 and under per-update recomputation.
//
// Expected shape: incremental cost per update is roughly flat; recompute
// cost grows linearly with the view, so the speedup grows with size.
func E1IncrementalVsRecompute(cfg Config) *Table {
	t := &Table{
		ID:    "E1",
		Title: "incremental maintenance (Algorithm 1) vs full recomputation",
		Caption: "Section 4.4 / Example 7. Same update stream applied under both " +
			"strategies; per-update wall time and base objects touched. " +
			"Incremental should win by a factor that grows with view size.",
		Headers: []string{"tuples", "view size", "updates", "incr us/upd", "recomp us/upd",
			"speedup", "incr objs/upd"},
	}
	for _, tuples := range []int{50, 200, 800, 3200} {
		tuples *= cfg.Scale
		updates := cfg.Updates

		run := func(strategy core.Strategy) (time.Duration, int, int) {
			s, _, sets, atoms := relFixture(tuples, cfg.Seed)
			vstore := store.New(store.Options{ParentIndex: true, AllowDangling: true})
			mv, err := core.Materialize("V", query.MustParse(relViewQuery), s, vstore)
			if err != nil {
				panic(err)
			}
			var maint core.Maintainer
			stats := &core.AccessStats{}
			switch strategy {
			case core.StrategySimple:
				access := core.NewCentralAccess(s)
				access.Stats = stats
				m, err := core.NewSimpleMaintainer(mv, access)
				if err != nil {
					panic(err)
				}
				maint = m
			default:
				maint = recomputeAdapter{mv}
			}
			stream := workload.NewStream(s, workload.StreamConfig{Seed: cfg.Seed + 1, ValueRange: 60}, sets, atoms)
			applied := 0
			d := timed(func() {
				for i := 0; i < updates; i++ {
					us, ok := stream.Next()
					if !ok {
						break
					}
					for _, u := range us {
						if err := maint.Apply(u); err != nil {
							panic(err)
						}
						applied++
					}
				}
			})
			members, _ := mv.Members()
			_ = members
			return d, applied, stats.ObjectsTouched
		}

		incrD, incrN, incrObjs := run(core.StrategySimple)
		recompD, recompN, _ := run(core.StrategyRecompute)

		// View size measured on a fresh fixture.
		s, _, _, _ := relFixture(tuples, cfg.Seed)
		members, err := query.NewEvaluator(s).Eval(query.MustParse(relViewQuery))
		if err != nil {
			panic(err)
		}

		incrUS := float64(incrD.Microseconds()) / float64(max(1, incrN))
		recompUS := float64(recompD.Microseconds()) / float64(max(1, recompN))
		t.AddRow(tuples, len(members), incrN,
			incrUS, recompUS, ratio(recompUS, incrUS),
			float64(incrObjs)/float64(max(1, incrN)))
	}
	return t
}

type recomputeAdapter struct{ mv *core.MaterializedView }

// Apply implements core.Maintainer by rebuilding the view from scratch.
func (r recomputeAdapter) Apply(store.Update) error { return r.mv.Recompute() }

// E2ParentIndexAblation measures the helper-function cost asymmetry of
// Section 4.4: with an inverse (parent) index, path(ROOT,N) and
// ancestor(N,p) walk up; without one they traverse from the root or scan.
//
// Expected shape: per-update cost without the index grows with both depth
// and database width; with the index it grows only with depth.
func E2ParentIndexAblation(cfg Config) *Table {
	t := &Table{
		ID:    "E2",
		Title: "parent ('inverse') index ablation for path/ancestor",
		Caption: "Section 4.4: 'if the base database has an inverse index ... " +
			"evaluating ancestor(N,p) is straightforward. If there does not exist " +
			"such an index, evaluating the same function may require a traversal " +
			"from ROOT to N.' Deep-chain database, modify updates at the leaf.",
		Headers: []string{"depth", "objects", "indexed us/upd", "indexed objs/upd",
			"scan us/upd", "scan objs/upd", "slowdown"},
	}
	for _, depth := range []int{4, 16, 64} {
		depth *= cfg.Scale
		updates := max(10, cfg.Updates/10)

		run := func(parentIndex bool) (float64, float64, int) {
			opts := store.DefaultOptions()
			opts.ParentIndex = parentIndex
			s := store.New(opts)
			_, leaf := workload.DeepChain(s, depth, 6)
			sel := strings.Repeat("l.", depth) // C0.l.l...l.age
			vq := fmt.Sprintf("SELECT C0.%sage X WHERE X >= 0", sel)
			vstore := store.New(store.Options{ParentIndex: true, AllowDangling: true})
			mv, err := core.Materialize("V", query.MustParse(vq), s, vstore)
			if err != nil {
				panic(err)
			}
			access := core.NewCentralAccess(s)
			access.Stats = &core.AccessStats{}
			m, err := core.NewSimpleMaintainer(mv, access)
			if err != nil {
				panic(err)
			}
			applied := 0
			d := timed(func() {
				for i := 0; i < updates; i++ {
					before := s.Seq()
					if err := s.Modify(leaf, oem.Int(int64(i%50))); err != nil {
						panic(err)
					}
					for _, u := range s.LogSince(before) {
						if err := m.Apply(u); err != nil {
							panic(err)
						}
						applied++
					}
				}
			})
			return float64(d.Microseconds()) / float64(max(1, applied)),
				float64(access.Stats.ObjectsTouched) / float64(max(1, applied)),
				s.Len()
		}

		idxUS, idxObjs, n := run(true)
		scanUS, scanObjs, _ := run(false)
		t.AddRow(depth, n, idxUS, idxObjs, scanUS, scanObjs, ratio(scanUS, idxUS))
	}
	return t
}

// E3RelationalBaseline measures the paper's second Section 4.4 question:
// is the native GSDB algorithm better than flattening to three relations
// and using relational (counting) view maintenance? Both maintainers see
// the same update stream; note a single GSDB update becomes several table
// deltas.
//
// Expected shape: the GSDB algorithm wins; the relational side pays for
// multi-table expansion and self-join delta evaluation.
func E3RelationalBaseline(cfg Config) *Table {
	t := &Table{
		ID:    "E3",
		Title: "GSDB Algorithm 1 vs relational flattening + counting IVM",
		Caption: "Section 4.4 / Example 8. The same stream maintained natively and " +
			"over the OBJ/CHILD/ATOM flattening with counting delta propagation. " +
			"'A single object update can involve multiple tables.'",
		Headers: []string{"tuples", "updates", "gsdb us/upd", "rel us/upd", "slowdown",
			"tbl deltas/upd", "rows scanned/upd"},
	}
	def, ok := core.Simplify(query.MustParse(relViewQuery))
	if !ok {
		panic("E3 view not simple")
	}
	for _, tuples := range []int{50, 200, 800} {
		tuples *= cfg.Scale
		updates := cfg.Updates

		// Native.
		gsdbUS := func() float64 {
			s, _, sets, atoms := relFixture(tuples, cfg.Seed)
			vstore := store.New(store.Options{ParentIndex: true, AllowDangling: true})
			mv, err := core.Materialize("V", query.MustParse(relViewQuery), s, vstore)
			if err != nil {
				panic(err)
			}
			m, err := core.NewSimpleMaintainer(mv, core.NewCentralAccess(s))
			if err != nil {
				panic(err)
			}
			stream := workload.NewStream(s, workload.StreamConfig{Seed: cfg.Seed + 1, ValueRange: 60}, sets, atoms)
			applied := 0
			d := timed(func() {
				for i := 0; i < updates; i++ {
					us, ok := stream.Next()
					if !ok {
						break
					}
					for _, u := range us {
						if err := m.Apply(u); err != nil {
							panic(err)
						}
						applied++
					}
				}
			})
			return float64(d.Microseconds()) / float64(max(1, applied))
		}()

		// Relational.
		s, _, sets, atoms := relFixture(tuples, cfg.Seed)
		rel, err := relstore.NewGSDBView(s, def)
		if err != nil {
			panic(err)
		}
		rel.Engine.Stats = &relstore.Stats{}
		stream := workload.NewStream(s, workload.StreamConfig{Seed: cfg.Seed + 1, ValueRange: 60}, sets, atoms)
		applied, deltas := 0, 0
		d := timed(func() {
			for i := 0; i < updates; i++ {
				us, ok := stream.Next()
				if !ok {
					break
				}
				for _, u := range us {
					deltas += len(relstore.TranslateUpdate(u))
					rel.Apply(u)
					applied++
				}
			}
		})
		relUS := float64(d.Microseconds()) / float64(max(1, applied))
		t.AddRow(tuples, applied, gsdbUS, relUS, ratio(relUS, gsdbUS),
			float64(deltas)/float64(max(1, applied)),
			float64(rel.Engine.Stats.RowsScanned)/float64(max(1, applied)))
	}
	return t
}

func ratio(a, b float64) string {
	if b <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", a/b)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
