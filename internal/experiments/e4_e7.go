package experiments

import (
	"fmt"
	"time"

	"gsv/internal/core"
	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/warehouse"
	"gsv/internal/workload"
)

// warehouseRun replays one update stream through a source/warehouse pair
// and returns per-update communication costs.
type warehouseCosts struct {
	Updates    int
	QueryBacks float64 // per update (maintenance only, initial sync excluded)
	Objects    float64
	Bytes      float64
	Screened   float64
	LocalFrac  float64
	CacheBytes int
}

func runWarehouse(cfg Config, level warehouse.ReportLevel, vcfg warehouse.ViewConfig, tuples int) warehouseCosts {
	s := store.NewDefault()
	db := workload.RelationLike(s, workload.RelationConfig{
		Relations: 2, TuplesPerRelation: tuples, FieldsPerTuple: 3, Seed: cfg.Seed,
	})
	tr := warehouse.NewTransport(2 * time.Millisecond)
	src := warehouse.NewSource("rel", s, "REL", level, tr)
	src.DrainReports()
	w := warehouse.New(src)
	if vcfg.Knowledge != nil {
		vcfg.Knowledge = warehouse.LearnFromSource(s, "REL")
	}
	v, err := w.DefineView("SEL", query.MustParse(relViewQuery), vcfg)
	if err != nil {
		panic(err)
	}
	var sets, atoms []oem.OID
	for _, r := range db.Relations {
		sets = append(sets, r.OID)
		sets = append(sets, r.Tuples...)
		for _, tu := range r.Tuples {
			kids, _ := s.Children(tu)
			atoms = append(atoms, kids...)
		}
	}
	stream := workload.NewStream(s, workload.StreamConfig{Seed: cfg.Seed + 1, ValueRange: 60}, sets, atoms)
	before := tr.Snapshot()
	applied := 0
	for i := 0; i < cfg.Updates; i++ {
		if _, ok := stream.Next(); !ok {
			break
		}
		reports := src.DrainReports()
		if err := w.ProcessAll(reports); err != nil {
			panic(err)
		}
		applied += len(reports)
	}
	used := tr.Sub(before)
	n := float64(max(1, applied))
	out := warehouseCosts{
		Updates:    applied,
		QueryBacks: float64(used.QueryBacks) / n,
		Objects:    float64(used.ObjectsShipped) / n,
		Bytes:      float64(used.Bytes) / n,
		Screened:   float64(v.Stats.Screened.Value()) / n,
		LocalFrac:  float64(v.Stats.LocalOnly.Value()) / float64(max(1, int(v.Stats.Reports.Value()))),
	}
	if v.Cache != nil {
		out.CacheBytes = v.Cache.Bytes()
	}
	return out
}

// E4ReportingLevels measures the three Section 5.1 update-reporting
// scenarios: per-update query backs, objects shipped and bytes moved for
// the same stream under Levels 1, 2 (with label screening) and 3.
//
// Expected shape: query backs fall as the level rises; report bytes rise
// slightly (richer reports) while response bytes fall.
func E4ReportingLevels(cfg Config) *Table {
	t := &Table{
		ID:    "E4",
		Title: "warehouse maintenance under the three update-reporting levels",
		Caption: "Section 5.1 scenarios: (1) OIDs only, (2) + labels and values " +
			"enabling local screening, (3) + path(ROOT,N) with OIDs. No auxiliary " +
			"cache; every helper evaluation not answered by the report queries the source.",
		Headers: []string{"level", "updates", "queries/upd", "objects/upd", "bytes/upd",
			"screened/upd"},
	}
	tuples := 100 * cfg.Scale
	for _, level := range []warehouse.ReportLevel{warehouse.Level1, warehouse.Level2, warehouse.Level3} {
		vcfg := warehouse.ViewConfig{Screening: level >= warehouse.Level2}
		c := runWarehouse(cfg, level, vcfg, tuples)
		t.AddRow(level.String(), c.Updates, c.QueryBacks, c.Objects, c.Bytes, c.Screened)
	}
	return t
}

// E5Caching measures the Section 5.2 auxiliary caching strategies at
// Level 2: no cache, screening only, partial structural cache (no atom
// values), full cache, and full cache plus path knowledge.
//
// Expected shape: the full cache answers everything locally (zero
// query backs); the partial cache pays only for condition value tests;
// screening alone already removes the irrelevant-label traffic.
func E5Caching(cfg Config) *Table {
	t := &Table{
		ID:    "E5",
		Title: "auxiliary caching at the warehouse (Level 2 reports)",
		Caption: "Section 5.2 / Example 10: 'the warehouse can maintain the view " +
			"locally, for any base update' with the full auxiliary structure; " +
			"partial caching trades queries for cache bytes.",
		Headers: []string{"configuration", "queries/upd", "local frac", "screened/upd",
			"cache bytes"},
	}
	tuples := 100 * cfg.Scale
	rows := []struct {
		name string
		cfg  warehouse.ViewConfig
	}{
		{"no cache, no screening", warehouse.ViewConfig{}},
		{"screening only", warehouse.ViewConfig{Screening: true}},
		{"partial cache + screening", warehouse.ViewConfig{Cache: warehouse.CachePartial, Screening: true}},
		{"full cache + screening", warehouse.ViewConfig{Cache: warehouse.CacheFull, Screening: true}},
		{"full cache + screening + knowledge", warehouse.ViewConfig{Cache: warehouse.CacheFull, Screening: true, Knowledge: &warehouse.PathKnowledge{}}},
	}
	for _, r := range rows {
		c := runWarehouse(cfg, warehouse.Level2, r.cfg, tuples)
		t.AddRow(r.name, c.QueryBacks, c.LocalFrac, c.Screened, c.CacheBytes)
	}
	return t
}

// nestedFixture builds a uniformly labeled containment tree (person
// containing person ...) whose interior objects all enter a wildcard view,
// so that swizzling has many intra-view edges to rewrite.
func nestedFixture(depth, fanout int) (*store.Store, int) {
	s := store.NewDefault()
	count := 0
	var build func(d int) oem.OID
	build = func(d int) oem.OID {
		oid := oem.OID(fmt.Sprintf("e%d", count))
		count++
		if d == 0 {
			s.MustPut(oem.NewAtom(oid, "badge", oem.Int(int64(count))))
			return oid
		}
		kids := make([]oem.OID, 0, fanout)
		for i := 0; i < fanout; i++ {
			kids = append(kids, build(d-1))
		}
		s.MustPut(oem.NewSet(oid, "person", kids...))
		return oid
	}
	root := build(depth)
	// Rename the root distinctly so queries can anchor at it.
	o, _ := s.Get(root)
	_ = o
	return s, count
}

// E6Swizzling measures the Section 3.2 swizzling argument: queries with a
// WITHIN MV clause are cheaper on a swizzled materialized view because
// membership is syntactic (the delegate prefix) instead of requiring a
// delegate-existence check per traversed edge.
//
// Expected shape: identical answers; the unswizzled path pays a resolve
// lookup per edge.
func E6Swizzling(cfg Config) *Table {
	t := &Table{
		ID:    "E6",
		Title: "edge swizzling vs delegate-existence checks for WITHIN-view queries",
		Caption: "Section 3.2: 'If edge swizzling is done, it is easy to check that " +
			"the edges traversed are in MVJ. Without swizzling ... it must then " +
			"check if the delegate for P3 is in MVJ.' Same answers either way.",
		Headers: []string{"view objects", "query", "unswizzled us/query", "swizzled us/query", "speedup"},
	}
	for _, depth := range []int{4, 6} {
		s, _ := nestedFixture(depth, 3)
		mv, err := core.Materialize("MV", query.MustParse("SELECT e0.* X"), s, s)
		if err != nil {
			panic(err)
		}
		q := query.MustParse("SELECT MV.person.person X WITHIN MV")
		iters := max(20, cfg.Updates/4)

		run := func() float64 {
			var sink int
			d := timed(func() {
				for i := 0; i < iters; i++ {
					res, err := mv.QueryView(q)
					if err != nil {
						panic(err)
					}
					sink += len(res)
				}
			})
			if sink == 0 {
				panic("E6 query returned nothing")
			}
			return float64(d.Microseconds()) / float64(iters)
		}

		unswizzledUS := run()
		if err := mv.Swizzle(); err != nil {
			panic(err)
		}
		swizzledUS := run()
		vo, _ := s.Get("MV")
		t.AddRow(len(vo.Set), q.String(), unswizzledUS, swizzledUS, ratio(unswizzledUS, swizzledUS))
	}
	return t
}

// E7GeneralizedViews measures the Section 6 extensions' overhead: the same
// simple view maintained by Algorithm 1, by the generalized maintainer and
// by recomputation, plus a wildcard view only the generalized maintainer
// and recomputation can handle.
//
// Expected shape: simple < general < recompute; the generalized
// maintainer's candidate-set work is the price of wildcard support.
func E7GeneralizedViews(cfg Config) *Table {
	t := &Table{
		ID:    "E7",
		Title: "generalized maintenance (Section 6 extensions) vs Algorithm 1",
		Caption: "Maintenance cost ladder on the same stream: Algorithm 1 where it " +
			"applies, the candidate-reconciliation general maintainer, and full " +
			"recomputation; then a wildcard view that only the latter two support.",
		Headers: []string{"view", "strategy", "us/upd"},
	}
	tuples := 100 * cfg.Scale
	views := []struct {
		name, q  string
		strategy []core.Strategy
	}{
		{"simple (r0.tuple, age>30)", relViewQuery,
			[]core.Strategy{core.StrategySimple, core.StrategyGeneral, core.StrategyRecompute}},
		{"wildcard (REL.*, age>30)", "SELECT REL.* X WHERE X.age > 30",
			[]core.Strategy{core.StrategyGeneral, core.StrategyRecompute}},
	}
	for _, v := range views {
		for _, strat := range v.strategy {
			s, _, sets, atoms := relFixture(tuples, cfg.Seed)
			vstore := s // general maintainer needs parent access on base; keep centralized
			mv, err := core.Materialize("V", query.MustParse(v.q), s, vstore)
			if err != nil {
				panic(err)
			}
			var maint core.Maintainer
			switch strat {
			case core.StrategySimple:
				m, err := core.NewSimpleMaintainer(mv, core.NewCentralAccess(s))
				if err != nil {
					panic(err)
				}
				maint = m
			case core.StrategyGeneral:
				m, err := core.NewGeneralMaintainer(mv)
				if err != nil {
					panic(err)
				}
				maint = m
			default:
				maint = recomputeAdapter{mv}
			}
			stream := workload.NewStream(s, workload.StreamConfig{Seed: cfg.Seed + 1, ValueRange: 60}, sets, atoms)
			applied := 0
			d := timed(func() {
				for i := 0; i < cfg.Updates/2; i++ {
					before := s.Seq()
					if _, ok := stream.Next(); !ok {
						break
					}
					for _, u := range s.LogSince(before) {
						if _, _, isDel := core.SplitDelegateOID(u.N1); isDel || u.N1 == "V" {
							continue
						}
						if err := maint.Apply(u); err != nil {
							panic(err)
						}
						applied++
					}
				}
			})
			t.AddRow(v.name, strat.String(), float64(d.Microseconds())/float64(max(1, applied)))
		}
	}
	return t
}
