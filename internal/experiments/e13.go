package experiments

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"gsv"
	"gsv/internal/oem"
	"gsv/internal/store"
	"gsv/internal/workload"
)

// e13Stream drives n stream updates against a store, syncing the DB (when
// one is attached) every chunk so the WAL group-commits realistically.
func e13Stream(db *gsv.DB, s *store.Store, sets, atoms []oem.OID, n int, seed int64) int {
	const chunk = 32
	stream := workload.NewStream(s, workload.StreamConfig{Seed: seed, ValueRange: 60}, sets, atoms)
	applied := 0
	for applied < n {
		if _, ok := stream.Next(); !ok {
			break
		}
		applied++
		if db != nil && applied%chunk == 0 {
			db.Sync()
		}
	}
	if db != nil {
		db.Sync()
	}
	return applied
}

// E13CrashRecovery measures the durable restart path: a database with the
// E12 multi-view workload runs a stream, checkpoints halfway, runs the
// second half (which therefore lives only in the WAL), and is then
// abandoned without a clean Close — a crash. Recovery is one
// Open(WithDurability): load the newest checkpoint, adopt the views over
// their restored delegates, replay the WAL tail through maintenance.
// The cold-start baseline is what a restart costs without the durability
// layer: reload a snapshot of the same final base and re-materialize
// every view from scratch. Both legs must produce identical memberships.
//
// Expected shape: recovery is O(checkpoint load + tail), cold start is
// O(base x views) materialization, so the gap widens with base size —
// on the largest sweep recovery should win clearly.
func E13CrashRecovery(cfg Config) *Table {
	t := &Table{
		ID:    "E13",
		Title: "crash recovery: checkpoint + WAL tail replay vs cold re-materialization",
		Caption: "Durable restart (docs/DURABILITY.md). 10 views (E12 workload); the " +
			"stream checkpoints halfway, so recovery = newest checkpoint + half the " +
			"stream replayed through Algorithm 1. Cold start reloads a snapshot of " +
			"the same final base and re-materializes all views. No clean shutdown: " +
			"the durable DB is abandoned mid-flight. Memberships are compared " +
			"member-for-member across the legs.",
		Headers: []string{"tuples", "objects", "tail upds", "cold ms", "recover ms",
			"speedup", "members equal"},
	}
	for _, tuples := range []int{50, 200, 800} {
		tuples *= cfg.Scale
		updates := cfg.Updates

		dir, err := os.MkdirTemp("", "gsv-e13-*")
		if err != nil {
			panic(err)
		}

		// Live phase: durable DB, fixture, views, half the stream, an
		// explicit checkpoint, the other half (WAL tail only), crash.
		// 128 KiB segments so the mid-stream checkpoint can truncate the
		// fixture-load history: with one giant segment nothing is ever
		// obsolete and recovery would re-scan the whole log.
		db, err := gsv.TryOpen(
			gsv.WithDurability(dir, gsv.SyncNever),
			gsv.WithSegmentBytes(128<<10),
			gsv.WithCheckpointEvery(1<<30), // only the explicit mid-stream checkpoint
		)
		if err != nil {
			panic(err)
		}
		s, sets, atoms := e12Fixture(tuples, cfg.Seed)
		var base bytes.Buffer
		if err := s.Save(&base); err != nil {
			panic(err)
		}
		// The durable store starts empty; replay the fixture into it so
		// every base object passes through the WAL subscription.
		if err := db.Store.Load(bytes.NewReader(base.Bytes())); err != nil {
			panic(err)
		}
		db.Sync()
		for _, v := range e12Views {
			if _, err := db.Define(v.stmt); err != nil {
				panic(err)
			}
		}
		e13Stream(db, db.Store, sets, atoms, updates/2, cfg.Seed+1)
		if err := db.Checkpoint(); err != nil {
			panic(err)
		}
		tail := e13Stream(db, db.Store, sets, atoms, updates-updates/2, cfg.Seed+2)
		want := map[string][]oem.OID{}
		for _, v := range e12Views {
			ms, err := db.ViewMembers(v.name)
			if err != nil {
				panic(err)
			}
			want[v.name] = ms
		}
		objects := db.Store.Len()
		// Crash: no Close, no final checkpoint. db is simply abandoned.

		// Recovery leg: one durable Open against the crashed directory.
		var rdb *gsv.DB
		recoverD := timed(func() {
			rdb, err = gsv.TryOpen(gsv.WithDurability(dir, gsv.SyncNever), gsv.WithSegmentBytes(128<<10))
			if err != nil {
				panic(err)
			}
		})

		// Cold leg: reload an equivalent final base (built without any view
		// machinery) and re-materialize every view over it.
		cold := store.NewDefault()
		cs, csets, catoms := e12Fixture(tuples, cfg.Seed)
		e13Stream(nil, cs, csets, catoms, updates/2, cfg.Seed+1)
		e13Stream(nil, cs, csets, catoms, updates-updates/2, cfg.Seed+2)
		var snap bytes.Buffer
		if err := cs.Save(&snap); err != nil {
			panic(err)
		}
		var cdb *gsv.DB
		coldD := timed(func() {
			if err := cold.Load(bytes.NewReader(snap.Bytes())); err != nil {
				panic(err)
			}
			cdb = gsv.Open(gsv.WithStore(cold))
			for _, v := range e12Views {
				if _, err := cdb.Define(v.stmt); err != nil {
					panic(err)
				}
			}
		})

		equal := true
		for _, v := range e12Views {
			rms, err := rdb.ViewMembers(v.name)
			if err != nil {
				panic(err)
			}
			cms, err := cdb.ViewMembers(v.name)
			if err != nil {
				panic(err)
			}
			if !oem.SameMembers(rms, want[v.name]) || !oem.SameMembers(cms, want[v.name]) {
				equal = false
			}
		}
		if !equal {
			panic(fmt.Sprintf("E13: memberships diverged at tuples=%d", tuples))
		}
		rdb.Close()
		os.RemoveAll(dir)

		coldMS := float64(coldD) / float64(time.Millisecond)
		recoverMS := float64(recoverD) / float64(time.Millisecond)
		t.AddRow(tuples, objects, tail, coldMS, recoverMS,
			ratio(coldMS, recoverMS), equal)
	}
	return t
}
