package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gsv/internal/core"
	"gsv/internal/oem"
	"gsv/internal/store"
	"gsv/internal/workload"
)

// e16ReadMix is one serving read against a consistent state: a point
// lookup of a tuple, its edge list, and each field value — the delegate
// fetch pattern of a warehouse query-back, small enough that its
// uncontended latency is dominated by anything that makes it wait.
func e16ReadMix(rd store.Reader, tuple oem.OID) {
	o, err := rd.Get(tuple)
	if err != nil {
		return // removed by churn; the read still measured the traversal
	}
	for _, c := range o.Set {
		if _, err := rd.Get(c); err != nil {
			return
		}
	}
}

// e16P99 returns the 99th-percentile of the pooled samples.
func e16P99(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[(len(samples)*99)/100]
}

// E16SnapshotReadInterference measures what the MVCC read path buys a
// serving tier: read p99 while maintenance churns, before and after.
//
// Both legs run the E12 multi-view workload — ApplyBatch group-commits
// chunks of 32 updates through the screening scheduler — with reader
// goroutines issuing point-read mixes throughout. The legs differ only
// in how a reader gets a consistent view:
//
//   - rwmutex: a shared RWMutex over the store, write-held across each
//     maintenance batch, read-held per read. This reproduces the
//     pre-MVCC serving pattern: consistent reads had to wait out the
//     in-flight batch (the store's own per-method lock alone let
//     readers observe torn mid-batch states).
//   - snapshot: readers pin a store snapshot per read and the writer is
//     untouched — consistency comes from the version, not a lock.
//
// The speedup column is the interference ratio (rwmutex p99 over
// snapshot p99); CI floors it at 2x (Makefile bench-gate). Memberships
// are compared across the legs, so the lock-free leg is also checked
// for correctness.
func E16SnapshotReadInterference(cfg Config) *Table {
	t := &Table{
		ID:    "E16",
		Title: "read p99 under maintenance churn: batch RWMutex vs MVCC snapshots",
		Caption: "PR 9 snapshot read path. E12's 10-view workload group-committed in " +
			"chunks of 32 while reader goroutines run point-read mixes. rwmutex = " +
			"shared lock, write-held per maintenance batch, read-held per read (the " +
			"consistent-read pattern MVCC replaces); snapshot = per-read store " +
			"snapshot pins, writer lock-free. speedup = rwmutex p99 / snapshot p99.",
		Headers: []string{"readers", "tuples", "updates", "rwmutex p99 us", "snapshot p99 us",
			"speedup", "reads/leg", "members equal"},
	}
	const chunk = 32
	const legBudget = 400 * time.Millisecond
	tuples := 200 * cfg.Scale

	for _, readers := range []int{4, 8} {
		run := func(useSnapshots bool) (time.Duration, int, map[string][]oem.OID) {
			s, sets, atoms := e12Fixture(tuples, cfg.Seed)
			reg := core.NewRegistry(s)
			for _, v := range e12Views {
				if _, err := reg.Define(v.stmt); err != nil {
					panic(err)
				}
			}
			reg.SetScreening(true)
			reg.SetParallelism(runtime.NumCPU())
			stream := workload.NewStream(s, workload.StreamConfig{
				Seed: cfg.Seed + 1, ValueRange: 60,
			}, sets, atoms)
			var batches [][]store.Update
			applied := 0
			for applied < cfg.Updates {
				var b []store.Update
				for len(b) < chunk && applied < cfg.Updates {
					us, ok := stream.Next()
					if !ok {
						break
					}
					b = append(b, us...)
					applied++
				}
				if len(b) == 0 {
					break
				}
				batches = append(batches, b)
			}
			// Read targets: the tuple sets of both relations. Some are
			// removed by churn mid-run; the read mix tolerates that.
			targets := make([]oem.OID, 0, len(sets))
			for _, oid := range sets {
				if o, err := s.Get(oid); err == nil && o.Label == "tuple" {
					targets = append(targets, oid)
				}
			}

			var mu sync.RWMutex // the rwmutex leg's shared lock
			var stop atomic.Bool
			var wg sync.WaitGroup
			results := make([][]time.Duration, readers)

			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					samples := make([]time.Duration, 0, 1<<14)
					for i := 0; !stop.Load(); i++ {
						tuple := targets[(r*7919+i)%len(targets)]
						t0 := time.Now()
						if useSnapshots {
							snap := s.Snapshot()
							e16ReadMix(snap, tuple)
							snap.Close()
						} else {
							mu.RLock()
							e16ReadMix(s, tuple)
							mu.RUnlock()
						}
						samples = append(samples, time.Since(t0))
					}
					results[r] = samples
				}(r)
			}

			// Writer: cycle the batch list through ApplyBatch until the
			// leg budget is spent — steady maintenance churn for the
			// readers to interfere with.
			deadline := time.Now().Add(legBudget)
			for time.Now().Before(deadline) {
				for _, b := range batches {
					if !useSnapshots {
						mu.Lock()
					}
					err := reg.ApplyBatch(b)
					if !useSnapshots {
						mu.Unlock()
					}
					if err != nil {
						panic(err)
					}
				}
			}
			stop.Store(true)
			wg.Wait()

			var pooled []time.Duration
			for _, rs := range results {
				pooled = append(pooled, rs...)
			}
			members := map[string][]oem.OID{}
			for _, v := range e12Views {
				ms, err := reg.Evaluate(v.name)
				if err != nil {
					panic(err)
				}
				members[v.name] = ms
			}
			return e16P99(pooled), len(pooled), members
		}

		lockP99, lockReads, lockM := run(false)
		snapP99, snapReads, snapM := run(true)

		equal := true
		for _, v := range e12Views {
			a, b := lockM[v.name], snapM[v.name]
			if len(a) != len(b) {
				equal = false
				break
			}
			for i := range a {
				if a[i] != b[i] {
					equal = false
					break
				}
			}
		}
		if !equal {
			panic(fmt.Sprintf("E16: memberships diverged at readers=%d", readers))
		}

		lockUS := float64(lockP99.Microseconds())
		snapUS := float64(snapP99.Microseconds())
		t.AddRow(readers, tuples, cfg.Updates,
			lockUS, snapUS, ratio(lockUS, snapUS),
			min(lockReads, snapReads), equal)
	}
	return t
}
