package experiments

import (
	"gsv/internal/dataguide"
	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/store"
	"gsv/internal/workload"
)

// E10DataGuide measures the structural-summary payoff the paper gestures
// at in Section 5.2 by citing DataGuides [GW97]: wildcard path expressions
// evaluated on the guide touch states proportional to the database's
// *structure*, not its cardinality.
func E10DataGuide(cfg Config) *Table {
	t := &Table{
		ID:    "E10",
		Title: "DataGuide [GW97] evaluation vs data traversal for wildcard paths",
		Caption: "Section 5.2: path knowledge as 'a type of schema'. A strong " +
			"DataGuide summarizes every label path once; evaluating *.age on the " +
			"guide is independent of tuple count, while a data traversal scales " +
			"with it. Same answers (asserted).",
		Headers: []string{"tuples", "objects", "guide nodes", "guide us/eval", "data us/eval", "speedup"},
	}
	expr := pathexpr.MustParse("*.age")
	for _, tuples := range []int{100, 400, 1600} {
		tuples *= cfg.Scale
		s := store.NewDefault()
		workload.RelationLike(s, workload.RelationConfig{
			Relations: 2, TuplesPerRelation: tuples, FieldsPerTuple: 3, Seed: cfg.Seed,
		})
		g, err := dataguide.Build(s, "REL")
		if err != nil {
			panic(err)
		}
		graph := pathexpr.GraphFunc(func(oid oem.OID) []pathexpr.Neighbor {
			kids, err := s.Children(oid)
			if err != nil {
				return nil
			}
			var nbs []pathexpr.Neighbor
			for _, c := range kids {
				lbl, err := s.Label(c)
				if err != nil || oem.IsGroupingLabel(lbl) {
					continue
				}
				nbs = append(nbs, pathexpr.Neighbor{Label: lbl, To: c})
			}
			return nbs
		})
		// Sanity: identical answers.
		guideAns := g.Eval(expr)
		dataAns := pathexpr.Eval(graph, []oem.OID{"REL"}, expr)
		if !oem.SameMembers(guideAns, dataAns) {
			panic("E10: guide and data answers differ")
		}
		iters := max(10, cfg.Updates/10)
		guideD := timed(func() {
			for i := 0; i < iters; i++ {
				g.Eval(expr)
			}
		})
		dataD := timed(func() {
			for i := 0; i < iters; i++ {
				pathexpr.Eval(graph, []oem.OID{"REL"}, expr)
			}
		})
		guideUS := float64(guideD.Microseconds()) / float64(iters)
		dataUS := float64(dataD.Microseconds()) / float64(iters)
		t.AddRow(tuples, s.Len(), g.Size(), guideUS, dataUS, ratio(dataUS, guideUS))
	}
	return t
}
