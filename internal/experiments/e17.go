package experiments

import (
	"fmt"
	"net"
	"sort"
	"time"

	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/warehouse"
	"gsv/internal/workload"
)

// e17Query is the CPU-bound read the overload experiment drives: a full
// SELECT evaluated against the base store on every request, so offered
// load beyond the host's cores queues real work rather than sleeping.
// The predicate never matches, so the whole cost is the server-side
// scan — response frames stay tiny and the clients' decode cost cannot
// become the bottleneck being measured.
const e17Query = "SELECT REL.r0.tuple X WHERE X.age > 100000"

// e17VerifyQuery is the selective query the post-run correctness check
// compares against a local evaluation (a never-matching answer would
// prove nothing).
const e17VerifyQuery = "SELECT REL.r0.tuple X WHERE X.age > 30"

// e17Loads are the offered-load multipliers: clients = multiplier x
// e17BaseClients, each keeping one request in flight (closed loop).
var e17Loads = []int{1, 4, 16}

const e17BaseClients = 4

// E17OverloadShedding measures what admission control buys a server
// under overload (docs/WAREHOUSE.md "Overload & graceful drain"): the
// same budgeted read workload is driven at 1x/4x/16x offered load
// against an unprotected server (raw) and one with the weighted
// admission semaphore (shed). Goodput counts only answers that arrived
// within the client's stamped deadline budget — an unprotected server
// still answers everything under overload, but late, so its goodput
// collapses while the protected server sheds the excess cheaply and
// keeps admitted reads fast.
func E17OverloadShedding(cfg Config) *Table {
	t := &Table{
		ID:    "E17",
		Title: "overload shedding: goodput and p99 vs offered load, raw vs admission-controlled",
		Caption: "Overload protection (docs/WAREHOUSE.md). Closed-loop clients drive " +
			"budget-stamped CPU-bound queries at 1x/4x/16x offered load against an " +
			"unprotected server (raw) and one with the weighted admission semaphore " +
			"(shed). good/s counts answers within the budget (goodput); p99 is over " +
			"all answers that arrived. The budget is calibrated to 8x the measured " +
			"solo query latency, so the numbers transfer across hosts. speedup is " +
			"shed goodput over raw goodput at the same load (raw clamped to >=1/s " +
			"so a fully-collapsed baseline stays finite) — the 16x row is the " +
			"benchgate-enforced claim, alongside a ceiling on the shed p99.",
		Headers: []string{"run", "clients", "budget", "good/s", "p99 ms", "sheds", "speedup"},
	}
	tuples := 600 * cfg.Scale
	if cfg.Updates < 200 {
		tuples = 150 * cfg.Scale
	}
	s, _, _ := e12Fixture(tuples, cfg.Seed)
	src := warehouse.NewSource("primary", s, "REL", warehouse.Level2, warehouse.NewTransport(0))
	src.DrainReports()

	solo := e17Calibrate(src)
	budget := time.Duration(8 * float64(solo))
	if budget < 5*time.Millisecond {
		budget = 5 * time.Millisecond
	}
	if budget > 80*time.Millisecond {
		budget = 80 * time.Millisecond
	}
	window := 300 * time.Millisecond
	if cfg.Updates >= 200 {
		window = 700 * time.Millisecond
	}

	for _, load := range e17Loads {
		clients := e17BaseClients * load
		raw := e17Run(cfg, src, nil, clients, budget, window)
		// One weight-4 query admitted at a time: the strictest policy
		// keeps an admitted read's latency near solo on any core count
		// (extra cores only help the shed/queue machinery), so the
		// within-budget claim transfers across hosts.
		admission := warehouse.NewAdmissionController(warehouse.AdmissionConfig{
			MaxInflight: 4,
			MaxQueue:    8,
			QueueWait:   budget / 2,
			MinSlack:    budget / 2,
		})
		shed := e17Run(cfg, src, admission, clients, budget, window)
		if load == 16 && shed.Sheds == 0 {
			panic("E17: admission-controlled server shed nothing at 16x load")
		}
		budgetCell := fmt.Sprintf("%.1fms", float64(budget.Microseconds())/1e3)
		t.AddRow(fmt.Sprintf("%dx-raw", load), clients, budgetCell,
			fmt.Sprintf("%.0f", raw.Goodput()), fmt.Sprintf("%.2fms", raw.P99()*1e3),
			raw.Sheds, "-")
		rawGood := raw.Goodput()
		if rawGood < 1 {
			rawGood = 1
		}
		t.AddRow(fmt.Sprintf("%dx-shed", load), clients, budgetCell,
			fmt.Sprintf("%.0f", shed.Goodput()), fmt.Sprintf("%.2fms", shed.P99()*1e3),
			shed.Sheds, ratio(shed.Goodput(), rawGood))
	}

	// Correctness: an idle protected server answers the experiment's
	// query exactly like a local evaluation.
	e17Verify(src)
	return t
}

// e17Calibrate measures the solo (uncontended) latency of the
// experiment's query over the wire: the median of 15 runs against a
// dedicated server with one client.
func e17Calibrate(src *warehouse.Source) time.Duration {
	server := warehouse.NewServer(src)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go func() { _ = server.Serve(ln) }()
	defer server.Close()
	remote, err := warehouse.Dial("primary", ln.Addr().String(), warehouse.NewTransport(0))
	if err != nil {
		panic(err)
	}
	defer remote.Close()
	q := query.MustParse(e17Query)
	var samples []time.Duration
	for i := 0; i < 15; i++ {
		start := time.Now()
		if _, err := remote.FetchQuery(q); err != nil {
			panic(err)
		}
		samples = append(samples, time.Since(start))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[len(samples)/2]
}

// e17Run drives one leg: a fresh server over src (with or without
// admission control) under clients closed-loop budgeted readers.
func e17Run(cfg Config, src *warehouse.Source, admission *warehouse.AdmissionController,
	clients int, budget time.Duration, window time.Duration) workload.BudgetedReadResult {
	server := warehouse.NewServer(src)
	server.Admission = admission
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go func() { _ = server.Serve(ln) }()
	defer server.Close()
	return workload.RunBudgetedReadLoad(workload.BudgetedReadConfig{
		Addrs:       []string{ln.Addr().String()},
		Clients:     clients,
		Duration:    window,
		Warmup:      150 * time.Millisecond,
		Queries:     []string{e17Query},
		Budget:      budget,
		ShedBackoff: 4 * budget,
		Seed:        cfg.Seed,
	})
}

// e17Verify cross-checks the wire answer of a protected idle server
// against a local evaluation, and that the typed shed error never
// leaks into a normal answer path.
func e17Verify(src *warehouse.Source) {
	server := warehouse.NewServer(src)
	server.Admission = warehouse.NewAdmissionController(warehouse.AdmissionConfig{
		MaxInflight: 16, MaxQueue: 16,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go func() { _ = server.Serve(ln) }()
	defer server.Close()
	remote, err := warehouse.Dial("primary", ln.Addr().String(), warehouse.NewTransport(0))
	if err != nil {
		panic(err)
	}
	defer remote.Close()
	got, err := remote.FetchQuery(query.MustParse(e17VerifyQuery))
	if err != nil {
		panic(fmt.Sprintf("E17: verify query failed: %v", err))
	}
	want, err := src.FetchQuery(query.MustParse(e17VerifyQuery))
	if err != nil {
		panic(err)
	}
	gotOIDs := make([]oem.OID, 0, len(got))
	for _, o := range got {
		gotOIDs = append(gotOIDs, o.OID)
	}
	wantOIDs := make([]oem.OID, 0, len(want))
	for _, o := range want {
		wantOIDs = append(wantOIDs, o.OID)
	}
	if !oem.SameMembers(gotOIDs, wantOIDs) {
		panic(fmt.Sprintf("E17: wire answer diverged: %v != %v", gotOIDs, wantOIDs))
	}
}
