// Package experiments turns the paper's qualitative performance arguments
// into measured tables. The paper (ICDE 1998) has no quantitative
// evaluation section; its claims live in the Section 4.4 discussion, the
// Section 5.1 warehouse scenarios and the Section 5.2 caching example.
// Each experiment here is a parameter sweep producing a formatted table;
// cmd/benchviews prints them all and EXPERIMENTS.md records a run.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's result: a title, a caption tying it back to
// the paper, column headers and rows of formatted cells.
type Table struct {
	ID      string
	Title   string
	Caption string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	if t.Caption != "" {
		fmt.Fprintf(w, "%s\n", wrap(t.Caption, 78))
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title)
	if t.Caption != "" {
		fmt.Fprintf(w, "%s\n\n", t.Caption)
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Headers, " | "))
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	fmt.Fprintln(w)
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}

func wrap(s string, width int) string {
	words := strings.Fields(s)
	var b strings.Builder
	line := 0
	for i, w := range words {
		if line+len(w)+1 > width && line > 0 {
			b.WriteByte('\n')
			line = 0
		} else if i > 0 {
			b.WriteByte(' ')
			line++
		}
		b.WriteString(w)
		line += len(w)
	}
	return b.String()
}

// Config bounds experiment sizes so the suite stays laptop-friendly. The
// Small preset keeps the full sweep under a couple of seconds for tests;
// Default is what cmd/benchviews runs.
type Config struct {
	// Scale multiplies workload sizes. 1 = the default sweep.
	Scale int
	// Updates is the number of updates per measured stream.
	Updates int
	// Seed drives all generators.
	Seed int64
}

// DefaultConfig is the cmd/benchviews configuration.
func DefaultConfig() Config { return Config{Scale: 1, Updates: 400, Seed: 42} }

// SmallConfig keeps experiment tests fast.
func SmallConfig() Config { return Config{Scale: 1, Updates: 60, Seed: 42} }

// All runs every experiment and returns the tables in order.
func All(cfg Config) []*Table {
	return []*Table{
		E1IncrementalVsRecompute(cfg),
		E2ParentIndexAblation(cfg),
		E3RelationalBaseline(cfg),
		E4ReportingLevels(cfg),
		E5Caching(cfg),
		E6Swizzling(cfg),
		E7GeneralizedViews(cfg),
		E8BulkUpdateIntent(cfg),
		E9ClusterSharing(cfg),
		E10DataGuide(cfg),
		E11WireValidation(cfg),
		E12ParallelBatchedMaintenance(cfg),
		E13CrashRecovery(cfg),
		E14ReplicaScaling(cfg),
		E15ShardScaling(cfg),
	}
}
