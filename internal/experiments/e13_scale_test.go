package experiments

import (
	"os"
	"testing"
)

func TestE13DefaultScale(t *testing.T) {
	if os.Getenv("E13_FULL") == "" {
		t.Skip("set E13_FULL=1 for the full-scale sweep")
	}
	tb := E13CrashRecovery(DefaultConfig())
	tb.Write(os.Stdout)
}
