package experiments

import (
	"fmt"

	"gsv/internal/core"
	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/workload"
)

// E8BulkUpdateIntent measures the paper's final Section 6 open problem:
// maintenance when the update *query* is known, not just the updated
// objects. A bulk raise for one selector is applied while several views
// are registered; intent screening skips the views the raise provably
// cannot touch, and the table compares individual-update maintenance work
// with and without the intent.
func E8BulkUpdateIntent(cfg Config) *Table {
	t := &Table{
		ID:    "E8",
		Title: "update-intent screening for bulk updates (Section 6)",
		Caption: "'We may know that the salary of each person named Mark was " +
			"increased by $1000. Then a view containing the salary of persons " +
			"named John should be unaffected.' One bulk raise, several views; " +
			"with the intent, unaffected views process zero individual updates.",
		Headers: []string{"view", "screening", "reason", "updates processed"},
	}
	build := func() (*store.Store, *core.Registry, core.BulkUpdate) {
		s := store.NewDefault()
		n := 40 * cfg.Scale
		var people []oem.OID
		for i := 0; i < n; i++ {
			name := "Mark"
			if i%2 == 1 {
				name = "John"
			}
			nm := oem.OID(fmt.Sprintf("N%d", i))
			sal := oem.OID(fmt.Sprintf("S%d", i))
			age := oem.OID(fmt.Sprintf("A%d", i))
			s.MustPut(oem.NewAtom(nm, "name", oem.String_(name)))
			s.MustPut(oem.NewTypedAtom(sal, "salary", "dollar", oem.Int(int64(40000+i*100))))
			s.MustPut(oem.NewAtom(age, "age", oem.Int(int64(25+i%40))))
			p := oem.OID(fmt.Sprintf("P%d", i))
			s.MustPut(oem.NewSet(p, "person", nm, sal, age))
			people = append(people, p)
		}
		s.MustPut(oem.NewSet("ROOT", "people", people...))
		r := core.NewRegistry(s)
		for _, stmt := range []string{
			"define mview JOHNS as: SELECT ROOT.person X WHERE X.name = 'John'",
			"define mview YOUNG as: SELECT ROOT.person X WHERE X.age < 35",
			"define mview RICH as: SELECT ROOT.person X WHERE X.salary > 42000",
		} {
			if _, err := r.Define(stmt); err != nil {
				panic(err)
			}
		}
		bu := core.BulkUpdate{
			Selector: core.SimpleDef{
				Entry:    "ROOT",
				SelPath:  pathexpr.MustParsePath("person"),
				CondPath: pathexpr.MustParsePath("name"),
				Cond:     core.CondTest{Op: query.OpEq, Literal: oem.String_("Mark")},
			},
			EffectPath: pathexpr.MustParsePath("salary"),
		}
		return s, r, bu
	}

	raise := func(v oem.Atom) oem.Atom { return oem.Int(v.I + 1000) }

	// Without intent: every view processes every individual update.
	{
		s, r, bu := build()
		before := s.Seq()
		if _, err := core.ApplyBulk(s, bu, raise); err != nil {
			panic(err)
		}
		updates := s.LogSince(before)
		if err := r.ApplyAll(updates); err != nil {
			panic(err)
		}
		for _, name := range r.Names() {
			t.AddRow(name, "off", "-", len(updates))
		}
	}

	// With intent: screened views process nothing.
	{
		_, r, bu := build()
		outcomes, err := r.ApplyBulk(bu, raise, true)
		if err != nil {
			panic(err)
		}
		for _, oc := range outcomes {
			t.AddRow(oc.View, "on", oc.Reason.String(), oc.Applied)
		}
	}
	return t
}

// E9ClusterSharing measures the Section 3.2 view-cluster note: "if a
// remote site defines several views that share common objects, it may end
// up with multiple delegates for the same base object. The notion of a
// view cluster avoids this." Three nested selections over the same
// relation, clustered vs separate.
func E9ClusterSharing(cfg Config) *Table {
	t := &Table{
		ID:    "E9",
		Title: "view clusters: shared delegates vs one delegate per view",
		Caption: "Section 3.2: overlapping views in a cluster share delegates " +
			"with reference counting; separate materialized views duplicate them.",
		Headers: []string{"views", "total memberships", "separate delegates", "cluster delegates", "saving"},
	}
	for _, tuples := range []int{50, 200} {
		tuples *= cfg.Scale
		s := store.NewDefault()
		workload.RelationLike(s, workload.RelationConfig{
			Relations: 1, TuplesPerRelation: tuples, FieldsPerTuple: 2, Seed: cfg.Seed, AgeRange: 100,
		})
		queries := []string{
			"SELECT REL.r0.tuple X WHERE X.age >= 0",
			"SELECT REL.r0.tuple X WHERE X.age >= 25",
			"SELECT REL.r0.tuple X WHERE X.age >= 50",
			"SELECT REL.r0.tuple X WHERE X.age >= 75",
		}
		cl := core.NewCluster("CL", s, s)
		total := 0
		for i, qs := range queries {
			name := oem.OID(fmt.Sprintf("CV%d", i))
			if err := cl.AddView(name, query.MustParse(qs)); err != nil {
				panic(err)
			}
			ms, err := cl.Members(name)
			if err != nil {
				panic(err)
			}
			total += len(ms)
		}
		separate := total // one delegate per (view, member) pair
		shared := cl.DelegateCount()
		t.AddRow(len(queries), total, separate, shared,
			fmt.Sprintf("%.0f%%", 100*(1-float64(shared)/float64(max(1, separate)))))
	}
	return t
}
