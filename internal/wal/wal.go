package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gsv/internal/faults"
	"gsv/internal/store"
)

// SyncPolicy says when appended records are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append (batch appends fsync once per
	// batch). Nothing acknowledged is ever lost; slowest.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs when at least Options.Interval has elapsed
	// since the last fsync, amortizing the flush over many appends. A
	// crash loses at most one interval of acknowledged updates.
	SyncInterval
	// SyncNever leaves flushing to the OS. A crash can lose everything
	// since the last kernel writeback; useful for benchmarks and tests.
	SyncNever
)

// ParseSyncPolicy maps the CLI spellings to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or never)", s)
	}
}

// String names the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

const (
	segPrefix = "wal-"
	segSuffix = ".seg"
	// defaultSegmentBytes rolls segments at 4 MiB. Rolling bounds the
	// work of tail repair and lets checkpoint GC reclaim space in whole
	// files.
	defaultSegmentBytes = 4 << 20
	// defaultInterval is the SyncInterval flush period.
	defaultInterval = 50 * time.Millisecond
)

// Options configures a Log.
type Options struct {
	// Policy is the fsync policy; default SyncAlways.
	Policy SyncPolicy
	// Interval is the SyncInterval flush period; default 50ms.
	Interval time.Duration
	// SegmentBytes rolls to a new segment once the active one exceeds
	// this size; default 4 MiB.
	SegmentBytes int64
	// Crash, if set, injects crash points at durability boundaries
	// (see faults.CrashPoints). Nil in production.
	Crash *faults.CrashPoints
	// Metrics, if set, receives wal counters. Nil is fine.
	Metrics *Metrics
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = defaultInterval
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	return o
}

func segName(firstSeq uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, firstSeq, segSuffix)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Log is an append-only, checksummed, segmented write-ahead log of
// store.Update records. Segments are named wal-<firstSeq>.seg by the
// sequence number of their first record; only the newest segment is ever
// written, so a crash can tear at most the newest segment's tail —
// OpenLog repairs it by truncating at the first bad record.
type Log struct {
	mu       sync.Mutex
	dir      string
	opts     Options
	seg      *os.File // active segment, opened for append
	segFirst uint64   // first seq in the active segment (0 = empty segment named by next append)
	segSize  int64
	lastSeq  uint64 // highest seq appended or replayed
	lastSync time.Time
	dirty    bool // unsynced bytes in the active segment
	closed   bool
	buf      []byte // reusable encode buffer
}

// OpenLog opens (creating if needed) the write-ahead log in dir, repairs
// a torn tail in the newest segment, and positions the log for
// appending. dir must exist.
func OpenLog(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	l := &Log{dir: dir, opts: opts}
	segs, err := l.segments()
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		lastSeq, size, err := l.repairTail(last)
		if err != nil {
			return nil, err
		}
		// Scan earlier segments only for their record count bound: the
		// newest record overall lives in the newest non-empty segment.
		if lastSeq == 0 {
			// The newest segment repaired down to nothing; fall back to
			// scanning backwards for the last intact record.
			for i := len(segs) - 2; i >= 0 && lastSeq == 0; i-- {
				lastSeq, err = lastSeqOf(filepath.Join(dir, segName(segs[i])))
				if err != nil {
					return nil, err
				}
			}
		}
		l.lastSeq = lastSeq
		f, err := os.OpenFile(filepath.Join(dir, segName(last)), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: reopening segment: %w", err)
		}
		l.seg = f
		l.segFirst = last
		l.segSize = size
	}
	return l, nil
}

// segments lists the first-seqs of all segments in ascending order.
func (l *Log) segments() ([]uint64, error) {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", l.dir, err)
	}
	var segs []uint64
	for _, e := range ents {
		if n, ok := parseSegName(e.Name()); ok {
			segs = append(segs, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// repairTail scans the newest segment and truncates it at the first
// record that fails validation — the torn-write case — returning the
// last intact seq in the segment (0 if none) and the repaired size.
func (l *Log) repairTail(firstSeq uint64) (uint64, int64, error) {
	path := filepath.Join(l.dir, segName(firstSeq))
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: reading segment: %w", err)
	}
	var lastSeq uint64
	good := 0
	for good < len(data) {
		u, n, err := decodeRecord(data[good:])
		if err != nil {
			break // torn or corrupt tail: truncate here
		}
		lastSeq = u.Seq
		good += n
	}
	if good < len(data) {
		if err := os.Truncate(path, int64(good)); err != nil {
			return 0, 0, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if l.opts.Metrics != nil {
			l.opts.Metrics.TornTruncations.Inc()
			l.opts.Metrics.TruncatedBytes.Add(uint64(len(data) - good))
		}
	}
	return lastSeq, int64(good), nil
}

// lastSeqOf returns the seq of the last intact record in a sealed
// segment (sealed segments are immutable, so every record should be
// intact; corruption there is still tolerated by stopping early).
func lastSeqOf(path string) (uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("wal: reading segment: %w", err)
	}
	var lastSeq uint64
	off := 0
	for off < len(data) {
		u, n, err := decodeRecord(data[off:])
		if err != nil {
			break
		}
		lastSeq = u.Seq
		off += n
	}
	return lastSeq, nil
}

// LastSeq returns the highest sequence number durably appended (or found
// during open). Zero means the log is empty.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// Append writes the updates as one batch: all records are framed, written
// to the active segment, and — under SyncAlways — fsynced once. Updates
// must have strictly increasing, non-zero Seq above everything already in
// the log (they are a subsequence of a store's update log, so gaps are
// fine).
func (l *Log) Append(us ...store.Update) error {
	if len(us) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: append on closed log")
	}
	prev := l.lastSeq
	buf := l.buf[:0]
	for _, u := range us {
		if u.Seq <= prev {
			return fmt.Errorf("wal: append seq %d not above %d", u.Seq, prev)
		}
		prev = u.Seq
		var err error
		buf, err = appendRecord(buf, u)
		if err != nil {
			return err
		}
	}
	l.buf = buf
	l.opts.Crash.Crash("wal.append")
	if err := l.rollLocked(us[0].Seq); err != nil {
		return err
	}
	if _, err := l.seg.Write(buf); err != nil {
		return fmt.Errorf("wal: writing segment: %w", err)
	}
	l.segSize += int64(len(buf))
	l.lastSeq = prev
	l.dirty = true
	if m := l.opts.Metrics; m != nil {
		m.Appends.Add(uint64(len(us)))
		m.AppendedBytes.Add(uint64(len(buf)))
	}
	l.opts.Crash.Crash("wal.write")
	switch l.opts.Policy {
	case SyncAlways:
		return l.syncLocked()
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opts.Interval {
			return l.syncLocked()
		}
	}
	return nil
}

// rollLocked ensures an active segment exists, rolling to a new one when
// the current segment is over the size limit. nextSeq names the new
// segment.
func (l *Log) rollLocked(nextSeq uint64) error {
	if l.seg != nil && l.segSize < l.opts.SegmentBytes {
		return nil
	}
	if l.seg != nil {
		if err := l.syncLocked(); err != nil {
			return err
		}
		if err := l.seg.Close(); err != nil {
			return fmt.Errorf("wal: closing segment: %w", err)
		}
		if l.opts.Metrics != nil {
			l.opts.Metrics.Rolls.Inc()
		}
	}
	f, err := os.OpenFile(filepath.Join(l.dir, segName(nextSeq)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	l.seg = f
	l.segFirst = nextSeq
	l.segSize = 0
	if err := syncDir(l.dir); err != nil {
		return err
	}
	return nil
}

func (l *Log) syncLocked() error {
	if l.seg == nil || !l.dirty {
		return nil
	}
	if err := l.seg.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.dirty = false
	l.lastSync = time.Now()
	if l.opts.Metrics != nil {
		l.opts.Metrics.Fsyncs.Inc()
	}
	l.opts.Crash.Crash("wal.fsync")
	return nil
}

// Sync forces an fsync of the active segment regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

// Replay calls fn, in sequence order, with every record whose Seq is
// strictly greater than fromSeq. It reads the segment files directly, so
// it sees exactly what recovery after a crash would see.
func (l *Log) Replay(fromSeq uint64, fn func(store.Update) error) error {
	l.mu.Lock()
	segs, err := l.segments()
	dir := l.dir
	m := l.opts.Metrics
	l.mu.Unlock()
	if err != nil {
		return err
	}
	for i, first := range segs {
		// Segments strictly below fromSeq+1 whose successor also starts
		// at or below fromSeq+1 contain only replayed records; skip the
		// read entirely.
		if i+1 < len(segs) && segs[i+1] <= fromSeq+1 {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, segName(first)))
		if err != nil {
			return fmt.Errorf("wal: reading segment: %w", err)
		}
		off := 0
		for off < len(data) {
			u, n, err := decodeRecord(data[off:])
			if err != nil {
				if i == len(segs)-1 {
					break // unrepaired torn tail: recovery stops here
				}
				return fmt.Errorf("wal: segment %s offset %d: %w", segName(first), off, err)
			}
			off += n
			if u.Seq <= fromSeq {
				continue
			}
			if m != nil {
				m.Replayed.Inc()
			}
			if err := fn(u); err != nil {
				return err
			}
		}
	}
	return nil
}

// TruncateThrough deletes whole segments that contain no record with
// Seq > seq — the segments a checkpoint at seq has made obsolete. The
// active segment is never deleted.
func (l *Log) TruncateThrough(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs, err := l.segments()
	if err != nil {
		return err
	}
	removed := false
	for i, first := range segs {
		if i == len(segs)-1 {
			break // active segment stays
		}
		// All records in segment i have Seq < segs[i+1]; the segment is
		// obsolete iff that upper bound is covered by the checkpoint.
		if segs[i+1] > seq+1 {
			break
		}
		if err := os.Remove(filepath.Join(l.dir, segName(first))); err != nil {
			return fmt.Errorf("wal: removing obsolete segment: %w", err)
		}
		removed = true
		if l.opts.Metrics != nil {
			l.opts.Metrics.SegmentsDeleted.Inc()
		}
	}
	if removed {
		return syncDir(l.dir)
	}
	return nil
}

// Close fsyncs and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.seg == nil {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.seg.Close(); err == nil {
		err = cerr
	}
	l.seg = nil
	return err
}

// syncDir fsyncs a directory so renames and segment creates/removes are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: opening dir for fsync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: fsync dir: %w", err)
	}
	return nil
}
