package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"gsv/internal/faults"
	"gsv/internal/oem"
	"gsv/internal/store"
)

func upd(seq uint64, kind store.UpdateKind) store.Update {
	u := store.Update{Seq: seq, Kind: kind, N1: "R", N2: oem.OID("child")}
	if kind == store.UpdateCreate {
		u.Object = oem.NewAtom("A", "x", oem.Int(int64(seq)))
		u.N1 = "A"
	}
	if kind == store.UpdateModify {
		u.Old = oem.Int(1)
		u.New = oem.Int(int64(seq))
	}
	return u
}

func replayAll(t *testing.T, l *Log, from uint64) []store.Update {
	t.Helper()
	var got []store.Update
	if err := l.Replay(from, func(u store.Update) error { got = append(got, u); return nil }); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func TestLogAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	want := []store.Update{
		upd(1, store.UpdateCreate),
		upd(3, store.UpdateInsert), // gaps are fine: base updates are a subsequence
		upd(4, store.UpdateModify),
		upd(9, store.UpdateDelete),
	}
	if err := l.Append(want[:2]...); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(want[2:]...); err != nil {
		t.Fatal(err)
	}
	if l.LastSeq() != 9 {
		t.Fatalf("LastSeq = %d, want 9", l.LastSeq())
	}
	got := replayAll(t, l, 0)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq || got[i].Kind != want[i].Kind {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if got[0].Object == nil || !got[0].Object.Atom.Equal(oem.Int(1)) {
		t.Fatalf("create record lost its object: %+v", got[0])
	}
	if tail := replayAll(t, l, 3); len(tail) != 2 || tail[0].Seq != 4 {
		t.Fatalf("Replay(3) = %+v", tail)
	}
	// Non-monotonic appends are rejected.
	if err := l.Append(upd(9, store.UpdateInsert)); err == nil {
		t.Fatal("append of duplicate seq succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen resumes the seq position.
	l2, err := OpenLog(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != 9 {
		t.Fatalf("reopened LastSeq = %d, want 9", l2.LastSeq())
	}
}

func TestLogTornTailRepair(t *testing.T) {
	dir := t.TempDir()
	m := NewMetrics()
	l, err := OpenLog(dir, Options{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if err := l.Append(upd(seq, store.UpdateInsert)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Tear mid-record: drop the last 3 bytes.
	if err := os.WriteFile(seg, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenLog(dir, Options{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != 4 {
		t.Fatalf("LastSeq after torn tail = %d, want 4", l2.LastSeq())
	}
	if got := replayAll(t, l2, 0); len(got) != 4 {
		t.Fatalf("replayed %d records after repair, want 4", len(got))
	}
	if m.TornTruncations.Value() == 0 {
		t.Fatal("torn truncation not counted")
	}
	// The log accepts appends after repair, reusing the repaired seq.
	if err := l2.Append(upd(5, store.UpdateInsert)); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, l2, 0); len(got) != 5 || got[4].Seq != 5 {
		t.Fatalf("post-repair append not replayed: %+v", got)
	}
}

func TestLogCorruptMiddleRecordStopsTail(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := l.Append(upd(seq, store.UpdateInsert)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	seg := filepath.Join(dir, segName(1))
	data, _ := os.ReadFile(seg)
	// Flip a byte inside the second record's payload.
	data[len(data)/2] ^= 0xff
	os.WriteFile(seg, data, 0o644)
	l2, err := OpenLog(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	// Everything from the corrupt record on is discarded.
	if got := replayAll(t, l2, 0); len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("replay after mid-corruption = %+v, want just seq 1", got)
	}
}

func TestLogSegmentRollAndTruncate(t *testing.T) {
	dir := t.TempDir()
	m := NewMetrics()
	// Tiny segments force a roll on nearly every append.
	l, err := OpenLog(dir, Options{SegmentBytes: 64, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for seq := uint64(1); seq <= 10; seq++ {
		if err := l.Append(upd(seq, store.UpdateInsert)); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := l.segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %v", segs)
	}
	if m.Rolls.Value() == 0 {
		t.Fatal("rolls not counted")
	}
	if err := l.TruncateThrough(7); err != nil {
		t.Fatal(err)
	}
	after, _ := l.segments()
	if len(after) >= len(segs) {
		t.Fatalf("TruncateThrough removed nothing: %v -> %v", segs, after)
	}
	// Records above 7 survive.
	got := replayAll(t, l, 7)
	if len(got) != 3 || got[0].Seq != 8 {
		t.Fatalf("tail after truncate = %+v", got)
	}
}

func TestCheckpointRoundTripAndFallback(t *testing.T) {
	dir := t.TempDir()
	mgr, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	if c, err := mgr.LatestCheckpoint(); err != nil || c != nil {
		t.Fatalf("empty dir LatestCheckpoint = %v, %v", c, err)
	}
	var w1 CheckpointWriter
	w1.Add("store", []byte("alpha"))
	w1.Add("views", []byte(`{"v":1}`))
	if err := mgr.WriteCheckpoint(10, &w1); err != nil {
		t.Fatal(err)
	}
	var w2 CheckpointWriter
	w2.Add("store", []byte("beta"))
	w2.AddFunc("views", func(buf *bytes.Buffer) error { buf.WriteString(`{"v":2}`); return nil })
	if err := mgr.WriteCheckpoint(20, &w2); err != nil {
		t.Fatal(err)
	}
	// Old checkpoint pruned, newest wins.
	if _, err := os.Stat(filepath.Join(dir, ckptName(10))); !os.IsNotExist(err) {
		t.Fatal("old checkpoint not pruned")
	}
	c, err := mgr.LatestCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if c == nil || c.Seq != 20 {
		t.Fatalf("LatestCheckpoint = %+v", c)
	}
	if string(c.Section("store")) != "beta" || string(c.Section("views")) != `{"v":2}` {
		t.Fatalf("sections = %q / %q", c.Section("store"), c.Section("views"))
	}
	if c.Section("absent") != nil || c.HasSection("absent") {
		t.Fatal("phantom section")
	}
	// Corrupting the newest checkpoint falls back to an older valid one.
	var w3 CheckpointWriter
	w3.Add("store", []byte("gamma"))
	if err := mgr.WriteCheckpoint(30, &w3); err != nil {
		t.Fatal(err)
	}
	// WriteCheckpoint(30) pruned 20; recreate a valid 20 under it, then
	// corrupt 30.
	var w2b CheckpointWriter
	w2b.Add("store", []byte("beta"))
	if err := writeCheckpoint(dir, 20, &w2b, nil); err != nil {
		t.Fatal(err)
	}
	path30 := filepath.Join(dir, ckptName(30))
	data, _ := os.ReadFile(path30)
	data[len(data)-1] ^= 0xff
	os.WriteFile(path30, data, 0o644)
	mm := NewMetrics()
	mgr2, err := Open(dir, Options{Metrics: mm})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	c, err = mgr2.LatestCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if c == nil || c.Seq != 20 || string(c.Section("store")) != "beta" {
		t.Fatalf("fallback checkpoint = %+v", c)
	}
	if mm.CheckpointRejected.Value() != 1 {
		t.Fatalf("CheckpointRejected = %d", mm.CheckpointRejected.Value())
	}
}

func TestManagerSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	stray := filepath.Join(dir, ckptName(5)+".tmp")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(stray, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	mgr, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatal("stray .tmp survived Open")
	}
	if c, _ := mgr.LatestCheckpoint(); c != nil {
		t.Fatalf("temp file loaded as checkpoint: %+v", c)
	}
}

func TestCheckpointCrashPoints(t *testing.T) {
	// A crash at each boundary must leave the directory recoverable:
	// before the rename the old checkpoint wins; after it the new one does.
	cases := []struct {
		point   string
		wantSeq uint64
	}{
		{"ckpt.write", 10},
		{"ckpt.fsync", 10},
		{"ckpt.rename", 20},
		{"ckpt.gc", 20},
	}
	for _, tc := range cases {
		t.Run(tc.point, func(t *testing.T) {
			dir := t.TempDir()
			cp := faults.NewCrashPoints()
			mgr, err := Open(dir, Options{Crash: cp})
			if err != nil {
				t.Fatal(err)
			}
			var w CheckpointWriter
			w.Add("store", []byte("old"))
			if err := mgr.WriteCheckpoint(10, &w); err != nil {
				t.Fatal(err)
			}
			cp.Arm(tc.point, 1)
			crashed := func() (ok bool) {
				defer func() {
					if v := recover(); v != nil {
						_, ok = faults.IsCrash(v)
						if !ok {
							panic(v)
						}
					}
				}()
				var w2 CheckpointWriter
				w2.Add("store", []byte("new"))
				_ = mgr.WriteCheckpoint(20, &w2)
				return
			}()
			if !crashed {
				t.Fatalf("no crash at %s", tc.point)
			}
			mgr.Close()
			// "Restart": reopen and recover.
			mgr2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer mgr2.Close()
			c, err := mgr2.LatestCheckpoint()
			if err != nil {
				t.Fatal(err)
			}
			if c == nil || c.Seq != tc.wantSeq {
				t.Fatalf("after crash at %s, recovered checkpoint %+v, want seq %d", tc.point, c, tc.wantSeq)
			}
		})
	}
}

func TestWALCrashPoints(t *testing.T) {
	// Crash before the write: the record is lost, the log stays intact.
	dir := t.TempDir()
	cp := faults.NewCrashPoints()
	l, err := OpenLog(dir, Options{Crash: cp})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(upd(1, store.UpdateInsert)); err != nil {
		t.Fatal(err)
	}
	cp.Arm("wal.append", 1)
	func() {
		defer func() {
			if v := recover(); v != nil {
				if _, ok := faults.IsCrash(v); !ok {
					panic(v)
				}
			}
		}()
		_ = l.Append(upd(2, store.UpdateInsert))
	}()
	l2, err := OpenLog(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := replayAll(t, l2, 0); len(got) != 1 {
		t.Fatalf("after wal.append crash, %d records survive, want 1", len(got))
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, s := range []string{"always", "interval", "never"} {
		p, err := ParseSyncPolicy(s)
		if err != nil {
			t.Fatal(err)
		}
		if p.String() != s {
			t.Fatalf("round trip %q -> %q", s, p.String())
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
	// SyncNever still persists on Close.
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(upd(1, store.UpdateInsert)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, _ := OpenLog(dir, Options{})
	defer l2.Close()
	if l2.LastSeq() != 1 {
		t.Fatalf("SyncNever lost a closed-out record")
	}
}

func TestDecodeRecordRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}, // absurd length
		{0, 0, 0, 2, 0, 0, 0, 0, 'h', 'i'},   // bad crc
	}
	for _, c := range cases {
		if _, _, err := decodeRecord(c); err == nil {
			t.Errorf("decodeRecord(%v) succeeded", c)
		}
	}
	// Oversized length must be ErrCorrupt, not unexpected EOF, so tail
	// repair truncates instead of waiting for more bytes.
	_, _, err := decodeRecord([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized length: %v", err)
	}
}
