package wal

import "gsv/internal/obs"

// Metrics counts durability-layer activity. All fields are atomic
// instruments, safe to share with a live Log/Manager; Register exposes
// them on an obs.Registry under the gsv_wal_* / gsv_checkpoint_* names.
type Metrics struct {
	Appends            obs.Counter // records appended
	AppendedBytes      obs.Counter // framed bytes appended
	Fsyncs             obs.Counter // segment fsyncs issued
	Rolls              obs.Counter // segment rolls
	SegmentsDeleted    obs.Counter // segments reclaimed by checkpoint GC
	TornTruncations    obs.Counter // torn tails repaired at open
	TruncatedBytes     obs.Counter // bytes discarded by tail repair
	Replayed           obs.Counter // records replayed during recovery
	Checkpoints        obs.Counter // checkpoints published
	CheckpointFailures obs.Counter // checkpoint writes that failed
	CheckpointRejected obs.Counter // corrupt checkpoints skipped at recovery
	CheckpointBytes    obs.Counter // checkpoint body bytes written
	CheckpointSeconds  *obs.Histogram
	Recoveries         obs.Counter // recovery runs completed (set by callers)
	RecoverySeconds    *obs.Histogram
}

// NewMetrics returns a Metrics with its histograms allocated.
func NewMetrics() *Metrics {
	return &Metrics{
		CheckpointSeconds: obs.NewHistogram(obs.LatencyBuckets),
		RecoverySeconds:   obs.NewHistogram(obs.LatencyBuckets),
	}
}

// Register exposes the counters on reg, labeled by site (e.g. "db" for
// the embedded database, "warehouse" for the Section 5 warehouse).
func (m *Metrics) Register(reg *obs.Registry, site string) {
	ls := obs.L("site", site)
	reg.Help("gsv_wal_appends_total", "WAL records appended")
	reg.RegisterCounter("gsv_wal_appends_total", &m.Appends, ls)
	reg.Help("gsv_wal_appended_bytes_total", "framed WAL bytes appended")
	reg.RegisterCounter("gsv_wal_appended_bytes_total", &m.AppendedBytes, ls)
	reg.Help("gsv_wal_fsyncs_total", "WAL segment fsyncs")
	reg.RegisterCounter("gsv_wal_fsyncs_total", &m.Fsyncs, ls)
	reg.Help("gsv_wal_segment_rolls_total", "WAL segment rolls")
	reg.RegisterCounter("gsv_wal_segment_rolls_total", &m.Rolls, ls)
	reg.Help("gsv_wal_segments_deleted_total", "WAL segments reclaimed by checkpoint GC")
	reg.RegisterCounter("gsv_wal_segments_deleted_total", &m.SegmentsDeleted, ls)
	reg.Help("gsv_wal_torn_truncations_total", "torn WAL tails repaired at open")
	reg.RegisterCounter("gsv_wal_torn_truncations_total", &m.TornTruncations, ls)
	reg.Help("gsv_wal_truncated_bytes_total", "bytes discarded repairing torn WAL tails")
	reg.RegisterCounter("gsv_wal_truncated_bytes_total", &m.TruncatedBytes, ls)
	reg.Help("gsv_wal_replayed_total", "WAL records replayed during recovery")
	reg.RegisterCounter("gsv_wal_replayed_total", &m.Replayed, ls)
	reg.Help("gsv_checkpoint_writes_total", "checkpoints published")
	reg.RegisterCounter("gsv_checkpoint_writes_total", &m.Checkpoints, ls)
	reg.Help("gsv_checkpoint_failures_total", "checkpoint writes that failed")
	reg.RegisterCounter("gsv_checkpoint_failures_total", &m.CheckpointFailures, ls)
	reg.Help("gsv_checkpoint_rejected_total", "corrupt checkpoints skipped during recovery")
	reg.RegisterCounter("gsv_checkpoint_rejected_total", &m.CheckpointRejected, ls)
	reg.Help("gsv_checkpoint_bytes_total", "checkpoint body bytes written")
	reg.RegisterCounter("gsv_checkpoint_bytes_total", &m.CheckpointBytes, ls)
	reg.Help("gsv_checkpoint_seconds", "checkpoint publish latency")
	reg.RegisterHistogram("gsv_checkpoint_seconds", m.CheckpointSeconds, ls)
	reg.Help("gsv_recovery_total", "recovery runs completed")
	reg.RegisterCounter("gsv_recovery_total", &m.Recoveries, ls)
	reg.Help("gsv_recovery_seconds", "time to recover from checkpoint + WAL tail")
	reg.RegisterHistogram("gsv_recovery_seconds", m.RecoverySeconds, ls)
}
