package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Manager owns one durability directory: WAL segments plus checkpoint
// files, with the retention rule that the newest *valid* checkpoint wins
// and everything it covers is garbage. Callers append live updates to
// Log(), periodically write a checkpoint through WriteCheckpoint, and on
// restart call LatestCheckpoint + Log().Replay to rebuild state.
type Manager struct {
	dir  string
	opts Options
	log  *Log
}

// Open opens (creating if needed) the durability directory and its WAL,
// sweeping temp files a crash may have stranded.
func Open(dir string, opts Options) (*Manager, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			_ = os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	log, err := OpenLog(dir, opts)
	if err != nil {
		return nil, err
	}
	return &Manager{dir: dir, opts: opts, log: log}, nil
}

// Dir returns the durability directory.
func (m *Manager) Dir() string { return m.dir }

// Log returns the manager's write-ahead log.
func (m *Manager) Log() *Log { return m.log }

// LatestCheckpoint loads the newest checkpoint that validates, deleting
// nothing. It returns nil (no error) when no valid checkpoint exists —
// recovery then replays the WAL from the beginning. Corrupt checkpoints
// are skipped with their count recorded in Metrics.CheckpointRejected.
func (m *Manager) LatestCheckpoint() (*Checkpoint, error) {
	seqs, err := checkpointSeqs(m.dir)
	if err != nil {
		return nil, err
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		c, err := readCheckpoint(filepath.Join(m.dir, ckptName(seqs[i])), seqs[i])
		if err == nil {
			return c, nil
		}
		if errors.Is(err, ErrCorrupt) {
			if m.opts.Metrics != nil {
				m.opts.Metrics.CheckpointRejected.Inc()
			}
			continue // fall back to the previous checkpoint
		}
		return nil, err
	}
	return nil, nil
}

// WriteCheckpoint atomically publishes a checkpoint covering seq (every
// WAL record with Seq <= seq is reflected in the sections), then prunes:
// older checkpoint files are deleted and WAL segments wholly at or below
// seq are truncated. The WAL is fsynced first so the checkpoint never
// claims coverage the log cannot back after a crash rolls it back.
func (m *Manager) WriteCheckpoint(seq uint64, w *CheckpointWriter) error {
	start := time.Now()
	if err := m.log.Sync(); err != nil {
		return err
	}
	if err := writeCheckpoint(m.dir, seq, w, m.opts.Crash); err != nil {
		if m.opts.Metrics != nil {
			m.opts.Metrics.CheckpointFailures.Inc()
		}
		return err
	}
	if mm := m.opts.Metrics; mm != nil {
		mm.Checkpoints.Inc()
		mm.CheckpointBytes.Add(uint64(w.body.Len()))
		mm.CheckpointSeconds.ObserveSince(start)
	}
	// Pruning is best-effort bookkeeping: the checkpoint is already
	// durable, and anything left behind is re-collected next time.
	m.opts.Crash.Crash("ckpt.gc")
	seqs, err := checkpointSeqs(m.dir)
	if err != nil {
		return err
	}
	for _, s := range seqs {
		if s < seq {
			if err := os.Remove(filepath.Join(m.dir, ckptName(s))); err != nil {
				return fmt.Errorf("wal: removing old checkpoint: %w", err)
			}
		}
	}
	return m.log.TruncateThrough(seq)
}

// Close closes the WAL.
func (m *Manager) Close() error { return m.log.Close() }
