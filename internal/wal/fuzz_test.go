package wal

import (
	"testing"

	"gsv/internal/oem"
	"gsv/internal/store"
)

// FuzzDecodeRecord checks that the WAL record decoder never panics on
// arbitrary bytes (it is fed raw segment files after crashes), and that
// any record it accepts re-encodes to bytes it accepts again with the
// same sequence number — the property tail repair depends on.
func FuzzDecodeRecord(f *testing.F) {
	// Seed with real records and assorted corruptions.
	seed := [][]store.Update{
		{{Seq: 1, Kind: store.UpdateCreate, N1: "A", Object: oem.NewAtom("A", "x", oem.Int(7))}},
		{{Seq: 2, Kind: store.UpdateInsert, N1: "R", N2: "A"}},
		{{Seq: 3, Kind: store.UpdateModify, N1: "A", Old: oem.Int(7), New: oem.String_("hi")}},
		{{Seq: 4, Kind: store.UpdateDelete, N1: "R", N2: "A"}},
	}
	for _, us := range seed {
		buf, err := appendRecord(nil, us[0])
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		if len(buf) > 3 {
			f.Add(buf[:len(buf)-3]) // torn tail
			flipped := append([]byte(nil), buf...)
			flipped[len(flipped)/2] ^= 0xff
			f.Add(flipped) // bad crc
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		u, n, err := decodeRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		re, err := appendRecord(nil, u)
		if err != nil {
			t.Fatalf("accepted record failed to re-encode: %v", err)
		}
		u2, _, err := decodeRecord(re)
		if err != nil {
			t.Fatalf("re-encoded record failed to decode: %v", err)
		}
		if u2.Seq != u.Seq || u2.Kind != u.Kind || u2.N1 != u.N1 || u2.N2 != u.N2 {
			t.Fatalf("round trip changed record: %+v -> %+v", u, u2)
		}
	})
}
