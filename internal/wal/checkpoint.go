package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"gsv/internal/faults"
)

// Checkpoint file format:
//
//	gsv-checkpoint-v1\n
//	<8-byte BE body length><4-byte BE IEEE CRC32 of body>
//	body: repeated sections, each
//	    {"name":"...","len":N}\n   (JSON section header line)
//	    N raw bytes                (section body, opaque to this package)
//
// The file is written to <name>.tmp in the same directory, fsynced,
// renamed over the final name, and the directory fsynced — so a
// checkpoint either exists completely or not at all, and a crash
// mid-write leaves only a .tmp that LoadCheckpoint ignores. The trailing
// CRC additionally rejects a checkpoint that was renamed but whose data
// blocks never reached the platter (the lying-disk case): recovery falls
// back to the previous checkpoint rather than trusting a torn one.
const checkpointHeader = "gsv-checkpoint-v1"

const (
	ckptPrefix = "ckpt-"
	ckptSuffix = ".ckpt"
)

func ckptName(seq uint64) string {
	return fmt.Sprintf("%s%020d%s", ckptPrefix, seq, ckptSuffix)
}

func parseCkptName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

type sectionHeader struct {
	Name string `json:"name"`
	Len  int    `json:"len"`
}

// CheckpointWriter accumulates named sections for one checkpoint.
// Sections are written in Add order and read back by name.
type CheckpointWriter struct {
	body bytes.Buffer
	err  error
}

// Add appends a named section. Section names must be unique per
// checkpoint; the reader keeps the first on duplicates.
func (w *CheckpointWriter) Add(name string, body []byte) {
	if w.err != nil {
		return
	}
	hdr, err := json.Marshal(sectionHeader{Name: name, Len: len(body)})
	if err != nil {
		w.err = err
		return
	}
	w.body.Write(hdr)
	w.body.WriteByte('\n')
	w.body.Write(body)
}

// AddFunc appends a section produced by a writer function, so callers
// can stream store snapshots without building them twice.
func (w *CheckpointWriter) AddFunc(name string, fn func(buf *bytes.Buffer) error) {
	if w.err != nil {
		return
	}
	var buf bytes.Buffer
	if err := fn(&buf); err != nil {
		w.err = err
		return
	}
	w.Add(name, buf.Bytes())
}

// Checkpoint is a loaded checkpoint: its covering sequence number and
// its sections.
type Checkpoint struct {
	// Seq is the update sequence the checkpoint covers: every base
	// update with Seq <= this is reflected in the checkpoint, and
	// recovery replays the WAL strictly above it.
	Seq      uint64
	sections map[string][]byte
}

// Section returns a named section's bytes, or nil if absent.
func (c *Checkpoint) Section(name string) []byte {
	if c == nil {
		return nil
	}
	return c.sections[name]
}

// HasSection reports whether a named section exists (possibly empty).
func (c *Checkpoint) HasSection(name string) bool {
	_, ok := c.sections[name]
	return ok
}

// writeCheckpoint atomically writes the accumulated sections as
// ckpt-<seq>.ckpt in dir, with crash points at the write/fsync/rename
// boundaries.
func writeCheckpoint(dir string, seq uint64, w *CheckpointWriter, crash *faults.CrashPoints) error {
	if w.err != nil {
		return fmt.Errorf("wal: building checkpoint: %w", w.err)
	}
	body := w.body.Bytes()
	final := filepath.Join(dir, ckptName(seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating checkpoint temp: %w", err)
	}
	// No deferred cleanup: an injected crash must leave the temp file
	// behind exactly as a real process death would. Manager.Open sweeps
	// stray .tmp files instead.
	var hdr bytes.Buffer
	hdr.WriteString(checkpointHeader)
	hdr.WriteByte('\n')
	var trailer [12]byte
	binary.BigEndian.PutUint64(trailer[0:8], uint64(len(body)))
	binary.BigEndian.PutUint32(trailer[8:12], crc32.ChecksumIEEE(body))
	hdr.Write(trailer[:])
	if _, err := f.Write(hdr.Bytes()); err == nil {
		_, err = f.Write(body)
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: writing checkpoint: %w", err)
	}
	crash.Crash("ckpt.write")
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: fsync checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: closing checkpoint: %w", err)
	}
	crash.Crash("ckpt.fsync")
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("wal: publishing checkpoint: %w", err)
	}
	crash.Crash("ckpt.rename")
	return syncDir(dir)
}

// readCheckpoint loads and validates one checkpoint file. Any structural
// problem returns an error wrapping ErrCorrupt.
func readCheckpoint(path string, seq uint64) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	want := checkpointHeader + "\n"
	if len(data) < len(want)+12 || string(data[:len(want)]) != want {
		return nil, fmt.Errorf("%w: bad checkpoint header", ErrCorrupt)
	}
	rest := data[len(want):]
	bodyLen := binary.BigEndian.Uint64(rest[0:8])
	sum := binary.BigEndian.Uint32(rest[8:12])
	body := rest[12:]
	if uint64(len(body)) != bodyLen {
		return nil, fmt.Errorf("%w: checkpoint body %d bytes, header says %d", ErrCorrupt, len(body), bodyLen)
	}
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("%w: checkpoint crc %08x != %08x", ErrCorrupt, got, sum)
	}
	c := &Checkpoint{Seq: seq, sections: make(map[string][]byte)}
	for len(body) > 0 {
		nl := bytes.IndexByte(body, '\n')
		if nl < 0 {
			return nil, fmt.Errorf("%w: unterminated section header", ErrCorrupt)
		}
		var hdr sectionHeader
		if err := json.Unmarshal(body[:nl], &hdr); err != nil {
			return nil, fmt.Errorf("%w: section header: %v", ErrCorrupt, err)
		}
		body = body[nl+1:]
		if hdr.Len < 0 || hdr.Len > len(body) {
			return nil, fmt.Errorf("%w: section %q claims %d of %d bytes", ErrCorrupt, hdr.Name, hdr.Len, len(body))
		}
		if _, dup := c.sections[hdr.Name]; !dup {
			c.sections[hdr.Name] = body[:hdr.Len:hdr.Len]
		}
		body = body[hdr.Len:]
	}
	return c, nil
}

// LatestCheckpointIn loads the newest checkpoint in dir that validates,
// without opening the write-ahead log or deleting anything. Corrupt
// checkpoints are skipped in favor of the previous one; nil (no error)
// means no valid checkpoint exists. Replica bootstrap uses it to read a
// primary's checkpoint directory while the primary still owns the log.
func LatestCheckpointIn(dir string) (*Checkpoint, error) {
	seqs, err := checkpointSeqs(dir)
	if err != nil {
		return nil, err
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		c, err := readCheckpoint(filepath.Join(dir, ckptName(seqs[i])), seqs[i])
		if err == nil {
			return c, nil
		}
		if errors.Is(err, ErrCorrupt) {
			continue
		}
		return nil, err
	}
	return nil, nil
}

// checkpointSeqs lists checkpoint seqs in dir, ascending.
func checkpointSeqs(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	var seqs []uint64
	for _, e := range ents {
		if n, ok := parseCkptName(e.Name()); ok {
			seqs = append(seqs, n)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}
