// Package wal is the durability layer: an append-only, checksummed,
// segmented write-ahead log of store.Update records plus atomic
// checkpoint files, so a restarted process resumes from (checkpoint +
// WAL tail) instead of recomputing every view from scratch — recovery in
// O(tail) instead of O(database), which is the whole point of Algorithm 1
// carried across a crash.
//
// The package is deliberately schema-light. The Log knows only about
// store.Update records; the Checkpoint is a named-sections container
// whose section contents are owned by the callers (gsv persists the base
// store and view definitions, the warehouse persists view stores,
// staleness state, auxiliary caches, and feed cursors). Manager ties a
// directory of both together with the retention rule "newest valid
// checkpoint wins, WAL records at or below it are garbage".
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"gsv/internal/store"
)

// recordHeaderSize is the per-record frame overhead: a 4-byte big-endian
// payload length followed by a 4-byte big-endian IEEE CRC32 of the
// payload.
const recordHeaderSize = 8

// maxRecordSize bounds a single record's payload. A store.Update is a
// few hundred bytes of JSON; anything near this limit is corruption, and
// the bound keeps a flipped length byte from asking the decoder for a
// multi-gigabyte allocation.
const maxRecordSize = 1 << 24

// ErrCorrupt marks a record that failed structural validation — bad
// length, bad CRC, or undecodable payload. During tail repair it means
// "truncate here"; anywhere else it is real corruption.
var ErrCorrupt = errors.New("wal: corrupt record")

// appendRecord frames u onto buf and returns the extended slice.
func appendRecord(buf []byte, u store.Update) ([]byte, error) {
	payload, err := json.Marshal(u)
	if err != nil {
		return nil, fmt.Errorf("wal: encoding record seq=%d: %w", u.Seq, err)
	}
	if len(payload) > maxRecordSize {
		return nil, fmt.Errorf("wal: record seq=%d is %d bytes, over the %d limit", u.Seq, len(payload), maxRecordSize)
	}
	var hdr [recordHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...), nil
}

// decodeRecord decodes one framed record from the front of b, returning
// the update and the number of bytes consumed. It never panics: any
// malformed input — short frame, oversized length, CRC mismatch, invalid
// JSON — returns an error wrapping ErrCorrupt (or io.ErrUnexpectedEOF for
// a frame that is merely cut short, the torn-tail case).
func decodeRecord(b []byte) (store.Update, int, error) {
	var u store.Update
	if len(b) < recordHeaderSize {
		return u, 0, io.ErrUnexpectedEOF
	}
	n := binary.BigEndian.Uint32(b[0:4])
	if n > maxRecordSize {
		return u, 0, fmt.Errorf("%w: length %d over limit", ErrCorrupt, n)
	}
	if len(b) < recordHeaderSize+int(n) {
		return u, 0, io.ErrUnexpectedEOF
	}
	payload := b[recordHeaderSize : recordHeaderSize+int(n)]
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(b[4:8]); got != want {
		return u, 0, fmt.Errorf("%w: crc %08x != %08x", ErrCorrupt, got, want)
	}
	if err := json.Unmarshal(payload, &u); err != nil {
		return u, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return u, recordHeaderSize + int(n), nil
}
