package faults

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// TestDeterministicSchedule: the same seed replays the same decisions.
func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 42, DropProb: 0.1, ErrProb: 0.2, DelayProb: 0.1}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 500; i++ {
		if ga, gb := a.Decide("op"), b.Decide("op"); ga != gb {
			t.Fatalf("decision %d diverged: %v != %v", i, ga, gb)
		}
	}
	c := New(Config{Seed: 43, DropProb: 0.1, ErrProb: 0.2, DelayProb: 0.1})
	same := true
	a2 := New(cfg)
	for i := 0; i < 500; i++ {
		if a2.Decide("op") != c.Decide("op") {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical 500-step schedules")
	}
}

func TestZeroConfigPassesEverything(t *testing.T) {
	in := New(Config{Seed: 1})
	for i := 0; i < 100; i++ {
		if got := in.Decide("op"); got != Pass {
			t.Fatalf("zero config decided %v", got)
		}
	}
	if in.Stats.Passes.Value() != 100 {
		t.Fatalf("passes = %d", in.Stats.Passes.Value())
	}
}

func TestPartitionOverridesProbabilities(t *testing.T) {
	in := New(Config{Seed: 1}) // would always pass
	in.Partition(true)
	for i := 0; i < 10; i++ {
		if got := in.Decide("op"); got != Error {
			t.Fatalf("partitioned decision = %v", got)
		}
	}
	if !in.Partitioned() {
		t.Fatal("Partitioned() = false while open")
	}
	in.Partition(false)
	if got := in.Decide("op"); got != Pass {
		t.Fatalf("healed decision = %v", got)
	}
	if in.Stats.Rejects.Value() != 10 {
		t.Fatalf("rejects = %d", in.Stats.Rejects.Value())
	}
}

func TestProbabilitiesRoughlyHold(t *testing.T) {
	in := New(Config{Seed: 7, DropProb: 0.2, ErrProb: 0.3, DelayProb: 0.1})
	const n = 10000
	for i := 0; i < n; i++ {
		in.Decide("op")
	}
	frac := func(c uint64) float64 { return float64(c) / n }
	if f := frac(in.Stats.Drops.Value()); f < 0.17 || f > 0.23 {
		t.Fatalf("drop fraction = %.3f", f)
	}
	if f := frac(in.Stats.Errors.Value()); f < 0.27 || f > 0.33 {
		t.Fatalf("error fraction = %.3f", f)
	}
	if f := frac(in.Stats.Delays.Value()); f < 0.08 || f > 0.12 {
		t.Fatalf("delay fraction = %.3f", f)
	}
}

// TestConnFaults drives a wrapped pipe through error and drop decisions.
func TestConnFaults(t *testing.T) {
	// ErrProb 1: every op errors but the conn survives.
	in := New(Config{Seed: 1, ErrProb: 1})
	a, b := net.Pipe()
	defer b.Close()
	wrapped := in.WrapConn(a)
	if _, err := wrapped.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write error = %v", err)
	}
	if _, err := wrapped.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read error = %v", err)
	}

	// DropProb 1: the first op kills the connection for the peer too.
	in = New(Config{Seed: 1, DropProb: 1})
	a, b = net.Pipe()
	wrapped = in.WrapConn(a)
	if _, err := wrapped.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("drop error = %v", err)
	}
	if _, err := b.Read(make([]byte, 1)); err != io.EOF && !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("peer read after drop = %v", err)
	}
}

func TestConnPassThrough(t *testing.T) {
	in := New(Config{Seed: 1}) // pass everything
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	wrapped := in.WrapConn(a)
	go func() { _, _ = wrapped.Write([]byte("hello")) }()
	buf := make([]byte, 5)
	if _, err := io.ReadFull(b, buf); err != nil || string(buf) != "hello" {
		t.Fatalf("read %q, %v", buf, err)
	}
}

func TestListenerWrapsAccepted(t *testing.T) {
	in := New(Config{Seed: 1, ErrProb: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := in.WrapListener(ln)
	defer wrapped.Close()
	done := make(chan error, 1)
	go func() {
		c, err := wrapped.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		_, err = c.Read(make([]byte, 1))
		done <- err
	}()
	c, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := <-done; !errors.Is(err, ErrInjected) {
		t.Fatalf("server-side read error = %v", err)
	}
}
