package faults

import (
	"fmt"
	"sync"
)

// Crash-point injection simulates a process dying at a specific durability
// boundary — between a WAL append and its fsync, between an fsync and the
// checkpoint rename, and so on. The WAL and checkpoint writers call
// Crash(point) at each boundary; an armed CrashPoints panics there with a
// Crashed sentinel the soak harness recovers, then "restarts" the process
// by running recovery over whatever state the crash left behind. Unlike
// the probabilistic Injector, crash points are armed deterministically:
// the soak decides up front "die at the Nth rename", which makes every
// torn-state shape reproducible from the seed that chose N.
//
// Crash points are named by the durability boundary they precede:
//
//	wal.append   — after a record is framed, before it is written
//	wal.write    — after the segment write, before fsync
//	wal.fsync    — after the segment fsync returns
//	ckpt.write   — after the checkpoint temp file is written, before fsync
//	ckpt.fsync   — after the temp-file fsync, before the rename
//	ckpt.rename  — after the rename, before the directory fsync
//	ckpt.gc      — before obsolete WAL segments are truncated
type CrashPoints struct {
	mu    sync.Mutex
	armed map[string]int // point -> remaining hits before crash (1 = next hit)
	hits  map[string]int // point -> times reached (armed or not)
}

// Crashed is the panic value raised at an armed crash point. The soak
// harness recovers it; anything else propagates.
type Crashed struct{ Point string }

// Error renders the crash for logs; Crashed also satisfies error so
// recovered values can flow through error paths.
func (c Crashed) Error() string { return fmt.Sprintf("faults: crashed at %s", c.Point) }

// IsCrash reports whether a recovered panic value is an injected crash.
func IsCrash(v any) (Crashed, bool) {
	c, ok := v.(Crashed)
	return c, ok
}

// NewCrashPoints returns an empty (fully disarmed) set.
func NewCrashPoints() *CrashPoints {
	return &CrashPoints{armed: make(map[string]int), hits: make(map[string]int)}
}

// Arm schedules a crash at the nth future hit of point (n=1 crashes on
// the very next hit). n<=0 disarms the point.
func (p *CrashPoints) Arm(point string, n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n <= 0 {
		delete(p.armed, point)
		return
	}
	p.armed[point] = n
}

// Disarm clears every armed point but keeps hit counts.
func (p *CrashPoints) Disarm() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.armed = make(map[string]int)
}

// Crash notes a hit of point and panics with Crashed if the point's
// countdown reaches zero. A nil receiver is a no-op, so production code
// can call it unconditionally on an optional *CrashPoints field.
func (p *CrashPoints) Crash(point string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.hits[point]++
	n, ok := p.armed[point]
	if ok {
		n--
		if n > 0 {
			p.armed[point] = n
		} else {
			delete(p.armed, point)
		}
	}
	p.mu.Unlock()
	if ok && n == 0 {
		panic(Crashed{Point: point})
	}
}

// Hits reports how many times point has been reached.
func (p *CrashPoints) Hits(point string) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits[point]
}
