// Package faults is a deterministic, seedable fault-injection layer for
// the distributed warehouse (Section 5 assumes sources are reachable
// whenever the warehouse queries back; this package makes that assumption
// falsifiable on demand). An Injector decides, per operation, whether to
// pass, delay, error, or drop, from a seeded PRNG — the same seed and the
// same sequence of decision points replay the same fault schedule, which
// is what lets the chaos soak test run under a fixed seed in CI.
//
// Two integration surfaces:
//
//   - Wire level: WrapConn / WrapListener wrap net.Conn so reads and
//     writes fail, stall, or kill the connection mid-frame. gsdbserve
//     -chaos serves through a wrapped listener.
//   - API level: warehouse.FaultySource consults an Injector before each
//     SourceAPI call, injecting clean query-back failures without
//     touching the wire.
//
// A manual partition (Partition(true)) overrides the probabilities: every
// decision point errors until the partition heals. All injected errors
// wrap ErrInjected so tests can tell injected faults from real ones.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"gsv/internal/obs"
)

// ErrInjected is the sentinel all injected errors wrap; detect it with
// errors.Is.
var ErrInjected = errors.New("faults: injected fault")

// Action is one per-operation decision.
type Action int

const (
	// Pass lets the operation through untouched.
	Pass Action = iota
	// Delay stalls the operation for Config.Delay, then lets it through.
	Delay
	// Error fails the operation with an ErrInjected-wrapping error.
	Error
	// Drop kills the underlying connection (wire level) or fails the
	// operation (API level): unlike Error, the transport is gone.
	Drop
)

// String names the action.
func (a Action) String() string {
	switch a {
	case Pass:
		return "pass"
	case Delay:
		return "delay"
	case Error:
		return "error"
	case Drop:
		return "drop"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// Config sets the fault schedule. Probabilities are evaluated in order
// drop, error, delay; each in [0,1]. The zero Config injects nothing.
type Config struct {
	// Seed seeds the PRNG; the same seed replays the same decisions.
	Seed int64
	// DropProb is the per-op probability of killing the connection.
	DropProb float64
	// ErrProb is the per-op probability of an injected error.
	ErrProb float64
	// DelayProb is the per-op probability of stalling for Delay.
	DelayProb float64
	// Delay is how long a delayed operation stalls.
	Delay time.Duration
}

// Stats counts injected faults by kind. The fields are atomic counters,
// safe to read while injection is live.
type Stats struct {
	Passes  obs.Counter
	Delays  obs.Counter
	Errors  obs.Counter
	Drops   obs.Counter
	Rejects obs.Counter // decisions answered by an active partition
}

// Injector makes seeded per-op fault decisions.
type Injector struct {
	mu          sync.Mutex
	rng         *rand.Rand
	cfg         Config
	partitioned bool

	// Stats counts the decisions taken.
	Stats Stats
}

// New returns an injector for cfg.
func New(cfg Config) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
}

// Partition opens (true) or heals (false) a full partition: while open,
// every decision is Error regardless of the probabilities.
func (in *Injector) Partition(on bool) {
	in.mu.Lock()
	in.partitioned = on
	in.mu.Unlock()
}

// Partitioned reports whether a partition is open.
func (in *Injector) Partitioned() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.partitioned
}

// Decide draws the next decision. The op name is for error rendering
// only; the decision sequence depends solely on the seed and the number
// of prior draws.
func (in *Injector) Decide(op string) Action {
	in.mu.Lock()
	if in.partitioned {
		in.mu.Unlock()
		in.Stats.Rejects.Inc()
		return Error
	}
	f := in.rng.Float64()
	cfg := in.cfg
	in.mu.Unlock()
	switch {
	case f < cfg.DropProb:
		in.Stats.Drops.Inc()
		return Drop
	case f < cfg.DropProb+cfg.ErrProb:
		in.Stats.Errors.Inc()
		return Error
	case f < cfg.DropProb+cfg.ErrProb+cfg.DelayProb:
		in.Stats.Delays.Inc()
		return Delay
	default:
		in.Stats.Passes.Inc()
		return Pass
	}
}

// Sleep stalls for the configured delay.
func (in *Injector) Sleep() {
	in.mu.Lock()
	d := in.cfg.Delay
	in.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
}

// Errf builds an ErrInjected-wrapping error for op.
func (in *Injector) Errf(op string) error {
	return fmt.Errorf("%w (%s)", ErrInjected, op)
}

// RegisterObs exposes the decision counters on reg, labeled by site.
func (in *Injector) RegisterObs(reg *obs.Registry, site string) {
	reg.Help("gsv_faults_injected_total", "fault-injection decisions taken, by action")
	ls := obs.L("site", site)
	reg.RegisterCounter("gsv_faults_injected_total", &in.Stats.Passes, ls, obs.L("action", "pass"))
	reg.RegisterCounter("gsv_faults_injected_total", &in.Stats.Delays, ls, obs.L("action", "delay"))
	reg.RegisterCounter("gsv_faults_injected_total", &in.Stats.Errors, ls, obs.L("action", "error"))
	reg.RegisterCounter("gsv_faults_injected_total", &in.Stats.Drops, ls, obs.L("action", "drop"))
	reg.RegisterCounter("gsv_faults_injected_total", &in.Stats.Rejects, ls, obs.L("action", "partition"))
}

// Conn is a net.Conn whose reads and writes pass through an Injector.
type Conn struct {
	net.Conn
	in *Injector
}

// WrapConn wraps c so every Read and Write consults the injector.
func (in *Injector) WrapConn(c net.Conn) net.Conn { return &Conn{Conn: c, in: in} }

func (c *Conn) fault(op string) error {
	switch c.in.Decide(op) {
	case Drop:
		_ = c.Conn.Close()
		return fmt.Errorf("%w (%s: connection dropped)", ErrInjected, op)
	case Error:
		return c.in.Errf(op)
	case Delay:
		c.in.Sleep()
	}
	return nil
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	if err := c.fault("read"); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) {
	if err := c.fault("write"); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}

// Listener wraps accepted connections in fault-injecting Conns.
type Listener struct {
	net.Listener
	in *Injector
}

// WrapListener wraps ln so every accepted conn injects faults.
func (in *Injector) WrapListener(ln net.Listener) net.Listener {
	return &Listener{Listener: ln, in: in}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.WrapConn(c), nil
}

// AcceptError is the injected transient accept failure FlakyListener
// returns: a net.Error that reports Temporary (like ECONNABORTED or
// transient fd exhaustion) and wraps ErrInjected.
type AcceptError struct{ err error }

// Error implements error.
func (e *AcceptError) Error() string { return e.err.Error() }

// Timeout implements net.Error.
func (e *AcceptError) Timeout() bool { return false }

// Temporary implements net.Error: the failure is transient, accept
// loops should back off and retry.
func (e *AcceptError) Temporary() bool { return true }

// Unwrap keeps errors.Is(err, ErrInjected) true.
func (e *AcceptError) Unwrap() error { return e.err }

// FlakyListener injects transient failures into Accept itself (Error
// and Drop decisions become temporary accept errors, Delay stalls the
// accept) in addition to wrapping accepted conns like Listener.
type FlakyListener struct {
	net.Listener
	in *Injector
}

// WrapFlakyListener wraps ln so Accept itself fails transiently under
// the injector's schedule — the accept-loop resilience drill.
func (in *Injector) WrapFlakyListener(ln net.Listener) net.Listener {
	return &FlakyListener{Listener: ln, in: in}
}

// Accept implements net.Listener.
func (l *FlakyListener) Accept() (net.Conn, error) {
	switch l.in.Decide("accept") {
	case Error, Drop:
		return nil, &AcceptError{err: l.in.Errf("accept")}
	case Delay:
		l.in.Sleep()
	}
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.WrapConn(c), nil
}
