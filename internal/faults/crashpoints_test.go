package faults

import "testing"

func TestCrashPointsArmAndFire(t *testing.T) {
	p := NewCrashPoints()
	p.Arm("wal.fsync", 3)
	for i := 0; i < 2; i++ {
		p.Crash("wal.fsync") // hits 1 and 2: no crash
	}
	fired := func() (c Crashed, ok bool) {
		defer func() {
			if v := recover(); v != nil {
				c, ok = IsCrash(v)
				if !ok {
					panic(v)
				}
			}
		}()
		p.Crash("wal.fsync")
		return
	}
	c, ok := fired()
	if !ok {
		t.Fatal("third hit did not crash")
	}
	if c.Point != "wal.fsync" {
		t.Fatalf("crashed at %q, want wal.fsync", c.Point)
	}
	// Firing disarms: the fourth hit passes.
	p.Crash("wal.fsync")
	if got := p.Hits("wal.fsync"); got != 4 {
		t.Fatalf("Hits = %d, want 4", got)
	}
}

func TestCrashPointsNilAndDisarm(t *testing.T) {
	var nilp *CrashPoints
	nilp.Crash("anything") // must not panic
	if nilp.Hits("anything") != 0 {
		t.Fatal("nil CrashPoints counted a hit")
	}

	p := NewCrashPoints()
	p.Arm("ckpt.rename", 1)
	p.Disarm()
	p.Crash("ckpt.rename") // disarmed: no panic
	p.Arm("ckpt.rename", 0)
	p.Crash("ckpt.rename")
	if p.Hits("ckpt.rename") != 2 {
		t.Fatalf("Hits = %d, want 2", p.Hits("ckpt.rename"))
	}
}

func TestCrashedIsError(t *testing.T) {
	var err error = Crashed{Point: "wal.append"}
	if err.Error() != "faults: crashed at wal.append" {
		t.Fatalf("Error() = %q", err.Error())
	}
	if _, ok := IsCrash("not a crash"); ok {
		t.Fatal("IsCrash accepted a string")
	}
}
