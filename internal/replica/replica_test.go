package replica_test

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"gsv/internal/faults"
	"gsv/internal/feed"
	"gsv/internal/obs"
	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/replica"
	"gsv/internal/store"
	"gsv/internal/warehouse"
	"gsv/internal/workload"
)

// primary bundles one in-process primary: source, warehouse with the YP
// and SENIOR views, and the TCP server fronting both.
type primary struct {
	src    *warehouse.Source
	w      *warehouse.Warehouse
	server *warehouse.Server
	addr   string
}

// startPrimary builds a PERSON primary serving query, members, stats and
// feed, with fast progress frames so lag tests converge quickly.
func startPrimary(t testing.TB, ring int) *primary {
	t.Helper()
	s := store.NewDefault()
	workload.PersonDB(s)
	src := warehouse.NewSource("persons", s, "ROOT", warehouse.Level2, warehouse.NewTransport(0))
	src.DrainReports()
	w := warehouse.New(src)
	w.Feed = feed.NewHub(feed.Options{RingSize: ring})
	if _, err := w.DefineView("YP", query.MustParse("SELECT ROOT.professor X WHERE X.age <= 45"), warehouse.ViewConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.DefineView("SENIOR", query.MustParse("SELECT ROOT.professor X WHERE X.age >= 50"), warehouse.ViewConfig{}); err != nil {
		t.Fatal(err)
	}
	p := &primary{src: src, w: w}
	p.server = newServer(t, p)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p.addr = ln.Addr().String()
	go func() { _ = p.server.Serve(ln) }()
	t.Cleanup(func() { p.server.Close() })
	return p
}

// newServer builds a fresh Server over the primary's source and views
// (used for restart tests, which rebind on the same address).
func newServer(t testing.TB, p *primary) *warehouse.Server {
	t.Helper()
	srv := warehouse.NewServer(p.src)
	srv.Feed = p.w.Feed
	srv.Members = p.w.FreshMembers
	srv.FeedProgressInterval = 20 * time.Millisecond
	return srv
}

// rebind restarts the primary's server on its previous address.
func (p *primary) rebind(t testing.TB) {
	t.Helper()
	srv := newServer(t, p)
	var ln net.Listener
	var err error
	for i := 0; i < 200; i++ {
		ln, err = net.Listen("tcp", p.addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebinding %s: %v", p.addr, err)
	}
	p.server = srv
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { srv.Close() })
}

// toggle flips P1 (professor, age 35) in and out of YP n times by
// modifying its age atom A1.
func (p *primary) toggle(t testing.TB, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		val := int64(60) // leaves YP, enters SENIOR
		if i%2 == 1 {
			val = 30 // returns to YP
		}
		rs, err := p.src.Modify("A1", oem.Int(val))
		if err != nil {
			t.Fatal(err)
		}
		if err := p.w.ProcessAll(rs); err != nil {
			t.Fatal(err)
		}
	}
}

// waitSynced blocks until the replica has applied everything the primary
// has done, then asserts every view's membership matches the primary's.
func waitSynced(t testing.TB, p *primary, r *replica.Replica) {
	t.Helper()
	if !r.WaitSeq(p.src.Store.Seq(), 5*time.Second) {
		seq, age := r.Lag()
		t.Fatalf("replica did not reach seq %d (lag %d seq, %s)", p.src.Store.Seq(), seq, age)
	}
	for _, view := range []string{"YP", "SENIOR"} {
		want, err := p.w.FreshMembers(view)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Members(view)
		if err != nil {
			t.Fatal(err)
		}
		if !oem.SameMembers(got, want) {
			t.Fatalf("view %s: replica %v, primary %v", view, got, want)
		}
	}
}

func TestReplicaSnapshotBootstrapAndFollow(t *testing.T) {
	p := startPrimary(t, 64)
	p.toggle(t, 3) // history before the replica exists

	r, err := replica.New(replica.Options{Name: "r1", Primary: p.addr})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.WaitCaughtUp(5 * time.Second) {
		t.Fatal("replica never caught up after snapshot bootstrap")
	}
	waitSynced(t, p, r)
	if got := r.Views(); len(got) != 2 || got[0] != "SENIOR" || got[1] != "YP" {
		t.Fatalf("Views() = %v", got)
	}

	// Live follow: every later update must flow through the feed.
	p.toggle(t, 4)
	waitSynced(t, p, r)
	if r.Applied("YP") == 0 {
		t.Fatal("no YP events applied")
	}
}

func TestReplicaServesWireProtocol(t *testing.T) {
	p := startPrimary(t, 64)
	r, err := replica.New(replica.Options{Name: "r1", Primary: p.addr})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	waitSynced(t, p, r)

	reg := obs.NewRegistry()
	r.RegisterObs(reg)
	rsrv := r.NewServer(reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = rsrv.Serve(ln) }()
	defer rsrv.Close()

	rc, err := warehouse.Dial("r1", ln.Addr().String(), warehouse.NewTransport(0))
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	// The members op answers from replicated views.
	want, err := p.w.FreshMembers("YP")
	if err != nil {
		t.Fatal(err)
	}
	got, err := rc.FetchMembers("YP")
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(got, want) {
		t.Fatalf("members over wire = %v, want %v", got, want)
	}
	if _, err := rc.FetchMembers("NOPE"); err == nil {
		t.Fatal("unknown view served")
	}

	// Delegates are fetchable like any warehouse object.
	if len(want) > 0 {
		d, err := rc.FetchObject(oem.OID("YP") + "." + want[0])
		if err != nil {
			t.Fatalf("fetching delegate: %v", err)
		}
		if d == nil {
			t.Fatal("delegate not found over wire")
		}
	}

	// The replica's own feed serves the republished events under primary
	// cursor numbering.
	p.toggle(t, 2)
	waitSynced(t, p, r)
	fc, err := warehouse.DialFeed(ln.Addr().String(), warehouse.FeedRequest{View: "YP", Resume: true, From: r.Applied("YP") - 2})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	ev, err := fc.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Cursor != r.Applied("YP")-1 {
		t.Fatalf("republished cursor = %d, want %d", ev.Cursor, r.Applied("YP")-1)
	}
}

func TestReplicaCheckpointBootstrap(t *testing.T) {
	dir := t.TempDir()
	s := store.NewDefault()
	workload.PersonDB(s)
	src := warehouse.NewSource("persons", s, "ROOT", warehouse.Level2, warehouse.NewTransport(0))
	src.DrainReports()
	w := warehouse.New(src)
	if _, err := w.EnableDurability(dir, warehouse.DurabilityOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.DefineView("YP", query.MustParse("SELECT ROOT.professor X WHERE X.age <= 45"), warehouse.ViewConfig{}); err != nil {
		t.Fatal(err)
	}
	p := &primary{src: src, w: w}
	p.server = newServer(t, p)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p.addr = ln.Addr().String()
	go func() { _ = p.server.Serve(ln) }()
	t.Cleanup(func() { p.server.Close() })

	toggleOne := func(val int64) {
		rs, err := src.Modify("A1", oem.Int(val))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.ProcessAll(rs); err != nil {
			t.Fatal(err)
		}
	}
	toggleOne(60)
	toggleOne(30)
	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	toggleOne(60) // one event past the checkpoint

	r, err := replica.New(replica.Options{Name: "r1", Primary: p.addr, BootstrapDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.WaitSeq(src.Store.Seq(), 5*time.Second) {
		t.Fatal("checkpoint-bootstrapped replica never caught up")
	}
	want, err := w.FreshMembers("YP")
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Members("YP")
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(got, want) {
		t.Fatalf("replica %v, primary %v", got, want)
	}
	// The post-checkpoint event must have arrived by cursor resume, not a
	// fresh snapshot: the checkpoint made the snapshot unnecessary.
	if n := r.Resyncs(); n != 0 {
		t.Fatalf("resyncs = %d, want 0 (cursor resume)", n)
	}
	if r.Applied("YP") != 3 {
		t.Fatalf("applied cursor = %d, want 3", r.Applied("YP"))
	}
}

func TestReplicaBootstrapDirWithoutCheckpoint(t *testing.T) {
	p := startPrimary(t, 64)
	// An empty bootstrap directory must fall back to snapshot bootstrap.
	r, err := replica.New(replica.Options{Name: "r1", Primary: p.addr, BootstrapDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	waitSynced(t, p, r)
}

func TestReplicaSurvivesPrimaryRestart(t *testing.T) {
	p := startPrimary(t, 64)
	r, err := replica.New(replica.Options{Name: "r1", Primary: p.addr, RedialBase: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	waitSynced(t, p, r)

	p.server.Close()
	p.toggle(t, 4) // maintenance continues while the server is down
	p.rebind(t)
	waitSynced(t, p, r)
	if r.FeedRedials() == 0 {
		t.Fatal("no feed redial counted across the restart")
	}
	// Within-ring resume: no snapshot reconcile should have been needed.
	if n := r.Resyncs(); n != 0 {
		t.Fatalf("resyncs = %d, want 0", n)
	}
}

func TestReplicaRingOverflowFallsBackToSnapshot(t *testing.T) {
	p := startPrimary(t, 4) // tiny replay ring
	r, err := replica.New(replica.Options{Name: "r1", Primary: p.addr, RedialBase: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	waitSynced(t, p, r)

	p.server.Close()
	p.toggle(t, 10) // overflow the ring while disconnected
	p.rebind(t)
	waitSynced(t, p, r)
	if r.Resyncs() == 0 {
		t.Fatal("expected a snapshot reconcile after ring overflow")
	}
}

func TestReplicaReadGate(t *testing.T) {
	p := startPrimary(t, 64)
	r, err := replica.New(replica.Options{
		Name: "r1", Primary: p.addr,
		MaxLagAge:  80 * time.Millisecond,
		RedialBase: 10 * time.Millisecond, RedialMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	waitSynced(t, p, r)
	if err := r.ReadGate("members"); err != nil {
		t.Fatalf("caught-up replica rejected a read: %v", err)
	}

	// Serve the replica so the rejection is visible over the wire too.
	rsrv := r.NewServer(nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = rsrv.Serve(ln) }()
	defer rsrv.Close()

	p.server.Close()
	deadline := time.Now().Add(5 * time.Second)
	for r.ReadGate("members") == nil {
		if time.Now().After(deadline) {
			t.Fatal("gate never tripped after primary went away")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := r.ReadGate("stats"); err != nil {
		t.Fatalf("stats blocked by the gate: %v", err)
	}
	rc, err := warehouse.Dial("r1", ln.Addr().String(), warehouse.NewTransport(0))
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, err := rc.FetchMembers("YP"); err == nil || !strings.Contains(err.Error(), "read rejected") {
		t.Fatalf("wire read while stale: %v", err)
	}

	// Recovery: the gate reopens once the primary is back and progress
	// frames flow again.
	p.rebind(t)
	deadline = time.Now().Add(5 * time.Second)
	for r.ReadGate("members") != nil {
		if time.Now().After(deadline) {
			t.Fatal("gate never reopened after primary returned")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := rc.FetchMembers("YP"); err != nil {
		t.Fatalf("read after recovery: %v", err)
	}
}

func TestReplicaValueReconcile(t *testing.T) {
	p := startPrimary(t, 64)
	r, err := replica.New(replica.Options{Name: "r1", Primary: p.addr})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	waitSynced(t, p, r)

	// A value-only modify that changes no view membership publishes no
	// feed event; Reconcile refreshes the delegates from fresh fetches.
	rs, err := p.src.Modify("A1", oem.Int(31)) // 35 -> 31: still in YP
	if err != nil {
		t.Fatal(err)
	}
	if err := p.w.ProcessAll(rs); err != nil {
		t.Fatal(err)
	}
	if err := r.Reconcile(); err != nil {
		t.Fatal(err)
	}
	waitSynced(t, p, r)
	d, err := r.Store().Get(oem.OID("YP") + ".P1")
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("P1 delegate missing after reconcile")
	}
}

func TestReplicaNewFailsWhenPrimaryDown(t *testing.T) {
	_, err := replica.New(replica.Options{Name: "r1", Primary: "127.0.0.1:1"})
	if err == nil {
		t.Fatal("New succeeded with no primary")
	}
}

func TestDialMultiFeedUnknownView(t *testing.T) {
	p := startPrimary(t, 64)
	_, err := warehouse.DialMultiFeed(p.addr, warehouse.MultiFeedRequest{Views: []string{"NOPE"}})
	if err == nil {
		t.Fatal("subscribing to an unknown view succeeded")
	}
	if errors.Is(err, warehouse.ErrUnsupportedRequest) {
		t.Fatalf("unknown view misread as version mismatch: %v", err)
	}
}

// TestReplicaWaitersWakeOnClose pins the wakeup semantics of the
// condition-based waits: a parked WaitSeq returns (false) promptly when
// the replica closes, without waiting out its timeout.
func TestReplicaWaitersWakeOnClose(t *testing.T) {
	p := startPrimary(t, 64)
	r, err := replica.New(replica.Options{Name: "r1", Primary: p.addr})
	if err != nil {
		t.Fatal(err)
	}
	waitSynced(t, p, r)

	done := make(chan bool, 1)
	go func() { done <- r.WaitSeq(p.src.Store.Seq()+1000, 30*time.Second) }()
	time.Sleep(20 * time.Millisecond) // let the waiter park
	r.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("WaitSeq reported success for a sequence that never happened")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitSeq still parked after Close")
	}
}

// TestReplicaDegradedPrimaryPartition drives the replica through a full
// network partition of the primary (every connection errors, feed
// included) while maintenance continues and the tiny replay ring
// overflows, then heals it: the redial loop must re-establish the feed
// and converge through a snapshot reconcile.
func TestReplicaDegradedPrimaryPartition(t *testing.T) {
	s := store.NewDefault()
	workload.PersonDB(s)
	src := warehouse.NewSource("persons", s, "ROOT", warehouse.Level2, warehouse.NewTransport(0))
	src.DrainReports()
	w := warehouse.New(src)
	w.Feed = feed.NewHub(feed.Options{RingSize: 4})
	for name, q := range map[string]string{
		"YP":     "SELECT ROOT.professor X WHERE X.age <= 45",
		"SENIOR": "SELECT ROOT.professor X WHERE X.age >= 50",
	} {
		if _, err := w.DefineView(name, query.MustParse(q), warehouse.ViewConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	inj := faults.New(faults.Config{Seed: 5})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := warehouse.NewServer(src)
	srv.Feed = w.Feed
	srv.Members = w.FreshMembers
	srv.FeedProgressInterval = 20 * time.Millisecond
	go func() { _ = srv.Serve(inj.WrapListener(ln)) }()
	t.Cleanup(srv.Close)
	p := &primary{src: src, w: w, server: srv, addr: ln.Addr().String()}

	r, err := replica.New(replica.Options{
		Name: "r1", Primary: p.addr, RedialBase: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	waitSynced(t, p, r)

	inj.Partition(true)
	p.toggle(t, 10) // overflow the 4-slot ring while unreachable
	if r.WaitSeq(p.src.Store.Seq(), 150*time.Millisecond) {
		t.Fatal("replica caught up through a partition")
	}
	inj.Partition(false)
	waitSynced(t, p, r)
	if r.Resyncs() == 0 {
		t.Fatal("expected a snapshot reconcile after the ring overflowed")
	}
}
