package replica_test

import (
	"net"
	"reflect"
	"testing"
	"time"

	"gsv/internal/faults"
	"gsv/internal/feed"
	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/replica"
	"gsv/internal/store"
	"gsv/internal/warehouse"
	"gsv/internal/workload"
)

// TestReplicaChaosSoak is the replica tier's fault drill (run in CI's
// chaos-smoke job under -race): two replicas follow a primary whose
// every connection injects seeded errors, delays and drops, while the
// primary's server is killed and restarted repeatedly mid-workload with
// maintenance continuing during the outages. At the end every replica
// must converge to exactly the state a from-scratch recompute produces
// at the source: membership per view, and delegate objects identical to
// the primary's. Transient faults are absorbed by query retries and
// feed redial; missed events are recovered by ring replay or snapshot
// reconcile — either way, convergence is exact.
func TestReplicaChaosSoak(t *testing.T) {
	s := store.NewDefault()
	db := workload.RelationLike(s, workload.RelationConfig{
		Relations: 2, TuplesPerRelation: 5, FieldsPerTuple: 2, Seed: 11,
	})
	src := warehouse.NewSource("rel", s, "REL", warehouse.Level2, warehouse.NewTransport(0))
	src.DrainReports()
	w := warehouse.New(src)
	w.Feed = feed.NewHub(feed.Options{RingSize: 64})
	specs := []struct {
		name string
		q    string
	}{
		{"SOAK0", "SELECT REL.r0.tuple X WHERE X.age > 40"},
		{"SOAK1", "SELECT REL.r1.tuple X WHERE X.age <= 60"},
	}
	for _, sp := range specs {
		if _, err := w.DefineView(sp.name, query.MustParse(sp.q), warehouse.ViewConfig{}); err != nil {
			t.Fatal(err)
		}
	}

	inj := faults.New(faults.Config{
		Seed:      99,
		DropProb:  0.01,
		ErrProb:   0.03,
		DelayProb: 0.05,
		Delay:     200 * time.Microsecond,
	})
	newServer := func() *warehouse.Server {
		srv := warehouse.NewServer(src)
		srv.Feed = w.Feed
		srv.Members = w.FreshMembers
		srv.FeedProgressInterval = 15 * time.Millisecond
		return srv
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	server := newServer()
	go func() { _ = server.Serve(inj.WrapListener(ln)) }()
	defer func() { server.Close() }()

	// Modify-only mix: memberships flap while every object's value stays
	// derivable, so the final comparison can demand exact equality.
	var sets, atoms []oem.OID
	for _, r := range db.Relations {
		sets = append(sets, r.OID)
		sets = append(sets, r.Tuples...)
		for _, tu := range r.Tuples {
			kids, _ := s.Children(tu)
			atoms = append(atoms, kids...)
		}
	}
	stream := workload.NewStream(s, workload.StreamConfig{
		Seed: 23, Mix: workload.Mix{Modify: 1}, ValueRange: 90,
	}, sets, atoms)
	step := func() {
		if _, ok := stream.Next(); !ok {
			t.Fatal("stream exhausted")
		}
		if err := w.ProcessAll(src.DrainReports()); err != nil {
			t.Fatalf("maintenance: %v", err)
		}
	}

	// Two replicas behind the same fault injector, with retry policies
	// tight enough to keep the soak fast.
	dial := warehouse.DialOptions{
		IOTimeout: 2 * time.Second,
		Retry: warehouse.RetryPolicy{
			MaxAttempts: 10, BaseDelay: time.Millisecond,
			MaxDelay: 20 * time.Millisecond, Multiplier: 2, Jitter: 0.2,
		},
		Redial: warehouse.RetryPolicy{
			MaxAttempts: 2000, BaseDelay: time.Millisecond,
			MaxDelay: 10 * time.Millisecond, Multiplier: 2, Jitter: 0.2,
		},
		Seed: 7,
	}
	var reps []*replica.Replica
	for i := 0; i < 2; i++ {
		var r *replica.Replica
		var err error
		for try := 0; try < 50; try++ { // the injector can kill the first dial
			r, err = replica.New(replica.Options{
				Name: "soak", Primary: addr, Dial: dial,
				RedialBase: 2 * time.Millisecond, RedialMax: 50 * time.Millisecond,
				FeedIdleTimeout: 500 * time.Millisecond,
				Seed:            int64(i + 1),
			})
			if err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		reps = append(reps, r)
	}

	// Three kill/restart rounds; updates keep flowing while the server is
	// down, so replicas fall behind and must recover by ring replay or —
	// when the 64-slot ring has already evicted their cursor — snapshot.
	for round := 0; round < 3; round++ {
		for i := 0; i < 30; i++ {
			step()
		}
		// Each kill only exercises a real reconnect if the replicas were
		// demonstrably following beforehand.
		for ri, r := range reps {
			if !r.WaitSeq(src.Store.Seq(), 20*time.Second) {
				lag, age := r.Lag()
				t.Fatalf("round %d: replica %d never caught up: %d behind (%s)", round, ri, lag, age)
			}
		}
		server.Close()
		for i := 0; i < 25; i++ {
			step() // invisible to the replicas until the restart
		}
		var ln2 net.Listener
		for try := 0; ; try++ {
			ln2, err = net.Listen("tcp", addr)
			if err == nil {
				break
			}
			if try > 100 {
				t.Fatalf("rebinding %s (round %d): %v", addr, round, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
		server = newServer()
		go func(sv *warehouse.Server, l net.Listener) { _ = sv.Serve(l) }(server, inj.WrapListener(ln2))
	}

	// Convergence: every replica must reach the primary's final sequence
	// and match a from-scratch recompute exactly — membership and
	// delegate objects.
	finalSeq := src.Store.Seq()
	for ri, r := range reps {
		if !r.WaitSeq(finalSeq, 30*time.Second) {
			lag, age := r.Lag()
			t.Fatalf("replica %d stuck %d behind (%s)", ri, lag, age)
		}
		for _, sp := range specs {
			oracle, err := query.NewEvaluator(s).Eval(query.MustParse(sp.q))
			if err != nil {
				t.Fatal(err)
			}
			got, err := r.Members(sp.name)
			if err != nil {
				t.Fatal(err)
			}
			if !oem.SameMembers(got, oracle) {
				t.Fatalf("replica %d view %s: got %v, recompute %v", ri, sp.name, got, oracle)
			}
			for _, b := range got {
				d := string(sp.name) + "." + string(b)
				want, err := w.Store.Get(oem.OID(d))
				if err != nil {
					t.Fatal(err)
				}
				have, err := r.Store().Get(oem.OID(d))
				if err != nil {
					t.Fatalf("replica %d missing delegate %s: %v", ri, d, err)
				}
				if !reflect.DeepEqual(have, want) {
					t.Fatalf("replica %d delegate %s: %+v != primary %+v", ri, d, have, want)
				}
			}
		}
		if r.FeedRedials() == 0 {
			t.Fatalf("replica %d survived three restarts without a feed redial", ri)
		}
	}
}
