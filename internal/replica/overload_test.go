package replica_test

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"gsv/internal/obs"
	"gsv/internal/replica"
	"gsv/internal/warehouse"
)

// TestReplicaDrainShedsDataReads pins the serving-tier drain contract
// on a replica (the ReadGate x drain composition): while the replica's
// server drains, data reads are refused with the typed retryable
// overload error — so load balancers retry against a sibling — while
// stats and trace still answer, so operators can watch the drain. The
// drain itself must complete cleanly.
func TestReplicaDrainShedsDataReads(t *testing.T) {
	p := startPrimary(t, 64)
	r, err := replica.New(replica.Options{Name: "r1", Primary: p.addr})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	waitSynced(t, p, r)

	reg := obs.NewRegistry()
	r.RegisterObs(reg)
	rsrv := r.NewServer(reg)
	ac := warehouse.NewAdmissionController(warehouse.AdmissionConfig{})
	ac.RegisterObs(reg, obs.L("node", "r1"))
	rsrv.Admission = ac
	// The grace window keeps the server answering established
	// connections long enough for the assertions below.
	rsrv.DrainGrace = time.Second
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = rsrv.Serve(ln) }()
	defer rsrv.Close()

	rc, err := warehouse.Dial("r1", ln.Addr().String(), warehouse.NewTransport(0))
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, err := rc.FetchMembers("YP"); err != nil {
		t.Fatalf("baseline members: %v", err)
	}

	drained := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { drained <- rsrv.Drain(ctx) }()
	deadline := time.Now().Add(2 * time.Second)
	for !rsrv.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}

	// Data reads: typed, retryable, recognizably a drain.
	_, err = rc.FetchMembers("YP")
	if !errors.Is(err, warehouse.ErrOverloaded) || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("members while draining = %v, want draining ErrOverloaded", err)
	}
	if _, err := rc.FetchObject("P1"); !errors.Is(err, warehouse.ErrOverloaded) {
		t.Fatalf("object while draining = %v, want ErrOverloaded", err)
	}
	// Health ops keep answering: the drain is observable, not a blackout.
	stats, err := rc.FetchStats()
	if err != nil {
		t.Fatalf("stats while draining: %v", err)
	}
	if stats == nil {
		t.Fatal("nil stats payload")
	}
	if _, err := rc.FetchTrace(""); err != nil {
		t.Fatalf("trace while draining: %v", err)
	}
	if ac.ShedReads.Value() == 0 {
		t.Fatal("draining sheds not counted")
	}

	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// The replica itself is untouched by its server's drain: local reads
	// still work (only the serving tier went away).
	if _, err := r.Members("YP"); err != nil {
		t.Fatalf("local members after drain: %v", err)
	}
}
