// Package replica implements the read-replica serving tier: a node that
// bootstraps its materialized views from a primary's checkpoint (or a
// live snapshot when no checkpoint is available), tails the primary's
// changefeed for every view over one multi-view subscription, applies
// the deltas in cursor order, and serves the read side of the warehouse
// wire protocol with a bounded-staleness guarantee.
//
// The replica holds the same representation as the primary's warehouse:
// one view object <V, mview, set, {delegates}> per view plus one
// delegate clone per member, in a store with parent and label indexes.
// Because feed events carry membership deltas keyed by base OID, apply
// is idempotent — inserting a member that is already present refreshes
// its delegate, deleting an absent member is a no-op — which is what
// makes snapshot bootstrap race-free (events racing the snapshot are
// duplicates, never losses) and redial replay safe.
//
// Staleness accounting rides on the multi-view stream's progress frames
// (warehouse.FeedProgress): the primary periodically announces its base
// sequence number together with every view's feed cursor. The replica is
// caught up with announced sequence S once it has applied every cursor
// announced alongside S — even when the base updates between the two
// frames were screened out of every view and produced no events at all.
// Lag is then both a sequence distance (gsv_replica_lag_seq) and the age
// of the last caught-up instant (gsv_replica_lag_seconds); ReadGate
// rejects data reads when either exceeds its configured bound, while
// always letting "stats" through so operators can inspect a sick node.
// See docs/REPLICA.md.
package replica

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gsv/internal/core"
	"gsv/internal/feed"
	"gsv/internal/obs"
	"gsv/internal/oem"
	"gsv/internal/store"
	"gsv/internal/warehouse"
)

// Options configures New.
type Options struct {
	// Name identifies the replica in metrics and serving.
	Name string
	// Primary is the primary server's address (host:port).
	Primary string
	// BootstrapDir, when non-empty, names a warehouse checkpoint
	// directory to bootstrap from: the view store and per-view feed
	// cursors are restored without fetching a single object, and the
	// changefeed is resumed from the checkpointed cursors. When empty
	// (or the directory holds no valid checkpoint), every view is
	// bootstrapped from a live snapshot instead.
	BootstrapDir string
	// MaxLagSeq bounds staleness by sequence distance: data reads are
	// rejected while the primary is known to be more than this many base
	// updates ahead. 0 means no sequence bound.
	MaxLagSeq uint64
	// MaxLagAge bounds staleness by time: data reads are rejected when
	// the replica has not been fully caught up within this duration —
	// which also covers being disconnected from the primary, when the
	// sequence distance cannot be known. 0 means no age bound.
	MaxLagAge time.Duration
	// Dial configures the fault tolerance of the query connection to the
	// primary (object fetches during apply and reconcile). The zero
	// value means warehouse.DefaultDialOptions.
	Dial warehouse.DialOptions
	// RedialBase and RedialMax bound the exponential backoff between
	// feed reconnect attempts (defaults 50ms and 2s). Redial never gives
	// up; Close stops it.
	RedialBase time.Duration
	RedialMax  time.Duration
	// FeedIdleTimeout declares the subscription dead when no frame — not
	// even a progress heartbeat (FeedProgressInterval, 500ms by default
	// on the server) — arrives for this long, forcing a redial. It also
	// bounds the feed handshake, so a half-open or blackholed connection
	// can never wedge the tail loop. Default 30s; negative disables.
	FeedIdleTimeout time.Duration
	// RingSize sizes the replica's own republished feed rings (0 means
	// the feed default), so downstream consumers can follow a replica
	// exactly like a primary.
	RingSize int
	// Seed seeds the redial jitter (0 means a fixed default).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Name == "" {
		o.Name = "replica"
	}
	if o.RedialBase <= 0 {
		o.RedialBase = 50 * time.Millisecond
	}
	if o.RedialMax <= 0 {
		o.RedialMax = 2 * time.Second
	}
	if o.FeedIdleTimeout == 0 {
		o.FeedIdleTimeout = 30 * time.Second
	} else if o.FeedIdleTimeout < 0 {
		o.FeedIdleTimeout = 0
	}
	if o.Dial.IOTimeout == 0 && o.Dial.Retry.MaxAttempts == 0 && o.Dial.Redial.MaxAttempts == 0 {
		o.Dial = warehouse.DefaultDialOptions()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// errCursorGap forces a feed reconnect when an in-stream cursor jump is
// observed (only possible under lossy slow-consumer policies).
var errCursorGap = errors.New("replica: feed cursor gap")

// rview is one replicated view.
type rview struct {
	name  string
	query string // definition text when known (checkpoint); informational
	mv    *core.MaterializedView
	// applied is the last feed cursor applied to this view.
	applied atomic.Uint64
	// snapWanted forces a snapshot reconcile on the next connect (set at
	// bootstrap for stale checkpoint views and on cursor gaps).
	snapWanted atomic.Bool
	// booted distinguishes the first bootstrap from later resyncs.
	booted bool
	// watermark is the newest origin stamp (Unix nanos) applied to this
	// view; prop, once RegisterObs ran, observes origin→replica-visible
	// propagation latency (docs/OBSERVABILITY.md).
	watermark atomic.Int64
	prop      atomic.Pointer[obs.Histogram]
}

// Replica is one read-replica node.
type Replica struct {
	opts Options

	store *store.Store
	hub   *feed.Hub
	src   *warehouse.RemoteSource

	mu    sync.Mutex
	views map[string]*rview

	// lagMu guards the staleness bookkeeping. Lock order: never take mu
	// while holding lagMu.
	lagMu       sync.Mutex
	primarySeq  uint64            // highest announced primary sequence
	caughtUpSeq uint64            // highest sequence fully applied
	caughtUpAt  time.Time         // when the replica was last caught up
	lastSeq     uint64            // sequence of the latest progress frame
	lastCursors map[string]uint64 // cursors of the latest progress frame

	// connMu guards the live feed connection so Close and Bounce can
	// break a blocked Next.
	connMu   sync.Mutex
	feedConn *warehouse.MultiFeedClient

	// waitMu/waitCond park Wait* callers until progress is made
	// (checkCaughtUp, reconcileView, Close all broadcast) instead of
	// polling. Lock order: waitMu may be held while taking mu or lagMu,
	// never the reverse — broadcasters call notifyWaiters with no other
	// lock held.
	waitMu   sync.Mutex
	waitCond *sync.Cond

	rngMu sync.Mutex
	rng   *rand.Rand

	startedAt time.Time
	closed    atomic.Bool
	closeCh   chan struct{}
	wg        sync.WaitGroup

	// Instruments; RegisterObs exposes them.
	events   obs.Counter // applied feed events
	inserts  obs.Counter // applied member inserts
	deletes  obs.Counter // applied member deletes
	redials  obs.Counter // feed reconnects after a break
	resyncs  obs.Counter // snapshot reconciles after the first bootstrap
	rejected obs.Counter // reads rejected by the staleness gate

	// Propagation tracing (docs/OBSERVABILITY.md): chains records one
	// apply-side span chain per stamped feed event; headOrigin is the
	// newest origin stamp this node has applied to any view; obsReg,
	// once RegisterObs ran, lets views discovered later register their
	// propagation instruments lazily.
	chains     *obs.ChainRing
	headOrigin atomic.Int64
	obsReg     atomic.Pointer[obs.Registry]

	// sampMu guards samples, a bounded ring of recent origin→visible
	// latencies (seconds) for offline percentiles (the E14 p99 column).
	sampMu   sync.Mutex
	samples  []float64
	sampNext int
}

// maxPropagationSamples bounds the latency sample ring.
const maxPropagationSamples = 8192

// New builds a replica: restores the checkpoint when given one, dials
// the primary, and starts the feed tail loop. The initial dial is not
// retried — callers distinguish "primary never reachable" from "failed
// mid-stream" (which redials forever).
func New(o Options) (*Replica, error) {
	o = o.withDefaults()
	r := &Replica{
		opts:      o,
		views:     make(map[string]*rview),
		closeCh:   make(chan struct{}),
		rng:       rand.New(rand.NewSource(o.Seed)),
		startedAt: time.Now(),
		chains:    obs.NewChainRing(512),
	}
	r.waitCond = sync.NewCond(&r.waitMu)
	r.store = store.New(store.Options{ParentIndex: true, LabelIndex: true, AllowDangling: true})
	r.hub = feed.NewHub(feed.Options{RingSize: o.RingSize})

	if o.BootstrapDir != "" {
		bs, err := warehouse.ReadBootstrapState(o.BootstrapDir)
		if err != nil {
			return nil, fmt.Errorf("replica: bootstrap from %s: %w", o.BootstrapDir, err)
		}
		if bs != nil {
			st, err := bs.LoadStore()
			if err != nil {
				return nil, err
			}
			r.store = st
			r.store.AdvanceSeq(bs.Seq)
			for _, bv := range bs.Views {
				v := r.newRView(bv.Name, bv.Query)
				v.applied.Store(bv.FeedCursor)
				v.booted = true
				if bv.Stale {
					v.snapWanted.Store(true)
				}
				r.views[bv.Name] = v
				r.hub.RegisterView(bv.Name, v.mv.Members)
				r.hub.RestoreCursor(bv.Name, bv.FeedCursor)
			}
		}
	}

	src, err := warehouse.DialWithOptions(o.Name, o.Primary, warehouse.NewTransport(0), o.Dial)
	if err != nil {
		return nil, fmt.Errorf("replica: dialing primary %s: %w", o.Primary, err)
	}
	r.src = src

	r.wg.Add(1)
	go r.run()
	return r, nil
}

// newRView builds the in-memory handle for one view (no store changes).
func (r *Replica) newRView(name, query string) *rview {
	return &rview{
		name: name, query: query,
		mv: &core.MaterializedView{OID: oem.OID(name), ViewStore: r.store},
	}
}

// Close stops the tail loop and disconnects from the primary.
func (r *Replica) Close() {
	if r.closed.Swap(true) {
		return
	}
	close(r.closeCh)
	r.notifyWaiters()
	r.connMu.Lock()
	if r.feedConn != nil {
		r.feedConn.Close()
	}
	r.connMu.Unlock()
	r.src.Close()
	r.wg.Wait()
}

// Store exposes the replica's view store (read-only by convention).
func (r *Replica) Store() *store.Store { return r.store }

// Hub exposes the replica's republished changefeed: every applied event
// is re-published under the primary's cursor numbering, so consumers can
// follow a replica exactly like a primary (and keep their cursors when
// moving between the two).
func (r *Replica) Hub() *feed.Hub { return r.hub }

// Views returns the replicated view names, sorted.
func (r *Replica) Views() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.views))
	for name := range r.views {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Members answers a view's current membership from replica state.
func (r *Replica) Members(view string) ([]oem.OID, error) {
	r.mu.Lock()
	v := r.views[view]
	r.mu.Unlock()
	if v == nil {
		return nil, fmt.Errorf("replica: unknown view %s", view)
	}
	return v.mv.Members()
}

// Applied returns a view's last applied feed cursor (0 for unknown).
func (r *Replica) Applied(view string) uint64 {
	r.mu.Lock()
	v := r.views[view]
	r.mu.Unlock()
	if v == nil {
		return 0
	}
	return v.applied.Load()
}

// Lag reports the replica's staleness: how many base updates behind the
// primary is known to be, and how long ago the replica was last fully
// caught up (which keeps growing while disconnected, when the sequence
// distance cannot be known).
func (r *Replica) Lag() (seq uint64, age time.Duration) {
	r.lagMu.Lock()
	defer r.lagMu.Unlock()
	if r.primarySeq > r.caughtUpSeq {
		seq = r.primarySeq - r.caughtUpSeq
	}
	if r.caughtUpAt.IsZero() {
		age = time.Since(r.startedAt)
	} else {
		age = time.Since(r.caughtUpAt)
	}
	return seq, age
}

// CaughtUpSeq returns the highest primary sequence the replica has fully
// applied.
func (r *Replica) CaughtUpSeq() uint64 {
	r.lagMu.Lock()
	defer r.lagMu.Unlock()
	return r.caughtUpSeq
}

// notifyWaiters wakes every Wait*/Reconcile caller to re-check its
// condition. The empty waitMu critical section orders the caller's
// state change before a parked waiter's re-check (a waiter holds
// waitMu from check to Wait, so the broadcast cannot slip between).
func (r *Replica) notifyWaiters() {
	r.waitMu.Lock()
	//lint:ignore SA2001 ordering-only critical section, see comment
	r.waitMu.Unlock()
	r.waitCond.Broadcast()
}

// waitUntil parks the caller until pred holds, the timeout elapses, or
// the replica closes, and reports pred's final value. pred may take mu
// or lagMu (waitMu is ordered before both).
func (r *Replica) waitUntil(timeout time.Duration, pred func() bool) bool {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, r.notifyWaiters)
	defer timer.Stop()
	r.waitMu.Lock()
	defer r.waitMu.Unlock()
	for !pred() {
		if r.closed.Load() || !time.Now().Before(deadline) {
			return pred()
		}
		r.waitCond.Wait()
	}
	return true
}

// WaitSeq blocks until the replica has fully caught up with primary
// sequence seq, or the timeout elapses; it reports success.
func (r *Replica) WaitSeq(seq uint64, timeout time.Duration) bool {
	return r.waitUntil(timeout, func() bool { return r.CaughtUpSeq() >= seq })
}

// WaitCaughtUp blocks until the replica has heard from the primary and
// has zero sequence lag, or the timeout elapses; it reports success.
func (r *Replica) WaitCaughtUp(timeout time.Duration) bool {
	return r.waitUntil(timeout, func() bool {
		r.lagMu.Lock()
		defer r.lagMu.Unlock()
		return r.primarySeq > 0 && r.caughtUpSeq >= r.primarySeq
	})
}

// Reconcile forces a full snapshot reconcile of every view: the feed
// connection is bounced and re-established without resume cursors, so
// every view is re-fetched from a fresh primary snapshot. This also
// refreshes delegate values that changed without a membership event
// (value-only base modifies publish none). It blocks until every view
// has reconciled or a timeout elapses.
func (r *Replica) Reconcile() error {
	r.mu.Lock()
	for _, v := range r.views {
		v.snapWanted.Store(true)
	}
	r.mu.Unlock()
	r.connMu.Lock()
	if r.feedConn != nil {
		r.feedConn.Close()
	}
	r.connMu.Unlock()
	done := r.waitUntil(10*time.Second, func() bool {
		r.mu.Lock()
		defer r.mu.Unlock()
		for _, v := range r.views {
			if v.snapWanted.Load() {
				return false
			}
		}
		return true
	})
	if done {
		return nil
	}
	if r.closed.Load() {
		return errors.New("replica: closed")
	}
	return errors.New("replica: reconcile timed out")
}

// ReadGate enforces the bounded-staleness guarantee for the wire
// protocol: data reads fail while lag exceeds a configured bound, stats
// always pass. Wire it as warehouse.Server.ReadGate.
func (r *Replica) ReadGate(op string) error {
	if op == "stats" || op == "trace" {
		return nil
	}
	if err := r.lagExceeded(); err != nil {
		r.rejected.Inc()
		return err
	}
	return nil
}

// lagExceeded reports whether staleness currently exceeds a configured
// bound (nil when within bounds or unbounded).
func (r *Replica) lagExceeded() error {
	lagSeq, lagAge := r.Lag()
	if r.opts.MaxLagSeq > 0 && lagSeq > r.opts.MaxLagSeq {
		return fmt.Errorf("replica: %d updates behind primary (bound %d); read rejected", lagSeq, r.opts.MaxLagSeq)
	}
	if r.opts.MaxLagAge > 0 && lagAge > r.opts.MaxLagAge {
		return fmt.Errorf("replica: not caught up for %s (bound %s); read rejected", lagAge.Round(time.Millisecond), r.opts.MaxLagAge)
	}
	return nil
}

// Ready answers the replica's readiness probe (the /readyz handler,
// docs/OBSERVABILITY.md "Health endpoints"): nil while staleness is
// within the configured lag bounds — the same criterion the read gate
// enforces per request, without counting a rejection.
func (r *Replica) Ready() error { return r.lagExceeded() }

// NewServer wires a warehouse.Server that serves this replica's state
// read-only: queries and stats answer from the replica store, "members"
// from the replicated views, the feed from the republished hub, and
// every data read passes the staleness gate.
func (r *Replica) NewServer(reg *obs.Registry) *warehouse.Server {
	src := warehouse.NewSource(r.opts.Name, r.store, oem.NoOID, warehouse.Level1, warehouse.NewTransport(0))
	srv := warehouse.NewServer(src)
	srv.Feed = r.hub
	srv.Obs = reg
	srv.Members = r.Members
	srv.ReadGate = r.ReadGate
	srv.Chains = r.chains
	srv.Node = r.opts.Name
	return srv
}

// RegisterObs exposes the replica's instruments on reg.
func (r *Replica) RegisterObs(reg *obs.Registry) {
	reg.Help("gsv_replica_lag_seq", "base updates the primary is known to be ahead of the replica")
	reg.Help("gsv_replica_lag_seconds", "seconds since the replica was last fully caught up")
	reg.Help("gsv_replica_primary_seq", "highest base sequence announced by the primary")
	reg.Help("gsv_replica_applied_seq", "highest base sequence fully applied by the replica")
	reg.Help("gsv_replica_applied_events_total", "feed events applied to replicated views")
	reg.Help("gsv_replica_applied_deltas_total", "membership deltas applied, by op")
	reg.Help("gsv_replica_feed_redials_total", "feed connections re-established after a break")
	reg.Help("gsv_replica_resyncs_total", "snapshot reconciles after the initial bootstrap")
	reg.Help("gsv_replica_rejected_reads_total", "reads rejected by the bounded-staleness gate")
	lr := obs.L("replica", r.opts.Name)
	reg.GaugeFunc("gsv_replica_lag_seq", func() float64 {
		s, _ := r.Lag()
		return float64(s)
	}, lr)
	reg.GaugeFunc("gsv_replica_lag_seconds", func() float64 {
		_, a := r.Lag()
		return a.Seconds()
	}, lr)
	reg.GaugeFunc("gsv_replica_primary_seq", func() float64 {
		r.lagMu.Lock()
		defer r.lagMu.Unlock()
		return float64(r.primarySeq)
	}, lr)
	reg.GaugeFunc("gsv_replica_applied_seq", func() float64 {
		return float64(r.CaughtUpSeq())
	}, lr)
	reg.RegisterCounter("gsv_replica_applied_events_total", &r.events, lr)
	reg.RegisterCounter("gsv_replica_applied_deltas_total", &r.inserts, lr, obs.L("op", "insert"))
	reg.RegisterCounter("gsv_replica_applied_deltas_total", &r.deletes, lr, obs.L("op", "delete"))
	reg.RegisterCounter("gsv_replica_feed_redials_total", &r.redials, lr)
	reg.RegisterCounter("gsv_replica_resyncs_total", &r.resyncs, lr)
	reg.RegisterCounter("gsv_replica_rejected_reads_total", &r.rejected, lr)
	// Propagation tracing: the replica's half of the metrics the primary
	// registers in Warehouse.EnableObs, under this node's name.
	ln := obs.L("node", r.opts.Name)
	reg.Help("gsv_propagation_seconds", "origin-to-stage propagation latency, by stage/view/node")
	reg.Help("gsv_watermark_head_seconds", "newest origin stamp applied on this node, as Unix seconds")
	reg.Help("gsv_view_watermark_seconds", "newest origin stamp visible in the view, as Unix seconds")
	reg.Help("gsv_view_freshness_lag_seconds", "how far the view's watermark trails this node's head")
	reg.Help("gsv_chains_total", "propagation span chains recorded since startup")
	reg.GaugeFunc("gsv_chains_total", func() float64 { return float64(r.chains.Total()) }, ln)
	reg.GaugeFunc("gsv_watermark_head_seconds", func() float64 {
		return float64(r.headOrigin.Load()) / 1e9
	}, ln)
	r.obsReg.Store(reg)
	r.mu.Lock()
	views := make([]*rview, 0, len(r.views))
	for _, v := range r.views {
		views = append(views, v)
	}
	r.mu.Unlock()
	for _, v := range views {
		r.registerViewProp(v)
	}
	// The replica's serving store exports its MVCC gauges too — pinned
	// snapshots here are reconcile diff bases and in-flight reads.
	warehouse.RegisterStoreObs(reg, r.store, obs.L("store", "replica:"+r.opts.Name))
	r.src.RegisterObs(reg)
}

// registerViewProp attaches one view's propagation instruments to the
// registry: the origin→visible histogram and the watermark gauges.
// No-op until RegisterObs ran; idempotent per view.
func (r *Replica) registerViewProp(v *rview) {
	reg := r.obsReg.Load()
	if reg == nil || v.prop.Load() != nil {
		return
	}
	ln := obs.L("node", r.opts.Name)
	lv := obs.L("view", v.name)
	reg.GaugeFunc("gsv_view_watermark_seconds", func() float64 {
		return float64(v.watermark.Load()) / 1e9
	}, ln, lv)
	reg.GaugeFunc("gsv_view_freshness_lag_seconds", func() float64 {
		head, seen := r.headOrigin.Load(), v.watermark.Load()
		if head <= seen {
			return 0
		}
		return float64(head-seen) / 1e9
	}, ln, lv)
	v.prop.Store(reg.Histogram("gsv_propagation_seconds", nil, ln, obs.L("stage", "apply"), lv))
}

// PropagationSamples returns a copy of the recent origin→replica-visible
// latencies, in seconds (bounded ring, newest overwrite oldest). The
// benchmark harness derives its p99 from this.
func (r *Replica) PropagationSamples() []float64 {
	r.sampMu.Lock()
	defer r.sampMu.Unlock()
	return append([]float64(nil), r.samples...)
}

// FeedRedials returns how many times the feed connection was
// re-established after a break.
func (r *Replica) FeedRedials() uint64 { return r.redials.Value() }

// Resyncs returns how many snapshot reconciles ran after the initial
// bootstrap.
func (r *Replica) Resyncs() uint64 { return r.resyncs.Value() }

// --- feed tail loop -------------------------------------------------------

// run is the tail loop: (re)connect the multi-view subscription, apply
// frames until the stream breaks, repeat until Close.
func (r *Replica) run() {
	defer r.wg.Done()
	connected := false
	attempt := 0
	for {
		if r.closed.Load() {
			return
		}
		req := warehouse.MultiFeedRequest{
			Views: []string{"*"}, Snapshot: true, Froms: map[string]uint64{},
			IOTimeout:   r.opts.FeedIdleTimeout,
			ReadTimeout: r.opts.FeedIdleTimeout,
		}
		r.mu.Lock()
		for name, v := range r.views {
			if !v.snapWanted.Load() {
				req.Froms[name] = v.applied.Load()
			}
		}
		r.mu.Unlock()
		mfc, err := warehouse.DialMultiFeed(r.opts.Primary, req)
		if err != nil {
			if strings.Contains(err.Error(), "cursor in the future") {
				// The primary regressed past our cursors (e.g. a fresh
				// data directory): re-bootstrap everything from snapshots.
				r.mu.Lock()
				for _, v := range r.views {
					v.snapWanted.Store(true)
				}
				r.mu.Unlock()
				continue
			}
			attempt++
			if !r.sleep(r.backoff(attempt)) {
				return
			}
			continue
		}
		attempt = 0
		if connected {
			r.redials.Inc()
		}
		connected = true
		r.handleStream(mfc)
		mfc.Close()
		if r.closed.Load() {
			return
		}
		if !r.sleep(r.backoff(1)) {
			return
		}
	}
}

// handleStream consumes one multi-view connection: reconcile per-view
// handshake state, then apply events and progress frames until the
// stream breaks.
func (r *Replica) handleStream(mfc *warehouse.MultiFeedClient) {
	r.connMu.Lock()
	if r.closed.Load() {
		r.connMu.Unlock()
		return
	}
	r.feedConn = mfc
	r.connMu.Unlock()
	defer func() {
		r.connMu.Lock()
		if r.feedConn == mfc {
			r.feedConn = nil
		}
		r.connMu.Unlock()
	}()

	cursors := make(map[string]uint64, len(mfc.Views))
	for _, vh := range mfc.Views {
		v := r.ensureView(vh.View)
		if vh.Snapshot != nil {
			if err := r.reconcileView(v, vh.Snapshot); err != nil {
				// A degraded primary (e.g. transient fetch faults at one
				// shard of a federation) must not stall every view: this
				// one stays marked for snapshot (snapWanted survives the
				// failure) and re-reconciles on the next handshake, while
				// the remaining views reconcile and stream now.
				continue
			}
		}
		cursors[vh.View] = vh.Cursor
	}
	if mfc.Seq > 0 {
		r.store.AdvanceSeq(mfc.Seq)
	}
	r.noteProgress(mfc.Seq, cursors)
	for {
		fr, err := mfc.Next()
		if err != nil {
			return
		}
		switch {
		case fr.Event != nil:
			if err := r.applyEvent(*fr.Event); err != nil {
				return
			}
			r.checkCaughtUp()
		case fr.Progress != nil:
			r.noteProgress(fr.Progress.Seq, fr.Progress.Cursors)
			// The query connection's report stream is unused on a
			// replica (deltas arrive via the feed); keep its buffer
			// empty.
			r.src.DrainReports()
		}
	}
}

// ensureView returns the view's handle, creating the empty view object
// on first sight of a name discovered from the primary.
func (r *Replica) ensureView(name string) *rview {
	r.mu.Lock()
	v := r.views[name]
	if v == nil {
		v = r.newRView(name, "")
		r.views[name] = v
	}
	r.mu.Unlock()
	if !r.store.Has(oem.OID(name)) {
		_ = r.store.Put(oem.NewSet(oem.OID(name), core.ViewLabel))
	}
	r.hub.RegisterView(name, v.mv.Members)
	r.registerViewProp(v)
	return v
}

// applyEvent applies one feed event to its view: duplicates (cursor at
// or below applied) are skipped, the next cursor is applied, and a jump
// forces a snapshot reconcile on reconnect.
func (r *Replica) applyEvent(ev feed.Event) error {
	r.mu.Lock()
	v := r.views[ev.View]
	r.mu.Unlock()
	if v == nil {
		return nil // view subscribed by an older connection; ignore
	}
	applied := v.applied.Load()
	if ev.Cursor <= applied {
		return nil // idempotent duplicate (snapshot race or replay)
	}
	if ev.Cursor != applied+1 {
		v.snapWanted.Store(true)
		return errCursorGap
	}
	var applyStart time.Time
	if ev.Origin > 0 {
		applyStart = time.Now()
	}
	for _, b := range ev.Delete {
		d := core.DelegateOID(v.mv.OID, b)
		if r.store.HasChild(v.mv.OID, d) {
			if err := r.store.Delete(v.mv.OID, d); err != nil {
				v.snapWanted.Store(true)
				return err
			}
			if err := r.store.Remove(d); err != nil {
				v.snapWanted.Store(true)
				return err
			}
			r.deletes.Inc()
		}
	}
	for _, b := range ev.Insert {
		if err := r.insertMember(v, b); err != nil {
			// Half-applied event: the cursor was not advanced, so a
			// resume from here would replay it — but the fetch may keep
			// failing while the stream outruns the replay ring, and a
			// later cursor resume would then lose the members for good.
			// Force a snapshot reconcile on the next handshake instead.
			v.snapWanted.Store(true)
			return err
		}
		r.inserts.Inc()
	}
	v.applied.Store(ev.Cursor)
	if ev.Seq > 0 {
		r.store.AdvanceSeq(ev.Seq)
	}
	r.events.Inc()
	if ev.Origin > 0 {
		r.noteApplied(v, ev, applyStart)
	}
	// Republish under the primary's cursor numbering so downstream
	// consumers can follow this replica like a primary.
	r.hub.RestoreCursor(ev.View, ev.Cursor-1)
	r.hub.PublishEvent(ev)
	return nil
}

// noteApplied records the apply side of one stamped event's
// propagation: the node and view watermarks advance to the event's
// origin, the origin→visible latency lands in the histogram and the
// sample ring, and the event's span chain gains this node's link.
func (r *Replica) noteApplied(v *rview, ev feed.Event, t0 time.Time) {
	now := time.Now()
	obs.AdvanceWatermark(&r.headOrigin, ev.Origin)
	obs.AdvanceWatermark(&v.watermark, ev.Origin)
	lat := float64(now.UnixNano()-ev.Origin) / 1e9
	if h := v.prop.Load(); h != nil {
		h.Observe(lat)
	}
	r.sampMu.Lock()
	if len(r.samples) < maxPropagationSamples {
		r.samples = append(r.samples, lat)
	} else {
		r.samples[r.sampNext] = lat
		r.sampNext = (r.sampNext + 1) % maxPropagationSamples
	}
	r.sampMu.Unlock()
	if ev.TraceID == "" {
		return
	}
	r.chains.Add(obs.SpanChain{
		TraceID: ev.TraceID, Seq: ev.Seq, Kind: ev.Kind, View: ev.View,
		Origin: ev.Origin, Node: r.opts.Name,
		Spans: []obs.Span{{
			Node: r.opts.Name, View: ev.View, Stage: "apply",
			Start: t0.UnixNano() - ev.Origin,
			Nanos: now.Sub(t0).Nanoseconds(),
		}},
	})
}

// insertMember fetches base object b from the primary and installs (or
// refreshes) its delegate in the view — idempotent.
func (r *Replica) insertMember(v *rview, b oem.OID) error {
	o, err := r.src.FetchObject(b)
	if err != nil {
		return err
	}
	d := o.Clone()
	d.OID = core.DelegateOID(v.mv.OID, b)
	if r.store.Has(d.OID) {
		if err := v.mv.RefreshDelegateFrom(o); err != nil {
			return err
		}
	} else if err := r.store.Put(d); err != nil {
		return err
	}
	if !r.store.HasChild(v.mv.OID, d.OID) {
		if err := r.store.Insert(v.mv.OID, d.OID); err != nil {
			return err
		}
	}
	return nil
}

// reconcileView reconciles one view against a full snapshot: departed
// members are dropped, every snapshot member is fetched fresh (which
// also refreshes delegate values), and the applied cursor jumps to the
// snapshot's.
func (r *Replica) reconcileView(v *rview, snap *warehouse.FeedSnapshot) error {
	if v.booted {
		r.resyncs.Inc()
	}
	want := make(map[oem.OID]bool, len(snap.Members))
	for _, b := range snap.Members {
		want[b] = true
	}
	// Diff against a pinned version of the replica store: the membership
	// this reconcile subtracts from stays frozen while the loop below
	// mutates the store, and concurrent serving reads are undisturbed.
	pin := r.store.Snapshot()
	cur, err := v.mv.MembersAt(pin)
	pin.Close()
	if err != nil {
		return err
	}
	for _, b := range cur {
		if want[b] {
			continue
		}
		d := core.DelegateOID(v.mv.OID, b)
		if err := r.store.Delete(v.mv.OID, d); err != nil {
			return err
		}
		if err := r.store.Remove(d); err != nil {
			return err
		}
	}
	for _, b := range snap.Members {
		if err := r.insertMember(v, b); err != nil {
			return err
		}
	}
	v.applied.Store(snap.Cursor)
	v.snapWanted.Store(false)
	v.booted = true
	r.hub.RestoreCursor(v.name, snap.Cursor)
	r.notifyWaiters()
	return nil
}

// noteProgress records a progress announcement and re-evaluates whether
// the replica is caught up with it.
func (r *Replica) noteProgress(seq uint64, cursors map[string]uint64) {
	c := make(map[string]uint64, len(cursors))
	for k, v := range cursors {
		c[k] = v
	}
	r.lagMu.Lock()
	if seq > r.primarySeq {
		r.primarySeq = seq
	}
	r.lastSeq = seq
	r.lastCursors = c
	r.lagMu.Unlock()
	r.checkCaughtUp()
}

// checkCaughtUp marks the replica caught up with the latest progress
// announcement once every announced cursor has been applied.
func (r *Replica) checkCaughtUp() {
	r.lagMu.Lock()
	seq, cursors := r.lastSeq, r.lastCursors
	r.lagMu.Unlock()
	if cursors == nil {
		return
	}
	r.mu.Lock()
	ok := true
	for view, c := range cursors {
		v := r.views[view]
		if v == nil || v.applied.Load() < c {
			ok = false
			break
		}
	}
	r.mu.Unlock()
	if !ok {
		return
	}
	r.lagMu.Lock()
	if seq > r.caughtUpSeq {
		r.caughtUpSeq = seq
	}
	r.caughtUpAt = time.Now()
	r.lagMu.Unlock()
	r.notifyWaiters()
}

// backoff computes the jittered exponential redial delay.
func (r *Replica) backoff(attempt int) time.Duration {
	d := r.opts.RedialBase
	for i := 1; i < attempt && d < r.opts.RedialMax; i++ {
		d *= 2
	}
	if d > r.opts.RedialMax {
		d = r.opts.RedialMax
	}
	r.rngMu.Lock()
	j := time.Duration(r.rng.Int63n(int64(d)/2 + 1))
	r.rngMu.Unlock()
	return d/2 + j
}

// sleep waits d, interruptibly; false means the replica closed.
func (r *Replica) sleep(d time.Duration) bool {
	select {
	case <-r.closeCh:
		return false
	case <-time.After(d):
		return true
	}
}
