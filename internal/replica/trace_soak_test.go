package replica_test

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gsv/internal/faults"
	"gsv/internal/feed"
	"gsv/internal/obs"
	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/replica"
	"gsv/internal/store"
	"gsv/internal/warehouse"
	"gsv/internal/workload"
)

// TestPropagationTraceSoak is the observability acceptance drill: a
// durable primary and one replica run a chaotic workload (every
// connection injects seeded errors, delays and drops), after which
//
//   - every update the replica applied carries a COMPLETE span chain —
//     joined on trace ID across both nodes it reads WAL → screen …
//     maintain → apply, ingestion to replica-visible;
//   - propagation histograms and watermark gauges are populated on both
//     nodes' registries;
//   - the primary's /readyz flips unhealthy while a view is quarantined
//     Stale and recovers after RepairAll, and the replica's readiness
//     reflects its lag bounds.
func TestPropagationTraceSoak(t *testing.T) {
	s := store.NewDefault()
	db := workload.RelationLike(s, workload.RelationConfig{
		Relations: 2, TuplesPerRelation: 4, FieldsPerTuple: 2, Seed: 17,
	})
	src := warehouse.NewSource("rel", s, "REL", warehouse.Level2, warehouse.NewTransport(0))
	src.DrainReports()
	w := warehouse.New(src)
	if _, err := w.EnableDurability(t.TempDir(), warehouse.DurabilityOptions{}); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	w.EnableObs(reg)
	w.Feed = feed.NewHub(feed.Options{RingSize: 1024})
	views := []struct {
		name string
		q    string
	}{
		{"TSOAK0", "SELECT REL.r0.tuple X WHERE X.age > 40"},
		{"TSOAK1", "SELECT REL.r1.tuple X WHERE X.age <= 60"},
	}
	for _, sp := range views {
		if _, err := w.DefineView(sp.name, query.MustParse(sp.q), warehouse.ViewConfig{}); err != nil {
			t.Fatal(err)
		}
	}

	inj := faults.New(faults.Config{
		Seed:      42,
		DropProb:  0.01,
		ErrProb:   0.02,
		DelayProb: 0.05,
		Delay:     200 * time.Microsecond,
	})
	server := warehouse.NewServer(src)
	server.Feed = w.Feed
	server.Members = w.FreshMembers
	server.Obs = reg
	server.Traces = w.Traces
	server.Chains = w.Chains
	server.FeedProgressInterval = 15 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = server.Serve(inj.WrapListener(ln)) }()
	t.Cleanup(server.Close)

	dial := warehouse.DialOptions{
		IOTimeout: 2 * time.Second,
		Retry: warehouse.RetryPolicy{
			MaxAttempts: 10, BaseDelay: time.Millisecond,
			MaxDelay: 20 * time.Millisecond, Multiplier: 2, Jitter: 0.2,
		},
		Redial: warehouse.RetryPolicy{
			MaxAttempts: 2000, BaseDelay: time.Millisecond,
			MaxDelay: 10 * time.Millisecond, Multiplier: 2, Jitter: 0.2,
		},
		Seed: 7,
	}
	var r *replica.Replica
	for try := 0; try < 50; try++ { // the injector can kill the first dial
		r, err = replica.New(replica.Options{
			Name: "tsoak", Primary: ln.Addr().String(), Dial: dial,
			RedialBase: 2 * time.Millisecond, RedialMax: 50 * time.Millisecond,
			FeedIdleTimeout: 500 * time.Millisecond,
		})
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	// Wait for the feed subscription to attach before driving updates:
	// anything applied earlier would be absorbed by the bootstrap
	// snapshot instead of arriving as stamped feed events.
	if !r.WaitCaughtUp(10 * time.Second) {
		t.Fatal("replica never attached to the feed")
	}
	rreg := obs.NewRegistry()
	r.RegisterObs(rreg)
	rsrv := r.NewServer(rreg)
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = rsrv.Serve(rln) }()
	t.Cleanup(rsrv.Close)

	// Modify-only chaos workload: memberships flap, trace stamps flow.
	var sets, atoms []oem.OID
	for _, rel := range db.Relations {
		sets = append(sets, rel.OID)
		sets = append(sets, rel.Tuples...)
		for _, tu := range rel.Tuples {
			kids, _ := s.Children(tu)
			atoms = append(atoms, kids...)
		}
	}
	stream := workload.NewStream(s, workload.StreamConfig{
		Seed: 29, Mix: workload.Mix{Modify: 1}, ValueRange: 90,
	}, sets, atoms)
	for i := 0; i < 60; i++ {
		if _, ok := stream.Next(); !ok {
			t.Fatal("stream exhausted")
		}
		if err := w.ProcessAll(src.DrainReports()); err != nil {
			t.Fatalf("maintenance: %v", err)
		}
	}
	if !r.WaitSeq(src.Store.Seq(), 30*time.Second) {
		lag, age := r.Lag()
		t.Fatalf("replica never caught up: %d behind (%s)", lag, age)
	}

	// --- Chain completeness: join replica apply chains with the
	// primary's ring on trace ID. The replica's half arrives over the
	// wire, exercising the trace op against a replica server (which the
	// read gate must never reject).
	probe, err := warehouse.Dial("probe", rln.Addr().String(), warehouse.NewTransport(0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(probe.Close)
	rpayload, err := probe.FetchTrace("")
	if err != nil {
		t.Fatal(err)
	}
	if rpayload.Node != "tsoak" || len(rpayload.Chains) == 0 {
		t.Fatalf("replica trace payload = %+v", rpayload)
	}

	type half struct{ wal, screen, maintain bool }
	primary := map[string]map[string]*half{} // traceID -> view -> stages
	for _, c := range w.Chains.Snapshot() {
		byView := primary[c.TraceID]
		if byView == nil {
			byView = map[string]*half{}
			primary[c.TraceID] = byView
		}
		h := byView[c.View]
		if h == nil {
			h = &half{}
			byView[c.View] = h
		}
		for _, sp := range c.Spans {
			switch sp.Stage {
			case "wal":
				h.wal = true
			case "screen":
				h.screen = true
			case "maintain":
				h.maintain = true
			}
		}
	}
	applied := 0
	for _, c := range rpayload.Chains {
		if c.TraceID == "" || c.Origin <= 0 || c.Node != "tsoak" {
			t.Fatalf("replica chain missing trace context: %+v", c)
		}
		if len(c.Spans) != 1 || c.Spans[0].Stage != "apply" || c.Spans[0].Nanos < 0 {
			t.Fatalf("replica chain spans = %+v", c.Spans)
		}
		byView, ok := primary[c.TraceID]
		if !ok {
			t.Fatalf("applied update %s has no primary chain", c.TraceID)
		}
		if h := byView[""]; h == nil || !h.wal {
			t.Fatalf("applied update %s has no WAL ingestion span", c.TraceID)
		}
		h := byView[c.View]
		if h == nil || !h.screen || !h.maintain {
			// An applied feed event means the view changed, so the
			// primary must have screened AND maintained this update.
			t.Fatalf("applied update %s view %s: incomplete primary half %+v", c.TraceID, c.View, h)
		}
		applied++
	}
	if applied == 0 {
		t.Fatal("no applied updates to join")
	}

	// --- Histograms and watermarks populated on both nodes.
	psnap, rsnap := reg.Snapshot(), rreg.Snapshot()
	for _, check := range []struct {
		name   string
		snap   obs.Snapshot
		metric string
		labels []obs.Label
	}{
		{"primary wal latency", psnap, "gsv_propagation_seconds",
			[]obs.Label{obs.L("node", "primary"), obs.L("stage", "wal")}},
		{"primary maintain latency", psnap, "gsv_propagation_seconds",
			[]obs.Label{obs.L("node", "primary"), obs.L("stage", "maintain"), obs.L("view", "TSOAK0")}},
		{"replica apply latency", rsnap, "gsv_propagation_seconds",
			[]obs.Label{obs.L("node", "tsoak"), obs.L("stage", "apply"), obs.L("view", "TSOAK0")}},
	} {
		p, ok := check.snap.Get(check.metric, check.labels...)
		if !ok || p.Count == 0 {
			t.Fatalf("%s: %+v, %v", check.name, p, ok)
		}
	}
	for _, check := range []struct {
		name   string
		snap   obs.Snapshot
		metric string
		labels []obs.Label
	}{
		{"primary head watermark", psnap, "gsv_watermark_head_seconds",
			[]obs.Label{obs.L("node", "primary")}},
		{"primary view watermark", psnap, "gsv_view_watermark_seconds",
			[]obs.Label{obs.L("node", "primary"), obs.L("view", "TSOAK0")}},
		{"primary chains total", psnap, "gsv_chains_total",
			[]obs.Label{obs.L("node", "primary")}},
		{"replica head watermark", rsnap, "gsv_watermark_head_seconds",
			[]obs.Label{obs.L("node", "tsoak")}},
		{"replica view watermark", rsnap, "gsv_view_watermark_seconds",
			[]obs.Label{obs.L("node", "tsoak"), obs.L("view", "TSOAK1")}},
		{"replica chains total", rsnap, "gsv_chains_total",
			[]obs.Label{obs.L("node", "tsoak")}},
	} {
		p, ok := check.snap.Get(check.metric, check.labels...)
		if !ok || p.Value <= 0 {
			t.Fatalf("%s: %+v, %v", check.name, p, ok)
		}
	}
	if p, ok := psnap.Get("gsv_view_freshness_lag_seconds", obs.L("node", "primary"), obs.L("view", "TSOAK0")); !ok || p.Value < 0 {
		t.Fatalf("primary freshness lag: %+v, %v", p, ok)
	}
	if len(r.PropagationSamples()) == 0 {
		t.Fatal("replica recorded no propagation samples")
	}

	// --- Readiness. The primary's /readyz flips 503 while a view is
	// quarantined and recovers after RepairAll; the replica's readiness
	// follows its lag bounds (in-bounds here, so healthy).
	mux := obs.DebugMux(reg)
	obs.HealthHandlers(mux, w.Ready)
	hs := httptest.NewServer(mux)
	t.Cleanup(hs.Close)
	get := func(path string) (int, string) {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}
	if code, body := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz before quarantine = %d %q", code, body)
	}
	if err := w.Quarantine("TSOAK0", "soak drill"); err != nil {
		t.Fatal(err)
	}
	code, body := get("/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "TSOAK0") {
		t.Fatalf("/readyz while quarantined = %d %q", code, body)
	}
	if n, err := w.RepairAll(); err != nil || n != 1 {
		t.Fatalf("RepairAll = %d, %v", n, err)
	}
	if code, body := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after repair = %d %q", code, body)
	}
	if err := r.Ready(); err != nil {
		t.Fatalf("caught-up replica not ready: %v", err)
	}
}
