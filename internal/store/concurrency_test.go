package store

import (
	"fmt"
	"sync"
	"testing"

	"gsv/internal/oem"
)

// TestConcurrentReadersAndWriter hammers a store with parallel readers
// while one writer mutates; run with -race this verifies the locking
// discipline of every read path.
func TestConcurrentReadersAndWriter(t *testing.T) {
	s := buildPerson(t, DefaultOptions())
	const readers = 8
	const iters = 300

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 6 {
				case 0:
					_, _ = s.Get("P1")
				case 1:
					_, _ = s.Children("ROOT")
				case 2:
					_, _ = s.Parents("P3")
				case 3:
					_ = s.ByLabel("professor")
				case 4:
					_ = s.OIDs()
				default:
					_ = s.Log()
				}
			}
		}(r)
	}
	for i := 0; i < iters; i++ {
		oid := oem.OID(fmt.Sprintf("w%d", i))
		s.MustPut(oem.NewAtom(oid, "age", oem.Int(int64(i))))
		if err := s.Insert("P2", oid); err != nil {
			t.Fatal(err)
		}
		if err := s.Modify(oid, oem.Int(int64(i+1))); err != nil {
			t.Fatal(err)
		}
		if err := s.Delete("P2", oid); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	// 15 creations from the fixture, then create+insert+modify+delete per
	// iteration.
	if s.Seq() != uint64(15+4*iters) {
		t.Fatalf("Seq = %d, want %d", s.Seq(), 15+4*iters)
	}
}

// TestConcurrentWriters runs parallel writers on disjoint parents; the
// final state must contain every insert exactly once.
func TestConcurrentWriters(t *testing.T) {
	s := NewDefault()
	const writers = 6
	const perWriter = 100
	for w := 0; w < writers; w++ {
		s.MustPut(oem.NewSet(oem.OID(fmt.Sprintf("S%d", w)), "bucket"))
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			parent := oem.OID(fmt.Sprintf("S%d", w))
			for i := 0; i < perWriter; i++ {
				oid := oem.OID(fmt.Sprintf("o%d_%d", w, i))
				if err := s.Put(oem.NewAtom(oid, "item", oem.Int(int64(i)))); err != nil {
					t.Error(err)
					return
				}
				if err := s.Insert(parent, oid); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < writers; w++ {
		kids, err := s.Children(oem.OID(fmt.Sprintf("S%d", w)))
		if err != nil {
			t.Fatal(err)
		}
		if len(kids) != perWriter {
			t.Fatalf("bucket %d has %d children, want %d", w, len(kids), perWriter)
		}
	}
	// The log is a total order: sequence numbers are dense and unique.
	log := s.Log()
	for i, u := range log {
		if u.Seq != uint64(i+1) {
			t.Fatalf("log[%d].Seq = %d", i, u.Seq)
		}
	}
}
