package store

import (
	"errors"
	"fmt"
	"sync/atomic"

	"gsv/internal/oem"
)

// ErrSnapshotReclaimed reports a read against a snapshot that is no longer
// available: either the handle was Closed, or SnapshotAt asked for a
// sequence number older than the store's retained version horizon.
var ErrSnapshotReclaimed = errors.New("store: snapshot reclaimed")

// ErrFutureSeq reports a SnapshotAt for a sequence number the store has not
// committed yet.
var ErrFutureSeq = errors.New("store: sequence not yet committed")

// oidSet is a persistent set of OIDs, used for the parent and label indexes
// so that every committed version carries its own consistent index state.
type oidSet = pmap[struct{}]

// version is one immutable committed state of the store: the object map and
// both indexes as of seq. Versions are never modified after publication;
// writers derive the next version by path-copying (see pmap) and swap it in
// atomically, so readers holding any version see a frozen, internally
// consistent store — objects, parent index and label index all at the same
// sequence number.
type version struct {
	seq     uint64
	objects *pmap[*oem.Object]
	parents *pmap[*oidSet] // child -> parents, when ParentIndex
	byLabel *pmap[*oidSet] // label -> objects, when LabelIndex
}

// next returns a mutable shallow copy carrying the same maps; the caller
// replaces whichever maps it changes before committing.
func (v *version) next() *version {
	return &version{seq: v.seq, objects: v.objects, parents: v.parents, byLabel: v.byLabel}
}

// Reader is the read-only surface of a store, implemented by both *Store
// (reads resolve against the current version, lock-free) and *Snapshot
// (reads resolve against one pinned version). Query evaluation, view
// maintenance access paths and serving tiers consume Reader so they can be
// pointed at either live state or a frozen point-in-time view.
type Reader interface {
	Options() Options
	Len() int
	Seq() uint64
	Get(oid oem.OID) (*oem.Object, error)
	Has(oid oem.OID) bool
	HasChild(parent, child oem.OID) bool
	Label(oid oem.OID) (string, error)
	Children(oid oem.OID) ([]oem.OID, error)
	Parents(oid oem.OID) ([]oem.OID, error)
	ByLabel(label string) []oem.OID
	OIDs() []oem.OID
	ForEach(fn func(*oem.Object))
	DatabaseMembers(db oem.OID) (map[oem.OID]bool, error)
}

var (
	_ Reader = (*Store)(nil)
	_ Reader = (*Snapshot)(nil)
)

// ---- version read helpers (shared by Store and Snapshot) ----

func (v *version) get(oid oem.OID) (*oem.Object, bool) {
	return v.objects.Get(string(oid))
}

func readGet(v *version, oid oem.OID) (*oem.Object, error) {
	o, ok := v.get(oid)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, oid)
	}
	return o.Clone(), nil
}

func readHasChild(v *version, opts Options, parent, child oem.OID) bool {
	if opts.ParentIndex {
		ps, ok := v.parents.Get(string(child))
		return ok && ps.Has(string(parent))
	}
	o, ok := v.get(parent)
	return ok && o.Contains(child)
}

func readLabel(v *version, oid oem.OID) (string, error) {
	o, ok := v.get(oid)
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNotFound, oid)
	}
	return o.Label, nil
}

func readChildren(v *version, oid oem.OID) ([]oem.OID, error) {
	o, ok := v.get(oid)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, oid)
	}
	if o.Kind != oem.KindSet {
		return nil, nil
	}
	out := make([]oem.OID, len(o.Set))
	copy(out, o.Set)
	return out, nil
}

func readParents(v *version, opts Options, oid oem.OID) ([]oem.OID, error) {
	if _, ok := v.get(oid); !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, oid)
	}
	if opts.ParentIndex {
		ps, _ := v.parents.Get(string(oid))
		out := make([]oem.OID, 0, ps.Len())
		ps.Range(func(p string, _ struct{}) bool {
			out = append(out, oem.OID(p))
			return true
		})
		return oem.SortOIDs(out), nil
	}
	var out []oem.OID
	v.objects.Range(func(poid string, p *oem.Object) bool {
		if p.Contains(oid) {
			out = append(out, oem.OID(poid))
		}
		return true
	})
	return oem.SortOIDs(out), nil
}

func readByLabel(v *version, opts Options, label string) []oem.OID {
	if opts.LabelIndex {
		m, _ := v.byLabel.Get(label)
		out := make([]oem.OID, 0, m.Len())
		m.Range(func(oid string, _ struct{}) bool {
			out = append(out, oem.OID(oid))
			return true
		})
		return oem.SortOIDs(out)
	}
	var out []oem.OID
	v.objects.Range(func(oid string, o *oem.Object) bool {
		if o.Label == label {
			out = append(out, oem.OID(oid))
		}
		return true
	})
	return oem.SortOIDs(out)
}

func readOIDs(v *version) []oem.OID {
	out := make([]oem.OID, 0, v.objects.Len())
	v.objects.Range(func(oid string, _ *oem.Object) bool {
		out = append(out, oem.OID(oid))
		return true
	})
	return oem.SortOIDs(out)
}

func readForEach(v *version, fn func(*oem.Object)) {
	for _, oid := range readOIDs(v) {
		if o, ok := v.get(oid); ok {
			fn(o.Clone())
		}
	}
}

func readDatabaseMembers(v *version, db oem.OID) (map[oem.OID]bool, error) {
	o, ok := v.get(db)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, db)
	}
	if !o.IsSet() {
		return nil, fmt.Errorf("%w: %s", ErrNotSet, db)
	}
	m := make(map[oem.OID]bool, len(o.Set))
	for _, oid := range o.Set {
		m[oid] = true
	}
	return m, nil
}

// ---- snapshot handles ----

// Snapshot is a pinned, immutable point-in-time view of a store. All read
// methods mirror *Store's and resolve against the version current when the
// snapshot was taken (or the version SnapshotAt resolved), without locks
// and unaffected by concurrent mutation. Close releases the pin; reads on a
// closed snapshot fail with ErrSnapshotReclaimed (methods without an error
// return report empty results).
//
// Snapshots are cheap — taking one is an atomic load plus a counter — so
// per-request pinning is the intended usage pattern.
type Snapshot struct {
	s      *Store
	v      *version
	closed atomic.Bool
}

// Seq returns the sequence number the snapshot is pinned at.
func (sn *Snapshot) Seq() uint64 { return sn.v.seq }

// Options returns the options of the store the snapshot came from.
func (sn *Snapshot) Options() Options { return sn.s.opts }

// Close releases the snapshot's pin. It is idempotent; all subsequent reads
// return ErrSnapshotReclaimed or empty results.
func (sn *Snapshot) Close() {
	if sn.closed.CompareAndSwap(false, true) {
		sn.s.pins.Add(-1)
	}
}

func (sn *Snapshot) view() (*version, error) {
	if sn.closed.Load() {
		return nil, fmt.Errorf("%w: seq %d", ErrSnapshotReclaimed, sn.v.seq)
	}
	return sn.v, nil
}

// Len returns the number of objects at the pinned version.
func (sn *Snapshot) Len() int {
	if sn.closed.Load() {
		return 0
	}
	return sn.v.objects.Len()
}

// Get returns a copy of the object named by oid at the pinned version.
func (sn *Snapshot) Get(oid oem.OID) (*oem.Object, error) {
	v, err := sn.view()
	if err != nil {
		return nil, err
	}
	return readGet(v, oid)
}

// Has reports whether oid names an object at the pinned version.
func (sn *Snapshot) Has(oid oem.OID) bool {
	if sn.closed.Load() {
		return false
	}
	_, ok := sn.v.get(oid)
	return ok
}

// HasChild reports whether child is in the set value of parent at the
// pinned version.
func (sn *Snapshot) HasChild(parent, child oem.OID) bool {
	if sn.closed.Load() {
		return false
	}
	return readHasChild(sn.v, sn.s.opts, parent, child)
}

// Label returns the label of the object named by oid at the pinned version.
func (sn *Snapshot) Label(oid oem.OID) (string, error) {
	v, err := sn.view()
	if err != nil {
		return "", err
	}
	return readLabel(v, oid)
}

// Children returns the set value of oid at the pinned version.
func (sn *Snapshot) Children(oid oem.OID) ([]oem.OID, error) {
	v, err := sn.view()
	if err != nil {
		return nil, err
	}
	return readChildren(v, oid)
}

// Parents returns the parents of oid at the pinned version.
func (sn *Snapshot) Parents(oid oem.OID) ([]oem.OID, error) {
	v, err := sn.view()
	if err != nil {
		return nil, err
	}
	return readParents(v, sn.s.opts, oid)
}

// ByLabel returns the OIDs carrying label at the pinned version.
func (sn *Snapshot) ByLabel(label string) []oem.OID {
	if sn.closed.Load() {
		return nil
	}
	return readByLabel(sn.v, sn.s.opts, label)
}

// OIDs returns every OID at the pinned version, sorted.
func (sn *Snapshot) OIDs() []oem.OID {
	if sn.closed.Load() {
		return nil
	}
	return readOIDs(sn.v)
}

// ForEach calls fn with a copy of every object at the pinned version, in
// sorted OID order.
func (sn *Snapshot) ForEach(fn func(*oem.Object)) {
	if sn.closed.Load() {
		return
	}
	readForEach(sn.v, fn)
}

// DatabaseMembers returns the member set of a database object at the pinned
// version.
func (sn *Snapshot) DatabaseMembers(db oem.OID) (map[oem.OID]bool, error) {
	v, err := sn.view()
	if err != nil {
		return nil, err
	}
	return readDatabaseMembers(v, db)
}

// ---- version history ring ----

// vring is a bounded ring of recently committed versions, ordered by
// ascending sequence number. It backs SnapshotAt: time-travel reads within
// the retention window. Eviction is how old versions are reclaimed — once a
// version leaves the ring and no snapshot pins it, the garbage collector
// frees the trie nodes unique to it.
type vring struct {
	buf   []*version
	start int
	n     int
}

func newVring(capacity int) *vring {
	if capacity < 1 {
		capacity = 1
	}
	return &vring{buf: make([]*version, capacity)}
}

func (r *vring) at(i int) *version { return r.buf[(r.start+i)%len(r.buf)] }

// push appends v, replacing the newest entry when the sequence number is
// unchanged (silent state changes such as garbage collection republish the
// same seq). It reports how many versions were evicted.
func (r *vring) push(v *version) int {
	if r.n > 0 && r.at(r.n-1).seq == v.seq {
		r.buf[(r.start+r.n-1)%len(r.buf)] = v
		return 0
	}
	if r.n == len(r.buf) {
		r.buf[r.start] = nil
		r.start = (r.start + 1) % len(r.buf)
		r.n--
		r.buf[(r.start+r.n)%len(r.buf)] = v
		r.n++
		return 1
	}
	r.buf[(r.start+r.n)%len(r.buf)] = v
	r.n++
	return 0
}

// find returns the newest version with seq <= want, or nil when every
// retained version is newer (the horizon has passed want).
func (r *vring) find(want uint64) *version {
	lo, hi := 0, r.n // invariant: versions before lo have seq <= want
	for lo < hi {
		mid := (lo + hi) / 2
		if r.at(mid).seq <= want {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil
	}
	return r.at(lo - 1)
}

func (r *vring) oldest() *version {
	if r.n == 0 {
		return nil
	}
	return r.at(0)
}

// ---- store-level snapshot API ----

// Snapshot pins the store's current version and returns a handle for
// reading it. The read path takes no locks: concurrent writers publish
// later versions without affecting the pinned one. Callers should Close the
// snapshot when done so the pinned-snapshot gauge stays meaningful.
func (s *Store) Snapshot() *Snapshot {
	s.pins.Add(1)
	s.taken.Add(1)
	return &Snapshot{s: s, v: s.cur.Load()}
}

// SnapshotAt pins the newest retained version with sequence number at most
// seq — the store state as of seq. It fails with ErrSnapshotReclaimed when
// seq predates the retention horizon (Options.RetainVersions) and with
// ErrFutureSeq when seq has not been committed yet.
func (s *Store) SnapshotAt(seq uint64) (*Snapshot, error) {
	if cur := s.cur.Load(); seq > cur.seq {
		return nil, fmt.Errorf("%w: seq %d ahead of store seq %d", ErrFutureSeq, seq, cur.seq)
	}
	s.histMu.Lock()
	v := s.hist.find(seq)
	var horizon uint64
	if o := s.hist.oldest(); o != nil {
		horizon = o.seq
	}
	s.histMu.Unlock()
	if v == nil {
		return nil, fmt.Errorf("%w: seq %d below retention horizon %d", ErrSnapshotReclaimed, seq, horizon)
	}
	s.pins.Add(1)
	s.taken.Add(1)
	return &Snapshot{s: s, v: v}, nil
}

// MVCCStats describes the store's version machinery, suitable for gauge
// export (gsv_store_* in docs/OBSERVABILITY.md).
type MVCCStats struct {
	// Seq is the current committed sequence number.
	Seq uint64
	// RetainedVersions is how many versions the history ring holds.
	RetainedVersions int
	// OldestRetained is the sequence number of the oldest retained version
	// — the SnapshotAt horizon.
	OldestRetained uint64
	// PinnedSnapshots is the number of snapshots taken and not yet Closed.
	PinnedSnapshots int64
	// SnapshotsTaken counts snapshots ever taken.
	SnapshotsTaken uint64
	// ReclaimedVersions counts versions evicted from the history ring.
	ReclaimedVersions uint64
}

// MVCC returns a point-in-time reading of the store's version machinery.
func (s *Store) MVCC() MVCCStats {
	s.histMu.Lock()
	retained := s.hist.n
	var oldest uint64
	if o := s.hist.oldest(); o != nil {
		oldest = o.seq
	}
	evicted := s.evicted
	s.histMu.Unlock()
	return MVCCStats{
		Seq:               s.cur.Load().seq,
		RetainedVersions:  retained,
		OldestRetained:    oldest,
		PinnedSnapshots:   s.pins.Load(),
		SnapshotsTaken:    s.taken.Load(),
		ReclaimedVersions: evicted,
	}
}
