package store

import (
	"fmt"

	"gsv/internal/oem"
)

// Union implements the paper's union(S1,S2): it creates a new set object
// whose value is value(S1) ∪ value(S2), with an arbitrary unique OID and
// the label of S1, stores it, and returns its OID. Both operands must be
// set objects.
func (s *Store) Union(s1, s2 oem.OID) (oem.OID, error) {
	return s.setOp(s1, s2, func(a, b []oem.OID) []oem.OID {
		seen := make(map[oem.OID]bool, len(a)+len(b))
		out := make([]oem.OID, 0, len(a)+len(b))
		for _, lists := range [][]oem.OID{a, b} {
			for _, m := range lists {
				if !seen[m] {
					seen[m] = true
					out = append(out, m)
				}
			}
		}
		return out
	})
}

// Intersect implements the paper's int(S1,S2): a new set object whose value
// is value(S1) ∩ value(S2), with a fresh OID and the label of S1.
func (s *Store) Intersect(s1, s2 oem.OID) (oem.OID, error) {
	return s.setOp(s1, s2, func(a, b []oem.OID) []oem.OID {
		inB := make(map[oem.OID]bool, len(b))
		for _, m := range b {
			inB[m] = true
		}
		var out []oem.OID
		for _, m := range a {
			if inB[m] {
				out = append(out, m)
			}
		}
		return out
	})
}

// Difference creates a new set object whose value is value(S1) \ value(S2).
// The paper defines only union and int; difference completes the family and
// is used by access-control helpers.
func (s *Store) Difference(s1, s2 oem.OID) (oem.OID, error) {
	return s.setOp(s1, s2, func(a, b []oem.OID) []oem.OID {
		inB := make(map[oem.OID]bool, len(b))
		for _, m := range b {
			inB[m] = true
		}
		var out []oem.OID
		for _, m := range a {
			if !inB[m] {
				out = append(out, m)
			}
		}
		return out
	})
}

func (s *Store) setOp(s1, s2 oem.OID, combine func(a, b []oem.OID) []oem.OID) (oem.OID, error) {
	o1, err := s.Get(s1)
	if err != nil {
		return oem.NoOID, err
	}
	o2, err := s.Get(s2)
	if err != nil {
		return oem.NoOID, err
	}
	if !o1.IsSet() {
		return oem.NoOID, fmt.Errorf("%w: %s", ErrNotSet, s1)
	}
	if !o2.IsSet() {
		return oem.NoOID, fmt.Errorf("%w: %s", ErrNotSet, s2)
	}
	oid := s.GenOID("setop")
	res := oem.NewSet(oid, o1.Label, combine(o1.Set, o2.Set)...)
	if err := s.Put(res); err != nil {
		return oem.NoOID, err
	}
	return oid, nil
}

// NewDatabase creates a database object: an ordinary set object whose value
// lists the member OIDs, per the paper's Section 2 ("a database is simply a
// way to group objects together"). The label defaults to "database".
func (s *Store) NewDatabase(oid oem.OID, label string, members ...oem.OID) error {
	if label == "" {
		label = "database"
	}
	return s.Put(oem.NewSet(oid, label, members...))
}

// DatabaseMembers returns the member set of a database object as a lookup
// map, used by WITHIN / ANS INT evaluation. The database object itself is
// not a member unless listed.
func (s *Store) DatabaseMembers(db oem.OID) (map[oem.OID]bool, error) {
	o, err := s.Get(db)
	if err != nil {
		return nil, err
	}
	if !o.IsSet() {
		return nil, fmt.Errorf("%w: %s", ErrNotSet, db)
	}
	m := make(map[oem.OID]bool, len(o.Set))
	for _, oid := range o.Set {
		m[oid] = true
	}
	return m, nil
}
