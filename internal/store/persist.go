package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"gsv/internal/oem"
)

// persistHeader identifies the snapshot format. v1 snapshots carry only
// objects; v2 prepends a meta line persisting the store's counters (the
// update sequence number and the GenOID counter), so a restored store
// continues the original timeline instead of restarting both at zero —
// restarting genSeq can reuse OIDs that departed objects still dangle to,
// and restarting seq breaks every consumer keyed on source sequence
// numbers (warehouse resume, WAL replay, feed cursors).
const (
	persistHeader   = "gsv-snapshot-v1"
	persistHeaderV2 = "gsv-snapshot-v2"
)

// persistMeta is the v2 meta line.
type persistMeta struct {
	Seq    uint64 `json:"seq"`
	GenSeq uint64 `json:"gen_seq"`
}

// jsonObject is the serialized form of one object. Atom values round-trip
// through a tagged representation so integers survive undamaged.
type jsonObject struct {
	OID   oem.OID   `json:"oid"`
	Label string    `json:"label"`
	Kind  int       `json:"kind"`
	Type  string    `json:"type"`
	Atom  *jsonAtom `json:"atom,omitempty"`
	Set   []oem.OID `json:"set,omitempty"`
}

type jsonAtom struct {
	Kind int     `json:"kind"`
	I    int64   `json:"i,omitempty"`
	F    float64 `json:"f,omitempty"`
	S    string  `json:"s,omitempty"`
	B    bool    `json:"b,omitempty"`
}

// Save writes a snapshot of the store: a v2 header line, a meta line with
// the sequence counters, then the objects as line-delimited JSON. The
// update log and subscriptions are not part of a snapshot — a snapshot is
// a database, not a replication stream — but the counters are, so that a
// restored store keeps assigning fresh sequence numbers and fresh OIDs.
func (s *Store) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, persistHeaderV2); err != nil {
		return err
	}
	seq, genSeq := s.Counters()
	meta, err := json.Marshal(persistMeta{Seq: seq, GenSeq: genSeq})
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%s\n", meta); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	var encErr error
	s.ForEach(func(o *oem.Object) {
		if encErr != nil {
			return
		}
		jo := jsonObject{OID: o.OID, Label: o.Label, Kind: int(o.Kind), Type: o.Type}
		if o.IsAtomic() {
			jo.Atom = &jsonAtom{Kind: int(o.Atom.Kind), I: o.Atom.I, F: o.Atom.F, S: o.Atom.S, B: o.Atom.B}
		} else {
			jo.Set = o.Set
		}
		encErr = enc.Encode(jo)
	})
	if encErr != nil {
		return encErr
	}
	return bw.Flush()
}

// Load reads a snapshot produced by Save into an empty store. Loading into
// a non-empty store fails: snapshots restore databases, they do not merge.
func (s *Store) Load(r io.Reader) error {
	if s.Len() != 0 {
		return fmt.Errorf("store: Load requires an empty store (have %d objects)", s.Len())
	}
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return fmt.Errorf("store: reading snapshot header: %w", err)
	}
	var meta persistMeta
	switch header {
	case persistHeader + "\n":
		// v1: no counters were recorded. Leave meta zero; the counters
		// advance past the loaded objects' Create updates, which is the
		// pre-v2 behavior.
	case persistHeaderV2 + "\n":
		line, err := br.ReadString('\n')
		if err != nil {
			return fmt.Errorf("store: reading snapshot meta: %w", err)
		}
		if err := json.Unmarshal([]byte(line), &meta); err != nil {
			return fmt.Errorf("store: decoding snapshot meta: %w", err)
		}
	default:
		return fmt.Errorf("store: bad snapshot header %q", header)
	}
	dec := json.NewDecoder(br)
	for {
		var jo jsonObject
		if err := dec.Decode(&jo); err == io.EOF {
			s.restoreCounters(meta.Seq, meta.GenSeq)
			return nil
		} else if err != nil {
			return fmt.Errorf("store: decoding snapshot: %w", err)
		}
		if jo.OID == "" {
			return fmt.Errorf("store: snapshot object without OID")
		}
		if k := oem.Kind(jo.Kind); k != oem.KindAtomic && k != oem.KindSet {
			return fmt.Errorf("store: snapshot object %s has invalid kind %d", jo.OID, jo.Kind)
		}
		o := &oem.Object{OID: jo.OID, Label: jo.Label, Kind: oem.Kind(jo.Kind), Type: jo.Type}
		if o.Kind == oem.KindAtomic {
			if jo.Atom == nil {
				return fmt.Errorf("store: atomic object %s without atom", jo.OID)
			}
			if k := oem.AtomKind(jo.Atom.Kind); k < oem.AtomNone || k > oem.AtomBool {
				return fmt.Errorf("store: snapshot object %s has invalid atom kind %d", jo.OID, jo.Atom.Kind)
			}
			o.Atom = oem.Atom{Kind: oem.AtomKind(jo.Atom.Kind), I: jo.Atom.I, F: jo.Atom.F, S: jo.Atom.S, B: jo.Atom.B}
		} else {
			o.Set = jo.Set
		}
		if err := s.Put(o); err != nil {
			return err
		}
	}
}
