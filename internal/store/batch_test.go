package store

import (
	"sync"
	"testing"

	"gsv/internal/oem"
)

func TestBufferCollectsAndSwaps(t *testing.T) {
	b := NewBuffer()
	if got := b.Take(); got != nil {
		t.Fatalf("fresh buffer Take = %v", got)
	}
	b.Observe(Update{Seq: 1, Kind: UpdateCreate, N1: "A"})
	b.Observe(Update{Seq: 2, Kind: UpdateInsert, N1: "A", N2: "B"})
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	got := b.Take()
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("Take = %v", got)
	}
	if b.Len() != 0 || b.Take() != nil {
		t.Fatal("Take did not swap the pending slice out")
	}
}

// TestBufferUnderStoreLock is the regression test for the unsynchronized
// pending slice Buffer replaced: subscribers run with the store's lock
// held, possibly from many mutating goroutines, while a drainer Takes.
func TestBufferUnderStoreLock(t *testing.T) {
	s := NewDefault()
	s.MustPut(oem.NewSet("ROOT", "root"))
	b := NewBuffer()
	s.Subscribe(b.Observe)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				oid := oem.OID(rune('A'+g)) + oem.OID(rune('a'+i%26))
				s.Put(oem.NewAtom(oid+"x", "n", oem.Int(int64(i))))
			}
		}()
	}
	drained := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	for {
		drained += len(b.Take())
		select {
		case <-done:
			drained += len(b.Take())
			if drained == 0 {
				t.Error("observed nothing")
			}
			return
		default:
		}
	}
}

func TestHasChildMatchesContains(t *testing.T) {
	for _, indexed := range []bool{true, false} {
		s := New(Options{ParentIndex: indexed})
		s.MustPut(oem.NewAtom("A", "a", oem.Int(1)))
		s.MustPut(oem.NewAtom("B", "b", oem.Int(2)))
		s.MustPut(oem.NewSet("P", "p", "A"))
		if !s.HasChild("P", "A") {
			t.Fatalf("indexed=%v: HasChild(P,A) = false", indexed)
		}
		if s.HasChild("P", "B") || s.HasChild("A", "B") || s.HasChild("NOPE", "A") {
			t.Fatalf("indexed=%v: false positive", indexed)
		}
		if err := s.Insert("P", "B"); err != nil {
			t.Fatal(err)
		}
		if !s.HasChild("P", "B") {
			t.Fatalf("indexed=%v: HasChild misses inserted edge", indexed)
		}
		if err := s.Delete("P", "A"); err != nil {
			t.Fatal(err)
		}
		if s.HasChild("P", "A") {
			t.Fatalf("indexed=%v: HasChild sees deleted edge", indexed)
		}
	}
}
