package store

import "sync"

// Buffer is the group-commit handoff between the store's synchronous
// update log and a batch consumer. Subscribe Observe on a store; each
// logged update is appended under the buffer's own lock, so mutators on
// any goroutine — including maintainer goroutines writing view objects
// into the same store — can log concurrently while a drainer on another
// goroutine snapshots whole batches with Take. This replaces the
// unsynchronized pending slice the registry's Watch used to keep, which
// was safe only while all mutation and draining happened on one
// goroutine.
type Buffer struct {
	mu      sync.Mutex
	pending []Update
}

// NewBuffer returns an empty buffer.
func NewBuffer() *Buffer { return &Buffer{} }

// Observe appends one update. It is the Store.Subscribe callback shape
// and safe to call with the store's lock held: it only takes the
// buffer's own lock and never calls back into the store.
func (b *Buffer) Observe(u Update) {
	b.mu.Lock()
	b.pending = append(b.pending, u)
	b.mu.Unlock()
}

// Take removes and returns everything buffered so far, in log order.
// It returns nil when the buffer is empty.
func (b *Buffer) Take() []Update {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := b.pending
	b.pending = nil
	return out
}

// Len reports how many updates are currently buffered.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pending)
}
