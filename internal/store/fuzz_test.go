package store

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoad checks that the snapshot loader never panics on arbitrary
// input, and that whatever it accepts re-saves to a snapshot that loads to
// an equal store (idempotent round trip).
func FuzzLoad(f *testing.F) {
	// Seed with a real snapshot and assorted corruptions.
	s := buildPerson(f, DefaultOptions())
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add("gsv-snapshot-v1\n")
	f.Add("gsv-snapshot-v1\n{}\n")
	f.Add("gsv-snapshot-v1\n{\"oid\":\"A\",\"label\":\"x\",\"kind\":1,\"type\":\"set\",\"set\":[\"B\"]}\n")
	f.Add("not a snapshot")
	f.Add(strings.Replace(buf.String(), "45", "\"45\"", 1))

	f.Fuzz(func(t *testing.T, input string) {
		first := NewDefault()
		if err := first.Load(strings.NewReader(input)); err != nil {
			return
		}
		var out bytes.Buffer
		if err := first.Save(&out); err != nil {
			t.Fatalf("accepted input failed to save: %v", err)
		}
		second := NewDefault()
		if err := second.Load(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("re-save failed to load: %v", err)
		}
		if first.Len() != second.Len() {
			t.Fatalf("round trip changed object count: %d -> %d", first.Len(), second.Len())
		}
		for _, oid := range first.OIDs() {
			a, _ := first.Get(oid)
			b, err := second.Get(oid)
			if err != nil || !a.Equal(b) {
				t.Fatalf("round trip changed %s: %v vs %v (%v)", oid, a, b, err)
			}
		}
	})
}
