package store

import (
	"bytes"
	"strings"
	"testing"

	"gsv/internal/oem"
)

func TestWriteDOTWholeStore(t *testing.T) {
	s := buildPerson(t, DefaultOptions())
	var buf bytes.Buffer
	if err := s.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph gsdb {",
		`"P1" [label="<P1, professor>", shape=box];`,
		`"A1" [label="<A1, age, 45>", shape=ellipse];`,
		`"ROOT" -> "P1";`,
		`"P1" -> "P3";`,
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteDOTRooted(t *testing.T) {
	s := buildPerson(t, DefaultOptions())
	var buf bytes.Buffer
	if err := s.WriteDOT(&buf, "P1"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"P1"`) || !strings.Contains(out, `"N1"`) {
		t.Fatalf("rooted DOT missing subtree:\n%s", out)
	}
	if strings.Contains(out, `"P4"`) {
		t.Fatalf("rooted DOT leaked unrelated objects:\n%s", out)
	}
}

func TestWriteDOTDanglingAndGrouping(t *testing.T) {
	s := NewDefault()
	s.MustPut(oem.NewSet("R", "root", "gone"))
	if err := s.NewDatabase("DB", "database", "R"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fontcolor=gray") {
		t.Errorf("dangling reference not stubbed:\n%s", out)
	}
	if !strings.Contains(out, "style=dashed") {
		t.Errorf("grouping object not dashed:\n%s", out)
	}
}

func TestWriteDOTEscaping(t *testing.T) {
	s := NewDefault()
	s.MustPut(oem.NewAtom(`Q"1`, `la"bel`, oem.String_(`va"lue\`)))
	var buf bytes.Buffer
	if err := s.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), `\"`) < 3 {
		t.Fatalf("quotes not escaped:\n%s", buf.String())
	}
}
