package store

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestPmapBasic(t *testing.T) {
	var m *pmap[int]
	if m.Len() != 0 {
		t.Fatalf("nil pmap Len = %d", m.Len())
	}
	m = m.With("a", 1).With("b", 2).With("a", 3)
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	if v, ok := m.Get("a"); !ok || v != 3 {
		t.Fatalf("Get(a) = %d,%v", v, ok)
	}
	if v, ok := m.Get("b"); !ok || v != 2 {
		t.Fatalf("Get(b) = %d,%v", v, ok)
	}
	if _, ok := m.Get("c"); ok {
		t.Fatal("Get(c) found")
	}
	m2 := m.Without("a")
	if m2.Len() != 1 || m2.Has("a") || !m2.Has("b") {
		t.Fatalf("Without(a): len=%d has(a)=%v has(b)=%v", m2.Len(), m2.Has("a"), m2.Has("b"))
	}
	// The original is untouched — persistence.
	if !m.Has("a") || m.Len() != 2 {
		t.Fatal("Without mutated the receiver")
	}
	if m.Without("missing") != m {
		t.Fatal("Without(missing) did not return the receiver")
	}
}

// TestPmapAgainstModel drives a pmap and a builtin map through the same
// random operation stream, checking full agreement after every step, and
// verifies that retained old versions stay frozen.
func TestPmapAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var m *pmap[int]
	model := map[string]int{}
	type frozen struct {
		m    *pmap[int]
		want map[string]int
	}
	var pinned []frozen
	for step := 0; step < 8000; step++ {
		key := fmt.Sprintf("k%d", rng.Intn(600))
		switch rng.Intn(3) {
		case 0, 1:
			m = m.With(key, step)
			model[key] = step
		case 2:
			m = m.Without(key)
			delete(model, key)
		}
		if m.Len() != len(model) {
			t.Fatalf("step %d: Len=%d model=%d", step, m.Len(), len(model))
		}
		if step%997 == 0 {
			want := make(map[string]int, len(model))
			for k, v := range model {
				want[k] = v
			}
			pinned = append(pinned, frozen{m, want})
		}
	}
	check := func(m *pmap[int], want map[string]int) {
		t.Helper()
		got := map[string]int{}
		m.Range(func(k string, v int) bool {
			got[k] = v
			return true
		})
		if len(got) != len(want) || len(got) != m.Len() {
			t.Fatalf("size mismatch: range=%d want=%d len=%d", len(got), len(want), m.Len())
		}
		for k, v := range want {
			if gv, ok := m.Get(k); !ok || gv != v {
				t.Fatalf("Get(%s) = %d,%v want %d", k, gv, ok, v)
			}
		}
	}
	check(m, model)
	for _, f := range pinned {
		check(f.m, f.want)
	}
}

func TestPmapRangeEarlyStop(t *testing.T) {
	var m *pmap[int]
	for i := 0; i < 100; i++ {
		m = m.With(fmt.Sprintf("k%d", i), i)
	}
	n := 0
	m.Range(func(string, int) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("Range visited %d entries, want 10", n)
	}
}
