package store

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"gsv/internal/oem"
)

// WriteDOT renders the objects reachable from the given roots as a
// Graphviz digraph in the style of the paper's figures: set objects as
// boxes labeled "<OID, label>", atomic objects as ellipses labeled
// "<OID, label, value>", and parent-child edges as arrows. With no roots,
// the whole store is rendered. Grouping objects (databases, views) are
// drawn with dashed borders so the data graph stays legible.
func (s *Store) WriteDOT(w io.Writer, roots ...oem.OID) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "digraph gsdb {")
	fmt.Fprintln(bw, "  rankdir=TB;")
	fmt.Fprintln(bw, "  node [fontname=\"Helvetica\", fontsize=10];")

	include := map[oem.OID]bool{}
	if len(roots) == 0 {
		for _, oid := range s.OIDs() {
			include[oid] = true
		}
	} else {
		stack := append([]oem.OID(nil), roots...)
		for len(stack) > 0 {
			oid := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if include[oid] || !s.Has(oid) {
				continue
			}
			include[oid] = true
			if kids, err := s.Children(oid); err == nil {
				stack = append(stack, kids...)
			}
		}
	}

	var oids []oem.OID
	for oid := range include {
		oids = append(oids, oid)
	}
	oem.SortOIDs(oids)
	for _, oid := range oids {
		o, err := s.Get(oid)
		if err != nil {
			continue
		}
		attrs := nodeAttrs(o)
		fmt.Fprintf(bw, "  %s [%s];\n", dotID(oid), attrs)
	}
	for _, oid := range oids {
		o, err := s.Get(oid)
		if err != nil || !o.IsSet() {
			continue
		}
		for _, c := range o.Set {
			if !include[c] {
				// Dangling or out-of-scope reference: a grey stub.
				fmt.Fprintf(bw, "  %s [label=\"%s\", shape=plaintext, fontcolor=gray];\n",
					dotID(c), escape(string(c)))
				include[c] = true
			}
			fmt.Fprintf(bw, "  %s -> %s;\n", dotID(oid), dotID(c))
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

func nodeAttrs(o *oem.Object) string {
	if o.IsAtomic() {
		return fmt.Sprintf("label=\"<%s, %s, %s>\", shape=ellipse",
			escape(string(o.OID)), escape(o.Label), escape(o.Atom.String()))
	}
	style := ""
	if oem.IsGroupingLabel(o.Label) {
		style = ", style=dashed"
	}
	return fmt.Sprintf("label=\"<%s, %s>\", shape=box%s",
		escape(string(o.OID)), escape(o.Label), style)
}

// dotID produces a safe Graphviz identifier for an OID.
func dotID(oid oem.OID) string {
	return `"` + escape(string(oid)) + `"`
}

func escape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
