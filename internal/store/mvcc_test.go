package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"gsv/internal/oem"
)

// TestLoadPreservesCountersUnderPin round-trips a store through Save/Load
// while a snapshot of the destination is pinned: the v2 counters (seq and
// the next-OID counter) must survive into the versioned representation,
// and the pinned pre-load snapshot must stay frozen at the empty version.
func TestLoadPreservesCountersUnderPin(t *testing.T) {
	src := buildPerson(t, DefaultOptions())
	gen := src.GenOID("obj")
	src.MustPut(oem.NewAtom(gen, "gen", oem.Int(1)))
	if err := src.Modify("A1", oem.Int(46)); err != nil {
		t.Fatal(err)
	}
	wantSeq, wantGen := src.Counters()

	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}

	dst := New(DefaultOptions())
	pin := dst.Snapshot() // pinned across the load
	defer pin.Close()
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}

	gotSeq, gotGen := dst.Counters()
	if gotSeq < wantSeq || gotGen < wantGen {
		t.Fatalf("loaded counters = (%d,%d), want at least (%d,%d)", gotSeq, gotGen, wantSeq, wantGen)
	}
	// Fresh OIDs continue the original timeline — no collision with an
	// OID the source store already generated.
	if oid := dst.GenOID("obj"); oid == gen || dst.Has(oid) {
		t.Fatalf("GenOID after load collided: %s", oid)
	}

	// The pre-load pin still reads the empty version.
	if pin.Seq() != 0 || pin.Len() != 0 || pin.Has("ROOT") {
		t.Fatalf("pinned snapshot moved: seq=%d len=%d has(ROOT)=%v", pin.Seq(), pin.Len(), pin.Has("ROOT"))
	}
	// The loaded state answers current reads.
	o, err := dst.Get("A1")
	if err != nil || !o.Atom.Equal(oem.Int(46)) {
		t.Fatalf("loaded Get(A1) = %v, %v", o, err)
	}
}

// verifySnapshotCoherent checks one pinned version for internal
// consistency: the parent index, label index and object graph must agree
// with each other exactly — a torn view (index from one version, objects
// from another) fails here.
func verifySnapshotCoherent(t *testing.T, snap *Snapshot) {
	t.Helper()
	seq := snap.Seq()
	n := 0
	var failure string
	snap.ForEach(func(o *oem.Object) {
		n++
		if failure != "" {
			return
		}
		// Label index agrees with the object.
		found := false
		for _, l := range snap.ByLabel(o.Label) {
			if l == o.OID {
				found = true
				break
			}
		}
		if !found {
			failure = fmt.Sprintf("object %s (label %s) missing from ByLabel at seq %d", o.OID, o.Label, seq)
			return
		}
		// Every edge is mirrored in the parent index and HasChild.
		for _, c := range o.Set {
			if !snap.HasChild(o.OID, c) {
				failure = fmt.Sprintf("edge %s->%s not in HasChild at seq %d", o.OID, c, seq)
				return
			}
			if snap.Has(c) {
				parents, err := snap.Parents(c)
				if err != nil {
					failure = fmt.Sprintf("Parents(%s) at seq %d: %v", c, seq, err)
					return
				}
				ok := false
				for _, p := range parents {
					if p == o.OID {
						ok = true
						break
					}
				}
				if !ok {
					failure = fmt.Sprintf("parent index lost %s<-%s at seq %d", c, o.OID, seq)
					return
				}
			}
		}
	})
	if failure != "" {
		t.Error(failure)
		return
	}
	if n != snap.Len() {
		t.Errorf("ForEach visited %d objects, Len=%d at seq %d", n, snap.Len(), seq)
	}
	if snap.Seq() != seq {
		t.Errorf("snapshot seq moved %d -> %d", seq, snap.Seq())
	}
}

// TestSnapshotConsistencySoak holds snapshots in N reader goroutines
// across a mutation storm and asserts each reader sees a frozen,
// internally consistent version: no torn parent/label index views, no
// moving sequence numbers. Run under -race this also proves the
// lock-free read path publishes versions safely.
func TestSnapshotConsistencySoak(t *testing.T) {
	s := buildPerson(t, DefaultOptions())
	const readers = 6
	const rounds = 120

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer storm: object churn, edge churn, value churn — every class
	// of version transition including silent publishes (Remove, GC).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			oid := oem.OID(fmt.Sprintf("T%d", i))
			a := oem.OID(fmt.Sprintf("TA%d", i))
			s.MustPut(oem.NewSet(oid, "churn", a))
			s.MustPut(oem.NewAtom(a, "age", oem.Int(int64(i))))
			if err := s.Insert("ROOT", oid); err != nil {
				panic(err)
			}
			if err := s.Modify(a, oem.Int(int64(i+1))); err != nil {
				panic(err)
			}
			if i%3 == 2 {
				if err := s.Delete("ROOT", oid); err != nil {
					panic(err)
				}
				if err := s.Remove(oid); err != nil {
					panic(err)
				}
				if err := s.Remove(a); err != nil {
					panic(err)
				}
			}
			if i%40 == 39 {
				s.CollectGarbage("ROOT")
			}
		}
		close(stop)
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var held *Snapshot // a long-held pin, re-verified each lap
			for lap := 0; ; lap++ {
				select {
				case <-stop:
					if held != nil {
						verifySnapshotCoherent(t, held)
						held.Close()
					}
					return
				default:
				}
				snap := s.Snapshot()
				verifySnapshotCoherent(t, snap)
				if held == nil {
					held = snap // keep the first pin alive across the storm
					continue
				}
				if lap%10 == 0 {
					verifySnapshotCoherent(t, held) // still frozen
				}
				snap.Close()
			}
		}(r)
	}
	wg.Wait()

	if pinned := s.MVCC().PinnedSnapshots; pinned != 0 {
		t.Fatalf("leaked %d snapshot pins", pinned)
	}
	verifySnapshotCoherent(t, s.Snapshot())
}
