package store

import (
	"fmt"

	"gsv/internal/oem"
)

// UpdateKind enumerates the basic updates of the paper's Section 4.1, plus
// object creation (which the paper notes "has no impact on any queries"
// until an insert connects the object).
type UpdateKind int

const (
	// UpdateCreate records that a new object entered the store.
	UpdateCreate UpdateKind = iota
	// UpdateInsert records insert(N1,N2): N2 became a child of N1.
	UpdateInsert
	// UpdateDelete records delete(N1,N2): N2 ceased to be a child of N1.
	UpdateDelete
	// UpdateModify records modify(N,oldv,newv) on atomic object N1.
	UpdateModify
)

// UpdateNone marks synthetic updates that do not correspond to a logged
// store mutation — e.g. the aggregate delta a warehouse view publishes
// after a staleness resync. The store never emits it.
const UpdateNone UpdateKind = -1

// String returns the paper's name for the update kind.
func (k UpdateKind) String() string {
	switch k {
	case UpdateCreate:
		return "create"
	case UpdateInsert:
		return "insert"
	case UpdateDelete:
		return "delete"
	case UpdateModify:
		return "modify"
	case UpdateNone:
		return "resync"
	default:
		return fmt.Sprintf("UpdateKind(%d)", int(k))
	}
}

// Update is one logged mutation. The fields used depend on Kind:
//
//   - UpdateCreate: N1 is the new OID and Object a copy of the object.
//   - UpdateInsert / UpdateDelete: N1 is the parent, N2 the child.
//   - UpdateModify: N1 is the atomic object, Old and New its values.
//
// Seq is assigned contiguously from 1 by the store that applied the update.
//
// Origin and TraceID are the propagation trace context
// (docs/OBSERVABILITY.md): a source monitor stamps them at report
// ingestion, and they ride the update unchanged through the WAL, the
// warehouse maintenance stages, the changefeed and replica apply, so
// every node can measure visibility latency against the same origin
// instant. Both are zero for updates that never passed a stamping
// monitor (local stores, old peers); all consumers treat that as
// "tracing off" for the update.
type Update struct {
	Seq    uint64
	Kind   UpdateKind
	N1, N2 oem.OID
	Old    oem.Atom
	New    oem.Atom
	Object *oem.Object
	// Origin is the ingestion wall-clock stamp in Unix nanoseconds.
	Origin int64 `json:"Origin,omitempty"`
	// TraceID identifies the update's span chain across nodes
	// (source name + origin sequence; deterministic, replay-stable).
	TraceID string `json:"TraceID,omitempty"`
}

// String renders the update in the paper's functional notation.
func (u Update) String() string {
	switch u.Kind {
	case UpdateCreate:
		return fmt.Sprintf("create(%s)", u.N1)
	case UpdateInsert:
		return fmt.Sprintf("insert(%s, %s)", u.N1, u.N2)
	case UpdateDelete:
		return fmt.Sprintf("delete(%s, %s)", u.N1, u.N2)
	case UpdateModify:
		return fmt.Sprintf("modify(%s, %s, %s)", u.N1, u.Old, u.New)
	default:
		return fmt.Sprintf("update(%d)", int(u.Kind))
	}
}

// Seq returns the sequence number of the most recent update, or zero. It
// is lock-free: one atomic load of the current version.
func (s *Store) Seq() uint64 {
	return s.cur.Load().seq
}

// Log returns a copy of the retained update log in sequence order.
func (s *Store) Log() []Update {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Update, len(s.log))
	copy(out, s.log)
	return out
}

// LogSince returns retained updates with sequence numbers greater than seq.
func (s *Store) LogSince(seq uint64) []Update {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Update
	for _, u := range s.log {
		if u.Seq > seq {
			out = append(out, u)
		}
	}
	return out
}

// Subscribe registers fn to be called synchronously with every subsequent
// update, in sequence order. The callback runs with the store's writer
// mutex held and must not call mutation methods (read methods are safe —
// they resolve against the already-published version); monitors enqueue
// and process updates on their own goroutine or after the call returns.
// Subscribe is how source monitors (Section 5) observe changes.
func (s *Store) Subscribe(fn func(Update)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subs = append(s.subs, fn)
}
