package store

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"gsv/internal/oem"
)

// buildPerson loads the paper's Example 2 PERSON objects into a store.
// (The workload package has a richer builder; tests here stay local to
// avoid an import cycle in coverage tooling.)
func buildPerson(t testing.TB, opts Options) *Store {
	t.Helper()
	s := New(opts)
	s.MustPut(oem.NewSet("ROOT", "person", "P1", "P2", "P3", "P4"))
	s.MustPut(oem.NewSet("P1", "professor", "N1", "A1", "S1", "P3"))
	s.MustPut(oem.NewAtom("N1", "name", oem.String_("John")))
	s.MustPut(oem.NewAtom("A1", "age", oem.Int(45)))
	s.MustPut(oem.NewTypedAtom("S1", "salary", "dollar", oem.Int(100000)))
	s.MustPut(oem.NewSet("P3", "student", "N3", "A3", "M3"))
	s.MustPut(oem.NewAtom("N3", "name", oem.String_("John")))
	s.MustPut(oem.NewAtom("A3", "age", oem.Int(20)))
	s.MustPut(oem.NewAtom("M3", "major", oem.String_("education")))
	s.MustPut(oem.NewSet("P2", "professor", "N2", "ADD2"))
	s.MustPut(oem.NewAtom("N2", "name", oem.String_("Sally")))
	s.MustPut(oem.NewAtom("ADD2", "address", oem.String_("Palo Alto")))
	s.MustPut(oem.NewSet("P4", "secretary", "N4", "A4"))
	s.MustPut(oem.NewAtom("N4", "name", oem.String_("Tom")))
	s.MustPut(oem.NewAtom("A4", "age", oem.Int(40)))
	return s
}

func TestPutGet(t *testing.T) {
	s := NewDefault()
	s.MustPut(oem.NewAtom("A1", "age", oem.Int(45)))
	o, err := s.Get("A1")
	if err != nil {
		t.Fatal(err)
	}
	if o.Label != "age" || !o.Atom.Equal(oem.Int(45)) {
		t.Fatalf("Get = %v", o)
	}
	if _, err := s.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) err = %v, want ErrNotFound", err)
	}
	if err := s.Put(oem.NewAtom("A1", "age", oem.Int(1))); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Put err = %v, want ErrExists", err)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := NewDefault()
	s.MustPut(oem.NewSet("S", "s", "A"))
	s.MustPut(oem.NewAtom("A", "a", oem.Int(1)))
	o, _ := s.Get("S")
	o.Add("B") // must not leak into the store
	o2, _ := s.Get("S")
	if o2.Contains("B") {
		t.Fatal("mutating a Get result changed the store")
	}
}

func TestInsertDeleteAndParents(t *testing.T) {
	for _, withIndex := range []bool{true, false} {
		opts := DefaultOptions()
		opts.ParentIndex = withIndex
		s := buildPerson(t, opts)

		ps, err := s.Parents("P3")
		if err != nil {
			t.Fatal(err)
		}
		if !oem.SameMembers(ps, []oem.OID{"ROOT", "P1"}) {
			t.Fatalf("index=%v: Parents(P3) = %v, want [P1 ROOT]", withIndex, ps)
		}

		// insert(P2, A2): the update from Example 5.
		s.MustPut(oem.NewAtom("A2", "age", oem.Int(40)))
		if err := s.Insert("P2", "A2"); err != nil {
			t.Fatal(err)
		}
		kids, _ := s.Children("P2")
		if !oem.SameMembers(kids, []oem.OID{"N2", "ADD2", "A2"}) {
			t.Fatalf("index=%v: Children(P2) = %v", withIndex, kids)
		}
		ps, _ = s.Parents("A2")
		if !oem.SameMembers(ps, []oem.OID{"P2"}) {
			t.Fatalf("index=%v: Parents(A2) = %v", withIndex, ps)
		}

		if err := s.Delete("P2", "A2"); err != nil {
			t.Fatal(err)
		}
		ps, _ = s.Parents("A2")
		if len(ps) != 0 {
			t.Fatalf("index=%v: Parents(A2) after delete = %v", withIndex, ps)
		}
		if err := s.Delete("P2", "A2"); !errors.Is(err, ErrNotChild) {
			t.Fatalf("index=%v: double delete err = %v", withIndex, err)
		}
	}
}

func TestInsertErrors(t *testing.T) {
	s := buildPerson(t, DefaultOptions())
	if err := s.Insert("missing", "P1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if err := s.Insert("ROOT", "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if err := s.Insert("A1", "P1"); !errors.Is(err, ErrNotSet) {
		t.Fatalf("insert under atomic err = %v, want ErrNotSet", err)
	}
	// Re-inserting an existing child is a no-op, not an error.
	before := s.Seq()
	if err := s.Insert("ROOT", "P1"); err != nil {
		t.Fatalf("idempotent insert err = %v", err)
	}
	if s.Seq() != before {
		t.Fatal("idempotent insert was logged")
	}
}

func TestModify(t *testing.T) {
	s := buildPerson(t, DefaultOptions())
	if err := s.Modify("A1", oem.Int(46)); err != nil {
		t.Fatal(err)
	}
	o, _ := s.Get("A1")
	if !o.Atom.Equal(oem.Int(46)) {
		t.Fatalf("A1 = %v after modify", o)
	}
	if err := s.Modify("ROOT", oem.Int(1)); !errors.Is(err, ErrNotAtomic) {
		t.Fatalf("modify set object err = %v, want ErrNotAtomic", err)
	}
	if err := s.Modify("missing", oem.Int(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("modify missing err = %v, want ErrNotFound", err)
	}
}

func TestModifyKeepsCustomType(t *testing.T) {
	s := buildPerson(t, DefaultOptions())
	if err := s.Modify("S1", oem.Int(120000)); err != nil {
		t.Fatal(err)
	}
	o, _ := s.Get("S1")
	if o.Type != "dollar" {
		t.Fatalf("salary type after modify = %q, want dollar", o.Type)
	}
	// Changing representation kind falls back to the atom's type name.
	if err := s.Modify("S1", oem.String_("n/a")); err != nil {
		t.Fatal(err)
	}
	o, _ = s.Get("S1")
	if o.Type != "string" {
		t.Fatalf("salary type after kind change = %q, want string", o.Type)
	}
}

func TestUpdateLog(t *testing.T) {
	s := buildPerson(t, DefaultOptions())
	base := s.Seq()
	s.MustPut(oem.NewAtom("A2", "age", oem.Int(40)))
	if err := s.Insert("P2", "A2"); err != nil {
		t.Fatal(err)
	}
	if err := s.Modify("A2", oem.Int(41)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("P2", "A2"); err != nil {
		t.Fatal(err)
	}
	log := s.LogSince(base)
	if len(log) != 4 {
		t.Fatalf("log len = %d, want 4", len(log))
	}
	wantKinds := []UpdateKind{UpdateCreate, UpdateInsert, UpdateModify, UpdateDelete}
	for i, u := range log {
		if u.Kind != wantKinds[i] {
			t.Errorf("log[%d].Kind = %v, want %v", i, u.Kind, wantKinds[i])
		}
		if u.Seq != base+uint64(i)+1 {
			t.Errorf("log[%d].Seq = %d, want %d", i, u.Seq, base+uint64(i)+1)
		}
	}
	if got := log[2]; !got.Old.Equal(oem.Int(40)) || !got.New.Equal(oem.Int(41)) {
		t.Errorf("modify old/new = %v/%v", got.Old, got.New)
	}
	if got, want := log[1].String(), "insert(P2, A2)"; got != want {
		t.Errorf("insert String = %q, want %q", got, want)
	}
	if got, want := log[3].String(), "delete(P2, A2)"; got != want {
		t.Errorf("delete String = %q, want %q", got, want)
	}
}

func TestLogCapacity(t *testing.T) {
	opts := DefaultOptions()
	opts.LogCapacity = 3
	s := New(opts)
	s.MustPut(oem.NewSet("S", "s"))
	for i := 0; i < 10; i++ {
		s.MustPut(oem.NewAtom(oem.OID(rune('a'+i)), "x", oem.Int(int64(i))))
	}
	log := s.Log()
	if len(log) != 3 {
		t.Fatalf("log len = %d, want 3", len(log))
	}
	if s.Seq() != 11 {
		t.Fatalf("Seq = %d, want 11 (trimming must not reset the counter)", s.Seq())
	}
	if log[len(log)-1].Seq != 11 {
		t.Fatalf("last retained Seq = %d, want 11", log[len(log)-1].Seq)
	}
}

func TestSubscribe(t *testing.T) {
	s := NewDefault()
	var got []Update
	s.Subscribe(func(u Update) { got = append(got, u) })
	s.MustPut(oem.NewSet("S", "s"))
	s.MustPut(oem.NewAtom("A", "a", oem.Int(1)))
	if err := s.Insert("S", "A"); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("subscriber saw %d updates, want 3", len(got))
	}
	if got[2].Kind != UpdateInsert || got[2].N1 != "S" || got[2].N2 != "A" {
		t.Fatalf("subscriber update = %+v", got[2])
	}
}

func TestByLabel(t *testing.T) {
	for _, withIndex := range []bool{true, false} {
		opts := DefaultOptions()
		opts.LabelIndex = withIndex
		s := buildPerson(t, opts)
		got := s.ByLabel("professor")
		if !oem.SameMembers(got, []oem.OID{"P1", "P2"}) {
			t.Fatalf("index=%v: ByLabel(professor) = %v", withIndex, got)
		}
		if len(s.ByLabel("nosuch")) != 0 {
			t.Fatalf("index=%v: ByLabel(nosuch) non-empty", withIndex)
		}
	}
}

func TestByLabelTracksRemoval(t *testing.T) {
	s := buildPerson(t, DefaultOptions())
	if err := s.Remove("P4"); err != nil {
		t.Fatal(err)
	}
	if got := s.ByLabel("secretary"); len(got) != 0 {
		t.Fatalf("ByLabel(secretary) after Remove = %v", got)
	}
	if s.Has("P4") {
		t.Fatal("P4 still present after Remove")
	}
	kids, _ := s.Children("ROOT")
	if oem.SameMembers(kids, []oem.OID{"P1", "P2", "P3", "P4"}) {
		t.Fatal("ROOT still points at removed P4")
	}
}

func TestSetValue(t *testing.T) {
	s := buildPerson(t, DefaultOptions())
	before := s.Seq()
	if err := s.SetValue("ROOT", []oem.OID{"P1", "P3"}); err != nil {
		t.Fatal(err)
	}
	kids, _ := s.Children("ROOT")
	if !oem.SameMembers(kids, []oem.OID{"P1", "P3"}) {
		t.Fatalf("Children = %v", kids)
	}
	// Two deletions (P2, P4), zero insertions.
	if got := s.Seq() - before; got != 2 {
		t.Fatalf("SetValue logged %d updates, want 2", got)
	}
}

func TestCollectGarbage(t *testing.T) {
	s := buildPerson(t, DefaultOptions())
	if err := s.Delete("ROOT", "P4"); err != nil {
		t.Fatal(err)
	}
	removed := s.CollectGarbage("ROOT")
	if !oem.SameMembers(removed, []oem.OID{"P4", "N4", "A4"}) {
		t.Fatalf("removed = %v, want [A4 N4 P4]", removed)
	}
	if s.Has("P4") || s.Has("N4") || s.Has("A4") {
		t.Fatal("garbage still present")
	}
	// P3 is still reachable via both ROOT and P1.
	if !s.Has("P3") {
		t.Fatal("reachable object collected")
	}
	// Parent index must stay consistent for survivors.
	ps, err := s.Parents("P3")
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(ps, []oem.OID{"ROOT", "P1"}) {
		t.Fatalf("Parents(P3) after GC = %v", ps)
	}
}

func TestGenOIDUnique(t *testing.T) {
	s := NewDefault()
	seen := make(map[oem.OID]bool)
	for i := 0; i < 100; i++ {
		oid := s.GenOID("ans")
		if seen[oid] {
			t.Fatalf("GenOID repeated %s", oid)
		}
		seen[oid] = true
		s.MustPut(oem.NewSet(oid, "answer"))
	}
}

func TestUnionIntersectDifference(t *testing.T) {
	s := NewDefault()
	s.MustPut(oem.NewSet("S1", "people", "A", "B", "C"))
	s.MustPut(oem.NewSet("S2", "others", "B", "C", "D"))
	for _, oid := range []oem.OID{"A", "B", "C", "D"} {
		s.MustPut(oem.NewAtom(oid, "x", oem.Int(1)))
	}

	u, err := s.Union("S1", "S2")
	if err != nil {
		t.Fatal(err)
	}
	uo, _ := s.Get(u)
	if !oem.SameMembers(uo.Set, []oem.OID{"A", "B", "C", "D"}) {
		t.Fatalf("union = %v", uo.Set)
	}
	if uo.Label != "people" {
		t.Fatalf("union label = %q, want label of S1", uo.Label)
	}

	i, err := s.Intersect("S1", "S2")
	if err != nil {
		t.Fatal(err)
	}
	io, _ := s.Get(i)
	if !oem.SameMembers(io.Set, []oem.OID{"B", "C"}) {
		t.Fatalf("intersect = %v", io.Set)
	}

	d, err := s.Difference("S1", "S2")
	if err != nil {
		t.Fatal(err)
	}
	do, _ := s.Get(d)
	if !oem.SameMembers(do.Set, []oem.OID{"A"}) {
		t.Fatalf("difference = %v", do.Set)
	}

	if _, err := s.Union("S1", "A"); !errors.Is(err, ErrNotSet) {
		t.Fatalf("union with atomic err = %v, want ErrNotSet", err)
	}
	if _, err := s.Intersect("S1", "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("intersect with missing err = %v, want ErrNotFound", err)
	}
}

func TestDatabaseHelpers(t *testing.T) {
	s := buildPerson(t, DefaultOptions())
	all := s.OIDs()
	if err := s.NewDatabase("PERSON", "", all...); err != nil {
		t.Fatal(err)
	}
	o, _ := s.Get("PERSON")
	if o.Label != "database" {
		t.Fatalf("default database label = %q", o.Label)
	}
	m, err := s.DatabaseMembers("PERSON")
	if err != nil {
		t.Fatal(err)
	}
	if !m["P1"] || !m["A4"] {
		t.Fatal("database members missing expected OIDs")
	}
	if _, err := s.DatabaseMembers("A1"); !errors.Is(err, ErrNotSet) {
		t.Fatalf("DatabaseMembers on atomic err = %v", err)
	}
}

func TestForEachSortedAndComplete(t *testing.T) {
	s := buildPerson(t, DefaultOptions())
	var oids []oem.OID
	s.ForEach(func(o *oem.Object) { oids = append(oids, o.OID) })
	if len(oids) != s.Len() {
		t.Fatalf("ForEach visited %d of %d", len(oids), s.Len())
	}
	for i := 1; i < len(oids); i++ {
		if oids[i-1] >= oids[i] {
			t.Fatalf("ForEach order not sorted: %v", oids)
		}
	}
}

// TestPropertyParentIndexMatchesScan drives random edge mutations against
// two stores — one with a parent index, one without — and checks that
// Parents agrees, i.e. the index is exactly the materialization of the scan.
func TestPropertyParentIndexMatchesScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		withIdx := New(Options{ParentIndex: true, LabelIndex: true})
		noIdx := New(Options{ParentIndex: false, LabelIndex: false})
		const n = 12
		oids := make([]oem.OID, n)
		for i := range oids {
			oids[i] = oem.OID(rune('A' + i))
			obj := oem.NewSet(oids[i], "node")
			withIdx.MustPut(obj)
			noIdx.MustPut(obj.Clone())
		}
		for step := 0; step < 60; step++ {
			a, b := oids[rng.Intn(n)], oids[rng.Intn(n)]
			if rng.Intn(2) == 0 {
				_ = withIdx.Insert(a, b)
				_ = noIdx.Insert(a, b)
			} else {
				e1 := withIdx.Delete(a, b)
				e2 := noIdx.Delete(a, b)
				if (e1 == nil) != (e2 == nil) {
					return false
				}
			}
		}
		for _, oid := range oids {
			p1, err1 := withIdx.Parents(oid)
			p2, err2 := noIdx.Parents(oid)
			if (err1 == nil) != (err2 == nil) || !oem.SameMembers(p1, p2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
