package store

import (
	"bytes"
	"strings"
	"testing"

	"gsv/internal/oem"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	s := buildPerson(t, DefaultOptions())
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewDefault()
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != s.Len() {
		t.Fatalf("restored %d objects, want %d", restored.Len(), s.Len())
	}
	s.ForEach(func(o *oem.Object) {
		r, err := restored.Get(o.OID)
		if err != nil {
			t.Fatalf("missing %s: %v", o.OID, err)
		}
		if !r.Equal(o) {
			t.Fatalf("object %s differs: %v vs %v", o.OID, r, o)
		}
	})
	// Indexes are rebuilt on load.
	ps, err := restored.Parents("P3")
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(ps, []oem.OID{"ROOT", "P1"}) {
		t.Fatalf("Parents after load = %v", ps)
	}
	if got := restored.ByLabel("professor"); !oem.SameMembers(got, []oem.OID{"P1", "P2"}) {
		t.Fatalf("ByLabel after load = %v", got)
	}
}

func TestSaveLoadAtomKinds(t *testing.T) {
	s := NewDefault()
	s.MustPut(oem.NewAtom("I", "i", oem.Int(1<<60)))
	s.MustPut(oem.NewAtom("F", "f", oem.Float(2.5)))
	s.MustPut(oem.NewAtom("S", "s", oem.String_("hello world")))
	s.MustPut(oem.NewAtom("B", "b", oem.Bool(true)))
	s.MustPut(oem.NewTypedAtom("D", "salary", "dollar", oem.Int(100)))
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r := NewDefault()
	if err := r.Load(&buf); err != nil {
		t.Fatal(err)
	}
	i, _ := r.Get("I")
	if !i.Atom.Equal(oem.Int(1 << 60)) {
		t.Fatalf("large int lost: %v", i.Atom)
	}
	d, _ := r.Get("D")
	if d.Type != "dollar" {
		t.Fatalf("custom type lost: %q", d.Type)
	}
	b, _ := r.Get("B")
	if !b.Atom.B {
		t.Fatal("bool lost")
	}
}

func TestLoadRejectsNonEmptyStore(t *testing.T) {
	s := buildPerson(t, DefaultOptions())
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := s.Load(&buf); err == nil {
		t.Fatal("Load into non-empty store succeeded")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not a snapshot\n",
		"gsv-snapshot-v1\n{broken json",
		"gsv-snapshot-v1\n" + `{"oid":"A","label":"x","kind":0,"type":"integer"}` + "\n", // atomic without atom
	}
	for _, c := range cases {
		s := NewDefault()
		if err := s.Load(strings.NewReader(c)); err == nil {
			t.Errorf("Load(%q) succeeded", c)
		}
	}
}

func TestSaveIsDeterministic(t *testing.T) {
	s := buildPerson(t, DefaultOptions())
	var a, b bytes.Buffer
	if err := s.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two saves of the same store differ")
	}
}
