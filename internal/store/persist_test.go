package store

import (
	"bytes"
	"strings"
	"testing"

	"gsv/internal/oem"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	s := buildPerson(t, DefaultOptions())
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewDefault()
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != s.Len() {
		t.Fatalf("restored %d objects, want %d", restored.Len(), s.Len())
	}
	s.ForEach(func(o *oem.Object) {
		r, err := restored.Get(o.OID)
		if err != nil {
			t.Fatalf("missing %s: %v", o.OID, err)
		}
		if !r.Equal(o) {
			t.Fatalf("object %s differs: %v vs %v", o.OID, r, o)
		}
	})
	// Indexes are rebuilt on load.
	ps, err := restored.Parents("P3")
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(ps, []oem.OID{"ROOT", "P1"}) {
		t.Fatalf("Parents after load = %v", ps)
	}
	if got := restored.ByLabel("professor"); !oem.SameMembers(got, []oem.OID{"P1", "P2"}) {
		t.Fatalf("ByLabel after load = %v", got)
	}
}

func TestSaveLoadAtomKinds(t *testing.T) {
	s := NewDefault()
	s.MustPut(oem.NewAtom("I", "i", oem.Int(1<<60)))
	s.MustPut(oem.NewAtom("F", "f", oem.Float(2.5)))
	s.MustPut(oem.NewAtom("S", "s", oem.String_("hello world")))
	s.MustPut(oem.NewAtom("B", "b", oem.Bool(true)))
	s.MustPut(oem.NewTypedAtom("D", "salary", "dollar", oem.Int(100)))
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r := NewDefault()
	if err := r.Load(&buf); err != nil {
		t.Fatal(err)
	}
	i, _ := r.Get("I")
	if !i.Atom.Equal(oem.Int(1 << 60)) {
		t.Fatalf("large int lost: %v", i.Atom)
	}
	d, _ := r.Get("D")
	if d.Type != "dollar" {
		t.Fatalf("custom type lost: %q", d.Type)
	}
	b, _ := r.Get("B")
	if !b.Atom.B {
		t.Fatal("bool lost")
	}
}

func TestLoadRejectsNonEmptyStore(t *testing.T) {
	s := buildPerson(t, DefaultOptions())
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := s.Load(&buf); err == nil {
		t.Fatal("Load into non-empty store succeeded")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not a snapshot\n",
		"gsv-snapshot-v1\n{broken json",
		"gsv-snapshot-v1\n" + `{"oid":"A","label":"x","kind":0,"type":"integer"}` + "\n", // atomic without atom
	}
	for _, c := range cases {
		s := NewDefault()
		if err := s.Load(strings.NewReader(c)); err == nil {
			t.Errorf("Load(%q) succeeded", c)
		}
	}
}

// TestSaveLoadCounters is the regression test for the round-trip gap where
// snapshots dropped the store's counters: a store restored from a snapshot
// restarted GenOID at zero, so an OID freed before the snapshot (removed
// object, possibly still referenced by dangling edges or external logs)
// could be handed out again, and restarted the update sequence, breaking
// every consumer keyed on source sequence numbers.
func TestSaveLoadCounters(t *testing.T) {
	s := NewDefault()
	a := s.GenOID("obj") // obj_1
	b := s.GenOID("obj") // obj_2
	s.MustPut(oem.NewAtom(a, "x", oem.Int(1)))
	s.MustPut(oem.NewAtom(b, "x", oem.Int(2)))
	if err := s.Remove(b); err != nil {
		t.Fatal(err)
	}
	preSeq, preGen := s.Counters()

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r := NewDefault()
	if err := r.Load(&buf); err != nil {
		t.Fatal(err)
	}
	seq, gen := r.Counters()
	if seq < preSeq {
		t.Fatalf("restored seq %d went backwards (saved at %d)", seq, preSeq)
	}
	if gen != preGen {
		t.Fatalf("restored genSeq = %d, want %d", gen, preGen)
	}
	// The freed OID obj_2 must not be reissued after restore.
	if next := r.GenOID("obj"); next == b {
		t.Fatalf("GenOID reissued freed OID %s after restore", b)
	}
	// New updates continue the original sequence timeline.
	if err := r.Modify(a, oem.Int(9)); err != nil {
		t.Fatal(err)
	}
	if got, _ := r.Counters(); got <= preSeq {
		t.Fatalf("post-restore update got seq %d, want > %d", got, preSeq)
	}
}

// TestLoadV1Snapshot keeps the v1 object-only format readable.
func TestLoadV1Snapshot(t *testing.T) {
	v1 := "gsv-snapshot-v1\n" +
		`{"oid":"A","label":"x","kind":1,"type":"set","set":["B"]}` + "\n" +
		`{"oid":"B","label":"y","kind":0,"type":"integer","atom":{"kind":1,"i":7}}` + "\n"
	s := NewDefault()
	if err := s.Load(strings.NewReader(v1)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("loaded %d objects, want 2", s.Len())
	}
	if !s.HasChild("A", "B") {
		t.Fatal("edge A->B lost")
	}
}

func TestApplyUpdateReplaysLog(t *testing.T) {
	s := NewDefault()
	s.MustPut(oem.NewSet("R", "root"))
	s.MustPut(oem.NewAtom("A", "x", oem.Int(1)))
	if err := s.Insert("R", "A"); err != nil {
		t.Fatal(err)
	}
	if err := s.Modify("A", oem.Int(5)); err != nil {
		t.Fatal(err)
	}
	s.MustPut(oem.NewAtom("B", "x", oem.Int(2)))
	if err := s.Insert("R", "B"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("R", "A"); err != nil {
		t.Fatal(err)
	}

	r := NewDefault()
	for _, u := range s.Log() {
		if err := r.ApplyUpdate(u); err != nil {
			t.Fatalf("replaying %s: %v", u, err)
		}
	}
	if r.Len() != s.Len() {
		t.Fatalf("replayed %d objects, want %d", r.Len(), s.Len())
	}
	s.ForEach(func(o *oem.Object) {
		got, err := r.Get(o.OID)
		if err != nil {
			t.Fatalf("missing %s after replay: %v", o.OID, err)
		}
		if !got.Equal(o) {
			t.Fatalf("object %s differs after replay: %v vs %v", o.OID, got, o)
		}
	})
	if rs, _ := r.Counters(); rs != func() uint64 { v, _ := s.Counters(); return v }() {
		t.Fatalf("replayed seq differs")
	}
}

func TestSaveIsDeterministic(t *testing.T) {
	s := buildPerson(t, DefaultOptions())
	var a, b bytes.Buffer
	if err := s.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two saves of the same store differ")
	}
}
