// Package store implements an in-memory storage engine for graph structured
// databases (GSDBs). A Store holds OEM objects, applies the three basic
// updates of the paper's Section 4.1 — insert(N1,N2), delete(N1,N2) and
// modify(N,oldv,newv) — assigns every mutation a sequence number in an
// update log, and notifies subscribed monitors. Optional parent and label
// indexes accelerate the helper functions used by incremental view
// maintenance; they can be disabled to reproduce the paper's cost
// discussion for index-free sources.
//
// The store is multi-versioned (MVCC): every committed mutation publishes a
// new immutable version — object map plus both indexes, structurally shared
// with its predecessor via persistent tries (pmap.go) — at the mutation's
// WAL commit point. Reads never take a lock: they resolve against the
// version current at call time, and Snapshot / SnapshotAt pin a version so
// a reader sees one frozen, internally consistent state for as long as it
// likes while writers race ahead. docs/MVCC.md describes the lifecycle.
package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"gsv/internal/oem"
)

// Common errors returned by store operations.
var (
	// ErrNotFound reports that an OID does not name an object in the store.
	ErrNotFound = errors.New("store: object not found")
	// ErrExists reports an attempt to create an object whose OID is taken.
	ErrExists = errors.New("store: object already exists")
	// ErrNotSet reports a child operation on an atomic object.
	ErrNotSet = errors.New("store: object is not a set object")
	// ErrNotAtomic reports a modify on a set object.
	ErrNotAtomic = errors.New("store: object is not an atomic object")
	// ErrNotChild reports a delete of an edge that does not exist.
	ErrNotChild = errors.New("store: not a child of parent")
)

// DefaultRetainVersions is the history depth used when
// Options.RetainVersions is zero: how far back SnapshotAt can reach.
const DefaultRetainVersions = 512

// Options configure a Store.
type Options struct {
	// ParentIndex maintains, for every object, the set of its parents. With
	// the index, path(ROOT,N) and ancestor(N,p) walk up from N; without it
	// they traverse down from the root, which the paper identifies as the
	// expensive case (Section 4.4).
	ParentIndex bool
	// LabelIndex maintains a map from label to the OIDs carrying it.
	LabelIndex bool
	// LogCapacity bounds the retained update log; zero keeps every update.
	// The sequence counter is monotonic regardless of trimming.
	LogCapacity int
	// AllowDangling permits Insert to add a child OID that names no object
	// in this store. OEM values are just sets of OIDs and remote references
	// are legitimate; warehouse view stores enable this so delegate values
	// can keep pointing at base objects that live at the sources.
	AllowDangling bool
	// RetainVersions bounds the version history ring that serves
	// SnapshotAt: how many committed versions stay addressable by sequence
	// number. Zero means DefaultRetainVersions; pinned snapshots are never
	// invalidated by eviction — the ring only limits how far back *new*
	// SnapshotAt calls can reach.
	RetainVersions int
}

// DefaultOptions enables both indexes and an unbounded log.
func DefaultOptions() Options {
	return Options{ParentIndex: true, LabelIndex: true}
}

// Store is a mutable, multi-versioned collection of OEM objects. All
// methods are safe for concurrent use; read methods take no locks. Objects
// returned by read methods are defensive copies; mutations must go through
// the update methods so that indexes, the log and subscribers stay
// consistent.
type Store struct {
	opts Options

	// cur is the current committed version; readers load it atomically.
	cur atomic.Pointer[version]

	// mu serializes writers and guards log, subs and genSeq. It is never
	// taken on the read path.
	mu     sync.Mutex
	log    []Update
	genSeq uint64
	subs   []func(Update)

	// histMu guards the version-history ring (SnapshotAt's index). Writers
	// take it briefly after publishing; it is not on the plain read path.
	histMu  sync.Mutex
	hist    *vring
	evicted uint64

	pins  atomic.Int64
	taken atomic.Uint64
}

// New returns an empty store with the given options.
func New(opts Options) *Store {
	retain := opts.RetainVersions
	if retain == 0 {
		retain = DefaultRetainVersions
	}
	s := &Store{opts: opts, hist: newVring(retain)}
	v := &version{}
	s.cur.Store(v)
	s.hist.push(v)
	return s
}

// NewDefault returns an empty store with DefaultOptions.
func NewDefault() *Store { return New(DefaultOptions()) }

// Options returns the options the store was created with.
func (s *Store) Options() Options { return s.opts }

// publishLocked swaps next in as the current version and records it in the
// history ring. Callers hold s.mu.
func (s *Store) publishLocked(next *version) {
	s.cur.Store(next)
	s.histMu.Lock()
	s.evicted += uint64(s.hist.push(next))
	s.histMu.Unlock()
}

// commitLocked logs u, notifies subscribers, and then publishes next as the
// successor version (seq+1) — one committed version per logged mutation,
// the same commit points the WAL records. Callers hold s.mu.
//
// Publication comes last deliberately: the moment a reader can observe
// sequence number N, every subscriber (source monitors, group-commit
// buffers, the WAL) has already been handed update N. Readers stamping
// results with Seq() therefore never claim a state whose report is still
// in flight inside the store.
func (s *Store) commitLocked(next *version, u Update) {
	next.seq = s.cur.Load().seq + 1
	u.Seq = next.seq
	s.log = append(s.log, u)
	if s.opts.LogCapacity > 0 && len(s.log) > s.opts.LogCapacity {
		s.log = s.log[len(s.log)-s.opts.LogCapacity:]
	}
	for _, fn := range s.subs {
		fn(u)
	}
	s.publishLocked(next)
}

// Len returns the number of objects in the store.
func (s *Store) Len() int { return s.cur.Load().objects.Len() }

// Get returns a copy of the object named by oid.
func (s *Store) Get(oid oem.OID) (*oem.Object, error) {
	return readGet(s.cur.Load(), oid)
}

// Has reports whether oid names an object in the store.
func (s *Store) Has(oid oem.OID) bool {
	_, ok := s.cur.Load().get(oid)
	return ok
}

// HasChild reports whether child is in the set value of parent. With the
// parent index this is two trie probes — no object clone — which is what
// makes per-update membership screening affordable; without it the
// parent's value is scanned in place.
func (s *Store) HasChild(parent, child oem.OID) bool {
	return readHasChild(s.cur.Load(), s.opts, parent, child)
}

// Label returns the label of the object named by oid.
func (s *Store) Label(oid oem.OID) (string, error) {
	return readLabel(s.cur.Load(), oid)
}

// Children returns the value of a set object: the OIDs of its children.
// Atomic objects have no children; Children returns nil for them.
func (s *Store) Children(oid oem.OID) ([]oem.OID, error) {
	return readChildren(s.cur.Load(), oid)
}

// Parents returns the OIDs of objects whose set value contains oid. With
// the parent index the lookup is O(parents); without it the whole store is
// scanned, mirroring the cost asymmetry the paper discusses.
func (s *Store) Parents(oid oem.OID) ([]oem.OID, error) {
	return readParents(s.cur.Load(), s.opts, oid)
}

// ByLabel returns the OIDs of all objects carrying the given label. With
// the label index the lookup is O(matches); without it the store is scanned.
func (s *Store) ByLabel(label string) []oem.OID {
	return readByLabel(s.cur.Load(), s.opts, label)
}

// OIDs returns every OID in the store, sorted.
func (s *Store) OIDs() []oem.OID { return readOIDs(s.cur.Load()) }

// ForEach calls fn with a copy of every object, in sorted OID order. The
// whole iteration observes one version: a point-in-time-consistent scan
// even while writers commit concurrently.
func (s *Store) ForEach(fn func(*oem.Object)) { readForEach(s.cur.Load(), fn) }

// GenOID returns a fresh OID with the given prefix that is not currently in
// use. It is used for query answers, view objects and set-operation results
// ("an arbitrary unique OID" in the paper's terms).
func (s *Store) GenOID(prefix string) oem.OID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.genOIDLocked(prefix)
}

func (s *Store) genOIDLocked(prefix string) oem.OID {
	v := s.cur.Load()
	for {
		s.genSeq++
		oid := oem.OID(fmt.Sprintf("%s_%d", prefix, s.genSeq))
		if _, ok := v.get(oid); !ok {
			return oid
		}
	}
}

// Counters returns the store's monotonic counters: the sequence number of
// the most recent update and the GenOID counter. Snapshots persist both so
// a restored store continues the original timeline.
func (s *Store) Counters() (seq, genSeq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur.Load().seq, s.genSeq
}

// restoreCounters advances the counters to at least the given values. It
// never moves a counter backwards: loading a snapshot emits one Create
// update per object, and the restored sequence must dominate those too.
func (s *Store) restoreCounters(seq, genSeq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v := s.cur.Load(); seq > v.seq {
		next := v.next()
		next.seq = seq
		s.publishLocked(next)
	}
	if genSeq > s.genSeq {
		s.genSeq = genSeq
	}
}

// AdvanceSeq raises the update sequence counter to at least seq, without
// emitting anything. Recovery calls it after WAL replay so that future
// updates are always assigned numbers above everything the durable log
// has seen, even if replay re-derived slightly fewer machinery updates
// than the original timeline.
func (s *Store) AdvanceSeq(seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v := s.cur.Load(); seq > v.seq {
		next := v.next()
		next.seq = seq
		s.publishLocked(next)
	}
}

// ApplyUpdate re-executes one logged update against the store — the WAL
// replay entrypoint. The update is applied through the normal mutation
// methods, so indexes, the log and subscribers all observe it; the replay
// is assigned fresh sequence numbers from the store's (restored) counter
// rather than reusing u.Seq. Synthetic updates (UpdateNone) are ignored.
func (s *Store) ApplyUpdate(u Update) error {
	switch u.Kind {
	case UpdateCreate:
		if u.Object == nil {
			return fmt.Errorf("store: replaying create(%s) without object", u.N1)
		}
		return s.Put(u.Object)
	case UpdateInsert:
		return s.Insert(u.N1, u.N2)
	case UpdateDelete:
		return s.Delete(u.N1, u.N2)
	case UpdateModify:
		return s.Modify(u.N1, u.New)
	case UpdateNone:
		return nil
	default:
		return fmt.Errorf("store: cannot replay %s", u)
	}
}

// Put creates a new object. The object's children need not exist yet — OEM
// is schemaless and dangling OIDs are permitted (a query simply cannot
// traverse them). Put records a Create update in the log.
func (s *Store) Put(o *oem.Object) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.cur.Load()
	if _, ok := v.get(o.OID); ok {
		return fmt.Errorf("%w: %s", ErrExists, o.OID)
	}
	c := o.Clone()
	next := v.next()
	next.objects = next.objects.With(string(c.OID), c)
	indexAdd(next, s.opts, c)
	s.commitLocked(next, Update{Kind: UpdateCreate, N1: c.OID, Object: c.Clone()})
	return nil
}

// MustPut is Put for construction code where a duplicate OID is a bug.
func (s *Store) MustPut(o *oem.Object) {
	if err := s.Put(o); err != nil {
		panic(err)
	}
}

// Insert applies insert(N1,N2): it adds OID N2 to the set value of N1,
// making N2 a child of N1. N1 must exist and be a set object. N2 must
// exist: the basic updates of Section 4.1 manipulate edges between existing
// objects (new objects are first created with Put, which has no effect on
// views until an insert connects them).
func (s *Store) Insert(n1, n2 oem.OID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.cur.Load()
	p, ok := v.get(n1)
	if !ok {
		return fmt.Errorf("%w: parent %s", ErrNotFound, n1)
	}
	if p.Kind != oem.KindSet {
		return fmt.Errorf("%w: %s", ErrNotSet, n1)
	}
	if _, ok := v.get(n2); !ok && !s.opts.AllowDangling {
		return fmt.Errorf("%w: child %s", ErrNotFound, n2)
	}
	if p.Contains(n2) {
		return nil // already a child; value unchanged, nothing to log
	}
	np := p.Clone()
	np.Add(n2)
	next := v.next()
	next.objects = next.objects.With(string(n1), np)
	if s.opts.ParentIndex {
		ps, _ := next.parents.Get(string(n2))
		next.parents = next.parents.With(string(n2), ps.With(string(n1), struct{}{}))
	}
	s.commitLocked(next, Update{Kind: UpdateInsert, N1: n1, N2: n2})
	return nil
}

// Delete applies delete(N1,N2): it removes OID N2 from the set value of N1.
// Orphaned objects are not reclaimed here; see CollectGarbage.
func (s *Store) Delete(n1, n2 oem.OID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.cur.Load()
	p, ok := v.get(n1)
	if !ok {
		return fmt.Errorf("%w: parent %s", ErrNotFound, n1)
	}
	if p.Kind != oem.KindSet {
		return fmt.Errorf("%w: %s", ErrNotSet, n1)
	}
	if !p.Contains(n2) {
		return fmt.Errorf("%w: %s not in %s", ErrNotChild, n2, n1)
	}
	np := p.Clone()
	np.Remove(n2)
	next := v.next()
	next.objects = next.objects.With(string(n1), np)
	if s.opts.ParentIndex {
		if ps, ok := next.parents.Get(string(n2)); ok {
			ps = ps.Without(string(n1))
			if ps.Len() == 0 {
				next.parents = next.parents.Without(string(n2))
			} else {
				next.parents = next.parents.With(string(n2), ps)
			}
		}
	}
	s.commitLocked(next, Update{Kind: UpdateDelete, N1: n1, N2: n2})
	return nil
}

// Modify applies modify(N,oldv,newv): it changes the value of atomic object
// N. The old value is recorded in the update, as Algorithm 1 requires.
func (s *Store) Modify(n oem.OID, newv oem.Atom) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.cur.Load()
	o, ok := v.get(n)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, n)
	}
	if o.Kind != oem.KindAtomic {
		return fmt.Errorf("%w: %s", ErrNotAtomic, n)
	}
	oldv := o.Atom
	no := o.Clone()
	no.Atom = newv
	no.Type = newTypeFor(o.Type, oldv, newv)
	next := v.next()
	next.objects = next.objects.With(string(n), no)
	s.commitLocked(next, Update{Kind: UpdateModify, N1: n, Old: oldv, New: newv})
	return nil
}

// newTypeFor keeps a custom type name (such as "dollar") when the
// representation kind is unchanged, and falls back to the atom's own type
// name when the kind changes.
func newTypeFor(cur string, oldv, newv oem.Atom) string {
	if oldv.Kind == newv.Kind {
		return cur
	}
	return newv.TypeName()
}

// SetValue replaces the whole value of a set object. The paper models this
// as a series of insertions and deletions, and so does SetValue: one logged
// update per edge changed.
func (s *Store) SetValue(n oem.OID, members []oem.OID) error {
	cur, err := s.Children(n)
	if err != nil {
		return err
	}
	curSet := make(map[oem.OID]bool, len(cur))
	for _, c := range cur {
		curSet[c] = true
	}
	newSet := make(map[oem.OID]bool, len(members))
	for _, m := range members {
		newSet[m] = true
	}
	for _, c := range cur {
		if !newSet[c] {
			if err := s.Delete(n, c); err != nil {
				return err
			}
		}
	}
	for _, m := range members {
		if !curSet[m] {
			if err := s.Insert(n, m); err != nil {
				return err
			}
		}
	}
	return nil
}

// Remove deletes an object outright, detaching it from all parents first.
// It is not one of the paper's basic updates — sources model removal as
// edge deletions followed by garbage collection — but tools need it.
func (s *Store) Remove(oid oem.OID) error {
	parents, err := s.Parents(oid)
	if err != nil {
		return err
	}
	for _, p := range parents {
		if err := s.Delete(p, oid); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.cur.Load()
	o, ok := v.get(oid)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, oid)
	}
	next := v.next()
	next.objects = next.objects.Without(string(oid))
	indexRemove(next, s.opts, o)
	// Children lose this parent.
	if s.opts.ParentIndex && o.Kind == oem.KindSet {
		for _, c := range o.Set {
			if ps, ok := next.parents.Get(string(c)); ok {
				ps = ps.Without(string(oid))
				if ps.Len() == 0 {
					next.parents = next.parents.Without(string(c))
				} else {
					next.parents = next.parents.With(string(c), ps)
				}
			}
		}
	}
	// The object drop itself is silent (same seq), matching the paper's
	// model where only edge changes are updates; the new version replaces
	// the current one in the history ring.
	s.publishLocked(next)
	return nil
}

// CollectGarbage removes every object not reachable from the given roots,
// following set values. It returns the OIDs removed. The paper notes that
// objects no longer pointed at "may be garbage collected"; roots typically
// include the database objects and any view objects.
func (s *Store) CollectGarbage(roots ...oem.OID) []oem.OID {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.cur.Load()
	reachable := make(map[oem.OID]bool, v.objects.Len())
	stack := make([]oem.OID, 0, len(roots))
	for _, r := range roots {
		if _, ok := v.get(r); ok && !reachable[r] {
			reachable[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		oid := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		o, _ := v.get(oid)
		if o == nil || o.Kind != oem.KindSet {
			continue
		}
		for _, c := range o.Set {
			if _, ok := v.get(c); ok && !reachable[c] {
				reachable[c] = true
				stack = append(stack, c)
			}
		}
	}
	var removed []oem.OID
	next := v.next()
	v.objects.Range(func(key string, o *oem.Object) bool {
		oid := oem.OID(key)
		if !reachable[oid] {
			removed = append(removed, oid)
			next.objects = next.objects.Without(key)
			indexRemove(next, s.opts, o)
			next.parents = next.parents.Without(key)
		}
		return true
	})
	// Drop parent-index entries that point at removed parents.
	if s.opts.ParentIndex && len(removed) > 0 {
		next.parents.Range(func(c string, ps *oidSet) bool {
			trimmed := ps
			ps.Range(func(p string, _ struct{}) bool {
				if !next.objects.Has(p) {
					trimmed = trimmed.Without(p)
				}
				return true
			})
			if trimmed != ps {
				if trimmed.Len() == 0 {
					next.parents = next.parents.Without(c)
				} else {
					next.parents = next.parents.With(c, trimmed)
				}
			}
			return true
		})
	}
	if len(removed) > 0 {
		s.publishLocked(next) // silent, like Remove's object drop
	}
	return oem.SortOIDs(removed)
}

// indexAdd records a newly created object in next's label and parent
// indexes.
func indexAdd(next *version, opts Options, o *oem.Object) {
	if opts.LabelIndex {
		m, _ := next.byLabel.Get(o.Label)
		next.byLabel = next.byLabel.With(o.Label, m.With(string(o.OID), struct{}{}))
	}
	if opts.ParentIndex && o.Kind == oem.KindSet {
		for _, c := range o.Set {
			ps, _ := next.parents.Get(string(c))
			next.parents = next.parents.With(string(c), ps.With(string(o.OID), struct{}{}))
		}
	}
}

// indexRemove drops a removed object from next's label index.
func indexRemove(next *version, opts Options, o *oem.Object) {
	if opts.LabelIndex {
		if m, ok := next.byLabel.Get(o.Label); ok {
			m = m.Without(string(o.OID))
			if m.Len() == 0 {
				next.byLabel = next.byLabel.Without(o.Label)
			} else {
				next.byLabel = next.byLabel.With(o.Label, m)
			}
		}
	}
}
