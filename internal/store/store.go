// Package store implements an in-memory storage engine for graph structured
// databases (GSDBs). A Store holds OEM objects, applies the three basic
// updates of the paper's Section 4.1 — insert(N1,N2), delete(N1,N2) and
// modify(N,oldv,newv) — assigns every mutation a sequence number in an
// update log, and notifies subscribed monitors. Optional parent and label
// indexes accelerate the helper functions used by incremental view
// maintenance; they can be disabled to reproduce the paper's cost
// discussion for index-free sources.
package store

import (
	"errors"
	"fmt"
	"sync"

	"gsv/internal/oem"
)

// Common errors returned by store operations.
var (
	// ErrNotFound reports that an OID does not name an object in the store.
	ErrNotFound = errors.New("store: object not found")
	// ErrExists reports an attempt to create an object whose OID is taken.
	ErrExists = errors.New("store: object already exists")
	// ErrNotSet reports a child operation on an atomic object.
	ErrNotSet = errors.New("store: object is not a set object")
	// ErrNotAtomic reports a modify on a set object.
	ErrNotAtomic = errors.New("store: object is not an atomic object")
	// ErrNotChild reports a delete of an edge that does not exist.
	ErrNotChild = errors.New("store: not a child of parent")
)

// Options configure a Store.
type Options struct {
	// ParentIndex maintains, for every object, the set of its parents. With
	// the index, path(ROOT,N) and ancestor(N,p) walk up from N; without it
	// they traverse down from the root, which the paper identifies as the
	// expensive case (Section 4.4).
	ParentIndex bool
	// LabelIndex maintains a map from label to the OIDs carrying it.
	LabelIndex bool
	// LogCapacity bounds the retained update log; zero keeps every update.
	// The sequence counter is monotonic regardless of trimming.
	LogCapacity int
	// AllowDangling permits Insert to add a child OID that names no object
	// in this store. OEM values are just sets of OIDs and remote references
	// are legitimate; warehouse view stores enable this so delegate values
	// can keep pointing at base objects that live at the sources.
	AllowDangling bool
}

// DefaultOptions enables both indexes and an unbounded log.
func DefaultOptions() Options {
	return Options{ParentIndex: true, LabelIndex: true}
}

// Store is a mutable collection of OEM objects. All methods are safe for
// concurrent use. Objects returned by read methods are defensive copies;
// mutations must go through the update methods so that indexes, the log and
// subscribers stay consistent.
type Store struct {
	mu      sync.RWMutex
	opts    Options
	objects map[oem.OID]*oem.Object
	parents map[oem.OID]map[oem.OID]struct{} // child -> parents, when ParentIndex
	byLabel map[string]map[oem.OID]struct{}  // label -> objects, when LabelIndex
	log     []Update
	seq     uint64
	genSeq  uint64
	subs    []func(Update)
}

// New returns an empty store with the given options.
func New(opts Options) *Store {
	return &Store{
		opts:    opts,
		objects: make(map[oem.OID]*oem.Object),
		parents: make(map[oem.OID]map[oem.OID]struct{}),
		byLabel: make(map[string]map[oem.OID]struct{}),
	}
}

// NewDefault returns an empty store with DefaultOptions.
func NewDefault() *Store { return New(DefaultOptions()) }

// Options returns the options the store was created with.
func (s *Store) Options() Options { return s.opts }

// Len returns the number of objects in the store.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// Get returns a copy of the object named by oid.
func (s *Store) Get(oid oem.OID) (*oem.Object, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.objects[oid]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, oid)
	}
	return o.Clone(), nil
}

// Has reports whether oid names an object in the store.
func (s *Store) Has(oid oem.OID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.objects[oid]
	return ok
}

// HasChild reports whether child is in the set value of parent. With the
// parent index this is two map probes — no object clone — which is what
// makes per-update membership screening affordable; without it the
// parent's value is scanned in place.
func (s *Store) HasChild(parent, child oem.OID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.opts.ParentIndex {
		_, ok := s.parents[child][parent]
		return ok
	}
	o, ok := s.objects[parent]
	return ok && o.Contains(child)
}

// Label returns the label of the object named by oid.
func (s *Store) Label(oid oem.OID) (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.objects[oid]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNotFound, oid)
	}
	return o.Label, nil
}

// Children returns the value of a set object: the OIDs of its children.
// Atomic objects have no children; Children returns nil for them.
func (s *Store) Children(oid oem.OID) ([]oem.OID, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.objects[oid]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, oid)
	}
	if o.Kind != oem.KindSet {
		return nil, nil
	}
	out := make([]oem.OID, len(o.Set))
	copy(out, o.Set)
	return out, nil
}

// Parents returns the OIDs of objects whose set value contains oid. With
// the parent index the lookup is O(parents); without it the whole store is
// scanned, mirroring the cost asymmetry the paper discusses.
func (s *Store) Parents(oid oem.OID) ([]oem.OID, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.objects[oid]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, oid)
	}
	if s.opts.ParentIndex {
		ps := s.parents[oid]
		out := make([]oem.OID, 0, len(ps))
		for p := range ps {
			out = append(out, p)
		}
		return oem.SortOIDs(out), nil
	}
	var out []oem.OID
	for poid, p := range s.objects {
		if p.Contains(oid) {
			out = append(out, poid)
		}
	}
	return oem.SortOIDs(out), nil
}

// ByLabel returns the OIDs of all objects carrying the given label. With
// the label index the lookup is O(matches); without it the store is scanned.
func (s *Store) ByLabel(label string) []oem.OID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.opts.LabelIndex {
		m := s.byLabel[label]
		out := make([]oem.OID, 0, len(m))
		for oid := range m {
			out = append(out, oid)
		}
		return oem.SortOIDs(out)
	}
	var out []oem.OID
	for oid, o := range s.objects {
		if o.Label == label {
			out = append(out, oid)
		}
	}
	return oem.SortOIDs(out)
}

// OIDs returns every OID in the store, sorted.
func (s *Store) OIDs() []oem.OID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]oem.OID, 0, len(s.objects))
	for oid := range s.objects {
		out = append(out, oid)
	}
	return oem.SortOIDs(out)
}

// ForEach calls fn with a copy of every object, in sorted OID order. It
// takes a snapshot of the OIDs first, so fn may call read methods.
func (s *Store) ForEach(fn func(*oem.Object)) {
	for _, oid := range s.OIDs() {
		if o, err := s.Get(oid); err == nil {
			fn(o)
		}
	}
}

// GenOID returns a fresh OID with the given prefix that is not currently in
// use. It is used for query answers, view objects and set-operation results
// ("an arbitrary unique OID" in the paper's terms).
func (s *Store) GenOID(prefix string) oem.OID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.genOIDLocked(prefix)
}

func (s *Store) genOIDLocked(prefix string) oem.OID {
	for {
		s.genSeq++
		oid := oem.OID(fmt.Sprintf("%s_%d", prefix, s.genSeq))
		if _, ok := s.objects[oid]; !ok {
			return oid
		}
	}
}

// Counters returns the store's monotonic counters: the sequence number of
// the most recent update and the GenOID counter. Snapshots persist both so
// a restored store continues the original timeline.
func (s *Store) Counters() (seq, genSeq uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.seq, s.genSeq
}

// restoreCounters advances the counters to at least the given values. It
// never moves a counter backwards: loading a snapshot emits one Create
// update per object, and the restored sequence must dominate those too.
func (s *Store) restoreCounters(seq, genSeq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq > s.seq {
		s.seq = seq
	}
	if genSeq > s.genSeq {
		s.genSeq = genSeq
	}
}

// AdvanceSeq raises the update sequence counter to at least seq, without
// emitting anything. Recovery calls it after WAL replay so that future
// updates are always assigned numbers above everything the durable log
// has seen, even if replay re-derived slightly fewer machinery updates
// than the original timeline.
func (s *Store) AdvanceSeq(seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq > s.seq {
		s.seq = seq
	}
}

// ApplyUpdate re-executes one logged update against the store — the WAL
// replay entrypoint. The update is applied through the normal mutation
// methods, so indexes, the log and subscribers all observe it; the replay
// is assigned fresh sequence numbers from the store's (restored) counter
// rather than reusing u.Seq. Synthetic updates (UpdateNone) are ignored.
func (s *Store) ApplyUpdate(u Update) error {
	switch u.Kind {
	case UpdateCreate:
		if u.Object == nil {
			return fmt.Errorf("store: replaying create(%s) without object", u.N1)
		}
		return s.Put(u.Object)
	case UpdateInsert:
		return s.Insert(u.N1, u.N2)
	case UpdateDelete:
		return s.Delete(u.N1, u.N2)
	case UpdateModify:
		return s.Modify(u.N1, u.New)
	case UpdateNone:
		return nil
	default:
		return fmt.Errorf("store: cannot replay %s", u)
	}
}

// Put creates a new object. The object's children need not exist yet — OEM
// is schemaless and dangling OIDs are permitted (a query simply cannot
// traverse them). Put records a Create update in the log.
func (s *Store) Put(o *oem.Object) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objects[o.OID]; ok {
		return fmt.Errorf("%w: %s", ErrExists, o.OID)
	}
	c := o.Clone()
	s.objects[c.OID] = c
	s.indexAdd(c)
	s.emitLocked(Update{Kind: UpdateCreate, N1: c.OID, Object: c.Clone()})
	return nil
}

// MustPut is Put for construction code where a duplicate OID is a bug.
func (s *Store) MustPut(o *oem.Object) {
	if err := s.Put(o); err != nil {
		panic(err)
	}
}

// Insert applies insert(N1,N2): it adds OID N2 to the set value of N1,
// making N2 a child of N1. N1 must exist and be a set object. N2 must
// exist: the basic updates of Section 4.1 manipulate edges between existing
// objects (new objects are first created with Put, which has no effect on
// views until an insert connects them).
func (s *Store) Insert(n1, n2 oem.OID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.objects[n1]
	if !ok {
		return fmt.Errorf("%w: parent %s", ErrNotFound, n1)
	}
	if p.Kind != oem.KindSet {
		return fmt.Errorf("%w: %s", ErrNotSet, n1)
	}
	if _, ok := s.objects[n2]; !ok && !s.opts.AllowDangling {
		return fmt.Errorf("%w: child %s", ErrNotFound, n2)
	}
	if !p.Add(n2) {
		return nil // already a child; value unchanged, nothing to log
	}
	if s.opts.ParentIndex {
		ps := s.parents[n2]
		if ps == nil {
			ps = make(map[oem.OID]struct{})
			s.parents[n2] = ps
		}
		ps[n1] = struct{}{}
	}
	s.emitLocked(Update{Kind: UpdateInsert, N1: n1, N2: n2})
	return nil
}

// Delete applies delete(N1,N2): it removes OID N2 from the set value of N1.
// Orphaned objects are not reclaimed here; see CollectGarbage.
func (s *Store) Delete(n1, n2 oem.OID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.objects[n1]
	if !ok {
		return fmt.Errorf("%w: parent %s", ErrNotFound, n1)
	}
	if p.Kind != oem.KindSet {
		return fmt.Errorf("%w: %s", ErrNotSet, n1)
	}
	if !p.Remove(n2) {
		return fmt.Errorf("%w: %s not in %s", ErrNotChild, n2, n1)
	}
	if s.opts.ParentIndex {
		if ps := s.parents[n2]; ps != nil {
			delete(ps, n1)
			if len(ps) == 0 {
				delete(s.parents, n2)
			}
		}
	}
	s.emitLocked(Update{Kind: UpdateDelete, N1: n1, N2: n2})
	return nil
}

// Modify applies modify(N,oldv,newv): it changes the value of atomic object
// N. The old value is recorded in the update, as Algorithm 1 requires.
func (s *Store) Modify(n oem.OID, newv oem.Atom) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[n]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, n)
	}
	if o.Kind != oem.KindAtomic {
		return fmt.Errorf("%w: %s", ErrNotAtomic, n)
	}
	oldv := o.Atom
	o.Atom = newv
	o.Type = newTypeFor(o.Type, oldv, newv)
	s.emitLocked(Update{Kind: UpdateModify, N1: n, Old: oldv, New: newv})
	return nil
}

// newTypeFor keeps a custom type name (such as "dollar") when the
// representation kind is unchanged, and falls back to the atom's own type
// name when the kind changes.
func newTypeFor(cur string, oldv, newv oem.Atom) string {
	if oldv.Kind == newv.Kind {
		return cur
	}
	return newv.TypeName()
}

// SetValue replaces the whole value of a set object. The paper models this
// as a series of insertions and deletions, and so does SetValue: one logged
// update per edge changed.
func (s *Store) SetValue(n oem.OID, members []oem.OID) error {
	cur, err := s.Children(n)
	if err != nil {
		return err
	}
	curSet := make(map[oem.OID]bool, len(cur))
	for _, c := range cur {
		curSet[c] = true
	}
	newSet := make(map[oem.OID]bool, len(members))
	for _, m := range members {
		newSet[m] = true
	}
	for _, c := range cur {
		if !newSet[c] {
			if err := s.Delete(n, c); err != nil {
				return err
			}
		}
	}
	for _, m := range members {
		if !curSet[m] {
			if err := s.Insert(n, m); err != nil {
				return err
			}
		}
	}
	return nil
}

// Remove deletes an object outright, detaching it from all parents first.
// It is not one of the paper's basic updates — sources model removal as
// edge deletions followed by garbage collection — but tools need it.
func (s *Store) Remove(oid oem.OID) error {
	parents, err := s.Parents(oid)
	if err != nil {
		return err
	}
	for _, p := range parents {
		if err := s.Delete(p, oid); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[oid]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, oid)
	}
	s.indexRemove(o)
	delete(s.objects, oid)
	// Children lose this parent.
	if s.opts.ParentIndex && o.Kind == oem.KindSet {
		for _, c := range o.Set {
			if ps := s.parents[c]; ps != nil {
				delete(ps, oid)
				if len(ps) == 0 {
					delete(s.parents, c)
				}
			}
		}
	}
	return nil
}

// CollectGarbage removes every object not reachable from the given roots,
// following set values. It returns the OIDs removed. The paper notes that
// objects no longer pointed at "may be garbage collected"; roots typically
// include the database objects and any view objects.
func (s *Store) CollectGarbage(roots ...oem.OID) []oem.OID {
	s.mu.Lock()
	defer s.mu.Unlock()
	reachable := make(map[oem.OID]bool, len(s.objects))
	stack := make([]oem.OID, 0, len(roots))
	for _, r := range roots {
		if _, ok := s.objects[r]; ok && !reachable[r] {
			reachable[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		oid := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		o := s.objects[oid]
		if o == nil || o.Kind != oem.KindSet {
			continue
		}
		for _, c := range o.Set {
			if _, ok := s.objects[c]; ok && !reachable[c] {
				reachable[c] = true
				stack = append(stack, c)
			}
		}
	}
	var removed []oem.OID
	for oid, o := range s.objects {
		if !reachable[oid] {
			removed = append(removed, oid)
			s.indexRemove(o)
			delete(s.objects, oid)
			delete(s.parents, oid)
		}
	}
	// Drop parent-index entries that point at removed parents.
	if s.opts.ParentIndex {
		for c, ps := range s.parents {
			for p := range ps {
				if _, ok := s.objects[p]; !ok {
					delete(ps, p)
				}
			}
			if len(ps) == 0 {
				delete(s.parents, c)
			}
		}
	}
	return oem.SortOIDs(removed)
}

func (s *Store) indexAdd(o *oem.Object) {
	if s.opts.LabelIndex {
		m := s.byLabel[o.Label]
		if m == nil {
			m = make(map[oem.OID]struct{})
			s.byLabel[o.Label] = m
		}
		m[o.OID] = struct{}{}
	}
	if s.opts.ParentIndex && o.Kind == oem.KindSet {
		for _, c := range o.Set {
			ps := s.parents[c]
			if ps == nil {
				ps = make(map[oem.OID]struct{})
				s.parents[c] = ps
			}
			ps[o.OID] = struct{}{}
		}
	}
}

func (s *Store) indexRemove(o *oem.Object) {
	if s.opts.LabelIndex {
		if m := s.byLabel[o.Label]; m != nil {
			delete(m, o.OID)
			if len(m) == 0 {
				delete(s.byLabel, o.Label)
			}
		}
	}
}
